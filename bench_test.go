package softft

// Benchmark harness: one testing.B benchmark per table and figure of the
// paper's evaluation, plus ablation benches for the design choices listed
// in DESIGN.md. Each iteration regenerates the corresponding result at a
// reduced trial count (use cmd/experiments for full-scale campaigns);
// benchmark metrics report the reproduced quantities alongside wall time.

import (
	"context"
	"testing"

	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/fault"
	"repro/internal/profile"
	"repro/internal/vm"
	"repro/internal/workloads"
)

// benchCfg returns a small, deterministic campaign config; seed varies per
// iteration so the campaign cache cannot short-circuit the work.
func benchCfg(trials int, seed int64) fault.Config {
	cfg := fault.DefaultConfig()
	cfg.Trials = trials
	cfg.Seed = seed
	return cfg
}

func BenchmarkTableI(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if out := experiments.TableI(); len(out) == 0 {
			b.Fatal("empty table")
		}
	}
}

func BenchmarkTableII(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if out := experiments.TableII(); len(out) == 0 {
			b.Fatal("empty table")
		}
	}
}

func BenchmarkFig1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig1(benchCfg(120, int64(i)+100)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig2(b *testing.B) {
	var asdcShare float64
	for i := 0; i < b.N; i++ {
		rows, _, err := experiments.Fig2(benchCfg(60, int64(i)+200))
		if err != nil {
			b.Fatal(err)
		}
		var s []float64
		for _, r := range rows {
			s = append(s, r.ASDCShare)
		}
		asdcShare = experiments.Mean(s)
	}
	b.ReportMetric(100*asdcShare, "asdc_share_%")
}

func BenchmarkFig10(b *testing.B) {
	var dup, chk float64
	for i := 0; i < b.N; i++ {
		rows, _, err := experiments.Fig10()
		if err != nil {
			b.Fatal(err)
		}
		var d, c []float64
		for _, r := range rows {
			d = append(d, r.Duplicated)
			c = append(c, r.ValueChecks)
		}
		dup, chk = experiments.Mean(d), experiments.Mean(c)
	}
	b.ReportMetric(100*dup, "dup_static_%")
	b.ReportMetric(100*chk, "valchk_static_%")
}

func BenchmarkFig11(b *testing.B) {
	var usdcOrig, usdcVal float64
	for i := 0; i < b.N; i++ {
		rows, _, err := experiments.Fig11(benchCfg(60, int64(i)+300))
		if err != nil {
			b.Fatal(err)
		}
		var o, v []float64
		for _, r := range rows {
			switch r.Mode {
			case core.SchemeOriginal:
				o = append(o, r.Tally.Frac(fault.USDC))
			case core.SchemeDupVal:
				v = append(v, r.Tally.Frac(fault.USDC))
			}
		}
		usdcOrig, usdcVal = experiments.Mean(o), experiments.Mean(v)
	}
	b.ReportMetric(100*usdcOrig, "usdc_orig_%")
	b.ReportMetric(100*usdcVal, "usdc_dupval_%")
}

func BenchmarkFig12(b *testing.B) {
	var dup, val, full float64
	for i := 0; i < b.N; i++ {
		rows, _, err := experiments.Fig12()
		if err != nil {
			b.Fatal(err)
		}
		var d, v, f []float64
		for _, r := range rows {
			d = append(d, r.DupOnly)
			v = append(v, r.DupVal)
			f = append(f, r.FullDup)
		}
		dup, val, full = experiments.Mean(d), experiments.Mean(v), experiments.Mean(f)
	}
	b.ReportMetric(100*dup, "dup_overhead_%")
	b.ReportMetric(100*val, "dupval_overhead_%")
	b.ReportMetric(100*full, "fulldup_overhead_%")
}

func BenchmarkFig13(b *testing.B) {
	var sdcOrig, sdcVal float64
	for i := 0; i < b.N; i++ {
		rows, _, err := experiments.Fig13(benchCfg(60, int64(i)+400))
		if err != nil {
			b.Fatal(err)
		}
		var o, v []float64
		for _, r := range rows {
			switch r.Mode {
			case core.SchemeOriginal:
				o = append(o, r.SDC)
			case core.SchemeDupVal:
				v = append(v, r.SDC)
			}
		}
		sdcOrig, sdcVal = experiments.Mean(o), experiments.Mean(v)
	}
	b.ReportMetric(100*sdcOrig, "sdc_orig_%")
	b.ReportMetric(100*sdcVal, "sdc_dupval_%")
}

func BenchmarkCrossValidation(b *testing.B) {
	var delta float64
	for i := 0; i < b.N; i++ {
		rows, _, err := experiments.CrossValidation(benchCfg(80, int64(i)+500))
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			if r.MaxOutcomeDelta > delta {
				delta = r.MaxOutcomeDelta
			}
		}
	}
	b.ReportMetric(100*delta, "max_outcome_delta_%")
}

func BenchmarkFalsePositives(b *testing.B) {
	var rate float64
	for i := 0; i < b.N; i++ {
		rows, _, err := experiments.FalsePositivesAll()
		if err != nil {
			b.Fatal(err)
		}
		var dyn, fails int64
		for _, r := range rows {
			dyn += r.Dyn
			fails += r.Fails
		}
		if fails > 0 {
			rate = float64(dyn) / float64(fails)
		}
	}
	b.ReportMetric(rate, "instrs_per_false_positive")
}

func BenchmarkBranchFaultsCFC(b *testing.B) {
	var usdcPlain, usdcCFC float64
	for i := 0; i < b.N; i++ {
		rows, _, err := experiments.BranchFaults(benchCfg(60, int64(i)+600))
		if err != nil {
			b.Fatal(err)
		}
		var p, c []float64
		for _, r := range rows {
			switch r.Config {
			case "Original":
				p = append(p, r.Tally.Frac(fault.USDC))
			case "Dup + val chks + CFC":
				c = append(c, r.Tally.Frac(fault.USDC))
			}
		}
		usdcPlain, usdcCFC = experiments.Mean(p), experiments.Mean(c)
	}
	b.ReportMetric(100*usdcPlain, "usdc_plain_%")
	b.ReportMetric(100*usdcCFC, "usdc_cfc_%")
}

func BenchmarkMultiInputProfiling(b *testing.B) {
	var single, multi int64
	for i := 0; i < b.N; i++ {
		rows, _, err := experiments.MultiInputProfiling()
		if err != nil {
			b.Fatal(err)
		}
		single, multi = 0, 0
		for _, r := range rows {
			single += r.FailsSingle
			multi += r.FailsMulti
		}
	}
	b.ReportMetric(float64(single), "falsepos_1input")
	b.ReportMetric(float64(multi), "falsepos_2inputs")
}

// ---- ablations -----------------------------------------------------------

// protectAll protects every benchmark with the given params and returns
// aggregate stats.
func protectAll(b *testing.B, mode string, params core.Params) core.Stats {
	b.Helper()
	var agg core.Stats
	for _, w := range workloads.All() {
		mod, err := w.Compile()
		if err != nil {
			b.Fatal(err)
		}
		var prof *profile.Data
		if mode == core.SchemeDupVal {
			mach, err := vm.New(mod.Clone(), vm.DefaultConfig())
			if err != nil {
				b.Fatal(err)
			}
			if err := w.Bind(mach, workloads.Train); err != nil {
				b.Fatal(err)
			}
			mach.Reset()
			col := profile.NewCollector(profile.DefaultBins)
			if res := mach.Run(vm.RunOptions{Profiler: col}); res.Trap != nil {
				b.Fatal(res.Trap)
			}
			prof = col.Data()
		}
		m := mod.Clone()
		st, err := core.Protect(m, mode, prof, params)
		if err != nil {
			b.Fatal(err)
		}
		agg.StateVars += st.StateVars
		agg.DupInstrs += st.DupInstrs
		agg.ValueChecks += st.ValueChecks
		agg.TotalInstrs += st.TotalInstrs
	}
	return agg
}

// BenchmarkAblationOpt1 measures how many value checks Optimization 1
// removes (checks pushed deepest in producer chains).
func BenchmarkAblationOpt1(b *testing.B) {
	var with, without int
	for i := 0; i < b.N; i++ {
		p := core.DefaultParams()
		p.Opt1 = true
		with = protectAll(b, core.SchemeDupVal, p).ValueChecks
		p.Opt1 = false
		without = protectAll(b, core.SchemeDupVal, p).ValueChecks
	}
	if with > without {
		b.Fatalf("Opt1 increased checks: %d > %d", with, without)
	}
	b.ReportMetric(float64(with), "checks_with_opt1")
	b.ReportMetric(float64(without), "checks_without_opt1")
}

// BenchmarkAblationOpt2 measures how much duplication Optimization 2 saves
// (duplication terminated at check-amenable producers).
func BenchmarkAblationOpt2(b *testing.B) {
	var with, without int
	for i := 0; i < b.N; i++ {
		p := core.DefaultParams()
		p.Opt2 = true
		with = protectAll(b, core.SchemeDupVal, p).DupInstrs
		p.Opt2 = false
		without = protectAll(b, core.SchemeDupVal, p).DupInstrs
	}
	if with > without {
		b.Fatalf("Opt2 increased duplication: %d > %d", with, without)
	}
	b.ReportMetric(float64(with), "dup_with_opt2")
	b.ReportMetric(float64(without), "dup_without_opt2")
}

// BenchmarkAblationDupLoads compares the paper's stop-at-loads policy
// against duplicating through loads.
func BenchmarkAblationDupLoads(b *testing.B) {
	var stop, through int
	for i := 0; i < b.N; i++ {
		p := core.DefaultParams()
		stop = protectAll(b, core.SchemeDup, p).DupInstrs
		p.DupThroughLoads = true
		through = protectAll(b, core.SchemeDup, p).DupInstrs
	}
	if through < stop {
		b.Fatalf("duplicating through loads cloned less: %d < %d", through, stop)
	}
	b.ReportMetric(float64(stop), "dup_stop_at_loads")
	b.ReportMetric(float64(through), "dup_through_loads")
}

// BenchmarkAblationBins sweeps the histogram bin bound B (paper uses 5).
func BenchmarkAblationBins(b *testing.B) {
	w := workloads.ByName("jpegdec")
	mod, err := w.Compile()
	if err != nil {
		b.Fatal(err)
	}
	counts := map[int]int{}
	for i := 0; i < b.N; i++ {
		for _, bins := range []int{2, 5, 8} {
			mach, err := vm.New(mod.Clone(), vm.DefaultConfig())
			if err != nil {
				b.Fatal(err)
			}
			if err := w.Bind(mach, workloads.Train); err != nil {
				b.Fatal(err)
			}
			mach.Reset()
			col := profile.NewCollector(bins)
			if res := mach.Run(vm.RunOptions{Profiler: col}); res.Trap != nil {
				b.Fatal(res.Trap)
			}
			m := mod.Clone()
			st, err := core.Protect(m, core.SchemeDupVal, col.Data(), core.DefaultParams())
			if err != nil {
				b.Fatal(err)
			}
			counts[bins] = st.ValueChecks
		}
	}
	b.ReportMetric(float64(counts[2]), "checks_b2")
	b.ReportMetric(float64(counts[5]), "checks_b5")
	b.ReportMetric(float64(counts[8]), "checks_b8")
}

// BenchmarkAblationRangeThreshold sweeps R_thr (Algorithm 2's width bound).
func BenchmarkAblationRangeThreshold(b *testing.B) {
	counts := map[float64]int{}
	for i := 0; i < b.N; i++ {
		for _, thr := range []float64{64, 4096, 1 << 20} {
			p := core.DefaultParams()
			p.RangeThreshold = thr
			counts[thr] = protectAll(b, core.SchemeDupVal, p).ValueChecks
		}
	}
	b.ReportMetric(float64(counts[64]), "checks_rthr_64")
	b.ReportMetric(float64(counts[4096]), "checks_rthr_4096")
	b.ReportMetric(float64(counts[1<<20]), "checks_rthr_1M")
}

// BenchmarkInterpreter measures raw single-run throughput on the heaviest
// kernel for both execution engines (dynamic instructions per second appear
// as the custom metric), so benchstat shows the precompiled engine's gain
// over the tree-walking reference.
func BenchmarkInterpreter(b *testing.B) {
	w := workloads.ByName("jpegdec")
	mod, err := w.Compile()
	if err != nil {
		b.Fatal(err)
	}
	for _, bc := range []struct {
		name   string
		engine vm.EngineKind
	}{{"fast", vm.EngineFast}, {"tree", vm.EngineTree}} {
		b.Run(bc.name, func(b *testing.B) {
			cfg := vm.DefaultConfig()
			cfg.Engine = bc.engine
			mach, err := vm.New(mod.Clone(), cfg)
			if err != nil {
				b.Fatal(err)
			}
			if err := w.Bind(mach, workloads.Test); err != nil {
				b.Fatal(err)
			}
			var dyn int64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				mach.Reset()
				res := mach.Run(vm.RunOptions{})
				if res.Trap != nil {
					b.Fatal(res.Trap)
				}
				dyn += res.Dyn
			}
			b.ReportMetric(float64(dyn)/b.Elapsed().Seconds(), "instrs/s")
		})
	}
}

// BenchmarkCampaign measures end-to-end fault-campaign throughput (trials
// per second) across the engine × checkpoint grid — the workload the
// precompiled engine and the checkpoint scheduler exist to accelerate.
// Single-worker so the comparison measures engine and scheduler speed, not
// host parallelism.
func BenchmarkCampaign(b *testing.B) {
	w := workloads.ByName("jpegdec")
	mod, err := w.Compile()
	if err != nil {
		b.Fatal(err)
	}
	for _, bc := range []struct {
		name   string
		engine vm.EngineKind
		ckpt   int
	}{
		{"fast-ckpt", vm.EngineFast, 0},
		{"fast-scratch", vm.EngineFast, -1},
		{"tree", vm.EngineTree, -1},
	} {
		b.Run(bc.name, func(b *testing.B) {
			var trials int
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				cfg := benchCfg(60, int64(i))
				cfg.Engine = bc.engine
				cfg.Workers = 1
				cfg.Checkpoints = bc.ckpt
				rep, err := fault.Run(context.Background(), w.Target(workloads.Test), mod.Clone(), "Original", cfg)
				if err != nil {
					b.Fatal(err)
				}
				trials += rep.Tally.N
			}
			b.ReportMetric(float64(trials)/b.Elapsed().Seconds(), "trials/s")
		})
	}
}
