package softft

import (
	"fmt"

	"repro/internal/vm"
	"repro/internal/workloads"
)

// Benchmark wraps one of the built-in soft-computing benchmarks (the
// paper's Table I suite) for use through the public API.
type Benchmark struct {
	w *workloads.Workload
}

// Benchmarks lists the names of the built-in benchmarks.
func Benchmarks() []string { return workloads.Names() }

// GetBenchmark returns a built-in benchmark by name.
func GetBenchmark(name string) (*Benchmark, error) {
	w := workloads.ByName(name)
	if w == nil {
		return nil, fmt.Errorf("softft: unknown benchmark %q (have %v)", name, workloads.Names())
	}
	return &Benchmark{w: w}, nil
}

// Name returns the benchmark's name.
func (b *Benchmark) Name() string { return b.w.Name }

// Description returns a one-line description.
func (b *Benchmark) Description() string {
	return fmt.Sprintf("%s (%s, %s) — %s", b.w.Desc, b.w.Suite, b.w.Category, b.w.Judge.Describe())
}

// Program compiles the benchmark.
func (b *Benchmark) Program() (*Program, error) {
	mod, err := b.w.Compile()
	if err != nil {
		return nil, err
	}
	return &Program{name: b.w.Name, mod: mod.Clone()}, nil
}

// Source returns the benchmark's source code.
func (b *Benchmark) Source() string { return b.w.Source }

// TrainInput returns the profiling input (larger, different content from
// the test input, per the paper's methodology).
func (b *Benchmark) TrainInput() *Input { return b.input(workloads.Train) }

// TestInput returns the evaluation input.
func (b *Benchmark) TestInput() *Input { return b.input(workloads.Test) }

func (b *Benchmark) input(kind workloads.InputKind) *Input {
	in := NewInput()
	in.binds = append(in.binds, func(m *vm.Machine) error { return b.w.Bind(m, kind) })
	return in
}

// NewCampaign returns a Campaign prefilled with the benchmark's output
// global and fidelity judgment, evaluated on the test input's dimensions.
func (b *Benchmark) NewCampaign(trials int) Campaign {
	return Campaign{
		Trials: trials,
		Output: b.w.Output,
		Measure: func(golden, test []uint64) float64 {
			return b.w.Measure(golden, test, workloads.Test)
		},
		Acceptable: b.w.Acceptable,
	}
}
