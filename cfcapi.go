package softft

import (
	"repro/internal/cfc"
	"repro/internal/ir"
)

// CFCStats describes control-flow-check instrumentation.
type CFCStats struct {
	Blocks    int // blocks that received an entry signature check
	Checks    int // signature checks inserted
	Unchecked int // fan-in blocks the scheme could not check
}

// WithControlFlowChecks returns a copy of the program instrumented with
// CFCSS-style signature checks, the complementary technique the paper
// recommends for branch-target faults (which register duplication and
// value checks do not cover). Compose with Protect: protect first, then
// add control-flow checks.
func (p *Program) WithControlFlowChecks() (*Program, CFCStats, error) {
	mod := p.mod.Clone()
	// Continue check IDs past any already present so reports stay unique.
	maxID := 0
	for _, f := range mod.Funcs {
		f.Instrs(func(in *ir.Instr) bool {
			if in.CheckID > maxID {
				maxID = in.CheckID
			}
			return true
		})
	}
	stats, _, err := cfc.Protect(mod, maxID+1)
	if err != nil {
		return nil, CFCStats{}, err
	}
	return &Program{name: p.name + "+cfc", mod: mod}, CFCStats{
		Blocks:    stats.Blocks,
		Checks:    stats.Checks,
		Unchecked: stats.Unchecked,
	}, nil
}
