package softft

import "testing"

func TestControlFlowChecksPreserveSemantics(t *testing.T) {
	prog, err := Compile("kernel", testKernel)
	if err != nil {
		t.Fatal(err)
	}
	checked, stats, err := prog.WithControlFlowChecks()
	if err != nil {
		t.Fatal(err)
	}
	if stats.Checks == 0 {
		t.Fatalf("no signature checks inserted: %+v", stats)
	}
	base, err := prog.Run(testInput())
	if err != nil {
		t.Fatal(err)
	}
	prot, err := checked.Run(testInput())
	if err != nil {
		t.Fatal(err)
	}
	if prot.CheckFailures != 0 {
		t.Fatalf("CFC false positives: %d", prot.CheckFailures)
	}
	b, _ := base.Ints("out")
	p, _ := prot.Ints("out")
	for i := range b {
		if b[i] != p[i] {
			t.Fatalf("CFC changed out[%d]", i)
		}
	}
}

func TestControlFlowChecksComposeWithProtection(t *testing.T) {
	prog, _ := Compile("kernel", testKernel)
	prof, err := prog.ProfileValues(testInput())
	if err != nil {
		t.Fatal(err)
	}
	hard, _, err := prog.Protect(DuplicationWithValueChecks, prof)
	if err != nil {
		t.Fatal(err)
	}
	both, _, err := hard.WithControlFlowChecks()
	if err != nil {
		t.Fatal(err)
	}
	res, err := both.Run(testInput())
	if err != nil {
		t.Fatal(err)
	}
	if res.CheckFailures != 0 {
		t.Fatalf("composed protection fired %d checks fault-free", res.CheckFailures)
	}
}

func TestBranchTargetCampaign(t *testing.T) {
	prog, _ := Compile("kernel", testKernel)
	checked, _, err := prog.WithControlFlowChecks()
	if err != nil {
		t.Fatal(err)
	}
	c := Campaign{Trials: 200, Seed: 3, Output: "out", BranchTargets: true}
	plain, err := prog.InjectFaults(testInput(), c)
	if err != nil {
		t.Fatal(err)
	}
	prot, err := checked.InjectFaults(testInput(), c)
	if err != nil {
		t.Fatal(err)
	}
	if plain.SWDetected != 0 {
		t.Error("uninstrumented program detected branch faults")
	}
	if prot.SWDetectedCFC == 0 {
		t.Fatalf("CFC detected nothing: %+v", prot)
	}
	if prot.USDCs+prot.SDCs > plain.USDCs+plain.SDCs {
		t.Errorf("CFC increased corruptions: %d+%d vs %d+%d", prot.USDCs, prot.SDCs, plain.USDCs, plain.SDCs)
	}
	t.Logf("branch faults: plain=%s  cfc=%s", plain, prot)
}
