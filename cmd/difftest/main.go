// Command difftest drives the generative differential-testing harness over
// a range of seeds. Every seed expands to a random always-terminating
// program that is compiled under four pass pipelines, protected under every
// mode, executed, and cross-checked against the oracle invariants (see
// internal/difftest).
//
// Usage:
//
//	difftest -n 500 -seed 1            # seeds 1..500, all modes
//	difftest -n 100 -seed 7 -mode dupval
//
// On an invariant violation the failing program is shrunk by greedy
// statement deletion and the minimized reproducer is written to
// testdata/difftest/seed<N>.sf; the process exits nonzero after finishing
// the whole range.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/core"
	"repro/internal/difftest"
	"repro/internal/fault"
)

func main() {
	n := flag.Int("n", 100, "number of seeds to test")
	seed := flag.Int64("seed", 1, "first seed")
	mode := flag.String("mode", "all", "protection scheme to exercise: all, list, or any registered scheme / '+'-composition")
	fmodel := flag.String("fault-model", "all", "fault model for the model-diff invariant: all, list, or any registered model")
	outDir := flag.String("out", "testdata/difftest", "directory for minimized reproducers")
	flag.Parse()

	ocfg := difftest.DefaultOracleConfig()
	switch *mode {
	case "all":
	case "list":
		for _, name := range core.SchemeNames() {
			fmt.Printf("%-10s %s\n", name, core.Title(name))
		}
		return
	default:
		sch, err := core.ParseScheme(*mode)
		if err != nil {
			fmt.Fprintf(os.Stderr, "difftest: %v\n", err)
			os.Exit(2)
		}
		ocfg.Only = []string{sch.Name()}
	}
	switch *fmodel {
	case "all":
	case "list":
		for _, m := range fault.Models() {
			fmt.Printf("%-14s %s\n", m.Name(), m.Title())
		}
		return
	default:
		m, err := fault.LookupModel(*fmodel)
		if err != nil {
			fmt.Fprintf(os.Stderr, "difftest: %v\n", err)
			os.Exit(2)
		}
		ocfg.Models = []string{m.Name()}
	}

	gcfg := difftest.DefaultGenConfig()
	failures := 0
	for s := *seed; s < *seed+int64(*n); s++ {
		prog, fail := difftest.Check(s, gcfg, ocfg)
		if fail == nil {
			continue
		}
		failures++
		fmt.Fprintf(os.Stderr, "seed %d: %v\n", s, fail)
		ints, floats := difftest.InputsForSeed(s)
		small, deleted := difftest.Shrink(prog, fail, ints, floats, ocfg)
		fmt.Fprintf(os.Stderr, "seed %d: shrunk %d -> %d statements\n",
			s, difftest.StmtCount(prog), difftest.StmtCount(small))
		_ = deleted
		if err := os.MkdirAll(*outDir, 0o755); err != nil {
			fmt.Fprintf(os.Stderr, "difftest: %v\n", err)
			os.Exit(1)
		}
		path := filepath.Join(*outDir, fmt.Sprintf("seed%d.sf", s))
		body := small.Source() + "// invariant: " + fail.Invariant + "\n"
		if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "difftest: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "seed %d: reproducer written to %s\n", s, path)
	}

	fmt.Printf("difftest: %d programs, %d failures (seeds %d..%d, mode=%s)\n",
		*n, failures, *seed, *seed+int64(*n)-1, *mode)
	if failures > 0 {
		os.Exit(1)
	}
}
