// Command experiments regenerates the paper's tables and figures on the
// reproduced stack.
//
// Usage:
//
//	experiments                      # everything, default trial count
//	experiments -run fig11,fig12     # selected experiments
//	experiments -trials 1000         # paper-scale campaigns (slower)
//	experiments -out results.txt
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"repro/internal/experiments"
	"repro/internal/fault"
)

func main() {
	var (
		runList = flag.String("run", "all", "comma-separated: tableI,tableII,fig1,fig2,fig10,fig11,fig12,fig13,crossval,falsepos,branchfaults,recovery,multiprofile,abft,faultmodels or 'all'")
		trials  = flag.Int("trials", 300, "fault injections per benchmark/technique (paper: 1000)")
		seed    = flag.Int64("seed", 2014, "campaign seed")
		outPath = flag.String("out", "", "also write results to this file")
	)
	flag.Parse()

	var out io.Writer = os.Stdout
	if *outPath != "" {
		f, err := os.Create(*outPath)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		out = io.MultiWriter(os.Stdout, f)
	}

	cfg := fault.DefaultConfig()
	cfg.Trials = *trials
	cfg.Seed = *seed

	want := map[string]bool{}
	for _, name := range strings.Split(*runList, ",") {
		want[strings.TrimSpace(name)] = true
	}
	sel := func(name string) bool { return want["all"] || want[name] }

	type step struct {
		name string
		run  func() (string, error)
	}
	steps := []step{
		{"tableI", func() (string, error) { return experiments.TableI(), nil }},
		{"tableII", func() (string, error) { return experiments.TableII(), nil }},
		{"fig1", func() (string, error) { return experiments.Fig1(cfg) }},
		{"fig2", func() (string, error) { _, t, err := experiments.Fig2(cfg); return t, err }},
		{"fig10", func() (string, error) { _, t, err := experiments.Fig10(); return t, err }},
		{"fig11", func() (string, error) {
			_, t, err := experiments.Fig11(cfg)
			if err != nil {
				return "", err
			}
			fd, err := experiments.FullDupUSDC(cfg)
			if err != nil {
				return "", err
			}
			return t + fmt.Sprintf("\nFull duplication mean USDC rate: %.2f%% (paper: 1.4%% at 57%% overhead)\n", 100*fd), nil
		}},
		{"fig12", func() (string, error) { _, t, err := experiments.Fig12(); return t, err }},
		{"fig13", func() (string, error) { _, t, err := experiments.Fig13(cfg); return t, err }},
		{"crossval", func() (string, error) { _, t, err := experiments.CrossValidation(cfg); return t, err }},
		{"falsepos", func() (string, error) { _, t, err := experiments.FalsePositivesAll(); return t, err }},
		{"branchfaults", func() (string, error) { _, t, err := experiments.BranchFaults(cfg); return t, err }},
		{"recovery", func() (string, error) { _, t, err := experiments.Recovery(cfg); return t, err }},
		{"multiprofile", func() (string, error) { _, t, err := experiments.MultiInputProfiling(); return t, err }},
		{"abft", func() (string, error) { _, t, err := experiments.ABFTvsDupVal(cfg); return t, err }},
		{"faultmodels", func() (string, error) { _, t, err := experiments.FaultModelSweep(cfg); return t, err }},
	}

	start := time.Now()
	for _, s := range steps {
		if !sel(s.name) {
			continue
		}
		t0 := time.Now()
		text, err := s.run()
		if err != nil {
			fatal(fmt.Errorf("%s: %w", s.name, err))
		}
		fmt.Fprintf(out, "==== %s (%.1fs) ====\n%s\n", s.name, time.Since(t0).Seconds(), text)
	}
	fmt.Fprintf(out, "total: %.1fs, %d trials per campaign, seed %d\n",
		time.Since(start).Seconds(), *trials, *seed)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "experiments:", err)
	os.Exit(1)
}
