package main

// Campaign throughput benchmark (-bench-campaign): measures fault-injection
// trials per second for every built-in workload across the engine ×
// checkpoint grid and writes the BENCH_campaign.json artifact tracked in
// the repository, so the perf trajectory of the campaign path is recorded
// next to the code that moves it.

import (
	"context"
	"encoding/json"
	"fmt"
	"math"
	"os"
	"runtime"
	"time"

	"repro/internal/fault"
	"repro/internal/vm"
	"repro/internal/workloads"
)

// campaignBenchRow is one cell of the workload × engine × checkpoint grid.
type campaignBenchRow struct {
	Workload     string  `json:"workload"`
	Engine       string  `json:"engine"`
	Checkpoint   bool    `json:"checkpoint"`
	Trials       int     `json:"trials"`
	GoldenDyn    int64   `json:"golden_dyn"`
	Seconds      float64 `json:"seconds"`
	TrialsPerSec float64 `json:"trials_per_sec"`
}

// campaignBenchArtifact is the BENCH_campaign.json schema. Speedups are
// per-workload ratios of the fast engine's checkpointed over from-scratch
// throughput; SpeedupGeomean is the campaign-level headline.
type campaignBenchArtifact struct {
	Generated      string             `json:"generated"`
	GoVersion      string             `json:"go_version"`
	TrialsPerCell  int                `json:"trials_per_cell"`
	Workers        int                `json:"workers"`
	Seed           int64              `json:"seed"`
	Rows           []campaignBenchRow `json:"rows"`
	Speedup        map[string]float64 `json:"speedup_ckpt_vs_scratch"`
	SpeedupGeomean float64            `json:"speedup_geomean"`
}

// runCampaignBench measures every cell with a single worker (so the numbers
// compare engine and scheduler speed, not host parallelism) and writes the
// artifact to path.
func runCampaignBench(path string, trials int, seed int64) error {
	if trials <= 0 {
		trials = 100
	}
	grid := []struct {
		name   string
		engine vm.EngineKind
		ckpt   int
	}{
		{"fast", vm.EngineFast, 0},  // checkpointed (auto schedule)
		{"fast", vm.EngineFast, -1}, // from scratch
		{"tree", vm.EngineTree, -1},
	}
	art := &campaignBenchArtifact{
		Generated:     time.Now().UTC().Format(time.RFC3339),
		GoVersion:     runtime.Version(),
		TrialsPerCell: trials,
		Workers:       1,
		Seed:          seed,
		Speedup:       make(map[string]float64),
	}
	for _, w := range workloads.All() {
		mod, err := w.Compile()
		if err != nil {
			return err
		}
		var ckptRate, scratchRate float64
		for _, g := range grid {
			cfg := fault.DefaultConfig()
			cfg.Trials = trials
			cfg.Seed = seed
			cfg.Workers = 1
			cfg.Engine = g.engine
			cfg.Checkpoints = g.ckpt
			start := time.Now()
			rep, err := fault.Run(context.Background(), w.Target(workloads.Test), mod, "Original", cfg)
			if err != nil {
				return fmt.Errorf("%s/%s: %w", w.Name, g.name, err)
			}
			secs := time.Since(start).Seconds()
			row := campaignBenchRow{
				Workload:     w.Name,
				Engine:       g.name,
				Checkpoint:   g.ckpt >= 0,
				Trials:       rep.Tally.N,
				GoldenDyn:    rep.GoldenDyn,
				Seconds:      secs,
				TrialsPerSec: float64(rep.Tally.N) / secs,
			}
			art.Rows = append(art.Rows, row)
			if g.engine == vm.EngineFast {
				if g.ckpt >= 0 {
					ckptRate = row.TrialsPerSec
				} else {
					scratchRate = row.TrialsPerSec
				}
			}
			fmt.Fprintf(os.Stderr, "bench-campaign %-10s %s ckpt=%-5v %8.1f trials/s\n",
				w.Name, g.name, g.ckpt >= 0, row.TrialsPerSec)
		}
		art.Speedup[w.Name] = ckptRate / scratchRate
	}
	logSum := 0.0
	for _, s := range art.Speedup {
		logSum += math.Log(s)
	}
	art.SpeedupGeomean = math.Exp(logSum / float64(len(art.Speedup)))
	fmt.Fprintf(os.Stderr, "bench-campaign geomean checkpoint speedup: %.2fx\n", art.SpeedupGeomean)

	data, err := json.MarshalIndent(art, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
