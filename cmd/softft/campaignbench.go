package main

// Campaign throughput benchmark (-bench-campaign): measures fault-injection
// trials per second for every built-in workload across the engine ×
// checkpoint × lockstep × fusion × convergence grid and writes the
// BENCH_campaign.json artifact tracked in the repository, so the perf
// trajectory of the campaign path is recorded next to the code that moves
// it.

import (
	"context"
	"encoding/json"
	"fmt"
	"math"
	"os"
	"runtime"
	"time"

	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/ir"
	"repro/internal/vm"
	"repro/internal/workloads"
)

// campaignBenchRow is one cell of the workload × technique × engine ×
// checkpoint × lockstep × fusion × convergence grid.
type campaignBenchRow struct {
	Workload     string  `json:"workload"`
	Technique    string  `json:"technique"`
	Engine       string  `json:"engine"`
	Checkpoint   bool    `json:"checkpoint"`
	Lockstep     bool    `json:"lockstep"`
	Fused        bool    `json:"fused"`
	Converge     bool    `json:"converge"`
	Trials       int     `json:"trials"`
	GoldenDyn    int64   `json:"golden_dyn"`
	Seconds      float64 `json:"seconds"`
	TrialsPerSec float64 `json:"trials_per_sec"`
}

// campaignBenchArtifact is the BENCH_campaign.json schema. Speedup compares
// the fast engine's checkpointed over from-scratch throughput (Original,
// lockstep off in both cells); SpeedupLockstep compares lockstep over
// checkpointed-solo throughput on the FullDup binary, where software
// detection keeps post-trigger suffixes short and the shared golden prefix
// dominates a solo trial's cost. FusionSpeedup* compare fused over unfused
// dispatch on otherwise-identical cells (Original checkpointed-solo and
// FullDup checkpointed-solo), and ConvSpeedupFullDup compares the solo
// convergence fast-forward over a full-suffix solo run on the FullDup
// binary, whose masked trials re-converge with the golden ladder quickly.
// The geomeans are the campaign-level headlines.
type campaignBenchArtifact struct {
	Generated              string             `json:"generated"`
	GoVersion              string             `json:"go_version"`
	TrialsPerCell          int                `json:"trials_per_cell"`
	Workers                int                `json:"workers"`
	Seed                   int64              `json:"seed"`
	Rows                   []campaignBenchRow `json:"rows"`
	Speedup                map[string]float64 `json:"speedup_ckpt_vs_scratch"`
	SpeedupGeomean         float64            `json:"speedup_geomean"`
	SpeedupLockstep        map[string]float64 `json:"speedup_lockstep_vs_solo"`
	SpeedupLockstepGeomean float64            `json:"speedup_lockstep_geomean"`
	FusionSpeedupOriginal  map[string]float64 `json:"fusion_speedup_original"`
	FusionSpeedupFullDup   map[string]float64 `json:"fusion_speedup_fulldup"`
	FusionSpeedupGeomean   float64            `json:"fusion_speedup_geomean"`
	ConvSpeedupFullDup     map[string]float64 `json:"conv_speedup_fulldup_solo"`
	ConvSpeedupGeomean     float64            `json:"conv_speedup_fulldup_geomean"`
}

// benchReps is how many times each grid cell is measured; the fastest rep is
// recorded. Campaign cells run a fraction of a second, where a single GC
// pause or noisy neighbor skews a one-shot measurement by tens of percent —
// best-of-N is the standard antidote (the minimum estimates the undisturbed
// runtime).
const benchReps = 3

// runCampaignBench measures every cell with a single worker (so the numbers
// compare engine and scheduler speed, not host parallelism) and writes the
// artifact to path.
func runCampaignBench(path string, trials int, seed int64) error {
	if trials <= 0 {
		trials = 100
	}
	// Lockstep is pinned explicitly in every cell: the off cells isolate the
	// checkpoint-vs-scratch ratio from batching, and each auto-scheduled
	// cell then picks its own best snapshot density (32 solo, 8 lockstep).
	// The fuse/conv twins differ from their baseline cell in exactly one
	// knob, so each ratio isolates one mechanism.
	grid := []struct {
		key       string // rate-map key; "" for cells no ratio reads
		technique string
		engine    vm.EngineKind
		ckpt      int
		lockstep  int
		fuse      int
		converge  int
	}{
		{"orig/ckpt", "Original", vm.EngineFast, 0, -1, 0, 0},
		{"orig/ckpt/nofuse", "Original", vm.EngineFast, 0, -1, -1, 0},
		{"orig/scratch", "Original", vm.EngineFast, -1, -1, 0, 0},
		{"", "Original", vm.EngineTree, -1, -1, 0, 0},
		{"fdup/solo", "FullDup", vm.EngineFast, 0, -1, 0, 0},
		{"fdup/solo/nofuse", "FullDup", vm.EngineFast, 0, -1, -1, 0},
		{"fdup/solo/noconv", "FullDup", vm.EngineFast, 0, -1, 0, -1},
		{"fdup/lockstep", "FullDup", vm.EngineFast, 0, 0, 0, 0},
	}
	art := &campaignBenchArtifact{
		Generated:             time.Now().UTC().Format(time.RFC3339),
		GoVersion:             runtime.Version(),
		TrialsPerCell:         trials,
		Workers:               1,
		Seed:                  seed,
		Speedup:               make(map[string]float64),
		SpeedupLockstep:       make(map[string]float64),
		FusionSpeedupOriginal: make(map[string]float64),
		FusionSpeedupFullDup:  make(map[string]float64),
		ConvSpeedupFullDup:    make(map[string]float64),
	}
	for _, w := range workloads.All() {
		mod, err := w.Compile()
		if err != nil {
			return err
		}
		mods := map[string]*ir.Module{"Original": mod}
		fdup := mod.Clone()
		if _, err := core.Protect(fdup, core.SchemeFullDup, nil, core.DefaultParams()); err != nil {
			return fmt.Errorf("%s: FullDup protect: %w", w.Name, err)
		}
		mods["FullDup"] = fdup

		rate := make(map[string]float64)
		for _, g := range grid {
			cfg := fault.DefaultConfig()
			cfg.Trials = trials
			cfg.Seed = seed
			cfg.Workers = 1
			cfg.Engine = g.engine
			cfg.Checkpoints = g.ckpt
			cfg.Lockstep = g.lockstep
			cfg.Fuse = g.fuse
			cfg.Converge = g.converge
			var rep *fault.Report
			secs := math.Inf(1)
			for r := 0; r < benchReps; r++ {
				start := time.Now()
				rr, err := fault.Run(context.Background(), w.Target(workloads.Test), mods[g.technique], g.technique, cfg)
				if err != nil {
					return fmt.Errorf("%s/%s/%s: %w", w.Name, g.technique, g.key, err)
				}
				if s := time.Since(start).Seconds(); s < secs {
					secs, rep = s, rr
				}
			}
			engine := "fast"
			if g.engine == vm.EngineTree {
				engine = "tree"
			}
			row := campaignBenchRow{
				Workload:     w.Name,
				Technique:    g.technique,
				Engine:       engine,
				Checkpoint:   g.ckpt >= 0,
				Lockstep:     g.lockstep >= 0,
				Fused:        g.fuse >= 0,
				Converge:     g.converge >= 0,
				Trials:       rep.Tally.N,
				GoldenDyn:    rep.GoldenDyn,
				Seconds:      secs,
				TrialsPerSec: float64(rep.Tally.N) / secs,
			}
			art.Rows = append(art.Rows, row)
			if g.key != "" {
				rate[g.key] = row.TrialsPerSec
			}
			fmt.Fprintf(os.Stderr, "bench-campaign %-10s %-8s %s ckpt=%-5v lockstep=%-5v fuse=%-5v conv=%-5v %8.1f trials/s\n",
				w.Name, g.technique, engine, g.ckpt >= 0, g.lockstep >= 0, g.fuse >= 0, g.converge >= 0, row.TrialsPerSec)
		}
		art.Speedup[w.Name] = rate["orig/ckpt"] / rate["orig/scratch"]
		art.SpeedupLockstep[w.Name] = rate["fdup/lockstep"] / rate["fdup/solo"]
		art.FusionSpeedupOriginal[w.Name] = rate["orig/ckpt"] / rate["orig/ckpt/nofuse"]
		art.FusionSpeedupFullDup[w.Name] = rate["fdup/solo"] / rate["fdup/solo/nofuse"]
		art.ConvSpeedupFullDup[w.Name] = rate["fdup/solo"] / rate["fdup/solo/noconv"]
	}
	art.SpeedupGeomean = geomean(art.Speedup)
	art.SpeedupLockstepGeomean = geomean(art.SpeedupLockstep)
	art.FusionSpeedupGeomean = math.Sqrt(geomean(art.FusionSpeedupOriginal) * geomean(art.FusionSpeedupFullDup))
	art.ConvSpeedupGeomean = geomean(art.ConvSpeedupFullDup)
	fmt.Fprintf(os.Stderr, "bench-campaign geomean checkpoint speedup:  %.2fx\n", art.SpeedupGeomean)
	fmt.Fprintf(os.Stderr, "bench-campaign geomean lockstep speedup:    %.2fx\n", art.SpeedupLockstepGeomean)
	fmt.Fprintf(os.Stderr, "bench-campaign geomean fusion speedup:      %.2fx\n", art.FusionSpeedupGeomean)
	fmt.Fprintf(os.Stderr, "bench-campaign geomean convergence speedup: %.2fx\n", art.ConvSpeedupGeomean)

	data, err := json.MarshalIndent(art, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

func geomean(m map[string]float64) float64 {
	logSum := 0.0
	for _, s := range m {
		logSum += math.Log(s)
	}
	return math.Exp(logSum / float64(len(m)))
}
