// Command softft compiles, protects, runs and fault-tests a single
// benchmark (or a user program) from the command line.
//
// Usage:
//
//	softft -list
//	softft -bench jpegdec -mode dupval -stats
//	softft -bench jpegdec -mode dupval -inject 500
//	softft -bench mp3dec -dump
//	softft -src prog.sf -run
//	softft -bench-campaign BENCH_campaign.json
//
// Distributed campaigns (see DESIGN.md, "Campaign service"):
//
//	softft serve -addr 127.0.0.1:7077 -dir /tmp/journals
//	softft work -coordinator http://127.0.0.1:7077
//	softft submit -bench jpegdec -mode dupval -inject 500 -wait
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"

	"repro"
)

func main() {
	if len(os.Args) > 1 {
		var sub func([]string) error
		switch os.Args[1] {
		case "serve":
			sub = runServe
		case "work":
			sub = runWork
		case "submit":
			sub = runSubmit
		}
		if sub != nil {
			if err := sub(os.Args[2:]); err != nil {
				fatal(err)
			}
			return
		}
	}
	var (
		list    = flag.Bool("list", false, "list built-in benchmarks")
		bench   = flag.String("bench", "", "built-in benchmark name")
		src     = flag.String("src", "", "compile a source file instead of a benchmark")
		mode    = flag.String("mode", "original", "protection scheme, a '+'-composition of registered schemes (e.g. dupval, abft+dupval), or 'list'")
		dump    = flag.Bool("dump", false, "print the (protected) IR")
		run     = flag.Bool("run", false, "run fault-free and print statistics")
		stats   = flag.Bool("stats", false, "print protection statistics")
		inject  = flag.Int("inject", 0, "run a fault-injection campaign with N trials")
		seed    = flag.Int64("seed", 2014, "campaign seed")
		profOut = flag.String("profile-out", "", "write the value profile to this file")
		profIn  = flag.String("profile-in", "", "read a saved value profile instead of re-profiling")
		useCFC  = flag.Bool("cfc", false, "add signature-based control-flow checks")
		trace   = flag.Int64("trace", 0, "print an execution trace of up to N instructions")
		branch  = flag.Bool("branch-faults", false, "deprecated: same as -fault-model branch-target")
		fmodel  = flag.String("fault-model", "", "registered fault model for -inject (default reg-flip), or 'list'")

		lockstep = flag.Int("lockstep", 0, "lockstep batching: 0 auto, N>0 batch bins of >= N trials, -1 off (bit-identical results; throughput only)")
		fuse     = flag.String("fuse", "on", "superinstruction fusion in the fast engine: on or off (bit-identical results; throughput only)")

		journal      = flag.String("journal", "", "append completed trials to this durable journal file")
		resume       = flag.Bool("resume", false, "replay the -journal file and run only the remaining trials")
		trialTimeout = flag.Duration("trial-timeout", 0, "wall-clock bound per trial (e.g. 5s); hung trials are quarantined")
		targetCI     = flag.Float64("target-ci", 0, "stop early once coverage and USDC 95% CIs are this tight (e.g. 0.05)")

		benchCampaign = flag.String("bench-campaign", "", "measure campaign throughput over all benchmarks and write the JSON artifact to this path")
		benchTrials   = flag.Int("bench-trials", 100, "trials per grid cell for -bench-campaign")
	)
	flag.Parse()

	fuseKnob := 0
	switch *fuse {
	case "on":
	case "off":
		fuseKnob = -1
	default:
		fmt.Fprintln(os.Stderr, "softft: -fuse takes on or off")
		os.Exit(2)
	}

	if *benchCampaign != "" {
		if err := runCampaignBench(*benchCampaign, *benchTrials, *seed); err != nil {
			fatal(err)
		}
		return
	}

	if *list {
		for _, name := range softft.Benchmarks() {
			b, _ := softft.GetBenchmark(name)
			fmt.Printf("%-10s %s\n", name, b.Description())
		}
		return
	}

	if *fmodel == "list" {
		for _, name := range softft.FaultModels() {
			fmt.Println(name)
		}
		return
	}

	if *mode == "list" {
		for _, m := range softft.Modes() {
			needs := ""
			if m.NeedsProfile() {
				needs = " (needs a value profile)"
			}
			fmt.Printf("%-10s %s%s\n", m, m.Title(), needs)
		}
		return
	}

	if *bench == "" && *src == "" {
		fmt.Fprintln(os.Stderr, "softft: need -bench, -src or -list; see -help")
		os.Exit(2)
	}

	var (
		prog *softft.Program
		bm   *softft.Benchmark
		err  error
	)
	if *src != "" {
		data, rerr := os.ReadFile(*src)
		if rerr != nil {
			fatal(rerr)
		}
		prog, err = softft.Compile(*src, string(data))
	} else {
		bm, err = softft.GetBenchmark(*bench)
		if err == nil {
			prog, err = bm.Program()
		}
	}
	if err != nil {
		fatal(err)
	}

	m, err := softft.ParseMode(*mode)
	if err != nil {
		fatal(err)
	}

	if m != softft.Original {
		var prof *softft.Profile
		if m.NeedsProfile() {
			if *profIn != "" {
				f, err := os.Open(*profIn)
				if err != nil {
					fatal(err)
				}
				prof, err = softft.LoadProfile(f, prog.Name())
				f.Close()
				if err != nil {
					fatal(err)
				}
			} else {
				if bm == nil {
					fatal(fmt.Errorf("-mode %s needs a built-in benchmark or -profile-in", m))
				}
				prof, err = prog.ProfileValues(bm.TrainInput())
				if err != nil {
					fatal(err)
				}
			}
			if *profOut != "" {
				f, err := os.Create(*profOut)
				if err != nil {
					fatal(err)
				}
				if err := prof.Save(f, prog.Name()); err != nil {
					fatal(err)
				}
				f.Close()
			}
		}
		var st softft.Stats
		prog, st, err = prog.Protect(m, prof)
		if err != nil {
			fatal(err)
		}
		if *stats {
			fmt.Printf("protection %s: %d static instrs, %d state vars, %d duplicated, %d dup checks, %d value checks\n",
				m, st.TotalInstrs, st.StateVars, st.DuplicatedInstrs, st.DupChecks, st.ValueChecks)
			if st.ABFTKernels > 0 {
				fmt.Printf("  abft: %d kernels checksummed, %d exit checks\n", st.ABFTKernels, st.ABFTChecks)
			}
		}
	} else if *stats {
		fmt.Printf("original: %d static instrs\n", prog.NumInstrs())
	}

	if *useCFC {
		var cs softft.CFCStats
		prog, cs, err = prog.WithControlFlowChecks()
		if err != nil {
			fatal(err)
		}
		if *stats {
			fmt.Printf("control-flow checks: %d blocks, %d checks, %d uncheckable fan-ins\n",
				cs.Blocks, cs.Checks, cs.Unchecked)
		}
	}

	if *dump {
		fmt.Print(prog.Dump())
	}

	if *run || *trace > 0 {
		in := softft.NewInput()
		if bm != nil {
			in = bm.TestInput()
		}
		var res *softft.Result
		if *trace > 0 {
			res, err = prog.Trace(in, os.Stdout, *trace)
		} else {
			res, err = prog.Run(in)
		}
		if err != nil {
			fatal(err)
		}
		fmt.Printf("ran %s: %d dynamic instrs, %d cycles, %d check failures\n",
			prog.Name(), res.Dyn, res.Cycles, res.CheckFailures)
	}

	if *inject > 0 {
		if bm == nil {
			fatal(fmt.Errorf("-inject needs a built-in benchmark (fidelity judgment)"))
		}
		if *resume && *journal == "" {
			fatal(fmt.Errorf("-resume needs -journal"))
		}
		c := bm.NewCampaign(*inject)
		c.Seed = *seed
		c.FaultModel = *fmodel
		c.BranchTargets = *branch
		c.Lockstep = *lockstep
		c.Fuse = fuseKnob
		c.Journal = *journal
		c.Resume = *resume
		c.TrialTimeout = *trialTimeout
		c.TargetCI = *targetCI

		// SIGINT and SIGTERM degrade gracefully: the campaign stops between
		// trials and the completed work is still reported (and journaled).
		ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
		out, err := prog.InjectFaultsContext(ctx, bm.TestInput(), c)
		stop()
		if err != nil {
			fatal(err)
		}
		// Resume/quarantine/partial details go to stderr so stdout stays
		// byte-comparable across interrupted-and-resumed runs.
		if out.Replayed > 0 {
			fmt.Fprintf(os.Stderr, "softft: resumed %d trials from %s\n", out.Replayed, *journal)
		}
		if out.Partial {
			for _, a := range out.Anomalies {
				fmt.Fprintf(os.Stderr, "softft: trial %d quarantined (%s, seed %d)\n", a.Trial, a.Reason, a.Seed)
			}
			fmt.Fprintf(os.Stderr, "softft: campaign interrupted after %d trials; rerun with -journal/-resume to continue\n", out.Trials)
			fmt.Fprintf(os.Stderr, "softft: partial outcomes: %s\n", out)
			return
		}
		reportOutcomes(bm.Name(), m, out, *targetCI)
	}
}

// reportOutcomes prints a finished campaign's report. The stdout lines
// are a pure function of the Outcomes, and the distributed journal merge
// is bit-reproducible, so a `submit -wait` and a solo `-inject` of the
// same spec print byte-identical stdout; run-shape details (quarantines,
// early stop) go to stderr.
func reportOutcomes(bench string, m softft.Mode, out *softft.Outcomes, targetCI float64) {
	for _, a := range out.Anomalies {
		fmt.Fprintf(os.Stderr, "softft: trial %d quarantined (%s, seed %d)\n", a.Trial, a.Reason, a.Seed)
	}
	if out.EarlyStopped {
		fmt.Fprintf(os.Stderr, "softft: early stop at %d trials (target CI %.3f reached, %d trials saved)\n",
			out.Trials, targetCI, out.TrialsSaved)
	}
	fmt.Printf("%s under %s: %s\n", bench, m, out)
	fmt.Printf("  SDCs=%d (acceptable %d, unacceptable %d)  USDC rate %.2f%%\n",
		out.SDCs, out.ASDCs, out.USDCs, 100*out.USDCRate())
	if out.SWDetected > 0 {
		fmt.Printf("  SWDetect breakdown: %d duplication, %d value, %d control-flow, %d abft\n",
			out.SWDetectedDup, out.SWDetectedValue, out.SWDetectedCFC, out.SWDetectedABFT)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "softft:", err)
	os.Exit(1)
}
