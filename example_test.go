package softft_test

import (
	"fmt"
	"log"

	"repro"
)

// Example demonstrates the full protection workflow: compile, profile on a
// training input, protect, and verify the protected program still computes
// the same output at a modest cycle overhead.
func Example() {
	const source = `
global int in[64];
global int out[64];
void main() {
	int acc = 0;
	for (int i = 0; i < 64; i += 1) {
		acc = (acc + in[i]) & 0xffff;
		out[i] = (in[i] * 3 + acc) & 255;
	}
}`
	prog, err := softft.Compile("demo", source)
	if err != nil {
		log.Fatal(err)
	}

	data := make([]int64, 64)
	for i := range data {
		data[i] = int64(i * 5)
	}
	input := softft.NewInput().SetInts("in", data)

	prof, err := prog.ProfileValues(input)
	if err != nil {
		log.Fatal(err)
	}
	hard, stats, err := prog.Protect(softft.DuplicationWithValueChecks, prof)
	if err != nil {
		log.Fatal(err)
	}

	base, _ := prog.Run(input)
	prot, _ := hard.Run(input)
	b, _ := base.Ints("out")
	p, _ := prot.Ints("out")

	same := true
	for i := range b {
		if b[i] != p[i] {
			same = false
		}
	}
	fmt.Printf("state variables protected: %d\n", stats.StateVars)
	fmt.Printf("outputs identical: %v\n", same)
	fmt.Printf("protected costs more cycles: %v\n", prot.Cycles > base.Cycles)
	// Output:
	// state variables protected: 2
	// outputs identical: true
	// protected costs more cycles: true
}
