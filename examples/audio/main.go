// Audio: the ADPCM decoder's predictor and step index are the textbook
// state variables of the paper — corrupting them garbles every later
// sample. This example shows duplication checks catching exactly those
// faults while leaving per-sample soft math unprotected.
//
//	go run ./examples/audio
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	bench, err := softft.GetBenchmark("g721dec")
	if err != nil {
		log.Fatal(err)
	}
	prog, err := bench.Program()
	if err != nil {
		log.Fatal(err)
	}

	// Duplication only: no profiling needed, 3 state variables (pred,
	// index, loop counter) get mirrored producer chains.
	hard, stats, err := prog.Protect(softft.DuplicationOnly, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("g721dec: %d static instrs, %d state variables, %d duplicated instrs\n",
		prog.NumInstrs(), stats.StateVars, stats.DuplicatedInstrs)

	base, err := prog.Run(bench.TestInput())
	if err != nil {
		log.Fatal(err)
	}
	prot, err := hard.Run(bench.TestInput())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("decode cost: %d -> %d cycles (%.1f%% overhead)\n",
		base.Cycles, prot.Cycles, 100*(float64(prot.Cycles)/float64(base.Cycles)-1))

	c := bench.NewCampaign(600)
	before, err := prog.InjectFaults(bench.TestInput(), c)
	if err != nil {
		log.Fatal(err)
	}
	after, err := hard.InjectFaults(bench.TestInput(), c)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\n%-12s %s\n", "unprotected:", before)
	fmt.Printf("%-12s %s\n", "protected:", after)
	fmt.Printf("\nthe %d SWDetects are the mirrored predictor chains disagreeing —\n", after.SWDetected)
	fmt.Println("each one was a fault that would have distorted all remaining audio.")
}
