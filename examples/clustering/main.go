// Clustering: protect the kmeans benchmark and show that unacceptable
// label corruptions (more than 10% of points relabeled) become detections.
//
//	go run ./examples/clustering
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	bench, err := softft.GetBenchmark("kmeans")
	if err != nil {
		log.Fatal(err)
	}
	prog, err := bench.Program()
	if err != nil {
		log.Fatal(err)
	}

	// Show the fault-free clustering first.
	res, err := prog.Run(bench.TestInput())
	if err != nil {
		log.Fatal(err)
	}
	labels, err := res.Ints("out")
	if err != nil {
		log.Fatal(err)
	}
	counts := map[int64]int{}
	for _, l := range labels[:96] {
		counts[l]++
	}
	fmt.Printf("fault-free clustering of 96 points into %d clusters: %v\n", len(counts), counts)

	prof, err := prog.ProfileValues(bench.TrainInput())
	if err != nil {
		log.Fatal(err)
	}
	hard, stats, err := prog.Protect(softft.DuplicationWithValueChecks, prof)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("protection: %d state vars (iteration/assignment state), %d value checks\n",
		stats.StateVars, stats.ValueChecks)

	c := bench.NewCampaign(600)
	before, err := prog.InjectFaults(bench.TestInput(), c)
	if err != nil {
		log.Fatal(err)
	}
	after, err := hard.InjectFaults(bench.TestInput(), c)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nunprotected: %s\n", before)
	fmt.Printf("protected:   %s\n", after)
	fmt.Printf("\nunacceptable relabelings (>10%% of points): %d -> %d per %d faults\n",
		before.USDCs, after.USDCs, c.Trials)
}
