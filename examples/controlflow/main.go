// Controlflow: the paper's protection covers data faults but explicitly
// defers branch-target faults to signature-based control-flow checking
// (§IV-C). This example composes both: selective duplication + value checks
// for register faults, CFCSS-style signatures for branch faults.
//
//	go run ./examples/controlflow
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	bench, err := softft.GetBenchmark("segm")
	if err != nil {
		log.Fatal(err)
	}
	prog, err := bench.Program()
	if err != nil {
		log.Fatal(err)
	}

	prof, err := prog.ProfileValues(bench.TrainInput())
	if err != nil {
		log.Fatal(err)
	}
	hard, _, err := prog.Protect(softft.DuplicationWithValueChecks, prof)
	if err != nil {
		log.Fatal(err)
	}
	full, cfcStats, err := hard.WithControlFlowChecks()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("segm: %d blocks signature-checked, %d CFC checks (%d fan-ins uncheckable)\n\n",
		cfcStats.Blocks, cfcStats.Checks, cfcStats.Unchecked)

	programs := []struct {
		name string
		p    *softft.Program
	}{
		{"unprotected", prog},
		{"dup+valchks", hard},
		{"dup+valchks+cfc", full},
	}

	for _, model := range []struct {
		name   string
		branch bool
	}{
		{"register bit flips", false},
		{"branch-target faults", true},
	} {
		fmt.Printf("fault model: %s\n", model.name)
		for _, pr := range programs {
			c := bench.NewCampaign(400)
			c.BranchTargets = model.branch
			out, err := pr.p.InjectFaults(bench.TestInput(), c)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("  %-16s %s", pr.name, out)
			if out.SWDetected > 0 {
				fmt.Printf("  [dup:%d val:%d cfc:%d]",
					out.SWDetectedDup, out.SWDetectedValue, out.SWDetectedCFC)
			}
			fmt.Println()
		}
		fmt.Println()
	}

	fmt.Println("The duplication/value checks carry the register-fault model; the")
	fmt.Println("signature checks carry the branch-fault model. Composed, the program")
	fmt.Println("is covered against both — exactly the combination the paper proposes.")
}
