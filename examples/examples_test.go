// Package examples_test pins the core facade path of each example under
// examples/: every main.go there is a narrative program (fault-injection
// campaigns, printed tables), so instead of executing the binaries these
// tests drive the same softft calls each example is built on and assert the
// results are non-empty and deterministic across repeated runs.
package examples_test

import (
	"fmt"
	"testing"

	softft "repro"
)

// quickstartSource mirrors examples/quickstart/main.go: a contrast filter
// whose running average and loop counter are the loop-carried state.
const quickstartSource = `
global int in[1024];
global int params[1];
global int out[1024];

void main() {
	int n = params[0];
	int avg = 0;
	for (int i = 0; i < n; i += 1) {
		avg = (avg * 7 + in[i]) >> 3;
		int v = in[i] + ((in[i] - avg) >> 1);
		out[i] = clampi(v, 0, 255);
	}
}`

func ramp(n int, step int64) []int64 {
	out := make([]int64, n)
	for i := range out {
		out[i] = (int64(i) * step) % 256
	}
	return out
}

// runBenchmark performs the shared protect-and-run spine of the benchmark
// examples and returns a printable fingerprint of everything observable.
func runBenchmark(t *testing.T, name string, mode softft.Mode) string {
	t.Helper()
	bench, err := softft.GetBenchmark(name)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := bench.Program()
	if err != nil {
		t.Fatal(err)
	}
	var prof *softft.Profile
	if mode == softft.DuplicationWithValueChecks {
		if prof, err = prog.ProfileValues(bench.TrainInput()); err != nil {
			t.Fatal(err)
		}
	}
	hard, stats, err := prog.Protect(mode, prof)
	if err != nil {
		t.Fatal(err)
	}
	res, err := hard.Run(bench.TestInput())
	if err != nil {
		t.Fatal(err)
	}
	out, err := res.Ints("out")
	if err != nil {
		t.Fatal(err)
	}
	if len(out) == 0 {
		t.Fatalf("%s: empty output", name)
	}
	return fmt.Sprintf("%s mode=%s statevars=%d dup=%d valchecks=%d cycles=%d out=%v",
		name, mode, stats.StateVars, stats.DuplicatedInstrs, stats.ValueChecks,
		res.Cycles, out[:min(16, len(out))])
}

func TestExamples(t *testing.T) {
	cases := []struct {
		example string
		run     func(t *testing.T) string
	}{
		{"quickstart", func(t *testing.T) string {
			prog, err := softft.Compile("contrast", quickstartSource)
			if err != nil {
				t.Fatal(err)
			}
			train := softft.NewInput().SetInts("in", ramp(1024, 3)).SetInts("params", []int64{1024})
			test := softft.NewInput().SetInts("in", ramp(512, 7)).SetInts("params", []int64{512})
			prof, err := prog.ProfileValues(train)
			if err != nil {
				t.Fatal(err)
			}
			hard, stats, err := prog.Protect(softft.DuplicationWithValueChecks, prof)
			if err != nil {
				t.Fatal(err)
			}
			res, err := hard.Run(test)
			if err != nil {
				t.Fatal(err)
			}
			out, err := res.Ints("out")
			if err != nil {
				t.Fatal(err)
			}
			if len(out) == 0 || stats.StateVars == 0 {
				t.Fatalf("degenerate quickstart result: %d outputs, %d state vars", len(out), stats.StateVars)
			}
			return fmt.Sprintf("quickstart statevars=%d checks=%d cycles=%d out=%v",
				stats.StateVars, stats.ValueChecks, res.Cycles, out[:16])
		}},
		{"audio", func(t *testing.T) string {
			// examples/audio: g721dec under duplication only (no profile).
			return runBenchmark(t, "g721dec", softft.DuplicationOnly)
		}},
		{"clustering", func(t *testing.T) string {
			// examples/clustering: kmeans under duplication + value checks;
			// additionally pin that the fault-free clustering is sane.
			fp := runBenchmark(t, "kmeans", softft.DuplicationWithValueChecks)
			bench, err := softft.GetBenchmark("kmeans")
			if err != nil {
				t.Fatal(err)
			}
			prog, err := bench.Program()
			if err != nil {
				t.Fatal(err)
			}
			res, err := prog.Run(bench.TestInput())
			if err != nil {
				t.Fatal(err)
			}
			labels, err := res.Ints("out")
			if err != nil {
				t.Fatal(err)
			}
			counts := map[int64]int{}
			for _, l := range labels[:96] {
				counts[l]++
			}
			if len(counts) < 2 {
				t.Fatalf("kmeans degenerated to %d cluster(s)", len(counts))
			}
			return fp
		}},
		{"controlflow", func(t *testing.T) string {
			// examples/controlflow: segm with value checks plus CFC layer.
			bench, err := softft.GetBenchmark("segm")
			if err != nil {
				t.Fatal(err)
			}
			prog, err := bench.Program()
			if err != nil {
				t.Fatal(err)
			}
			prof, err := prog.ProfileValues(bench.TrainInput())
			if err != nil {
				t.Fatal(err)
			}
			hard, _, err := prog.Protect(softft.DuplicationWithValueChecks, prof)
			if err != nil {
				t.Fatal(err)
			}
			full, cfcStats, err := hard.WithControlFlowChecks()
			if err != nil {
				t.Fatal(err)
			}
			if cfcStats.Blocks == 0 || cfcStats.Checks == 0 {
				t.Fatalf("CFC instrumented nothing: %+v", cfcStats)
			}
			res, err := full.Run(bench.TestInput())
			if err != nil {
				t.Fatal(err)
			}
			out, err := res.Ints("out")
			if err != nil {
				t.Fatal(err)
			}
			if len(out) == 0 {
				t.Fatal("segm: empty output")
			}
			return fmt.Sprintf("segm cfcblocks=%d cfcchecks=%d cycles=%d out=%v",
				cfcStats.Blocks, cfcStats.Checks, res.Cycles, out[:min(16, len(out))])
		}},
		{"imaging", func(t *testing.T) string {
			// examples/imaging: jpegdec across all four protection modes;
			// fault-free outputs must agree, cycles must be recorded.
			bench, err := softft.GetBenchmark("jpegdec")
			if err != nil {
				t.Fatal(err)
			}
			prog, err := bench.Program()
			if err != nil {
				t.Fatal(err)
			}
			prof, err := prog.ProfileValues(bench.TrainInput())
			if err != nil {
				t.Fatal(err)
			}
			fp := ""
			var ref []int64
			for _, mode := range []softft.Mode{
				softft.Original,
				softft.DuplicationOnly,
				softft.DuplicationWithValueChecks,
				softft.FullDuplication,
			} {
				p := prog
				if mode != softft.Original {
					if p, _, err = prog.Protect(mode, prof); err != nil {
						t.Fatal(err)
					}
				}
				res, err := p.Run(bench.TestInput())
				if err != nil {
					t.Fatal(err)
				}
				out, err := res.Ints("out")
				if err != nil {
					t.Fatal(err)
				}
				if ref == nil {
					ref = out
				} else {
					for i := range ref {
						if ref[i] != out[i] {
							t.Fatalf("mode %s changed fault-free out[%d]: %d != %d", mode, i, out[i], ref[i])
						}
					}
				}
				fp += fmt.Sprintf("%s=%dcy ", mode, res.Cycles)
			}
			return fp
		}},
	}

	for _, tc := range cases {
		tc := tc
		t.Run(tc.example, func(t *testing.T) {
			first := tc.run(t)
			if first == "" {
				t.Fatal("empty fingerprint")
			}
			if again := tc.run(t); again != first {
				t.Fatalf("example path not deterministic:\n1st: %s\n2nd: %s", first, again)
			}
		})
	}
}
