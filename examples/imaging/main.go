// Imaging: the paper's motivating scenario (Figure 1) on the built-in JPEG
// decoder benchmark — most faults are invisible, a few ruin the image, and
// low-budget protection removes the ruinous ones.
//
//	go run ./examples/imaging
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	bench, err := softft.GetBenchmark("jpegdec")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(bench.Description())

	prog, err := bench.Program()
	if err != nil {
		log.Fatal(err)
	}

	// Protect with the full scheme: profile on the training image, then
	// selective duplication + expected value checks.
	prof, err := prog.ProfileValues(bench.TrainInput())
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\n%-18s %8s %8s %8s %8s %8s %9s %9s\n",
		"technique", "masked", "hwdet", "swdet", "fail", "usdc", "coverage", "overhead")

	base, err := prog.Run(bench.TestInput())
	if err != nil {
		log.Fatal(err)
	}

	for _, mode := range []softft.Mode{
		softft.Original,
		softft.DuplicationOnly,
		softft.DuplicationWithValueChecks,
		softft.FullDuplication,
	} {
		p := prog
		if mode != softft.Original {
			p, _, err = prog.Protect(mode, prof)
			if err != nil {
				log.Fatal(err)
			}
		}
		res, err := p.Run(bench.TestInput())
		if err != nil {
			log.Fatal(err)
		}
		overhead := float64(res.Cycles)/float64(base.Cycles) - 1

		out, err := p.InjectFaults(bench.TestInput(), bench.NewCampaign(500))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-18s %8d %8d %8d %8d %8d %8.1f%% %8.1f%%\n",
			mode, out.Masked, out.HWDetected, out.SWDetected, out.Failures,
			out.USDCs, 100*out.Coverage(), 100*overhead)
	}

	fmt.Println("\nReading the table: faults that land in soft per-pixel math mostly")
	fmt.Println("mask or degrade the image imperceptibly (acceptable SDCs count as")
	fmt.Println("masked); the protected builds convert unacceptable corruptions into")
	fmt.Println("cheap detections instead of paying for full duplication.")
}
