// Quickstart: protect a small image filter with the softft library and
// measure what a transient fault can do to it.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro"
)

// A brightness/contrast filter with a running average: `avg` and the loop
// counter are loop-carried state variables; the per-pixel math is soft.
const source = `
global int in[1024];
global int params[1];
global int out[1024];

void main() {
	int n = params[0];
	int avg = 0;
	for (int i = 0; i < n; i += 1) {
		avg = (avg * 7 + in[i]) >> 3;     // exponential moving average
		int v = in[i] + ((in[i] - avg) >> 1); // local contrast boost
		out[i] = clampi(v, 0, 255);
	}
}`

func main() {
	// 1. Compile.
	prog, err := softft.Compile("contrast", source)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("compiled %q: %d static IR instructions\n", prog.Name(), prog.NumInstrs())

	// 2. Build inputs: a training image for profiling, a test image to run.
	train := softft.NewInput().SetInts("in", ramp(1024, 3)).SetInts("params", []int64{1024})
	test := softft.NewInput().SetInts("in", ramp(512, 7)).SetInts("params", []int64{512})

	// 3. Value-profile on the training input (one-time offline step).
	prof, err := prog.ProfileValues(train)
	if err != nil {
		log.Fatal(err)
	}

	// 4. Protect: duplicate state-variable producer chains, add expected
	// value checks on the soft computation.
	hard, stats, err := prog.Protect(softft.DuplicationWithValueChecks, prof)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("protected: %d state vars, %d instrs duplicated, %d dup checks, %d value checks\n",
		stats.StateVars, stats.DuplicatedInstrs, stats.DupChecks, stats.ValueChecks)

	// 5. Fault-free cost.
	base, err := prog.Run(test)
	if err != nil {
		log.Fatal(err)
	}
	prot, err := hard.Run(test)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("runtime: %d -> %d cycles (%.1f%% overhead)\n",
		base.Cycles, prot.Cycles, 100*(float64(prot.Cycles)/float64(base.Cycles)-1))

	// 6. Fault injection: compare unprotected vs protected.
	campaign := softft.Campaign{Trials: 400, Seed: 1, Output: "out"}
	for _, p := range []*softft.Program{prog, hard} {
		out, err := p.InjectFaults(test, campaign)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-28s %s\n", p.Name()+":", out)
	}
}

// ramp builds a deterministic sawtooth test image.
func ramp(n int, step int64) []int64 {
	out := make([]int64, n)
	v := int64(0)
	for i := range out {
		v = (v + step) % 256
		out[i] = v
	}
	return out
}
