package softft

import (
	"context"
	"fmt"
	"time"

	"repro/internal/fault"
	"repro/internal/vm"
)

// Campaign configures a fault-injection campaign against a program.
type Campaign struct {
	// Trials is the number of single-bit fault injections.
	Trials int
	// FaultModel selects the fault model by registry name (FaultModels
	// lists them): "" or "reg-flip" is the paper's model — one bit of one
	// live register; "branch-target" corrupts branch destinations;
	// "mem-flip" flips a bit of the memory image; "burst" corrupts 2–8
	// adjacent bits of a register or memory word; "stuck-at" re-forces a
	// flipped memory bit until the program retires; "intermittent" is a
	// duration-bounded stuck-at.
	FaultModel string
	// BranchTargets switches the fault model from register bit flips to
	// branch-target corruptions (see Program.WithControlFlowChecks).
	//
	// Deprecated: set FaultModel to "branch-target" instead. Setting both
	// fields is a validation error.
	BranchTargets bool
	// Seed makes the campaign reproducible.
	Seed int64
	// Output names the global holding the program's result.
	Output string
	// Measure scores a faulty output against the fault-free output; nil
	// means any numerical difference is unacceptable.
	Measure func(golden, test []uint64) float64
	// Acceptable judges a Measure value; nil with nil Measure means only
	// bit-exact outputs are acceptable.
	Acceptable func(v float64) bool
	// Workers bounds campaign parallelism. 0 (the default) uses one worker
	// per available CPU (GOMAXPROCS).
	Workers int
	// WatchdogFactor bounds each faulty run at fault-free-dynamic-length ×
	// factor before declaring a runaway execution (a Failure outcome).
	// 0 uses the default factor of 20.
	WatchdogFactor int64
	// LargeChange is the relative value-change threshold separating "large"
	// from "small" register corruptions in outcome attribution (the paper's
	// Figure 2 split). 0 uses the default threshold of 1.0, i.e. a 100%
	// relative change.
	LargeChange float64
	// Checkpoints controls golden-prefix snapshotting: trials restore the
	// snapshot nearest below their injection point instead of re-executing
	// the fault-free prefix. 0 (the default) sizes the snapshot schedule
	// automatically; > 0 requests an explicit count; < 0 disables
	// checkpointing. Results are bit-identical either way — this is purely
	// a throughput knob.
	Checkpoints int
	// Lockstep controls batched trial execution inside checkpoint bins: one
	// carrier machine advances the shared golden prefix once and every trial
	// peels off at its own divergence point. 0 (the default) batches
	// automatically where profitable; > 0 forces batching for every bin of
	// at least that many trials; < 0 disables it. Results are bit-identical
	// either way — like Checkpoints, this is purely a throughput knob.
	Lockstep int
	// Fuse controls superinstruction dispatch in the execution engine: 0
	// (the default) keeps fused dispatch enabled; < 0 forces per-instruction
	// dispatch. Results are bit-identical either way — like Checkpoints and
	// Lockstep, this is purely a throughput knob (and an escape hatch).
	Fuse int
	// ShardStart and ShardEnd restrict the campaign to the trial subrange
	// [ShardStart, ShardEnd). Both zero (the default) runs every trial.
	// Trial indices are absolute: seeds, fault plans, and outcomes of a
	// shard run are identical to the same trials of a full run, so a
	// campaign may be split into disjoint shards executed by separate
	// processes and their journals merged (MergeShardOutcomes) into
	// Outcomes bit-identical to a single-process run. Sharding requires a
	// Journal (a shard's results are its journal).
	ShardStart int
	ShardEnd   int
	// Journal, when nonempty, names a file to which every decided trial is
	// durably appended (checksummed, batched, fsynced per batch), so a
	// killed campaign can be resumed without losing completed work.
	Journal string
	// Resume replays an existing Journal before running: decided trials are
	// restored and only the remainder executes. A resumed campaign's
	// Outcomes are bit-identical to an uninterrupted run; a journal written
	// under different result-affecting settings is rejected.
	Resume bool
	// TrialTimeout, when positive, bounds each trial in wall-clock time on
	// top of the watchdog. A trial that misses the deadline twice is
	// quarantined as an Anomaly rather than classified.
	TrialTimeout time.Duration
	// TargetCI, when positive, stops the campaign early once the 95%
	// confidence intervals for Coverage and USDCRate are both no wider than
	// this value (e.g. 0.05 for ±2.5%).
	TargetCI float64
	// OnTrial, when non-nil, is invoked at the start of each trial attempt
	// with the trial index. It runs under the trial's panic isolation.
	OnTrial func(trial int)
	// OnProgress, when non-nil, is invoked after every decided trial
	// (including journal-replayed ones) with the campaign's running
	// totals: trials decided so far, of which covered (masked or
	// detected) and unacceptable silent corruptions. Calls come from
	// worker goroutines and may arrive out of order; treat the triple
	// with the largest done as current. It must not block.
	OnProgress func(done, covered, usdc int)
}

// Anomaly describes a quarantined trial: one that panicked or repeatedly
// exceeded TrialTimeout and was excluded from the outcome counts. Seed is
// the trial's rng seed, sufficient to replay the offending fault plan.
type Anomaly struct {
	Trial  int
	Seed   int64
	Reason string // "panic" or "timeout"
	Stack  string // panic stack trace, when Reason is "panic"
}

// Outcomes aggregates a campaign: counts per outcome class plus the
// SDC/ASDC decomposition (see the paper's §IV-C taxonomy).
type Outcomes struct {
	// FaultModel is the resolved registry name of the campaign's fault
	// model ("reg-flip" when the Campaign left it empty).
	FaultModel string
	Trials     int
	Masked     int // correct or acceptable-quality output
	HWDetected int // hardware symptom within the detection window
	SWDetected int // a software check fired
	Failures   int // crash or runaway execution
	USDCs      int // unacceptable silent data corruptions
	SDCs       int // any numerically different completed output
	ASDCs      int // acceptable SDCs
	// Detected by duplication comparisons, expected-value checks,
	// control-flow signature checks, and ABFT kernel checksums respectively.
	SWDetectedDup, SWDetectedValue, SWDetectedCFC, SWDetectedABFT int
	// GoldenDyn/GoldenCycles describe the fault-free run.
	GoldenDyn, GoldenCycles int64
	// Anomalies lists quarantined trials (panics, hangs); they are not
	// counted in Trials or any outcome class.
	Anomalies []Anomaly
	// Partial is set when the campaign was cancelled before completing all
	// trials; the counts cover only the trials that finished.
	Partial bool
	// EarlyStopped is set when TargetCI halted the campaign with the
	// requested precision already reached; TrialsSaved counts the trials it
	// never ran.
	EarlyStopped bool
	TrialsSaved  int
	// Replayed counts trials restored from the journal by Resume.
	Replayed int
}

// Coverage returns the fraction of faults that were masked or detected.
func (o *Outcomes) Coverage() float64 {
	if o.Trials == 0 {
		return 0
	}
	return float64(o.Masked+o.HWDetected+o.SWDetected) / float64(o.Trials)
}

// USDCRate returns unacceptable silent corruptions as a fraction of trials.
func (o *Outcomes) USDCRate() float64 {
	if o.Trials == 0 {
		return 0
	}
	return float64(o.USDCs) / float64(o.Trials)
}

// CoverageInterval returns the 95% Wilson score interval for Coverage.
// The interval always contains the point estimate, stays within [0, 1]
// even for zero or unanimous counts (where the normal approximation
// degenerates), and narrows as Trials grows; Campaign.TargetCI compares
// its width (and USDCInterval's) against the requested precision when
// deciding to stop a campaign early.
func (o *Outcomes) CoverageInterval() (lo, hi float64) {
	return fault.Wilson(o.Masked+o.HWDetected+o.SWDetected, o.Trials, 1.96)
}

// USDCInterval returns the 95% Wilson score interval for USDCRate. Its
// guarantees match CoverageInterval's: the point estimate lies inside,
// bounds stay in [0, 1], and width shrinks as Trials grows — USDC rates
// are typically near zero, exactly where Wilson intervals remain sound
// and Wald intervals collapse.
func (o *Outcomes) USDCInterval() (lo, hi float64) {
	return fault.Wilson(o.USDCs, o.Trials, 1.96)
}

// FaultModels returns the registered fault-model names in registration
// order, valid as Campaign.FaultModel values.
func FaultModels() []string { return fault.ModelNames() }

func (o *Outcomes) String() string {
	var s string
	if o.Trials == 0 {
		// Reachable: every trial quarantined, or cancellation before the
		// first trial completed. Coverage is undefined, not 0%.
		s = "no completed trials"
	} else {
		s = fmt.Sprintf("trials=%d masked=%d hw=%d sw=%d fail=%d usdc=%d (coverage %.1f%%)",
			o.Trials, o.Masked, o.HWDetected, o.SWDetected, o.Failures, o.USDCs, 100*o.Coverage())
	}
	if n := len(o.Anomalies); n > 0 {
		s += fmt.Sprintf(" [%d quarantined]", n)
	}
	if o.Partial {
		s += " [partial]"
	}
	if o.EarlyStopped {
		s += fmt.Sprintf(" [early stop, %d trials saved]", o.TrialsSaved)
	}
	return s
}

// campaignSetup validates a Campaign, applies its defaults, and builds the
// fault.Target/fault.Config pair shared by every injection entry point, so
// the plain and recovery campaign paths cannot drift.
func (p *Program) campaignSetup(in *Input, c Campaign) (fault.Target, fault.Config, error) {
	if c.Output == "" {
		return fault.Target{}, fault.Config{}, fmt.Errorf("softft: Campaign.Output: required (name the global holding the program's result)")
	}
	if c.Trials < 0 {
		return fault.Target{}, fault.Config{}, fmt.Errorf("softft: Campaign.Trials: negative count %d", c.Trials)
	}
	if c.Workers < 0 {
		return fault.Target{}, fault.Config{}, fmt.Errorf("softft: Campaign.Workers: negative count %d", c.Workers)
	}
	if c.Trials == 0 {
		c.Trials = 100
	}
	measure := c.Measure
	acceptable := c.Acceptable
	if measure == nil {
		measure = func(golden, test []uint64) float64 { return 0 }
		acceptable = func(float64) bool { return false }
	} else if acceptable == nil {
		return fault.Target{}, fault.Config{}, fmt.Errorf("softft: Campaign.Acceptable: required when Campaign.Measure is set")
	}

	cfg := fault.DefaultConfig()
	cfg.Trials = c.Trials
	if c.Seed != 0 {
		cfg.Seed = c.Seed
	}
	if c.BranchTargets {
		if c.FaultModel != "" {
			return fault.Target{}, fault.Config{}, fmt.Errorf("softft: Campaign.BranchTargets: deprecated shim conflicts with Campaign.FaultModel %q (set FaultModel to %q and drop BranchTargets)", c.FaultModel, fault.ModelBranchTarget)
		}
		cfg.Model = fault.ModelBranchTarget
	} else if c.FaultModel != "" {
		if _, err := fault.LookupModel(c.FaultModel); err != nil {
			return fault.Target{}, fault.Config{}, fmt.Errorf("softft: Campaign.FaultModel: %v", err)
		}
		cfg.Model = c.FaultModel
	}
	if c.Workers > 0 {
		cfg.Workers = c.Workers
	}
	if c.WatchdogFactor > 0 {
		cfg.WatchdogFactor = c.WatchdogFactor
	}
	if c.LargeChange > 0 {
		cfg.LargeChange = c.LargeChange
	}
	cfg.Checkpoints = c.Checkpoints
	cfg.Lockstep = c.Lockstep
	cfg.Fuse = c.Fuse
	if (c.ShardStart != 0 || c.ShardEnd != 0) && c.Journal == "" {
		return fault.Target{}, fault.Config{}, fmt.Errorf("softft: Campaign.ShardStart/ShardEnd: sharding requires Campaign.Journal (a shard's results are its journal)")
	}
	cfg.ShardStart = c.ShardStart
	cfg.ShardEnd = c.ShardEnd
	cfg.JournalPath = c.Journal
	cfg.Resume = c.Resume
	cfg.TrialTimeout = c.TrialTimeout
	cfg.TargetCI = c.TargetCI
	cfg.OnTrial = c.OnTrial
	cfg.OnProgress = c.OnProgress
	target := fault.Target{
		Name:       p.name,
		Bind:       func(m *vm.Machine) error { return in.bind(m) },
		Output:     c.Output,
		Measure:    measure,
		Acceptable: acceptable,
	}
	return target, cfg, nil
}

// InjectFaults runs a fault-injection campaign: each trial flips one bit of
// one live register at a random point of execution and classifies the
// outcome.
func (p *Program) InjectFaults(in *Input, c Campaign) (*Outcomes, error) {
	return p.InjectFaultsContext(context.Background(), in, c)
}

// InjectFaultsContext is InjectFaults with cancellation: when ctx is
// cancelled the campaign's workers stop between trials and the completed
// trials are returned as valid partial Outcomes (Partial set) rather than
// discarded — only setup and infrastructure failures return errors.
func (p *Program) InjectFaultsContext(ctx context.Context, in *Input, c Campaign) (*Outcomes, error) {
	target, cfg, err := p.campaignSetup(in, c)
	if err != nil {
		return nil, err
	}
	rep, err := fault.Run(ctx, target, p.mod, p.name, cfg)
	if err != nil {
		return nil, err
	}
	return outcomesFromReport(rep), nil
}

// outcomesFromReport maps a campaign Report onto the public Outcomes
// shape. It is the single mapping shared by direct campaigns and shard
// merges, so the two can never drift.
func outcomesFromReport(rep *fault.Report) *Outcomes {
	ta := rep.Tally
	out := &Outcomes{
		FaultModel:      rep.FaultModel,
		Trials:          ta.N,
		Masked:          ta.Count[fault.Masked],
		HWDetected:      ta.Count[fault.HWDetect],
		SWDetected:      ta.Count[fault.SWDetect],
		Failures:        ta.Count[fault.Failure],
		USDCs:           ta.Count[fault.USDC],
		SDCs:            ta.SDC,
		ASDCs:           ta.ASDC,
		SWDetectedDup:   ta.SWDetectDup,
		SWDetectedValue: ta.SWDetectValue,
		SWDetectedCFC:   ta.SWDetectCFC,
		SWDetectedABFT:  ta.SWDetectABFT,
		GoldenDyn:       rep.GoldenDyn,
		GoldenCycles:    rep.GoldenCycles,
		Partial:         rep.Partial,
		EarlyStopped:    rep.EarlyStopped,
		TrialsSaved:     rep.TrialsSaved,
		Replayed:        rep.Replayed,
	}
	for _, a := range rep.Anomalies {
		out.Anomalies = append(out.Anomalies, Anomaly(a))
	}
	return out
}

// MergeShardOutcomes folds the journals of one campaign's shard runs (see
// Campaign.ShardStart) into a single Outcomes, bit-identical — counts,
// SDC decomposition, Anomalies ordering — to the Outcomes a
// single-process run of the whole campaign produces. The journals must
// share one campaign identity (workload, scheme, fault model, seed, trial
// count, golden statistics); journals that never received a header (a
// crash before the first write batch) are tolerated and contribute
// nothing. Trials no journal decided leave the merged Outcomes Partial.
func MergeShardOutcomes(paths []string) (*Outcomes, error) {
	rep, err := fault.MergeShardJournals(paths)
	if err != nil {
		return nil, err
	}
	return outcomesFromReport(rep), nil
}

// RecoveryOutcome summarizes a campaign run under restart recovery
// (paper §IV-D): every software detection re-executes the program, which
// for a transient fault yields the correct output.
type RecoveryOutcome struct {
	Trials    int
	Recovered int     // detections converted into correct completions
	StillUSDC int     // unacceptable outputs that escaped detection
	Failures  int     // crashes / runaway executions
	Overhead  float64 // mean slowdown vs the fault-free run, incl. re-execution
}

// InjectFaultsWithRecovery runs a campaign in which software detections
// trigger restart recovery. It errors if any recovered run's output differs
// from the fault-free output (it cannot, for transient faults — the check
// is an internal soundness assertion).
func (p *Program) InjectFaultsWithRecovery(in *Input, c Campaign) (*RecoveryOutcome, error) {
	return p.InjectFaultsWithRecoveryContext(context.Background(), in, c)
}

// InjectFaultsWithRecoveryContext is InjectFaultsWithRecovery with
// cancellation: when ctx is cancelled the campaign stops between trials and
// the context's error is returned.
func (p *Program) InjectFaultsWithRecoveryContext(ctx context.Context, in *Input, c Campaign) (*RecoveryOutcome, error) {
	target, cfg, err := p.campaignSetup(in, c)
	if err != nil {
		return nil, err
	}
	rep, err := fault.RunWithRecovery(ctx, target, p.mod, p.name, cfg)
	if err != nil {
		return nil, err
	}
	return &RecoveryOutcome{
		Trials:    rep.Trials,
		Recovered: rep.Recovered,
		StillUSDC: rep.StillUSDC,
		Failures:  rep.Failures,
		Overhead:  rep.RecoveryOverhead(),
	}, nil
}
