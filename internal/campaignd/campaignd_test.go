package campaignd

// White-box coordinator tests under a fake clock: lease grant/renew/
// expiry, capped-backoff requeueing, the attempt cap, and fencing of
// stale lease IDs. No campaigns run here — the protocol is exercised
// directly, with journals absent (a crashed-before-first-write worker).
// End-to-end behavior with real workers lives in service_test.go and
// equivalence_test.go.

import (
	"strings"
	"testing"
	"time"
)

type fakeClock struct{ now time.Time }

func (f *fakeClock) Now() time.Time          { return f.now }
func (f *fakeClock) advance(d time.Duration) { f.now = f.now.Add(d) }

func testCoordinator(t *testing.T, clk *fakeClock, maxAttempts int) *Coordinator {
	t.Helper()
	co, err := New(Config{
		Dir:         t.TempDir(),
		LeaseTTL:    10 * time.Second,
		BaseBackoff: 1 * time.Second,
		MaxBackoff:  4 * time.Second,
		MaxAttempts: maxAttempts,
		Clock:       clk.Now,
	})
	if err != nil {
		t.Fatal(err)
	}
	return co
}

func submitJob(t *testing.T, co *Coordinator, shards int) string {
	t.Helper()
	id, err := co.Submit(JobSpec{Bench: "tiff2bw", Mode: "original", Trials: 8, Seed: 1, Shards: shards})
	if err != nil {
		t.Fatal(err)
	}
	return id
}

func TestSubmitValidation(t *testing.T) {
	co := testCoordinator(t, &fakeClock{now: time.Unix(1000, 0)}, 3)
	for _, spec := range []JobSpec{
		{Bench: "no-such-bench", Mode: "original", Trials: 8},
		{Bench: "tiff2bw", Mode: "no-such-mode", Trials: 8},
		{Bench: "tiff2bw", Mode: "original", Trials: 8, FaultModel: "cosmic-ray"},
		{Bench: "tiff2bw", Mode: "original", Trials: 0},
		{Bench: "tiff2bw", Mode: "original", Trials: 8, Shards: -1},
	} {
		if _, err := co.Submit(spec); err == nil {
			t.Errorf("Submit(%+v) accepted", spec)
		}
	}
	// More shards than trials clamps rather than creating empty shards.
	id, err := co.Submit(JobSpec{Bench: "tiff2bw", Mode: "original", Trials: 3, Shards: 8})
	if err != nil {
		t.Fatal(err)
	}
	st, _ := co.Status(id)
	if len(st.Shards) != 3 {
		t.Fatalf("3-trial job got %d shards", len(st.Shards))
	}
}

func TestShardRangesSplit(t *testing.T) {
	got := shardRanges(10, 3)
	want := [][2]int{{0, 4}, {4, 7}, {7, 10}}
	if len(got) != len(want) {
		t.Fatalf("ranges %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ranges %v, want %v", got, want)
		}
	}
}

func TestLeaseLifecycle(t *testing.T) {
	clk := &fakeClock{now: time.Unix(1000, 0)}
	co := testCoordinator(t, clk, 5)
	id := submitJob(t, co, 2)

	g1 := co.Lease("w1")
	g2 := co.Lease("w2")
	if !g1.OK || !g2.OK || g1.JobID != id || g1.Shard == g2.Shard {
		t.Fatalf("grants: %+v / %+v", g1, g2)
	}
	if g1.Lo != 0 || g1.Hi != 4 || g2.Lo != 4 || g2.Hi != 8 {
		t.Fatalf("ranges: [%d,%d) [%d,%d)", g1.Lo, g1.Hi, g2.Lo, g2.Hi)
	}
	if g1.Journal == g2.Journal || g1.Journal == "" {
		t.Fatalf("journal paths not distinct: %q %q", g1.Journal, g2.Journal)
	}
	if g := co.Lease("w3"); g.OK {
		t.Fatalf("third lease granted with no shards left: %+v", g)
	}

	// Heartbeats renew: w1 beats every 9s and stays alive across what
	// would otherwise be two expiries; w2 goes silent and loses its lease.
	clk.advance(9 * time.Second)
	if hb := co.Heartbeat(heartbeatRequest{LeaseID: g1.LeaseID, Worker: "w1"}); !hb.OK {
		t.Fatal("live heartbeat fenced")
	}
	clk.advance(9 * time.Second) // w2 now 18s silent, TTL 10s
	if hb := co.Heartbeat(heartbeatRequest{LeaseID: g1.LeaseID, Worker: "w1"}); !hb.OK {
		t.Fatal("renewed heartbeat fenced")
	}
	if hb := co.Heartbeat(heartbeatRequest{LeaseID: g2.LeaseID, Worker: "w2"}); hb.OK {
		t.Fatal("expired lease's heartbeat not fenced")
	}

	// w2's shard is behind a 1s backoff gate (attempt 1), then re-grants
	// as attempt 2 with a fresh journal path.
	if g := co.Lease("w3"); g.OK {
		t.Fatalf("re-grant before backoff gate: %+v", g)
	}
	clk.advance(2 * time.Second)
	g3 := co.Lease("w3")
	if !g3.OK || g3.Shard != g2.Shard || g3.Journal == g2.Journal {
		t.Fatalf("reassignment: %+v (was %+v)", g3, g2)
	}
	if g3.Resume {
		t.Fatal("resume set with no journaled work to resume")
	}

	// The dead worker's completion is fenced off.
	if c := co.Complete(completeRequest{LeaseID: g2.LeaseID, Worker: "w2"}); c.OK {
		t.Fatal("stale complete accepted")
	}

	st, _ := co.Status(id)
	if st.State != "running" {
		t.Fatalf("state %q", st.State)
	}
}

func TestBackoffCapsAndAttemptLimit(t *testing.T) {
	clk := &fakeClock{now: time.Unix(1000, 0)}
	co := testCoordinator(t, clk, 3)
	id, err := co.Submit(JobSpec{Bench: "tiff2bw", Mode: "original", Trials: 4, Seed: 1, Shards: 1})
	if err != nil {
		t.Fatal(err)
	}

	// Burn all 3 attempts through incomplete completions (no journal).
	wantGate := []time.Duration{1 * time.Second, 2 * time.Second, 4 * time.Second}
	for attempt := 1; attempt <= 3; attempt++ {
		clk.advance(10 * time.Second)
		g := co.Lease("w")
		if !g.OK {
			t.Fatalf("attempt %d not granted", attempt)
		}
		if c := co.Complete(completeRequest{LeaseID: g.LeaseID, Worker: "w", Err: "boom"}); !c.OK {
			t.Fatalf("attempt %d complete fenced", attempt)
		}
		sh := co.jobs[id].shards[0]
		if gate := sh.gate.Sub(clk.now); gate != wantGate[attempt-1] {
			t.Fatalf("attempt %d backoff %v, want %v (capped at %v)", attempt, gate, wantGate[attempt-1], co.cfg.MaxBackoff)
		}
	}

	// Attempt 4 would exceed MaxAttempts: the job fails instead.
	clk.advance(10 * time.Second)
	if g := co.Lease("w"); g.OK {
		t.Fatalf("lease granted past the attempt cap: %+v", g)
	}
	st, _ := co.Status(id)
	if st.State != "failed" || !strings.Contains(st.Failure, "exhausted") {
		t.Fatalf("job state %q, failure %q", st.State, st.Failure)
	}
}

func TestEarlyStopRevokesLeases(t *testing.T) {
	clk := &fakeClock{now: time.Unix(1000, 0)}
	co := testCoordinator(t, clk, 3)
	// 0.6 sits between the pooled coverage CI width at 3 trials (~0.73)
	// and at 7 trials (~0.56), so the stop decision flips exactly on the
	// second heartbeat below.
	id, err := co.Submit(JobSpec{Bench: "tiff2bw", Mode: "original", Trials: 8, Seed: 1, Shards: 2, TargetCI: 0.6})
	if err != nil {
		t.Fatal(err)
	}
	g1, g2 := co.Lease("w1"), co.Lease("w2")

	// A loose target and a few pooled trials: the next heartbeat after
	// the CIs tighten must carry Stop for every lease of the job.
	if hb := co.Heartbeat(heartbeatRequest{LeaseID: g1.LeaseID, Worker: "w1", Done: 3, Covered: 2}); hb.Stop {
		t.Fatal("stopped on 3 pooled trials with CI still wide")
	}
	hb := co.Heartbeat(heartbeatRequest{LeaseID: g2.LeaseID, Worker: "w2", Done: 4, Covered: 3})
	if !hb.OK || !hb.Stop {
		t.Fatalf("heartbeat after CI tightened: %+v", hb)
	}
	if hb := co.Heartbeat(heartbeatRequest{LeaseID: g1.LeaseID, Worker: "w1", Done: 3, Covered: 2}); !hb.Stop {
		t.Fatal("other lease not revoked")
	}
	st, _ := co.Status(id)
	if st.State != "stopping" {
		t.Fatalf("state %q, want stopping", st.State)
	}
	// No new grants while stopping.
	if g := co.Lease("w3"); g.OK {
		t.Fatalf("lease granted on a stopping job: %+v", g)
	}
}
