package campaignd

// The coordinator: job/shard state machine with time-bounded leases.
//
// Scheduling is FIFO over jobs and index order over shards. A shard's
// lifecycle is queued -> leased -> (done | queued again), with requeues
// gated by capped exponential backoff and bounded by MaxAttempts. Lease
// expiry is lazy — every request first sweeps expired leases — plus an
// explicit Tick for long idle stretches. All state transitions happen
// under one mutex; the work itself (campaign execution) lives in worker
// processes, so the lock only ever guards bookkeeping and journal
// replay/consolidation, never trial execution.

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	softft "repro"

	"repro/internal/fault"
)

// Config tunes a Coordinator. The zero value is usable: every field has
// a default chosen for local multi-process operation.
type Config struct {
	// Dir holds the per-shard journals. Defaults to the working directory.
	Dir string
	// LeaseTTL is how long a shard lease lives between heartbeats; a
	// worker that misses it is presumed dead and the shard is reassigned.
	// Default 10s.
	LeaseTTL time.Duration
	// BaseBackoff/MaxBackoff shape the capped exponential delay before a
	// failed or expired shard is re-granted: Base<<(attempt-1), capped at
	// Max. Defaults 500ms and 30s.
	BaseBackoff time.Duration
	MaxBackoff  time.Duration
	// MaxAttempts bounds grants per shard; exhausting it fails the whole
	// job (the shard is presumed poisonous). Default 12.
	MaxAttempts int
	// DefaultShards is the shard count for jobs that do not choose one.
	// Default 4.
	DefaultShards int
	// Clock is the time source (test hook). Default time.Now.
	Clock func() time.Time
	// Logf, when non-nil, receives one line per scheduling event.
	Logf func(format string, args ...any)
}

func (c Config) withDefaults() Config {
	if c.LeaseTTL <= 0 {
		c.LeaseTTL = 10 * time.Second
	}
	if c.BaseBackoff <= 0 {
		c.BaseBackoff = 500 * time.Millisecond
	}
	if c.MaxBackoff <= 0 {
		c.MaxBackoff = 30 * time.Second
	}
	if c.MaxAttempts <= 0 {
		c.MaxAttempts = 12
	}
	if c.DefaultShards <= 0 {
		c.DefaultShards = 4
	}
	if c.Clock == nil {
		c.Clock = time.Now
	}
	if c.Logf == nil {
		c.Logf = func(string, ...any) {}
	}
	return c
}

// Shard states.
const (
	shardQueued  = "queued"
	shardLeased  = "leased"
	shardDone    = "done"
	shardSkipped = "skipped" // early stop before the shard ever ran
)

type lease struct {
	id      string
	worker  string
	expires time.Time
}

type shard struct {
	job      *job
	index    int
	lo, hi   int
	state    string
	attempt  int       // grants so far
	gate     time.Time // backoff: no re-grant before this
	lease    *lease
	journal  string   // current attempt's journal path
	journals []string // every attempt's path, oldest first
	// Streamed progress (provisional; the journal is authoritative).
	done, covered, usdc int
	lastErr             string
}

type job struct {
	id       string
	spec     JobSpec
	shards   []*shard
	stopping bool // early stop: revoke leases, grant nothing
	finished bool
	out      *softft.Outcomes
	failure  string
}

// Coordinator owns the job table and implements the scheduling protocol.
// It is safe for concurrent use; see Handler for the HTTP binding.
type Coordinator struct {
	cfg Config

	mu     sync.Mutex
	jobs   map[string]*job
	order  []string          // submission order, the scheduling priority
	leases map[string]*shard // active lease ID -> holder
	nextID int
	m      metrics
}

// New creates a Coordinator, creating cfg.Dir if needed.
func New(cfg Config) (*Coordinator, error) {
	cfg = cfg.withDefaults()
	if cfg.Dir != "" {
		if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
			return nil, err
		}
	}
	return &Coordinator{
		cfg:    cfg,
		jobs:   make(map[string]*job),
		leases: make(map[string]*shard),
	}, nil
}

// shardRanges splits [0,trials) into n contiguous subranges, remainder
// spread over the leading shards. Workers must see the exact same split
// only through lease grants, so this is private to the coordinator.
func shardRanges(trials, n int) [][2]int {
	per, rem := trials/n, trials%n
	ranges := make([][2]int, 0, n)
	lo := 0
	for s := 0; s < n; s++ {
		hi := lo + per
		if s < rem {
			hi++
		}
		ranges = append(ranges, [2]int{lo, hi})
		lo = hi
	}
	return ranges
}

// Submit validates a spec and enqueues it. Validation is eager — a bad
// benchmark or scheme name fails here, not on some worker later.
func (co *Coordinator) Submit(spec JobSpec) (string, error) {
	if _, err := softft.GetBenchmark(spec.Bench); err != nil {
		return "", err
	}
	if _, err := softft.ParseMode(spec.Mode); err != nil {
		return "", err
	}
	if spec.FaultModel != "" {
		if _, err := fault.LookupModel(spec.FaultModel); err != nil {
			return "", err
		}
	}
	if spec.Trials <= 0 {
		return "", fmt.Errorf("campaignd: trials must be positive, got %d", spec.Trials)
	}
	if spec.Shards < 0 {
		return "", fmt.Errorf("campaignd: negative shard count %d", spec.Shards)
	}
	if spec.Shards == 0 {
		spec.Shards = co.cfg.DefaultShards
	}
	if spec.Shards > spec.Trials {
		spec.Shards = spec.Trials
	}

	co.mu.Lock()
	defer co.mu.Unlock()
	co.nextID++
	j := &job{id: fmt.Sprintf("job%03d", co.nextID), spec: spec}
	for s, r := range shardRanges(spec.Trials, spec.Shards) {
		j.shards = append(j.shards, &shard{job: j, index: s, lo: r[0], hi: r[1], state: shardQueued})
	}
	co.jobs[j.id] = j
	co.order = append(co.order, j.id)
	co.m.JobsSubmitted++
	co.cfg.Logf("campaignd: %s submitted: %s/%s %d trials, %d shards", j.id, spec.Bench, spec.Mode, spec.Trials, spec.Shards)
	return j.id, nil
}

// Tick sweeps expired leases and finalizes any job that became finishable
// without a request arriving (e.g. early stop with all workers gone).
// The HTTP handlers sweep on every request, so Tick only matters across
// idle stretches; serve loops call it on a timer.
func (co *Coordinator) Tick() {
	co.mu.Lock()
	defer co.mu.Unlock()
	co.sweep()
}

// sweep expires overdue leases and finalizes finishable jobs. Callers
// hold co.mu.
func (co *Coordinator) sweep() {
	now := co.cfg.Clock()
	for id, sh := range co.leases {
		if sh.lease == nil || sh.lease.id != id {
			delete(co.leases, id) // superseded entry
			continue
		}
		if now.After(sh.lease.expires) {
			co.cfg.Logf("campaignd: lease %s expired (worker %s, shard %d)", id, sh.lease.worker, sh.index)
			delete(co.leases, id)
			co.requeue(sh, now, "lease expired")
			co.m.LeaseExpiries++
		}
	}
	for _, jid := range co.order {
		co.maybeFinish(co.jobs[jid])
	}
}

// requeue returns a leased shard to the queue behind its backoff gate.
// Callers hold co.mu.
func (co *Coordinator) requeue(sh *shard, now time.Time, why string) {
	sh.lease = nil
	sh.state = shardQueued
	sh.lastErr = why
	backoff := co.cfg.BaseBackoff << uint(sh.attempt-1)
	if backoff > co.cfg.MaxBackoff || backoff <= 0 {
		backoff = co.cfg.MaxBackoff
	}
	sh.gate = now.Add(backoff)
}

// Lease grants the next available shard to a worker, or returns !OK.
func (co *Coordinator) Lease(worker string) leaseResponse {
	co.mu.Lock()
	defer co.mu.Unlock()
	co.sweep()
	now := co.cfg.Clock()

	for _, jid := range co.order {
		j := co.jobs[jid]
		if j.finished || j.stopping {
			continue
		}
		for _, sh := range j.shards {
			if sh.state != shardQueued || now.Before(sh.gate) {
				continue
			}
			if sh.attempt >= co.cfg.MaxAttempts {
				co.fail(j, fmt.Sprintf("shard %d exhausted %d attempts (last error: %s)", sh.index, sh.attempt, sh.lastErr))
				break
			}
			return co.grant(j, sh, worker, now)
		}
	}
	return leaseResponse{}
}

// grant leases sh of j to worker. For re-grants it first consolidates
// every previous attempt's journal into the new attempt's path, so the
// new worker resumes the union of all completed work and any superseded
// worker is fenced off onto files nobody reads again. Callers hold co.mu.
func (co *Coordinator) grant(j *job, sh *shard, worker string, now time.Time) leaseResponse {
	sh.attempt++
	path := filepath.Join(co.cfg.Dir, fmt.Sprintf("%s-shard%02d-a%d.journal", j.id, sh.index, sh.attempt))
	resume := false
	if len(sh.journals) > 0 {
		decided, err := fault.ConsolidateShardJournals(path, sh.journals)
		if err != nil {
			// A corrupt journal set is unrecoverable for this shard;
			// re-granting would hit it again, so fail the job loudly.
			co.fail(j, fmt.Sprintf("shard %d journal consolidation: %v", sh.index, err))
			return leaseResponse{}
		}
		resume = decided > 0
		co.cfg.Logf("campaignd: %s shard %d attempt %d resumes %d decided trials", j.id, sh.index, sh.attempt, decided)
	}
	sh.journal = path
	sh.journals = append(sh.journals, path)
	sh.state = shardLeased
	id := fmt.Sprintf("%s-s%d-a%d", j.id, sh.index, sh.attempt)
	sh.lease = &lease{id: id, worker: worker, expires: now.Add(co.cfg.LeaseTTL)}
	co.leases[id] = sh
	co.m.LeaseGrants++
	if sh.attempt > 1 {
		co.m.Retries++
	}
	co.cfg.Logf("campaignd: %s shard %d [%d,%d) leased to %s (attempt %d)", j.id, sh.index, sh.lo, sh.hi, worker, sh.attempt)
	return leaseResponse{
		OK: true, JobID: j.id, Spec: j.spec,
		Shard: sh.index, Lo: sh.lo, Hi: sh.hi,
		Journal: path, Resume: resume,
		LeaseID: id, TTLMS: co.cfg.LeaseTTL.Milliseconds(),
	}
}

// Heartbeat renews a lease and folds streamed progress into the pooled
// early-stop decision. Stale lease IDs are fenced (!OK).
func (co *Coordinator) Heartbeat(req heartbeatRequest) heartbeatResponse {
	co.mu.Lock()
	defer co.mu.Unlock()
	co.sweep()
	co.m.Heartbeats++

	sh, ok := co.leases[req.LeaseID]
	if !ok || sh.lease == nil || sh.lease.id != req.LeaseID {
		return heartbeatResponse{}
	}
	sh.lease.expires = co.cfg.Clock().Add(co.cfg.LeaseTTL)
	// OnProgress calls may arrive out of order; largest done wins.
	if req.Done > sh.done {
		sh.done, sh.covered, sh.usdc = req.Done, req.Covered, req.USDC
	}

	j := sh.job
	if j.spec.TargetCI > 0 && !j.stopping {
		done, covered, usdc := pooledCounts(j)
		if done > 0 && ciTight(covered, done, j.spec.TargetCI) && ciTight(usdc, done, j.spec.TargetCI) {
			j.stopping = true
			co.m.EarlyStops++
			co.cfg.Logf("campaignd: %s early stop at %d pooled trials (target CI %.3f)", j.id, done, j.spec.TargetCI)
		}
	}
	return heartbeatResponse{OK: true, Stop: j.stopping}
}

// Complete records the end of a shard run. Completeness is decided by
// replaying the shard's journal, never by the worker's say-so: a shard is
// done when its journal holds a decision for every trial in its range (or
// the job is stopping, where partial shards are the point).
func (co *Coordinator) Complete(req completeRequest) completeResponse {
	co.mu.Lock()
	defer co.mu.Unlock()
	co.sweep()

	sh, ok := co.leases[req.LeaseID]
	if !ok || sh.lease == nil || sh.lease.id != req.LeaseID {
		return completeResponse{}
	}
	delete(co.leases, req.LeaseID)
	j := sh.job
	now := co.cfg.Clock()

	decided := co.journalDecided(sh)
	switch {
	case decided == sh.hi-sh.lo:
		sh.lease = nil
		sh.state = shardDone
		co.cfg.Logf("campaignd: %s shard %d complete (%d trials)", j.id, sh.index, decided)
	case j.stopping:
		// A revoked shard keeps whatever it journaled; that partial
		// coverage is exactly what early stop asked for.
		sh.lease = nil
		sh.state = shardDone
		co.cfg.Logf("campaignd: %s shard %d stopped early with %d/%d trials", j.id, sh.index, decided, sh.hi-sh.lo)
	default:
		why := req.Err
		if why == "" {
			why = fmt.Sprintf("worker returned with %d/%d trials decided", decided, sh.hi-sh.lo)
		}
		co.requeue(sh, now, why)
		co.cfg.Logf("campaignd: %s shard %d incomplete, requeued: %s", j.id, sh.index, why)
	}
	co.maybeFinish(j)
	return completeResponse{OK: true}
}

// journalDecided replays a shard's current journal and counts decided
// trials (classified plus quarantined). Callers hold co.mu.
func (co *Coordinator) journalDecided(sh *shard) int {
	if sh.journal == "" {
		return 0
	}
	out, err := softft.MergeShardOutcomes([]string{sh.journal})
	if err != nil {
		return 0
	}
	n := 0
	for _, a := range out.Anomalies {
		if a.Trial >= sh.lo && a.Trial < sh.hi {
			n++
		}
	}
	return out.Trials + n
}

// pooledCounts sums streamed progress across a job's shards. Callers
// hold co.mu.
func pooledCounts(j *job) (done, covered, usdc int) {
	for _, sh := range j.shards {
		done += sh.done
		covered += sh.covered
		usdc += sh.usdc
	}
	return
}

// ciTight reports whether the 95% Wilson interval for count/n is no wider
// than target — the same criterion fault.Config.TargetCI applies inside a
// single process, evaluated here over pooled cross-shard counts.
func ciTight(count, n int, target float64) bool {
	lo, hi := fault.Wilson(count, n, 1.96)
	return hi-lo <= target
}

// fail marks a job failed. Callers hold co.mu.
func (co *Coordinator) fail(j *job, why string) {
	if j.finished {
		return
	}
	j.finished = true
	j.failure = why
	co.m.JobsFailed++
	co.cfg.Logf("campaignd: %s failed: %s", j.id, why)
}

// maybeFinish merges and publishes a job whose shards are all settled:
// every shard done, or — when stopping — no shard leased (queued shards
// are skipped). Callers hold co.mu.
func (co *Coordinator) maybeFinish(j *job) {
	if j == nil || j.finished {
		return
	}
	for _, sh := range j.shards {
		switch sh.state {
		case shardDone, shardSkipped:
		case shardQueued:
			if !j.stopping {
				return
			}
			sh.state = shardSkipped
		default:
			return // leased
		}
	}
	// Merge every journal that exists, whatever its shard's final lease
	// state: a fenced or revoked worker's journal still holds validly
	// decided trials (that is the point of journaling), and replay keeps
	// only the intact prefix even if a zombie writer is mid-append. Only
	// the latest attempt's path per shard is read — consolidation made it
	// a superset of the earlier ones. Shards that were never leased (or
	// whose worker died before the first write) have no file and
	// contribute nothing.
	var paths []string
	for _, sh := range j.shards {
		if sh.journal == "" {
			continue
		}
		if _, err := os.Stat(sh.journal); err == nil {
			paths = append(paths, sh.journal)
		}
	}
	if len(paths) == 0 {
		co.fail(j, "no shard journaled any work")
		return
	}
	out, err := softft.MergeShardOutcomes(paths)
	if err != nil {
		co.fail(j, fmt.Sprintf("journal merge: %v", err))
		return
	}
	if j.stopping {
		// The coordinator, not any single campaign, made the stop
		// decision; project it onto the merged outcomes the same way a
		// single-process TargetCI run reports it.
		decided := out.Trials + len(out.Anomalies)
		out.EarlyStopped = true
		out.TrialsSaved = j.spec.Trials - decided
		out.Partial = false
	}
	j.finished = true
	j.out = out
	co.m.JobsDone++
	co.m.TrialsDecided += int64(out.Trials + len(out.Anomalies))
	co.cfg.Logf("campaignd: %s done: %s", j.id, out)
}

// Status returns the public view of one job, or ok=false.
func (co *Coordinator) Status(id string) (JobStatus, bool) {
	co.mu.Lock()
	defer co.mu.Unlock()
	co.sweep()
	j, ok := co.jobs[id]
	if !ok {
		return JobStatus{}, false
	}
	return co.status(j), true
}

// Jobs returns every job's status in submission order.
func (co *Coordinator) Jobs() []JobStatus {
	co.mu.Lock()
	defer co.mu.Unlock()
	co.sweep()
	out := make([]JobStatus, 0, len(co.order))
	for _, jid := range co.order {
		out = append(out, co.status(co.jobs[jid]))
	}
	return out
}

// status renders a job. Callers hold co.mu.
func (co *Coordinator) status(j *job) JobStatus {
	st := JobStatus{JobID: j.id, Spec: j.spec, Outcomes: j.out, Failure: j.failure}
	switch {
	case j.finished && j.failure != "":
		st.State = "failed"
	case j.finished:
		st.State = "done"
	case j.stopping:
		st.State = "stopping"
	default:
		st.State = "running"
	}
	for _, sh := range j.shards {
		s := ShardStatus{Shard: sh.index, Lo: sh.lo, Hi: sh.hi, State: sh.state, Attempt: sh.attempt, Done: sh.done}
		if sh.lease != nil {
			s.Worker = sh.lease.worker
		}
		st.Shards = append(st.Shards, s)
	}
	st.Done, st.Covered, st.USDC = pooledCounts(j)
	if st.Done > 0 {
		st.CoverageCI[0], st.CoverageCI[1] = fault.Wilson(st.Covered, st.Done, 1.96)
		st.USDCCI[0], st.USDCCI[1] = fault.Wilson(st.USDC, st.Done, 1.96)
	} else {
		st.CoverageCI = [2]float64{0, 1}
		st.USDCCI = [2]float64{0, 1}
	}
	sort.Slice(st.Shards, func(a, b int) bool { return st.Shards[a].Shard < st.Shards[b].Shard })
	return st
}
