package campaignd_test

// The distributed equivalence matrix: every benchmark × every registered
// scheme, run once in-process and once sharded 3 ways across in-process
// workers over real HTTP, requiring bit-identical Outcomes. This is the
// service-level counterpart of the fault package's shard_equiv_test —
// here the full stack is in the loop: coordinator scheduling, lease
// grants, worker program construction (including value profiling),
// journaling, and the final merge. Fault models rotate across cells so
// the matrix also covers the registry beyond reg-flip.

import (
	"reflect"
	"testing"
	"time"

	softft "repro"

	"repro/internal/campaignd"
)

func TestDistributedEquivalenceMatrix(t *testing.T) {
	type cell struct {
		bench, mode, model string
	}
	models := softft.FaultModels()
	var cells []cell
	i := 0
	for _, bench := range softft.Benchmarks() {
		for _, mode := range softft.Modes() {
			cells = append(cells, cell{bench, mode.String(), models[i%len(models)]})
			i++
		}
	}
	if raceEnabled {
		// Representative subset under the detector: the full grid re-runs
		// the same coordinator/worker code 65 times at 10x slowdown for
		// no extra interleaving coverage.
		trimmed := cells[:0]
		for _, c := range cells {
			switch {
			case c.bench == "tiff2bw" && c.mode == "original",
				c.bench == "g721dec" && c.mode == "dupval",
				c.bench == "svm" && c.mode == "abft",
				c.bench == "kmeans" && c.mode == "fulldup":
				trimmed = append(trimmed, c)
			}
		}
		cells = trimmed
	}

	for _, c := range cells {
		c := c
		t.Run(c.bench+"/"+c.mode+"/"+c.model, func(t *testing.T) {
			t.Parallel()
			spec := campaignd.JobSpec{
				Bench: c.bench, Mode: c.mode, FaultModel: c.model,
				Trials: 12, Seed: 2014, Shards: 3,
			}
			solo := soloOutcomes(t, spec)
			co, _ := startService(t, campaignd.Config{LeaseTTL: 5 * time.Second, Logf: nil}, 3, 1)
			id, err := co.Submit(spec)
			if err != nil {
				t.Fatal(err)
			}
			st := waitDone(t, co, id)
			if st.State != "done" {
				t.Fatalf("job: %+v", st)
			}
			if !reflect.DeepEqual(st.Outcomes, solo) {
				t.Fatalf("distributed outcomes differ from solo run:\ndist=%+v\nsolo=%+v", st.Outcomes, solo)
			}
		})
	}
}
