package campaignd

// HTTP binding for the coordinator. All protocol endpoints live under
// /api/; /progress and /metrics are human-facing observability.

import (
	"encoding/json"
	"fmt"
	"net/http"
)

// Handler returns the coordinator's HTTP interface:
//
//	POST /api/jobs       submit a JobSpec, returns {"job_id": ...}
//	GET  /api/jobs       list job statuses
//	GET  /api/jobs/{id}  one job's status (incl. merged outcomes when done)
//	POST /api/lease      worker asks for a shard
//	POST /api/heartbeat  worker renews a lease, streams progress
//	POST /api/complete   worker reports a shard run ended
//	GET  /progress       all jobs, pooled counts and CIs (JSON)
//	GET  /metrics        flat text counters
func (co *Coordinator) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /api/jobs", func(w http.ResponseWriter, r *http.Request) {
		var spec JobSpec
		if err := json.NewDecoder(r.Body).Decode(&spec); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		id, err := co.Submit(spec)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		writeJSON(w, submitResponse{JobID: id})
	})
	mux.HandleFunc("GET /api/jobs", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, co.Jobs())
	})
	mux.HandleFunc("GET /api/jobs/{id}", func(w http.ResponseWriter, r *http.Request) {
		st, ok := co.Status(r.PathValue("id"))
		if !ok {
			http.NotFound(w, r)
			return
		}
		writeJSON(w, st)
	})
	mux.HandleFunc("POST /api/lease", func(w http.ResponseWriter, r *http.Request) {
		var req leaseRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		writeJSON(w, co.Lease(req.Worker))
	})
	mux.HandleFunc("POST /api/heartbeat", func(w http.ResponseWriter, r *http.Request) {
		var req heartbeatRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		writeJSON(w, co.Heartbeat(req))
	})
	mux.HandleFunc("POST /api/complete", func(w http.ResponseWriter, r *http.Request) {
		var req completeRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		writeJSON(w, co.Complete(req))
	})
	mux.HandleFunc("GET /progress", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, co.Jobs())
	})
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprint(w, co.renderMetrics())
	})
	return mux
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(v)
}
