package campaignd

// Service counters, exposed as a flat text /metrics endpoint (one
// "name value" line each, prometheus-style without types or labels).

import (
	"fmt"
	"sort"
	"strings"
)

type metrics struct {
	JobsSubmitted int64
	JobsDone      int64
	JobsFailed    int64
	LeaseGrants   int64
	LeaseExpiries int64
	Retries       int64 // re-grants after failure or expiry
	Heartbeats    int64
	EarlyStops    int64
	TrialsDecided int64 // journaled decisions across finished jobs
}

// render emits the counters plus per-job pooled progress.
func (co *Coordinator) renderMetrics() string {
	co.mu.Lock()
	defer co.mu.Unlock()
	co.sweep()

	vals := map[string]int64{
		"campaignd_jobs_submitted": co.m.JobsSubmitted,
		"campaignd_jobs_done":      co.m.JobsDone,
		"campaignd_jobs_failed":    co.m.JobsFailed,
		"campaignd_lease_grants":   co.m.LeaseGrants,
		"campaignd_lease_expiries": co.m.LeaseExpiries,
		"campaignd_retries":        co.m.Retries,
		"campaignd_heartbeats":     co.m.Heartbeats,
		"campaignd_early_stops":    co.m.EarlyStops,
		"campaignd_trials_decided": co.m.TrialsDecided,
	}
	var running, streaming int64
	for _, jid := range co.order {
		j := co.jobs[jid]
		if !j.finished {
			running++
			done, _, _ := pooledCounts(j)
			streaming += int64(done)
		}
	}
	vals["campaignd_jobs_running"] = running
	vals["campaignd_trials_streaming"] = streaming

	names := make([]string, 0, len(vals))
	for n := range vals {
		names = append(names, n)
	}
	sort.Strings(names)
	var b strings.Builder
	for _, n := range names {
		fmt.Fprintf(&b, "%s %d\n", n, vals[n])
	}
	return b.String()
}
