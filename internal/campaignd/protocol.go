// Package campaignd is the fault-tolerant distributed campaign service:
// a coordinator that shards fault-injection campaigns across worker
// processes over a local HTTP/JSON protocol, with time-bounded leases,
// capped-backoff retries, journal-based fencing, and a merge step that
// reproduces the single-process campaign bit for bit.
//
// The design leans on two properties the fault package guarantees. First,
// trials are individually deterministic: trial i of a campaign draws from
// seed + i*7919 regardless of which process runs it, so a shard's results
// are a pure function of the campaign spec and the subrange. Second,
// every shard run is journaled: the coordinator never trusts a worker's
// word for finished work — completeness is judged by replaying the
// shard's journal, and the final report is assembled exclusively from
// journal contents (softft.MergeShardOutcomes). Workers are therefore
// free to crash, hang, or be SIGKILLed at any point: their lease expires,
// their journal's intact prefix is consolidated for the next attempt, and
// the trials they completed are never re-executed.
package campaignd

import softft "repro"

// Wire types for the coordinator's HTTP/JSON protocol. Everything rides
// over POST bodies and JSON responses; there is no versioning or auth —
// the service binds a local address and trusts its peers, like a build
// daemon.

// JobSpec describes one campaign to shard across workers. It carries
// only result-affecting knobs (benchmark, scheme, model, trials, seed)
// plus the sharding and early-stop policy; throughput knobs stay
// worker-local.
type JobSpec struct {
	// Bench names a built-in benchmark (softft.Benchmarks).
	Bench string `json:"bench"`
	// Mode is the protection scheme spec (softft.ParseMode syntax).
	Mode string `json:"mode"`
	// FaultModel selects the fault model ("" = reg-flip).
	FaultModel string `json:"fault_model,omitempty"`
	// Trials is the campaign size; Seed its base seed.
	Trials int   `json:"trials"`
	Seed   int64 `json:"seed"`
	// Shards is the number of contiguous trial subranges to schedule
	// independently (0 = the coordinator's default).
	Shards int `json:"shards,omitempty"`
	// TargetCI, when positive, enables streaming early stopping: the
	// coordinator pools per-shard progress counts and revokes every lease
	// once the pooled 95% CIs for coverage and USDC rate are both no
	// wider than this.
	TargetCI float64 `json:"target_ci,omitempty"`
}

// submitResponse answers POST /api/jobs.
type submitResponse struct {
	JobID string `json:"job_id"`
}

// leaseRequest asks for a shard to work on.
type leaseRequest struct {
	Worker string `json:"worker"`
}

// leaseResponse grants a shard lease (OK) or reports none available.
type leaseResponse struct {
	OK    bool    `json:"ok"`
	JobID string  `json:"job_id,omitempty"`
	Spec  JobSpec `json:"spec,omitempty"`
	// Shard is the shard index; the worker runs trials [Lo, Hi).
	Shard int `json:"shard,omitempty"`
	Lo    int `json:"lo,omitempty"`
	Hi    int `json:"hi,omitempty"`
	// Journal is the path the shard run must journal to — unique per
	// attempt, so a superseded worker keeps writing to a file nobody
	// reads again (the fencing mechanism). Resume is set when the path
	// holds consolidated work from previous attempts.
	Journal string `json:"journal,omitempty"`
	Resume  bool   `json:"resume,omitempty"`
	// LeaseID names this grant; heartbeats and completion must quote it.
	// TTLMS is the lease duration — miss it and the shard is reassigned.
	LeaseID string `json:"lease_id,omitempty"`
	TTLMS   int64  `json:"ttl_ms,omitempty"`
}

// heartbeatRequest renews a lease and streams progress counts. Counts are
// provisional (the journal is authoritative); they feed the pooled
// early-stop decision and /progress.
type heartbeatRequest struct {
	LeaseID string `json:"lease_id"`
	Worker  string `json:"worker"`
	Done    int    `json:"done"`
	Covered int    `json:"covered"`
	USDC    int    `json:"usdc"`
}

// heartbeatResponse: OK is false for stale (fenced) leases — the worker
// must abandon the shard. Stop asks the worker to cancel the shard run
// gracefully (early stop); the journaled work is kept.
type heartbeatResponse struct {
	OK   bool `json:"ok"`
	Stop bool `json:"stop,omitempty"`
}

// completeRequest reports a shard run finished (successfully or not).
// There is deliberately no "done" flag: the coordinator replays the
// shard's journal to decide completeness. Err carries the run error, if
// any, for diagnostics and retry accounting.
type completeRequest struct {
	LeaseID string `json:"lease_id"`
	Worker  string `json:"worker"`
	Err     string `json:"err,omitempty"`
}

// completeResponse: OK is false for stale leases.
type completeResponse struct {
	OK bool `json:"ok"`
}

// ShardStatus describes one shard in a JobStatus.
type ShardStatus struct {
	Shard   int    `json:"shard"`
	Lo      int    `json:"lo"`
	Hi      int    `json:"hi"`
	State   string `json:"state"` // queued, leased, done, skipped, failed
	Attempt int    `json:"attempt"`
	Worker  string `json:"worker,omitempty"`
	Done    int    `json:"done"` // streamed progress, provisional
}

// JobStatus is the public view of a job (GET /api/jobs/{id}, /progress).
type JobStatus struct {
	JobID string  `json:"job_id"`
	Spec  JobSpec `json:"spec"`
	// State is "running", "stopping" (early-stop revocation in flight),
	// "done", or "failed".
	State  string        `json:"state"`
	Shards []ShardStatus `json:"shards"`
	// Pooled streamed counts across shards, and the Wilson 95% CIs the
	// early-stop decision evaluates.
	Done       int        `json:"done"`
	Covered    int        `json:"covered"`
	USDC       int        `json:"usdc"`
	CoverageCI [2]float64 `json:"coverage_ci"`
	USDCCI     [2]float64 `json:"usdc_ci"`
	// Outcomes is the merged final report (done jobs only).
	Outcomes *softft.Outcomes `json:"outcomes,omitempty"`
	Failure  string           `json:"failure,omitempty"`
}
