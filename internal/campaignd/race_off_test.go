//go:build !race

package campaignd_test

// raceEnabled trims the heaviest equivalence matrices when the race
// detector (≈10x slowdown) is active; see race_on_test.go.
const raceEnabled = false
