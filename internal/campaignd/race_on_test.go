//go:build race

package campaignd_test

// Under -race the distributed equivalence matrix runs on representative
// cells only: the detector is there to catch unsynchronized coordinator
// or progress-streaming state, which a subset exercises just as well as
// the full grid.
const raceEnabled = true
