package campaignd_test

// End-to-end service tests: a real coordinator behind httptest, real
// workers running real shard campaigns, and the failure modes the service
// exists for — a worker that dies mid-shard and loses its lease, fencing
// of the dead worker's credentials, and cross-shard streaming early stop.

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"reflect"
	"regexp"
	"strconv"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/fault"

	softft "repro"

	"repro/internal/campaignd"
)

// buildProgram mirrors the worker's program construction (and the CLI's):
// benchmark -> protect (profiling on the train input when needed).
func buildProgram(t *testing.T, bench, mode string) (*softft.Benchmark, *softft.Program) {
	t.Helper()
	bm, err := softft.GetBenchmark(bench)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := bm.Program()
	if err != nil {
		t.Fatal(err)
	}
	m, err := softft.ParseMode(mode)
	if err != nil {
		t.Fatal(err)
	}
	if m != softft.Original {
		var prof *softft.Profile
		if m.NeedsProfile() {
			if prof, err = prog.ProfileValues(bm.TrainInput()); err != nil {
				t.Fatal(err)
			}
		}
		if prog, _, err = prog.Protect(m, prof); err != nil {
			t.Fatal(err)
		}
	}
	return bm, prog
}

// soloOutcomes runs the whole campaign in-process — the reference every
// distributed result must match bit for bit.
func soloOutcomes(t *testing.T, spec campaignd.JobSpec) *softft.Outcomes {
	t.Helper()
	bm, prog := buildProgram(t, spec.Bench, spec.Mode)
	c := bm.NewCampaign(spec.Trials)
	c.Seed = spec.Seed
	c.FaultModel = spec.FaultModel
	out, err := prog.InjectFaults(bm.TestInput(), c)
	if err != nil {
		t.Fatal(err)
	}
	return out
}

// startService brings up a coordinator behind httptest and n workers,
// each with campaignWorkers-bounded intra-shard parallelism.
func startService(t *testing.T, cfg campaignd.Config, n, campaignWorkers int) (*campaignd.Coordinator, string) {
	t.Helper()
	cfg.Dir = t.TempDir()
	if cfg.Logf == nil {
		cfg.Logf = t.Logf
	}
	co, err := campaignd.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(co.Handler())
	t.Cleanup(srv.Close)
	ctx, cancel := context.WithCancel(context.Background())
	t.Cleanup(cancel)
	for i := 0; i < n; i++ {
		w := campaignd.NewWorker(campaignd.WorkerConfig{
			Coordinator:     srv.URL,
			ID:              fmt.Sprintf("w%d", i+1),
			Poll:            10 * time.Millisecond,
			CampaignWorkers: campaignWorkers,
			Logf:            t.Logf,
		})
		go w.Run(ctx)
	}
	return co, srv.URL
}

// waitDone polls until the job leaves the running states.
func waitDone(t *testing.T, co *campaignd.Coordinator, id string) campaignd.JobStatus {
	t.Helper()
	deadline := time.Now().Add(120 * time.Second)
	for time.Now().Before(deadline) {
		co.Tick()
		st, ok := co.Status(id)
		if !ok {
			t.Fatalf("job %s vanished", id)
		}
		if st.State == "done" || st.State == "failed" {
			return st
		}
		time.Sleep(10 * time.Millisecond)
	}
	st, _ := co.Status(id)
	t.Fatalf("job %s still %q after 120s: %+v", id, st.State, st)
	return st
}

func postJSON(t *testing.T, url string, body any) map[string]any {
	t.Helper()
	buf, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("%s: %v", url, err)
	}
	return out
}

func metricValue(t *testing.T, baseURL, name string) int {
	t.Helper()
	resp, err := http.Get(baseURL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	m := regexp.MustCompile(`(?m)^` + name + ` (\d+)$`).FindStringSubmatch(buf.String())
	if m == nil {
		t.Fatalf("metric %s missing in:\n%s", name, buf.String())
	}
	v, _ := strconv.Atoi(m[1])
	return v
}

// TestServiceWorkerDeathReassignment is the service's reason to exist: a
// worker takes a shard lease, journals a few trials, and dies without a
// word. The lease expires, the shard is consolidated and reassigned to a
// healthy worker which resumes past the dead worker's trials, and the
// merged outcome is bit-identical to a single-process run. The dead
// worker's credentials are fenced the moment the shard is reassigned.
func TestServiceWorkerDeathReassignment(t *testing.T) {
	spec := campaignd.JobSpec{Bench: "g721dec", Mode: "dup", Trials: 40, Seed: 2014, Shards: 2}
	solo := soloOutcomes(t, spec)

	co, url := startService(t, campaignd.Config{
		LeaseTTL:    300 * time.Millisecond,
		BaseBackoff: 20 * time.Millisecond,
		MaxBackoff:  100 * time.Millisecond,
	}, 0, 0) // no workers yet: the doomed lease must go to our fake worker
	if _, err := co.Submit(spec); err != nil {
		t.Fatal(err)
	}

	// The doomed worker leases the first shard by hand and runs it only
	// partially — then goes silent forever (no heartbeat, no complete),
	// as a SIGKILLed process would.
	grant := co.Lease("doomed")
	if !grant.OK || grant.Lo != 0 {
		t.Fatalf("grant: %+v", grant)
	}
	bm, prog := buildProgram(t, spec.Bench, spec.Mode)
	ctx, cancel := context.WithCancel(context.Background())
	c := bm.NewCampaign(spec.Trials)
	c.Seed = spec.Seed
	c.ShardStart, c.ShardEnd = grant.Lo, grant.Hi
	c.Journal = grant.Journal
	c.Workers = 1
	var done atomic.Int64
	c.OnProgress = func(d, _, _ int) {
		if done.Store(int64(d)); d >= 5 {
			cancel()
		}
	}
	out, err := prog.InjectFaultsContext(ctx, bm.TestInput(), c)
	if err != nil {
		t.Fatal(err)
	}
	if !out.Partial || out.Trials < 5 {
		t.Fatalf("doomed shard run: %+v", out)
	}

	// Now the healthy workers arrive and finish everything.
	hctx, hcancel := context.WithCancel(context.Background())
	t.Cleanup(hcancel)
	for i := 0; i < 2; i++ {
		w := campaignd.NewWorker(campaignd.WorkerConfig{
			Coordinator: url, ID: fmt.Sprintf("healthy%d", i+1),
			Poll: 10 * time.Millisecond, Logf: t.Logf,
		})
		go w.Run(hctx)
	}
	st := waitDone(t, co, grant.JobID)
	if st.State != "done" {
		t.Fatalf("job %+v", st)
	}
	if st.Shards[0].Attempt < 2 {
		t.Fatalf("dead worker's shard never reassigned: %+v", st.Shards)
	}
	if n := metricValue(t, url, "campaignd_lease_expiries"); n < 1 {
		t.Fatalf("lease_expiries = %d, want >= 1", n)
	}

	// Fencing: the dead worker's lease ID is rejected on both protocol
	// paths.
	hb := postJSON(t, url+"/api/heartbeat", map[string]any{"lease_id": grant.LeaseID, "worker": "doomed"})
	if hb["ok"] == true {
		t.Fatal("dead lease heartbeat accepted")
	}
	cp := postJSON(t, url+"/api/complete", map[string]any{"lease_id": grant.LeaseID, "worker": "doomed"})
	if cp["ok"] == true {
		t.Fatal("dead lease completion accepted")
	}

	if !reflect.DeepEqual(st.Outcomes, solo) {
		t.Fatalf("merged outcomes differ from solo run:\nmerged=%+v\nsolo=  %+v", st.Outcomes, solo)
	}
}

// TestServiceEarlyStopAcrossShards checks the streaming generalization of
// Wilson early stopping: no single shard reaches the precision alone —
// the coordinator pools heartbeat counts across shards, decides, and
// revokes every lease; the merged report carries the pooled TrialsSaved.
func TestServiceEarlyStopAcrossShards(t *testing.T) {
	spec := campaignd.JobSpec{
		Bench: "kmeans", Mode: "original", Trials: 4000, Seed: 2014,
		Shards: 3, TargetCI: 0.25,
	}
	// CampaignWorkers 1 keeps per-shard progress slow relative to the
	// heartbeat cadence, so the pooled stop decision lands well before
	// any shard finishes on its own.
	co, _ := startService(t, campaignd.Config{
		LeaseTTL:    300 * time.Millisecond,
		BaseBackoff: 20 * time.Millisecond,
	}, 3, 1)
	id, err := co.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	st := waitDone(t, co, id)
	if st.State != "done" {
		t.Fatalf("job %+v", st)
	}
	out := st.Outcomes
	if !out.EarlyStopped || out.Partial {
		t.Fatalf("outcomes not early-stopped: %+v", out)
	}
	if out.TrialsSaved <= 0 {
		t.Fatalf("early stop saved no trials: %+v", out)
	}
	if decided := out.Trials + len(out.Anomalies); decided+out.TrialsSaved != spec.Trials {
		t.Fatalf("decided %d + saved %d != %d trials", decided, out.TrialsSaved, spec.Trials)
	}
	// The stop decision is made on the pooled *streamed* counts; the
	// merged report is journal-backed and typically holds a few more
	// trials (workers journal trials decided between their last heartbeat
	// and the revocation). Wilson width is not monotone across different
	// proportions, so the exact target width is not guaranteed on the
	// merged counts — what is guaranteed is that enough trials were pooled
	// for the target to have been reachable at the decision point, with a
	// defensible margin on the merged interval.
	minDecided := 1
	for {
		// Tightest possible width at this many trials (p at an extreme).
		if lo, hi := fault.Wilson(minDecided, minDecided, 1.96); hi-lo <= spec.TargetCI {
			break
		}
		minDecided++
	}
	if decided := out.Trials + len(out.Anomalies); decided < minDecided {
		t.Fatalf("stopped on %d merged trials; even an extreme proportion needs %d for width %v",
			decided, minDecided, spec.TargetCI)
	}
	if lo, hi := out.CoverageInterval(); hi-lo > 2*spec.TargetCI {
		t.Fatalf("merged coverage CI [%v,%v] nowhere near target %v", lo, hi, spec.TargetCI)
	}
}

// TestServiceHTTPRoundTrip drives the whole job lifecycle through the
// HTTP API alone, as the softft CLI subcommands do.
func TestServiceHTTPRoundTrip(t *testing.T) {
	_, url := startService(t, campaignd.Config{LeaseTTL: time.Second}, 2, 0)

	sub := postJSON(t, url+"/api/jobs", campaignd.JobSpec{
		Bench: "tiff2bw", Mode: "original", Trials: 12, Seed: 7, Shards: 3,
	})
	id, _ := sub["job_id"].(string)
	if id == "" {
		t.Fatalf("submit response %+v", sub)
	}

	deadline := time.Now().Add(120 * time.Second)
	var st campaignd.JobStatus
	for {
		resp, err := http.Get(url + "/api/jobs/" + id)
		if err != nil {
			t.Fatal(err)
		}
		err = json.NewDecoder(resp.Body).Decode(&st)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if st.State == "done" || st.State == "failed" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job stuck: %+v", st)
		}
		time.Sleep(10 * time.Millisecond)
	}
	if st.State != "done" || st.Outcomes == nil || st.Outcomes.Trials != 12 {
		t.Fatalf("status %+v", st)
	}

	// /progress lists the job; bad submissions are 400s.
	resp, err := http.Get(url + "/progress")
	if err != nil {
		t.Fatal(err)
	}
	var jobs []campaignd.JobStatus
	if err := json.NewDecoder(resp.Body).Decode(&jobs); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(jobs) != 1 || jobs[0].JobID != id {
		t.Fatalf("progress %+v", jobs)
	}
	bad, err := http.Post(url+"/api/jobs", "application/json", bytes.NewReader([]byte(`{"bench":"nope","mode":"original","trials":5}`)))
	if err != nil {
		t.Fatal(err)
	}
	bad.Body.Close()
	if bad.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad submit: %s", bad.Status)
	}
	if n := metricValue(t, url, "campaignd_jobs_done"); n != 1 {
		t.Fatalf("jobs_done = %d", n)
	}
}
