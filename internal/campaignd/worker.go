package campaignd

// The worker: a lease -> run -> complete loop around the ordinary
// single-process campaign machinery. A shard run is just softft's
// InjectFaultsContext restricted to [Lo, Hi) with the granted journal
// path; everything that makes the distributed result bit-identical to a
// solo run (absolute trial indices, per-trial seeding, journal identity)
// is the fault package's problem, not the worker's. The worker's own
// obligations are liveness ones: heartbeat at a fraction of the TTL,
// cancel the shard promptly when revoked or stopped, and always report
// completion — the coordinator decides what the run was worth by
// replaying the journal.

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"sync"
	"time"

	softft "repro"
)

// WorkerConfig tunes a Worker.
type WorkerConfig struct {
	// Coordinator is the coordinator's base URL, e.g. "http://127.0.0.1:7077".
	Coordinator string
	// ID names this worker in leases and logs. Defaults to host:pid.
	ID string
	// Poll is the idle delay between lease attempts when no work is
	// available. Default 500ms.
	Poll time.Duration
	// CampaignWorkers bounds intra-shard parallelism (Campaign.Workers).
	CampaignWorkers int
	// Client is the HTTP client (test hook; default a plain &http.Client{}).
	Client *http.Client
	// Logf, when non-nil, receives one line per shard event.
	Logf func(format string, args ...any)
}

// Worker runs shard leases against a coordinator until its context ends.
type Worker struct {
	cfg WorkerConfig
	// programs caches protected programs per (bench, mode) so a worker
	// granted many shards of one job builds and profiles once.
	mu       sync.Mutex
	programs map[string]*softft.Program
}

// NewWorker creates a Worker; see WorkerConfig for defaults.
func NewWorker(cfg WorkerConfig) *Worker {
	if cfg.ID == "" {
		host, _ := os.Hostname()
		cfg.ID = fmt.Sprintf("%s-%d", host, os.Getpid())
	}
	if cfg.Poll <= 0 {
		cfg.Poll = 500 * time.Millisecond
	}
	if cfg.Client == nil {
		cfg.Client = &http.Client{}
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	return &Worker{cfg: cfg, programs: make(map[string]*softft.Program)}
}

// Run leases and executes shards until ctx is done. Transport errors are
// retried at the poll cadence (the coordinator may simply not be up yet);
// shard-run errors are reported to the coordinator and the loop continues.
func (w *Worker) Run(ctx context.Context) error {
	for {
		if err := ctx.Err(); err != nil {
			return nil
		}
		var grant leaseResponse
		err := w.post(ctx, "/api/lease", leaseRequest{Worker: w.cfg.ID}, &grant)
		switch {
		case err != nil || !grant.OK:
			select {
			case <-ctx.Done():
				return nil
			case <-time.After(w.cfg.Poll):
			}
		default:
			w.runShard(ctx, grant)
		}
	}
}

// runShard executes one granted shard and reports completion. The
// heartbeat loop runs at TTL/3 so two beats can be lost before the lease
// expires; a fenced or stopped reply cancels the campaign between trials,
// journal intact.
func (w *Worker) runShard(ctx context.Context, grant leaseResponse) {
	w.cfg.Logf("campaignd: worker %s: shard %d [%d,%d) of %s (journal %s)",
		w.cfg.ID, grant.Shard, grant.Lo, grant.Hi, grant.JobID, grant.Journal)

	runCtx, cancel := context.WithCancel(ctx)
	defer cancel()

	// Progress streams from OnProgress (worker goroutines, out of order)
	// into the heartbeat loop; largest done wins.
	var pmu sync.Mutex
	var done, covered, usdc int

	// The heartbeat loop outlives a Stop: a revoked campaign still needs
	// time to cancel between trials and flush its journal, and the lease
	// must stay alive until Complete hands the shard back — otherwise the
	// coordinator would expire it and finalize without this shard's work.
	// Beats therefore ride the loop ctx, not runCtx, and only fencing
	// (!OK) or the campaign's own exit ends the loop.
	execDone := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	beat := time.Duration(grant.TTLMS) * time.Millisecond / 3
	if beat <= 0 {
		beat = time.Second
	}
	go func() {
		defer wg.Done()
		tick := time.NewTicker(beat)
		defer tick.Stop()
		stopped := false
		for {
			select {
			case <-execDone:
				return
			case <-ctx.Done():
				return
			case <-tick.C:
			}
			pmu.Lock()
			req := heartbeatRequest{LeaseID: grant.LeaseID, Worker: w.cfg.ID, Done: done, Covered: covered, USDC: usdc}
			pmu.Unlock()
			var resp heartbeatResponse
			if err := w.post(ctx, "/api/heartbeat", req, &resp); err != nil {
				continue // transient; the TTL tolerates missed beats
			}
			if !resp.OK {
				// Fenced: the lease was reassigned. Stop burning trials;
				// the journal keeps whatever was decided, and nothing
				// reads this attempt's file again.
				w.cfg.Logf("campaignd: worker %s: shard %d fenced", w.cfg.ID, grant.Shard)
				cancel()
				return
			}
			if resp.Stop && !stopped {
				stopped = true
				w.cfg.Logf("campaignd: worker %s: shard %d revoked (early stop)", w.cfg.ID, grant.Shard)
				cancel() // keep beating until the campaign exits
			}
		}
	}()

	runErr := w.execute(runCtx, grant, func(d, c, u int) {
		pmu.Lock()
		if d > done {
			done, covered, usdc = d, c, u
		}
		pmu.Unlock()
	})
	close(execDone)
	cancel()
	wg.Wait()

	req := completeRequest{LeaseID: grant.LeaseID, Worker: w.cfg.ID}
	if runErr != nil {
		req.Err = runErr.Error()
		w.cfg.Logf("campaignd: worker %s: shard %d failed: %v", w.cfg.ID, grant.Shard, runErr)
	}
	// Complete must go out even though runCtx is dead; use the loop ctx,
	// falling back to a short deadline when the worker itself is exiting
	// so a SIGTERMed worker still hands its shard back promptly.
	postCtx := ctx
	if ctx.Err() != nil {
		var stop context.CancelFunc
		postCtx, stop = context.WithTimeout(context.Background(), 2*time.Second)
		defer stop()
	}
	var resp completeResponse
	if err := w.post(postCtx, "/api/complete", req, &resp); err != nil {
		// The lease will expire and the shard will be reassigned; the
		// journal preserves the work either way.
		w.cfg.Logf("campaignd: worker %s: complete failed: %v", w.cfg.ID, err)
	}
}

// execute runs the shard campaign itself.
func (w *Worker) execute(ctx context.Context, grant leaseResponse, onProgress func(done, covered, usdc int)) error {
	bm, err := softft.GetBenchmark(grant.Spec.Bench)
	if err != nil {
		return err
	}
	prog, err := w.program(bm, grant.Spec.Mode)
	if err != nil {
		return err
	}
	c := bm.NewCampaign(grant.Spec.Trials)
	c.Seed = grant.Spec.Seed
	c.FaultModel = grant.Spec.FaultModel
	c.ShardStart, c.ShardEnd = grant.Lo, grant.Hi
	c.Journal = grant.Journal
	c.Resume = grant.Resume
	c.Workers = w.cfg.CampaignWorkers
	c.OnProgress = onProgress
	_, err = prog.InjectFaultsContext(ctx, bm.TestInput(), c)
	return err
}

// program builds (and caches) the protected program for a (bench, mode)
// pair. Profiling uses the train input, exactly as the single-process
// CLI does, so the protected module is identical across processes.
func (w *Worker) program(bm *softft.Benchmark, mode string) (*softft.Program, error) {
	key := bm.Name() + "\x00" + mode
	w.mu.Lock()
	cached := w.programs[key]
	w.mu.Unlock()
	if cached != nil {
		return cached, nil
	}

	prog, err := bm.Program()
	if err != nil {
		return nil, err
	}
	m, err := softft.ParseMode(mode)
	if err != nil {
		return nil, err
	}
	if m != softft.Original {
		var prof *softft.Profile
		if m.NeedsProfile() {
			if prof, err = prog.ProfileValues(bm.TrainInput()); err != nil {
				return nil, err
			}
		}
		if prog, _, err = prog.Protect(m, prof); err != nil {
			return nil, err
		}
	}
	w.mu.Lock()
	w.programs[key] = prog
	w.mu.Unlock()
	return prog, nil
}

// post sends one JSON request and decodes the JSON reply.
func (w *Worker) post(ctx context.Context, path string, in, out any) error {
	body, err := json.Marshal(in)
	if err != nil {
		return err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, w.cfg.Coordinator+path, bytes.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := w.cfg.Client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("campaignd: %s: %s", path, resp.Status)
	}
	return json.NewDecoder(resp.Body).Decode(out)
}
