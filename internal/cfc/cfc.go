// Package cfc implements signature-based control-flow checking in the
// style of CFCSS (Oh et al.), the complementary technique the paper points
// to for faults that corrupt branch targets (§IV-C: "for protecting against
// branch target faults, a previously proposed signature-based low-cost
// solution can be used in conjunction with our proposed approach").
//
// Every basic block gets a compile-time signature. A runtime signature
// word tracks the signature of the block that was just left; each block
// entry verifies that the incoming signature belongs to one of its legal
// predecessors, then installs its own. A branch that lands on a wrong
// block finds an unexpected signature and the check fires.
//
// The predecessor test reuses the expected-value check instruction: blocks
// with one or two predecessors are checked exactly; blocks with more fall
// back to a range check over their predecessors' (contiguously assigned)
// signatures when possible, and are left unchecked otherwise (counted in
// Stats.Unchecked — the classic CFCSS fan-in limitation).
package cfc

import (
	"fmt"

	"repro/internal/ir"
)

// SigGlobal is the runtime signature word's global name.
const SigGlobal = "__cfc_sig"

// Stats describes what the pass instrumented.
type Stats struct {
	Blocks    int // blocks instrumented with entry checks
	Checks    int // signature checks inserted
	Unchecked int // blocks skipped (too many predecessors for a check)
	Instrs    int // instructions added in total
}

// Protect instruments every function of m with control-flow signature
// checks. Check IDs start at startCheckID; the next free ID is returned.
func Protect(m *ir.Module, startCheckID int) (*Stats, int, error) {
	if m.Global(SigGlobal) != nil {
		return nil, 0, fmt.Errorf("cfc: module already instrumented")
	}
	sig := m.AddGlobal(SigGlobal, 1)
	stats := &Stats{}
	nextID := startCheckID

	// Function index participates in the signature so cross-function
	// confusion is also caught by the first check after a call returns.
	for fi, f := range m.Funcs {
		f.ComputeCFG()
		sigOf := func(b *ir.Block) int64 {
			return int64(fi+1)<<16 | int64(b.Index+1)
		}

		for _, b := range f.Blocks {
			var added []*ir.Instr
			newInstr := func(op ir.Op, ty ir.Type, args ...ir.Value) *ir.Instr {
				in := &ir.Instr{Op: op, Ty: ty, Args: args, UID: m.NewUID()}
				added = append(added, in)
				return in
			}

			if b != f.Entry() {
				switch n := len(b.Preds); {
				case n == 0:
					// Unreachable block: no dynamic path, nothing to check.
				case n <= 2:
					g := newInstr(ir.OpLoad, ir.I64, sig)
					args := []ir.Value{g, ir.ConstInt(sigOf(b.Preds[0]))}
					if n == 2 && b.Preds[1] != b.Preds[0] {
						args = append(args, ir.ConstInt(sigOf(b.Preds[1])))
					}
					chk := newInstr(ir.OpValCheck, ir.Void, args...)
					chk.Check = ir.CheckCFC
					chk.CheckID = nextID
					nextID++
					stats.Blocks++
					stats.Checks++
				default:
					// Predecessor signatures are index-based; contiguous
					// predecessor indices admit a range check.
					lo, hi := sigOf(b.Preds[0]), sigOf(b.Preds[0])
					for _, p := range b.Preds[1:] {
						s := sigOf(p)
						if s < lo {
							lo = s
						}
						if s > hi {
							hi = s
						}
					}
					if hi-lo == int64(len(b.Preds)-1) {
						g := newInstr(ir.OpLoad, ir.I64, sig)
						chk := newInstr(ir.OpRangeCheck, ir.Void, g, ir.ConstInt(lo), ir.ConstInt(hi))
						chk.Check = ir.CheckCFC
						chk.CheckID = nextID
						nextID++
						stats.Blocks++
						stats.Checks++
					} else {
						stats.Unchecked++
					}
				}
			}

			// Install this block's signature (after the check, so the check
			// sees the predecessor's value).
			newInstr(ir.OpStore, ir.Void, sig, ir.ConstInt(sigOf(b)))

			// Insert the prologue after the phi prefix.
			pos := len(b.Phis())
			for i, in := range added {
				b.InsertBefore(in, pos+i)
			}

			// A call clobbers the signature word with the callee's exit
			// signature; restore the current block's signature afterwards.
			for i := 0; i < len(b.Instrs); i++ {
				if b.Instrs[i].Op == ir.OpCall {
					restore := &ir.Instr{
						Op: ir.OpStore, Ty: ir.Void,
						Args: []ir.Value{sig, ir.ConstInt(sigOf(b))},
						UID:  m.NewUID(),
					}
					b.InsertBefore(restore, i+1)
					stats.Instrs++
					i++
				}
			}
			stats.Instrs += len(added)
		}
	}
	m.Renumber()
	if err := m.Verify(); err != nil {
		return nil, 0, fmt.Errorf("cfc: instrumentation produced invalid IR: %w", err)
	}
	return stats, nextID, nil
}
