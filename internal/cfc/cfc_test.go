package cfc

import (
	"math/rand"
	"testing"

	"repro/internal/ir"
	"repro/internal/lang"
	"repro/internal/vm"
)

const loopSrc = `
global int in[64];
global int out[64];
int helper(int x) {
	if (x > 100) { return x - 100; }
	return x;
}
void main() {
	int acc = 0;
	for (int i = 0; i < 64; i += 1) {
		acc = (acc + in[i]) & 0xffff;
		if (acc % 3 == 0) {
			out[i] = helper(acc);
		} else {
			out[i] = i;
		}
	}
}`

func compile(t *testing.T, src string) *ir.Module {
	t.Helper()
	m, err := lang.Compile("cfc", src)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func inputs() []int64 {
	out := make([]int64, 64)
	for i := range out {
		out[i] = int64(i*13 + 5)
	}
	return out
}

func run(t *testing.T, m *ir.Module, plan *vm.FaultPlan) (*vm.Result, []int64) {
	t.Helper()
	mach, err := vm.New(m, vm.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	cfg := vm.DefaultConfig()
	cfg.MaxDyn = 10_000_000
	mach, err = vm.New(m, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := mach.BindInputInts("in", inputs()); err != nil {
		t.Fatal(err)
	}
	mach.Reset()
	res := mach.Run(vm.RunOptions{Fault: plan})
	var out []int64
	if res.Trap == nil {
		out, _ = mach.ReadGlobalInts("out")
	}
	return res, out
}

func TestInstrumentationPreservesSemantics(t *testing.T) {
	base := compile(t, loopSrc)
	prot := base.Clone()
	stats, next, err := Protect(prot, 1)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Checks == 0 || stats.Blocks == 0 {
		t.Fatalf("nothing instrumented: %+v", stats)
	}
	if next <= 1 {
		t.Fatal("check IDs not advanced")
	}

	r0, o0 := run(t, base, nil)
	r1, o1 := run(t, prot, nil)
	if r0.Trap != nil || r1.Trap != nil {
		t.Fatalf("traps: %v / %v", r0.Trap, r1.Trap)
	}
	for i := range o0 {
		if o0[i] != o1[i] {
			t.Fatalf("instrumentation changed out[%d]", i)
		}
	}
	if r1.Dyn <= r0.Dyn {
		t.Error("instrumentation added no dynamic work")
	}
}

func TestDoubleInstrumentationRejected(t *testing.T) {
	m := compile(t, loopSrc)
	if _, _, err := Protect(m, 1); err != nil {
		t.Fatal(err)
	}
	if _, _, err := Protect(m, 100); err == nil {
		t.Fatal("second instrumentation accepted")
	}
}

// TestCFCDetectsBranchTargetFaults is the headline property: under the
// branch-target fault model, the instrumented binary detects a substantial
// share of faults that the plain binary silently corrupts or crashes on.
func TestCFCDetectsBranchTargetFaults(t *testing.T) {
	base := compile(t, loopSrc)
	prot := base.Clone()
	if _, _, err := Protect(prot, 1); err != nil {
		t.Fatal(err)
	}

	goldenRes, golden := run(t, base, nil)
	if goldenRes.Trap != nil {
		t.Fatal(goldenRes.Trap)
	}

	const trials = 300
	type tally struct{ detected, corrupted, crashed, masked int }
	campaign := func(m *ir.Module) tally {
		var ta tally
		for i := 0; i < trials; i++ {
			rng := rand.New(rand.NewSource(int64(100 + i)))
			plan := &vm.FaultPlan{
				Kind:       vm.FaultBranchTarget,
				TriggerDyn: rng.Int63n(goldenRes.Dyn),
				PickSlot:   func(n int) int { return rng.Intn(n) },
				PickBit:    func() int { return rng.Intn(64) },
			}
			res, out := run(t, m, plan)
			switch {
			case res.Trap != nil && res.Trap.Kind == vm.TrapCheck:
				ta.detected++
			case res.Trap != nil:
				ta.crashed++
			default:
				same := len(out) == len(golden)
				for j := range golden {
					if out[j] != golden[j] {
						same = false
						break
					}
				}
				if same {
					ta.masked++
				} else {
					ta.corrupted++
				}
			}
		}
		return ta
	}

	plain := campaign(base)
	checked := campaign(prot)
	t.Logf("plain:   %+v", plain)
	t.Logf("checked: %+v", checked)

	if plain.detected != 0 {
		t.Error("plain binary cannot detect anything")
	}
	if checked.detected == 0 {
		t.Fatal("CFC detected no branch-target faults")
	}
	if checked.corrupted >= plain.corrupted {
		t.Errorf("CFC did not reduce silent corruptions: %d -> %d", plain.corrupted, checked.corrupted)
	}
}

func TestCFCQuietUnderRegisterFaultsGolden(t *testing.T) {
	// Fault-free and profiled-input runs must never fire CFC checks.
	prot := compile(t, loopSrc).Clone()
	if _, _, err := Protect(prot, 1); err != nil {
		t.Fatal(err)
	}
	res, _ := run(t, prot, nil)
	if res.Trap != nil {
		t.Fatalf("fault-free CFC run trapped: %v", res.Trap)
	}
	if res.CheckFails != 0 {
		t.Fatalf("CFC false positives: %d", res.CheckFails)
	}
}
