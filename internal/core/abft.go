package core

import (
	"sort"

	"repro/internal/ir"
	"repro/internal/profile"
)

// ABFT checksum protection (algorithm-based fault tolerance, after FT-CNN
// and the arithmetic-intensity-guided ABFT line of work): instead of
// comparing every redundant value as it is produced, each compute kernel —
// a loop nest that stores computed values into memory, which in the ML and
// vision workloads is exactly the matrix/convolution loops — maintains a
// running row checksum over the stream of stored elements, computed twice:
// once from the primary datapath (the value actually stored) and once from
// an independently duplicated producer chain. The two checksums are
// compared once, at the kernel's exit, by a cmpcheck of kind CheckABFT.
// Detection latency moves from per-element to per-kernel, but so does the
// comparison cost: one check per kernel instead of one per iteration.
//
// The checksum cells live in per-activation stack memory (entry-block
// allocas), not in SSA registers, so no phi surgery is needed to carry them
// through arbitrary loop nests. Fault-free the two accumulations perform
// bit-identical operations in the same order, so the final comparison is
// exact — the scheme inserts no statistical checks and can never false
// positive. A corrupted compute chain, stored value, or checksum
// accumulator register diverges one side and fires the exit check, which
// surfaces through the existing check-failure path (SWDetect) so campaign
// classification, recovery, and USDC accounting work unchanged.

// abftKernel is one instrumentation site: an outermost loop with at least
// one eligible store.
type abftKernel struct {
	loop   *ir.Loop
	stores []*ir.Instr
}

// abftTransform applies ABFT checksum protection to every kernel of every
// function in the module.
func abftTransform(m *ir.Module, _ *profile.Data, p Params, stats *Stats) error {
	nextID := nextCheckID(m)
	for _, f := range m.Funcs {
		var err error
		nextID, err = abftFunc(m, f, p, stats, nextID)
		if err != nil {
			return err
		}
	}
	return nil
}

// abftEligible reports whether a store writes a computed value worth
// checksumming: the stored operand is an instruction-defined I64/F64 value
// produced by arithmetic, so its producer chain can be duplicated
// independently. Pure copies (load-store), pointers and constants are
// skipped — a checksum over them would add only shared single points of
// failure, not redundancy.
func abftEligible(st *ir.Instr) (*ir.Instr, bool) {
	v, ok := st.Args[1].(*ir.Instr)
	if !ok {
		return nil, false
	}
	if v.Ty != ir.I64 && v.Ty != ir.F64 {
		return nil, false
	}
	if !v.Op.IsArith() {
		return nil, false
	}
	return v, true
}

func abftFunc(m *ir.Module, f *ir.Func, p Params, stats *Stats, nextID int) (int, error) {
	f.ComputeCFG()
	dt := ir.BuildDomTree(f)
	loops := ir.FindLoops(f, dt)

	// Map every block to its outermost enclosing loop; the outermost loop is
	// the kernel boundary (the whole matrix/convolution nest drains into one
	// checksum comparison).
	outer := make(map[*ir.Block]*ir.Loop)
	for _, l := range loops {
		if l.Depth != 1 {
			continue
		}
		for _, b := range l.Body {
			outer[b] = l
		}
	}
	if len(outer) == 0 {
		return nextID, nil
	}

	// Collect eligible stores per kernel in program order (mutation starts
	// only after collection, so positions are stable while scanning).
	kernels := map[*ir.Loop]*abftKernel{}
	var order []*abftKernel
	f.Instrs(func(in *ir.Instr) bool {
		if in.Op != ir.OpStore {
			return true
		}
		l := outer[in.Blk]
		if l == nil {
			return true
		}
		if _, ok := abftEligible(in); !ok {
			return true
		}
		k := kernels[l]
		if k == nil {
			k = &abftKernel{loop: l}
			kernels[l] = k
			order = append(order, k)
		}
		k.stores = append(k.stores, in)
		return true
	})
	if len(order) == 0 {
		return nextID, nil
	}
	sort.SliceStable(order, func(i, j int) bool {
		return order[i].loop.Header.Index < order[j].loop.Header.Index
	})

	d := newDuplicator(f, nil, false)
	d.dupLoads = p.DupThroughLoads
	entry := f.Entry()
	entryAt := 0 // rolling insertion cursor keeps setup in program order

	for _, k := range order {
		// One checksum pair per stored value type present in the kernel.
		type pair struct {
			prim, shad *ir.Instr // alloca'd cells
		}
		pairs := map[ir.Type]*pair{}
		var tys []ir.Type
		cell := func(ty ir.Type) *pair {
			if pr, ok := pairs[ty]; ok {
				return pr
			}
			zero := ir.Value(ir.ConstInt(0))
			if ty == ir.F64 {
				zero = ir.ConstFloat(0)
			}
			pr := &pair{}
			for _, cp := range []**ir.Instr{&pr.prim, &pr.shad} {
				a := &ir.Instr{Op: ir.OpAlloca, Ty: ir.Ptr,
					Args: []ir.Value{ir.ConstInt(1)}, UID: m.NewUID()}
				entry.InsertBefore(a, entryAt)
				entryAt++
				init := &ir.Instr{Op: ir.OpStore, Ty: ir.Void,
					Args: []ir.Value{a, zero}, UID: m.NewUID()}
				entry.InsertBefore(init, entryAt)
				entryAt++
				*cp = a
			}
			pairs[ty] = pr
			tys = append(tys, ty)
			return pr
		}

		// Accumulate both checksums at every eligible store.
		for _, st := range k.stores {
			v, _ := abftEligible(st)
			pr := cell(v.Ty)
			shadow := d.dup(v)
			blk := st.Blk
			accum := func(cs *ir.Instr, val ir.Value) {
				ld := &ir.Instr{Op: ir.OpLoad, Ty: v.Ty,
					Args: []ir.Value{cs}, UID: m.NewUID()}
				add := &ir.Instr{Op: ir.OpAdd, Ty: v.Ty,
					Args: []ir.Value{ld, val}, UID: m.NewUID()}
				wr := &ir.Instr{Op: ir.OpStore, Ty: ir.Void,
					Args: []ir.Value{cs, add}, UID: m.NewUID()}
				for _, in := range []*ir.Instr{ld, add, wr} {
					blk.InsertBefore(in, blk.IndexOf(st))
				}
			}
			accum(pr.prim, v)
			accum(pr.shad, shadow)
		}

		// Verify at every kernel exit: reload both cells, compare once.
		for _, exit := range kernelExits(k.loop) {
			at := len(exit.Phis())
			for _, ty := range tys {
				pr := pairs[ty]
				a := &ir.Instr{Op: ir.OpLoad, Ty: ty,
					Args: []ir.Value{pr.prim}, UID: m.NewUID()}
				b := &ir.Instr{Op: ir.OpLoad, Ty: ty,
					Args: []ir.Value{pr.shad}, UID: m.NewUID()}
				chk := &ir.Instr{Op: ir.OpCmpCheck, Ty: ir.Void,
					Args:  []ir.Value{a, b},
					Check: ir.CheckABFT, CheckID: nextID, UID: m.NewUID()}
				nextID++
				stats.ABFTChecks++
				for _, in := range []*ir.Instr{a, b, chk} {
					exit.InsertBefore(in, at)
					at++
				}
			}
		}
		stats.ABFTKernels++
	}
	stats.DupInstrs += d.cloned
	return nextID, nil
}

// kernelExits returns the loop's exit blocks (successors of body blocks
// outside the body), deduplicated, in block order.
func kernelExits(l *ir.Loop) []*ir.Block {
	seen := map[*ir.Block]bool{}
	var exits []*ir.Block
	for _, b := range l.Body {
		for _, s := range b.Succs {
			if !l.Contains(s) && !seen[s] {
				seen[s] = true
				exits = append(exits, s)
			}
		}
	}
	sort.Slice(exits, func(i, j int) bool { return exits[i].Index < exits[j].Index })
	return exits
}
