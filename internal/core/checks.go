package core

import (
	"math"

	"repro/internal/ir"
	"repro/internal/profile"
)

// CheckForm distinguishes the three expected-value check shapes of paper
// Figure 6.
type CheckForm uint8

// Check forms.
const (
	FormSingle CheckForm = iota // one frequent value (Fig. 6a)
	FormTwo                     // two frequent values (Fig. 6b)
	FormRange                   // compact range (Fig. 6c)
)

func (f CheckForm) String() string {
	switch f {
	case FormSingle:
		return "single"
	case FormTwo:
		return "two"
	}
	return "range"
}

// CheckSpec is a planned expected-value check for one instruction.
type CheckSpec struct {
	Form     CheckForm
	V1, V2   float64 // expected values (single/two)
	Lo, Hi   float64 // range bounds
	Coverage float64 // fraction of profiled values the check admits
}

// AmenableCheck decides whether in, given its value profile, qualifies for
// an expected-value check, preferring the cheapest sufficient form:
// single value, then two values, then a compact range (Algorithm 2).
func AmenableCheck(in *ir.Instr, h *profile.Histogram, p Params) (CheckSpec, bool) {
	if h == nil || h.Total < p.MinSamples {
		return CheckSpec{}, false
	}
	if !checkEligible(in) {
		return CheckSpec{}, false
	}
	if vals, cov := h.TopValues(1); len(vals) == 1 && cov >= p.MinValueCoverage {
		return CheckSpec{Form: FormSingle, V1: vals[0], Coverage: cov}, true
	}
	if vals, cov := h.TopValues(2); len(vals) == 2 && cov >= p.MinValueCoverage {
		return CheckSpec{Form: FormTwo, V1: vals[0], V2: vals[1], Coverage: cov}, true
	}
	r, cov := h.CompactRange(p.RangeThreshold)
	if cov >= p.MinRangeCoverage && r.Hi-r.Lo <= p.RangeThreshold {
		return CheckSpec{Form: FormRange, Lo: r.Lo, Hi: r.Hi, Coverage: cov}, true
	}
	return CheckSpec{}, false
}

// checkEligible reports whether an instruction's value is a sensible check
// target: a real data computation or a table-lookup load. Comparisons
// (always 0/1, consumed by branches) and pointer arithmetic are excluded.
func checkEligible(in *ir.Instr) bool {
	if in.Ty != ir.I64 && in.Ty != ir.F64 {
		return false
	}
	if in.Op.IsCompare() {
		return false
	}
	switch in.Op {
	case ir.OpLoad, ir.OpAdd, ir.OpSub, ir.OpMul, ir.OpDiv, ir.OpRem,
		ir.OpAnd, ir.OpOr, ir.OpXor, ir.OpShl, ir.OpShr, ir.OpNeg,
		ir.OpIToF, ir.OpFToI, ir.OpIntrinsic:
		return true
	}
	return false
}

// buildCheckInstr materializes a CheckSpec as an IR check instruction
// guarding v.
func buildCheckInstr(m *ir.Module, v *ir.Instr, spec CheckSpec, checkID int) *ir.Instr {
	mk := func(x float64) ir.Value {
		if v.Ty == ir.F64 {
			return ir.ConstFloat(x)
		}
		return ir.ConstInt(int64(x))
	}
	in := &ir.Instr{Ty: ir.Void, Check: ir.CheckValue, CheckID: checkID, UID: m.NewUID()}
	switch spec.Form {
	case FormSingle:
		in.Op = ir.OpValCheck
		in.Args = []ir.Value{v, mk(spec.V1)}
	case FormTwo:
		in.Op = ir.OpValCheck
		in.Args = []ir.Value{v, mk(spec.V1), mk(spec.V2)}
	default:
		lo, hi := spec.Lo, spec.Hi
		if v.Ty == ir.I64 {
			lo, hi = math.Floor(lo), math.Ceil(hi) // round outward
		}
		in.Op = ir.OpRangeCheck
		in.Args = []ir.Value{v, mk(lo), mk(hi)}
	}
	return in
}

// planChecks computes the check-amenable set for a function from profiles,
// keyed by instruction.
func planChecks(f *ir.Func, prof *profile.Data, p Params) map[*ir.Instr]CheckSpec {
	specs := make(map[*ir.Instr]CheckSpec)
	if prof == nil {
		return specs
	}
	f.Instrs(func(in *ir.Instr) bool {
		if spec, ok := AmenableCheck(in, prof.Hist(in.UID), p); ok {
			specs[in] = spec
		}
		return true
	})
	return specs
}

// applyOpt1 implements paper Optimization 1: when several instructions on
// one producer chain are amenable, keep only the check deepest in the chain
// (i.e. drop any candidate that transitively produces another candidate
// through pure computation). Candidates in keep are never dropped (they
// were promised by Optimization 2 in lieu of duplication).
func applyOpt1(specs map[*ir.Instr]CheckSpec, keep map[*ir.Instr]bool) {
	// For every candidate, walk its producers (stopping at chain
	// terminators) and drop candidates found strictly above it.
	stop := func(in *ir.Instr) bool { return !in.Op.IsArith() }
	var drop []*ir.Instr
	for cand := range specs {
		ir.Producers(cand, stop, func(p *ir.Instr) {
			if p == cand {
				return
			}
			if _, isCand := specs[p]; isCand && !keep[p] {
				drop = append(drop, p)
			}
		})
	}
	for _, d := range drop {
		delete(specs, d)
	}
}
