package core

import (
	"math/rand"
	"testing"

	"repro/internal/ir"
	"repro/internal/lang"
	"repro/internal/profile"
	"repro/internal/vm"
)

// crcSrc mirrors the paper's Figure 3 mp3dec kernel: crc and len are
// loop-carried state variables; tableVal is a table lookup feeding the crc
// update.
const crcSrc = `
global int data[256];
global int crc_table[64];
global int out[1];
void main() {
	int crc = 0xffff;
	int len = 256;
	int i = 0;
	while (len >= 8) {
		int d = data[i];
		int tableVal = crc_table[(d ^ crc) & 63];
		crc = ((crc << 8) ^ tableVal) & 0xffffffff;
		i += 1;
		len -= 8;
	}
	out[0] = crc;
}`

func compile(t testing.TB, src string) *ir.Module {
	t.Helper()
	m, err := lang.Compile("t", src)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	return m
}

func crcInputs(seed int64) (data, table []int64) {
	rng := rand.New(rand.NewSource(seed))
	data = make([]int64, 256)
	table = make([]int64, 64)
	for i := range data {
		data[i] = int64(rng.Intn(256))
	}
	for i := range table {
		table[i] = int64(rng.Intn(1 << 16))
	}
	return data, table
}

func runCRC(t testing.TB, m *ir.Module, opts vm.RunOptions) (*vm.Result, int64) {
	t.Helper()
	mach, err := vm.New(m, vm.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	data, table := crcInputs(1)
	mach.BindInputInts("data", data)
	mach.BindInputInts("crc_table", table)
	mach.Reset()
	res := mach.Run(opts)
	out, _ := mach.ReadGlobalInts("out")
	return res, out[0]
}

func TestFindStateVarsOnCRCKernel(t *testing.T) {
	m := compile(t, crcSrc)
	svs := FindStateVars(m.Func("main"))
	// crc, len, i are all loop-carried.
	if len(svs) != 3 {
		t.Fatalf("state vars = %d, want 3 (crc, len, i)\n%s", len(svs), m.Func("main").Dump())
	}
	for _, sv := range svs {
		if sv.Phi.Op != ir.OpPhi {
			t.Error("state var is not a phi")
		}
		if len(sv.Updates) == 0 {
			t.Error("state var without back-edge update")
		}
		if sv.Loop.Header != sv.Phi.Blk {
			t.Error("state var phi not in its loop header")
		}
	}
}

func TestDupOnlyPreservesSemantics(t *testing.T) {
	orig := compile(t, crcSrc)
	prot := orig.Clone()
	stats, err := Protect(prot, SchemeDup, nil, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	if stats.StateVars != 3 {
		t.Errorf("stats.StateVars = %d", stats.StateVars)
	}
	if stats.DupInstrs == 0 || stats.DupChecks == 0 {
		t.Fatalf("nothing duplicated: %+v", stats)
	}

	r0, o0 := runCRC(t, orig, vm.RunOptions{})
	r1, o1 := runCRC(t, prot, vm.RunOptions{})
	if r0.Trap != nil || r1.Trap != nil {
		t.Fatalf("traps: %v / %v", r0.Trap, r1.Trap)
	}
	if o0 != o1 {
		t.Fatalf("protected output %d != original %d", o1, o0)
	}
	if r1.Dyn <= r0.Dyn {
		t.Errorf("protected dyn %d <= original %d", r1.Dyn, r0.Dyn)
	}
	if r1.Cycles <= r0.Cycles {
		t.Errorf("protected cycles %d <= original %d", r1.Cycles, r0.Cycles)
	}
}

// profileCRC runs the CRC kernel collecting value profiles.
func profileCRC(t testing.TB, m *ir.Module) *profile.Data {
	t.Helper()
	mach, err := vm.New(m, vm.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	data, table := crcInputs(1)
	mach.BindInputInts("data", data)
	mach.BindInputInts("crc_table", table)
	mach.Reset()
	col := profile.NewCollector(profile.DefaultBins)
	if res := mach.Run(vm.RunOptions{Profiler: col}); res.Trap != nil {
		t.Fatalf("profiling trap: %v", res.Trap)
	}
	return col.Data()
}

func TestDupValPreservesSemanticsOnTrainingInput(t *testing.T) {
	orig := compile(t, crcSrc)
	prof := profileCRC(t, orig)

	prot := orig.Clone()
	p := DefaultParams()
	// Full coverage requirement: on the training input no check may fire.
	p.MinRangeCoverage = 1.0
	p.MinValueCoverage = 1.0
	stats, err := Protect(prot, SchemeDupVal, prof, p)
	if err != nil {
		t.Fatal(err)
	}
	if stats.ValueChecks == 0 {
		t.Fatalf("no value checks inserted: %+v\n%s", stats, prot.Func("main").Dump())
	}

	_, o0 := runCRC(t, orig, vm.RunOptions{})
	r1, o1 := runCRC(t, prot, vm.RunOptions{CountChecks: true})
	if r1.Trap != nil {
		t.Fatalf("trap: %v", r1.Trap)
	}
	if o0 != o1 {
		t.Fatalf("output %d != %d", o1, o0)
	}
	if r1.CheckFails != 0 {
		t.Fatalf("checks fired on training input: %d", r1.CheckFails)
	}
}

func TestDupValRequiresProfiles(t *testing.T) {
	m := compile(t, crcSrc)
	if _, err := Protect(m, SchemeDupVal, nil, DefaultParams()); err == nil {
		t.Fatal("DupVal without profiles accepted")
	}
}

func TestFullDupPreservesSemantics(t *testing.T) {
	orig := compile(t, crcSrc)
	prot := orig.Clone()
	stats, err := Protect(prot, SchemeFullDup, nil, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	if stats.DupInstrs == 0 || stats.DupChecks == 0 {
		t.Fatalf("full dup did nothing: %+v", stats)
	}

	r0, o0 := runCRC(t, orig, vm.RunOptions{})
	r1, o1 := runCRC(t, prot, vm.RunOptions{})
	if r1.Trap != nil {
		t.Fatalf("trap: %v", r1.Trap)
	}
	if o0 != o1 {
		t.Fatalf("output %d != %d", o1, o0)
	}
	if r1.Dyn <= r0.Dyn {
		t.Error("full dup did not add dynamic work")
	}
}

// TestProtectionOverheadOrdering checks the paper's central cost relation:
// overhead(DupOnly) < overhead(DupVal) < overhead(FullDup).
func TestProtectionOverheadOrdering(t *testing.T) {
	orig := compile(t, crcSrc)
	prof := profileCRC(t, orig)

	cycles := func(mode string, withProf bool) int64 {
		m := orig.Clone()
		var pd *profile.Data
		if withProf {
			pd = prof
		}
		if _, err := Protect(m, mode, pd, DefaultParams()); err != nil {
			t.Fatal(err)
		}
		r, _ := runCRC(t, m, vm.RunOptions{CountChecks: true})
		if r.Trap != nil {
			t.Fatalf("%s trap: %v", mode, r.Trap)
		}
		return r.Cycles
	}

	c0 := cycles(SchemeOriginal, false)
	cDup := cycles(SchemeDup, false)
	cVal := cycles(SchemeDupVal, true)
	cFull := cycles(SchemeFullDup, false)
	// Every scheme costs something; full duplication costs the most. Note
	// DupVal may undercut DupOnly on a single kernel (the paper sees this
	// on svm): Optimization 2 swaps duplication chains for cheaper checks.
	if !(c0 < cDup && c0 < cVal && cDup < cFull && cVal < cFull) {
		t.Fatalf("overhead ordering violated: orig=%d dup=%d dup+val=%d full=%d", c0, cDup, cVal, cFull)
	}
}

// buildFig8Module reproduces paper Figure 8: a straight-line producer chain
// 1 -> 3 -> 4 -> 5 where several instructions are check-amenable; with
// Optimization 1 only the deepest (5) receives a check.
func buildFig8Module(t *testing.T) (*ir.Module, []*ir.Instr) {
	t.Helper()
	m := ir.NewModule("fig8")
	in := m.AddGlobal("in", 1)
	out := m.AddGlobal("out", 1)
	f := m.NewFunc("main", ir.Void)
	b := ir.NewBuilder(f)
	v0 := b.Load(ir.I64, in)
	i1 := b.Bin(ir.OpAdd, v0, ir.ConstInt(1))
	i3 := b.Bin(ir.OpMul, i1, ir.ConstInt(2))
	i4 := b.Bin(ir.OpAdd, i3, ir.ConstInt(3))
	i5 := b.Bin(ir.OpXor, i4, ir.ConstInt(7))
	b.Store(out, i5)
	b.Ret(nil)
	m.Renumber()
	if err := m.Verify(); err != nil {
		t.Fatal(err)
	}
	return m, []*ir.Instr{i1, i3, i4, i5}
}

func TestOpt1KeepsOnlyDeepestCheck(t *testing.T) {
	_, chain := buildFig8Module(t)
	specs := map[*ir.Instr]CheckSpec{}
	for _, in := range chain {
		specs[in] = CheckSpec{Form: FormRange, Lo: 0, Hi: 100}
	}
	applyOpt1(specs, nil)
	if len(specs) != 1 {
		t.Fatalf("checks remaining = %d, want 1", len(specs))
	}
	if _, ok := specs[chain[3]]; !ok {
		t.Fatal("surviving check is not the deepest instruction")
	}
}

func TestOpt1HonorsMustCheckSet(t *testing.T) {
	_, chain := buildFig8Module(t)
	specs := map[*ir.Instr]CheckSpec{}
	for _, in := range chain {
		specs[in] = CheckSpec{Form: FormRange, Lo: 0, Hi: 100}
	}
	keep := map[*ir.Instr]bool{chain[0]: true} // Opt2 promised a check on i1
	applyOpt1(specs, keep)
	if len(specs) != 2 {
		t.Fatalf("checks remaining = %d, want 2 (deepest + kept)", len(specs))
	}
	if _, ok := specs[chain[0]]; !ok {
		t.Fatal("must-check instruction was pruned")
	}
}

// TestOpt2TerminatesDuplicationAtCheckableInstr reproduces paper Figure 9:
// a state-variable chain containing a check-amenable producer stops
// duplicating there and records the instruction in mustCheck.
func TestOpt2TerminatesDuplicationAtCheckableInstr(t *testing.T) {
	src := `
global int in[64];
global int out[1];
void main() {
	int acc = 0;
	for (int i = 0; i < 64; i += 1) {
		int x = in[i] * 3;
		int y = x + 5;
		acc = acc + y;
	}
	out[0] = acc;
}`
	m := compile(t, src)
	f := m.Func("main")
	svs := FindStateVars(f)
	if len(svs) != 2 {
		t.Fatalf("state vars = %d", len(svs))
	}

	// Find the add computing y (x + 5).
	var yInstr *ir.Instr
	f.Instrs(func(in *ir.Instr) bool {
		if in.Op == ir.OpAdd {
			if c, ok := in.Args[1].(*ir.Const); ok && c.Int() == 5 {
				yInstr = in
				return false
			}
		}
		return true
	})
	if yInstr == nil {
		t.Fatalf("y instruction not found:\n%s", f.Dump())
	}

	withOpt2 := func(enabled bool) int {
		m2 := m.Clone()
		f2 := m2.Func("main")
		var y2 *ir.Instr
		f2.Instrs(func(in *ir.Instr) bool {
			if in.UID == yInstr.UID {
				y2 = in
				return false
			}
			return true
		})
		specs := map[*ir.Instr]CheckSpec{y2: {Form: FormRange, Lo: 0, Hi: 1000}}
		svs2 := FindStateVars(f2)
		d := newDuplicator(f2, specs, enabled)
		d.mirrorStateVars(svs2, 1)
		if enabled && !d.mustCheck[y2] {
			t.Error("Opt2 did not record the terminating check")
		}
		return d.cloned
	}

	with := withOpt2(true)
	without := withOpt2(false)
	if with >= without {
		t.Fatalf("Opt2 did not reduce duplication: with=%d without=%d", with, without)
	}
}

func TestStatsFractions(t *testing.T) {
	s := &Stats{TotalInstrs: 200, StateVars: 4, DupInstrs: 20, ValueChecks: 10}
	if s.FracStateVars() != 0.02 || s.FracDuplicated() != 0.1 || s.FracValueChecks() != 0.05 {
		t.Fatalf("fractions wrong: %v %v %v", s.FracStateVars(), s.FracDuplicated(), s.FracValueChecks())
	}
}

// TestDupOnlyDetectsStateCorruption injects faults and requires that the
// protected binary converts some silent corruptions into detections.
func TestDupOnlyDetectsStateCorruption(t *testing.T) {
	orig := compile(t, crcSrc)
	prot := orig.Clone()
	if _, err := Protect(prot, SchemeDup, nil, DefaultParams()); err != nil {
		t.Fatal(err)
	}

	data, table := crcInputs(1)
	golden := func(m *ir.Module) (int64, int64) {
		mach, _ := vm.New(m, vm.DefaultConfig())
		mach.BindInputInts("data", data)
		mach.BindInputInts("crc_table", table)
		mach.Reset()
		r := mach.Run(vm.RunOptions{})
		out, _ := mach.ReadGlobalInts("out")
		return out[0], r.Dyn
	}
	goldOut, goldDyn := golden(prot)

	detected, corrupted := 0, 0
	const trials = 300
	for i := 0; i < trials; i++ {
		rng := rand.New(rand.NewSource(int64(1000 + i)))
		mach, _ := vm.New(prot, vm.DefaultConfig())
		mach.BindInputInts("data", data)
		mach.BindInputInts("crc_table", table)
		mach.Reset()
		plan := &vm.FaultPlan{
			TriggerDyn: rng.Int63n(goldDyn),
			PickSlot:   func(n int) int { return rng.Intn(n) },
			PickBit:    func() int { return rng.Intn(64) },
		}
		res := mach.Run(vm.RunOptions{Fault: plan})
		if res.Trap != nil && res.Trap.Kind == vm.TrapCheck {
			detected++
			continue
		}
		if res.Trap == nil {
			out, _ := mach.ReadGlobalInts("out")
			if out[0] != goldOut {
				corrupted++
			}
		}
	}
	if detected == 0 {
		t.Fatal("duplication checks never detected an injected fault")
	}
	t.Logf("detected=%d silently-corrupted=%d of %d", detected, corrupted, trials)
}
