package core

import "repro/internal/ir"

// duplicator clones producer chains within one function. Cloned
// instructions are placed immediately after their originals, so dominance
// is preserved structurally. State-variable phis get mirror phis so the
// redundant computation is carried independently across iterations
// (paper Figure 4: crc vs crcD).
type duplicator struct {
	fn  *ir.Func
	mod *ir.Module

	// dupPhi maps a state-variable phi to its mirror.
	dupPhi map[*ir.Instr]*ir.Instr
	// memo maps an original instruction to its clone (or to itself where
	// the chain terminated).
	memo map[*ir.Instr]ir.Value

	// checkable marks instructions where Optimization 2 terminates
	// duplication; hitting one records it in mustCheck.
	checkable map[*ir.Instr]CheckSpec
	opt2      bool
	dupLoads  bool
	mustCheck map[*ir.Instr]bool

	cloned int // clones + mirror phis created
}

func newDuplicator(fn *ir.Func, checkable map[*ir.Instr]CheckSpec, opt2 bool) *duplicator {
	return &duplicator{
		fn:        fn,
		mod:       fn.Module,
		dupPhi:    make(map[*ir.Instr]*ir.Instr),
		memo:      make(map[*ir.Instr]ir.Value),
		checkable: checkable,
		opt2:      opt2,
		mustCheck: make(map[*ir.Instr]bool),
	}
}

// terminates reports whether the chain stops at in (the clone would be the
// original value itself). Loads terminate to save memory traffic — a
// corrupted address is expected to surface as an out-of-bounds symptom
// (paper §III-B). Calls and allocas have effects; phis terminate unless
// they are state variables being mirrored.
func (d *duplicator) terminates(in *ir.Instr) bool {
	switch in.Op {
	case ir.OpLoad:
		return !d.dupLoads
	case ir.OpCall, ir.OpAlloca:
		return true
	case ir.OpPhi:
		_, mirrored := d.dupPhi[in]
		return !mirrored
	}
	if !in.Op.IsArith() {
		return true
	}
	return false
}

// dup returns the redundant version of v, cloning its producer chain as
// needed. Non-instruction values (constants, params, globals) are shared.
func (d *duplicator) dup(v ir.Value) ir.Value {
	in, ok := v.(*ir.Instr)
	if !ok {
		return v
	}
	if mirror, ok := d.dupPhi[in]; ok {
		return mirror
	}
	if r, ok := d.memo[in]; ok {
		return r
	}
	if d.terminates(in) {
		d.memo[in] = in
		return in
	}
	if d.opt2 {
		if _, amen := d.checkable[in]; amen {
			// Optimization 2: stop duplicating; a value check on the
			// original stands in for the rest of the chain.
			d.mustCheck[in] = true
			d.memo[in] = in
			return in
		}
	}
	clone := &ir.Instr{
		Op: in.Op, Ty: in.Ty, Intrinsic: in.Intrinsic,
		UID: d.mod.NewUID(),
	}
	// Install the mapping before recursing so (impossible in well-formed
	// SSA outside phis, but cheap) cycles cannot loop forever.
	d.memo[in] = clone
	for _, a := range in.Args {
		clone.Args = append(clone.Args, d.dup(a))
	}
	in.Blk.InsertAfterInstr(clone, in)
	d.cloned++
	return clone
}

// mirrorStateVars creates the mirror phi for every state variable up front
// (so mutually recursive state updates resolve), then fills their edges and
// inserts a comparison check on every back edge.
//
// checkID numbering continues from nextCheckID; the new next id is
// returned.
func (d *duplicator) mirrorStateVars(svs []*StateVar, nextCheckID int) (dupChecks, next int) {
	// Pass 1: create empty mirrors.
	for _, sv := range svs {
		mirror := &ir.Instr{Op: ir.OpPhi, Ty: sv.Phi.Ty, UID: d.mod.NewUID()}
		sv.Phi.Blk.InsertAfterInstr(mirror, sv.Phi)
		d.dupPhi[sv.Phi] = mirror
	}
	// Pass 2: fill edges; in-loop edges use duplicated chains.
	for _, sv := range svs {
		mirror := d.dupPhi[sv.Phi]
		inLoop := make(map[*ir.Block]bool)
		for _, u := range sv.Updates {
			inLoop[u.Pred] = true
		}
		for i, pred := range sv.Phi.Preds {
			v := sv.Phi.Args[i]
			if inLoop[pred] {
				ir.AddIncoming(mirror, d.dup(v), pred)
			} else {
				ir.AddIncoming(mirror, v, pred) // initial value is shared
			}
		}
	}
	// Pass 3: prune mirrors that ended up identical to their originals
	// (every edge shared), and insert the comparison checks for the rest.
	for _, sv := range svs {
		mirror := d.dupPhi[sv.Phi]
		identical := true
		for i, a := range mirror.Args {
			if a != sv.Phi.Args[i] {
				identical = false
				break
			}
		}
		if identical {
			// Other duplicated chains may already reference the mirror;
			// redirect them to the original before deleting it.
			d.fn.Instrs(func(u *ir.Instr) bool {
				u.ReplaceArg(mirror, sv.Phi)
				return true
			})
			blk := mirror.Blk
			blk.Instrs = removeInstr(blk.Instrs, mirror)
			delete(d.dupPhi, sv.Phi)
			continue
		}
		d.cloned++ // the mirror phi itself is redundant work
		for i, pred := range sv.Phi.Preds {
			if orig, dup := sv.Phi.Args[i], mirror.Args[i]; orig != dup {
				chk := &ir.Instr{
					Op: ir.OpCmpCheck, Ty: ir.Void,
					Args:    []ir.Value{orig, dup},
					Check:   ir.CheckDup,
					CheckID: nextCheckID,
					UID:     d.mod.NewUID(),
				}
				nextCheckID++
				dupChecks++
				pred.InsertBeforeTerminator(chk)
			}
		}
	}
	return dupChecks, nextCheckID
}

func removeInstr(list []*ir.Instr, in *ir.Instr) []*ir.Instr {
	out := list[:0]
	for _, x := range list {
		if x != in {
			out = append(out, x)
		}
	}
	return out
}
