package core

import "repro/internal/ir"

// fullDuplicate implements the SWIFT-style baseline: duplicate every
// computation chain feeding a store (value and address), a conditional
// branch, a return, or a call argument, and compare original against
// duplicate at those sinks. Loads and stores themselves are not duplicated
// (the paper's "maximum amount of duplication possible without duplicating
// loads/stores"); phis are mirrored like state variables so redundancy is
// carried across iterations.
func fullDuplicate(f *ir.Func, startCheckID int) (stats Stats, nextCheckID int, err error) {
	f.ComputeCFG()
	dt := ir.BuildDomTree(f)
	loops := ir.FindLoops(f, dt)

	// Mirror every phi that is a loop-header phi (these need independent
	// carried state); other phis act as chain terminators.
	var svs []*StateVar
	for _, l := range loops {
		for _, phi := range l.Header.Phis() {
			sv := &StateVar{Phi: phi, Loop: l}
			for i, pred := range phi.Preds {
				if l.Contains(pred) {
					sv.Updates = append(sv.Updates, StateUpdate{Pred: pred, Value: phi.Args[i]})
				}
			}
			if len(sv.Updates) > 0 {
				svs = append(svs, sv)
			}
		}
	}
	stats.StateVars = len(svs)

	d := newDuplicator(f, nil, false)
	dupChecks, next := d.mirrorStateVars(svs, startCheckID)
	nextCheckID = next

	// Collect sinks before inserting anything (we mutate blocks as we go).
	type sink struct {
		in   *ir.Instr
		args []int // operand indices whose chains to duplicate and compare
	}
	var sinks []sink
	f.Instrs(func(in *ir.Instr) bool {
		switch in.Op {
		case ir.OpStore:
			sinks = append(sinks, sink{in, []int{0, 1}})
		case ir.OpBr:
			sinks = append(sinks, sink{in, []int{0}})
		case ir.OpRet:
			if len(in.Args) == 1 {
				sinks = append(sinks, sink{in, []int{0}})
			}
		case ir.OpCall:
			idx := make([]int, len(in.Args))
			for i := range idx {
				idx[i] = i
			}
			if len(idx) > 0 {
				sinks = append(sinks, sink{in, idx})
			}
		}
		return true
	})

	for _, s := range sinks {
		for _, ai := range s.args {
			orig := s.in.Args[ai]
			dup := d.dup(orig)
			if dup == orig {
				continue // chain terminated immediately; nothing to compare
			}
			origIn := orig.(*ir.Instr)
			chk := &ir.Instr{
				Op: ir.OpCmpCheck, Ty: ir.Void,
				Args:    []ir.Value{origIn, dup},
				Check:   ir.CheckDup,
				CheckID: nextCheckID,
				UID:     f.Module.NewUID(),
			}
			nextCheckID++
			dupChecks++
			s.in.Blk.InsertBefore(chk, s.in.Blk.IndexOf(s.in))
		}
	}

	stats.DupInstrs = d.cloned
	stats.DupChecks = dupChecks
	return stats, nextCheckID, nil
}
