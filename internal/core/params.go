// Package core implements the paper's contribution: a compiler
// transformation that partitions computation into (1) critical loop-carried
// state variables protected by selective duplication of their producer
// chains with a comparison check, (2) check-amenable computations protected
// by cheap expected-value checks derived from value profiles, and (3) the
// rest, left unprotected. It also implements the two optimizations coupling
// the mechanisms (checks pushed deepest in producer chains; duplication
// terminated at check-amenable producers) and a SWIFT-style full-duplication
// baseline for comparison.
package core

// Params tunes check amenability and the two optimizations.
type Params struct {
	// RangeThreshold is the paper's R_thr: the maximum width of a compact
	// range eligible for a range check.
	RangeThreshold float64
	// MinRangeCoverage is the fraction of profiled values the compact range
	// must cover for a range check to be inserted (controls false
	// positives).
	MinRangeCoverage float64
	// MinValueCoverage is the coverage required for single-/two-value
	// checks (Figure 6 a/b).
	MinValueCoverage float64
	// MinSamples is the minimum number of profiled observations before an
	// instruction is considered for checks at all.
	MinSamples uint64
	// Opt1 prunes checks that feed deeper check-amenable instructions
	// (paper Optimization 1).
	Opt1 bool
	// Opt2 terminates duplication at check-amenable producers, inserting a
	// value check instead (paper Optimization 2).
	Opt2 bool
	// DupThroughLoads continues duplication past load instructions
	// (re-loading through the duplicated address chain). The paper stops
	// at loads to save memory traffic (§III-B); this knob exists for the
	// ablation benchmark.
	DupThroughLoads bool
}

// DefaultParams returns the configuration used by the experiments.
func DefaultParams() Params {
	return Params{
		RangeThreshold:   4096,
		MinRangeCoverage: 0.995,
		MinValueCoverage: 0.9999,
		MinSamples:       32,
		Opt1:             true,
		Opt2:             true,
	}
}

// Stats reports what the transformation did, as fractions of the static
// instruction count before protection (paper Figure 10).
type Stats struct {
	Scheme       string // canonical scheme name ("dupval", "abft+dupval", ...)
	TotalInstrs  int    // static IR instructions before protection
	StateVars    int    // loop-header phis identified as state variables
	DupInstrs    int    // duplicated instructions inserted (incl. mirror phis)
	ValueChecks  int    // expected-value checks inserted
	DupChecks    int    // duplicate-comparison checks inserted
	CheckedInstr int    // instructions covered by a value check
	ABFTKernels  int    // kernel loops covered by ABFT checksums
	ABFTChecks   int    // checksum-comparison checks inserted at kernel exits
}

// FracStateVars returns state variables over original static instructions.
func (s *Stats) FracStateVars() float64 { return frac(s.StateVars, s.TotalInstrs) }

// FracDuplicated returns duplicated instructions over original static count.
func (s *Stats) FracDuplicated() float64 { return frac(s.DupInstrs, s.TotalInstrs) }

// FracValueChecks returns inserted value checks over original static count.
func (s *Stats) FracValueChecks() float64 { return frac(s.ValueChecks, s.TotalInstrs) }

func frac(a, b int) float64 {
	if b == 0 {
		return 0
	}
	return float64(a) / float64(b)
}
