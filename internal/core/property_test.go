package core

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/ir"
	"repro/internal/lang"
	"repro/internal/profile"
	"repro/internal/vm"
)

// progGen emits random but well-formed mini-C programs with loops, branches
// and array traffic — the property test corpus for "protection never
// changes fault-free semantics".
type progGen struct {
	rng      *rand.Rand
	b        strings.Builder
	vars     []string // readable
	writable []string // assignable (excludes loop induction variables)
	next     int
}

func (g *progGen) fresh() string {
	g.next++
	return fmt.Sprintf("v%d", g.next)
}

func (g *progGen) anyVar() string {
	return g.vars[g.rng.Intn(len(g.vars))]
}

func (g *progGen) anyWritable() string {
	return g.writable[g.rng.Intn(len(g.writable))]
}

// expr produces an int expression over live variables; depth-bounded and
// division-free (so random programs cannot trap).
func (g *progGen) expr(depth int) string {
	if depth == 0 || g.rng.Intn(3) == 0 {
		switch g.rng.Intn(3) {
		case 0:
			return g.anyVar()
		case 1:
			return fmt.Sprintf("%d", g.rng.Intn(100))
		default:
			return fmt.Sprintf("in[(%s) & 63]", g.anyVar())
		}
	}
	ops := []string{"+", "-", "*", "&", "|", "^"}
	return fmt.Sprintf("(%s %s %s)", g.expr(depth-1), ops[g.rng.Intn(len(ops))], g.expr(depth-1))
}

func (g *progGen) stmt(depth int) {
	switch g.rng.Intn(6) {
	case 0, 1: // assignment
		fmt.Fprintf(&g.b, "%s = %s;\n", g.anyWritable(), g.expr(2))
	case 2: // new variable
		v := g.fresh()
		fmt.Fprintf(&g.b, "int %s = %s;\n", v, g.expr(2))
		g.vars = append(g.vars, v)
		g.writable = append(g.writable, v)
	case 3: // store
		fmt.Fprintf(&g.b, "out[(%s) & 63] = %s;\n", g.expr(1), g.expr(2))
	case 4: // if
		if depth == 0 {
			fmt.Fprintf(&g.b, "%s = %s;\n", g.anyWritable(), g.expr(2))
			return
		}
		fmt.Fprintf(&g.b, "if ((%s) > %d) {\n", g.expr(1), g.rng.Intn(200))
		mark, wmark := len(g.vars), len(g.writable)
		g.stmt(depth - 1)
		g.vars, g.writable = g.vars[:mark], g.writable[:wmark]
		g.b.WriteString("} else {\n")
		g.stmt(depth - 1)
		g.vars, g.writable = g.vars[:mark], g.writable[:wmark]
		g.b.WriteString("}\n")
	default: // counted loop with an accumulator (guaranteed state vars)
		if depth == 0 {
			fmt.Fprintf(&g.b, "%s = %s;\n", g.anyWritable(), g.expr(2))
			return
		}
		acc := g.fresh()
		fmt.Fprintf(&g.b, "int %s = 0;\n", acc)
		g.vars = append(g.vars, acc)
		g.writable = append(g.writable, acc)
		mark, wmark := len(g.vars), len(g.writable)
		n := 2 + g.rng.Intn(12)
		iv := g.fresh()
		fmt.Fprintf(&g.b, "for (int %s = 0; %s < %d; %s += 1) {\n", iv, iv, n, iv)
		g.vars = append(g.vars, iv) // readable in the body, never assigned
		fmt.Fprintf(&g.b, "%s = (%s + %s) & 0xffff;\n", acc, acc, g.expr(2))
		g.stmt(depth - 1)
		g.b.WriteString("}\n")
		g.vars, g.writable = g.vars[:mark], g.writable[:wmark]
	}
}

func (g *progGen) generate(nStmts int) string {
	g.b.WriteString("global int in[64];\nglobal int out[64];\nvoid main() {\n")
	g.vars = []string{"seed"}
	g.writable = []string{"seed"}
	g.b.WriteString("int seed = in[0];\n")
	for i := 0; i < nStmts; i++ {
		g.stmt(2)
	}
	g.b.WriteString("}\n")
	return g.b.String()
}

// TestProtectionPreservesSemanticsOnRandomPrograms is the transformation's
// main correctness property: for random programs and random inputs, every
// protection mode leaves the fault-free output bit-identical and fires no
// duplication checks.
func TestProtectionPreservesSemanticsOnRandomPrograms(t *testing.T) {
	const trials = 60
	for trial := 0; trial < trials; trial++ {
		rng := rand.New(rand.NewSource(int64(9000 + trial)))
		g := &progGen{rng: rng, next: 0}
		src := g.generate(3 + rng.Intn(5))

		mod, err := lang.Compile(fmt.Sprintf("rnd%d", trial), src)
		if err != nil {
			t.Fatalf("trial %d: compile: %v\n%s", trial, err, src)
		}

		input := make([]int64, 64)
		for i := range input {
			input[i] = int64(rng.Intn(512) - 256)
		}

		run := func(m2 *ir.Module, opts vm.RunOptions) ([]int64, *vm.Result) {
			mach, err := vm.New(m2, vm.DefaultConfig())
			if err != nil {
				t.Fatalf("trial %d: %v", trial, err)
			}
			if err := mach.BindInputInts("in", input); err != nil {
				t.Fatal(err)
			}
			mach.Reset()
			res := mach.Run(opts)
			if res.Trap != nil {
				t.Fatalf("trial %d: trap %v\n%s", trial, res.Trap, src)
			}
			out, _ := mach.ReadGlobalInts("out")
			return out, res
		}

		golden, _ := run(mod, vm.RunOptions{})

		// Profile for DupVal.
		profMach, _ := vm.New(mod.Clone(), vm.DefaultConfig())
		profMach.BindInputInts("in", input)
		profMach.Reset()
		col := profile.NewCollector(profile.DefaultBins)
		if res := profMach.Run(vm.RunOptions{Profiler: col}); res.Trap != nil {
			t.Fatalf("trial %d: profiling trap %v", trial, res.Trap)
		}

		for _, mode := range []string{SchemeDup, SchemeDupVal, SchemeFullDup} {
			prot := mod.Clone()
			var pd *profile.Data
			if mode == SchemeDupVal {
				pd = col.Data()
			}
			if _, err := Protect(prot, mode, pd, DefaultParams()); err != nil {
				t.Fatalf("trial %d: %s: %v\n%s", trial, mode, err, src)
			}
			if err := prot.Verify(); err != nil {
				t.Fatalf("trial %d: %s verify: %v", trial, mode, err)
			}
			out, res := run(prot, vm.RunOptions{CountChecks: true})
			for i := range golden {
				if out[i] != golden[i] {
					t.Fatalf("trial %d: %s changed out[%d]: %d != %d\n%s\n%s",
						trial, mode, i, out[i], golden[i], src, prot.String())
				}
			}
			// Duplication comparisons must never fire fault-free. (Value
			// checks may: the profile is exact here, so they must not
			// either — CountChecks is a hard zero in this setting.)
			if res.CheckFails != 0 {
				t.Fatalf("trial %d: %s fired %d checks fault-free (profiled on the same input)\n%s",
					trial, mode, res.CheckFails, src)
			}
		}
	}
}
