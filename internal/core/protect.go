package core

import (
	"repro/internal/ir"
	"repro/internal/profile"
)

// Protect applies the named protection scheme to m in place and returns
// static statistics — a convenience wrapper over the scheme registry (see
// scheme.go). Callers that need the unprotected module afterwards should
// Clone first. prof may be nil unless the scheme reports NeedsProfile.
func Protect(m *ir.Module, scheme string, prof *profile.Data, p Params) (*Stats, error) {
	return Apply(m, scheme, prof, p)
}

// dupTransform is the paper's selective protection: state-variable
// duplication alone (dup), or combined with profile-derived expected-value
// checks and the two optimizations (dupval).
func dupTransform(valChecks bool) func(m *ir.Module, prof *profile.Data, p Params, stats *Stats) error {
	return func(m *ir.Module, prof *profile.Data, p Params, stats *Stats) error {
		nextID := nextCheckID(m)
		for _, f := range m.Funcs {
			svs := FindStateVars(f)
			stats.StateVars += len(svs)

			var specs map[*ir.Instr]CheckSpec
			if valChecks {
				specs = planChecks(f, prof, p)
			}

			d := newDuplicator(f, specs, valChecks && p.Opt2)
			d.dupLoads = p.DupThroughLoads
			dupChecks, next := d.mirrorStateVars(svs, nextID)
			nextID = next
			stats.DupInstrs += d.cloned
			stats.DupChecks += dupChecks

			if valChecks {
				// Optimization 1 prunes shallow checks, but never the ones
				// Optimization 2 promised in lieu of duplication.
				if p.Opt1 {
					applyOpt1(specs, d.mustCheck)
				}
				// Deterministic insertion order: walk instructions in
				// block order so CheckIDs are stable across runs.
				var targets []*ir.Instr
				f.Instrs(func(in *ir.Instr) bool {
					if _, ok := specs[in]; ok {
						targets = append(targets, in)
					}
					return true
				})
				for _, in := range targets {
					chk := buildCheckInstr(m, in, specs[in], nextID)
					nextID++
					in.Blk.InsertAfterInstr(chk, in)
					stats.ValueChecks++
					stats.CheckedInstr++
				}
			}
		}
		return nil
	}
}

// fullDupTransform is the SWIFT-style full-duplication baseline.
func fullDupTransform(m *ir.Module, prof *profile.Data, p Params, stats *Stats) error {
	nextID := nextCheckID(m)
	for _, f := range m.Funcs {
		fs, next, err := fullDuplicate(f, nextID)
		if err != nil {
			return err
		}
		nextID = next
		stats.StateVars += fs.StateVars
		stats.DupInstrs += fs.DupInstrs
		stats.DupChecks += fs.DupChecks
	}
	return nil
}
