package core

import (
	"fmt"

	"repro/internal/ir"
	"repro/internal/profile"
)

// Protect applies the selected protection scheme to m in place and returns
// static statistics. Callers that need the unprotected module afterwards
// should Clone first. prof may be nil for ModeOriginal, ModeDupOnly and
// ModeFullDup; ModeDupVal requires it.
func Protect(m *ir.Module, mode Mode, prof *profile.Data, p Params) (*Stats, error) {
	total := m.NumInstrs()
	stats := &Stats{Mode: mode, TotalInstrs: total}

	switch mode {
	case ModeOriginal:
		return stats, nil

	case ModeFullDup:
		nextID := 1
		for _, f := range m.Funcs {
			fs, next, err := fullDuplicate(f, nextID)
			if err != nil {
				return nil, err
			}
			nextID = next
			stats.StateVars += fs.StateVars
			stats.DupInstrs += fs.DupInstrs
			stats.DupChecks += fs.DupChecks
		}

	case ModeDupOnly, ModeDupVal:
		if mode == ModeDupVal && prof == nil {
			return nil, fmt.Errorf("core: %s requires value profiles", mode)
		}
		nextID := 1
		for _, f := range m.Funcs {
			svs := FindStateVars(f)
			stats.StateVars += len(svs)

			var specs map[*ir.Instr]CheckSpec
			if mode == ModeDupVal {
				specs = planChecks(f, prof, p)
			}

			d := newDuplicator(f, specs, mode == ModeDupVal && p.Opt2)
			d.dupLoads = p.DupThroughLoads
			dupChecks, next := d.mirrorStateVars(svs, nextID)
			nextID = next
			stats.DupInstrs += d.cloned
			stats.DupChecks += dupChecks

			if mode == ModeDupVal {
				// Optimization 1 prunes shallow checks, but never the ones
				// Optimization 2 promised in lieu of duplication.
				if p.Opt1 {
					applyOpt1(specs, d.mustCheck)
				}
				// Deterministic insertion order: walk instructions in
				// block order so CheckIDs are stable across runs.
				var targets []*ir.Instr
				f.Instrs(func(in *ir.Instr) bool {
					if _, ok := specs[in]; ok {
						targets = append(targets, in)
					}
					return true
				})
				for _, in := range targets {
					chk := buildCheckInstr(m, in, specs[in], nextID)
					nextID++
					in.Blk.InsertAfterInstr(chk, in)
					stats.ValueChecks++
					stats.CheckedInstr++
				}
			}
		}

	default:
		return nil, fmt.Errorf("core: unknown mode %d", mode)
	}

	m.Renumber()
	if err := m.Verify(); err != nil {
		return nil, fmt.Errorf("core: %s produced invalid IR: %w", mode, err)
	}
	return stats, nil
}
