package core

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"repro/internal/ir"
	"repro/internal/profile"
)

// Scheme is a protection scheme: a named transformation that hardens a
// module against transient faults. Schemes are registered in a process-wide
// registry so every layer — campaigns, differential testing, figures, the
// CLIs — enumerates the same set without hardcoded mode lists, and new
// schemes become comparable everywhere the moment they are registered.
type Scheme interface {
	// Name is the canonical, machine-readable identifier ("dupval").
	// Names are lowercase and never contain '+' (reserved for composition).
	Name() string
	// Title is the human-readable label used in reports and figures
	// ("Dup + val chks").
	Title() string
	// NeedsProfile reports whether Apply requires value profiles.
	NeedsProfile() bool
	// Apply protects m in place and returns static statistics. Callers that
	// need the unprotected module afterwards must Clone first. prof may be
	// nil unless NeedsProfile. Apply leaves the module renumbered and
	// verifier-clean.
	Apply(m *ir.Module, prof *profile.Data, p Params) (*Stats, error)
}

// Canonical names of the four paper schemes (MICRO 2014 configurations).
const (
	SchemeOriginal = "original" // no protection
	SchemeDup      = "dup"      // state-variable duplication only
	SchemeDupVal   = "dupval"   // duplication + expected-value checks (+ Opt 1 & 2)
	SchemeFullDup  = "fulldup"  // SWIFT-style full duplication baseline
	SchemeABFT     = "abft"     // per-kernel checksum protection (post-paper)
)

var (
	regMu    sync.RWMutex
	registry []Scheme
	byName   = map[string]Scheme{}
)

// Register adds a scheme to the registry. It panics on a duplicate or
// malformed name — registration happens at init time, where a panic is a
// build error, not a runtime hazard.
func Register(s Scheme) {
	name := s.Name()
	if name == "" || strings.ContainsAny(name, "+ \t\n") || name != strings.ToLower(name) {
		panic(fmt.Sprintf("core: invalid scheme name %q", name))
	}
	regMu.Lock()
	defer regMu.Unlock()
	if _, dup := byName[name]; dup {
		panic(fmt.Sprintf("core: scheme %q already registered", name))
	}
	registry = append(registry, s)
	byName[name] = s
}

// Schemes returns every registered scheme in registration order (the four
// paper schemes first, in the paper's cost order, then extensions).
func Schemes() []Scheme {
	regMu.RLock()
	defer regMu.RUnlock()
	out := make([]Scheme, len(registry))
	copy(out, registry)
	return out
}

// SchemeNames returns the canonical names of all registered schemes in
// registration order.
func SchemeNames() []string {
	regMu.RLock()
	defer regMu.RUnlock()
	out := make([]string, len(registry))
	for i, s := range registry {
		out[i] = s.Name()
	}
	return out
}

// Lookup returns the registered scheme with the given canonical name.
func Lookup(name string) (Scheme, bool) {
	regMu.RLock()
	defer regMu.RUnlock()
	s, ok := byName[name]
	return s, ok
}

// MustScheme is Lookup for names known to be registered; it panics
// otherwise.
func MustScheme(name string) Scheme {
	s, ok := Lookup(name)
	if !ok {
		panic(fmt.Sprintf("core: scheme %q not registered", name))
	}
	return s
}

// ParseScheme resolves a scheme spec: a canonical name ("dupval"), or a
// '+'-separated composition of names ("abft+dupval"), which yields a
// composite applying each part in the listed order. Matching is
// case-insensitive.
func ParseScheme(spec string) (Scheme, error) {
	parts := strings.Split(strings.ToLower(strings.TrimSpace(spec)), "+")
	var parsed []Scheme
	for _, p := range parts {
		p = strings.TrimSpace(p)
		if p == "" {
			return nil, fmt.Errorf("core: empty scheme name in %q", spec)
		}
		s, ok := Lookup(p)
		if !ok {
			return nil, fmt.Errorf("core: unknown scheme %q (have %s)", p, strings.Join(SchemeNames(), ", "))
		}
		parsed = append(parsed, s)
	}
	if len(parsed) == 1 {
		return parsed[0], nil
	}
	return Compose(parsed...), nil
}

// Compose combines schemes into one that applies each part in order to the
// same module (e.g. ABFT checksums on the kernels plus value checks
// elsewhere). Check IDs stay module-unique across parts, so check
// bookkeeping (recovery, false-positive squelching) sees one flat ID space.
// Composites are values, not registry entries; register one explicitly to
// make it enumerable.
func Compose(parts ...Scheme) Scheme {
	names := make([]string, len(parts))
	titles := make([]string, len(parts))
	for i, s := range parts {
		names[i] = s.Name()
		titles[i] = s.Title()
	}
	return &composite{
		parts: parts,
		name:  strings.Join(names, "+"),
		title: strings.Join(titles, " + "),
	}
}

type composite struct {
	parts []Scheme
	name  string
	title string
}

func (c *composite) Name() string  { return c.name }
func (c *composite) Title() string { return c.title }

func (c *composite) NeedsProfile() bool {
	for _, s := range c.parts {
		if s.NeedsProfile() {
			return true
		}
	}
	return false
}

func (c *composite) Apply(m *ir.Module, prof *profile.Data, p Params) (*Stats, error) {
	total := m.NumInstrs()
	sum := &Stats{Scheme: c.name, TotalInstrs: total}
	for _, s := range c.parts {
		st, err := s.Apply(m, prof, p)
		if err != nil {
			return nil, fmt.Errorf("core: composite %s: %w", c.name, err)
		}
		sum.StateVars += st.StateVars
		sum.DupInstrs += st.DupInstrs
		sum.ValueChecks += st.ValueChecks
		sum.DupChecks += st.DupChecks
		sum.CheckedInstr += st.CheckedInstr
		sum.ABFTKernels += st.ABFTKernels
		sum.ABFTChecks += st.ABFTChecks
	}
	return sum, nil
}

// Apply resolves spec via ParseScheme and applies the scheme — the
// string-addressed entry point used by the public API and the CLIs.
func Apply(m *ir.Module, spec string, prof *profile.Data, p Params) (*Stats, error) {
	s, err := ParseScheme(spec)
	if err != nil {
		return nil, err
	}
	if s.NeedsProfile() && prof == nil {
		return nil, fmt.Errorf("core: %s requires value profiles", s.Name())
	}
	return s.Apply(m, prof, p)
}

// nextCheckID returns the smallest check ID above every check already in
// the module, so schemes applied in sequence never collide in the flat
// check-ID space (DisabledChecks and recovery key on it). A fresh module
// yields 1, matching the historical single-scheme numbering exactly.
func nextCheckID(m *ir.Module) int {
	max := 0
	for _, f := range m.Funcs {
		f.Instrs(func(in *ir.Instr) bool {
			if in.Op.IsCheck() && in.CheckID > max {
				max = in.CheckID
			}
			return true
		})
	}
	return max + 1
}

// finishTransform renumbers and verifies a module after a scheme transform;
// every scheme funnels through it so none can leave invalid IR behind.
func finishTransform(m *ir.Module, name string) error {
	m.Renumber()
	if err := m.Verify(); err != nil {
		return fmt.Errorf("core: %s produced invalid IR: %w", name, err)
	}
	return nil
}

// scheme is the common implementation of the built-in schemes: a name pair,
// a profile flag, and a transform. The transform mutates the module and
// fills stats; renumbering and verification are handled here.
type scheme struct {
	name, title string
	needsProf   bool
	transform   func(m *ir.Module, prof *profile.Data, p Params, st *Stats) error
}

func (s *scheme) Name() string       { return s.name }
func (s *scheme) Title() string      { return s.title }
func (s *scheme) NeedsProfile() bool { return s.needsProf }

func (s *scheme) Apply(m *ir.Module, prof *profile.Data, p Params) (*Stats, error) {
	if s.needsProf && prof == nil {
		return nil, fmt.Errorf("core: %s requires value profiles", s.name)
	}
	st := &Stats{Scheme: s.name, TotalInstrs: m.NumInstrs()}
	if err := s.transform(m, prof, p, st); err != nil {
		return nil, err
	}
	if err := finishTransform(m, s.name); err != nil {
		return nil, err
	}
	return st, nil
}

func init() {
	// Registration order is the paper's cost order; extensions follow.
	Register(&scheme{name: SchemeOriginal, title: "Original",
		transform: func(m *ir.Module, prof *profile.Data, p Params, st *Stats) error { return nil }})
	Register(&scheme{name: SchemeDup, title: "Dup only", transform: dupTransform(false)})
	Register(&scheme{name: SchemeDupVal, title: "Dup + val chks", needsProf: true,
		transform: dupTransform(true)})
	Register(&scheme{name: SchemeFullDup, title: "Full duplication", transform: fullDupTransform})
	Register(&scheme{name: SchemeABFT, title: "ABFT checksums", transform: abftTransform})
}

// Title resolves a scheme spec to its display title ("dupval" → "Dup + val
// chks", "abft+dupval" → "ABFT checksums + Dup + val chks"). Unknown specs
// are returned verbatim so callers can use it on free-form labels.
func Title(spec string) string {
	s, err := ParseScheme(spec)
	if err != nil {
		return spec
	}
	return s.Title()
}

// Titles returns registered scheme titles keyed by name (for listings).
func Titles() map[string]string {
	regMu.RLock()
	defer regMu.RUnlock()
	out := make(map[string]string, len(byName))
	for n, s := range byName {
		out[n] = s.Title()
	}
	return out
}

// SortedNames returns registered names sorted lexically (stable listing for
// error messages and docs).
func SortedNames() []string {
	names := SchemeNames()
	sort.Strings(names)
	return names
}
