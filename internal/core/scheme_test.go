package core

import (
	"strings"
	"testing"

	"repro/internal/ir"
	"repro/internal/profile"
	"repro/internal/vm"
)

func nopTransform(*ir.Module, *profile.Data, Params, *Stats) error { return nil }

func TestRegistryContainsPaperSchemesInCostOrder(t *testing.T) {
	names := SchemeNames()
	want := []string{SchemeOriginal, SchemeDup, SchemeDupVal, SchemeFullDup}
	if len(names) < len(want) {
		t.Fatalf("registry has %d schemes, want at least %d", len(names), len(want))
	}
	for i, w := range want {
		if names[i] != w {
			t.Errorf("registration order[%d] = %q, want %q", i, names[i], w)
		}
	}
	for _, n := range names {
		s, ok := Lookup(n)
		if !ok {
			t.Fatalf("SchemeNames lists %q but Lookup misses it", n)
		}
		if s.Name() != n {
			t.Errorf("scheme %q reports Name %q", n, s.Name())
		}
		if s.Title() == "" {
			t.Errorf("scheme %q has no title", n)
		}
	}
}

func TestRegisterRejectsMalformedAndDuplicateNames(t *testing.T) {
	for _, bad := range []string{"", "a+b", "has space", "UPPER"} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Register accepted invalid name %q", bad)
				}
			}()
			Register(&scheme{name: bad, title: "x", transform: nopTransform})
		}()
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("Register accepted a duplicate of an existing scheme")
			}
		}()
		Register(&scheme{name: SchemeDup, title: "x", transform: nopTransform})
	}()
}

func TestParseSchemeRoundTripAndComposition(t *testing.T) {
	for _, n := range SchemeNames() {
		s, err := ParseScheme(n)
		if err != nil {
			t.Fatalf("ParseScheme(%q): %v", n, err)
		}
		if s.Name() != n {
			t.Errorf("ParseScheme(%q).Name() = %q", n, s.Name())
		}
	}
	// Case-insensitive and whitespace-tolerant.
	if s, err := ParseScheme("  DupVal "); err != nil || s.Name() != SchemeDupVal {
		t.Errorf("ParseScheme(\"  DupVal \") = %v, %v", s, err)
	}
	// Composition round-trips and inherits the profile requirement.
	s, err := ParseScheme("abft+dupval")
	if err != nil {
		t.Fatal(err)
	}
	if s.Name() != "abft+dupval" {
		t.Errorf("composite name = %q", s.Name())
	}
	if !s.NeedsProfile() {
		t.Error("abft+dupval must need a profile (dupval does)")
	}
	if s2, err := ParseScheme(s.Name()); err != nil || s2.Name() != s.Name() {
		t.Errorf("composite did not round-trip: %v, %v", s2, err)
	}
	if got := Title("abft+dupval"); got != "ABFT checksums + Dup + val chks" {
		t.Errorf("composite title = %q", got)
	}
	// Unknown names fail with the available schemes listed.
	if _, err := ParseScheme("nope"); err == nil || !strings.Contains(err.Error(), SchemeDup) {
		t.Errorf("unknown scheme error should list registered names, got %v", err)
	}
	if _, err := ParseScheme("abft++dupval"); err == nil {
		t.Error("empty composition component accepted")
	}
}

// TestComposedSchemeCheckIDsUnique is the contract composition rests on:
// applying several schemes to one module must keep check IDs unique, because
// golden-run squelching and recovery key on them.
func TestComposedSchemeCheckIDsUnique(t *testing.T) {
	m := compile(t, abftSrc)
	prof := profileABFT(t, m)
	if _, err := Apply(m, "abft+dupval+fulldup", prof, DefaultParams()); err != nil {
		t.Fatal(err)
	}
	seen := map[int]bool{}
	for _, f := range m.Funcs {
		f.Instrs(func(in *ir.Instr) bool {
			if in.Op.IsCheck() {
				if seen[in.CheckID] {
					t.Errorf("duplicate check ID %d", in.CheckID)
				}
				seen[in.CheckID] = true
			}
			return true
		})
	}
	if len(seen) == 0 {
		t.Fatal("composed scheme inserted no checks")
	}
}

// abftSrc is a matrix-accumulation kernel: an outer loop nest storing
// arithmetic results, the shape ABFT checksums target.
const abftSrc = `
global int a[64];
global int b[64];
global int out[8];
void main() {
	int i = 0;
	while (i < 8) {
		int acc = 0;
		int j = 0;
		while (j < 8) {
			acc = acc + a[i*8+j] * b[j*8+i];
			j += 1;
		}
		out[i] = acc * 3 + 1;
		i += 1;
	}
}`

func profileABFT(t testing.TB, m *ir.Module) *profile.Data {
	t.Helper()
	mach, err := vm.New(m.Clone(), vm.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	a := make([]int64, 64)
	b := make([]int64, 64)
	for i := range a {
		a[i] = int64(i*7%13 - 5)
		b[i] = int64(i*11%17 - 8)
	}
	mach.BindInputInts("a", a)
	mach.BindInputInts("b", b)
	mach.Reset()
	col := profile.NewCollector(profile.DefaultBins)
	if res := mach.Run(vm.RunOptions{Profiler: col}); res.Trap != nil {
		t.Fatalf("profiling trap: %v", res.Trap)
	}
	return col.Data()
}

func TestABFTInstrumentsKernelsAndStaysSilentFaultFree(t *testing.T) {
	orig := compile(t, abftSrc)
	_, wantOut := runABFT(t, orig.Clone())

	prot := orig.Clone()
	st, err := Protect(prot, SchemeABFT, nil, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	if st.ABFTKernels == 0 || st.ABFTChecks == 0 {
		t.Fatalf("no kernels instrumented: %+v", st)
	}
	if st.DupInstrs == 0 {
		t.Fatal("ABFT inserted no shadow computation")
	}
	res, gotOut := runABFT(t, prot)
	if gotOut != wantOut {
		t.Fatalf("ABFT changed the output: %d != %d", gotOut, wantOut)
	}
	if res.CheckFails != 0 {
		t.Fatalf("ABFT checks fired fault-free: %d", res.CheckFails)
	}
	nChecks := 0
	for _, f := range prot.Funcs {
		f.Instrs(func(in *ir.Instr) bool {
			if in.Check == ir.CheckABFT {
				nChecks++
			}
			return true
		})
	}
	if nChecks != st.ABFTChecks {
		t.Errorf("stats report %d ABFT checks, module has %d", st.ABFTChecks, nChecks)
	}
}

func runABFT(t testing.TB, m *ir.Module) (*vm.Result, int64) {
	t.Helper()
	mach, err := vm.New(m, vm.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	a := make([]int64, 64)
	b := make([]int64, 64)
	for i := range a {
		a[i] = int64(i*7%13 - 5)
		b[i] = int64(i*11%17 - 8)
	}
	mach.BindInputInts("a", a)
	mach.BindInputInts("b", b)
	mach.Reset()
	res := mach.Run(vm.RunOptions{CountChecks: true})
	if res.Trap != nil {
		t.Fatalf("run trapped: %v", res.Trap)
	}
	out, _ := mach.ReadGlobalInts("out")
	return res, out[0]
}
