package core

import "repro/internal/ir"

// StateVar is a loop-carried variable: a phi node in a loop header with at
// least one incoming value defined inside the loop. Corruption of such a
// variable snowballs across iterations (paper §III), so its producer chain
// is duplicated.
type StateVar struct {
	Phi  *ir.Instr
	Loop *ir.Loop
	// Updates lists the in-loop incoming edges: the latch block and the
	// value that flows around the back edge.
	Updates []StateUpdate
}

// StateUpdate is one back-edge update of a state variable.
type StateUpdate struct {
	Pred  *ir.Block
	Value ir.Value
}

// FindStateVars identifies all state variables of f. The function's CFG
// must be current; the dominator tree and loops are computed internally.
func FindStateVars(f *ir.Func) []*StateVar {
	f.ComputeCFG()
	dt := ir.BuildDomTree(f)
	loops := ir.FindLoops(f, dt)
	var out []*StateVar
	for _, l := range loops {
		for _, phi := range l.Header.Phis() {
			sv := &StateVar{Phi: phi, Loop: l}
			for i, pred := range phi.Preds {
				if l.Contains(pred) {
					sv.Updates = append(sv.Updates, StateUpdate{Pred: pred, Value: phi.Args[i]})
				}
			}
			if len(sv.Updates) > 0 {
				out = append(out, sv)
			}
		}
	}
	return out
}
