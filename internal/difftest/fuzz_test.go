package difftest

import (
	"testing"

	"repro/internal/core"
	"repro/internal/ir"
	"repro/internal/lang"
	"repro/internal/passes"
	"repro/internal/profile"
	"repro/internal/vm"
)

// FuzzCompileAndRun pushes arbitrary source through the whole pipeline:
// parse, codegen, verify, normalize, verify again, protect with DupOnly,
// then execute both versions under a tight dynamic-instruction budget.
// Nothing past the parser may panic, the verifier must stay clean after
// every transform, and when both the original and the protected program
// finish fault-free their outputs must agree (duplication is semantically
// transparent).
func FuzzCompileAndRun(f *testing.F) {
	f.Add("global int in[8]; global int out[8];\nvoid main() { out[0] = in[0] + 1; }")
	f.Add("global int out[4];\nvoid main() { for (int i = 0; i < 9; i += 1) { out[i & 3] += i; } }")
	f.Add("global float fout[4];\nvoid main() { fout[0] = (1.5 * 2.0); }")
	f.Add(Generate(1, DefaultGenConfig()).Source())
	f.Add(Generate(3, DefaultGenConfig()).Source())
	f.Add(Generate(9, DefaultGenConfig()).Source())
	f.Fuzz(func(t *testing.T, src string) {
		if len(src) > 4096 {
			return
		}
		prog, err := lang.Parse(src)
		if err != nil {
			return
		}
		// Bound memory before codegen: fuzzed sources may declare huge
		// globals; the pipeline's correctness is independent of size.
		total := 0
		for _, g := range prog.Globals {
			if g.Size < 0 || g.Size > 1<<12 {
				return
			}
			total += g.Size
		}
		if total > 1<<14 {
			return
		}
		mod, err := lang.Codegen("fuzz", prog)
		if err != nil {
			return
		}
		mod.Renumber()
		if err := mod.Verify(); err != nil {
			t.Fatalf("verifier unclean after codegen: %v\n%s", err, src)
		}
		if err := passes.Normalize(mod); err != nil {
			t.Fatalf("verifier unclean after normalize: %v\n%s", err, src)
		}

		cfg := vm.DefaultConfig()
		cfg.MaxDyn = 200_000
		m1, err := vm.New(mod, cfg)
		if err != nil {
			return // e.g. no main — fine
		}
		m1.Reset()
		r1 := m1.Run(vm.RunOptions{})

		prot := mod.Clone()
		if _, err := core.Protect(prot, core.SchemeDup, nil, core.DefaultParams()); err != nil {
			t.Fatalf("protect failed on verified module: %v\n%s", err, src)
		}
		prot.Renumber()
		if err := prot.Verify(); err != nil {
			t.Fatalf("verifier unclean after protect: %v\n%s", err, src)
		}
		cfg.MaxDyn = 600_000 // duplication inflates the dynamic count
		m2, err := vm.New(prot, cfg)
		if err != nil {
			t.Fatalf("vm.New on protected module: %v\n%s", err, src)
		}
		m2.Reset()
		r2 := m2.Run(vm.RunOptions{})

		if r1.Trap == nil && r2.Trap == nil {
			for _, g := range prog.Globals {
				a, err1 := m1.ReadGlobal(g.Name)
				b, err2 := m2.ReadGlobal(g.Name)
				if err1 != nil || err2 != nil {
					continue
				}
				for i := range a {
					if a[i] != b[i] {
						t.Fatalf("DupOnly changed %s[%d]: %#x != %#x\n%s",
							g.Name, i, a[i], b[i], src)
					}
				}
			}
		}
	})
}

// FuzzLockstepDivergence hammers the lockstep peel protocol with arbitrary
// programs: a carrier peels lanes at every edge point — origin (trigger at
// dyn 0), dyn 1, the midpoint, and the last suspendable instruction of the
// run (a divergence on the final instruction of a bin) — and each peeled
// machine must finish bit-identically to a solo run. Trapping programs are
// first-class inputs: a lane peeled before the trapping instruction must
// re-trap with the identical Trap record, which exercises the carrier's
// suspend-before-execute ordering against division traps, watchdog
// exhaustion, and stack-depth traps.
func FuzzLockstepDivergence(f *testing.F) {
	// Peel at dyn 0 with a minimal body: the last suspendable point is the
	// final ret, so origin and last-instruction peels collapse onto a
	// two-instruction run.
	f.Add("global int out[2];\nvoid main() { out[0] = 1; }")
	// Divergence inside a trapping region: the reference run dies on the
	// divide, and every peel point before it must reproduce that trap.
	f.Add("global int in[4]; global int out[4];\nvoid main() { int d = in[0] - in[0]; out[0] = 7 / d; }")
	// Divergence on the last instruction of a long straight-line bin.
	f.Add("global int in[8]; global int out[8];\nvoid main() { int s = 0; for (int i = 0; i < 40; i += 1) { s += in[i & 7] + i; } out[0] = s; }")
	// Call-heavy shape: peeling must rebuild a multi-frame suspension chain.
	f.Add("global int in[4]; global int out[4];\nint add(int a, int b) { return a + b; }\nvoid main() { int s = 0; for (int i = 0; i < 12; i += 1) { s = add(s, in[i & 3]); } out[0] = s; }")
	f.Add(Generate(2, DefaultGenConfig()).Source())
	f.Add(Generate(5, DefaultGenConfig()).Source())
	f.Add(Generate(11, DefaultGenConfig()).Source())
	f.Fuzz(func(t *testing.T, src string) {
		if len(src) > 4096 {
			return
		}
		prog, err := lang.Parse(src)
		if err != nil {
			return
		}
		total := 0
		for _, g := range prog.Globals {
			if g.Size < 0 || g.Size > 1<<12 {
				return
			}
			total += g.Size
		}
		if total > 1<<14 {
			return
		}
		mod, err := lang.Codegen("fuzz", prog)
		if err != nil {
			return
		}
		mod.Renumber()
		if err := mod.Verify(); err != nil {
			return // FuzzCompileAndRun owns the verifier invariant
		}
		if err := passes.Normalize(mod); err != nil {
			return
		}
		ints, floats := InputsForSeed(7)
		if d := diffLockstepPeel(mod, ints, floats, 200_000); d != "" {
			t.Fatalf("lockstep divergence: %s\n%s", d, src)
		}
	})
}

// FuzzFusionDivergence hammers the fused dispatch path with arbitrary
// programs: the fast engine with superinstruction fusion must be
// bit-identical to the forced per-instruction path — completed runs, runs
// suspended inside fused spans (diffFuse cuts land mid-span), and trapping
// runs, where both paths must die on the same instruction with the same
// trap record. Each program is checked unprotected and under FullDup, whose
// duplicated producers and CmpCheck signatures exercise the
// shadow-computation patterns (add+cmpcheck, cmpcheck+jmp) that plain
// source cannot express.
func FuzzFusionDivergence(f *testing.F) {
	// Seeds declare the oracle's 64-word in/fin arrays: diffFuse binds both
	// unconditionally, and smaller (or missing) globals skip the cell.
	const hdr = "global int in[64]; global float fin[64]; global int out[64]; global float fout[64];\n"
	// Straight-line arithmetic chains: back-to-back add/mul spans.
	f.Add(hdr + "void main() { out[0] = in[0] * 3 + in[1] * 5 + in[2] + 7; }")
	// Array-indexing loop: mul+add address chains, add+load, add+store, the
	// cmp+br latch and the add+jmp(+phi) back edge.
	f.Add(hdr + "void main() { int s = 0; for (int i = 0; i < 24; i += 1) { s += in[i & 7] * i; out[i & 7] = s; } }")
	// Float kernel: addf/mulf pairs.
	f.Add(hdr + "void main() { float a = 0.0; for (int i = 0; i < 12; i += 1) { a = a * 1.5 + fin[i & 7]; } fout[0] = a; }")
	// Trap inside a fused span's tail: the divide sits right after fusable
	// loads, so the fused and unfused paths must agree on the trap point.
	f.Add(hdr + "void main() { int d = in[0] - in[0]; out[0] = (in[1] + 1) / d; }")
	// Watchdog exhaustion: MaxDyn lands inside a fused add+jmp span of the
	// spin loop, forcing the threshold fallback at the boundary.
	f.Add(hdr + "void main() { int s = 0; for (int i = 0; i != -1; i += 1) { s += i; } out[0] = s; }")
	f.Add(Generate(6, DefaultGenConfig()).Source())
	f.Add(Generate(12, DefaultGenConfig()).Source())
	f.Fuzz(func(t *testing.T, src string) {
		if len(src) > 4096 {
			return
		}
		prog, err := lang.Parse(src)
		if err != nil {
			return
		}
		total := 0
		for _, g := range prog.Globals {
			if g.Size < 0 || g.Size > 1<<12 {
				return
			}
			total += g.Size
		}
		if total > 1<<14 {
			return
		}
		mod, err := lang.Codegen("fuzz", prog)
		if err != nil {
			return
		}
		mod.Renumber()
		if err := mod.Verify(); err != nil {
			return // FuzzCompileAndRun owns the verifier invariant
		}
		if err := passes.Normalize(mod); err != nil {
			return
		}
		fdup := mod.Clone()
		if _, err := core.Protect(fdup, core.SchemeFullDup, nil, core.DefaultParams()); err != nil {
			return // FuzzSchemeEnumeration owns protection failures
		}
		ints, floats := InputsForSeed(7)
		for _, m := range []*ir.Module{mod, fdup} {
			ref := runModuleFuse(m, ints, floats, 200_000, vm.EngineFast, vm.FuseAuto)
			unfused := runModuleFuse(m, ints, floats, 200_000, vm.EngineFast, vm.FuseOff)
			if ref.trap != nil || unfused.trap != nil {
				ft, fok := ref.trap.(*vm.Trap)
				ut, uok := unfused.trap.(*vm.Trap)
				if fok != uok || (fok && *ft != *ut) {
					t.Fatalf("fusion trap divergence: fused=%v unfused=%v\n%s", ref.trap, unfused.trap, src)
				}
				// Both trapped identically, or both failed to bind the
				// oracle inputs (undersized globals) — nothing to compare.
				continue
			}
			if d := diffFuse(m, ints, floats, 200_000, ref); d != "" {
				t.Fatalf("fusion divergence: %s\n%s", d, src)
			}
		}
	})
}

// FuzzSchemeEnumeration pushes arbitrary source through every registered
// protection scheme plus a composition. For each scheme: the verifier must
// stay clean, the protected program must reproduce the unprotected outputs
// when both runs finish fault-free, and — with the oracle's full-coverage
// parameters and the profile taken on the same input — no check may fire.
// A scheme added to the registry is fuzzed here with no harness changes.
func FuzzSchemeEnumeration(f *testing.F) {
	f.Add("global int in[8]; global int out[8];\nvoid main() { out[0] = in[0] * 2 + 1; }")
	f.Add("global int in[8]; global int out[4];\nvoid main() { int s = 0; for (int i = 0; i < 16; i += 1) { s += in[i & 7] * i; } out[0] = s; }")
	f.Add(Generate(4, DefaultGenConfig()).Source())
	f.Add(Generate(8, DefaultGenConfig()).Source())
	schemes := append(core.SchemeNames(), "abft+dupval")
	f.Fuzz(func(t *testing.T, src string) {
		if len(src) > 4096 {
			return
		}
		prog, err := lang.Parse(src)
		if err != nil {
			return
		}
		total := 0
		for _, g := range prog.Globals {
			if g.Size < 0 || g.Size > 1<<12 {
				return
			}
			total += g.Size
		}
		if total > 1<<14 {
			return
		}
		mod, err := lang.Codegen("fuzz", prog)
		if err != nil {
			return
		}
		mod.Renumber()
		if err := mod.Verify(); err != nil {
			t.Fatalf("verifier unclean after codegen: %v\n%s", err, src)
		}
		if err := passes.Normalize(mod); err != nil {
			t.Fatalf("verifier unclean after normalize: %v\n%s", err, src)
		}

		cfg := vm.DefaultConfig()
		cfg.MaxDyn = 200_000
		ref, err := vm.New(mod, cfg)
		if err != nil {
			return // e.g. no main — fine
		}
		ref.Reset()
		r0 := ref.Run(vm.RunOptions{})
		if r0.Trap != nil {
			return // trapping programs are FuzzCompileAndRun's territory
		}

		// Full-coverage profile on the (only) input makes "no check fires"
		// a theorem for every scheme, composed or not.
		profMach, err := vm.New(mod.Clone(), cfg)
		if err != nil {
			t.Fatal(err)
		}
		profMach.Reset()
		col := profile.NewCollector(profile.DefaultBins)
		if res := profMach.Run(vm.RunOptions{Profiler: col}); res.Trap != nil {
			t.Fatalf("profiling run trapped where plain run completed: %v", res.Trap)
		}
		prof := col.Data()
		params := core.DefaultParams()
		params.MinRangeCoverage = 1.0
		params.MinValueCoverage = 1.0
		params.Opt2 = false

		for _, sch := range schemes {
			prot := mod.Clone()
			if _, err := core.Apply(prot, sch, prof, params); err != nil {
				t.Fatalf("scheme %s failed on verified module: %v\n%s", sch, err, src)
			}
			if err := prot.Verify(); err != nil {
				t.Fatalf("verifier unclean after %s: %v\n%s", sch, err, src)
			}
			pcfg := cfg
			pcfg.MaxDyn = 1_000_000 // duplication and checksums inflate dyn
			m2, err := vm.New(prot, pcfg)
			if err != nil {
				t.Fatalf("vm.New after %s: %v\n%s", sch, err, src)
			}
			m2.Reset()
			r2 := m2.Run(vm.RunOptions{CountChecks: true})
			if r2.Trap != nil {
				t.Fatalf("%s-protected run trapped where original completed: %v\n%s", sch, r2.Trap, src)
			}
			if r2.CheckFails != 0 {
				t.Fatalf("%s: %d checks fired fault-free on the profiled input\n%s", sch, r2.CheckFails, src)
			}
			for _, g := range prog.Globals {
				a, err1 := ref.ReadGlobal(g.Name)
				b, err2 := m2.ReadGlobal(g.Name)
				if err1 != nil || err2 != nil {
					continue
				}
				for i := range a {
					if a[i] != b[i] {
						t.Fatalf("%s changed %s[%d]: %#x != %#x\n%s",
							sch, g.Name, i, a[i], b[i], src)
					}
				}
			}
		}
	})
}

// FuzzFaultModelDivergence hammers the fault-model registry with arbitrary
// programs: every registered model's campaign — including the
// suspend-injected memory/burst models and the re-arming stuck-at pair —
// must produce bit-identical Reports across the scratch, checkpointed,
// lockstep and unfused scheduler paths. This is the model-diff oracle
// invariant on adversarial inputs: park/inject/resume chains that perturb
// any observable, re-arm schedules that interact with checkpoint binning,
// and trigger draws landing on edge instructions all surface here as
// cross-path diffs.
func FuzzFaultModelDivergence(f *testing.F) {
	// A minimal body: triggers collapse onto the first instructions, so
	// trigger-0 injection on a fresh machine must match a parked lane.
	f.Add("global int out[2];\nvoid main() { out[0] = 1; out[1] = 2; }")
	// Memory-heavy loop: the mem-flip/stuck-at address space is live and
	// repeatedly overwritten, exercising re-arm re-forcing.
	f.Add("global int in[8]; global int out[8];\nvoid main() { for (int i = 0; i < 30; i += 1) { out[i & 7] = out[(i + 1) & 7] + in[i & 7]; } }")
	// Float kernel: burst corruption of float registers takes the F64
	// rel-change attribution path.
	f.Add("global float fin[8]; global int out[2]; global float fout[8];\nvoid main() { float a = 0.0; for (int i = 0; i < 16; i += 1) { a = a * 0.5 + fin[i & 7]; } fout[0] = a; out[0] = 1; }")
	f.Add(Generate(3, DefaultGenConfig()).Source())
	f.Add(Generate(9, DefaultGenConfig()).Source())
	f.Fuzz(func(t *testing.T, src string) {
		if len(src) > 4096 {
			return
		}
		prog, err := lang.Parse(src)
		if err != nil {
			return
		}
		total := 0
		for _, g := range prog.Globals {
			if g.Size < 0 || g.Size > 1<<12 {
				return
			}
			total += g.Size
		}
		if total > 1<<14 {
			return
		}
		mod, err := lang.Codegen("fuzz", prog)
		if err != nil {
			return
		}
		mod.Renumber()
		if err := mod.Verify(); err != nil {
			return // FuzzCompileAndRun owns the verifier invariant
		}
		if err := passes.Normalize(mod); err != nil {
			return
		}
		ints, floats := InputsForSeed(7)
		// Campaigns need a fault-free golden run with room for triggers to
		// spread; trapping and trivial programs are other targets' territory.
		mach, err := lockstepMachine(mod, ints, floats, 200_000)
		if err != nil {
			return
		}
		res := mach.Run(vm.RunOptions{})
		if res.Trap != nil || res.Dyn < 4 {
			return
		}
		if d := diffFaultModels("fuzz", mod, ints, floats, nil); d != "" {
			t.Fatalf("fault-model divergence: %s\n%s", d, src)
		}
	})
}
