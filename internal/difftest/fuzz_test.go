package difftest

import (
	"testing"

	"repro/internal/core"
	"repro/internal/lang"
	"repro/internal/passes"
	"repro/internal/vm"
)

// FuzzCompileAndRun pushes arbitrary source through the whole pipeline:
// parse, codegen, verify, normalize, verify again, protect with DupOnly,
// then execute both versions under a tight dynamic-instruction budget.
// Nothing past the parser may panic, the verifier must stay clean after
// every transform, and when both the original and the protected program
// finish fault-free their outputs must agree (duplication is semantically
// transparent).
func FuzzCompileAndRun(f *testing.F) {
	f.Add("global int in[8]; global int out[8];\nvoid main() { out[0] = in[0] + 1; }")
	f.Add("global int out[4];\nvoid main() { for (int i = 0; i < 9; i += 1) { out[i & 3] += i; } }")
	f.Add("global float fout[4];\nvoid main() { fout[0] = (1.5 * 2.0); }")
	f.Add(Generate(1, DefaultGenConfig()).Source())
	f.Add(Generate(3, DefaultGenConfig()).Source())
	f.Add(Generate(9, DefaultGenConfig()).Source())
	f.Fuzz(func(t *testing.T, src string) {
		if len(src) > 4096 {
			return
		}
		prog, err := lang.Parse(src)
		if err != nil {
			return
		}
		// Bound memory before codegen: fuzzed sources may declare huge
		// globals; the pipeline's correctness is independent of size.
		total := 0
		for _, g := range prog.Globals {
			if g.Size < 0 || g.Size > 1<<12 {
				return
			}
			total += g.Size
		}
		if total > 1<<14 {
			return
		}
		mod, err := lang.Codegen("fuzz", prog)
		if err != nil {
			return
		}
		mod.Renumber()
		if err := mod.Verify(); err != nil {
			t.Fatalf("verifier unclean after codegen: %v\n%s", err, src)
		}
		if err := passes.Normalize(mod); err != nil {
			t.Fatalf("verifier unclean after normalize: %v\n%s", err, src)
		}

		cfg := vm.DefaultConfig()
		cfg.MaxDyn = 200_000
		m1, err := vm.New(mod, cfg)
		if err != nil {
			return // e.g. no main — fine
		}
		m1.Reset()
		r1 := m1.Run(vm.RunOptions{})

		prot := mod.Clone()
		if _, err := core.Protect(prot, core.ModeDupOnly, nil, core.DefaultParams()); err != nil {
			t.Fatalf("protect failed on verified module: %v\n%s", err, src)
		}
		prot.Renumber()
		if err := prot.Verify(); err != nil {
			t.Fatalf("verifier unclean after protect: %v\n%s", err, src)
		}
		cfg.MaxDyn = 600_000 // duplication inflates the dynamic count
		m2, err := vm.New(prot, cfg)
		if err != nil {
			t.Fatalf("vm.New on protected module: %v\n%s", err, src)
		}
		m2.Reset()
		r2 := m2.Run(vm.RunOptions{})

		if r1.Trap == nil && r2.Trap == nil {
			for _, g := range prog.Globals {
				a, err1 := m1.ReadGlobal(g.Name)
				b, err2 := m2.ReadGlobal(g.Name)
				if err1 != nil || err2 != nil {
					continue
				}
				for i := range a {
					if a[i] != b[i] {
						t.Fatalf("DupOnly changed %s[%d]: %#x != %#x\n%s",
							g.Name, i, a[i], b[i], src)
					}
				}
			}
		}
	})
}
