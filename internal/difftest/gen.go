// Package difftest is a generative differential-testing harness for the
// whole compile→protect→execute pipeline. A seeded, grammar-based generator
// produces random, always-terminating programs in the workload language;
// a differential oracle compiles each one under several pass pipelines,
// applies every protection mode, and asserts four invariants:
//
//  1. fault-free outputs are identical across all pipeline × mode combos,
//  2. the IR verifier is clean after every transform,
//  3. no software check fires when a program is profiled and run on the
//     same input (with full-coverage check planning),
//  4. timing-model cost obeys the provable orderings Original ≤ DupOnly,
//     DupOnly ≤ Dup+ValChks and DupOnly ≤ FullDup (value checks planned
//     without Optimization 2, which trades duplication for checks and
//     legitimately breaks the ordering). Dup+ValChks vs FullDup is NOT
//     asserted — the harness found counterexamples; see EXPERIMENTS.md.
//
// Failing programs are shrunk by greedy statement deletion and saved as
// reproducers that the package's tests replay forever after.
package difftest

import (
	"bytes"
	"fmt"
	"math/rand"
)

// GenConfig bounds the generator. The zero value is unusable; start from
// DefaultGenConfig.
type GenConfig struct {
	MaxStmts     int // statement budget for main
	MaxHelpers   int // extra callable functions
	MaxExprDepth int
	MaxLoopNest  int
	MaxTotalIter int // bound on the product of nested loop trip counts
}

// DefaultGenConfig returns the bounds used by cmd/difftest and the tests.
func DefaultGenConfig() GenConfig {
	return GenConfig{
		MaxStmts:     18,
		MaxHelpers:   2,
		MaxExprDepth: 3,
		MaxLoopNest:  2,
		MaxTotalIter: 1200,
	}
}

// ArraySize is the length of the four fixed I/O globals (in, fin, out,
// fout). Power of two so generated indexes can be masked in range.
const ArraySize = 64

// GenStmt is one statement of a generated program: either a leaf line or a
// compound statement (loop / if) with a body. The tree shape exists so the
// shrinker can delete statements and re-emit source.
type GenStmt struct {
	Line string     // leaf text, e.g. "x3 += (in[(i0) & 63] * 5);"
	Head string     // compound opener, e.g. "for (int i0 = 0; ...) {"
	Body []*GenStmt // compound body (Head != "")
	Else []*GenStmt // else-branch body (if statements only)
	Keep bool       // structurally required (loop decrements); never deleted
}

// GenFunc is a generated function.
type GenFunc struct {
	Decl string // e.g. "int helper1(int a0, float a1)"
	Body []*GenStmt
	Ret  string // trailing return statement text ("" for void main)
}

// GenProgram is a generated program plus the inputs it runs on. Inputs are
// a pure function of Seed, so a reproducer file only needs to record the
// seed alongside the (possibly shrunk) source text.
type GenProgram struct {
	Seed    int64
	Helpers []*GenFunc
	Main    *GenFunc
}

// Source emits the program as workload-language source. The first line is
// a comment carrying the seed so reproducer files are self-describing.
func (p *GenProgram) Source() string {
	var b bytes.Buffer
	fmt.Fprintf(&b, "// difftest seed=%d\n", p.Seed)
	fmt.Fprintf(&b, "global int in[%d];\n", ArraySize)
	fmt.Fprintf(&b, "global float fin[%d];\n", ArraySize)
	fmt.Fprintf(&b, "global int out[%d];\n", ArraySize)
	fmt.Fprintf(&b, "global float fout[%d];\n", ArraySize)
	for _, h := range p.Helpers {
		emitFunc(&b, h)
	}
	emitFunc(&b, p.Main)
	return b.String()
}

func emitFunc(b *bytes.Buffer, f *GenFunc) {
	fmt.Fprintf(b, "%s {\n", f.Decl)
	emitStmts(b, f.Body, "\t")
	if f.Ret != "" {
		fmt.Fprintf(b, "\t%s\n", f.Ret)
	}
	b.WriteString("}\n")
}

func emitStmts(b *bytes.Buffer, stmts []*GenStmt, ind string) {
	for _, s := range stmts {
		if s.Head == "" {
			fmt.Fprintf(b, "%s%s\n", ind, s.Line)
			continue
		}
		fmt.Fprintf(b, "%s%s\n", ind, s.Head)
		emitStmts(b, s.Body, ind+"\t")
		if s.Else != nil {
			fmt.Fprintf(b, "%s} else {\n", ind)
			emitStmts(b, s.Else, ind+"\t")
		}
		fmt.Fprintf(b, "%s}\n", ind)
	}
}

// InputsForSeed derives the integer and float input arrays bound to the
// "in"/"fin" globals. Pure function of the seed — shrinking rewrites the
// program but never the inputs. The mix deliberately includes integers
// beyond 2^53 (not exactly representable as float64) and large floats, to
// stress the profile → check-planning path.
func InputsForSeed(seed int64) ([]int64, []float64) {
	rng := rand.New(rand.NewSource(seed ^ 0x5deece66d))
	ints := make([]int64, ArraySize)
	floats := make([]float64, ArraySize)
	for i := range ints {
		switch rng.Intn(10) {
		case 0, 1, 2, 3:
			ints[i] = int64(rng.Intn(10))
		case 4, 5, 6:
			ints[i] = int64(rng.Intn(256))
		case 7:
			ints[i] = -int64(rng.Intn(1 << 20))
		case 8:
			ints[i] = int64(rng.Intn(1 << 30))
		default:
			ints[i] = (int64(1) << 62) | int64(rng.Intn(1<<16))<<1 | 1
		}
	}
	for i := range floats {
		switch rng.Intn(8) {
		case 0, 1, 2:
			floats[i] = float64(rng.Intn(16))
		case 3, 4:
			floats[i] = rng.Float64()*8 - 4
		case 5:
			floats[i] = rng.Float64() * 1e6
		case 6:
			floats[i] = -rng.Float64() * 1e3
		default:
			floats[i] = rng.Float64() * 0.001
		}
	}
	return ints, floats
}

// gen carries generation state.
type gen struct {
	rng *rand.Rand
	cfg GenConfig

	nextVar    int
	helpers    []*GenFunc // helpers callable from main, with param metadata
	helperSigs []helperSig

	// Current scope (main and helpers are generated independently).
	// ints are assignable; ctrs are loop counters — readable in expressions
	// but never assignment targets, which is what keeps every loop bounded.
	ints    []string
	ctrs    []string
	floats  []string
	intArrs []arrRef
	fltArrs []arrRef

	loopNest int
	iterMult int
	inHelper bool
}

type arrRef struct {
	name string
	mask int // size-1; sizes are powers of two
}

type helperSig struct {
	name   string
	ret    byte // 'i' or 'f'
	params []byte
}

// Generate builds a random program for the seed.
func Generate(seed int64, cfg GenConfig) *GenProgram {
	g := &gen{rng: rand.New(rand.NewSource(seed)), cfg: cfg, iterMult: 1}
	p := &GenProgram{Seed: seed}

	nh := g.rng.Intn(cfg.MaxHelpers + 1)
	for i := 0; i < nh; i++ {
		p.Helpers = append(p.Helpers, g.genHelper(i))
	}
	p.Main = g.genMain()
	return p
}

func (g *gen) fresh(prefix string) string {
	g.nextVar++
	return fmt.Sprintf("%s%d", prefix, g.nextVar)
}

// scopeMark snapshots the visible-name lists so compound statements can
// restore them: the language is block-scoped, and names declared inside a
// loop or branch must not be referenced after it closes.
type scopeMark struct{ ni, nc, nf, nia, nfa int }

func (g *gen) markScope() scopeMark {
	return scopeMark{len(g.ints), len(g.ctrs), len(g.floats), len(g.intArrs), len(g.fltArrs)}
}

func (g *gen) popScope(m scopeMark) {
	g.ints = g.ints[:m.ni]
	g.ctrs = g.ctrs[:m.nc]
	g.floats = g.floats[:m.nf]
	g.intArrs = g.intArrs[:m.nia]
	g.fltArrs = g.fltArrs[:m.nfa]
}

func (g *gen) resetScope() {
	g.ints = nil
	g.ctrs = nil
	g.floats = nil
	g.intArrs = []arrRef{{"in", ArraySize - 1}, {"out", ArraySize - 1}}
	g.fltArrs = []arrRef{{"fin", ArraySize - 1}, {"fout", ArraySize - 1}}
	g.loopNest = 0
	g.iterMult = 1
}

// genHelper builds one straight-line-ish helper function.
func (g *gen) genHelper(idx int) *GenFunc {
	g.resetScope()
	g.inHelper = true
	defer func() { g.inHelper = false }()

	name := fmt.Sprintf("helper%d", idx+1)
	ret := byte('i')
	if g.rng.Intn(2) == 0 {
		ret = 'f'
	}
	np := 1 + g.rng.Intn(3)
	sig := helperSig{name: name, ret: ret}
	decl := ""
	for i := 0; i < np; i++ {
		pt := byte('i')
		if g.rng.Intn(3) == 0 {
			pt = 'f'
		}
		pn := fmt.Sprintf("a%d", i)
		if pt == 'i' {
			decl += fmt.Sprintf("int %s, ", pn)
			g.ints = append(g.ints, pn)
		} else {
			decl += fmt.Sprintf("float %s, ", pn)
			g.floats = append(g.floats, pn)
		}
		sig.params = append(sig.params, pt)
	}
	decl = decl[:len(decl)-2]

	f := &GenFunc{}
	if ret == 'i' {
		f.Decl = fmt.Sprintf("int %s(%s)", name, decl)
	} else {
		f.Decl = fmt.Sprintf("float %s(%s)", name, decl)
	}
	n := 1 + g.rng.Intn(4)
	for i := 0; i < n; i++ {
		f.Body = append(f.Body, g.genStmt(false))
	}
	if ret == 'i' {
		f.Ret = fmt.Sprintf("return %s;", g.intExpr(g.cfg.MaxExprDepth))
	} else {
		f.Ret = fmt.Sprintf("return %s;", g.floatExpr(g.cfg.MaxExprDepth))
	}
	g.helperSigs = append(g.helperSigs, sig)
	return f
}

func (g *gen) genMain() *GenFunc {
	g.resetScope()
	f := &GenFunc{Decl: "void main()"}
	n := 4 + g.rng.Intn(g.cfg.MaxStmts-3)
	for i := 0; i < n; i++ {
		f.Body = append(f.Body, g.genStmt(true))
	}
	// Always end with observable writes so DCE has something to keep.
	f.Body = append(f.Body,
		&GenStmt{Line: fmt.Sprintf("out[0] = %s;", g.intExpr(2))},
		&GenStmt{Line: fmt.Sprintf("fout[0] = %s;", g.floatExpr(2))},
	)
	return f
}

// genStmt produces one statement, possibly compound. loops controls whether
// loop statements may be generated (helpers stay cheap).
func (g *gen) genStmt(loops bool) *GenStmt {
	d := g.cfg.MaxExprDepth
	for {
		switch g.rng.Intn(12) {
		case 0: // int decl
			v := g.fresh("x")
			s := &GenStmt{Line: fmt.Sprintf("int %s = %s;", v, g.intExpr(d))}
			g.ints = append(g.ints, v)
			return s
		case 1: // float decl
			v := g.fresh("f")
			s := &GenStmt{Line: fmt.Sprintf("float %s = %s;", v, g.floatExpr(d))}
			g.floats = append(g.floats, v)
			return s
		case 2: // compound assign to an int var
			if len(g.ints) == 0 {
				continue
			}
			v := g.ints[g.rng.Intn(len(g.ints))]
			ops := []string{"+=", "-=", "*=", "&=", "|=", "^="}
			return &GenStmt{Line: fmt.Sprintf("%s %s %s;", v, ops[g.rng.Intn(len(ops))], g.intExpr(d-1))}
		case 3: // accumulator update — the classic loop-carried state shape
			if len(g.ints) == 0 {
				continue
			}
			v := g.ints[g.rng.Intn(len(g.ints))]
			return &GenStmt{Line: fmt.Sprintf("%s = (%s * %d + %s) %% %d;",
				v, v, 2+g.rng.Intn(5), g.intExpr(d-1), 1<<(8+g.rng.Intn(8)))}
		case 4: // float assign
			if len(g.floats) == 0 {
				continue
			}
			v := g.floats[g.rng.Intn(len(g.floats))]
			if g.rng.Intn(2) == 0 {
				return &GenStmt{Line: fmt.Sprintf("%s = (%s * 0.5 + %s);", v, v, g.floatExpr(d-1))}
			}
			return &GenStmt{Line: fmt.Sprintf("%s = %s;", v, g.floatExpr(d))}
		case 5: // int array store
			a := g.intArrs[g.rng.Intn(len(g.intArrs))]
			if a.name == "in" { // keep inputs read-only for clarity
				a = arrRef{"out", ArraySize - 1}
			}
			return &GenStmt{Line: fmt.Sprintf("%s[(%s) & %d] = %s;", a.name, g.intExpr(d-1), a.mask, g.intExpr(d))}
		case 6: // float array store
			a := g.fltArrs[g.rng.Intn(len(g.fltArrs))]
			if a.name == "fin" {
				a = arrRef{"fout", ArraySize - 1}
			}
			return &GenStmt{Line: fmt.Sprintf("%s[(%s) & %d] = %s;", a.name, g.intExpr(d-1), a.mask, g.floatExpr(d))}
		case 7: // local array decl (exercises alloca / mem2reg differences)
			if g.inHelper || g.loopNest > 0 {
				continue
			}
			v := g.fresh("t")
			size := 8
			s := &GenStmt{Line: fmt.Sprintf("int %s[%d];", v, size)}
			g.intArrs = append(g.intArrs, arrRef{v, size - 1})
			return s
		case 8: // if / if-else
			s := &GenStmt{Head: fmt.Sprintf("if (%s) {", g.condExpr())}
			mark := g.markScope()
			nb := 1 + g.rng.Intn(3)
			for i := 0; i < nb; i++ {
				s.Body = append(s.Body, g.genStmt(false))
			}
			g.popScope(mark)
			if g.rng.Intn(2) == 0 {
				ne := 1 + g.rng.Intn(2)
				s.Else = []*GenStmt{}
				for i := 0; i < ne; i++ {
					s.Else = append(s.Else, g.genStmt(false))
				}
				g.popScope(mark)
			}
			return s
		case 9, 10: // for loop with loop-carried accumulator
			if !loops || g.loopNest >= g.cfg.MaxLoopNest {
				continue
			}
			bound := 2 + g.rng.Intn(40)
			if g.iterMult*bound > g.cfg.MaxTotalIter {
				bound = 2
			}
			if g.iterMult*bound > g.cfg.MaxTotalIter {
				continue
			}
			i := g.fresh("i")
			s := &GenStmt{Head: fmt.Sprintf("for (int %s = 0; %s < %d; %s += 1) {", i, i, bound, i)}
			mark := g.markScope()
			g.ctrs = append(g.ctrs, i)
			g.loopNest++
			g.iterMult *= bound
			nb := 1 + g.rng.Intn(4)
			for k := 0; k < nb; k++ {
				s.Body = append(s.Body, g.genStmt(true))
			}
			if g.rng.Intn(3) == 0 { // guarded break/continue
				kw := "break"
				if g.rng.Intn(2) == 0 {
					kw = "continue"
				}
				s.Body = append(s.Body, &GenStmt{
					Head: fmt.Sprintf("if (%s) {", g.condExpr()),
					Body: []*GenStmt{{Line: kw + ";"}},
				})
			}
			g.iterMult /= bound
			g.loopNest--
			g.popScope(mark) // counter and body-local declarations die here
			return s
		default: // while loop with explicit down-counter
			if !loops || g.loopNest >= g.cfg.MaxLoopNest {
				continue
			}
			bound := 2 + g.rng.Intn(20)
			if g.iterMult*bound > g.cfg.MaxTotalIter {
				continue
			}
			w := g.fresh("w")
			decl := &GenStmt{Line: fmt.Sprintf("int %s = %d;", w, bound), Keep: true}
			s := &GenStmt{Head: fmt.Sprintf("while (%s > 0) {", w)}
			s.Body = append(s.Body, &GenStmt{Line: fmt.Sprintf("%s -= 1;", w), Keep: true})
			mark := g.markScope()
			g.ctrs = append(g.ctrs, w)
			g.loopNest++
			g.iterMult *= bound
			nb := 1 + g.rng.Intn(3)
			for k := 0; k < nb; k++ {
				s.Body = append(s.Body, g.genStmt(true))
			}
			g.iterMult /= bound
			g.loopNest--
			g.popScope(mark)
			// Wrap decl+loop in a synthetic compound so they travel (and
			// shrink) together: deleting the pair is fine, splitting is not.
			return &GenStmt{Head: "{", Body: []*GenStmt{decl, s}}
		}
	}
}

// condExpr yields an int-typed condition.
func (g *gen) condExpr() string {
	cmp := []string{"<", "<=", ">", ">=", "==", "!="}
	op := cmp[g.rng.Intn(len(cmp))]
	if g.rng.Intn(4) == 0 && len(g.floats) > 0 {
		return fmt.Sprintf("(%s %s %s)", g.floatExpr(1), op, g.floatExpr(1))
	}
	return fmt.Sprintf("(%s %s %s)", g.intExpr(1), op, g.intExpr(1))
}

// intExpr yields an int-typed expression of bounded depth. Division and
// remainder force a nonzero divisor; shift counts are masked small.
func (g *gen) intExpr(d int) string {
	if d <= 0 {
		return g.intLeaf()
	}
	switch g.rng.Intn(10) {
	case 0, 1:
		return g.intLeaf()
	case 2:
		ops := []string{"-", "~"}
		return fmt.Sprintf("(%s%s)", ops[g.rng.Intn(len(ops))], g.intExpr(d-1))
	case 3, 4, 5:
		ops := []string{"+", "-", "*", "&", "|", "^"}
		return fmt.Sprintf("(%s %s %s)", g.intExpr(d-1), ops[g.rng.Intn(len(ops))], g.intExpr(d-1))
	case 6:
		if g.rng.Intn(2) == 0 {
			return fmt.Sprintf("(%s / (%s | 1))", g.intExpr(d-1), g.intExpr(d-1))
		}
		return fmt.Sprintf("(%s %% (%s | 1))", g.intExpr(d-1), g.intExpr(d-1))
	case 7:
		ops := []string{"<<", ">>"}
		return fmt.Sprintf("(%s %s (%s & 31))", g.intExpr(d-1), ops[g.rng.Intn(2)], g.intExpr(d-1))
	case 8:
		switch g.rng.Intn(4) {
		case 0:
			return fmt.Sprintf("iabs(%s)", g.intExpr(d-1))
		case 1:
			return fmt.Sprintf("imin(%s, %s)", g.intExpr(d-1), g.intExpr(d-1))
		case 2:
			return fmt.Sprintf("imax(%s, %s)", g.intExpr(d-1), g.intExpr(d-1))
		default:
			return fmt.Sprintf("clampi(%s, %d, %d)", g.intExpr(d-1), -256+g.rng.Intn(256), 256+g.rng.Intn(1024))
		}
	default:
		if g.rng.Intn(3) == 0 {
			return fmt.Sprintf("f2i(%s)", g.floatExpr(d-1))
		}
		if call := g.helperCall('i', d); call != "" {
			return call
		}
		return g.intLeaf()
	}
}

func (g *gen) intLeaf() string {
	switch g.rng.Intn(6) {
	case 0:
		return fmt.Sprintf("%d", g.rng.Intn(10))
	case 1:
		return fmt.Sprintf("%d", g.rng.Intn(1<<12))
	case 2:
		return fmt.Sprintf("(-%d)", g.rng.Intn(1<<8))
	case 3, 4:
		if v := g.anyInt(); v != "" {
			return v
		}
		fallthrough
	default:
		a := g.intArrs[g.rng.Intn(len(g.intArrs))]
		return fmt.Sprintf("%s[(%s) & %d]", a.name, g.indexExpr(), a.mask)
	}
}

// anyInt picks a readable int name — assignable variables and loop
// counters alike ("" if none in scope).
func (g *gen) anyInt() string {
	n := len(g.ints) + len(g.ctrs)
	if n == 0 {
		return ""
	}
	k := g.rng.Intn(n)
	if k < len(g.ints) {
		return g.ints[k]
	}
	return g.ctrs[k-len(g.ints)]
}

// indexExpr is a cheap int expression used inside array subscripts.
func (g *gen) indexExpr() string {
	if v := g.anyInt(); v != "" && g.rng.Intn(3) != 0 {
		if g.rng.Intn(2) == 0 {
			return fmt.Sprintf("%s + %d", v, g.rng.Intn(16))
		}
		return v
	}
	return fmt.Sprintf("%d", g.rng.Intn(ArraySize))
}

// floatExpr yields a float-typed expression of bounded depth. Generated
// float math may overflow to ±Inf or produce NaN downstream — the VM and
// the (fixed) profiler both handle non-finite values, and the differential
// oracle compares raw bits, so that is deliberate, not a hazard.
func (g *gen) floatExpr(d int) string {
	if d <= 0 {
		return g.floatLeaf()
	}
	switch g.rng.Intn(8) {
	case 0, 1:
		return g.floatLeaf()
	case 2:
		return fmt.Sprintf("(-%s)", g.floatExpr(d-1))
	case 3, 4:
		ops := []string{"+", "-", "*", "/"}
		return fmt.Sprintf("(%s %s %s)", g.floatExpr(d-1), ops[g.rng.Intn(len(ops))], g.floatExpr(d-1))
	case 5:
		switch g.rng.Intn(5) {
		case 0:
			return fmt.Sprintf("sqrt(fabs(%s))", g.floatExpr(d-1))
		case 1:
			return fmt.Sprintf("fabs(%s)", g.floatExpr(d-1))
		case 2:
			return fmt.Sprintf("fmin(%s, %s)", g.floatExpr(d-1), g.floatExpr(d-1))
		case 3:
			return fmt.Sprintf("fmax(%s, %s)", g.floatExpr(d-1), g.floatExpr(d-1))
		default:
			return fmt.Sprintf("floor(%s)", g.floatExpr(d-1))
		}
	case 6:
		return fmt.Sprintf("i2f(%s)", g.intExpr(d-1))
	default:
		if call := g.helperCall('f', d); call != "" {
			return call
		}
		return g.floatLeaf()
	}
}

func (g *gen) floatLeaf() string {
	switch g.rng.Intn(6) {
	case 0:
		return fmt.Sprintf("%d.%d", g.rng.Intn(100), g.rng.Intn(100))
	case 1:
		return "0.5"
	case 2:
		return fmt.Sprintf("(-%d.%d)", g.rng.Intn(10), g.rng.Intn(100))
	case 3, 4:
		if len(g.floats) > 0 {
			return g.floats[g.rng.Intn(len(g.floats))]
		}
		fallthrough
	default:
		a := g.fltArrs[g.rng.Intn(len(g.fltArrs))]
		return fmt.Sprintf("%s[(%s) & %d]", a.name, g.indexExpr(), a.mask)
	}
}

// helperCall builds a call to a previously generated helper with the wanted
// return type, or "" if none exists (or we are inside a helper — helpers
// never call each other, so there is no recursion).
func (g *gen) helperCall(ret byte, d int) string {
	if g.inHelper {
		return ""
	}
	var cands []helperSig
	for _, h := range g.helperSigs {
		if h.ret == ret {
			cands = append(cands, h)
		}
	}
	if len(cands) == 0 {
		return ""
	}
	h := cands[g.rng.Intn(len(cands))]
	args := ""
	for i, pt := range h.params {
		if i > 0 {
			args += ", "
		}
		if pt == 'i' {
			args += g.intExpr(d - 1)
		} else {
			args += g.floatExpr(d - 1)
		}
	}
	return fmt.Sprintf("%s(%s)", h.name, args)
}
