package difftest

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/lang"
)

// TestGenerateDeterministic: the same seed must reproduce byte-identical
// source and inputs — reproducer files record only the seed.
func TestGenerateDeterministic(t *testing.T) {
	for seed := int64(1); seed < 20; seed++ {
		a := Generate(seed, DefaultGenConfig()).Source()
		b := Generate(seed, DefaultGenConfig()).Source()
		if a != b {
			t.Fatalf("seed %d: non-deterministic generation", seed)
		}
		i1, f1 := InputsForSeed(seed)
		i2, f2 := InputsForSeed(seed)
		for k := range i1 {
			if i1[k] != i2[k] || f1[k] != f2[k] {
				t.Fatalf("seed %d: non-deterministic inputs", seed)
			}
		}
	}
}

// TestGeneratedProgramsCompile: every generated program must be accepted by
// the frontend — a parse or codegen error is a generator bug.
func TestGeneratedProgramsCompile(t *testing.T) {
	n := int64(300)
	if testing.Short() {
		n = 50
	}
	for seed := int64(1); seed <= n; seed++ {
		p := Generate(seed, DefaultGenConfig())
		src := p.Source()
		if _, err := lang.Compile("gen", src); err != nil {
			t.Fatalf("seed %d does not compile: %v\n%s", seed, err, src)
		}
		if !strings.Contains(src, "void main()") {
			t.Fatalf("seed %d: no main:\n%s", seed, src)
		}
	}
}

// TestEveryRegisteredSchemePassesOracle is the registry's property test:
// each registered scheme — plus one composition — must individually uphold
// the oracle invariants (output equality, no fault-free check fires,
// verifier-clean IR) on generated programs. A scheme added to the registry
// is picked up here with no test changes.
func TestEveryRegisteredSchemePassesOracle(t *testing.T) {
	seeds := int64(12)
	if testing.Short() {
		seeds = 4
	}
	schemes := append(core.SchemeNames(), "abft+dupval")
	for _, sch := range schemes {
		sch := sch
		t.Run(sch, func(t *testing.T) {
			t.Parallel()
			ocfg := DefaultOracleConfig()
			ocfg.Only = []string{sch}
			for seed := int64(1); seed <= seeds; seed++ {
				if _, fail := Check(seed, DefaultGenConfig(), ocfg); fail != nil {
					p := Generate(seed, DefaultGenConfig())
					t.Fatalf("seed %d: %v\n%s", seed, fail, p.Source())
				}
			}
		})
	}
}

// TestOracleSmoke runs the full differential oracle over a batch of seeds.
func TestOracleSmoke(t *testing.T) {
	n := int64(60)
	if testing.Short() {
		n = 10
	}
	for seed := int64(1); seed <= n; seed++ {
		if _, fail := Check(seed, DefaultGenConfig(), DefaultOracleConfig()); fail != nil {
			p := Generate(seed, DefaultGenConfig())
			t.Fatalf("seed %d: %v\n%s", seed, fail, p.Source())
		}
	}
}
