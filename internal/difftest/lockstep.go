package difftest

// Lockstep-equivalence invariant. The lockstep batch executor promises that
// a trial peeled from a carrier at divergence point D is bit-identical to a
// run that reached D on its own. The oracle probes this per generated
// program at two levels:
//
//   - vm level (diffLockstepPeel): a carrier peels lanes at edge points —
//     origin, dyn 1, midpoint, and the last suspendable instruction — and
//     each peeled machine must finish (or re-trap) exactly like the
//     uninterrupted reference, on every observable including OpCounts and
//     all globals. Trapping programs are probed too: the suspension check
//     precedes execution, so every point up to Trap.Dyn-1 must suspend and
//     the peeled suffix must reproduce the identical trap.
//   - campaign level (diffLockstepCampaign): a small fault campaign with
//     lockstep forced on versus off must produce identical Reports, the
//     same property the fault package's equivalence matrix pins on real
//     workloads, here exercised on adversarial generated programs.
//
// Combined with the engine-diff invariant (fast vs tree interpreter), this
// transitively checks lockstep against the scalar reference engine.

import (
	"fmt"

	"repro/internal/fault"
	"repro/internal/ir"
	"repro/internal/vm"
)

// lockstepTrials sizes the campaign-level probe: enough trials to populate
// more than one checkpoint bin, few enough to keep the oracle fast.
const lockstepTrials = 6

// diffLockstep runs both lockstep probes for one module. Returns "" when
// the invariant holds, a description otherwise.
func diffLockstep(name string, mod *ir.Module, ints []int64, floats []float64, maxDyn int64, ref *runOut) string {
	if d := diffLockstepPeel(mod, ints, floats, maxDyn); d != "" {
		return d
	}
	// Programs too short for injection triggers to spread skip the campaign
	// probe, mirroring resume-diff's gate.
	if ref.dyn >= 4 {
		if d := diffLockstepCampaign(name, mod, ints, floats); d != "" {
			return d
		}
	}
	return ""
}

// lockstepMachine builds a fast-engine machine, binding the generator's
// "in"/"fin" globals only when the module declares them (fuzzed sources may
// not).
func lockstepMachine(mod *ir.Module, ints []int64, floats []float64, maxDyn int64) (*vm.Machine, error) {
	vcfg := vm.DefaultConfig()
	if maxDyn > 0 {
		vcfg.MaxDyn = maxDyn
	}
	mach, err := vm.New(mod, vcfg)
	if err != nil {
		return nil, err
	}
	if mod.Global("in") != nil {
		if err := mach.BindInputInts("in", ints); err != nil {
			return nil, err
		}
	}
	if mod.Global("fin") != nil {
		if err := mach.BindInputFloats("fin", floats); err != nil {
			return nil, err
		}
	}
	mach.Reset()
	return mach, nil
}

// diffLockstepPeel is the vm-level probe: every peel-point edge case on one
// carrier, each peeled run compared field-for-field (and global-for-global)
// against an uninterrupted reference run of the same module.
func diffLockstepPeel(mod *ir.Module, ints []int64, floats []float64, maxDyn int64) string {
	refMach, err := lockstepMachine(mod, ints, floats, maxDyn)
	if err != nil {
		return "" // e.g. no main — nothing to probe
	}
	ref := refMach.Run(vm.RunOptions{})

	// The last guaranteed-suspendable point: instructions carry pre-increment
	// indices 0..Dyn-1 on a completing run, and a trapping instruction's
	// suspension check runs before it executes, so Trap.Dyn-1 is always
	// reachable as a suspend point.
	maxPeel := ref.Dyn - 1
	if ref.Trap != nil {
		maxPeel = ref.Trap.Dyn - 1
	}
	if maxPeel < 0 {
		return ""
	}

	carrier, err := lockstepMachine(mod, ints, floats, maxDyn)
	if err != nil {
		return err.Error()
	}
	batch, err := vm.NewBatch(carrier, vm.BatchOptions{})
	if err != nil {
		return err.Error()
	}
	batch.Reset(nil)
	mach, err := lockstepMachine(mod, ints, floats, maxDyn)
	if err != nil {
		return err.Error()
	}

	peels := []int64{0, 1, maxPeel / 2, maxPeel}
	last := int64(-1)
	for _, d := range peels {
		if d > maxPeel || d == last {
			continue
		}
		last = d
		lane := batch.AddLane(d)
		if err := batch.Peel(lane, mach); err != nil {
			return fmt.Sprintf("peel at dyn %d: %v", d, err)
		}
		res := mach.Run(vm.RunOptions{})
		if d := diffLockstepRun(fmt.Sprintf("peel@%d", d), mod, mach, res, refMach, ref); d != "" {
			return d
		}
	}
	return ""
}

// diffLockstepRun compares a peeled run against the reference on every
// observable the solo engine publishes.
func diffLockstepRun(label string, mod *ir.Module, mach *vm.Machine, res *vm.Result, refMach *vm.Machine, ref *vm.Result) string {
	if (res.Trap == nil) != (ref.Trap == nil) {
		return fmt.Sprintf("%s: trap mismatch: %v vs %v", label, res.Trap, ref.Trap)
	}
	if res.Trap != nil && *res.Trap != *ref.Trap {
		return fmt.Sprintf("%s: traps differ: %+v vs %+v", label, *res.Trap, *ref.Trap)
	}
	if res.Ret != ref.Ret || res.Dyn != ref.Dyn || res.Cycles != ref.Cycles {
		return fmt.Sprintf("%s: result differs: (ret=%#x dyn=%d cyc=%d) vs (ret=%#x dyn=%d cyc=%d)",
			label, res.Ret, res.Dyn, res.Cycles, ref.Ret, ref.Dyn, ref.Cycles)
	}
	if res.OpCounts != ref.OpCounts {
		return fmt.Sprintf("%s: OpCounts differ", label)
	}
	for _, g := range mod.Globals {
		a, err1 := mach.ReadGlobal(g.Name)
		b, err2 := refMach.ReadGlobal(g.Name)
		if err1 != nil || err2 != nil {
			return fmt.Sprintf("%s: reading %s: %v / %v", label, g.Name, err1, err2)
		}
		for i := range a {
			if a[i] != b[i] {
				return fmt.Sprintf("%s: %s[%d]: %#x vs %#x", label, g.Name, i, a[i], b[i])
			}
		}
	}
	return ""
}

// diffLockstepCampaign runs the same small campaign with lockstep forced on
// for every bin and forced off, and diffs the Reports.
func diffLockstepCampaign(name string, mod *ir.Module, ints []int64, floats []float64) string {
	target := fault.Target{
		Name: name,
		Bind: func(m *vm.Machine) error {
			if err := m.BindInputInts("in", ints); err != nil {
				return err
			}
			return m.BindInputFloats("fin", floats)
		},
		Output:     "out",
		Measure:    func(golden, test []uint64) float64 { return 0 },
		Acceptable: func(float64) bool { return false },
	}
	cfg := fault.DefaultConfig()
	cfg.Trials = lockstepTrials
	cfg.Workers = 1
	cfg.Checkpoints = 2
	cfg.WatchdogFactor = 20

	run := func(lockstep int) (*fault.Report, string) {
		c := cfg
		c.Lockstep = lockstep
		rep, err := fault.Run(nil, target, mod, "Original", c)
		if err != nil {
			return nil, err.Error()
		}
		return rep, ""
	}
	lock, d := run(1)
	if d != "" {
		return "lockstep campaign: " + d
	}
	solo, d := run(-1)
	if d != "" {
		return "solo campaign: " + d
	}
	if lock.Tally != solo.Tally {
		return fmt.Sprintf("tally: lockstep %+v != solo %+v", lock.Tally, solo.Tally)
	}
	for i := range solo.Trials {
		if lock.Trials[i] != solo.Trials[i] {
			return fmt.Sprintf("trial %d: lockstep %+v != solo %+v", i, lock.Trials[i], solo.Trials[i])
		}
	}
	if len(lock.Anomalies) != 0 || len(solo.Anomalies) != 0 || lock.Partial || solo.Partial {
		return fmt.Sprintf("unexpected anomalies/partial state: lockstep=%+v solo=%+v", lock, solo)
	}
	return ""
}
