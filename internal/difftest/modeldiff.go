package difftest

// Fault-model equivalence invariant. Every registered fault model promises
// that its campaigns are execution-path independent: the scheduler knobs —
// from-scratch vs checkpointed solo vs lockstep batching, fused vs
// per-instruction dispatch — are throughput-only, so the same seeds must
// yield bit-identical Reports on every path. For the suspend-injected
// models this is the load-bearing property: their injection and re-arm
// hooks ride the unified suspend threshold, and a park/resume chain that
// perturbed any observable would surface here as a cross-path diff. The
// probe runs every registered model on each generated program; reg-flip
// rides along as the control (its paths are also pinned by the lockstep and
// resume invariants).

import (
	"fmt"

	"repro/internal/fault"
	"repro/internal/ir"
	"repro/internal/vm"
)

// modelTrials sizes the per-model campaign probe. Mirrors lockstepTrials:
// enough to spread triggers over more than one checkpoint bin.
const modelTrials = 6

// diffFaultModels runs one small campaign per registered model (or per
// model in only, when non-nil) on each of the scheduler paths and diffs
// the Reports pairwise against the from-scratch reference. Returns ""
// when the invariant holds.
func diffFaultModels(name string, mod *ir.Module, ints []int64, floats []float64, only []string) string {
	if mod.Global("out") == nil {
		return "" // fuzzed sources may lack the campaign output
	}
	target := fault.Target{
		Name: name,
		// Bind the generator's inputs only when declared (fuzzed sources
		// may drop either), mirroring lockstepMachine.
		Bind: func(m *vm.Machine) error {
			if mod.Global("in") != nil {
				if err := m.BindInputInts("in", ints); err != nil {
					return err
				}
			}
			if mod.Global("fin") != nil {
				return m.BindInputFloats("fin", floats)
			}
			return nil
		},
		Output:     "out",
		Measure:    func(golden, test []uint64) float64 { return 0 },
		Acceptable: func(float64) bool { return false },
	}

	models := fault.Models()
	if len(only) > 0 {
		models = models[:0:0]
		for _, n := range only {
			models = append(models, fault.MustModel(n))
		}
	}
	for _, model := range models {
		cfg := fault.DefaultConfig()
		cfg.Model = model.Name()
		cfg.Trials = modelTrials
		cfg.Workers = 1
		cfg.WatchdogFactor = 20

		run := func(label string, checkpoints, lockstep, fuse int) (*fault.Report, string) {
			c := cfg
			c.Checkpoints = checkpoints
			c.Lockstep = lockstep
			c.Fuse = fuse
			rep, err := fault.Run(nil, target, mod, "Original", c)
			if err != nil {
				return nil, fmt.Sprintf("%s/%s campaign: %v", model.Name(), label, err)
			}
			if len(rep.Anomalies) != 0 || rep.Partial {
				return nil, fmt.Sprintf("%s/%s campaign: unexpected anomalies/partial state: %+v", model.Name(), label, rep)
			}
			return rep, ""
		}
		ref, d := run("scratch", -1, -1, 0)
		if d != "" {
			return d
		}
		paths := []struct {
			label                       string
			checkpoints, lockstep, fuse int
		}{
			{"checkpointed", 2, -1, 0},
			{"lockstep", 2, 1, 0},
			{"unfused", -1, -1, -1},
		}
		for _, p := range paths {
			rep, d := run(p.label, p.checkpoints, p.lockstep, p.fuse)
			if d != "" {
				return d
			}
			if rep.Tally != ref.Tally {
				return fmt.Sprintf("%s: tally: %s %+v != scratch %+v", model.Name(), p.label, rep.Tally, ref.Tally)
			}
			for i := range ref.Trials {
				if rep.Trials[i] != ref.Trials[i] {
					return fmt.Sprintf("%s: trial %d: %s %+v != scratch %+v",
						model.Name(), i, p.label, rep.Trials[i], ref.Trials[i])
				}
			}
		}
	}
	return ""
}
