package difftest

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/ir"
	"repro/internal/lang"
	"repro/internal/passes"
	"repro/internal/profile"
	"repro/internal/vm"
)

// Invariant names reported by the oracle.
const (
	InvCompile    = "compile"         // frontend rejected or crashed on a generated program
	InvVerify     = "verify"          // IR verifier unclean after a transform
	InvTrap       = "trap"            // a fault-free run trapped
	InvOutput     = "output"          // outputs differ across pipeline/mode combos
	InvCheck      = "check-fired"     // a software check fired on the profiled input
	InvCostOrder  = "cost-order"      // timing cost not ordered across modes
	InvEngine     = "engine-diff"     // precompiled engine disagrees with the tree interpreter
	InvCheckpoint = "checkpoint-diff" // suspend/snapshot/restore run disagrees with uninterrupted run
	InvResume     = "resume-diff"     // resumed journaled campaign disagrees with uninterrupted one
	InvLockstep   = "lockstep-diff"   // lockstep batch executor disagrees with the solo engine
	InvFuse       = "fuse-diff"       // fused dispatch disagrees with the per-instruction path
	InvModel      = "model-diff"      // a fault model's campaign differs across scheduler paths
)

// Failure describes one violated invariant. It implements error.
type Failure struct {
	Invariant string
	Pipeline  string
	Mode      string
	Detail    string
}

func (f *Failure) Error() string {
	return fmt.Sprintf("difftest: invariant %q violated (pipeline=%s mode=%s): %s",
		f.Invariant, f.Pipeline, f.Mode, f.Detail)
}

// Pipeline is one pass-pipeline configuration. Unreachable-block removal
// always runs (the frontend may emit dead blocks); the three optional
// passes are toggled to cross-check that none of them changes observable
// behavior.
type Pipeline struct {
	Name    string
	Mem2Reg bool
	Fold    bool
	DCE     bool
}

// Pipelines is the set the oracle exercises: the full Normalize pipeline
// and one variant with each pass disabled.
var Pipelines = []Pipeline{
	{Name: "full", Mem2Reg: true, Fold: true, DCE: true},
	{Name: "nomem2reg", Mem2Reg: false, Fold: true, DCE: true},
	{Name: "nofold", Mem2Reg: true, Fold: false, DCE: true},
	{Name: "nodce", Mem2Reg: true, Fold: true, DCE: false},
}

// Modes exercised by the oracle: every registered protection scheme, in
// registration order (the four paper schemes in cost order, then
// extensions). A newly registered scheme is property-tested against the
// oracle's invariants automatically.
var Modes = core.SchemeNames()

// OracleConfig tunes a differential check.
type OracleConfig struct {
	MaxDyn int64 // dynamic-instruction watchdog per run
	// SkipCost disables the cost-ordering invariant (used while shrinking
	// failures of other invariants, where deleting statements can flip
	// borderline cycle counts).
	SkipCost bool
	// Only restricts the protection modes exercised (Original is always
	// run as the reference). Nil means all of Modes. When set, the
	// cost-ordering invariant is skipped — it needs the full set.
	Only []string
	// Models restricts the fault models exercised by the model-diff
	// invariant. Nil means every registered model.
	Models []string
}

// DefaultOracleConfig bounds runs far above anything the generator emits.
func DefaultOracleConfig() OracleConfig {
	return OracleConfig{MaxDyn: 50_000_000}
}

// checkParams are the protection parameters the oracle uses for dupval.
// Coverage thresholds are 1.0: a check is only planned when it admits every
// profiled observation, which is what makes invariant 3 (no check fires on
// the profiled input) a theorem rather than a statistical statement.
// Optimization 2 is disabled so DupVal's duplication is a superset of
// DupOnly's and the cost ordering of invariant 4 is well-defined; Opt2
// deliberately trades duplication for cheaper checks and would (correctly)
// break it.
func checkParams() core.Params {
	p := core.DefaultParams()
	p.MinRangeCoverage = 1.0
	p.MinValueCoverage = 1.0
	p.Opt2 = false
	return p
}

// runOut captures everything the oracle compares between two runs.
type runOut struct {
	out        []uint64
	fout       []uint64
	dyn        int64
	cycles     int64
	checkFails int64
	opCounts   [ir.NumOps]int64
	trap       error
}

// CheckSource compiles src under every pipeline, applies every protection
// mode, runs everything on the seed-derived inputs and cross-checks the
// four invariants. Returns nil if all hold.
func CheckSource(name, src string, ints []int64, floats []float64, cfg OracleConfig) *Failure {
	var ref *runOut // full pipeline, Original — the single source of truth

	for _, pl := range Pipelines {
		mod, fail := compilePipeline(name, src, pl)
		if fail != nil {
			return fail
		}

		// Profile the unprotected module on the oracle input (protection
		// clones preserve instruction UIDs, so the profile applies to them).
		prof, fail := collectProfile(mod, ints, floats, pl, cfg)
		if fail != nil {
			return fail
		}

		modes := Modes
		if len(cfg.Only) > 0 {
			modes = append([]string{core.SchemeOriginal}, cfg.Only...)
		}
		cycles := make(map[string]int64)
		for _, mode := range modes {
			pm := mod
			if mode != core.SchemeOriginal {
				pm = mod.Clone()
				if _, err := core.Protect(pm, mode, prof, checkParams()); err != nil {
					return &Failure{Invariant: InvVerify, Pipeline: pl.Name, Mode: mode,
						Detail: fmt.Sprintf("protection produced invalid IR: %v", err)}
				}
			}
			r := runModule(pm, ints, floats, cfg.MaxDyn, vm.EngineFast)
			if r.trap != nil {
				return &Failure{Invariant: InvTrap, Pipeline: pl.Name, Mode: mode,
					Detail: r.trap.Error()}
			}
			// Engine cross-check: the reference tree-walking interpreter
			// must agree with the precompiled engine on every observable.
			if d := diffEngines(r, runModule(pm, ints, floats, cfg.MaxDyn, vm.EngineTree)); d != "" {
				return &Failure{Invariant: InvEngine, Pipeline: pl.Name, Mode: mode, Detail: d}
			}
			// Fusion cross-check (full pipeline — the superinstruction layer
			// is pass-independent): the fast engine's fused dispatch (which
			// produced r) must match the forced per-instruction path, whole
			// runs and runs suspended inside fused spans alike.
			if pl.Name == "full" {
				if d := diffFuse(pm, ints, floats, cfg.MaxDyn, r); d != "" {
					return &Failure{Invariant: InvFuse, Pipeline: pl.Name, Mode: mode, Detail: d}
				}
			}
			// Checkpoint cross-check (full pipeline: the invariant probes
			// the vm's snapshot machinery, not the pass pipeline): a run
			// suspended mid-flight and finished — by resuming in place and
			// by restoring the snapshot elsewhere — must match the
			// uninterrupted run.
			if pl.Name == "full" {
				if d := diffCheckpoint(pm, ints, floats, cfg.MaxDyn, r); d != "" {
					return &Failure{Invariant: InvCheckpoint, Pipeline: pl.Name, Mode: mode, Detail: d}
				}
				// Resume cross-check (Original only — the invariant probes
				// the campaign journal machinery, which is mode-agnostic):
				// an interrupted-and-resumed journaled campaign must match
				// an uninterrupted one. Programs too short for injection
				// triggers to spread are skipped.
				if mode == core.SchemeOriginal && r.dyn >= 4 {
					if d := diffResume(name, pm, ints, floats); d != "" {
						return &Failure{Invariant: InvResume, Pipeline: pl.Name, Mode: mode, Detail: d}
					}
				}
				// Lockstep cross-check (Original only — the batch executor is
				// mode-agnostic at the vm level, and protected modes are
				// covered by the fault package's equivalence matrix): trials
				// peeled from a lockstep carrier must be bit-identical to
				// solo runs, at both the vm and the campaign level.
				if mode == core.SchemeOriginal {
					if d := diffLockstep(name, pm, ints, floats, cfg.MaxDyn, r); d != "" {
						return &Failure{Invariant: InvLockstep, Pipeline: pl.Name, Mode: mode, Detail: d}
					}
				}
				// Fault-model cross-check (Original only — model hooks act on
				// the vm layer beneath protection): every registered fault
				// model must produce bit-identical campaign Reports across
				// scratch, checkpointed, lockstep and unfused paths. Programs
				// too short for triggers to spread are skipped.
				if mode == core.SchemeOriginal && r.dyn >= 4 {
					if d := diffFaultModels(name, pm, ints, floats, cfg.Models); d != "" {
						return &Failure{Invariant: InvModel, Pipeline: pl.Name, Mode: mode, Detail: d}
					}
				}
			}
			if ref == nil {
				ref = r
			} else if d := diffOutputs(ref, r); d != "" {
				return &Failure{Invariant: InvOutput, Pipeline: pl.Name, Mode: mode, Detail: d}
			}
			if r.checkFails != 0 {
				return &Failure{Invariant: InvCheck, Pipeline: pl.Name, Mode: mode,
					Detail: fmt.Sprintf("%d check failures on the profiled input", r.checkFails)}
			}
			cycles[mode] = r.cycles
		}

		if pl.Name == "full" && !cfg.SkipCost && len(cfg.Only) == 0 {
			// The provable orderings: duplication only ever adds work on
			// top of the original; DupVal (with Opt2 off) is DupOnly's
			// exact duplication plus value checks; FullDup duplicates a
			// superset of DupOnly's chains and adds more comparison
			// points. DupVal vs FullDup is deliberately NOT asserted: this
			// very harness produced counterexamples (load-heavy programs
			// where one value check per check-amenable load outruns full
			// duplication, which stops chains at loads) — the paper's
			// Figure-12 ordering is an empirical property of real
			// workloads, not a structural invariant. See EXPERIMENTS.md.
			orderings := [][2]string{
				{core.SchemeOriginal, core.SchemeDup},
				{core.SchemeDup, core.SchemeDupVal},
				{core.SchemeDup, core.SchemeFullDup},
			}
			for _, o := range orderings {
				lo, hi := o[0], o[1]
				if cycles[lo] > cycles[hi] {
					return &Failure{Invariant: InvCostOrder, Pipeline: pl.Name, Mode: hi,
						Detail: fmt.Sprintf("cycles(%s)=%d > cycles(%s)=%d",
							lo, cycles[lo], hi, cycles[hi])}
				}
			}
		}
	}
	return nil
}

// compilePipeline runs the frontend and the pipeline's passes, verifying
// the module after codegen and after every individual transform.
func compilePipeline(name, src string, pl Pipeline) (*ir.Module, *Failure) {
	prog, err := lang.Parse(src)
	if err != nil {
		return nil, &Failure{Invariant: InvCompile, Pipeline: pl.Name, Detail: fmt.Sprintf("parse: %v", err)}
	}
	mod, err := lang.Codegen(name, prog)
	if err != nil {
		return nil, &Failure{Invariant: InvCompile, Pipeline: pl.Name, Detail: fmt.Sprintf("codegen: %v", err)}
	}
	verify := func(stage string) *Failure {
		mod.Renumber()
		if err := mod.Verify(); err != nil {
			return &Failure{Invariant: InvVerify, Pipeline: pl.Name,
				Detail: fmt.Sprintf("after %s: %v", stage, err)}
		}
		return nil
	}
	if f := verify("codegen"); f != nil {
		return nil, f
	}
	steps := []struct {
		name    string
		enabled bool
		run     func(*ir.Func)
	}{
		{"remove-unreachable", true, passes.RemoveUnreachable},
		{"mem2reg", pl.Mem2Reg, passes.Mem2Reg},
		{"fold", pl.Fold, passes.Fold},
		{"dce", pl.DCE, passes.DCE},
	}
	for _, st := range steps {
		if !st.enabled {
			continue
		}
		for _, f := range mod.Funcs {
			st.run(f)
		}
		if f := verify(st.name); f != nil {
			return nil, f
		}
	}
	return mod, nil
}

// collectProfile runs the unprotected module under the value profiler.
func collectProfile(mod *ir.Module, ints []int64, floats []float64, pl Pipeline, cfg OracleConfig) (*profile.Data, *Failure) {
	mach, err := newMachine(mod, ints, floats, cfg.MaxDyn)
	if err != nil {
		return nil, &Failure{Invariant: InvCompile, Pipeline: pl.Name, Detail: err.Error()}
	}
	col := profile.NewCollector(profile.DefaultBins)
	if res := mach.Run(vm.RunOptions{Profiler: col}); res.Trap != nil {
		return nil, &Failure{Invariant: InvTrap, Pipeline: pl.Name, Mode: "profiling",
			Detail: res.Trap.Error()}
	}
	return col.Data(), nil
}

func newMachine(mod *ir.Module, ints []int64, floats []float64, maxDyn int64) (*vm.Machine, error) {
	return newMachineEngine(mod, ints, floats, maxDyn, vm.EngineFast)
}

func newMachineEngine(mod *ir.Module, ints []int64, floats []float64, maxDyn int64, engine vm.EngineKind) (*vm.Machine, error) {
	vcfg := vm.DefaultConfig()
	vcfg.Engine = engine
	if maxDyn > 0 {
		vcfg.MaxDyn = maxDyn
	}
	mach, err := vm.New(mod, vcfg)
	if err != nil {
		return nil, err
	}
	if err := mach.BindInputInts("in", ints); err != nil {
		return nil, err
	}
	if err := mach.BindInputFloats("fin", floats); err != nil {
		return nil, err
	}
	mach.Reset()
	return mach, nil
}

// runModule executes a module fault-free, counting (not trapping on) check
// failures, and captures the observable outputs.
func runModule(mod *ir.Module, ints []int64, floats []float64, maxDyn int64, engine vm.EngineKind) *runOut {
	return runModuleFuse(mod, ints, floats, maxDyn, engine, vm.FuseAuto)
}

func runModuleFuse(mod *ir.Module, ints []int64, floats []float64, maxDyn int64, engine vm.EngineKind, fuse vm.FuseMode) *runOut {
	mach, err := newMachineEngine(mod, ints, floats, maxDyn, engine)
	if err != nil {
		return &runOut{trap: err}
	}
	res := mach.Run(vm.RunOptions{CountChecks: true, Fuse: fuse})
	if res.Trap != nil {
		return &runOut{trap: res.Trap}
	}
	out, err := mach.ReadGlobal("out")
	if err != nil {
		return &runOut{trap: err}
	}
	fout, err := mach.ReadGlobal("fout")
	if err != nil {
		return &runOut{trap: err}
	}
	return &runOut{out: out, fout: fout, dyn: res.Dyn, cycles: res.Cycles,
		checkFails: res.CheckFails, opCounts: res.OpCounts}
}

// diffCheckpoint re-runs the module with a mid-flight suspension, captures
// a snapshot, and finishes the run twice — resuming the same machine, then
// restoring the snapshot into a fresh one. Both must reproduce the
// uninterrupted reference run's observables bit for bit. Programs too short
// to pause mid-run are skipped.
func diffCheckpoint(mod *ir.Module, ints []int64, floats []float64, maxDyn int64, ref *runOut) string {
	if ref.dyn < 4 {
		return ""
	}
	cut := ref.dyn / 2
	mach, err := newMachine(mod, ints, floats, maxDyn)
	if err != nil {
		return err.Error()
	}
	if res := mach.Run(vm.RunOptions{CountChecks: true, SuspendAtDyn: cut}); res.Trap == nil || res.Trap.Kind != vm.TrapSuspended {
		return fmt.Sprintf("no suspension at dyn %d: trap=%v", cut, res.Trap)
	}
	snap, err := mach.Snapshot()
	if err != nil {
		return err.Error()
	}
	if d := diffFinished("resumed", mach, ref); d != "" {
		return d
	}
	fresh, err := newMachine(mod, ints, floats, maxDyn)
	if err != nil {
		return err.Error()
	}
	if err := fresh.Restore(snap); err != nil {
		return err.Error()
	}
	return diffFinished("restored", fresh, ref)
}

// diffFinished runs a suspended machine to completion and compares every
// observable against the uninterrupted reference.
func diffFinished(label string, mach *vm.Machine, ref *runOut) string {
	res := mach.Run(vm.RunOptions{CountChecks: true})
	if res.Trap != nil {
		return fmt.Sprintf("%s run trapped: %v", label, res.Trap)
	}
	out, err := mach.ReadGlobal("out")
	if err != nil {
		return err.Error()
	}
	fout, err := mach.ReadGlobal("fout")
	if err != nil {
		return err.Error()
	}
	got := &runOut{out: out, fout: fout, dyn: res.Dyn, cycles: res.Cycles,
		checkFails: res.CheckFails, opCounts: res.OpCounts}
	if d := diffOutputs(ref, got); d != "" {
		return label + " " + d
	}
	if got.dyn != ref.dyn {
		return fmt.Sprintf("%s dyn: %d != %d", label, got.dyn, ref.dyn)
	}
	if got.cycles != ref.cycles {
		return fmt.Sprintf("%s cycles: %d != %d", label, got.cycles, ref.cycles)
	}
	if got.checkFails != ref.checkFails {
		return fmt.Sprintf("%s checkFails: %d != %d", label, got.checkFails, ref.checkFails)
	}
	if got.opCounts != ref.opCounts {
		return fmt.Sprintf("%s opCounts: %v != %v", label, got.opCounts, ref.opCounts)
	}
	return ""
}

// diffOutputs compares raw output words and returns a description of the
// first mismatch ("" when identical). Bitwise comparison: float outputs
// must match exactly, NaN payloads included — every pipeline and mode runs
// the same arithmetic in the same order.
func diffOutputs(a, b *runOut) string {
	for i := range a.out {
		if a.out[i] != b.out[i] {
			return fmt.Sprintf("out[%d]: %d != %d", i, int64(a.out[i]), int64(b.out[i]))
		}
	}
	for i := range a.fout {
		if a.fout[i] != b.fout[i] {
			return fmt.Sprintf("fout[%d]: %#x != %#x", i, a.fout[i], b.fout[i])
		}
	}
	return ""
}

// diffEngines compares a fast-engine run against a tree-interpreter run of
// the same module. The engines promise bit-for-bit equivalence, so every
// observable is compared: outputs, dynamic instruction count, timing-model
// cycles, and check-failure count.
func diffEngines(fast, tree *runOut) string {
	if tree.trap != nil {
		return fmt.Sprintf("tree engine trapped where fast engine completed: %v", tree.trap)
	}
	if d := diffOutputs(fast, tree); d != "" {
		return "tree vs fast " + d
	}
	if fast.dyn != tree.dyn {
		return fmt.Sprintf("dyn: fast=%d tree=%d", fast.dyn, tree.dyn)
	}
	if fast.cycles != tree.cycles {
		return fmt.Sprintf("cycles: fast=%d tree=%d", fast.cycles, tree.cycles)
	}
	if fast.checkFails != tree.checkFails {
		return fmt.Sprintf("checkFails: fast=%d tree=%d", fast.checkFails, tree.checkFails)
	}
	if fast.opCounts != tree.opCounts {
		return fmt.Sprintf("opCounts: fast=%v tree=%v", fast.opCounts, tree.opCounts)
	}
	return ""
}

// diffFuse compares the fast engine's fused dispatch against the forced
// per-instruction path. The reference ref is a fused run (FuseAuto with no
// tracer fuses); the unfused twin must reproduce it bit for bit, including
// the per-opcode accounting the fused handlers batch through region
// counters. Two off-center suspension cuts then land events inside fused
// spans: the fused and unfused machines must pause at the same instruction
// with interchangeable snapshots and finish identically.
func diffFuse(mod *ir.Module, ints []int64, floats []float64, maxDyn int64, ref *runOut) string {
	unfused := runModuleFuse(mod, ints, floats, maxDyn, vm.EngineFast, vm.FuseOff)
	if unfused.trap != nil {
		return fmt.Sprintf("unfused run trapped where fused run completed: %v", unfused.trap)
	}
	if d := diffOutputs(ref, unfused); d != "" {
		return "unfused vs fused " + d
	}
	if ref.dyn != unfused.dyn || ref.cycles != unfused.cycles || ref.checkFails != unfused.checkFails {
		return fmt.Sprintf("unfused dyn/cycles/checkFails %d/%d/%d, fused %d/%d/%d",
			unfused.dyn, unfused.cycles, unfused.checkFails, ref.dyn, ref.cycles, ref.checkFails)
	}
	if ref.opCounts != unfused.opCounts {
		return fmt.Sprintf("opCounts: fused=%v unfused=%v", ref.opCounts, unfused.opCounts)
	}
	for _, cut := range []int64{ref.dyn / 3, ref.dyn - 1} {
		if cut < 1 {
			continue
		}
		fm, err := newMachine(mod, ints, floats, maxDyn)
		if err != nil {
			return err.Error()
		}
		um, err := newMachine(mod, ints, floats, maxDyn)
		if err != nil {
			return err.Error()
		}
		fres := fm.Run(vm.RunOptions{CountChecks: true, SuspendAtDyn: cut})
		ures := um.Run(vm.RunOptions{CountChecks: true, SuspendAtDyn: cut, Fuse: vm.FuseOff})
		if fres.Trap == nil || fres.Trap.Kind != vm.TrapSuspended ||
			ures.Trap == nil || ures.Trap.Kind != vm.TrapSuspended {
			return fmt.Sprintf("no suspension at dyn %d: fused=%v unfused=%v", cut, fres.Trap, ures.Trap)
		}
		if fres.Trap.Dyn != ures.Trap.Dyn {
			return fmt.Sprintf("cut %d: fused suspended at dyn %d, unfused at %d", cut, fres.Trap.Dyn, ures.Trap.Dyn)
		}
		snap, err := um.Snapshot()
		if err != nil {
			return err.Error()
		}
		if !fm.MatchesSnapshot(snap) {
			return fmt.Sprintf("cut %d: fused machine state diverges from unfused snapshot", cut)
		}
		if d := diffFinished(fmt.Sprintf("fused cut %d", cut), fm, ref); d != "" {
			return d
		}
		if d := diffFinished(fmt.Sprintf("unfused cut %d", cut), um, ref); d != "" {
			return d
		}
	}
	return ""
}

// Check generates the program for seed, derives its inputs and runs the
// oracle — the single entry point used by cmd/difftest and the tests.
func Check(seed int64, gcfg GenConfig, ocfg OracleConfig) (*GenProgram, *Failure) {
	p := Generate(seed, gcfg)
	ints, floats := InputsForSeed(seed)
	return p, CheckSource(fmt.Sprintf("gen%d", seed), p.Source(), ints, floats, ocfg)
}
