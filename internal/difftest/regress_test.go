package difftest

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/lang"
	"repro/internal/profile"
	"repro/internal/vm"
)

// profileProtectRun compiles src, profiles it on the given int/float
// inputs, protects a clone with full-coverage check planning, reruns the
// protected module on the same inputs and returns the check-failure count.
// Shared fixture for the regression tests below: all of them assert
// oracle invariant 3 — checks planned from a profile must never fire on
// the profiled input.
func profileProtectRun(t *testing.T, src string, mode string, ints []int64, floats []float64) int64 {
	t.Helper()
	mod, err := lang.Compile("regress", src)
	if err != nil {
		t.Fatal(err)
	}
	run := func(m *vm.Machine, opts vm.RunOptions) *vm.Result {
		if ints != nil {
			if err := m.BindInputInts("in", ints); err != nil {
				t.Fatal(err)
			}
		}
		if floats != nil {
			if err := m.BindInputFloats("fin", floats); err != nil {
				t.Fatal(err)
			}
		}
		m.Reset()
		res := m.Run(opts)
		if res.Trap != nil {
			t.Fatal(res.Trap)
		}
		return res
	}
	mach, err := vm.New(mod, vm.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	col := profile.NewCollector(profile.DefaultBins)
	run(mach, vm.RunOptions{Profiler: col})

	prot := mod.Clone()
	if _, err := core.Protect(prot, mode, col.Data(), checkParams()); err != nil {
		t.Fatal(err)
	}
	mach2, err := vm.New(prot, vm.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	res := run(mach2, vm.RunOptions{CountChecks: true})
	return res.CheckFails
}

// TestRegressBigIntValueCheck pins the first bug the harness surfaced:
// profile.Collector used to round int64 observations through float64, so a
// value check planned for 2^62+1 compared against 2^62 and fired on the
// very input it was trained on.
func TestRegressBigIntValueCheck(t *testing.T) {
	src := `
global int in[4];
global int out[64];
void main() {
	for (int i = 0; i < 40; i += 1) {
		out[i & 63] = in[1] + in[2];
	}
}`
	huge := int64(1)<<62 + 1
	fails := profileProtectRun(t, src, core.SchemeDupVal, []int64{0, huge, 2, 0}, nil)
	if fails != 0 {
		t.Errorf("value checks fired on the profiled input: %d (int64 rounded through float64?)", fails)
	}
}

// TestRegressNegZeroValueCheck pins the second bug (found at generator
// seed 9): an instruction observing both +0.0 and -0.0 profiles into one
// histogram bin whose representative is whichever arrived first (+0.0
// here, since -0.0 == 0.0 numerically), but OpValCheck compared raw bits,
// so the planned check %x == +0.0 rejected 0x8000000000000000 on every
// -0.0 iteration of the training input itself. Value checks on F64 must
// compare numerically, exactly like range checks.
func TestRegressNegZeroValueCheck(t *testing.T) {
	src := `
global float fin[4];
global float fout[64];
void main() {
	for (int i = 0; i < 40; i += 1) {
		fout[i & 63] = (fin[i & 3] * 1.0);
	}
}`
	fails := profileProtectRun(t, src, core.SchemeDupVal, nil,
		[]float64{0.0, math.Copysign(0, -1), 0.0, math.Copysign(0, -1)})
	if fails != 0 {
		t.Errorf("value checks fired on the profiled input: %d (bitwise F64 compare vs -0.0?)", fails)
	}
}
