package difftest

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestReplayReproducers re-runs the oracle over every minimized reproducer
// cmd/difftest ever wrote to testdata/difftest/. Each file is a program
// that once violated an invariant; its first line records the generator
// seed, which (inputs being a pure function of the seed) is everything
// needed to replay it. The corpus must stay green forever — a failure here
// is a regression of a previously-fixed pipeline bug.
func TestReplayReproducers(t *testing.T) {
	files, err := filepath.Glob(filepath.Join("..", "..", "testdata", "difftest", "*.sf"))
	if err != nil {
		t.Fatal(err)
	}
	if len(files) == 0 {
		t.Fatal("no reproducers in testdata/difftest — at least seed9.sf should be committed")
	}
	for _, fn := range files {
		fn := fn
		t.Run(filepath.Base(fn), func(t *testing.T) {
			b, err := os.ReadFile(fn)
			if err != nil {
				t.Fatal(err)
			}
			src := string(b)
			first, _, _ := strings.Cut(src, "\n")
			var seed int64
			if _, err := fmt.Sscanf(first, "// difftest seed=%d", &seed); err != nil {
				t.Fatalf("malformed reproducer header %q: %v", first, err)
			}
			ints, floats := InputsForSeed(seed)
			if fail := CheckSource(filepath.Base(fn), src, ints, floats, DefaultOracleConfig()); fail != nil {
				t.Errorf("reproducer regressed: %v", fail)
			}
		})
	}
}
