package difftest

// Resume-equivalence invariant. A journaled fault-injection campaign that is
// interrupted at an arbitrary byte boundary and resumed must produce the
// same Report as one that ran uninterrupted — the journal replay, tail
// truncation, and per-trial seeding must compose to bit-identical results.
// The oracle probes this on generated programs: run a small journaled
// campaign, chop the journal at a seed-derived offset (sometimes inside the
// header, sometimes mid-record, sometimes not at all), resume, and diff.

import (
	"fmt"
	"hash/crc32"
	"os"

	"repro/internal/fault"
	"repro/internal/ir"
	"repro/internal/vm"
)

// resumeTrials keeps the invariant cheap: enough trials for the journal to
// hold several records, few enough that the oracle stays fast.
const resumeTrials = 5

// diffResume runs the interrupted-and-resumed campaign comparison for one
// module. Returns "" when the invariant holds, a description otherwise.
func diffResume(name string, mod *ir.Module, ints []int64, floats []float64) string {
	target := fault.Target{
		Name: name,
		Bind: func(m *vm.Machine) error {
			if err := m.BindInputInts("in", ints); err != nil {
				return err
			}
			return m.BindInputFloats("fin", floats)
		},
		Output:     "out",
		Measure:    func(golden, test []uint64) float64 { return 0 },
		Acceptable: func(float64) bool { return false },
	}
	cfg := fault.DefaultConfig()
	cfg.Trials = resumeTrials
	cfg.Workers = 1
	cfg.WatchdogFactor = 20

	jf, err := os.CreateTemp("", "difftest-journal-*.log")
	if err != nil {
		return err.Error()
	}
	path := jf.Name()
	jf.Close()
	defer os.Remove(path)

	run := func(resume bool) (*fault.Report, string) {
		c := cfg
		c.JournalPath = path
		c.Resume = resume
		rep, err := fault.Run(nil, target, mod, "Original", c)
		if err != nil {
			return nil, err.Error()
		}
		return rep, ""
	}

	full, d := run(false)
	if d != "" {
		return "uninterrupted campaign: " + d
	}

	// Chop the journal at a program-derived offset in [0, size]: sometimes
	// inside the header (resume restarts from scratch), sometimes inside or
	// between trial records (resume replays a prefix), sometimes nowhere.
	info, err := os.Stat(path)
	if err != nil {
		return err.Error()
	}
	cut := int64(crc32.ChecksumIEEE([]byte(name))) % (info.Size() + 1)
	if err := os.Truncate(path, cut); err != nil {
		return err.Error()
	}

	resumed, d := run(true)
	if d != "" {
		return fmt.Sprintf("resume after truncation to %d/%d bytes: %s", cut, info.Size(), d)
	}

	if resumed.Tally != full.Tally {
		return fmt.Sprintf("tally after resume (cut %d/%d): %+v != %+v", cut, info.Size(), resumed.Tally, full.Tally)
	}
	for i := range full.Trials {
		if resumed.Trials[i] != full.Trials[i] {
			return fmt.Sprintf("trial %d after resume (cut %d/%d): %+v != %+v",
				i, cut, info.Size(), resumed.Trials[i], full.Trials[i])
		}
	}
	if len(resumed.Anomalies) != 0 || full.Partial || resumed.Partial {
		return fmt.Sprintf("unexpected anomalies/partial state: resumed=%+v full=%+v", resumed, full)
	}
	return ""
}
