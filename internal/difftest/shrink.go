package difftest

import "fmt"

// Shrink minimizes a failing generated program by greedy statement
// deletion. A candidate deletion is accepted only when the reduced program
// still fails with the SAME invariant as the original failure — a candidate
// that passes, trips a different invariant, or stops compiling is rejected.
// Keep-marked statements (structural loop decrements) are never deleted;
// deleting a compound statement removes its whole subtree. The process
// repeats until a full pass over the program accepts no deletion.
//
// The cost-ordering invariant is suppressed while shrinking failures of
// other invariants: deleting statements shifts cycle counts and a
// borderline cost flip must not hijack the reduction.
func Shrink(p *GenProgram, orig *Failure, ints []int64, floats []float64, ocfg OracleConfig) (*GenProgram, int) {
	if orig.Invariant != InvCostOrder {
		ocfg.SkipCost = true
	}
	cur := cloneProgram(p)
	deleted := 0
	for {
		progress := false
		for {
			slots := deletableSlots(cur)
			accepted := false
			for _, sl := range slots {
				cand := cloneProgram(cur)
				removeAt(cand, sl)
				fail := CheckSource(fmt.Sprintf("shrink%d", p.Seed), cand.Source(), ints, floats, ocfg)
				if fail != nil && fail.Invariant == orig.Invariant {
					cur = cand
					deleted++
					accepted = true
					break // slot list is stale; re-enumerate
				}
			}
			if !accepted {
				break
			}
			progress = true
		}
		if !progress {
			return cur, deleted
		}
	}
}

// slot addresses one deletable statement by a path of child indexes from a
// function body. Path elements alternate between Body and Else via the sign
// trick used in stepInto.
type slot struct {
	helper int // index into Helpers, or -1 for Main
	path   []pathStep
}

type pathStep struct {
	idx    int
	inElse bool // descend into Else instead of Body
}

func deletableSlots(p *GenProgram) []slot {
	var out []slot
	for hi, h := range p.Helpers {
		collectSlots(h.Body, slot{helper: hi}, &out)
	}
	collectSlots(p.Main.Body, slot{helper: -1}, &out)
	return out
}

func collectSlots(ss []*GenStmt, base slot, out *[]slot) {
	for i, s := range ss {
		here := slot{helper: base.helper, path: appendStep(base.path, pathStep{idx: i})}
		if !s.Keep {
			*out = append(*out, here)
		}
		if s.Head != "" {
			collectSlots(s.Body, here, out)
			if s.Else != nil {
				elseBase := slot{helper: base.helper,
					path: appendStep(base.path, pathStep{idx: i, inElse: true})}
				collectSlots(s.Else, elseBase, out)
			}
		}
	}
}

func appendStep(path []pathStep, st pathStep) []pathStep {
	out := make([]pathStep, len(path)+1)
	copy(out, path)
	out[len(path)] = st
	return out
}

// removeAt deletes the statement addressed by sl from a freshly cloned
// program.
func removeAt(p *GenProgram, sl slot) {
	f := p.Main
	if sl.helper >= 0 {
		f = p.Helpers[sl.helper]
	}
	list := &f.Body
	for i, st := range sl.path {
		if i == len(sl.path)-1 {
			*list = append((*list)[:st.idx], (*list)[st.idx+1:]...)
			return
		}
		s := (*list)[st.idx]
		if st.inElse {
			list = &s.Else
		} else {
			list = &s.Body
		}
	}
}

func cloneStmts(ss []*GenStmt) []*GenStmt {
	if ss == nil {
		return nil
	}
	out := make([]*GenStmt, len(ss))
	for i, s := range ss {
		out[i] = &GenStmt{Line: s.Line, Head: s.Head, Keep: s.Keep,
			Body: cloneStmts(s.Body), Else: cloneStmts(s.Else)}
	}
	return out
}

func cloneFunc(f *GenFunc) *GenFunc {
	return &GenFunc{Decl: f.Decl, Ret: f.Ret, Body: cloneStmts(f.Body)}
}

func cloneProgram(p *GenProgram) *GenProgram {
	q := &GenProgram{Seed: p.Seed, Main: cloneFunc(p.Main)}
	for _, h := range p.Helpers {
		q.Helpers = append(q.Helpers, cloneFunc(h))
	}
	return q
}

// StmtCount reports the number of statements in the program, counting
// compound heads as one statement each.
func StmtCount(p *GenProgram) int {
	n := 0
	for _, h := range p.Helpers {
		n += countStmts(h.Body)
	}
	return n + countStmts(p.Main.Body)
}

func countStmts(ss []*GenStmt) int {
	n := 0
	for _, s := range ss {
		n++
		n += countStmts(s.Body)
		n += countStmts(s.Else)
	}
	return n
}
