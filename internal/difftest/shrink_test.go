package difftest

import (
	"strings"
	"testing"
)

// TestShrinkTrapRepro hand-builds a program that violates the trap
// invariant (integer divide by a value that is provably zero at runtime
// but not at compile time) surrounded by padding, and checks that Shrink
// deletes everything except the one statement that reproduces the failure.
func TestShrinkTrapRepro(t *testing.T) {
	p := &GenProgram{Seed: 1, Main: &GenFunc{Decl: "void main()", Body: []*GenStmt{
		{Line: "int x0 = (in[0] + 3);"},
		{Line: "out[1] = (x0 * 2);"},
		{Line: "out[0] = (in[1] / (in[2] & 0));"},
		{Line: "fout[0] = (fin[0] * 0.5);"},
	}}}
	ints, floats := InputsForSeed(1)
	fail := CheckSource("trap", p.Source(), ints, floats, DefaultOracleConfig())
	if fail == nil || fail.Invariant != InvTrap {
		t.Fatalf("expected a trap failure, got %v", fail)
	}

	small, deleted := Shrink(p, fail, ints, floats, DefaultOracleConfig())
	if got := StmtCount(small); got != 1 {
		t.Fatalf("shrunk to %d statements, want 1:\n%s", got, small.Source())
	}
	if deleted != 3 {
		t.Fatalf("deleted %d statements, want 3", deleted)
	}
	if !strings.Contains(small.Source(), "in[1] / (in[2] & 0)") {
		t.Fatalf("shrinker deleted the failing statement:\n%s", small.Source())
	}
	// The reduced program must still fail identically.
	again := CheckSource("trap", small.Source(), ints, floats, DefaultOracleConfig())
	if again == nil || again.Invariant != InvTrap {
		t.Fatalf("shrunk program no longer fails the trap invariant: %v", again)
	}
	// The original program object must be untouched.
	if StmtCount(p) != 4 {
		t.Fatalf("Shrink mutated its input: %d statements", StmtCount(p))
	}
}

// TestShrinkKeepsStructure: when the failure lives inside a while loop,
// the Keep-marked counter declaration and decrement must survive (deleting
// either alone would change or unbound the loop), while deletable padding
// in the loop body goes away.
func TestShrinkKeepsStructure(t *testing.T) {
	p := &GenProgram{Seed: 2, Main: &GenFunc{Decl: "void main()", Body: []*GenStmt{
		{Head: "{", Body: []*GenStmt{
			{Line: "int w0 = 4;", Keep: true},
			{Head: "while (w0 > 0) {", Body: []*GenStmt{
				{Line: "w0 -= 1;", Keep: true},
				{Line: "out[2] = (out[2] + 1);"},
				{Line: "out[0] = (in[0] / (in[1] & 0));"},
			}},
		}},
	}}}

	ints, floats := InputsForSeed(2)
	fail := CheckSource("keep", p.Source(), ints, floats, DefaultOracleConfig())
	if fail == nil || fail.Invariant != InvTrap {
		t.Fatalf("expected a trap failure, got %v", fail)
	}
	small, _ := Shrink(p, fail, ints, floats, DefaultOracleConfig())
	src := small.Source()
	if !strings.Contains(src, "int w0 = 4;") || !strings.Contains(src, "w0 -= 1;") {
		t.Fatalf("shrinker deleted Keep-marked statements:\n%s", src)
	}
	if strings.Contains(src, "out[2]") {
		t.Fatalf("shrinker left deletable loop body statement:\n%s", src)
	}
}
