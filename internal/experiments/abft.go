package experiments

import (
	"context"
	"fmt"

	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/ir"
	"repro/internal/vm"
	"repro/internal/workloads"
)

// Extension experiment: ABFT kernel checksums versus the paper's selective
// protection on the kernel-dominated workloads (the ML and vision
// benchmarks, whose hot loops are matrix/accumulation nests). For each
// workload the experiment compares DupVal, ABFT alone, and the composed
// abft+dupval build on fault coverage, USDC rate, detection attribution,
// and fault-free runtime overhead.

// abftWorkloads are the kernel-dominated benchmarks ABFT targets.
var abftWorkloads = []string{"kmeans", "svm", "segm"}

// ABFTRow is one benchmark/scheme outcome.
type ABFTRow struct {
	Name     string
	Scheme   string
	Tally    fault.Tally
	Overhead float64
	Kernels  int // kernel loops checksummed (0 for non-ABFT schemes)
	Checks   int // ABFT exit checks inserted
}

// timeVariant measures a variant's fault-free cycle count on the test
// input (same procedure Prepare uses for registered schemes).
func timeVariant(w *workloads.Workload, m *ir.Module) (int64, error) {
	tm, err := vm.New(m, vm.DefaultConfig())
	if err != nil {
		return 0, err
	}
	if err := w.Bind(tm, workloads.Test); err != nil {
		return 0, err
	}
	tm.Reset()
	res := tm.Run(vm.RunOptions{CountChecks: true})
	if res.Trap != nil {
		return 0, fmt.Errorf("timing run trapped: %v", res.Trap)
	}
	return res.Cycles, nil
}

// ABFTvsDupVal runs the comparison campaigns and renders the table.
func ABFTvsDupVal(cfg fault.Config) ([]ABFTRow, string, error) {
	schemes := []string{core.SchemeDupVal, core.SchemeABFT, "abft+dupval"}
	var rows []ABFTRow
	var cells [][]string
	for _, name := range abftWorkloads {
		w := workloads.ByName(name)
		p, err := Prepare(w)
		if err != nil {
			return nil, "", err
		}
		for _, sch := range schemes {
			variant := p.Variants[sch]
			cyc := p.Cycles[sch]
			if variant == nil {
				// Composed schemes are not registry entries; build on demand.
				m := p.Variants[core.SchemeOriginal].Module.Clone()
				stats, err := core.Apply(m, sch, p.Profile, core.DefaultParams())
				if err != nil {
					return nil, "", fmt.Errorf("%s/%s: %w", name, sch, err)
				}
				variant = &Variant{Mode: sch, Module: m, Stats: stats}
				if cyc, err = timeVariant(w, m); err != nil {
					return nil, "", fmt.Errorf("%s/%s: %w", name, sch, err)
				}
			}
			rep, err := fault.Run(context.Background(), w.Target(workloads.Test),
				variant.Module, core.Title(sch), cfg)
			if err != nil {
				return nil, "", err
			}
			base := p.Cycles[core.SchemeOriginal]
			ov := 0.0
			if base > 0 {
				ov = float64(cyc)/float64(base) - 1
			}
			ta := rep.Tally
			rows = append(rows, ABFTRow{
				Name: name, Scheme: sch, Tally: ta, Overhead: ov,
				Kernels: variant.Stats.ABFTKernels, Checks: variant.Stats.ABFTChecks,
			})
			cells = append(cells, []string{
				name, sch,
				pct(ta.Coverage()), pct(ta.Frac(fault.USDC)),
				fmt.Sprintf("%d", ta.Count[fault.SWDetect]),
				fmt.Sprintf("%d/%d/%d", ta.SWDetectABFT, ta.SWDetectDup, ta.SWDetectValue),
				pct(ov),
				fmt.Sprintf("%d", variant.Stats.ABFTKernels),
			})
		}
	}
	table := renderTable(
		"Extension: ABFT kernel checksums vs selective protection (kernel workloads)",
		[]string{"benchmark", "scheme", "coverage", "USDC", "SWDetect", "abft/dup/val", "overhead", "kernels"},
		cells)
	return rows, table, nil
}
