package experiments

import (
	"context"
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/ir"
	"repro/internal/profile"
	"repro/internal/vm"
	"repro/internal/workloads"
)

// CrossValRow compares normal (profile on train, inject on test) against
// swapped (profile on test, inject on train) for one benchmark — the
// paper's 2-fold cross-validation on jpegdec and kmeans.
type CrossValRow struct {
	Name            string
	Normal, Swapped fault.Tally
	OverheadNormal  float64
	OverheadSwapped float64
	// MaxOutcomeDelta is the largest absolute difference across the five
	// outcome fractions (paper reports deltas of a fraction of a percent).
	MaxOutcomeDelta float64
}

// buildDupVal builds a Dup+val-chks variant profiled on the given input.
func buildDupVal(w *workloads.Workload, profKind workloads.InputKind) (*Variant, error) {
	mod, err := w.Compile()
	if err != nil {
		return nil, err
	}
	mach, err := vm.New(mod.Clone(), vm.DefaultConfig())
	if err != nil {
		return nil, err
	}
	if err := w.Bind(mach, profKind); err != nil {
		return nil, err
	}
	mach.Reset()
	col := profile.NewCollector(profile.DefaultBins)
	if res := mach.Run(vm.RunOptions{Profiler: col}); res.Trap != nil {
		return nil, fmt.Errorf("%s: profiling trapped: %v", w.Name, res.Trap)
	}
	m := mod.Clone()
	stats, err := core.Protect(m, core.SchemeDupVal, col.Data(), core.DefaultParams())
	if err != nil {
		return nil, err
	}
	return &Variant{Mode: core.SchemeDupVal, Module: m, Stats: stats}, nil
}

// overheadOn measures runtime overhead of a variant on one input kind.
func overheadOn(w *workloads.Workload, v *Variant, kind workloads.InputKind) (float64, error) {
	run := func(mod *ir.Module) (int64, error) {
		mach, err := vm.New(mod, vm.DefaultConfig())
		if err != nil {
			return 0, err
		}
		if err := w.Bind(mach, kind); err != nil {
			return 0, err
		}
		mach.Reset()
		res := mach.Run(vm.RunOptions{CountChecks: true})
		if res.Trap != nil {
			return 0, fmt.Errorf("trap: %v", res.Trap)
		}
		return res.Cycles, nil
	}
	base, err := w.Compile()
	if err != nil {
		return 0, err
	}
	c0, err := run(base.Clone())
	if err != nil {
		return 0, err
	}
	c1, err := run(v.Module)
	if err != nil {
		return 0, err
	}
	return float64(c1)/float64(c0) - 1, nil
}

// CrossValidation runs the paper's §V sensitivity experiment on jpegdec and
// kmeans.
func CrossValidation(cfg fault.Config) ([]CrossValRow, string, error) {
	var rows []CrossValRow
	var cells [][]string
	for _, name := range []string{"jpegdec", "kmeans"} {
		w := workloads.ByName(name)

		normalVar, err := buildDupVal(w, workloads.Train)
		if err != nil {
			return nil, "", err
		}
		swappedVar, err := buildDupVal(w, workloads.Test)
		if err != nil {
			return nil, "", err
		}

		normRep, err := fault.Run(context.Background(), w.Target(workloads.Test), normalVar.Module, "normal", cfg)
		if err != nil {
			return nil, "", err
		}
		swapRep, err := fault.Run(context.Background(), w.Target(workloads.Train), swappedVar.Module, "swapped", cfg)
		if err != nil {
			return nil, "", err
		}

		ovN, err := overheadOn(w, normalVar, workloads.Test)
		if err != nil {
			return nil, "", err
		}
		ovS, err := overheadOn(w, swappedVar, workloads.Train)
		if err != nil {
			return nil, "", err
		}

		r := CrossValRow{
			Name: name, Normal: normRep.Tally, Swapped: swapRep.Tally,
			OverheadNormal: ovN, OverheadSwapped: ovS,
		}
		for o := 0; o < 5; o++ {
			d := math.Abs(r.Normal.Frac(fault.Outcome(o)) - r.Swapped.Frac(fault.Outcome(o)))
			if d > r.MaxOutcomeDelta {
				r.MaxOutcomeDelta = d
			}
		}
		rows = append(rows, r)
		cells = append(cells, []string{
			name,
			pct(r.OverheadNormal), pct(r.OverheadSwapped),
			pct(r.Normal.Frac(fault.USDC)), pct(r.Swapped.Frac(fault.USDC)),
			pct(r.MaxOutcomeDelta),
		})
	}
	table := renderTable(
		"Cross-validation (profile/test inputs swapped), Dup + val chks",
		[]string{"benchmark", "overhead", "overhead(swap)", "USDC", "USDC(swap)", "max outcome delta"},
		cells)
	return rows, table, nil
}

// FalsePosRow is one benchmark's fault-free check-failure rate.
type FalsePosRow struct {
	Name         string
	Dyn          int64
	Fails        int64
	InstrPerFail float64
}

// FalsePositivesAll measures the §V false-positive rate (paper: 1 check
// failure per ~235K instructions on average) for Dup + val chks binaries.
func FalsePositivesAll() ([]FalsePosRow, string, error) {
	var rows []FalsePosRow
	var cells [][]string
	var totalDyn, totalFails int64
	for _, w := range workloads.All() {
		p, err := Prepare(w)
		if err != nil {
			return nil, "", err
		}
		rep, err := fault.FalsePositives(w.Target(workloads.Test), p.Variants[core.SchemeDupVal].Module)
		if err != nil {
			return nil, "", err
		}
		r := FalsePosRow{Name: w.Name, Dyn: rep.Dyn, Fails: rep.CheckFails, InstrPerFail: rep.InstrPerFail}
		rows = append(rows, r)
		totalDyn += r.Dyn
		totalFails += r.Fails
		rate := "none"
		if r.Fails > 0 {
			rate = fmt.Sprintf("1 per %.0f", r.InstrPerFail)
		}
		cells = append(cells, []string{w.Name, fmt.Sprintf("%d", r.Dyn), fmt.Sprintf("%d", r.Fails), rate})
	}
	agg := "none"
	if totalFails > 0 {
		agg = fmt.Sprintf("1 per %.0f", float64(totalDyn)/float64(totalFails))
	}
	cells = append(cells, []string{"aggregate", fmt.Sprintf("%d", totalDyn), fmt.Sprintf("%d", totalFails), agg})
	table := renderTable(
		"False positives: value-check failures on fault-free test-input runs",
		[]string{"benchmark", "dynamic instrs", "check fails", "rate"},
		cells)
	return rows, table, nil
}
