// Package experiments regenerates every table and figure of the paper's
// evaluation on the reproduced stack: it compiles each benchmark, profiles
// it on its training input, builds the protected variants (Dup only,
// Dup + val chks, full duplication), runs fault-injection campaigns, and
// renders the same rows/series the paper reports.
package experiments

import (
	"context"
	"fmt"
	"math"
	"sync"

	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/ir"
	"repro/internal/profile"
	"repro/internal/vm"
	"repro/internal/workloads"
)

// Techniques evaluated by Prepare: every registered protection scheme (the
// paper's four configurations first, then extensions). Registering a scheme
// makes a protected variant, its fault-free timing, and campaign support
// available to every experiment with no further wiring.
var Techniques = core.SchemeNames()

// Variant is one protected build of one workload.
type Variant struct {
	Mode   string
	Module *ir.Module
	Stats  *core.Stats
}

// Prepared caches everything derivable without fault injection for one
// workload: the compiled module, its training profile, and all variants.
type Prepared struct {
	Workload *workloads.Workload
	Profile  *profile.Data
	Variants map[string]*Variant
	// Golden cycle counts per mode on the test input (Figure 12).
	Cycles map[string]int64
	Dyn    map[string]int64
}

var (
	prepMu    sync.Mutex
	prepCache = map[string]*Prepared{}
)

// Prepare compiles, profiles and protects one workload (cached).
func Prepare(w *workloads.Workload) (*Prepared, error) {
	prepMu.Lock()
	defer prepMu.Unlock()
	if p, ok := prepCache[w.Name]; ok {
		return p, nil
	}
	mod, err := w.Compile()
	if err != nil {
		return nil, err
	}

	// Value profiling on the training input (one-time offline step, §III-C1).
	mach, err := vm.New(mod.Clone(), vm.DefaultConfig())
	if err != nil {
		return nil, err
	}
	if err := w.Bind(mach, workloads.Train); err != nil {
		return nil, err
	}
	mach.Reset()
	col := profile.NewCollector(profile.DefaultBins)
	if res := mach.Run(vm.RunOptions{Profiler: col}); res.Trap != nil {
		return nil, fmt.Errorf("%s: profiling trapped: %v", w.Name, res.Trap)
	}

	p := &Prepared{
		Workload: w,
		Profile:  col.Data(),
		Variants: map[string]*Variant{},
		Cycles:   map[string]int64{},
		Dyn:      map[string]int64{},
	}
	for _, mode := range Techniques {
		m := mod.Clone()
		var prof *profile.Data
		if sch, err := core.ParseScheme(mode); err == nil && sch.NeedsProfile() {
			prof = p.Profile
		}
		stats, err := core.Protect(m, mode, prof, core.DefaultParams())
		if err != nil {
			return nil, fmt.Errorf("%s/%s: %w", w.Name, mode, err)
		}
		p.Variants[mode] = &Variant{Mode: mode, Module: m, Stats: stats}

		// Fault-free timing on the test input.
		tm, err := vm.New(m, vm.DefaultConfig())
		if err != nil {
			return nil, err
		}
		if err := w.Bind(tm, workloads.Test); err != nil {
			return nil, err
		}
		tm.Reset()
		res := tm.Run(vm.RunOptions{CountChecks: true})
		if res.Trap != nil {
			return nil, fmt.Errorf("%s/%s: timing run trapped: %v", w.Name, mode, res.Trap)
		}
		p.Cycles[mode] = res.Cycles
		p.Dyn[mode] = res.Dyn
	}
	prepCache[w.Name] = p
	return p, nil
}

// Overhead returns the runtime overhead of mode vs the original build.
func (p *Prepared) Overhead(mode string) float64 {
	base := p.Cycles[core.SchemeOriginal]
	if base == 0 {
		return 0
	}
	return float64(p.Cycles[mode])/float64(base) - 1
}

// Campaign runs a fault campaign for one workload/mode pair on the given
// input kind.
func Campaign(p *Prepared, mode string, kind workloads.InputKind, cfg fault.Config) (*fault.Report, error) {
	return fault.Run(context.Background(), p.Workload.Target(kind), p.Variants[mode].Module, core.Title(mode), cfg)
}

// GeoMean returns the geometric mean of 1+x values minus 1 (for overheads)
// — the conventional way to average overhead factors.
func GeoMean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	prod := 1.0
	for _, x := range xs {
		prod *= 1 + x
	}
	return math.Pow(prod, 1/float64(len(xs))) - 1
}

// Mean returns the arithmetic mean.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}
