package experiments

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/workloads"
)

// tinyCfg keeps test campaigns fast; statistical assertions below are only
// directional.
func tinyCfg() fault.Config {
	cfg := fault.DefaultConfig()
	cfg.Trials = 60
	return cfg
}

func TestTableIListsAllBenchmarks(t *testing.T) {
	out := TableI()
	for _, name := range workloads.Names() {
		if !strings.Contains(out, name) {
			t.Errorf("Table I missing %s", name)
		}
	}
	if !strings.Contains(out, "PSNR") || !strings.Contains(out, "Classification error") {
		t.Error("Table I missing fidelity measures")
	}
}

func TestTableIIRendersConfig(t *testing.T) {
	out := TableII()
	for _, want := range []string{"Issue width", "2", "cache", "predictor"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table II missing %q:\n%s", want, out)
		}
	}
}

func TestFig10StaticStats(t *testing.T) {
	rows, table, err := Fig10()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 13 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.StateVars <= 0 {
			t.Errorf("%s: no state variables", r.Name)
		}
		if r.Duplicated <= 0 {
			t.Errorf("%s: nothing duplicated", r.Name)
		}
		if r.Duplicated > 0.5 {
			t.Errorf("%s: duplicated fraction %.2f too high (paper max 11.4%%)", r.Name, r.Duplicated)
		}
	}
	if !strings.Contains(table, "mean") {
		t.Error("missing mean row")
	}
}

func TestFig12OverheadShape(t *testing.T) {
	rows, table, err := Fig12()
	if err != nil {
		t.Fatal(err)
	}
	var dup, val, full []float64
	for _, r := range rows {
		if r.DupOnly < 0 || r.FullDup < 0 {
			t.Errorf("%s: negative overhead %v/%v", r.Name, r.DupOnly, r.FullDup)
		}
		dup = append(dup, r.DupOnly)
		val = append(val, r.DupVal)
		full = append(full, r.FullDup)
	}
	mDup, mVal, mFull := Mean(dup), Mean(val), Mean(full)
	t.Logf("mean overheads: dup=%.1f%% dup+val=%.1f%% full=%.1f%%", 100*mDup, 100*mVal, 100*mFull)
	// Paper shape: DupOnly (7.6%) < DupVal (19.5%) < FullDup (57%).
	if !(mDup < mFull && mVal < mFull) {
		t.Errorf("full duplication is not the most expensive: %v %v %v", mDup, mVal, mFull)
	}
	if mDup > mVal {
		t.Errorf("mean DupOnly overhead %v exceeds DupVal %v", mDup, mVal)
	}
	_ = table
}

func TestFig2SharesSumToOne(t *testing.T) {
	rows, table, err := Fig2(tinyCfg())
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.SDCRate > 0 {
			sum := r.ASDCShare + r.USDCLargeShare + r.USDCSmallShare
			if sum < 0.999 || sum > 1.001 {
				t.Errorf("%s: SDC shares sum to %v", r.Name, sum)
			}
		}
	}
	if !strings.Contains(table, "ASDC") {
		t.Error("table missing ASDC column")
	}
}

func TestFig11And13Directional(t *testing.T) {
	cfg := tinyCfg()
	rows11, _, err := Fig11(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Aggregate USDC by mode.
	usdc := map[string]int{}
	trials := map[string]int{}
	sw := map[string]int{}
	for _, r := range rows11 {
		usdc[r.Mode] += r.Tally.Count[fault.USDC]
		trials[r.Mode] += r.Tally.N
		sw[r.Mode] += r.Tally.Count[fault.SWDetect]
	}
	if sw[core.SchemeOriginal] != 0 {
		t.Error("original binaries produced SWDetects")
	}
	if sw[core.SchemeDup] == 0 || sw[core.SchemeDupVal] == 0 {
		t.Error("protected binaries produced no SWDetects")
	}
	// Directional: protection must not increase aggregate USDCs.
	if usdc[core.SchemeDupVal] > usdc[core.SchemeOriginal] {
		t.Errorf("DupVal USDCs %d > original %d", usdc[core.SchemeDupVal], usdc[core.SchemeOriginal])
	}
	t.Logf("aggregate USDC: orig=%d dup=%d dup+val=%d (of %d trials each)",
		usdc[core.SchemeOriginal], usdc[core.SchemeDup], usdc[core.SchemeDupVal], trials[core.SchemeOriginal])

	rows13, _, err := Fig13(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows13 {
		if r.SDC+1e-9 < r.ASDC+r.USDC {
			t.Errorf("%s/%s: SDC %v < ASDC+USDC %v", r.Name, r.Mode, r.SDC, r.ASDC+r.USDC)
		}
	}
}

func TestFig1Narrative(t *testing.T) {
	cfg := tinyCfg()
	cfg.Trials = 200
	out, err := Fig1(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "no fault") {
		t.Fatalf("unexpected Fig1 output:\n%s", out)
	}
}

func TestFalsePositivesAll(t *testing.T) {
	rows, table, err := FalsePositivesAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 13 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.Fails > 0 && r.InstrPerFail < 100 {
			t.Errorf("%s: false positive every %.0f instructions is uselessly noisy", r.Name, r.InstrPerFail)
		}
	}
	t.Logf("\n%s", table)
}

func TestCrossValidationDeltasSmall(t *testing.T) {
	cfg := tinyCfg()
	cfg.Trials = 120
	rows, table, err := CrossValidation(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		// Paper: outcome deltas are fractions of a percent; with 120
		// trials, allow a loose statistical bound.
		if r.MaxOutcomeDelta > 0.25 {
			t.Errorf("%s: outcome delta %.2f implausibly large", r.Name, r.MaxOutcomeDelta)
		}
	}
	t.Logf("\n%s", table)
}

func TestFullDupUSDC(t *testing.T) {
	v, err := FullDupUSDC(tinyCfg())
	if err != nil {
		t.Fatal(err)
	}
	if v < 0 || v > 0.2 {
		t.Fatalf("full-dup USDC rate %v out of plausible range", v)
	}
}

func TestGeoMeanAndMean(t *testing.T) {
	if got := GeoMean([]float64{0.1, 0.1}); got < 0.0999 || got > 0.1001 {
		t.Errorf("GeoMean uniform = %v", got)
	}
	// geomean of overheads 0% and 110%: sqrt(1.0*2.1)-1 ~ 0.4491
	if got := GeoMean([]float64{0, 1.1}); got < 0.449 || got > 0.45 {
		t.Errorf("GeoMean mixed = %v", got)
	}
	if GeoMean(nil) != 0 || Mean(nil) != 0 {
		t.Error("empty inputs should give 0")
	}
	if got := Mean([]float64{1, 2, 3}); got != 2 {
		t.Errorf("Mean = %v", got)
	}
}
