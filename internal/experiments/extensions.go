package experiments

import (
	"context"
	"fmt"

	"repro/internal/cfc"
	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/ir"
	"repro/internal/profile"
	"repro/internal/vm"
	"repro/internal/workloads"
)

// Extension experiments beyond the paper's evaluation proper:
//   - branch-target faults + signature-based control-flow checking (the
//     combination §IV-C proposes with reference [24]);
//   - multi-input profiling (§V: "the false positive rate can be further
//     reduced by combining profiling from multiple inputs").

// cfcWorkloads keeps the branch-fault experiment affordable.
var cfcWorkloads = []string{"segm", "g721dec", "kmeans"}

// CFCRow is one benchmark/configuration outcome under branch-target faults.
type CFCRow struct {
	Name   string
	Config string
	Tally  fault.Tally
}

// BranchFaults evaluates branch-target fault coverage for unprotected,
// Dup+val-chks, and Dup+val-chks+CFC builds.
func BranchFaults(cfg fault.Config) ([]CFCRow, string, error) {
	cfg.Model = fault.ModelBranchTarget
	var rows []CFCRow
	var cells [][]string
	for _, name := range cfcWorkloads {
		w := workloads.ByName(name)
		p, err := Prepare(w)
		if err != nil {
			return nil, "", err
		}
		dupval := p.Variants[core.SchemeDupVal].Module

		withCFC := dupval.Clone()
		if _, _, err := cfc.Protect(withCFC, 1_000_000); err != nil {
			return nil, "", err
		}

		configs := []struct {
			label string
			mod   *ir.Module
		}{
			{"Original", p.Variants[core.SchemeOriginal].Module},
			{"Dup + val chks", dupval},
			{"Dup + val chks + CFC", withCFC},
		}
		for _, c := range configs {
			rep, err := fault.Run(context.Background(), w.Target(workloads.Test), c.mod, c.label, cfg)
			if err != nil {
				return nil, "", err
			}
			rows = append(rows, CFCRow{Name: name, Config: c.label, Tally: rep.Tally})
			ta := rep.Tally
			cells = append(cells, []string{
				name, c.label,
				pct(ta.Frac(fault.Masked)), pct(ta.Frac(fault.HWDetect)),
				pct(ta.Frac(fault.SWDetect)), pct(ta.Frac(fault.Failure)),
				pct(ta.Frac(fault.USDC)), pct(ta.Coverage()),
				fmt.Sprintf("%d", ta.SWDetectCFC),
			})
		}
	}
	table := renderTable(
		"Extension: branch-target faults with signature-based control-flow checking",
		[]string{"benchmark", "configuration", "Masked", "HWDetect", "SWDetect", "Failure", "USDC", "coverage", "CFC detections"},
		cells)
	return rows, table, nil
}

// MultiProfileRow compares single- versus multi-input profiling.
type MultiProfileRow struct {
	Name                    string
	ChecksSingle            int
	ChecksMulti             int
	FailsSingle, FailsMulti int64
}

// MultiInputProfiling implements the paper's §V suggestion: profile on two
// inputs, insert checks only from the merged (more stable) profiles, and
// compare fault-free false-positive counts on the test input.
func MultiInputProfiling() ([]MultiProfileRow, string, error) {
	var rows []MultiProfileRow
	var cells [][]string
	for _, w := range workloads.All() {
		mod, err := w.Compile()
		if err != nil {
			return nil, "", err
		}
		collect := func(kind workloads.InputKind) (*profile.Data, error) {
			mach, err := vm.New(mod.Clone(), vm.DefaultConfig())
			if err != nil {
				return nil, err
			}
			if err := w.Bind(mach, kind); err != nil {
				return nil, err
			}
			mach.Reset()
			col := profile.NewCollector(profile.DefaultBins)
			if res := mach.Run(vm.RunOptions{Profiler: col}); res.Trap != nil {
				return nil, fmt.Errorf("%s: profiling trapped: %v", w.Name, res.Trap)
			}
			return col.Data(), nil
		}
		single, err := collect(workloads.Train)
		if err != nil {
			return nil, "", err
		}
		multi, err := collect(workloads.Train)
		if err != nil {
			return nil, "", err
		}
		second, err := collect(workloads.Test) // second profiling input
		if err != nil {
			return nil, "", err
		}
		multi.Merge(second)

		// False positives are measured on a held-out third input neither
		// profile has seen.
		build := func(prof *profile.Data) (int, int64, error) {
			m := mod.Clone()
			st, err := core.Protect(m, core.SchemeDupVal, prof, core.DefaultParams())
			if err != nil {
				return 0, 0, err
			}
			rep, err := fault.FalsePositives(w.Target(workloads.Cross), m)
			if err != nil {
				return 0, 0, err
			}
			return st.ValueChecks, rep.CheckFails, nil
		}
		cs, fs, err := build(single)
		if err != nil {
			return nil, "", err
		}
		cm, fm, err := build(multi)
		if err != nil {
			return nil, "", err
		}
		rows = append(rows, MultiProfileRow{Name: w.Name, ChecksSingle: cs, ChecksMulti: cm, FailsSingle: fs, FailsMulti: fm})
		cells = append(cells, []string{
			w.Name,
			fmt.Sprintf("%d", cs), fmt.Sprintf("%d", fs),
			fmt.Sprintf("%d", cm), fmt.Sprintf("%d", fm),
		})
	}
	table := renderTable(
		"Extension: multi-input profiling (checks and fault-free check failures)",
		[]string{"benchmark", "checks (1 input)", "false pos (1)", "checks (2 inputs)", "false pos (2)"},
		cells)
	return rows, table, nil
}
