package experiments

import (
	"strings"
	"testing"

	"repro/internal/fault"
)

func TestBranchFaultsCFCImprovesCoverage(t *testing.T) {
	cfg := fault.DefaultConfig()
	cfg.Trials = 120
	rows, table, err := BranchFaults(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(cfcWorkloads)*3 {
		t.Fatalf("rows = %d", len(rows))
	}
	// Per benchmark: the CFC build must beat the unprotected build's
	// coverage and detect via CFC checks.
	byName := map[string]map[string]fault.Tally{}
	for _, r := range rows {
		if byName[r.Name] == nil {
			byName[r.Name] = map[string]fault.Tally{}
		}
		byName[r.Name][r.Config] = r.Tally
	}
	for name, m := range byName {
		orig := m["Original"]
		cfcT := m["Dup + val chks + CFC"]
		if cfcT.SWDetectCFC == 0 {
			t.Errorf("%s: no CFC detections under branch faults", name)
		}
		if cfcT.Coverage() < orig.Coverage() {
			t.Errorf("%s: CFC coverage %.2f below original %.2f", name, cfcT.Coverage(), orig.Coverage())
		}
		if orig.SWDetectCFC != 0 {
			t.Errorf("%s: original build reported CFC detections", name)
		}
	}
	if !strings.Contains(table, "CFC detections") {
		t.Error("table missing CFC column")
	}
}

func TestMultiInputProfilingReducesFalsePositives(t *testing.T) {
	rows, table, err := MultiInputProfiling()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 13 {
		t.Fatalf("rows = %d", len(rows))
	}
	var singleFails, multiFails int64
	for _, r := range rows {
		singleFails += r.FailsSingle
		multiFails += r.FailsMulti
	}
	// The paper's claim is directional: merged profiles give more stable
	// invariants, so aggregate false positives must not increase.
	if multiFails > singleFails {
		t.Errorf("multi-input profiling increased false positives: %d -> %d", singleFails, multiFails)
	}
	t.Logf("aggregate fault-free check failures on held-out input: %d (1 profile) -> %d (2 profiles)", singleFails, multiFails)
	_ = table
}

func TestRecoveryExperiment(t *testing.T) {
	cfg := fault.DefaultConfig()
	cfg.Trials = 40
	rows, table, err := Recovery(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 13 {
		t.Fatalf("rows = %d", len(rows))
	}
	anyRecovered := false
	for _, r := range rows {
		if r.Overhead < 0 {
			t.Errorf("%s: negative recovery overhead", r.Name)
		}
		if r.Recovered > 0 {
			anyRecovered = true
		}
	}
	if !anyRecovered {
		t.Error("no benchmark recovered any fault")
	}
	if !strings.Contains(table, "residual USDC") {
		t.Error("table missing residual USDC column")
	}
}
