package experiments

import (
	"context"
	"fmt"

	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/workloads"
)

// Fault-model sweep: every registered fault model crossed with every
// registered protection scheme (plus the composed abft+dupval build). The
// paper's evaluation is a single-bit register-flip campaign; this sweep
// asks how far its coverage conclusions carry to heavier fault models —
// memory flips, multi-bit bursts, and the re-arming stuck-at and
// intermittent faults, which defeat one-shot masking by re-forcing the
// corruption for the rest of (or a window of) the run.

// fmWorkloads are the sweep benchmarks: one kernel-dominated workload
// where ABFT checksums bite (kmeans) and one control/table-driven codec
// (g721dec) where they do not.
var fmWorkloads = []string{"kmeans", "g721dec"}

// FaultModelRow is one workload/model/scheme campaign outcome.
type FaultModelRow struct {
	Workload string
	Model    string
	Scheme   string
	Tally    fault.Tally
}

// ci renders a proportion with its Wilson 95% interval.
func ci(successes, n int) string {
	lo, hi := fault.Wilson(successes, n, 1.96)
	p := 0.0
	if n > 0 {
		p = float64(successes) / float64(n)
	}
	return fmt.Sprintf("%.1f%% [%.1f,%.1f]", 100*p, 100*lo, 100*hi)
}

// FaultModelSweep runs the model x scheme campaign matrix and renders the
// per-model coverage/USDC table.
func FaultModelSweep(cfg fault.Config) ([]FaultModelRow, string, error) {
	schemes := append(core.SchemeNames(), "abft+dupval")
	var rows []FaultModelRow
	var cells [][]string
	for _, name := range fmWorkloads {
		w := workloads.ByName(name)
		p, err := Prepare(w)
		if err != nil {
			return nil, "", err
		}
		for _, model := range fault.ModelNames() {
			for _, sch := range schemes {
				variant := p.Variants[sch]
				if variant == nil {
					// Composed schemes are not registry entries; build on demand.
					m := p.Variants[core.SchemeOriginal].Module.Clone()
					stats, err := core.Apply(m, sch, p.Profile, core.DefaultParams())
					if err != nil {
						return nil, "", fmt.Errorf("%s/%s: %w", name, sch, err)
					}
					variant = &Variant{Mode: sch, Module: m, Stats: stats}
				}
				c := cfg
				c.Model = model
				rep, err := fault.Run(context.Background(), w.Target(workloads.Test),
					variant.Module, core.Title(sch), c)
				if err != nil {
					return nil, "", fmt.Errorf("%s/%s/%s: %w", name, model, sch, err)
				}
				ta := rep.Tally
				rows = append(rows, FaultModelRow{
					Workload: name, Model: model, Scheme: sch, Tally: ta,
				})
				covered := ta.Count[fault.Masked] + ta.Count[fault.HWDetect] + ta.Count[fault.SWDetect]
				cells = append(cells, []string{
					name, model, sch,
					ci(covered, ta.N),
					ci(ta.Count[fault.USDC], ta.N),
					fmt.Sprintf("%d", ta.Count[fault.SWDetect]),
					fmt.Sprintf("%d", ta.Count[fault.Failure]),
				})
			}
		}
	}
	table := renderTable(
		"Extension: fault-model sweep (coverage and USDC with Wilson 95% CIs)",
		[]string{"benchmark", "model", "scheme", "coverage", "USDC", "SWDetect", "failure"},
		cells)
	return rows, table, nil
}
