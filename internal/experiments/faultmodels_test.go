package experiments

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/fault"
)

func TestFaultModelSweepShape(t *testing.T) {
	cfg := fault.DefaultConfig()
	cfg.Trials = 10
	rows, table, err := FaultModelSweep(cfg)
	if err != nil {
		t.Fatal(err)
	}
	schemes := len(core.SchemeNames()) + 1 // + abft+dupval
	want := len(fmWorkloads) * len(fault.ModelNames()) * schemes
	if len(rows) != want {
		t.Fatalf("rows = %d, want %d", len(rows), want)
	}
	seen := map[string]bool{}
	for _, r := range rows {
		if r.Tally.N != cfg.Trials {
			t.Errorf("%s/%s/%s: N = %d, want %d", r.Workload, r.Model, r.Scheme, r.Tally.N, cfg.Trials)
		}
		seen[r.Model] = true
	}
	for _, m := range fault.ModelNames() {
		if !seen[m] {
			t.Errorf("model %s missing from sweep rows", m)
		}
		if !strings.Contains(table, m) {
			t.Errorf("table missing model %s", m)
		}
	}
	if !strings.Contains(table, "abft+dupval") {
		t.Error("table missing the composed abft+dupval scheme")
	}
}
