package experiments

import (
	"fmt"
	"strings"
	"sync"

	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/vm"
	"repro/internal/workloads"
)

// campaign cache so figures sharing campaigns (2, 11, 13) reuse runs.
var (
	campMu    sync.Mutex
	campCache = map[string]*fault.Report{}
)

// cachedCampaign runs (or reuses) a campaign on the test input.
func cachedCampaign(p *Prepared, mode string, cfg fault.Config) (*fault.Report, error) {
	key := fmt.Sprintf("%s|%s|%d|%d", p.Workload.Name, mode, cfg.Trials, cfg.Seed)
	campMu.Lock()
	if r, ok := campCache[key]; ok {
		campMu.Unlock()
		return r, nil
	}
	campMu.Unlock()
	r, err := Campaign(p, mode, workloads.Test, cfg)
	if err != nil {
		return nil, err
	}
	campMu.Lock()
	campCache[key] = r
	campMu.Unlock()
	return r, nil
}

// TableI renders the benchmark inventory.
func TableI() string {
	headers := []string{"Benchmark (Suite)", "Description (Category)", "Inputs", "Fidelity Measure (Threshold)"}
	var rows [][]string
	for _, w := range workloads.All() {
		rows = append(rows, []string{
			fmt.Sprintf("%s (%s)", w.Name, w.Suite),
			fmt.Sprintf("%s (%s)", w.Desc, w.Category),
			w.InputDesc,
			w.Judge.Describe(),
		})
	}
	return renderTable("Table I: Benchmarks and fidelity measures", headers, rows)
}

// TableII renders the simulated machine configuration.
func TableII() string {
	t := vm.DefaultTiming()
	c := vm.DefaultConfig()
	headers := []string{"Parameter", "Value"}
	rows := [][]string{
		{"Simulation configuration", "interpreted SSA IR, dependence-aware issue model"},
		{"Issue width", fmt.Sprintf("%d", t.IssueWidth)},
		{"Int ALU / Mul / Div latency", fmt.Sprintf("%d / %d / %d cycles", t.LatInt, t.LatMul, t.LatDiv)},
		{"FP Add / Mul / Div latency", fmt.Sprintf("%d / %d / %d cycles", t.LatFAdd, t.LatFMul, t.LatFDiv)},
		{"L1-D cache", fmt.Sprintf("%d lines x %d words, direct mapped", t.CacheLines, t.CacheLineWords)},
		{"Load latency / miss penalty", fmt.Sprintf("%d / %d cycles", t.LatLoad, t.MissPenalty)},
		{"Branch predictor", fmt.Sprintf("2-bit, %d entries; %d-cycle mispredict", t.PredictorSlots, t.BranchPenalty)},
		{"Stack / watchdog", fmt.Sprintf("%d words / %d dynamic instructions", c.StackWords, c.MaxDyn)},
	}
	return renderTable("Table II: Simulated machine (gem5 ARMv7-a stand-in)", headers, rows)
}

// Fig1 reproduces the Figure 1 narrative: fault-free vs imperceptibly
// corrupted vs unacceptably corrupted jpegdec outputs, reported as PSNR.
func Fig1(cfg fault.Config) (string, error) {
	p, err := Prepare(workloads.ByName("jpegdec"))
	if err != nil {
		return "", err
	}
	rep, err := cachedCampaign(p, core.SchemeOriginal, cfg)
	if err != nil {
		return "", err
	}
	var asdc, usdc *fault.Trial
	for i := range rep.Trials {
		tr := &rep.Trials[i]
		if !tr.SDC {
			continue
		}
		if tr.Acceptable && asdc == nil {
			asdc = tr
		}
		if !tr.Acceptable && usdc == nil {
			usdc = tr
		}
	}
	var b strings.Builder
	b.WriteString("Figure 1: jpegdec outputs under injected faults (PSNR vs fault-free)\n")
	b.WriteString("  (a) no fault:            PSNR = +Inf dB (bit exact)\n")
	if asdc != nil {
		fmt.Fprintf(&b, "  (b) imperceptible fault: PSNR = %.1f dB (>= 30 dB: acceptable)\n", asdc.Fidelity)
	} else {
		b.WriteString("  (b) imperceptible fault: none observed in this campaign\n")
	}
	if usdc != nil {
		fmt.Fprintf(&b, "  (c) unacceptable fault:  PSNR = %.1f dB (< 30 dB: USDC)\n", usdc.Fidelity)
	} else {
		b.WriteString("  (c) unacceptable fault:  none observed in this campaign\n")
	}
	return b.String(), nil
}

// Fig2Row is one benchmark's SDC decomposition on the unmodified binary.
type Fig2Row struct {
	Name           string
	SDCRate        float64 // SDCs / trials
	ASDCShare      float64 // of SDCs
	USDCLargeShare float64 // of SDCs
	USDCSmallShare float64 // of SDCs
}

// Fig2 decomposes SDCs of unmodified applications into acceptable SDCs and
// unacceptable SDCs due to large/small value changes.
func Fig2(cfg fault.Config) ([]Fig2Row, string, error) {
	var rows []Fig2Row
	var cells [][]string
	var meanASDC, meanLarge, meanSmall, meanSDC []float64
	for _, w := range workloads.All() {
		p, err := Prepare(w)
		if err != nil {
			return nil, "", err
		}
		rep, err := cachedCampaign(p, core.SchemeOriginal, cfg)
		if err != nil {
			return nil, "", err
		}
		ta := rep.Tally
		r := Fig2Row{Name: w.Name, SDCRate: float64(ta.SDC) / float64(ta.N)}
		if ta.SDC > 0 {
			r.ASDCShare = float64(ta.ASDC) / float64(ta.SDC)
			r.USDCLargeShare = float64(ta.USDCLarge) / float64(ta.SDC)
			r.USDCSmallShare = float64(ta.USDCSmall) / float64(ta.SDC)
		}
		rows = append(rows, r)
		meanSDC = append(meanSDC, r.SDCRate)
		meanASDC = append(meanASDC, r.ASDCShare)
		meanLarge = append(meanLarge, r.USDCLargeShare)
		meanSmall = append(meanSmall, r.USDCSmallShare)
		cells = append(cells, []string{w.Name, pct(r.SDCRate), pct(r.ASDCShare), pct(r.USDCLargeShare), pct(r.USDCSmallShare)})
	}
	cells = append(cells, []string{"mean", pct(Mean(meanSDC)), pct(Mean(meanASDC)), pct(Mean(meanLarge)), pct(Mean(meanSmall))})
	table := renderTable(
		"Figure 2: SDC breakdown on unmodified binaries (shares of total SDCs)",
		[]string{"benchmark", "SDC rate", "ASDC", "USDC large-chg", "USDC small-chg"},
		cells)
	return rows, table, nil
}

// Fig10Row is one benchmark's static protection statistics.
type Fig10Row struct {
	Name        string
	StateVars   float64
	Duplicated  float64
	ValueChecks float64
	TotalInstrs int
}

// Fig10 reports state variables, duplicated instructions and value checks
// as fractions of static IR instructions (Dup + val chks build).
func Fig10() ([]Fig10Row, string, error) {
	var rows []Fig10Row
	var cells [][]string
	var fs, fd, fv []float64
	for _, w := range workloads.All() {
		p, err := Prepare(w)
		if err != nil {
			return nil, "", err
		}
		st := p.Variants[core.SchemeDupVal].Stats
		r := Fig10Row{
			Name:        w.Name,
			StateVars:   st.FracStateVars(),
			Duplicated:  st.FracDuplicated(),
			ValueChecks: st.FracValueChecks(),
			TotalInstrs: st.TotalInstrs,
		}
		rows = append(rows, r)
		fs = append(fs, r.StateVars)
		fd = append(fd, r.Duplicated)
		fv = append(fv, r.ValueChecks)
		cells = append(cells, []string{w.Name, fmt.Sprintf("%d", r.TotalInstrs), pct(r.StateVars), pct(r.Duplicated), pct(r.ValueChecks)})
	}
	cells = append(cells, []string{"mean", "", pct(Mean(fs)), pct(Mean(fd)), pct(Mean(fv))})
	table := renderTable(
		"Figure 10: static protection statistics (fraction of static IR instructions)",
		[]string{"benchmark", "static instrs", "state vars", "duplicated", "value checks"},
		cells)
	return rows, table, nil
}

// Fig11Row is one benchmark/technique outcome classification.
type Fig11Row struct {
	Name  string
	Mode  string
	Tally fault.Tally
}

// fig11Modes are the three bars per benchmark in Figure 11.
var fig11Modes = []string{core.SchemeOriginal, core.SchemeDup, core.SchemeDupVal}

// Fig11 classifies injected faults for Original, Dup only and Dup+val chks.
// The full-duplication USDC comparison quoted in §V is appended.
func Fig11(cfg fault.Config) ([]Fig11Row, string, error) {
	var rows []Fig11Row
	var cells [][]string
	means := map[string]*[5]float64{}
	cov := map[string][]float64{}
	for _, mode := range fig11Modes {
		means[mode] = &[5]float64{}
	}
	for _, w := range workloads.All() {
		p, err := Prepare(w)
		if err != nil {
			return nil, "", err
		}
		for _, mode := range fig11Modes {
			rep, err := cachedCampaign(p, mode, cfg)
			if err != nil {
				return nil, "", err
			}
			rows = append(rows, Fig11Row{Name: w.Name, Mode: mode, Tally: rep.Tally})
			ta := rep.Tally
			cells = append(cells, []string{
				w.Name, core.Title(mode),
				pct(ta.Frac(fault.Masked)), pct(ta.Frac(fault.HWDetect)),
				pct(ta.Frac(fault.SWDetect)), pct(ta.Frac(fault.Failure)),
				pct(ta.Frac(fault.USDC)), pct(ta.Coverage()),
			})
			for o := 0; o < 5; o++ {
				means[mode][o] += ta.Frac(fault.Outcome(o))
			}
			cov[mode] = append(cov[mode], ta.Coverage())
		}
	}
	n := float64(len(workloads.All()))
	for _, mode := range fig11Modes {
		cells = append(cells, []string{
			"mean", core.Title(mode),
			pct(means[mode][0] / n), pct(means[mode][1] / n),
			pct(means[mode][2] / n), pct(means[mode][3] / n),
			pct(means[mode][4] / n), pct(Mean(cov[mode])),
		})
	}
	table := renderTable(
		"Figure 11: fault outcome classification (percent of injected faults)",
		[]string{"benchmark", "technique", "Masked", "HWDetect", "SWDetect", "Failure", "USDC", "coverage"},
		cells)
	return rows, table, nil
}

// FullDupUSDC reproduces the §V quote: full duplication's mean USDC rate
// (paper: 1.4% at 57% overhead).
func FullDupUSDC(cfg fault.Config) (float64, error) {
	var usdc []float64
	for _, w := range workloads.All() {
		p, err := Prepare(w)
		if err != nil {
			return 0, err
		}
		rep, err := cachedCampaign(p, core.SchemeFullDup, cfg)
		if err != nil {
			return 0, err
		}
		usdc = append(usdc, rep.Tally.Frac(fault.USDC))
	}
	return Mean(usdc), nil
}

// Fig12Row is one benchmark's overheads.
type Fig12Row struct {
	Name    string
	DupOnly float64
	DupVal  float64
	FullDup float64
}

// Fig12 reports runtime overhead per technique (paper means: 7.6%, 19.5%,
// 57%).
func Fig12() ([]Fig12Row, string, error) {
	var rows []Fig12Row
	var cells [][]string
	var od, ov, of []float64
	for _, w := range workloads.All() {
		p, err := Prepare(w)
		if err != nil {
			return nil, "", err
		}
		r := Fig12Row{
			Name:    w.Name,
			DupOnly: p.Overhead(core.SchemeDup),
			DupVal:  p.Overhead(core.SchemeDupVal),
			FullDup: p.Overhead(core.SchemeFullDup),
		}
		rows = append(rows, r)
		od = append(od, r.DupOnly)
		ov = append(ov, r.DupVal)
		of = append(of, r.FullDup)
		cells = append(cells, []string{w.Name, pct(r.DupOnly), pct(r.DupVal), pct(r.FullDup)})
	}
	cells = append(cells, []string{"mean", pct(Mean(od)), pct(Mean(ov)), pct(Mean(of))})
	table := renderTable(
		"Figure 12: runtime overhead vs unmodified binary",
		[]string{"benchmark", "Dup only", "Dup + val chks", "Full duplication"},
		cells)
	return rows, table, nil
}

// Fig13Row is one benchmark/technique SDC decomposition.
type Fig13Row struct {
	Name string
	Mode string
	SDC  float64 // of trials
	ASDC float64 // of trials
	USDC float64 // of trials
}

// Fig13 splits total SDCs into acceptable and unacceptable per technique
// (paper means: SDC 15->9.5->7.3%, USDC 3.4->1.8->1.2%).
func Fig13(cfg fault.Config) ([]Fig13Row, string, error) {
	var rows []Fig13Row
	var cells [][]string
	sums := map[string]*Fig13Row{}
	for _, mode := range fig11Modes {
		sums[mode] = &Fig13Row{}
	}
	for _, w := range workloads.All() {
		p, err := Prepare(w)
		if err != nil {
			return nil, "", err
		}
		for _, mode := range fig11Modes {
			rep, err := cachedCampaign(p, mode, cfg)
			if err != nil {
				return nil, "", err
			}
			ta := rep.Tally
			n := float64(ta.N)
			r := Fig13Row{
				Name: w.Name, Mode: mode,
				SDC:  float64(ta.SDC) / n,
				ASDC: float64(ta.ASDC) / n,
				USDC: float64(ta.USDCLarge+ta.USDCSmall) / n,
			}
			rows = append(rows, r)
			sums[mode].SDC += r.SDC
			sums[mode].ASDC += r.ASDC
			sums[mode].USDC += r.USDC
			cells = append(cells, []string{w.Name, core.Title(mode), pct2(r.SDC), pct2(r.ASDC), pct2(r.USDC)})
		}
	}
	n := float64(len(workloads.All()))
	for _, mode := range fig11Modes {
		s := sums[mode]
		cells = append(cells, []string{"mean", core.Title(mode), pct2(s.SDC / n), pct2(s.ASDC / n), pct2(s.USDC / n)})
	}
	table := renderTable(
		"Figure 13: SDCs split into acceptable (ASDC) and unacceptable (USDC), percent of injected faults",
		[]string{"benchmark", "technique", "SDC", "ASDC", "USDC"},
		cells)
	return rows, table, nil
}
