package experiments

import (
	"context"
	"fmt"

	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/workloads"
)

// RecoveryRow is one benchmark's outcome under restart recovery (§IV-D).
type RecoveryRow struct {
	Name      string
	Recovered int
	StillUSDC int
	Failures  int
	Overhead  float64 // mean slowdown vs fault-free, incl. re-executions
}

// Recovery runs the detection+restart-recovery pipeline on every benchmark
// with the full scheme (Dup + val chks): every software detection re-runs
// the program, which for transient faults restores the exact output. The
// residual USDC column therefore equals Figure 11's Dup+val-chks USDCs,
// and the overhead column is the end-to-end price of a recovered system.
func Recovery(cfg fault.Config) ([]RecoveryRow, string, error) {
	var rows []RecoveryRow
	var cells [][]string
	var sumOv float64
	totRec, totUSDC := 0, 0
	for _, w := range workloads.All() {
		p, err := Prepare(w)
		if err != nil {
			return nil, "", err
		}
		rep, err := fault.RunWithRecovery(context.Background(), w.Target(workloads.Test), p.Variants[core.SchemeDupVal].Module, "Dup + val chks", cfg)
		if err != nil {
			return nil, "", err
		}
		r := RecoveryRow{
			Name:      w.Name,
			Recovered: rep.Recovered,
			StillUSDC: rep.StillUSDC,
			Failures:  rep.Failures,
			Overhead:  rep.RecoveryOverhead(),
		}
		rows = append(rows, r)
		sumOv += r.Overhead
		totRec += r.Recovered
		totUSDC += r.StillUSDC
		cells = append(cells, []string{
			w.Name, fmt.Sprintf("%d", r.Recovered), fmt.Sprintf("%d", r.StillUSDC),
			fmt.Sprintf("%d", r.Failures), pct(r.Overhead),
		})
	}
	cells = append(cells, []string{"total/mean", fmt.Sprintf("%d", totRec), fmt.Sprintf("%d", totUSDC), "", pct(sumOv / float64(len(rows)))})
	table := renderTable(
		fmt.Sprintf("Recovery (§IV-D): restart on detection, Dup + val chks, %d faults per benchmark", cfg.Trials),
		[]string{"benchmark", "recovered", "residual USDC", "failures", "mean slowdown"},
		cells)
	return rows, table, nil
}
