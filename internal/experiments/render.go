package experiments

import (
	"fmt"
	"strings"
)

// renderTable renders an aligned text table.
func renderTable(title string, headers []string, rows [][]string) string {
	widths := make([]int, len(headers))
	for i, h := range headers {
		widths[i] = len(h)
	}
	for _, r := range rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if title != "" {
		b.WriteString(title + "\n")
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteString("\n")
	}
	line(headers)
	sep := make([]string, len(headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, r := range rows {
		line(r)
	}
	return b.String()
}

func pct(x float64) string  { return fmt.Sprintf("%.1f%%", 100*x) }
func pct2(x float64) string { return fmt.Sprintf("%.2f%%", 100*x) }
