package fault_test

// Campaign throughput benchmarks: the lockstep carrier path against its
// checkpointed-solo twin on a protected workload (high software detection
// keeps post-trigger suffixes short, which is the regime lockstep targets).
// CI runs these as a smoke check; cmd/softft -bench-campaign produces the
// tracked BENCH_campaign.json artifact.

import (
	"context"
	"testing"

	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/ir"
	"repro/internal/workloads"
)

func benchCampaign(b *testing.B, name string, lockstep int) {
	w := workloads.ByName(name)
	prot := protectedForB(b, w, core.SchemeFullDup)
	cfg := fault.DefaultConfig()
	cfg.Trials = 240
	cfg.Workers = 1
	cfg.Lockstep = lockstep
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		if _, err := fault.Run(context.Background(), w.Target(workloads.Test), prot, "FullDup", cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// protectedForB mirrors checkpoint_test.go's protectedFor for benchmarks
// (modes that need no profile).
func protectedForB(b *testing.B, w *workloads.Workload, mode string) *ir.Module {
	b.Helper()
	mod, err := w.Compile()
	if err != nil {
		b.Fatal(err)
	}
	prot := mod.Clone()
	if _, err := core.Protect(prot, mode, nil, core.DefaultParams()); err != nil {
		b.Fatal(err)
	}
	return prot
}

func BenchmarkCampaignSolo(b *testing.B)     { benchCampaign(b, "svm", -1) }
func BenchmarkCampaignLockstep(b *testing.B) { benchCampaign(b, "svm", 1) }
