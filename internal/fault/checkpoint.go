package fault

// Checkpoint-aware campaign scheduling. Every SFI trial is bit-identical to
// the golden run until its fault triggers, so re-executing the golden prefix
// from dyn 0 on each trial wastes — on average — half of every campaign's
// cycles. Instead, one instrumented golden run drops K immutable snapshots
// at interval boundaries (vm.Machine.Snapshot via RunOptions.SuspendAtDyn),
// trials are binned by the snapshot nearest below their pre-drawn trigger
// point, and workers claim whole bins, running each trial as
// restore-snapshot + execute-forward.
//
// Correctness rests on three facts:
//
//  1. The suspend point uses the same eligibility condition as register
//     fault injection (first non-phi instruction whose pre-increment dyn
//     reaches the requested index), so no fault-eligible instruction lies
//     between a requested snapshot index and the actual suspension — a
//     snapshot requested at S serves every trial whose effective trigger is
//     >= S.
//  2. The instrumented run executes with the campaign's DisabledChecks set
//     (and nothing else), exactly like a trial's prefix: disabled checks
//     leave no trace in any counter, so the snapshot state equals the state
//     a from-scratch trial holds at the suspend point, bit for bit.
//  3. Trial randomness is unaffected: triggers are pre-drawn with the same
//     per-trial seed scheme and draw order runTrial uses, and runTrial
//     re-seeds and re-draws them, so binning never perturbs a sequence.

import (
	"fmt"
	"math/rand"

	"repro/internal/ir"
	"repro/internal/vm"
)

const (
	// minSnapInterval is the smallest golden-prefix span worth a snapshot:
	// below this, restore overhead (full memory copy) rivals re-execution.
	minSnapInterval = 20_000
	// maxSnapshots bounds memory held by a campaign's snapshot set.
	maxSnapshots = 32
	// lockstepMaxSnapshots bounds the *automatic* schedule when lockstep
	// batching is on. Solo trials want dense snapshots (each trial re-runs
	// its bin prefix alone), but a lockstep carrier serves every lane a
	// state clone at its exact divergence point, so intra-bin prefix length
	// stops mattering; fewer, larger bins mean more lanes amortizing each
	// carrier advance and less snapshot memory held.
	lockstepMaxSnapshots = 8
	// lockstepAutoMinLanes is the default smallest bin worth a carrier:
	// below it, the carrier's own restore roughly cancels the sharing win.
	lockstepAutoMinLanes = 3
)

// lockstepMinLanes resolves Config.Lockstep to the smallest bin size run in
// lockstep, or 0 when batching is disabled (explicitly, or because the
// campaign lacks the fast engine that carriers require).
func lockstepMinLanes(cfg Config) int {
	if cfg.Lockstep < 0 || cfg.Engine != vm.EngineFast {
		return 0
	}
	if cfg.Lockstep > 0 {
		return cfg.Lockstep
	}
	return lockstepAutoMinLanes
}

// checkpointSchedule returns the dyn indices at which the instrumented
// golden run suspends to capture snapshots, evenly spaced over the golden
// run, or nil when checkpointing is skipped: explicit opt-out
// (cfg.Checkpoints < 0), a non-fast engine (snapshots are a fast-engine
// feature), or a golden run too short to amortize the snapshot overhead.
func checkpointSchedule(cfg Config, goldenDyn int64) []int64 {
	if cfg.Checkpoints < 0 || cfg.Engine != vm.EngineFast {
		return nil
	}
	n := cfg.Checkpoints
	if n == 0 {
		n = int(goldenDyn / minSnapInterval)
		lim := maxSnapshots
		if lockstepMinLanes(cfg) > 0 {
			lim = lockstepMaxSnapshots
		}
		if n > lim {
			n = lim
		}
	}
	if n < 2 {
		return nil
	}
	snapAt := make([]int64, 0, n)
	last := int64(0)
	for k := 0; k < n; k++ {
		s := goldenDyn * int64(k+1) / int64(n+1)
		if s > last {
			snapAt = append(snapAt, s)
			last = s
		}
	}
	if len(snapAt) < 2 {
		return nil
	}
	return snapAt
}

// drawTriggers pre-draws every trial's TriggerDyn for binning, using the
// identical seed scheme and first-draw position as runTrial.
func drawTriggers(cfg Config, goldenDyn int64) []int64 {
	src := rand.NewSource(0)
	rng := rand.New(src)
	triggers := make([]int64, cfg.Trials)
	for i := range triggers {
		src.Seed(seedFor(cfg, i))
		triggers[i] = rng.Int63n(goldenDyn)
	}
	return triggers
}

// The earliest dyn index whose machine state a trial's injection can
// observe is the model's EffectiveTrigger: register and memory faults fire
// at the first fault-eligible instruction with pre-increment dyn >=
// TriggerDyn — the suspend point itself — while branch-target faults fire
// at the first taken branch whose post-increment dyn reaches TriggerDyn,
// i.e. pre-increment TriggerDyn-1.

// takeSnapshots performs the instrumented golden run: one machine executes
// the golden prefix once, suspending at each scheduled dyn index to capture
// an immutable snapshot. Snapshots are shared read-only across workers.
func takeSnapshots(t Target, mod *ir.Module, cfg Config, disabled map[int]bool, maxDyn int64, snapAt []int64) ([]*vm.Snapshot, error) {
	mach, err := newMachine(t, mod, maxDyn, cfg.Engine)
	if err != nil {
		return nil, err
	}
	snaps := make([]*vm.Snapshot, len(snapAt))
	for k, s := range snapAt {
		res := mach.Run(vm.RunOptions{DisabledChecks: disabled, SuspendAtDyn: s, Fuse: fuseMode(cfg)})
		if res.Trap == nil || res.Trap.Kind != vm.TrapSuspended {
			return nil, fmt.Errorf("fault: snapshot run requested suspend at dyn %d, got %v", s, res.Trap)
		}
		if snaps[k], err = mach.Snapshot(); err != nil {
			return nil, err
		}
	}
	return snaps, nil
}

// The checkpoint-aware campaign body lives in resilience.go
// (campaign.runCheckpointed): it bins pending trials by the snapshot
// nearest below their effective trigger and drives each through the same
// supervised runOne path as the from-scratch pool.
