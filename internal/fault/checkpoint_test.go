package fault_test

// Checkpoint-equivalence suite: the checkpointed campaign path (snapshot
// the golden prefix, restore per trial) must be bit-identical to the
// from-scratch path — same Tally, same per-trial records, same golden-run
// statistics — across every workload and protection mode, for register and
// branch-target fault models, and with check counting both enabled and
// squelched. This is the acceptance gate for the checkpoint scheduler.

import (
	"context"
	"testing"

	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/ir"
	"repro/internal/profile"
	"repro/internal/vm"
	"repro/internal/workloads"
)

// protectedFor compiles workload name and applies mode (profiling on the
// training input when the mode needs it).
func protectedFor(t *testing.T, w *workloads.Workload, mode string) *ir.Module {
	t.Helper()
	mod, err := w.Compile()
	if err != nil {
		t.Fatal(err)
	}
	prot := mod.Clone()
	var prof *profile.Data
	if sch, err := core.ParseScheme(mode); err == nil && sch.NeedsProfile() {
		mach, err := vm.New(mod.Clone(), vm.DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		if err := w.Bind(mach, workloads.Train); err != nil {
			t.Fatal(err)
		}
		mach.Reset()
		col := profile.NewCollector(profile.DefaultBins)
		if res := mach.Run(vm.RunOptions{Profiler: col}); res.Trap != nil {
			t.Fatalf("profiling trapped: %v", res.Trap)
		}
		prof = col.Data()
	}
	if _, err := core.Protect(prot, mode, prof, core.DefaultParams()); err != nil {
		t.Fatal(err)
	}
	return prot
}

// diffReports fails the test unless the two campaign reports are
// bit-identical in every field the campaign publishes.
func diffReports(t *testing.T, label string, ckpt, scratch *fault.Report) {
	t.Helper()
	if ckpt.Tally != scratch.Tally {
		t.Fatalf("%s: tallies differ:\nckpt=%+v\nscratch=%+v", label, ckpt.Tally, scratch.Tally)
	}
	if ckpt.GoldenDyn != scratch.GoldenDyn || ckpt.GoldenCycles != scratch.GoldenCycles {
		t.Fatalf("%s: golden stats differ: ckpt=(%d,%d) scratch=(%d,%d)",
			label, ckpt.GoldenDyn, ckpt.GoldenCycles, scratch.GoldenDyn, scratch.GoldenCycles)
	}
	if ckpt.DisabledChecks != scratch.DisabledChecks {
		t.Fatalf("%s: DisabledChecks: ckpt=%d scratch=%d", label, ckpt.DisabledChecks, scratch.DisabledChecks)
	}
	for i := range ckpt.Trials {
		if ckpt.Trials[i] != scratch.Trials[i] {
			t.Fatalf("%s: trial %d differs:\nckpt=%+v\nscratch=%+v",
				label, i, ckpt.Trials[i], scratch.Trials[i])
		}
	}
	// Anomalies must agree in identity (trial, reproducer seed, reason);
	// panic stacks are path-specific by nature and are not compared.
	if len(ckpt.Anomalies) != len(scratch.Anomalies) {
		t.Fatalf("%s: anomaly count: %d vs %d\na=%+v\nb=%+v",
			label, len(ckpt.Anomalies), len(scratch.Anomalies), ckpt.Anomalies, scratch.Anomalies)
	}
	for i := range ckpt.Anomalies {
		a, b := ckpt.Anomalies[i], scratch.Anomalies[i]
		if a.Trial != b.Trial || a.Seed != b.Seed || a.Reason != b.Reason {
			t.Fatalf("%s: anomaly %d differs:\na=%+v\nb=%+v", label, i, a, b)
		}
	}
	if ckpt.Partial != scratch.Partial || ckpt.EarlyStopped != scratch.EarlyStopped {
		t.Fatalf("%s: partial/early-stop flags differ: (%v,%v) vs (%v,%v)",
			label, ckpt.Partial, ckpt.EarlyStopped, scratch.Partial, scratch.EarlyStopped)
	}
}

// checkpointVsScratch runs the same campaign twice — checkpointing forced
// on and forced off — and requires bit-identical reports.
func checkpointVsScratch(t *testing.T, w *workloads.Workload, mod *ir.Module, technique string, cfg fault.Config) {
	t.Helper()
	run := func(ckpt int) *fault.Report {
		c := cfg
		c.Checkpoints = ckpt
		rep, err := fault.Run(context.Background(), w.Target(workloads.Test), mod, technique, c)
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	diffReports(t, w.Name+"/"+technique, run(6), run(-1))
}

// TestCampaignCheckpointEquivalence is the acceptance matrix: all workloads
// × all protection modes, checkpointed vs from-scratch. Under the race
// detector (which runs ~10x slower and is after the snapshot sharing, not
// the matrix breadth) the matrix is trimmed to representative cells.
func TestCampaignCheckpointEquivalence(t *testing.T) {
	modes := core.SchemeNames()
	names := make([]string, 0, 13)
	for _, w := range workloads.All() {
		names = append(names, w.Name)
	}
	if raceEnabled {
		names = []string{"tiff2bw", "g721dec", "svm", "kmeans"}
		modes = []string{core.SchemeOriginal, core.SchemeDupVal}
	}
	for _, name := range names {
		for _, mode := range modes {
			name, mode := name, mode
			t.Run(name+"/"+mode, func(t *testing.T) {
				t.Parallel()
				w := workloads.ByName(name)
				prot := protectedFor(t, w, mode)
				cfg := fault.DefaultConfig()
				cfg.Trials = 12
				checkpointVsScratch(t, w, prot, mode, cfg)
			})
		}
	}
}

// TestCampaignCheckpointEquivalenceBranch covers the branch-target fault
// model, whose trigger fires one dyn index earlier than the register
// model's (the scheduler's effectiveTrigger offset).
func TestCampaignCheckpointEquivalenceBranch(t *testing.T) {
	for _, name := range []string{"kmeans", "g721enc"} {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			w := workloads.ByName(name)
			prot := protectedFor(t, w, core.SchemeDup)
			cfg := fault.DefaultConfig()
			cfg.Trials = 20
			cfg.Model = fault.ModelBranchTarget
			checkpointVsScratch(t, w, prot, "DupOnly", cfg)
		})
	}
}

// TestCampaignEngineEquivalenceBranch extends the fast-vs-tree campaign
// equivalence check to branch-target faults (the engine suite exercises
// the campaign only under FaultRegister).
func TestCampaignEngineEquivalenceBranch(t *testing.T) {
	w := workloads.ByName("kmeans")
	mod, err := w.Compile()
	if err != nil {
		t.Fatal(err)
	}
	run := func(engine vm.EngineKind) *fault.Report {
		cfg := fault.DefaultConfig()
		cfg.Trials = 60
		cfg.Engine = engine
		cfg.Model = fault.ModelBranchTarget
		rep, err := fault.Run(context.Background(), w.Target(workloads.Test), mod.Clone(), "Original", cfg)
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	diffReports(t, "branch", run(vm.EngineFast), run(vm.EngineTree))
}

// TestFalsePositivesEngineEquivalence compares the CountChecks accounting
// path across engines on a DupVal binary whose value checks fire
// fault-free.
func TestFalsePositivesEngineEquivalence(t *testing.T) {
	w := workloads.ByName("svm")
	prot := protectedFor(t, w, core.SchemeDupVal)
	fast, err := fault.FalsePositivesEngine(w.Target(workloads.Test), prot, vm.EngineFast)
	if err != nil {
		t.Fatal(err)
	}
	tree, err := fault.FalsePositivesEngine(w.Target(workloads.Test), prot, vm.EngineTree)
	if err != nil {
		t.Fatal(err)
	}
	if *fast != *tree {
		t.Fatalf("false-positive reports differ:\nfast=%+v\ntree=%+v", *fast, *tree)
	}
}

// TestRecoveryCheckpointEquivalence checks the recovery campaign — which
// restores snapshots both for faulty runs and for restart re-runs — against
// its from-scratch twin.
func TestRecoveryCheckpointEquivalence(t *testing.T) {
	w := workloads.ByName("g721dec")
	prot := protectedFor(t, w, core.SchemeDup)
	run := func(ckpt int) *fault.RecoveryReport {
		cfg := fault.DefaultConfig()
		cfg.Trials = 30
		cfg.Checkpoints = ckpt
		rep, err := fault.RunWithRecovery(context.Background(), w.Target(workloads.Test), prot, "DupOnly", cfg)
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	ckpt, scratch := run(6), run(-1)
	if *ckpt != *scratch {
		t.Fatalf("recovery reports differ:\nckpt=%+v\nscratch=%+v", *ckpt, *scratch)
	}
}
