package fault

import (
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/lang"
	"repro/internal/vm"
)

// convergeSrc is a loop-heavy workload for the convergence fast-forward
// tests: most register corruptions land in short-lived loop temporaries, so
// under FullDup the bulk of trials are masked and re-converge to the golden
// state within an iteration or two of the injection.
const convergeSrc = `
global int out[4];
void main() {
	int acc = 0;
	for (int i = 0; i < 400; i += 1) {
		acc = acc + ((i * 7) & 255);
	}
	out[0] = acc;
}
`

// TestConvergenceShortCircuit drives finishTrialConverging against
// finishTrial across many trials of the same fault stream: every trial's
// record must be bit-identical, and at least some masked trials must have
// actually short-circuited — observable as the machine still being suspended
// (Snapshot succeeds) at a dyn short of the run's end — or the fast-forward
// is dead code.
func TestConvergenceShortCircuit(t *testing.T) {
	mod, err := lang.Compile("converge", convergeSrc)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := core.Protect(mod, core.SchemeFullDup, nil, core.DefaultParams()); err != nil {
		t.Fatal(err)
	}
	target := Target{
		Name:       "converge",
		Output:     "out",
		Bind:       func(m *vm.Machine) error { return nil },
		Measure:    func(golden, test []uint64) float64 { return 0 },
		Acceptable: func(float64) bool { return false },
	}
	cfg := DefaultConfig()

	gm, err := newMachine(target, mod, 0, cfg.Engine)
	if err != nil {
		t.Fatal(err)
	}
	res := gm.Run(vm.RunOptions{})
	if res.Trap != nil {
		t.Fatalf("golden run trapped: %v", res.Trap)
	}
	golden, err := gm.ReadGlobal(target.Output)
	if err != nil {
		t.Fatal(err)
	}
	goldenDyn := res.Dyn
	maxDyn := goldenDyn * cfg.WatchdogFactor

	snapAt := []int64{goldenDyn / 4, goldenDyn / 2, 3 * goldenDyn / 4}
	snaps, err := takeSnapshots(target, mod, cfg, nil, maxDyn, snapAt)
	if err != nil {
		t.Fatal(err)
	}

	solo, err := newMachine(target, mod, maxDyn, cfg.Engine)
	if err != nil {
		t.Fatal(err)
	}
	conv, err := newMachine(target, mod, maxDyn, cfg.Engine)
	if err != nil {
		t.Fatal(err)
	}

	ws := (&campaign{cfg: cfg}).newWorker()
	shortCircuits, masked := 0, 0
	for trial := 0; trial < 60; trial++ {
		p1 := drawPlan(MustModel(cfg.Model), cfg, goldenDyn, trial, ws.src, ws.rng)
		solo.Reset()
		tr1, to1 := finishTrial(solo, p1, target, cfg, golden, nil, time.Time{}, nil)

		p2 := drawPlan(MustModel(cfg.Model), cfg, goldenDyn, trial, ws.src, ws.rng)
		conv.Reset()
		tr2, to2 := finishTrial(conv, p2, target, cfg, golden, nil, time.Time{}, snaps)

		if tr1 != tr2 || to1 != to2 {
			t.Fatalf("trial %d: solo %+v (timeout %v) vs converging %+v (timeout %v)",
				trial, tr1, to1, tr2, to2)
		}
		if tr1.Outcome == Masked {
			masked++
		}
		// A machine that short-circuited is still suspended mid-run; only a
		// suspended fast-engine machine can be snapshotted.
		if _, err := conv.Snapshot(); err == nil {
			if tr2.Outcome != Masked {
				t.Fatalf("trial %d: short-circuited with outcome %v", trial, tr2.Outcome)
			}
			shortCircuits++
		}
	}
	if masked == 0 {
		t.Fatal("workload produced no masked trials; the test exercises nothing")
	}
	if shortCircuits == 0 {
		t.Fatal("no trial short-circuited through a snapshot crossing")
	}
	t.Logf("%d/60 trials masked, %d short-circuited", masked, shortCircuits)
}
