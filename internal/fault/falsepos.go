package fault

import (
	"fmt"

	"repro/internal/ir"
	"repro/internal/vm"
)

// FalsePositiveReport quantifies value-check failures in the absence of
// faults (paper §V "Impact of False Positives": 1 failure per ~235K
// instructions on average).
type FalsePositiveReport struct {
	Workload     string
	Dyn          int64
	CheckFails   int64
	FailingIDs   int // distinct checks that fired
	InstrPerFail float64
}

// FalsePositives runs the protected module fault-free on the target's
// input and counts expected-value check failures.
func FalsePositives(t Target, mod *ir.Module) (*FalsePositiveReport, error) {
	return FalsePositivesEngine(t, mod, vm.EngineFast)
}

// FalsePositivesEngine is FalsePositives on an explicit execution engine,
// letting equivalence tests compare check-failure accounting across engines.
func FalsePositivesEngine(t Target, mod *ir.Module, engine vm.EngineKind) (*FalsePositiveReport, error) {
	mach, err := newMachine(t, mod, 0, engine)
	if err != nil {
		return nil, err
	}
	res := mach.Run(vm.RunOptions{CountChecks: true})
	if res.Trap != nil {
		return nil, fmt.Errorf("fault: fault-free run trapped: %v", res.Trap)
	}
	rep := &FalsePositiveReport{
		Workload:   t.Name,
		Dyn:        res.Dyn,
		CheckFails: res.CheckFails,
		FailingIDs: len(res.PerCheckFails),
	}
	if res.CheckFails > 0 {
		rep.InstrPerFail = float64(res.Dyn) / float64(res.CheckFails)
	}
	return rep, nil
}

// CheckStats summarizes static check population of a protected module.
type CheckStats struct {
	DupChecks   int
	ValueChecks int
	ABFTChecks  int
}

// CountChecks tallies check instructions in a module.
func CountChecks(m *ir.Module) CheckStats {
	var cs CheckStats
	for _, f := range m.Funcs {
		f.Instrs(func(in *ir.Instr) bool {
			switch in.Check {
			case ir.CheckDup:
				cs.DupChecks++
			case ir.CheckValue:
				cs.ValueChecks++
			case ir.CheckABFT:
				cs.ABFTChecks++
			}
			return true
		})
	}
	return cs
}
