package fault

import (
	"testing"

	"repro/internal/core"
	"repro/internal/ir"
	"repro/internal/lang"
	"repro/internal/profile"
	"repro/internal/vm"
)

// falseposSrc is a crafted workload whose single hot value (in[i], constant
// across the loop) dominates the profile, so check planning with default
// coverage thresholds installs expected-value/range checks keyed to the
// training input. N=64 iterations clears the planner's minimum-sample bar.
const falseposSrc = `
global int in[64];
global int out[64];
void main() {
	for (int i = 0; i < 64; i += 1) {
		out[i & 63] = (in[i & 63] * 3) + 7;
	}
}
`

// protectOn compiles falseposSrc, profiles it on train, and returns a
// DupVal-protected module plus a Target bound to the given run input.
func protectOn(t *testing.T, train, run []int64) (Target, *ir.Module) {
	t.Helper()
	mod, err := lang.Compile("falsepos", falseposSrc)
	if err != nil {
		t.Fatal(err)
	}
	mach, err := vm.New(mod, vm.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := mach.BindInputInts("in", train); err != nil {
		t.Fatal(err)
	}
	mach.Reset()
	col := profile.NewCollector(profile.DefaultBins)
	if res := mach.Run(vm.RunOptions{Profiler: col}); res.Trap != nil {
		t.Fatal(res.Trap)
	}
	prot := mod.Clone()
	if _, err := core.Protect(prot, core.SchemeDupVal, col.Data(), core.DefaultParams()); err != nil {
		t.Fatal(err)
	}
	tgt := Target{
		Name:   "falsepos-crafted",
		Output: "out",
		Bind: func(m *vm.Machine) error {
			return m.BindInputInts("in", run)
		},
	}
	return tgt, prot
}

func constInput(v int64) []int64 {
	in := make([]int64, 64)
	for i := range in {
		in[i] = v
	}
	return in
}

// TestFalsePositivesZeroOnTrainingInput: running on the very input the
// profile was collected from must report zero check failures — anything
// else is the class of bug the difftest oracle's invariant 3 hunts.
func TestFalsePositivesZeroOnTrainingInput(t *testing.T) {
	train := constInput(5)
	tgt, prot := protectOn(t, train, train)
	rep, err := FalsePositives(tgt, prot)
	if err != nil {
		t.Fatal(err)
	}
	if rep.CheckFails != 0 {
		t.Errorf("check failures on the training input: %d (distinct checks: %d)",
			rep.CheckFails, rep.FailingIDs)
	}
	if rep.Workload != "falsepos-crafted" {
		t.Errorf("report workload = %q", rep.Workload)
	}
	if rep.Dyn == 0 {
		t.Error("report did not record dynamic instruction count")
	}
	if rep.InstrPerFail != 0 {
		t.Errorf("InstrPerFail should stay 0 with no failures, got %g", rep.InstrPerFail)
	}
}

// TestFalsePositivesCountedOnShiftedInput: a run input disjoint from the
// training distribution must make the planned checks fire, and the report's
// accounting (fail count, distinct check IDs, instructions-per-failure)
// must be internally consistent.
func TestFalsePositivesCountedOnShiftedInput(t *testing.T) {
	tgt, prot := protectOn(t, constInput(5), constInput(9))
	if cs := CountChecks(prot); cs.ValueChecks == 0 {
		t.Fatal("crafted workload got no value checks planned — test premise broken")
	}
	rep, err := FalsePositives(tgt, prot)
	if err != nil {
		t.Fatal(err)
	}
	if rep.CheckFails == 0 {
		t.Fatal("shifted input fired no checks — test premise broken")
	}
	if rep.FailingIDs == 0 || int64(rep.FailingIDs) > rep.CheckFails {
		t.Errorf("FailingIDs=%d inconsistent with CheckFails=%d", rep.FailingIDs, rep.CheckFails)
	}
	want := float64(rep.Dyn) / float64(rep.CheckFails)
	if rep.InstrPerFail != want {
		t.Errorf("InstrPerFail = %g, want Dyn/CheckFails = %g", rep.InstrPerFail, want)
	}
	// Determinism: the same fault-free run must reproduce identical counts.
	rep2, err := FalsePositives(tgt, prot)
	if err != nil {
		t.Fatal(err)
	}
	if rep2.CheckFails != rep.CheckFails || rep2.Dyn != rep.Dyn {
		t.Errorf("false-positive accounting not deterministic: %+v vs %+v", rep, rep2)
	}
}
