// Package fault implements the paper's statistical fault injection (SFI)
// campaign: single bit flips randomized in time (dynamic instruction index)
// and space (live register, bit position), run to completion, and
// classified into the five outcome categories of §IV-C — Masked, HWDetect,
// SWDetect, Failure, USDC — with the finer SDC/ASDC split used by Figures 2
// and 13 and the large-vs-small value-change attribution of Figure 2.
package fault

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"time"

	"repro/internal/ir"
	"repro/internal/vm"
)

// Outcome is the paper's five-way classification of one injection trial.
type Outcome uint8

// Outcomes.
const (
	Masked   Outcome = iota // output correct or of acceptable quality
	HWDetect                // hardware symptom within the detection window
	SWDetect                // a software check fired
	Failure                 // crash, out-of-window symptom, or infinite loop
	USDC                    // completed with unacceptable output
)

var outcomeNames = [...]string{"Masked", "HWDetect", "SWDetect", "Failure", "USDC"}

func (o Outcome) String() string { return outcomeNames[o] }

// Config parameterizes a campaign.
type Config struct {
	// Model selects the fault model by registry name (ModelNames lists
	// them): "" or "reg-flip" is the paper's model — single bit flips in
	// live registers; "branch-target" corrupts branch destinations;
	// "mem-flip", "burst", "stuck-at" and "intermittent" corrupt the
	// memory image / multi-bit spans / persistently re-forced cells.
	// Suspend-injected models (everything beyond the first two) require
	// the fast engine.
	Model string
	// Trials is the number of injections (paper: 1000 per benchmark).
	Trials int
	// ShardStart/ShardEnd restrict execution to the trial subrange
	// [ShardStart, ShardEnd) of a Trials-sized campaign; both zero (the
	// default) runs the full range. Trial indices stay absolute — every
	// trial draws from seedFor(cfg, trial) regardless of sharding — so
	// disjoint shards of one campaign are independently computable and
	// their journals merge (MergeShardJournals) into a Report bit-identical
	// to a single-process run. A shard run's journal header records the
	// range; resuming a shard requires the same range.
	ShardStart, ShardEnd int
	// Seed makes the whole campaign deterministic.
	Seed int64
	// SymptomWindow is the detection window in dynamic instructions for a
	// trap to count as HWDetect rather than Failure (paper: 1000 cycles).
	SymptomWindow int64
	// WatchdogFactor bounds runaway runs at golden_dyn * factor.
	WatchdogFactor int64
	// LargeChange is the relative value-change threshold separating
	// Figure 2's "large" and "small" corruptions.
	LargeChange float64
	// Workers bounds campaign parallelism (0 = GOMAXPROCS).
	Workers int
	// Engine selects the vm execution engine for every run in the campaign
	// (zero value: the precompiled fast engine).
	Engine vm.EngineKind
	// Checkpoints controls golden-prefix snapshotting: one instrumented
	// golden run captures machine snapshots at interval boundaries, and each
	// trial restores the nearest snapshot at or before its trigger point
	// instead of re-executing the prefix from dyn 0. 0 (the default) sizes
	// the schedule automatically from the golden run's length; > 0 requests
	// an explicit snapshot count; < 0 disables checkpointing. Checkpointing
	// requires the fast engine and is skipped otherwise. It never changes
	// campaign results: every Trial stays bit-identical to the from-scratch
	// path.
	Checkpoints int
	// Lockstep controls batched execution of checkpoint bins: the trials of
	// one bin share a single carrier machine that advances their common
	// golden prefix once, each trial peeling off into a solo machine at its
	// own divergence point (vm.BatchMachine). 0 (the default) batches
	// automatically for bins large enough to amortize the carrier; > 0 sets
	// that minimum bin size explicitly (1 batches every bin); < 0 disables
	// batching. Lockstep requires checkpointing's machinery (fast engine)
	// and, like Checkpoints and Workers, is a pure throughput knob: every
	// Trial, Anomaly, and journal record stays bit-identical to the solo
	// path.
	Lockstep int
	// Fuse controls superinstruction dispatch in the fast engine for every
	// run in the campaign: 0 (the default) leaves fused dispatch enabled;
	// < 0 forces the per-instruction path (vm.FuseOff). Like Checkpoints,
	// Lockstep, and Workers it is a pure throughput knob: fused dispatch is
	// bit-identical on every observable the campaign reads, so it is not
	// part of the journal's result-affecting configuration.
	Fuse int
	// Converge controls convergence fast-forwarding for checkpointed trials
	// (solo and lockstep alike): a trial whose machine state re-converges
	// with a golden snapshot after its fault has fired short-circuits to
	// Masked instead of executing the rest of its suffix
	// (finishTrialConverging). 0 (the default) enables it; < 0 disables it.
	// Another pure throughput knob: the short-circuited Trial is
	// bit-identical to the one the full suffix would produce.
	Converge int
	// JournalPath, when nonempty, makes the campaign durable: every decided
	// trial is appended to a checksummed journal at this path, so a crashed
	// or killed campaign can be resumed without re-running completed trials.
	JournalPath string
	// Resume replays an existing journal at JournalPath before running:
	// decided trials are restored verbatim and only the remainder executes.
	// Trials are self-contained (per-trial seeding), so a resumed campaign's
	// Report is bit-identical to an uninterrupted one. A missing or
	// headerless journal resumes as a fresh start; a journal recorded under
	// a different result-affecting configuration is an error.
	Resume bool
	// TrialTimeout, when positive, bounds each trial attempt in wall-clock
	// time, layered over the dyn-count watchdog. A timed-out trial is
	// retried once, then quarantined as an Anomaly.
	TrialTimeout time.Duration
	// TargetCI, when positive, enables statistical early stopping: the
	// campaign stops drawing trials once the 95% Wilson intervals for both
	// coverage and USDC rate are no wider than TargetCI. Which trials
	// complete before the stop lands is scheduling-dependent.
	TargetCI float64
	// OnTrial, when non-nil, is called at the start of every trial attempt
	// with the trial index. It runs inside the trial's panic isolation —
	// test hooks may panic or stall to exercise quarantine paths.
	OnTrial func(trial int)
	// OnProgress, when non-nil, is called after every decided trial
	// (including journal-replayed ones) with the campaign's cumulative
	// decided/covered/USDC counts. Calls may arrive from concurrent workers
	// and therefore out of order; each call's triple is a consistent
	// snapshot, so consumers should keep the triple with the largest done.
	// The distributed coordinator streams these counts into its pooled
	// cross-shard confidence intervals.
	OnProgress func(done, covered, usdc int)
}

// Target abstracts the program under injection: how to bind its inputs,
// where its output lives, and how to judge output quality. Package
// workloads adapts each benchmark to a Target; library users can wrap
// their own programs.
type Target struct {
	Name string
	// Bind installs the inputs on a fresh machine.
	Bind func(m *vm.Machine) error
	// Output is the global holding the program result.
	Output string
	// Measure scores a faulty output against the golden output.
	Measure func(golden, test []uint64) float64
	// Acceptable judges a measured fidelity value.
	Acceptable func(v float64) bool
}

// DefaultConfig mirrors the paper's setup at reduced trial count.
func DefaultConfig() Config {
	return Config{
		Trials:         1000,
		Seed:           2014, // MICRO 2014
		SymptomWindow:  1000,
		WatchdogFactor: 20,
		LargeChange:    1.0,
	}
}

// Trial is the record of one injection.
type Trial struct {
	Outcome    Outcome
	CheckKind  ir.CheckKind // which check class detected (SWDetect only)
	SDC        bool         // completed with numerically different output
	Acceptable bool         // fidelity above threshold (SDC only)
	Fidelity   float64      // measured fidelity (SDC only)
	RelChange  float64      // relative change of the corrupted register
	TrapKind   vm.TrapKind
}

// Tally aggregates a campaign.
type Tally struct {
	N int
	// Five-way outcome counts (ASDCs are counted under Masked, as in the
	// paper's Figure 11 classification).
	Count [5]int
	// SWDetect attribution.
	SWDetectDup, SWDetectValue, SWDetectCFC, SWDetectABFT int
	// SDC view (Figures 2 and 13): any numerically different completed
	// output. SDC = ASDC + USDC.
	SDC, ASDC int
	// USDC attribution by corrupted-value change magnitude (Figure 2).
	USDCLarge, USDCSmall int
}

// Frac returns outcome o as a fraction of trials.
func (t *Tally) Frac(o Outcome) float64 {
	if t.N == 0 {
		return 0
	}
	return float64(t.Count[o]) / float64(t.N)
}

// Coverage is the paper's fault-coverage definition: Masked + SWDetect +
// HWDetect over all trials.
func (t *Tally) Coverage() float64 {
	if t.N == 0 {
		return 0
	}
	return float64(t.Count[Masked]+t.Count[HWDetect]+t.Count[SWDetect]) / float64(t.N)
}

// MarginOfError returns the 95%-confidence margin for a proportion p
// estimated from this tally (Leveugle et al.).
func (t *Tally) MarginOfError(p float64) float64 {
	if t.N == 0 {
		return 1
	}
	return 1.96 * math.Sqrt(p*(1-p)/float64(t.N))
}

// Report is the result of one campaign.
type Report struct {
	Workload  string
	Technique string
	// FaultModel is the resolved registry name of the campaign's fault model.
	FaultModel string
	Tally      Tally
	Trials     []Trial
	// Golden-run statistics.
	GoldenDyn    int64
	GoldenCycles int64
	// DisabledChecks is the number of checks squelched because they fired
	// on the fault-free run (persistent false positives).
	DisabledChecks int
	// Anomalies lists quarantined trials (panics, repeated timeouts), in
	// trial order. Quarantined trials are excluded from the Tally.
	Anomalies []Anomaly
	// Partial is set when the campaign was cancelled with trials still
	// pending; the Tally covers only the trials that completed.
	Partial bool
	// EarlyStopped is set when Config.TargetCI halted the campaign once the
	// confidence intervals were tight enough; TrialsSaved counts the trials
	// it never had to run.
	EarlyStopped bool
	TrialsSaved  int
	// Replayed counts trials restored from the journal on resume rather
	// than executed in this process.
	Replayed int
}

// Run executes a fault-injection campaign for one target on one (possibly
// protected) module. The module is not mutated. Cancelling ctx stops the
// campaign between trials — in-flight trials finish (each is bounded by the
// watchdog) and Run returns a valid partial Report (Partial set, Tally over
// the completed trials) with a nil error; only setup and infrastructure
// failures (golden run, snapshotting, journal I/O) return errors.
func Run(ctx context.Context, t Target, mod *ir.Module, technique string, cfg Config) (*Report, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if cfg.Trials <= 0 {
		return nil, fmt.Errorf("fault: non-positive trial count")
	}
	shardLo, shardHi := cfg.ShardStart, cfg.ShardEnd
	if shardLo == 0 && shardHi == 0 {
		shardHi = cfg.Trials
	}
	if shardLo < 0 || shardHi > cfg.Trials || shardLo >= shardHi {
		return nil, fmt.Errorf("fault: shard range [%d,%d) invalid for %d trials", shardLo, shardHi, cfg.Trials)
	}
	if cfg.WatchdogFactor <= 0 {
		cfg.WatchdogFactor = 20
	}
	model, err := LookupModel(cfg.Model)
	if err != nil {
		return nil, err
	}
	if !model.EngineInjected() && cfg.Engine != vm.EngineFast {
		return nil, fmt.Errorf("fault: fault model %q requires the fast engine (suspend-injected models park the machine via SuspendAtDyn, which only the fast engine implements)", model.Name())
	}

	// Golden run: outputs, dynamic length, and persistently failing checks.
	goldenMach, err := newMachine(t, mod, 0, cfg.Engine)
	if err != nil {
		return nil, err
	}
	goldenRes := goldenMach.Run(vm.RunOptions{CountChecks: true, Fuse: fuseMode(cfg)})
	if goldenRes.Trap != nil {
		return nil, fmt.Errorf("fault: golden run trapped: %v", goldenRes.Trap)
	}
	golden, err := goldenMach.ReadGlobal(t.Output)
	if err != nil {
		return nil, err
	}
	disabled := make(map[int]bool)
	for id, n := range goldenRes.PerCheckFails {
		if n > 0 {
			disabled[id] = true
		}
	}

	rep := &Report{
		Workload:       t.Name,
		Technique:      technique,
		FaultModel:     model.Name(),
		GoldenDyn:      goldenRes.Dyn,
		GoldenCycles:   goldenRes.Cycles,
		DisabledChecks: len(disabled),
		Trials:         make([]Trial, cfg.Trials),
	}

	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > shardHi-shardLo {
		workers = shardHi - shardLo
	}
	maxDyn := goldenRes.Dyn*cfg.WatchdogFactor + 100_000

	c := newCampaign(t, mod, cfg, model, golden, goldenRes.Dyn, disabled, maxDyn, rep)
	c.excludeOutsideShard(shardLo, shardHi)
	if cfg.JournalPath != "" {
		hdr := headerFor(t, technique, cfg, model.Name(), shardLo, shardHi, len(disabled), goldenRes.Dyn, goldenRes.Cycles)
		jw, st, err := openJournal(cfg.JournalPath, cfg.Resume, hdr)
		if err != nil {
			return nil, err
		}
		c.jw = jw
		if st != nil {
			c.restoreFromJournal(st)
		}
	}

	pending := c.pendingTrials()
	var runErr error
	if len(pending) > 0 && !c.stopRequested() {
		// Lockstep batches even without a snapshot schedule: an unscheduled
		// campaign is one whole-run scratch bin, the widest prefix a carrier
		// can share (runCheckpointed splits it across workers).
		snapAt := checkpointSchedule(cfg, goldenRes.Dyn)
		if len(snapAt) > 0 || lockstepMinLanes(cfg) > 0 {
			runErr = c.runCheckpointed(ctx, pending, workers, snapAt)
		} else {
			runErr = c.runScratch(ctx, pending, workers)
		}
	}
	if runErr != nil {
		c.closeJournal() // best effort; the run error wins
		return nil, runErr
	}
	if err := c.closeJournal(); err != nil {
		return nil, err
	}
	c.finalize(ctx.Err())
	return rep, nil
}

// newMachine builds a machine with the target's inputs bound. maxDyn of 0
// keeps the default watchdog (golden runs must never hit it).
func newMachine(t Target, mod *ir.Module, maxDyn int64, engine vm.EngineKind) (*vm.Machine, error) {
	vmCfg := vm.DefaultConfig()
	vmCfg.Engine = engine
	if maxDyn > 0 {
		vmCfg.MaxDyn = maxDyn
	}
	mach, err := vm.New(mod, vmCfg)
	if err != nil {
		return nil, err
	}
	if err := t.Bind(mach); err != nil {
		return nil, err
	}
	mach.Reset()
	return mach, nil
}

// runTrial injects one fault and classifies the outcome. The caller owns
// the rng pair: src is re-seeded with the per-trial seed, so the draw
// sequence matches a fresh rand.New(rand.NewSource(seed)) without the
// allocation. With a non-nil snap the trial restores it instead of running
// the golden prefix from dyn 0; the snapshot must precede the trial's
// effective trigger point (the checkpoint scheduler guarantees this). With a
// non-empty snaps ladder (the campaign's golden snapshots, ascending) the
// suffix runs under convergence fast-forwarding: a trial whose state
// re-converges with a golden snapshot after its fault fires short-circuits
// to Masked (finishTrial). A nonzero deadline bounds the run in wall-clock
// time; a deadline hit is reported as timedOut, never as an outcome — the
// caller decides between retry and quarantine.
func runTrial(mach *vm.Machine, snap *vm.Snapshot, snaps []*vm.Snapshot, model Model, t Target, cfg Config, golden []uint64, goldenDyn int64, disabled map[int]bool, trial int, src rand.Source, rng *rand.Rand, deadline time.Time) (tr Trial, timedOut bool, err error) {
	plan := drawPlan(model, cfg, goldenDyn, trial, src, rng)
	if snap != nil {
		if err := mach.Restore(snap); err != nil {
			return Trial{}, false, err
		}
	} else {
		mach.Reset()
	}
	tr, timedOut = finishTrial(mach, plan, t, cfg, golden, disabled, deadline, snaps)
	return tr, timedOut, nil
}

// drawPlan re-seeds src with the trial's seed and draws its fault plan from
// the model. The trigger is the first draw after seeding — the position
// drawTriggers and the anomaly reproducer scheme rely on, for every model —
// and the model's space draws consume rng lazily at injection time, exactly
// as a fresh rand.New(seed) would.
func drawPlan(model Model, cfg Config, goldenDyn int64, trial int, src rand.Source, rng *rand.Rand) *Plan {
	src.Seed(seedFor(cfg, trial))
	p := model.Draw(goldenDyn, rng)
	p.model = model
	if p.VM != nil {
		p.pendingAt = -1 // the engine owns the injection
	} else {
		p.pendingAt = p.TriggerDyn
	}
	return p
}

// runPlanned drives one machine run under a trial plan, parking the machine
// wherever the plan owes a hook — the suspend-injected models' injection
// point, then each re-arm point — and running the hooks while parked. A
// positive suspendAt additionally parks at the caller's own threshold (the
// convergence ladder) and returns there; a park that satisfies both at once
// returns first and defers the hook to the caller's next runPlanned call,
// which is sound because an uninjected plan never fast-forwards. Engine-
// injected plans owe no parks, so their fast path is a single Run, exactly
// the pre-registry campaign body.
func runPlanned(mach *vm.Machine, plan *Plan, cfg Config, disabled map[int]bool, deadline time.Time, suspendAt int64) *vm.Result {
	for {
		plan.hookNow(mach)
		stop := plan.pendingAt
		if suspendAt > 0 && suspendAt > mach.Dyn() && (stop < 0 || suspendAt < stop) {
			stop = suspendAt
		}
		if stop < 0 {
			stop = 0 // no park owed: run to completion
		}
		res := mach.Run(vm.RunOptions{Fault: plan.VM, DisabledChecks: disabled, Deadline: deadline, SuspendAtDyn: stop, Fuse: fuseMode(cfg)})
		if res.Trap != nil && res.Trap.Kind == vm.TrapSuspended {
			if suspendAt > 0 && mach.Dyn() >= suspendAt {
				return res // the caller's crossing; its hooks run next call
			}
			continue // the plan's own park: loop runs the hook and resumes
		}
		return res
	}
}

// finishTrial runs an already-positioned machine — reset, restored to a
// snapshot, or peeled from a lockstep carrier — under the trial's fault
// plan and classifies the outcome. Shared by the scratch, checkpointed and
// lockstep paths so classification cannot drift between them.
//
// A non-empty snaps ladder (the campaign's golden snapshots, ascending)
// enables convergence fast-forwarding: the suffix parks at each snapshot
// index above the trial's position, and a trial whose fault has already
// fired (plan.injected()) and whose full machine state is bit-identical to
// the golden reference state at that index has a deterministically golden
// future — most masked trials re-converge shortly after the corrupted value
// dies, so their remaining suffix never needs to execute. The short-circuit
// constructs exactly the Trial the full run would: trap-free, bit-equal
// output, Masked. Two gates keep it sound: comparing before the fault fires
// would trivially match golden while the pending fault still changes the
// future (the injected() gate), and a re-arming model's fault can fire
// again after the comparison point, so present-equals-golden proves nothing
// about its future — re-arming trials never fast-forward at all.
func finishTrial(mach *vm.Machine, plan *Plan, t Target, cfg Config, golden []uint64, disabled map[int]bool, deadline time.Time, snaps []*vm.Snapshot) (tr Trial, timedOut bool) {
	if plan.model.Rearms() {
		snaps = nil // soundness rule: see above
	}
	for _, s := range snaps {
		if s.Dyn() <= mach.Dyn() {
			continue
		}
		res := runPlanned(mach, plan, cfg, disabled, deadline, s.Dyn())
		if res.Trap == nil || res.Trap.Kind != vm.TrapSuspended {
			return classifyTrial(mach, res, plan, t, cfg, golden)
		}
		if plan.injected() && mach.MatchesSnapshot(s) {
			return Trial{Outcome: Masked, RelChange: plan.relChange()}, false
		}
	}
	res := runPlanned(mach, plan, cfg, disabled, deadline, 0)
	return classifyTrial(mach, res, plan, t, cfg, golden)
}

// fuseMode maps Config.Fuse onto the vm knob: negative disables fused
// dispatch, anything else leaves the engine default (on).
func fuseMode(cfg Config) vm.FuseMode {
	if cfg.Fuse < 0 {
		return vm.FuseOff
	}
	return vm.FuseAuto
}

// classifyTrial maps a terminal Result onto the §IV-C taxonomy. Shared by
// every suffix path so classification cannot drift.
func classifyTrial(mach *vm.Machine, res *vm.Result, plan *Plan, t Target, cfg Config, golden []uint64) (tr Trial, timedOut bool) {
	tr = Trial{RelChange: plan.relChange()}
	if res.Trap != nil {
		tr.TrapKind = res.Trap.Kind
		switch {
		case res.Trap.Kind == vm.TrapDeadline:
			return Trial{}, true
		case res.Trap.Kind == vm.TrapCheck:
			tr.Outcome = SWDetect
			tr.CheckKind = res.Trap.CheckKind
		case res.Trap.Kind == vm.TrapWatchdog:
			tr.Outcome = Failure
		case res.Trap.IsSymptom() && res.Trap.Dyn-plan.TriggerDyn <= cfg.SymptomWindow:
			tr.Outcome = HWDetect
		default:
			tr.Outcome = Failure
		}
		return tr, false
	}

	out, err := mach.ReadGlobal(t.Output)
	if err != nil {
		tr.Outcome = Failure
		return tr, false
	}
	same := true
	for i := range golden {
		if out[i] != golden[i] {
			same = false
			break
		}
	}
	if same {
		tr.Outcome = Masked
		return tr, false
	}
	tr.SDC = true
	tr.Fidelity = t.Measure(golden, out)
	tr.Acceptable = t.Acceptable(tr.Fidelity)
	if tr.Acceptable {
		tr.Outcome = Masked // acceptable-quality results count as Masked (§IV-C)
	} else {
		tr.Outcome = USDC
	}
	return tr, false
}
