package fault_test

import (
	"context"
	"testing"

	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/profile"
	"repro/internal/vm"
	"repro/internal/workloads"
)

// smallCampaign runs a reduced campaign for tests.
func smallCampaign(t *testing.T, name string, mode string, trials int) *fault.Report {
	t.Helper()
	w := workloads.ByName(name)
	if w == nil {
		t.Fatalf("no workload %s", name)
	}
	mod, err := w.Compile()
	if err != nil {
		t.Fatal(err)
	}
	prot := mod.Clone()
	var prof *profile.Data
	if mode == core.SchemeDupVal {
		mach, err := vm.New(mod.Clone(), vm.DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		if err := w.Bind(mach, workloads.Train); err != nil {
			t.Fatal(err)
		}
		mach.Reset()
		col := profile.NewCollector(profile.DefaultBins)
		if res := mach.Run(vm.RunOptions{Profiler: col}); res.Trap != nil {
			t.Fatalf("profiling trapped: %v", res.Trap)
		}
		prof = col.Data()
	}
	if _, err := core.Protect(prot, mode, prof, core.DefaultParams()); err != nil {
		t.Fatal(err)
	}
	cfg := fault.DefaultConfig()
	cfg.Trials = trials
	rep, err := fault.Run(context.Background(), w.Target(workloads.Test), prot, mode, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

func TestCampaignCountsAreConsistent(t *testing.T) {
	rep := smallCampaign(t, "tiff2bw", core.SchemeOriginal, 150)
	ta := rep.Tally
	if ta.N != 150 {
		t.Fatalf("N = %d", ta.N)
	}
	sum := 0
	for _, c := range ta.Count {
		sum += c
	}
	if sum != ta.N {
		t.Fatalf("outcome counts sum to %d != %d", sum, ta.N)
	}
	if ta.SDC != ta.ASDC+ta.USDCLarge+ta.USDCSmall {
		t.Fatalf("SDC split inconsistent: %d != %d+%d+%d", ta.SDC, ta.ASDC, ta.USDCLarge, ta.USDCSmall)
	}
	if ta.Count[fault.USDC] != ta.USDCLarge+ta.USDCSmall {
		t.Fatalf("fault.USDC attribution inconsistent")
	}
	if ta.Count[fault.SWDetect] != 0 {
		t.Fatal("unmodified binary cannot have SWDetects (no checks present)")
	}
	if cov := ta.Coverage(); cov < 0 || cov > 1 {
		t.Fatalf("coverage = %v", cov)
	}
}

func TestCampaignIsDeterministic(t *testing.T) {
	r1 := smallCampaign(t, "kmeans", core.SchemeOriginal, 60)
	r2 := smallCampaign(t, "kmeans", core.SchemeOriginal, 60)
	if r1.Tally != r2.Tally {
		t.Fatalf("tallies differ:\n%+v\n%+v", r1.Tally, r2.Tally)
	}
	for i := range r1.Trials {
		if r1.Trials[i].Outcome != r2.Trials[i].Outcome {
			t.Fatalf("trial %d outcome differs", i)
		}
	}
}

func TestProtectionProducesSWDetects(t *testing.T) {
	rep := smallCampaign(t, "g721dec", core.SchemeDup, 200)
	if rep.Tally.Count[fault.SWDetect] == 0 {
		t.Fatalf("DupOnly produced no SWDetects in 200 trials: %+v", rep.Tally)
	}
	if rep.Tally.SWDetectDup == 0 {
		t.Fatal("SWDetects not attributed to duplication checks")
	}
}

func TestDupValUsesValueChecks(t *testing.T) {
	rep := smallCampaign(t, "jpegdec", core.SchemeDupVal, 200)
	if rep.Tally.Count[fault.SWDetect] == 0 {
		t.Fatalf("DupVal produced no SWDetects: %+v", rep.Tally)
	}
	t.Logf("fault.SWDetect dup=%d value=%d", rep.Tally.SWDetectDup, rep.Tally.SWDetectValue)
}

// TestABFTDetectsKernelFaults: the ABFT scheme must convert a nonzero
// share of injected faults into software detections attributed to its
// kernel-exit checksum comparisons — and to nothing else, since abft alone
// inserts no other check kind.
func TestABFTDetectsKernelFaults(t *testing.T) {
	rep := smallCampaign(t, "kmeans", core.SchemeABFT, 250)
	if rep.Tally.Count[fault.SWDetect] == 0 {
		t.Fatalf("ABFT produced no SWDetects in 250 trials: %+v", rep.Tally)
	}
	if rep.Tally.SWDetectABFT == 0 {
		t.Fatal("SWDetects not attributed to ABFT checksum checks")
	}
	if rep.Tally.SWDetectDup != 0 || rep.Tally.SWDetectValue != 0 || rep.Tally.SWDetectCFC != 0 {
		t.Fatalf("ABFT-only module attributed detections to other check kinds: %+v", rep.Tally)
	}
	t.Logf("abft: %d/%d SWDetects, coverage %.3f",
		rep.Tally.SWDetectABFT, rep.Tally.N, rep.Tally.Coverage())
}

// TestProtectionReducesUSDCs is the paper's headline claim in miniature:
// protected binaries must not have more USDCs than the original, and
// coverage must not degrade.
func TestProtectionReducesUSDCs(t *testing.T) {
	const trials = 250
	for _, name := range []string{"g721dec", "segm"} {
		orig := smallCampaign(t, name, core.SchemeOriginal, trials)
		dup := smallCampaign(t, name, core.SchemeDup, trials)
		if dup.Tally.Count[fault.USDC] > orig.Tally.Count[fault.USDC] {
			t.Errorf("%s: DupOnly USDCs %d > original %d", name, dup.Tally.Count[fault.USDC], orig.Tally.Count[fault.USDC])
		}
		t.Logf("%s: fault.USDC %d -> %d, coverage %.3f -> %.3f", name,
			orig.Tally.Count[fault.USDC], dup.Tally.Count[fault.USDC],
			orig.Tally.Coverage(), dup.Tally.Coverage())
	}
}

// TestCampaignEngineEquivalence runs the same campaign on the precompiled
// engine and the reference tree interpreter: every trial record and the
// whole tally must match, since the engines are bit-for-bit equivalent and
// the trial RNG streams depend only on the seed.
func TestCampaignEngineEquivalence(t *testing.T) {
	w := workloads.ByName("kmeans")
	mod, err := w.Compile()
	if err != nil {
		t.Fatal(err)
	}
	run := func(engine vm.EngineKind) *fault.Report {
		cfg := fault.DefaultConfig()
		cfg.Trials = 80
		cfg.Engine = engine
		rep, err := fault.Run(context.Background(), w.Target(workloads.Test), mod.Clone(), "Original", cfg)
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	fast := run(vm.EngineFast)
	tree := run(vm.EngineTree)
	if fast.Tally != tree.Tally {
		t.Fatalf("tallies differ:\nfast=%+v\ntree=%+v", fast.Tally, tree.Tally)
	}
	if fast.GoldenDyn != tree.GoldenDyn || fast.GoldenCycles != tree.GoldenCycles {
		t.Fatalf("golden run differs: fast=(%d,%d) tree=(%d,%d)",
			fast.GoldenDyn, fast.GoldenCycles, tree.GoldenDyn, tree.GoldenCycles)
	}
	for i := range fast.Trials {
		if fast.Trials[i] != tree.Trials[i] {
			t.Fatalf("trial %d differs:\nfast=%+v\ntree=%+v", i, fast.Trials[i], tree.Trials[i])
		}
	}
}

// TestCampaignCancellation checks a cancelled context stops the campaign
// between trials: Run degrades gracefully to a valid partial Report, while
// RunWithRecovery keeps its error-on-cancel contract.
func TestCampaignCancellation(t *testing.T) {
	w := workloads.ByName("kmeans")
	mod, err := w.Compile()
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	cfg := fault.DefaultConfig()
	cfg.Trials = 50
	rep, err := fault.Run(ctx, w.Target(workloads.Test), mod.Clone(), "Original", cfg)
	if err != nil {
		t.Fatalf("Run: expected partial report on cancel, got error %v", err)
	}
	if !rep.Partial {
		t.Fatalf("Run: cancelled campaign not marked Partial: %+v", rep.Tally)
	}
	if rep.Tally.N >= cfg.Trials {
		t.Fatalf("Run: pre-cancelled campaign completed all %d trials", rep.Tally.N)
	}
	if _, err := fault.RunWithRecovery(ctx, w.Target(workloads.Test), mod.Clone(), "Original", cfg); err != context.Canceled {
		t.Fatalf("RunWithRecovery: expected context.Canceled, got %v", err)
	}
}

func TestMarginOfError(t *testing.T) {
	ta := fault.Tally{N: 1000}
	// Paper: 13000 injections -> 3.1% margin at 95% for p=0.5... for
	// n=1000, p=0.5: 1.96*sqrt(.25/1000) = 3.1%.
	m := ta.MarginOfError(0.5)
	if m < 0.030 || m > 0.032 {
		t.Fatalf("margin = %v, want ~0.031", m)
	}
}

func TestFalsePositiveMeasurement(t *testing.T) {
	w := workloads.ByName("jpegdec")
	mod, err := w.Compile()
	if err != nil {
		t.Fatal(err)
	}
	// Profile on train, protect, measure check fires on test input.
	mach, _ := vm.New(mod.Clone(), vm.DefaultConfig())
	if err := w.Bind(mach, workloads.Train); err != nil {
		t.Fatal(err)
	}
	mach.Reset()
	col := profile.NewCollector(profile.DefaultBins)
	mach.Run(vm.RunOptions{Profiler: col})

	prot := mod.Clone()
	if _, err := core.Protect(prot, core.SchemeDupVal, col.Data(), core.DefaultParams()); err != nil {
		t.Fatal(err)
	}
	rep, err := fault.FalsePositives(w.Target(workloads.Test), prot)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Dyn == 0 {
		t.Fatal("no instructions executed")
	}
	cs := fault.CountChecks(prot)
	if cs.ValueChecks == 0 {
		t.Fatal("protected module has no value checks")
	}
	t.Logf("false positives: %d fails in %d instrs (%d checks); 1 per %.0f",
		rep.CheckFails, rep.Dyn, cs.ValueChecks, rep.InstrPerFail)
}

func TestGoldenFiringChecksAreDisabled(t *testing.T) {
	// A campaign on a DupVal binary must not classify every trial as
	// fault.SWDetect due to a persistently false-firing check.
	rep := smallCampaign(t, "svm", core.SchemeDupVal, 100)
	if rep.Tally.Count[fault.SWDetect] == rep.Tally.N {
		t.Fatal("all trials fault.SWDetect: golden-firing checks not squelched")
	}
	t.Logf("disabled checks: %d", rep.DisabledChecks)
}
