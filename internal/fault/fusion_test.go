package fault_test

// Campaign-level fusion and convergence equivalence: the Fuse and Converge
// knobs are throughput-only, so flipping either must leave the campaign
// Report bit-identical — per-trial records included — on every scheduler
// path: from-scratch, checkpointed solo (where convergence fast-forwards
// masked suffixes), lockstep batching, and the durable journal.

import (
	"context"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/workloads"
)

// TestCampaignFusionEquivalence is the acceptance matrix: all workloads ×
// all registered schemes on the default checkpointed-solo path, fused vs
// unfused. Under the race detector the matrix trims to representative
// cells, like the checkpoint suite.
func TestCampaignFusionEquivalence(t *testing.T) {
	modes := core.SchemeNames()
	names := make([]string, 0, 13)
	for _, w := range workloads.All() {
		names = append(names, w.Name)
	}
	if raceEnabled {
		names = []string{"tiff2bw", "g721dec", "svm", "kmeans"}
		modes = []string{core.SchemeOriginal, core.SchemeFullDup}
	}
	for _, name := range names {
		for _, mode := range modes {
			name, mode := name, mode
			t.Run(name+"/"+mode, func(t *testing.T) {
				t.Parallel()
				w := workloads.ByName(name)
				prot := protectedFor(t, w, mode)
				run := func(fuse int) *fault.Report {
					cfg := fault.DefaultConfig()
					cfg.Trials = 12
					cfg.Lockstep = -1
					cfg.Fuse = fuse
					rep, err := fault.Run(context.Background(), w.Target(workloads.Test), prot, mode, cfg)
					if err != nil {
						t.Fatal(err)
					}
					return rep
				}
				diffReports(t, name+"/"+mode, run(0), run(-1))
			})
		}
	}
}

// TestCampaignFusionEquivalencePaths covers the remaining scheduler paths
// on representative cells: from-scratch trials, lockstep batching, the
// branch-target fault model, and a journaled campaign resumed from a
// truncated file with the opposite fusion setting — the journal must not
// record (and resume must not depend on) the knob.
func TestCampaignFusionEquivalencePaths(t *testing.T) {
	t.Run("scratch", func(t *testing.T) {
		t.Parallel()
		w := workloads.ByName("kmeans")
		prot := protectedFor(t, w, core.SchemeDup)
		run := func(fuse int) *fault.Report {
			cfg := fault.DefaultConfig()
			cfg.Trials = 30
			cfg.Checkpoints = -1
			cfg.Lockstep = -1
			cfg.Fuse = fuse
			rep, err := fault.Run(context.Background(), w.Target(workloads.Test), prot, "DupOnly", cfg)
			if err != nil {
				t.Fatal(err)
			}
			return rep
		}
		diffReports(t, "scratch", run(0), run(-1))
	})
	t.Run("lockstep", func(t *testing.T) {
		t.Parallel()
		w := workloads.ByName("g721dec")
		prot := protectedFor(t, w, core.SchemeFullDup)
		run := func(fuse int) *fault.Report {
			cfg := fault.DefaultConfig()
			cfg.Trials = 40
			cfg.Lockstep = 0
			cfg.Fuse = fuse
			rep, err := fault.Run(context.Background(), w.Target(workloads.Test), prot, "FullDup", cfg)
			if err != nil {
				t.Fatal(err)
			}
			return rep
		}
		diffReports(t, "lockstep", run(0), run(-1))
	})
	t.Run("branch", func(t *testing.T) {
		t.Parallel()
		w := workloads.ByName("g721enc")
		prot := protectedFor(t, w, core.SchemeDup)
		run := func(fuse int) *fault.Report {
			cfg := fault.DefaultConfig()
			cfg.Trials = 30
			cfg.Model = fault.ModelBranchTarget
			cfg.Lockstep = -1
			cfg.Fuse = fuse
			rep, err := fault.Run(context.Background(), w.Target(workloads.Test), prot, "DupOnly", cfg)
			if err != nil {
				t.Fatal(err)
			}
			return rep
		}
		diffReports(t, "branch", run(0), run(-1))
	})
	t.Run("journal", func(t *testing.T) {
		t.Parallel()
		w := workloads.ByName("tiff2bw")
		prot := protectedFor(t, w, core.SchemeOriginal)
		path := filepath.Join(t.TempDir(), "campaign.journal")
		run := func(fuse int, resume bool) *fault.Report {
			cfg := fault.DefaultConfig()
			cfg.Trials = 12
			cfg.Lockstep = -1
			cfg.Fuse = fuse
			cfg.JournalPath = path
			cfg.Resume = resume
			rep, err := fault.Run(context.Background(), w.Target(workloads.Test), prot, "Original", cfg)
			if err != nil {
				t.Fatal(err)
			}
			return rep
		}
		full := run(0, false)
		info, err := os.Stat(path)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.Truncate(path, info.Size()/2); err != nil {
			t.Fatal(err)
		}
		// Resume the fused journal with fusion off: replayed and re-run
		// trials must stitch into the same report.
		diffReports(t, "journal", run(-1, true), full)
	})
}

// TestCampaignConvergenceEquivalence checks the solo convergence
// fast-forward: checkpointed non-lockstep campaigns with the golden ladder
// (Converge on) must match full-suffix runs (Converge off) — masked trials
// are cut short only when the machine state provably re-joined the golden
// trajectory. FullDup is the masked-heavy scheme the fast-forward targets;
// Original covers the no-detection shape, and the branch model the
// shifted-trigger scheduler.
func TestCampaignConvergenceEquivalence(t *testing.T) {
	cells := []struct {
		workload  string
		mode      string
		technique string
		model     string
	}{
		{"tiff2bw", core.SchemeFullDup, "FullDup", fault.ModelRegFlip},
		{"kmeans", core.SchemeFullDup, "FullDup", fault.ModelRegFlip},
		{"svm", core.SchemeOriginal, "Original", fault.ModelRegFlip},
		{"g721dec", core.SchemeDup, "DupOnly", fault.ModelRegFlip},
		{"kmeans", core.SchemeFullDup, "FullDup", fault.ModelBranchTarget},
		{"kmeans", core.SchemeFullDup, "FullDup", fault.ModelMemFlip},
		{"g721dec", core.SchemeDup, "DupOnly", fault.ModelBurst},
	}
	if raceEnabled {
		cells = cells[:2]
	}
	for _, c := range cells {
		c := c
		name := c.workload + "/" + c.mode
		if c.model != fault.ModelRegFlip {
			name += "/" + c.model
		}
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			w := workloads.ByName(c.workload)
			prot := protectedFor(t, w, c.mode)
			run := func(conv int) *fault.Report {
				cfg := fault.DefaultConfig()
				cfg.Trials = 40
				cfg.Lockstep = -1
				cfg.Model = c.model
				cfg.Converge = conv
				rep, err := fault.Run(context.Background(), w.Target(workloads.Test), prot, c.technique, cfg)
				if err != nil {
					t.Fatal(err)
				}
				return rep
			}
			diffReports(t, name, run(0), run(-1))
		})
	}
}
