package fault

// Durable campaign journaling. A journal is an append-only, line-oriented,
// checksummed log of everything a campaign has decided: one header record
// naming the campaign (and fingerprinting every config knob that affects
// results), then one record per completed trial and one per quarantined
// anomaly, in completion order. Workers append through a batched writer, so
// a crash — panic, OOM kill, SIGKILL, power loss — forfeits at most one
// unflushed batch; replay tolerates arbitrary tail damage (a torn line, a
// half-written record, a bad checksum) by stopping at the first invalid
// byte, and resume truncates the damage away before appending. Because
// every trial draws its randomness from a self-contained per-trial seed,
// replayed records splice into a resumed campaign bit-identically: a
// killed-and-resumed campaign's final Report equals an uninterrupted one.
//
// Line format: "<crc32-ieee-hex8> <json>\n". The checksum covers the JSON
// payload only. Floats are stored as IEEE-754 bit patterns so records
// round-trip exactly.

import (
	"bufio"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"
	"strconv"
	"sync"

	"repro/internal/ir"
	"repro/internal/vm"
)

// journalVersion gates replay: a journal written by an incompatible record
// schema is rejected rather than misread. Version 2 replaced the numeric
// fault-kind field with the registry model name; version 3 added the shard
// range and the disabled-check count, making a journal a self-describing
// shard artifact the distributed campaign service can merge.
const journalVersion = 3

// journalFlushBatch bounds how many records the batched writer buffers
// before forcing them to the OS; a crash loses at most this many trials.
const journalFlushBatch = 32

// journalHeader is the first record of every journal. Every field that can
// change campaign results is part of the identity check on resume; knobs
// that only move throughput (Workers, Checkpoints, Lockstep, Engine — the
// engines and the lockstep carrier are bit-identical by contract) are
// deliberately absent, so a campaign may be resumed with different
// parallelism, snapshotting, or batching and still complete
// bit-identically. GoldenDyn/GoldenCycles double as a drift detector: if
// the module or inputs changed since the journal was written, the re-run
// golden run disagrees and resume refuses.
type journalHeader struct {
	Version         int    `json:"v"`
	Workload        string `json:"workload"`
	Technique       string `json:"technique"`
	Trials          int    `json:"trials"`
	Seed            int64  `json:"seed"`
	Model           string `json:"model"`
	SymptomWindow   int64  `json:"window"`
	WatchdogFactor  int64  `json:"watchdog"`
	LargeChangeBits uint64 `json:"large"`
	GoldenDyn       int64  `json:"golden_dyn"`
	GoldenCycles    int64  `json:"golden_cycles"`
	// ShardStart/ShardEnd describe the trial subrange this journal covers
	// ([0, Trials) for an unsharded campaign). Trials stays the campaign
	// total, so record indices are absolute and shard journals from one
	// campaign merge without renumbering.
	ShardStart int `json:"shard_lo"`
	ShardEnd   int `json:"shard_hi"`
	// Disabled is the golden run's squelched-check count. It is implied by
	// the module and inputs (GoldenDyn/GoldenCycles already pin those), and
	// recording it lets a merge reconstruct the full Report without a
	// golden re-run.
	Disabled int `json:"disabled"`
}

// journalTrial is one completed trial. Fidelity and RelChange are bit
// patterns (math.Float64bits) so the record round-trips exactly.
type journalTrial struct {
	Index         int    `json:"i"`
	Outcome       uint8  `json:"o"`
	CheckKind     uint8  `json:"c,omitempty"`
	SDC           bool   `json:"s,omitempty"`
	Acceptable    bool   `json:"a,omitempty"`
	FidelityBits  uint64 `json:"f,omitempty"`
	RelChangeBits uint64 `json:"r,omitempty"`
	TrapKind      uint8  `json:"t,omitempty"`
}

// journalAnomaly is one quarantined trial: the reproducer seed is the exact
// value to feed a single-trial campaign to replay the panic or hang.
type journalAnomaly struct {
	Index  int    `json:"i"`
	Seed   int64  `json:"seed"`
	Reason string `json:"reason"`
	Stack  string `json:"stack,omitempty"`
}

// journalRecord is the union envelope; exactly one field is set per line.
type journalRecord struct {
	H *journalHeader  `json:"h,omitempty"`
	T *journalTrial   `json:"t,omitempty"`
	A *journalAnomaly `json:"a,omitempty"`
}

func encodeTrial(i int, tr Trial) *journalTrial {
	return &journalTrial{
		Index:         i,
		Outcome:       uint8(tr.Outcome),
		CheckKind:     uint8(tr.CheckKind),
		SDC:           tr.SDC,
		Acceptable:    tr.Acceptable,
		FidelityBits:  math.Float64bits(tr.Fidelity),
		RelChangeBits: math.Float64bits(tr.RelChange),
		TrapKind:      uint8(tr.TrapKind),
	}
}

func decodeTrial(jt *journalTrial) Trial {
	return Trial{
		Outcome:    Outcome(jt.Outcome),
		CheckKind:  ir.CheckKind(jt.CheckKind),
		SDC:        jt.SDC,
		Acceptable: jt.Acceptable,
		Fidelity:   math.Float64frombits(jt.FidelityBits),
		RelChange:  math.Float64frombits(jt.RelChangeBits),
		TrapKind:   vm.TrapKind(jt.TrapKind),
	}
}

// headerFor builds the identity record for a campaign over one golden run.
// model is the resolved registry name, so a default-model ("") campaign and
// an explicit "reg-flip" one share an identity. lo/hi is the resolved shard
// range and disabled the golden run's squelched-check count.
func headerFor(t Target, technique string, cfg Config, model string, lo, hi, disabled int, goldenDyn, goldenCycles int64) *journalHeader {
	return &journalHeader{
		Version:         journalVersion,
		Workload:        t.Name,
		Technique:       technique,
		Trials:          cfg.Trials,
		Seed:            cfg.Seed,
		Model:           model,
		SymptomWindow:   cfg.SymptomWindow,
		WatchdogFactor:  cfg.WatchdogFactor,
		LargeChangeBits: math.Float64bits(cfg.LargeChange),
		GoldenDyn:       goldenDyn,
		GoldenCycles:    goldenCycles,
		ShardStart:      lo,
		ShardEnd:        hi,
		Disabled:        disabled,
	}
}

// mismatch returns a description of the first identity field on which the
// two headers disagree, or "" when the journal belongs to this campaign.
func (h *journalHeader) mismatch(want *journalHeader) string {
	switch {
	case h.Version != want.Version:
		return fmt.Sprintf("journal version %d, want %d", h.Version, want.Version)
	case h.Workload != want.Workload:
		return fmt.Sprintf("workload %q, want %q", h.Workload, want.Workload)
	case h.Technique != want.Technique:
		return fmt.Sprintf("technique %q, want %q", h.Technique, want.Technique)
	case h.Trials != want.Trials:
		return fmt.Sprintf("trial count %d, want %d", h.Trials, want.Trials)
	case h.Seed != want.Seed:
		return fmt.Sprintf("seed %d, want %d", h.Seed, want.Seed)
	case h.Model != want.Model:
		return fmt.Sprintf("fault model %q, want %q", h.Model, want.Model)
	case h.SymptomWindow != want.SymptomWindow:
		return fmt.Sprintf("symptom window %d, want %d", h.SymptomWindow, want.SymptomWindow)
	case h.WatchdogFactor != want.WatchdogFactor:
		return fmt.Sprintf("watchdog factor %d, want %d", h.WatchdogFactor, want.WatchdogFactor)
	case h.LargeChangeBits != want.LargeChangeBits:
		return "large-change threshold differs"
	case h.ShardStart != want.ShardStart || h.ShardEnd != want.ShardEnd:
		return fmt.Sprintf("shard range [%d,%d), want [%d,%d)",
			h.ShardStart, h.ShardEnd, want.ShardStart, want.ShardEnd)
	case h.Disabled != want.Disabled:
		return fmt.Sprintf("disabled-check count %d, want %d — module or inputs changed", h.Disabled, want.Disabled)
	case h.GoldenDyn != want.GoldenDyn || h.GoldenCycles != want.GoldenCycles:
		return fmt.Sprintf("golden run (%d dyn, %d cycles), want (%d, %d) — module or inputs changed",
			h.GoldenDyn, h.GoldenCycles, want.GoldenDyn, want.GoldenCycles)
	}
	return ""
}

// mergeMismatch is mismatch with the shard range neutralized: two shard
// journals of the same campaign agree on every identity field except the
// subrange they cover.
func (h *journalHeader) mergeMismatch(want *journalHeader) string {
	a := *h
	a.ShardStart, a.ShardEnd = want.ShardStart, want.ShardEnd
	return a.mismatch(want)
}

// journalWriter appends checksummed records through a shared batch buffer.
// Safe for concurrent use by campaign workers.
type journalWriter struct {
	mu      sync.Mutex
	f       *os.File // nil when wrapping a plain io.Writer (tests)
	bw      *bufio.Writer
	pending int
	err     error // first write error; campaigns fail fast on it
}

func newJournalWriter(f *os.File) *journalWriter {
	return &journalWriter{f: f, bw: bufio.NewWriter(f)}
}

// encodeLine renders one journal line: checksum, space, payload, newline.
func encodeLine(rec *journalRecord) ([]byte, error) {
	payload, err := json.Marshal(rec)
	if err != nil {
		return nil, err
	}
	line := make([]byte, 0, len(payload)+10)
	line = append(line, fmt.Sprintf("%08x", crc32.ChecksumIEEE(payload))...)
	line = append(line, ' ')
	line = append(line, payload...)
	line = append(line, '\n')
	return line, nil
}

// append writes one record, flushing every journalFlushBatch records so a
// crash forfeits a bounded number of trials. Each batch flush is followed by
// an fsync: a batch is only "durable" once the OS can no longer lose it, so
// a power-loss-style kill (not just a process kill) forfeits at most one
// in-flight batch — never records a coordinator may already have counted
// from a replay of this journal.
func (w *journalWriter) append(rec *journalRecord) error {
	line, err := encodeLine(rec)
	if err != nil {
		return err
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.err != nil {
		return w.err
	}
	if _, err := w.bw.Write(line); err != nil {
		w.err = err
		return err
	}
	w.pending++
	if w.pending >= journalFlushBatch {
		w.pending = 0
		if err := w.bw.Flush(); err != nil {
			w.err = err
			return err
		}
		if w.f != nil {
			if err := w.f.Sync(); err != nil {
				w.err = err
				return err
			}
		}
	}
	return nil
}

// close drains the batch buffer and syncs the file so a completed campaign's
// journal survives anything short of media failure.
func (w *journalWriter) close() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	err := w.bw.Flush()
	if w.f != nil {
		if serr := w.f.Sync(); err == nil {
			err = serr
		}
		if cerr := w.f.Close(); err == nil {
			err = cerr
		}
	}
	if w.err != nil {
		return w.err
	}
	return err
}

// journalState is everything replay recovered from a journal.
type journalState struct {
	header    *journalHeader
	trials    map[int]Trial
	anomalies map[int]Anomaly
	// valid is the byte length of the intact prefix; everything past it is
	// tail damage the resume path truncates before appending.
	valid int64
}

// replayJournal reads records until the first damaged or torn line. It
// never fails: a journal with no intact header simply yields a state with
// header == nil (resume then starts the campaign from scratch, which is the
// correct recovery for a crash during the very first batch).
func replayJournal(r io.Reader) *journalState {
	st := &journalState{
		trials:    make(map[int]Trial),
		anomalies: make(map[int]Anomaly),
	}
	br := bufio.NewReader(r)
	for {
		line, err := br.ReadString('\n')
		if err != nil {
			// EOF with a partial line is a torn write; any other error ends
			// the intact prefix just the same.
			return st
		}
		rec, ok := decodeLine(line)
		if !ok {
			return st
		}
		switch {
		case rec.H != nil:
			// A header is only valid as the first record.
			if st.header != nil || st.valid != 0 {
				return st
			}
			st.header = rec.H
		case rec.T != nil:
			if st.header == nil || rec.T.Index < 0 || rec.T.Index >= st.header.Trials {
				return st
			}
			st.trials[rec.T.Index] = decodeTrial(rec.T)
		case rec.A != nil:
			if st.header == nil || rec.A.Index < 0 || rec.A.Index >= st.header.Trials {
				return st
			}
			st.anomalies[rec.A.Index] = Anomaly{
				Trial:  rec.A.Index,
				Seed:   rec.A.Seed,
				Reason: rec.A.Reason,
				Stack:  rec.A.Stack,
			}
		default:
			return st
		}
		st.valid += int64(len(line))
	}
}

// decodeLine validates one "<crc8hex> <json>\n" line.
func decodeLine(line string) (*journalRecord, bool) {
	if len(line) < 11 || line[len(line)-1] != '\n' || line[8] != ' ' {
		return nil, false
	}
	sum, err := strconv.ParseUint(line[:8], 16, 32)
	if err != nil {
		return nil, false
	}
	payload := line[9 : len(line)-1]
	if crc32.ChecksumIEEE([]byte(payload)) != uint32(sum) {
		return nil, false
	}
	rec := new(journalRecord)
	if err := json.Unmarshal([]byte(payload), rec); err != nil {
		return nil, false
	}
	return rec, true
}

// openJournal prepares the campaign's journal file. With resume set it
// replays the intact prefix, validates the header against this campaign's
// identity, truncates any tail damage, and returns the recovered state
// alongside a writer positioned to append; otherwise (or when the journal
// is missing, headerless, or empty) it starts a fresh journal with a new
// header. The returned state is nil when nothing was recovered.
func openJournal(path string, resume bool, hdr *journalHeader) (*journalWriter, *journalState, error) {
	if resume {
		if f, err := os.Open(path); err == nil {
			st := replayJournal(f)
			f.Close()
			if st.header != nil {
				if d := st.header.mismatch(hdr); d != "" {
					return nil, nil, fmt.Errorf("fault: journal %s does not match this campaign: %s", path, d)
				}
				af, err := os.OpenFile(path, os.O_WRONLY, 0o644)
				if err != nil {
					return nil, nil, err
				}
				// Cut the damaged tail so the journal stays replayable after
				// this resume appends past it.
				if err := af.Truncate(st.valid); err != nil {
					af.Close()
					return nil, nil, err
				}
				if _, err := af.Seek(st.valid, io.SeekStart); err != nil {
					af.Close()
					return nil, nil, err
				}
				return newJournalWriter(af), st, nil
			}
		} else if !os.IsNotExist(err) {
			return nil, nil, err
		}
		// Missing file or no intact header: fall through to a fresh start.
	}
	f, err := os.Create(path)
	if err != nil {
		return nil, nil, err
	}
	w := newJournalWriter(f)
	if err := w.append(&journalRecord{H: hdr}); err != nil {
		w.close()
		return nil, nil, err
	}
	return w, nil, nil
}
