package fault

// Fuzzing the journal replayer. Replay is the recovery path for every
// crash mode the campaign service tolerates, so it must hold three
// invariants for arbitrary bytes — not just for the damage shapes the
// unit tests enumerate: it never panics, the intact prefix it reports
// never extends past the input, and replaying that prefix again yields
// the identical state (truncate-then-resume depends on this).

import (
	"bytes"
	"math"
	"testing"
)

// fuzzJournalImage renders records into one journal image for the seed
// corpus (journalBytes needs a *testing.T, which FuzzXxx does not have).
func fuzzJournalImage(f *testing.F, recs ...*journalRecord) []byte {
	f.Helper()
	var buf []byte
	for _, rec := range recs {
		line, err := encodeLine(rec)
		if err != nil {
			f.Fatal(err)
		}
		buf = append(buf, line...)
	}
	return buf
}

func FuzzJournalReplay(f *testing.F) {
	hdr := testHeader()
	whole := fuzzJournalImage(f,
		&journalRecord{H: hdr},
		&journalRecord{T: encodeTrial(0, Trial{Outcome: Masked})},
		&journalRecord{T: encodeTrial(1, Trial{Outcome: USDC, SDC: true, Fidelity: 0.25})},
		&journalRecord{A: &journalAnomaly{Index: 3, Seed: 99, Reason: AnomalyPanic, Stack: "stack"}},
		&journalRecord{T: encodeTrial(5, Trial{Outcome: Failure})},
	)
	f.Add([]byte{})
	f.Add([]byte("not a journal\n"))
	f.Add(whole)
	// Systematic damage over the well-formed image: truncations (torn
	// writes) and single-byte corruptions (media damage) at a spread of
	// offsets, so the plain `go test` run already covers both families
	// even without a long fuzzing session.
	for cut := 0; cut < len(whole); cut += 13 {
		f.Add(append([]byte{}, whole[:cut]...))
	}
	for pos := 0; pos < len(whole); pos += 17 {
		bad := append([]byte{}, whole...)
		bad[pos] ^= 0x40
		f.Add(bad)
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		st := replayJournal(bytes.NewReader(data))
		if st.valid < 0 || st.valid > int64(len(data)) {
			t.Fatalf("valid prefix %d outside input of %d bytes", st.valid, len(data))
		}
		if st.header == nil && (st.valid != 0 || len(st.trials) != 0 || len(st.anomalies) != 0) {
			t.Fatalf("state recovered without a header: %+v", st)
		}
		if st.header != nil {
			for i := range st.trials {
				if i < 0 || i >= st.header.Trials {
					t.Fatalf("trial index %d outside [0,%d)", i, st.header.Trials)
				}
			}
			for i := range st.anomalies {
				if i < 0 || i >= st.header.Trials {
					t.Fatalf("anomaly index %d outside [0,%d)", i, st.header.Trials)
				}
			}
		}

		// Replaying the reported intact prefix must reproduce the state
		// exactly — this is what resume's truncate-to-valid relies on.
		st2 := replayJournal(bytes.NewReader(data[:st.valid]))
		if st2.valid != st.valid || len(st2.trials) != len(st.trials) || len(st2.anomalies) != len(st.anomalies) {
			t.Fatalf("prefix replay differs: %d/%d/%d vs %d/%d/%d",
				st2.valid, len(st2.trials), len(st2.anomalies), st.valid, len(st.trials), len(st.anomalies))
		}
		for i, tr := range st.trials {
			tr2, ok := st2.trials[i]
			if !ok {
				t.Fatalf("trial %d lost on prefix replay", i)
			}
			if math.Float64bits(tr.Fidelity) != math.Float64bits(tr2.Fidelity) ||
				math.Float64bits(tr.RelChange) != math.Float64bits(tr2.RelChange) {
				t.Fatalf("trial %d floats drifted on prefix replay", i)
			}
		}
		for i, a := range st.anomalies {
			if st2.anomalies[i] != a {
				t.Fatalf("anomaly %d drifted on prefix replay", i)
			}
		}
	})
}
