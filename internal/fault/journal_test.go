package fault

// White-box journal tests: record round-tripping, damage-tolerant replay,
// and header identity checking — the pieces resume correctness rests on.

import (
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/ir"
	"repro/internal/vm"
)

func testHeader() *journalHeader {
	return &journalHeader{
		Version:         journalVersion,
		Workload:        "w",
		Technique:       "Original",
		Trials:          8,
		Seed:            2014,
		SymptomWindow:   1000,
		WatchdogFactor:  20,
		LargeChangeBits: math.Float64bits(1.0),
		GoldenDyn:       12345,
		GoldenCycles:    23456,
		ShardStart:      0,
		ShardEnd:        8,
		Disabled:        0,
	}
}

// journalBytes renders a header plus records into one journal image.
func journalBytes(t *testing.T, recs ...*journalRecord) []byte {
	t.Helper()
	var buf []byte
	for _, rec := range recs {
		line, err := encodeLine(rec)
		if err != nil {
			t.Fatal(err)
		}
		buf = append(buf, line...)
	}
	return buf
}

func TestJournalTrialRoundTrip(t *testing.T) {
	// NaN payloads and negative zero must survive: fidelity values come
	// from arbitrary Measure callbacks.
	trials := []Trial{
		{},
		{Outcome: SWDetect, CheckKind: ir.CheckDup, TrapKind: vm.TrapCheck},
		{Outcome: USDC, SDC: true, Fidelity: math.Float64frombits(0x7ff8_dead_beef_0001), RelChange: math.Copysign(0, -1)},
		{Outcome: Masked, SDC: true, Acceptable: true, Fidelity: 0.987654321, RelChange: 42.5},
	}
	for i, tr := range trials {
		jt := encodeTrial(i, tr)
		if jt.Index != i {
			t.Fatalf("index %d != %d", jt.Index, i)
		}
		got := decodeTrial(jt)
		if math.Float64bits(got.Fidelity) != math.Float64bits(tr.Fidelity) ||
			math.Float64bits(got.RelChange) != math.Float64bits(tr.RelChange) {
			t.Fatalf("trial %d floats not bit-exact: %+v != %+v", i, got, tr)
		}
		// Floats were compared bitwise above; zero them for the struct
		// comparison (NaN breaks ==).
		got.Fidelity, got.RelChange = 0, 0
		want := tr
		want.Fidelity, want.RelChange = 0, 0
		if got != want {
			t.Fatalf("trial %d round-trip: %+v != %+v", i, got, want)
		}
	}
}

func TestJournalReplayStopsAtCorruption(t *testing.T) {
	hdr := testHeader()
	buf := journalBytes(t,
		&journalRecord{H: hdr},
		&journalRecord{T: encodeTrial(0, Trial{Outcome: Masked})},
		&journalRecord{T: encodeTrial(1, Trial{Outcome: Failure})},
		&journalRecord{T: encodeTrial(2, Trial{Outcome: USDC, SDC: true})},
	)
	// Flip one payload byte in the third record: its checksum no longer
	// matches, so replay must keep exactly the first two trials.
	lines := strings.SplitAfter(string(buf), "\n")
	corrupted := []byte(lines[0] + lines[1] + lines[2])
	wantValid := int64(len(corrupted))
	bad := []byte(lines[3])
	bad[15] ^= 0x01
	corrupted = append(corrupted, bad...)

	st := replayJournal(strings.NewReader(string(corrupted)))
	if st.header == nil {
		t.Fatal("header lost")
	}
	if len(st.trials) != 2 {
		t.Fatalf("recovered %d trials, want 2", len(st.trials))
	}
	if st.valid != wantValid {
		t.Fatalf("valid prefix %d bytes, want %d", st.valid, wantValid)
	}
}

func TestJournalReplayTornTail(t *testing.T) {
	hdr := testHeader()
	buf := journalBytes(t,
		&journalRecord{H: hdr},
		&journalRecord{T: encodeTrial(0, Trial{Outcome: Masked})},
		&journalRecord{A: &journalAnomaly{Index: 3, Seed: 99, Reason: AnomalyPanic, Stack: "stack"}},
		&journalRecord{T: encodeTrial(1, Trial{Outcome: Failure})},
	)
	// Cut mid-way through the last record, as a crash during a write would.
	cut := len(buf) - 7
	st := replayJournal(strings.NewReader(string(buf[:cut])))
	if len(st.trials) != 1 || len(st.anomalies) != 1 {
		t.Fatalf("recovered %d trials, %d anomalies; want 1, 1", len(st.trials), len(st.anomalies))
	}
	if a := st.anomalies[3]; a.Seed != 99 || a.Reason != AnomalyPanic || a.Stack != "stack" {
		t.Fatalf("anomaly mangled: %+v", a)
	}
	if int(st.valid) >= cut {
		t.Fatalf("valid prefix %d includes torn bytes (cut %d)", st.valid, cut)
	}
}

func TestJournalReplayHeaderless(t *testing.T) {
	// Records before a header (e.g. a crash tore the header write itself)
	// recover nothing: a headerless journal is a fresh start.
	buf := journalBytes(t, &journalRecord{T: encodeTrial(0, Trial{})})
	st := replayJournal(strings.NewReader(string(buf)))
	if st.header != nil || len(st.trials) != 0 || st.valid != 0 {
		t.Fatalf("headerless journal recovered state: %+v", st)
	}
}

func TestJournalReplayRejectsOutOfRangeIndex(t *testing.T) {
	hdr := testHeader() // Trials: 8
	buf := journalBytes(t,
		&journalRecord{H: hdr},
		&journalRecord{T: encodeTrial(8, Trial{})}, // one past the end
	)
	st := replayJournal(strings.NewReader(string(buf)))
	if len(st.trials) != 0 {
		t.Fatal("out-of-range trial index accepted")
	}
}

func TestOpenJournalRejectsMismatchedHeader(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.log")
	hdr := testHeader()
	if err := os.WriteFile(path, journalBytes(t, &journalRecord{H: hdr}), 0o644); err != nil {
		t.Fatal(err)
	}
	other := testHeader()
	other.Seed = 7
	if _, _, err := openJournal(path, true, other); err == nil || !strings.Contains(err.Error(), "does not match") {
		t.Fatalf("mismatched header accepted: %v", err)
	}
	// Same identity must be accepted and position the writer past the header.
	jw, st, err := openJournal(path, true, testHeader())
	if err != nil {
		t.Fatal(err)
	}
	defer jw.close()
	if st == nil || st.header == nil {
		t.Fatal("matching journal not replayed")
	}
}

func TestOpenJournalResumeTruncatesDamage(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.log")
	hdr := testHeader()
	intact := journalBytes(t,
		&journalRecord{H: hdr},
		&journalRecord{T: encodeTrial(0, Trial{Outcome: Masked})},
	)
	damaged := append(append([]byte{}, intact...), "garbage tail"...)
	if err := os.WriteFile(path, damaged, 0o644); err != nil {
		t.Fatal(err)
	}
	jw, st, err := openJournal(path, true, testHeader())
	if err != nil {
		t.Fatal(err)
	}
	if st == nil || len(st.trials) != 1 {
		t.Fatalf("replay state: %+v", st)
	}
	// Append one record and close: the file must now replay cleanly to two
	// trials, with the garbage gone.
	if err := jw.append(&journalRecord{T: encodeTrial(1, Trial{Outcome: Failure})}); err != nil {
		t.Fatal(err)
	}
	if err := jw.close(); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	st2 := replayJournal(f)
	if len(st2.trials) != 2 {
		t.Fatalf("after resume-append: recovered %d trials, want 2", len(st2.trials))
	}
}

func TestJournalWriterBatchDurability(t *testing.T) {
	// The writer's contract: records become durable in batches of
	// journalFlushBatch (flush + fsync), so a kill at any point forfeits
	// at most one in-flight batch. Observed through the file itself: no
	// bytes land before the batch fills, the whole batch lands when it
	// does, and close drains the remainder.
	path := filepath.Join(t.TempDir(), "j.log")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	w := newJournalWriter(f)
	hdr := testHeader()
	hdr.Trials = journalFlushBatch + 8
	hdr.ShardEnd = hdr.Trials

	replayFile := func() *journalState {
		t.Helper()
		rf, err := os.Open(path)
		if err != nil {
			t.Fatal(err)
		}
		defer rf.Close()
		return replayJournal(rf)
	}
	size := func() int64 {
		t.Helper()
		fi, err := os.Stat(path)
		if err != nil {
			t.Fatal(err)
		}
		return fi.Size()
	}

	// Header plus batch-2 trials: one short of a full batch, nothing on disk.
	if err := w.append(&journalRecord{H: hdr}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < journalFlushBatch-2; i++ {
		if err := w.append(&journalRecord{T: encodeTrial(i, Trial{Outcome: Masked})}); err != nil {
			t.Fatal(err)
		}
	}
	if n := size(); n != 0 {
		t.Fatalf("%d bytes on disk before the batch filled", n)
	}
	// One more record completes the batch: everything buffered lands at once.
	if err := w.append(&journalRecord{T: encodeTrial(journalFlushBatch-2, Trial{Outcome: Masked})}); err != nil {
		t.Fatal(err)
	}
	if st := replayFile(); st.header == nil || len(st.trials) != journalFlushBatch-1 {
		t.Fatalf("after batch flush: %d trials on disk, want %d", len(st.trials), journalFlushBatch-1)
	}
	// The next record starts a new batch and stays buffered...
	if err := w.append(&journalRecord{T: encodeTrial(journalFlushBatch-1, Trial{Outcome: Failure})}); err != nil {
		t.Fatal(err)
	}
	if st := replayFile(); len(st.trials) != journalFlushBatch-1 {
		t.Fatalf("partial batch leaked to disk: %d trials", len(st.trials))
	}
	// ...until close drains it.
	if err := w.close(); err != nil {
		t.Fatal(err)
	}
	if st := replayFile(); len(st.trials) != journalFlushBatch {
		t.Fatalf("after close: %d trials on disk, want %d", len(st.trials), journalFlushBatch)
	}
}

func TestWilsonProperties(t *testing.T) {
	// Properties the campaign's early-stop logic relies on, over a grid of
	// (successes, n): the interval is inside [0,1], contains the point
	// estimate k/n, and narrows when the sample grows at the same
	// proportion (so a tightness target, once reached, stays reached).
	for n := 1; n <= 500; n = n*3 + 1 {
		step := n / 7
		if step == 0 {
			step = 1
		}
		for k := 0; k <= n; k += step {
			lo, hi := Wilson(k, n, z95)
			if lo < 0 || hi > 1 || lo >= hi {
				t.Fatalf("Wilson(%d,%d): degenerate interval [%v,%v]", k, n, lo, hi)
			}
			p := float64(k) / float64(n)
			if p < lo-1e-12 || p > hi+1e-12 {
				t.Fatalf("Wilson(%d,%d): point estimate %v outside [%v,%v]", k, n, p, lo, hi)
			}
			lo4, hi4 := Wilson(4*k, 4*n, z95)
			if hi4-lo4 >= hi-lo {
				t.Fatalf("Wilson(%d,%d) width %v did not shrink at 4x the sample (%v)",
					k, n, hi-lo, hi4-lo4)
			}
		}
	}
}

func TestWilsonInterval(t *testing.T) {
	// n = 0 is vacuous.
	if lo, hi := Wilson(0, 0, z95); lo != 0 || hi != 1 {
		t.Fatalf("n=0: [%v,%v]", lo, hi)
	}
	// Agresti-style reference point: 50/100 at 95% gives roughly [0.40, 0.60].
	lo, hi := Wilson(50, 100, z95)
	if lo < 0.39 || lo > 0.41 || hi < 0.59 || hi > 0.61 {
		t.Fatalf("50/100: [%v,%v], want ~[0.40,0.60]", lo, hi)
	}
	// Extremes stay clamped in [0,1] and nondegenerate.
	lo, hi = Wilson(0, 10, z95)
	if lo != 0 || hi <= 0 || hi >= 1 {
		t.Fatalf("0/10: [%v,%v]", lo, hi)
	}
	lo, hi = Wilson(10, 10, z95)
	if hi != 1 || lo <= 0 || lo >= 1 {
		t.Fatalf("10/10: [%v,%v]", lo, hi)
	}
	// Interval width shrinks with n.
	if !ciTight(50, 1000, 0.07) || ciTight(5, 10, 0.07) {
		t.Fatal("ciTight not monotone in n")
	}
}
