package fault_test

// Lockstep-equivalence suite: the batched campaign path (one carrier per
// checkpoint bin, trials peeled at their divergence points) must be
// bit-identical to the solo path — same Tally, same per-trial records, same
// Anomalies, same journal-replayed Report — across every workload and
// protection mode, for both fault models, and under the full supervision
// stack: panics, stuck trials, cancellation mid-batch, early stopping.
// This is the acceptance gate for the lockstep batch executor.

import (
	"context"
	"math/rand"
	"os"
	"path/filepath"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/workloads"
)

// TestCampaignLockstepEquivalence is the acceptance matrix: all workloads ×
// all protection modes, every bin batched (Lockstep=1, so even single-lane
// bins ride the carrier) vs the solo path. Under the race detector the
// matrix is trimmed to representative cells, matching the checkpoint
// suite's convention.
func TestCampaignLockstepEquivalence(t *testing.T) {
	modes := core.SchemeNames()
	names := make([]string, 0, 13)
	for _, w := range workloads.All() {
		names = append(names, w.Name)
	}
	if raceEnabled {
		names = []string{"tiff2bw", "g721dec", "svm", "kmeans"}
		modes = []string{core.SchemeOriginal, core.SchemeDupVal}
	}
	for _, name := range names {
		for _, mode := range modes {
			name, mode := name, mode
			t.Run(name+"/"+mode, func(t *testing.T) {
				t.Parallel()
				w := workloads.ByName(name)
				prot := protectedFor(t, w, mode)
				cfg := fault.DefaultConfig()
				cfg.Trials = 12
				cfg.Checkpoints = 6
				run := func(lockstep int) *fault.Report {
					c := cfg
					c.Lockstep = lockstep
					rep, err := fault.Run(context.Background(), w.Target(workloads.Test), prot, mode, c)
					if err != nil {
						t.Fatal(err)
					}
					return rep
				}
				diffReports(t, name+"/"+mode, run(1), run(-1))
			})
		}
	}
}

// TestCampaignLockstepEquivalenceDense packs many trials into few bins so
// carriers serve long lane chains (including equal-trigger duplicates),
// which the 12-trial matrix cannot produce.
func TestCampaignLockstepEquivalenceDense(t *testing.T) {
	w := workloads.ByName("g721dec")
	prot := protectedFor(t, w, core.SchemeDup)
	cfg := fault.DefaultConfig()
	cfg.Trials = 90
	cfg.Checkpoints = 3
	run := func(lockstep int) *fault.Report {
		c := cfg
		c.Lockstep = lockstep
		rep, err := fault.Run(context.Background(), w.Target(workloads.Test), prot, "DupOnly", c)
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	diffReports(t, "dense", run(1), run(-1))
}

// TestCampaignLockstepEquivalenceBranch covers the branch-target model,
// whose effective divergence point sits one dyn index before the trigger —
// including trigger 0, whose lane peels at origin.
func TestCampaignLockstepEquivalenceBranch(t *testing.T) {
	for _, name := range []string{"kmeans", "g721enc"} {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			w := workloads.ByName(name)
			prot := protectedFor(t, w, core.SchemeDup)
			cfg := fault.DefaultConfig()
			cfg.Trials = 20
			cfg.Model = fault.ModelBranchTarget
			cfg.Checkpoints = 6
			run := func(lockstep int) *fault.Report {
				c := cfg
				c.Lockstep = lockstep
				rep, err := fault.Run(context.Background(), w.Target(workloads.Test), prot, "DupOnly", c)
				if err != nil {
					t.Fatal(err)
				}
				return rep
			}
			diffReports(t, name+"/branch", run(1), run(-1))
		})
	}
}

// TestLockstepJournalReplayEquivalence journals a lockstep campaign, then
// replays the journal into a fresh campaign and cross-checks against a
// solo journaled run: the records a carrier-executed campaign writes must
// reconstruct the identical Report the solo path produces.
func TestLockstepJournalReplayEquivalence(t *testing.T) {
	w := workloads.ByName("tiff2bw")
	prot := protectedFor(t, w, core.SchemeDupVal)
	dir := t.TempDir()

	base := fault.DefaultConfig()
	base.Trials = 24
	base.Checkpoints = 4

	run := func(lockstep int, journal string, resume bool) *fault.Report {
		c := base
		c.Lockstep = lockstep
		c.JournalPath = journal
		c.Resume = resume
		rep, err := fault.Run(context.Background(), w.Target(workloads.Test), prot, "DupVal", c)
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}

	lockPath := filepath.Join(dir, "lockstep.journal")
	soloPath := filepath.Join(dir, "solo.journal")
	lock := run(1, lockPath, false)
	solo := run(-1, soloPath, false)
	diffReports(t, "journaled", lock, solo)

	// Replaying the lockstep journal must reconstruct the identical report
	// without executing anything (all trials are decided).
	replayed := run(-1, lockPath, true)
	if replayed.Replayed != base.Trials {
		t.Fatalf("replayed %d of %d trials", replayed.Replayed, base.Trials)
	}
	diffReports(t, "replayed", replayed, solo)

	// And a solo journal resumes under lockstep just as well: the journal
	// header deliberately excludes throughput knobs.
	crossed := run(1, soloPath, true)
	if crossed.Replayed != base.Trials {
		t.Fatalf("cross-replayed %d of %d trials", crossed.Replayed, base.Trials)
	}
	diffReports(t, "cross-replayed", crossed, lock)

	if _, err := os.Stat(lockPath); err != nil {
		t.Fatal(err)
	}
}

// TestLockstepSmallBinsDegradeToSolo sets the lane threshold above every
// bin's population: the campaign must take the solo path throughout and
// still match a lockstep-disabled run bit for bit.
func TestLockstepSmallBinsDegradeToSolo(t *testing.T) {
	w := workloads.ByName("svm")
	prot := protectedFor(t, w, core.SchemeOriginal)
	cfg := fault.DefaultConfig()
	cfg.Trials = 10
	cfg.Checkpoints = 6
	run := func(lockstep int) *fault.Report {
		c := cfg
		c.Lockstep = lockstep
		rep, err := fault.Run(context.Background(), w.Target(workloads.Test), prot, "Original", c)
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	// Threshold 100 can never be met by 10 trials; -1 disables outright.
	diffReports(t, "degrade", run(100), run(-1))
}

// TestLockstepAllTrialsDivergeImmediately hunts a seed whose every trigger
// precedes the first snapshot: the whole campaign lands in the scratch bin
// and every lane peels at (or near) the origin. The carrier must cope with
// a bin that never advances far and stay bit-identical to solo.
func TestLockstepAllTrialsDivergeImmediately(t *testing.T) {
	w := workloads.ByName("tiff2bw")
	prot := protectedFor(t, w, core.SchemeOriginal)

	cfg := fault.DefaultConfig()
	cfg.Trials = 4
	cfg.Checkpoints = 2

	// Find the golden dyn once to hunt seeds against the schedule.
	probe, err := fault.Run(context.Background(), w.Target(workloads.Test), prot, "Original", cfg)
	if err != nil {
		t.Fatal(err)
	}
	firstSnap := probe.GoldenDyn * 1 / 3 // Checkpoints=2 → snapAt[0] = dyn/3
	seed := int64(-1)
	for s := int64(0); s < 4000; s++ {
		all := true
		for i := 0; i < cfg.Trials; i++ {
			trig := rand.New(rand.NewSource(s + int64(i)*7919)).Int63n(probe.GoldenDyn)
			if trig >= firstSnap {
				all = false
				break
			}
		}
		if all {
			seed = s
			break
		}
	}
	if seed < 0 {
		t.Skip("no seed with all triggers before the first snapshot")
	}
	cfg.Seed = seed
	run := func(lockstep int) *fault.Report {
		c := cfg
		c.Lockstep = lockstep
		rep, err := fault.Run(context.Background(), w.Target(workloads.Test), prot, "Original", c)
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	diffReports(t, "scratch-bin", run(1), run(-1))
}

// TestLockstepPanicQuarantine poisons one trial inside a batched bin: the
// panic must quarantine exactly that trial, the worker must rebuild its
// carrier, and every other trial must stay bit-identical to a clean
// lockstep campaign.
func TestLockstepPanicQuarantine(t *testing.T) {
	const poisoned = 3
	w := workloads.ByName("kmeans")
	prot := protectedFor(t, w, core.SchemeOriginal)

	cfg := fault.DefaultConfig()
	cfg.Trials = 10
	cfg.Checkpoints = 4
	cfg.Lockstep = 1
	clean, err := fault.Run(context.Background(), w.Target(workloads.Test), prot, "Original", cfg)
	if err != nil {
		t.Fatal(err)
	}

	cfg.OnTrial = func(trial int) {
		if trial == poisoned {
			panic("injected lockstep panic")
		}
	}
	rep, err := fault.Run(context.Background(), w.Target(workloads.Test), prot, "Original", cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Anomalies) != 1 {
		t.Fatalf("anomalies = %+v, want exactly one", rep.Anomalies)
	}
	a := rep.Anomalies[0]
	if a.Trial != poisoned || a.Reason != fault.AnomalyPanic {
		t.Fatalf("anomaly %+v, want trial %d panic", a, poisoned)
	}
	if rep.Partial {
		t.Fatal("quarantine must not mark the campaign partial")
	}
	for i := range rep.Trials {
		if i == poisoned {
			continue
		}
		if rep.Trials[i] != clean.Trials[i] {
			t.Fatalf("trial %d perturbed by carrier rebuild: %+v != %+v", i, rep.Trials[i], clean.Trials[i])
		}
	}
}

// TestLockstepStuckTrialsQuarantined is the stuck-trial table for the
// batched path: a 1ns deadline reaps peeled suffixes; each gets exactly one
// re-peel retry before quarantine, and the accounting must match the solo
// supervision contract (attempts = completed + 2×timeouts).
func TestLockstepStuckTrialsQuarantined(t *testing.T) {
	w := workloads.ByName("kmeans")
	prot := protectedFor(t, w, core.SchemeOriginal)
	cfg := fault.DefaultConfig()
	cfg.Trials = 6
	cfg.Workers = 1
	cfg.Checkpoints = 3
	cfg.Lockstep = 1
	cfg.TrialTimeout = time.Nanosecond
	var attempts atomic.Int64
	cfg.OnTrial = func(int) { attempts.Add(1) }
	rep, err := fault.Run(context.Background(), w.Target(workloads.Test), prot, "Original", cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.GoldenDyn < 1<<14 {
		t.Skipf("golden run too short (%d dyn) for the deadline poll cadence", rep.GoldenDyn)
	}
	timeouts := 0
	for _, a := range rep.Anomalies {
		if a.Reason != fault.AnomalyTimeout {
			t.Fatalf("unexpected anomaly reason: %+v", a)
		}
		timeouts++
	}
	if rep.Tally.N+timeouts != cfg.Trials {
		t.Fatalf("N=%d + timeouts=%d != Trials=%d", rep.Tally.N, timeouts, cfg.Trials)
	}
	want := int64(rep.Tally.N + 2*timeouts)
	if got := attempts.Load(); got != want {
		t.Fatalf("attempts = %d, want %d (%d done, %d timeouts)", got, want, rep.Tally.N, timeouts)
	}
}

// TestLockstepCancellationMidBatch cancels while carriers are mid-bin: the
// campaign must come back Partial with an internally consistent tally and
// no leaked workers — the carrier's Stop wiring turns a long shared-prefix
// advance into a clean ErrBatchStopped exit.
func TestLockstepCancellationMidBatch(t *testing.T) {
	w := workloads.ByName("kmeans")
	prot := protectedFor(t, w, core.SchemeOriginal)
	before := runtime.NumGoroutine()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	cfg := fault.DefaultConfig()
	cfg.Trials = 200
	cfg.Workers = 4
	cfg.Checkpoints = 4
	cfg.Lockstep = 1
	var started atomic.Int64
	cfg.OnTrial = func(int) {
		if started.Add(1) == 10 {
			cancel()
		}
	}
	rep, err := fault.Run(ctx, w.Target(workloads.Test), prot, "Original", cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Partial {
		t.Fatal("cancelled campaign not marked Partial")
	}
	if rep.EarlyStopped {
		t.Fatal("cancellation misreported as early stop")
	}
	if rep.Tally.N == 0 || rep.Tally.N >= cfg.Trials {
		t.Fatalf("partial Tally.N = %d, want in (0, %d)", rep.Tally.N, cfg.Trials)
	}
	sum := 0
	for _, c := range rep.Tally.Count {
		sum += c
	}
	if sum != rep.Tally.N {
		t.Fatalf("partial outcome counts sum to %d != N=%d", sum, rep.Tally.N)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		if runtime.NumGoroutine() <= before+2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines: %d before campaign, %d after", before, runtime.NumGoroutine())
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestLockstepEarlyStopping checks that Wilson-interval early stopping
// composes with batched bins: the campaign stops with trials saved and the
// tallies stay internally consistent.
func TestLockstepEarlyStopping(t *testing.T) {
	w := workloads.ByName("kmeans")
	prot := protectedFor(t, w, core.SchemeOriginal)
	cfg := fault.DefaultConfig()
	cfg.Trials = 4000
	cfg.Checkpoints = 4
	cfg.Lockstep = 1
	cfg.TargetCI = 0.25 // loose: stops after a few dozen trials
	rep, err := fault.Run(context.Background(), w.Target(workloads.Test), prot, "Original", cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.EarlyStopped || rep.TrialsSaved == 0 {
		t.Fatalf("expected early stop with savings, got stopped=%v saved=%d", rep.EarlyStopped, rep.TrialsSaved)
	}
	if rep.Tally.N+rep.TrialsSaved != cfg.Trials {
		t.Fatalf("N=%d + saved=%d != Trials=%d", rep.Tally.N, rep.TrialsSaved, cfg.Trials)
	}
}
