package fault

// The fault-model registry — the campaign engine's second axis, orthogonal
// to the protection-scheme registry in internal/core. A Model decides what
// one trial corrupts; everything downstream (checkpoint binning, lockstep
// peeling, convergence fast-forwarding, journaling, the difftest oracle,
// the experiments sweep, both CLIs) enumerates the registry, so a newly
// registered model becomes a first-class campaign with no further wiring.
//
// Two injection mechanisms coexist:
//
//   - engine-injected models (reg-flip, branch-target) draw a vm.FaultPlan
//     and let the engine fire it mid-run — the original path, bit-identical
//     under the registry to what the pre-registry campaign produced;
//   - suspend-injected models (mem-flip, burst, stuck-at, intermittent)
//     park the machine at the injection point via RunOptions.SuspendAtDyn —
//     the same unified event threshold the engine uses for its own fault
//     triggers — and corrupt architectural state externally through the
//     vm's fault-access surface, then resume. Re-arming models (stuck-at,
//     intermittent) park again at every scheduled re-arm point.
//
// Soundness rule for re-arming models: convergence fast-forwarding and
// MatchesSnapshot short-circuits prove "the future is golden" from "the
// present state is golden". That implication fails once a fault can fire
// again after the comparison point, so trials of models whose Rearms()
// reports true never fast-forward — see finishTrial.

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"strings"

	"repro/internal/ir"
	"repro/internal/vm"
)

// Model is one registered fault model.
type Model interface {
	// Name is the canonical registry identifier ("mem-flip").
	Name() string
	// Title is the human-readable label ("Memory bit flip").
	Title() string
	// Draw draws one trial's plan from a freshly seeded per-trial rng. The
	// FIRST draw after seeding must be the trigger, rng.Int63n(goldenDyn) —
	// the checkpoint scheduler (drawTriggers) and the anomaly reproducer
	// scheme pin that position. Space draws (slot, address, bit, width)
	// must be deferred to injection time, when the machine state they
	// condition on exists.
	Draw(goldenDyn int64, rng *rand.Rand) *Plan
	// EngineInjected reports whether plans carry a vm.FaultPlan the engine
	// executes itself. Suspend-injected models (false) require the fast
	// engine: only it implements SuspendAtDyn.
	EngineInjected() bool
	// Inject corrupts a machine parked at the plan's injection point
	// (suspend-injected models only). It returns false when nothing
	// eligible is available yet — e.g. no live register — and the trial
	// driver retries one instruction later, mirroring the engine's own
	// pending-fault retry.
	Inject(m *vm.Machine, p *Plan) bool
	// Rearms is the re-arm predicate: true when an injected fault keeps
	// firing after its first strike (the stuck-at class). Re-arming trials
	// are excluded from convergence fast-forwarding (soundness — see the
	// package comment above).
	Rearms() bool
	// Rearm re-forces the corruption on a machine parked at a re-arm point
	// and returns the next re-arm dyn, or -1 once the fault has retired.
	// Called only when Rearms() is true.
	Rearm(m *vm.Machine, p *Plan) int64
	// EffectiveTrigger is the earliest dyn index whose machine state the
	// injection can observe — the checkpoint binning / lockstep peel bound.
	EffectiveTrigger(trigger int64) int64
}

// Plan is one trial's drawn fault: the trigger plus either an engine
// fault plan (VM non-nil) or the state a suspend-injected model needs to
// fire and, for re-arming models, keep firing.
type Plan struct {
	// TriggerDyn is the injection point in dynamic instructions — always
	// the first rng draw after per-trial seeding.
	TriggerDyn int64
	// VM is the engine-executed fault plan; nil for suspend-injected
	// models. Injection results (Injected, RelChange) live on it.
	VM *vm.FaultPlan
	// Injected and RelChange mirror vm.FaultPlan's fields for
	// suspend-injected models; read them through injected()/relChange(),
	// which dispatch on the mechanism.
	Injected  bool
	RelChange float64

	model Model
	// rng feeds the model's lazy space draws at injection time; the worker
	// re-seeds it per trial, so draws replay identically on every execution
	// path (scratch, checkpointed, lockstep) — each parks the machine in
	// the same state before the same draw.
	rng *rand.Rand
	// pendingAt is the next dyn the trial driver must park the machine at
	// for this plan — the injection point before the fault fires, then the
	// next re-arm point for re-arming models; -1 when no park is owed.
	pendingAt int64

	// Suspend-injected model scratch.
	addr   uint64 // corrupted memory word (mem-flip, burst, stuck-at)
	mask   uint64 // corrupted bit(s) within the word
	val    uint64 // stuck-at: bit values re-forced under mask
	until  int64  // intermittent: re-arming stops once dyn reaches this
	stride int64  // re-arm cadence in dynamic instructions
}

// Model returns the model that drew this plan.
func (p *Plan) Model() Model { return p.model }

// injected reports whether the fault has fired, whichever mechanism
// carries it.
func (p *Plan) injected() bool {
	if p.VM != nil {
		return p.VM.Injected
	}
	return p.Injected
}

// relChange is the corrupted value's relative change, whichever mechanism
// recorded it.
func (p *Plan) relChange() float64 {
	if p.VM != nil {
		return p.VM.RelChange
	}
	return p.RelChange
}

// hookNow runs every plan hook due at the machine's current position:
// injection when the machine is parked at (or first eligible past) the
// trigger, re-arms at their scheduled points. The driver calls it after
// every park; the guard also admits a fresh machine at dyn 0, whose state
// is identical to a park at the origin (nothing has executed), so a
// trigger-0 trial needs no unreachable SuspendAtDyn=0 run.
func (p *Plan) hookNow(m *vm.Machine) {
	for p.pendingAt >= 0 && p.pendingAt <= m.Dyn() && (m.Suspended() || m.Dyn() == 0) {
		if !p.Injected {
			if p.model.Inject(m, p) {
				p.Injected = true
				if p.model.Rearms() {
					p.pendingAt = m.Dyn() + p.stride
				} else {
					p.pendingAt = -1
				}
			} else {
				// Nothing eligible at this instruction; retry at the next,
				// mirroring the engine's pending-register-fault retry.
				p.pendingAt = m.Dyn() + 1
			}
			continue
		}
		p.pendingAt = p.model.Rearm(m, p)
	}
}

// ---------------------------------------------------------------------------
// Registry. Mirrors internal/core's scheme registry: init-time registration,
// panic on invalid or duplicate names, enumeration in registration order.

var (
	modelsByName = map[string]Model{}
	modelOrder   []string
)

// RegisterModel adds a fault model to the registry. It panics on invalid or
// duplicate names — registration is an init-time, programmer-facing act.
func RegisterModel(m Model) {
	name := m.Name()
	if name == "" || strings.ContainsAny(name, "+ \t\n") || name != strings.ToLower(name) {
		panic(fmt.Sprintf("fault: invalid model name %q (lowercase, no spaces or '+')", name))
	}
	if _, dup := modelsByName[name]; dup {
		panic(fmt.Sprintf("fault: model %q already registered", name))
	}
	modelsByName[name] = m
	modelOrder = append(modelOrder, name)
}

// Models returns every registered fault model in registration order.
func Models() []Model {
	out := make([]Model, len(modelOrder))
	for i, n := range modelOrder {
		out[i] = modelsByName[n]
	}
	return out
}

// ModelNames returns the registered model names in registration order.
func ModelNames() []string {
	return append([]string(nil), modelOrder...)
}

// LookupModel resolves a model name; "" means the default (reg-flip, the
// paper's model). Unknown names error with the registered set, sorted.
func LookupModel(name string) (Model, error) {
	if name == "" {
		name = ModelRegFlip
	}
	if m, ok := modelsByName[name]; ok {
		return m, nil
	}
	known := append([]string(nil), modelOrder...)
	sort.Strings(known)
	return nil, fmt.Errorf("fault: unknown fault model %q (registered: %s)", name, strings.Join(known, ", "))
}

// MustModel is LookupModel for static names; it panics on unknown ones.
func MustModel(name string) Model {
	m, err := LookupModel(name)
	if err != nil {
		panic(err)
	}
	return m
}

// Registered model names.
const (
	ModelRegFlip      = "reg-flip"
	ModelBranchTarget = "branch-target"
	ModelMemFlip      = "mem-flip"
	ModelBurst        = "burst"
	ModelStuckAt      = "stuck-at"
	ModelIntermittent = "intermittent"
)

func init() {
	RegisterModel(regFlipModel{})
	RegisterModel(branchTargetModel{})
	RegisterModel(memFlipModel{})
	RegisterModel(burstModel{})
	RegisterModel(stuckAtModel{})
	RegisterModel(intermittentModel{})
}

// transientBase supplies the defaults shared by transient suspend-injected
// models; engine-injected and re-arming models override what differs.
type transientBase struct{}

func (transientBase) EngineInjected() bool                 { return false }
func (transientBase) Rearms() bool                         { return false }
func (transientBase) Rearm(*vm.Machine, *Plan) int64       { panic("fault: model does not re-arm") }
func (transientBase) EffectiveTrigger(trigger int64) int64 { return trigger }
func (transientBase) Inject(m *vm.Machine, p *Plan) bool {
	panic("fault: engine-injected model has no hook")
}

// ---------------------------------------------------------------------------
// reg-flip: the paper's model. One bit of one live register, flipped once,
// injected by the engine itself. The Draw below is byte-identical — same
// trigger draw, same lazy PickSlot/PickBit closures over the same rng — to
// the pre-registry drawPlan, which the golden rng-stability test pins.

type regFlipModel struct{ transientBase }

func (regFlipModel) Name() string         { return ModelRegFlip }
func (regFlipModel) Title() string        { return "Register bit flip" }
func (regFlipModel) EngineInjected() bool { return true }

func (regFlipModel) Draw(goldenDyn int64, rng *rand.Rand) *Plan {
	vp := &vm.FaultPlan{
		Kind:       vm.FaultRegister,
		TriggerDyn: rng.Int63n(goldenDyn),
		PickSlot:   func(n int) int { return rng.Intn(n) },
		PickBit:    func() int { return rng.Intn(64) },
	}
	return &Plan{TriggerDyn: vp.TriggerDyn, VM: vp}
}

// branch-target: the control-flow corruption class the paper defers to
// signature-based checking — today a first-class model, formerly the
// Campaign.BranchTargets side mode. A branch whose post-increment dyn
// reaches the trigger is redirected, so the earliest observable state is
// one instruction before the trigger.

type branchTargetModel struct{ transientBase }

func (branchTargetModel) Name() string                         { return ModelBranchTarget }
func (branchTargetModel) Title() string                        { return "Branch-target corruption" }
func (branchTargetModel) EngineInjected() bool                 { return true }
func (branchTargetModel) EffectiveTrigger(trigger int64) int64 { return trigger - 1 }

func (branchTargetModel) Draw(goldenDyn int64, rng *rand.Rand) *Plan {
	vp := &vm.FaultPlan{
		Kind:       vm.FaultBranchTarget,
		TriggerDyn: rng.Int63n(goldenDyn),
		PickSlot:   func(n int) int { return rng.Intn(n) },
		PickBit:    func() int { return rng.Intn(64) },
	}
	return &Plan{TriggerDyn: vp.TriggerDyn, VM: vp}
}

// ---------------------------------------------------------------------------
// mem-flip: one bit of one word of the snapshot-visible memory image —
// globals plus the live stack, addresses [1, MemUsed()). A strike in DRAM
// rather than the register file: the corruption persists until the program
// overwrites the word, but the cell itself stays healthy (transient).

type memFlipModel struct{ transientBase }

func (memFlipModel) Name() string  { return ModelMemFlip }
func (memFlipModel) Title() string { return "Memory bit flip" }

func (memFlipModel) Draw(goldenDyn int64, rng *rand.Rand) *Plan {
	return &Plan{TriggerDyn: rng.Int63n(goldenDyn), rng: rng}
}

func (memFlipModel) Inject(m *vm.Machine, p *Plan) bool {
	used := m.MemUsed()
	if used <= 1 {
		return false // no image yet (no globals, nothing alloca'd)
	}
	addr := 1 + uint64(p.rng.Int63n(int64(used-1)))
	bit := p.rng.Intn(64)
	old := m.MemWord(addr)
	now := old ^ (1 << uint(bit))
	m.SetMemWord(addr, now)
	p.addr, p.mask = addr, 1<<uint(bit)
	p.RelChange = relChangeInt(old, now)
	return true
}

// ---------------------------------------------------------------------------
// burst: 2–8 adjacent bits of one register or one memory word, corrupted in
// a single strike (a multi-cell upset along a physical row). The space draw
// picks the domain first; an empty domain falls over to the other, and a
// machine with neither live registers nor a memory image retries at the
// next instruction.

type burstModel struct{ transientBase }

func (burstModel) Name() string  { return ModelBurst }
func (burstModel) Title() string { return "Multi-bit burst" }

func (burstModel) Draw(goldenDyn int64, rng *rand.Rand) *Plan {
	return &Plan{TriggerDyn: rng.Int63n(goldenDyn), rng: rng}
}

func (burstModel) Inject(m *vm.Machine, p *Plan) bool {
	width := 2 + p.rng.Intn(7)      // 2..8 adjacent bits
	start := p.rng.Intn(65 - width) // the burst fits inside one word
	mask := (uint64(1)<<uint(width) - 1) << uint(start)
	inReg := p.rng.Intn(2) == 0
	if inReg && m.LiveRegCount() == 0 {
		inReg = false
	}
	if !inReg && m.MemUsed() <= 1 {
		if m.LiveRegCount() == 0 {
			return false
		}
		inReg = true
	}
	p.mask = mask
	if inReg {
		i := p.rng.Intn(m.LiveRegCount())
		old, ty := m.LiveReg(i)
		now := old ^ mask
		m.SetLiveReg(i, now)
		p.RelChange = relChangeTyped(ty, old, now)
		return true
	}
	addr := 1 + uint64(p.rng.Int63n(int64(m.MemUsed()-1)))
	old := m.MemWord(addr)
	now := old ^ mask
	m.SetMemWord(addr, now)
	p.addr = addr
	p.RelChange = relChangeInt(old, now)
	return true
}

// ---------------------------------------------------------------------------
// stuck-at: a memory cell whose bit is stuck at the flipped value. The
// first strike flips one bit of one word of the memory image; the trial
// driver then parks the machine every rearmStride instructions — re-arms
// ride the same unified event threshold (SuspendAtDyn) as every other
// engine event — and the model re-forces the bit, so program writes that
// would heal the word are re-corrupted until the trial retires.

type stuckAtModel struct{ transientBase }

func (stuckAtModel) Name() string  { return ModelStuckAt }
func (stuckAtModel) Title() string { return "Stuck-at bit" }
func (stuckAtModel) Rearms() bool  { return true }

func (stuckAtModel) Draw(goldenDyn int64, rng *rand.Rand) *Plan {
	return &Plan{
		TriggerDyn: rng.Int63n(goldenDyn),
		rng:        rng,
		stride:     rearmStride(goldenDyn),
		until:      math.MaxInt64, // stuck until the program retires
	}
}

func (stuckAtModel) Inject(m *vm.Machine, p *Plan) bool { return stuckAtInject(m, p) }

func (stuckAtModel) Rearm(m *vm.Machine, p *Plan) int64 {
	if m.Dyn() >= p.until {
		return -1
	}
	m.SetMemWord(p.addr, m.MemWord(p.addr)&^p.mask|p.val)
	return m.Dyn() + p.stride
}

// stuckAtInject performs the initial strike shared by stuck-at and
// intermittent: flip one bit of one memory word and record the stuck value
// the re-arms will keep forcing.
func stuckAtInject(m *vm.Machine, p *Plan) bool {
	used := m.MemUsed()
	if used <= 1 {
		return false
	}
	addr := 1 + uint64(p.rng.Int63n(int64(used-1)))
	bit := p.rng.Intn(64)
	old := m.MemWord(addr)
	now := old ^ (1 << uint(bit))
	m.SetMemWord(addr, now)
	p.addr, p.mask = addr, 1<<uint(bit)
	p.val = now & p.mask
	p.RelChange = relChangeInt(old, now)
	return true
}

// rearmStride is the re-arm cadence: coarse enough that a re-arming trial
// costs a bounded number of parks (the watchdog caps runs at a multiple of
// goldenDyn), fine enough that short-lived overwrites still get re-struck.
func rearmStride(goldenDyn int64) int64 {
	if s := goldenDyn / 64; s > 1 {
		return s
	}
	return 1
}

// ---------------------------------------------------------------------------
// intermittent: a duration-bounded stuck-at — the cell misbehaves for a
// random window after the strike, then heals (marginal hardware, not a hard
// fault). The duration is drawn lazily at injection time, after the space
// draws, keeping the trigger the first draw of the trial.

type intermittentModel struct{ stuckAtModel }

func (intermittentModel) Name() string  { return ModelIntermittent }
func (intermittentModel) Title() string { return "Intermittent stuck-at" }

func (intermittentModel) Draw(goldenDyn int64, rng *rand.Rand) *Plan {
	p := stuckAtModel{}.Draw(goldenDyn, rng)
	// Duration bound: up to a quarter of the golden run (at least one
	// instruction), drawn per trial at injection time.
	p.until = 0 // set by Inject; 0 marks "duration pending"
	return p
}

func (intermittentModel) Inject(m *vm.Machine, p *Plan) bool {
	if !stuckAtInject(m, p) {
		return false
	}
	max := p.strideBase() / 4
	if max < 1 {
		max = 1
	}
	p.until = m.Dyn() + 1 + p.rng.Int63n(max)
	return true
}

// strideBase recovers the golden length the stride was derived from, so the
// duration bound scales with the workload without re-plumbing goldenDyn.
func (p *Plan) strideBase() int64 {
	if p.stride > 1 {
		return p.stride * 64
	}
	return 64
}

// ---------------------------------------------------------------------------
// Relative-change attribution, mirroring the in-engine injector's rules so
// every model feeds the same USDC large/small split (Figure 2).

func relChangeTyped(ty ir.Type, old, now uint64) float64 {
	if ty == ir.F64 {
		o, n := math.Float64frombits(old), math.Float64frombits(now)
		d := math.Abs(n - o)
		den := math.Max(math.Abs(o), 1)
		rc := d / den
		if math.IsNaN(rc) || math.IsInf(rc, 0) {
			rc = math.Inf(1)
		}
		return rc
	}
	return relChangeInt(old, now)
}

func relChangeInt(old, now uint64) float64 {
	o, n := int64(old), int64(now)
	d := math.Abs(float64(n) - float64(o))
	den := math.Max(math.Abs(float64(o)), 1)
	return d / den
}
