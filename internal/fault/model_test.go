package fault

// White-box fault-model registry tests: registry hygiene, the golden
// rng-stability pin for reg-flip (the registry must draw byte-identical
// plans to the pre-registry campaign path), the re-arm soundness gate on
// convergence fast-forwarding, and the per-field journal mismatch reasons.

import (
	"math"
	"math/rand"
	"strings"
	"testing"
	"time"

	"repro/internal/lang"
	"repro/internal/vm"
)

func TestModelRegistry(t *testing.T) {
	names := ModelNames()
	want := []string{ModelRegFlip, ModelBranchTarget, ModelMemFlip, ModelBurst, ModelStuckAt, ModelIntermittent}
	if len(names) != len(want) {
		t.Fatalf("ModelNames = %v, want %v", names, want)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("ModelNames[%d] = %q, want %q (registration order)", i, names[i], want[i])
		}
	}
	// The empty name resolves to the paper's model.
	m, err := LookupModel("")
	if err != nil || m.Name() != ModelRegFlip {
		t.Fatalf("LookupModel(\"\") = %v, %v; want reg-flip", m, err)
	}
	// Unknown names enumerate the registered set.
	if _, err := LookupModel("cosmic-ray"); err == nil || !strings.Contains(err.Error(), ModelStuckAt) {
		t.Fatalf("unknown model error %v does not list the registry", err)
	}
	for _, bad := range []string{"", "Reg-Flip", "two words", "a+b"} {
		bad := bad
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("RegisterModel(%q) did not panic", bad)
				}
			}()
			RegisterModel(fakeStuck{name: bad})
		}()
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("duplicate RegisterModel did not panic")
			}
		}()
		RegisterModel(fakeStuck{name: ModelRegFlip})
	}()
}

// TestRegFlipDrawStability pins the registry's reg-flip Draw to the
// pre-registry campaign draw: same per-trial seeding, same first-position
// trigger, same lazy slot/bit closures over the same rng stream. Any drift
// here silently invalidates every published reg-flip campaign, so the
// reference stream is replicated inline rather than shared with the
// implementation.
func TestRegFlipDrawStability(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Seed = 2014
	const goldenDyn = 12345
	src := rand.NewSource(1).(rand.Source64)
	rng := rand.New(src)
	ref := rand.New(rand.NewSource(1))
	for trial := 0; trial < 50; trial++ {
		p := drawPlan(MustModel(ModelRegFlip), cfg, goldenDyn, trial, src, rng)
		ref.Seed(cfg.Seed + int64(trial)*7919)
		if want := ref.Int63n(goldenDyn); p.TriggerDyn != want {
			t.Fatalf("trial %d: trigger %d, want %d", trial, p.TriggerDyn, want)
		}
		if p.VM == nil || p.VM.Kind != vm.FaultRegister {
			t.Fatalf("trial %d: plan %+v is not an engine register flip", trial, p.VM)
		}
		// The space draws are closures over the same stream, consumed lazily
		// in slot-then-bit order at injection time.
		for _, n := range []int{5, 1, 17} {
			if got, want := p.VM.PickSlot(n), ref.Intn(n); got != want {
				t.Fatalf("trial %d: PickSlot(%d) = %d, want %d", trial, n, got, want)
			}
			if got, want := p.VM.PickBit(), ref.Intn(64); got != want {
				t.Fatalf("trial %d: PickBit = %d, want %d", trial, got, want)
			}
		}
	}
}

// stuckSrc drives the re-arm soundness test. Phase 1 overwrites out[0]
// every iteration, healing any corruption; phase 2 only reads it. A
// stuck-at fault on out[0] is therefore invisible at any point of phase 1
// where the last event was the store — the machine state is bit-identical
// to golden — yet the re-arms in phase 2 re-force the bit with no healing
// store left, corrupting the final output.
const stuckSrc = `
global int out[2];
void main() {
	int acc = 0;
	for (int i = 0; i < 100; i += 1) {
		acc = acc + i;
		out[0] = acc;
	}
	int sink = 0;
	for (int j = 0; j < 200; j += 1) {
		sink = sink + out[0];
	}
	out[1] = sink;
}
`

// fakeStuck is a deterministic re-arming model: a pinned address/mask/
// trigger stuck-at, so the test controls exactly when the fault strikes,
// heals and re-fires. Not registered — used directly through drawPlan.
type fakeStuck struct {
	name    string
	trigger int64
	stride  int64
	addr    uint64
	mask    uint64
}

func (f fakeStuck) Name() string                         { return f.name }
func (f fakeStuck) Title() string                        { return "pinned stuck-at (test)" }
func (f fakeStuck) EngineInjected() bool                 { return false }
func (f fakeStuck) Rearms() bool                         { return true }
func (f fakeStuck) EffectiveTrigger(trigger int64) int64 { return trigger }

func (f fakeStuck) Draw(goldenDyn int64, rng *rand.Rand) *Plan {
	rng.Int63n(goldenDyn) // keep the stream shape: trigger is the first draw
	return &Plan{TriggerDyn: f.trigger, addr: f.addr, mask: f.mask, stride: f.stride, until: math.MaxInt64}
}

func (f fakeStuck) Inject(m *vm.Machine, p *Plan) bool {
	old := m.MemWord(p.addr)
	now := old ^ p.mask
	m.SetMemWord(p.addr, now)
	p.val = now & p.mask
	p.RelChange = relChangeInt(old, now)
	return true
}

func (f fakeStuck) Rearm(m *vm.Machine, p *Plan) int64 {
	if m.Dyn() >= p.until {
		return -1
	}
	m.SetMemWord(p.addr, m.MemWord(p.addr)&^p.mask|p.val)
	return m.Dyn() + p.stride
}

// TestRearmingModelNeverFalselyMasked proves the convergence gate is
// load-bearing: for a re-arming fault there exist snapshot crossings where
// the machine state is bit-identical to golden (an ungated MatchesSnapshot
// ladder would declare the trial Masked and stop), yet the fault re-fires
// later and corrupts the output. finishTrial must ignore the ladder for
// such models and classify the trial by running it to completion.
func TestRearmingModelNeverFalselyMasked(t *testing.T) {
	mod, err := lang.Compile("stuck", stuckSrc)
	if err != nil {
		t.Fatal(err)
	}
	target := Target{
		Name:       "stuck",
		Output:     "out",
		Bind:       func(m *vm.Machine) error { return nil },
		Measure:    func(golden, test []uint64) float64 { return 0 },
		Acceptable: func(float64) bool { return false },
	}
	cfg := DefaultConfig()

	gm, err := newMachine(target, mod, 0, cfg.Engine)
	if err != nil {
		t.Fatal(err)
	}
	res := gm.Run(vm.RunOptions{})
	if res.Trap != nil {
		t.Fatalf("golden run trapped: %v", res.Trap)
	}
	golden, err := gm.ReadGlobal(target.Output)
	if err != nil {
		t.Fatal(err)
	}
	goldenDyn := res.Dyn
	maxDyn := goldenDyn * cfg.WatchdogFactor

	// out is the only global, laid out from address 1: out[0] lives at 1.
	// Strike early in phase 1, re-arm every 50 instructions.
	model := fakeStuck{name: "pinned-stuck", trigger: goldenDyn / 8, stride: 50, addr: 1, mask: 1 << 40}

	// First: exhibit a crossing where an ungated ladder would falsely mask.
	// Probe dyns between consecutive re-arms; at any of them where the last
	// event was phase 1's healing store, the state matches golden exactly.
	ws := (&campaign{cfg: cfg}).newWorker()
	falselyGolden := 0
	for off := int64(10); off < model.stride; off += 10 {
		at := model.trigger + model.stride + off
		snaps, err := takeSnapshots(target, mod, cfg, nil, maxDyn, []int64{at})
		if err != nil {
			t.Fatal(err)
		}
		mach, err := newMachine(target, mod, maxDyn, cfg.Engine)
		if err != nil {
			t.Fatal(err)
		}
		plan := drawPlan(model, cfg, goldenDyn, 0, ws.src, ws.rng)
		r := runPlanned(mach, plan, cfg, nil, time.Time{}, at)
		if r.Trap == nil || r.Trap.Kind != vm.TrapSuspended {
			t.Fatalf("probe at %d: not suspended: %+v", at, r.Trap)
		}
		if plan.injected() && mach.MatchesSnapshot(snaps[0]) {
			falselyGolden++
		}
	}
	if falselyGolden == 0 {
		t.Fatal("no probe crossing matched golden state; the test exercises nothing")
	}

	// Second: the real classification must not be Masked — and must be
	// identical with and without the snapshot ladder, because finishTrial
	// drops the ladder for re-arming models.
	snapAt := []int64{goldenDyn / 4, goldenDyn / 2, 3 * goldenDyn / 4}
	snaps, err := takeSnapshots(target, mod, cfg, nil, maxDyn, snapAt)
	if err != nil {
		t.Fatal(err)
	}
	m1, err := newMachine(target, mod, maxDyn, cfg.Engine)
	if err != nil {
		t.Fatal(err)
	}
	p1 := drawPlan(model, cfg, goldenDyn, 0, ws.src, ws.rng)
	tr1, to1 := finishTrial(m1, p1, target, cfg, golden, nil, time.Time{}, snaps)

	m2, err := newMachine(target, mod, maxDyn, cfg.Engine)
	if err != nil {
		t.Fatal(err)
	}
	p2 := drawPlan(model, cfg, goldenDyn, 0, ws.src, ws.rng)
	tr2, to2 := finishTrial(m2, p2, target, cfg, golden, nil, time.Time{}, nil)

	if tr1 != tr2 || to1 != to2 {
		t.Fatalf("ladder %+v (timeout %v) vs plain %+v (timeout %v)", tr1, to1, tr2, to2)
	}
	if tr1.Outcome == Masked {
		t.Fatalf("re-arming trial classified Masked: %+v (falsely-golden crossings existed: %d)", tr1, falselyGolden)
	}
	t.Logf("outcome %v, %d/%d probed crossings matched golden", tr1.Outcome, falselyGolden, (model.stride-10)/10+1)
}

// TestJournalMismatchReasons pins the per-field diagnostics a rejected
// resume reports, the fault-model field included.
func TestJournalMismatchReasons(t *testing.T) {
	cases := []struct {
		mutate func(h *journalHeader)
		want   string
	}{
		{func(h *journalHeader) { h.Model = ModelStuckAt }, `fault model "stuck-at"`},
		{func(h *journalHeader) { h.Seed = 7 }, "seed 7"},
		{func(h *journalHeader) { h.Technique = "FullDup" }, `technique "FullDup"`},
		{func(h *journalHeader) { h.Workload = "other" }, `workload "other"`},
		{func(h *journalHeader) { h.Trials = 99 }, "trial count 99"},
		{func(h *journalHeader) { h.GoldenDyn = 1 }, "module or inputs changed"},
		{func(h *journalHeader) { h.ShardStart, h.ShardEnd = 2, 6 }, "shard range [2,6)"},
		{func(h *journalHeader) { h.Disabled = 3 }, "disabled-check count 3"},
	}
	for _, c := range cases {
		h := testHeader()
		c.mutate(h)
		d := h.mismatch(testHeader())
		if !strings.Contains(d, c.want) {
			t.Errorf("mismatch = %q, want it to contain %q", d, c.want)
		}
	}
	if d := testHeader().mismatch(testHeader()); d != "" {
		t.Errorf("identical headers mismatch: %q", d)
	}
}
