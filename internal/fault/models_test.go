package fault_test

// Black-box per-model campaign coverage: every registered fault model must
// run a campaign end to end on the public API, and a journaled campaign
// must refuse to resume under a different model — the model is part of the
// journal's identity, and silently mixing trial streams would corrupt the
// tally.

import (
	"context"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/workloads"
)

func TestEveryModelCampaignSmoke(t *testing.T) {
	w := workloads.ByName("g721dec")
	prot := protectedFor(t, w, core.SchemeDup)
	for _, name := range fault.ModelNames() {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			cfg := fault.DefaultConfig()
			cfg.Trials = 12
			cfg.Model = name
			rep, err := fault.Run(context.Background(), w.Target(workloads.Test), prot, "DupOnly", cfg)
			if err != nil {
				t.Fatal(err)
			}
			if rep.Tally.N != cfg.Trials {
				t.Fatalf("tally N = %d, want %d (anomalies: %+v)", rep.Tally.N, cfg.Trials, rep.Anomalies)
			}
			if len(rep.Anomalies) != 0 || rep.Partial {
				t.Fatalf("unexpected anomalies/partial: %+v", rep)
			}
		})
	}
}

func TestCrossModelResumeRejected(t *testing.T) {
	w := workloads.ByName("tiff2bw")
	prot := protectedFor(t, w, core.SchemeOriginal)
	path := filepath.Join(t.TempDir(), "campaign.journal")

	cfg := fault.DefaultConfig()
	cfg.Trials = 8
	cfg.Model = fault.ModelMemFlip
	cfg.JournalPath = path
	if _, err := fault.Run(context.Background(), w.Target(workloads.Test), prot, "Original", cfg); err != nil {
		t.Fatal(err)
	}

	cfg.Model = fault.ModelStuckAt
	cfg.Resume = true
	_, err := fault.Run(context.Background(), w.Target(workloads.Test), prot, "Original", cfg)
	if err == nil {
		t.Fatal("resume under a different fault model accepted")
	}
	if !strings.Contains(err.Error(), "fault model") || !strings.Contains(err.Error(), fault.ModelMemFlip) {
		t.Fatalf("rejection does not name the model mismatch: %v", err)
	}

	// Same model resumes fine (identity check is on the resolved name).
	cfg.Model = fault.ModelMemFlip
	rep, err := fault.Run(context.Background(), w.Target(workloads.Test), prot, "Original", cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Replayed != cfg.Trials {
		t.Fatalf("replayed %d trials, want %d", rep.Replayed, cfg.Trials)
	}
}
