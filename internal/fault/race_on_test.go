//go:build race

package fault_test

// Under -race the checkpoint matrix runs on representative cells only: the
// detector is there to catch unsynchronized snapshot sharing between
// workers, which a subset exercises just as well as the full grid.
const raceEnabled = true
