package fault

import (
	"context"
	"fmt"
	"math/rand"
	"sort"
	"time"

	"repro/internal/ir"
	"repro/internal/vm"
)

// Recovery support (paper §IV-D): the scheme is detection-only and relies
// on an external recovery mechanism (Encore, checkpointing). This file
// models the simplest sound recovery — restart-and-re-execute: when a check
// fires, the program is re-run from its inputs. A transient fault does not
// recur, so the re-execution is fault-free and its output is correct; the
// price is the wasted work up to the detection point plus one clean run.

// RecoveryReport summarizes a campaign under restart recovery.
type RecoveryReport struct {
	Workload  string
	Technique string
	Trials    int
	// Recovered counts trials where a software check fired and the re-run
	// produced the golden output (always, for a transient fault).
	Recovered int
	// StillUSDC counts trials that completed with unacceptable output
	// despite protection (no check fired).
	StillUSDC int
	// Failures counts crashes/hangs. They too are restarted (a deployed
	// system restarts after any detected anomaly — the paper treats
	// hardware symptoms as recovery triggers as well), so they contribute
	// re-execution cost but are reported separately from software
	// detections.
	Failures int
	// MeanCycles is the average cycles per trial including the
	// re-execution cost of every restarted (detected or crashed) trial;
	// GoldenCycles is the fault-free cost.
	MeanCycles   float64
	GoldenCycles int64
}

// RecoveryOverhead is the mean per-trial slowdown versus the fault-free run.
func (r *RecoveryReport) RecoveryOverhead() float64 {
	if r.GoldenCycles == 0 {
		return 0
	}
	return r.MeanCycles/float64(r.GoldenCycles) - 1
}

// RunWithRecovery executes a campaign in which every software detection
// triggers a restart: the trial is re-run without the fault and the final
// output must match the golden output bit for bit. Cancelling ctx stops the
// campaign between trials and returns the context's error.
func RunWithRecovery(ctx context.Context, t Target, mod *ir.Module, technique string, cfg Config) (*RecoveryReport, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if cfg.Trials <= 0 {
		return nil, fmt.Errorf("fault: non-positive trial count")
	}
	if cfg.WatchdogFactor <= 0 {
		cfg.WatchdogFactor = 20
	}
	model, err := LookupModel(cfg.Model)
	if err != nil {
		return nil, err
	}
	if !model.EngineInjected() && cfg.Engine != vm.EngineFast {
		return nil, fmt.Errorf("fault: fault model %q requires the fast engine (suspend-injected models park the machine via SuspendAtDyn, which only the fast engine implements)", model.Name())
	}

	goldenMach, err := newMachine(t, mod, 0, cfg.Engine)
	if err != nil {
		return nil, err
	}
	goldenRes := goldenMach.Run(vm.RunOptions{CountChecks: true})
	if goldenRes.Trap != nil {
		return nil, fmt.Errorf("fault: golden run trapped: %v", goldenRes.Trap)
	}
	golden, err := goldenMach.ReadGlobal(t.Output)
	if err != nil {
		return nil, err
	}
	disabled := make(map[int]bool)
	for id, n := range goldenRes.PerCheckFails {
		if n > 0 {
			disabled[id] = true
		}
	}

	rep := &RecoveryReport{
		Workload: t.Name, Technique: technique,
		Trials: cfg.Trials, GoldenCycles: goldenRes.Cycles,
	}
	maxDyn := goldenRes.Dyn*cfg.WatchdogFactor + 100_000
	mach, err := newMachine(t, mod, maxDyn, cfg.Engine)
	if err != nil {
		return nil, err
	}

	// Golden-prefix snapshots serve double duty here: faulty runs restore
	// the snapshot nearest below the trigger, and restart re-runs — which
	// are bit-identical to the golden run — restore the deepest one. Cycle
	// accounting is unaffected because snapshots carry the timing counters.
	snapAt := checkpointSchedule(cfg, goldenRes.Dyn)
	var snaps []*vm.Snapshot
	if len(snapAt) > 0 {
		if snaps, err = takeSnapshots(t, mod, cfg, disabled, maxDyn, snapAt); err != nil {
			return nil, err
		}
	}
	start := func(eff int64) error {
		if b := sort.Search(len(snapAt), func(k int) bool { return snapAt[k] > eff }); b > 0 {
			return mach.Restore(snaps[b-1])
		}
		mach.Reset()
		return nil
	}

	src := rand.NewSource(0)
	rng := rand.New(src)
	var totalCycles int64
	for i := 0; i < cfg.Trials; i++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		plan := drawPlan(model, cfg, goldenRes.Dyn, i, src, rng)
		if err := start(model.EffectiveTrigger(plan.TriggerDyn)); err != nil {
			return nil, err
		}
		res := runPlanned(mach, plan, cfg, disabled, time.Time{}, 0)
		// Cycle counters accumulate across the suspend/resume chain, so the
		// terminal Result's Cycles already covers every resumed leg.
		totalCycles += res.Cycles

		if res.Trap != nil {
			// Restart: re-execute without the fault. Both software
			// detections and hardware symptoms/crashes trigger recovery.
			if err := start(goldenRes.Dyn); err != nil {
				return nil, err
			}
			rerun := mach.Run(vm.RunOptions{DisabledChecks: disabled})
			totalCycles += rerun.Cycles
			if rerun.Trap != nil {
				return nil, fmt.Errorf("fault: recovery re-run trapped: %v", rerun.Trap)
			}
			out, err := mach.ReadGlobal(t.Output)
			if err != nil {
				return nil, err
			}
			for j := range golden {
				if out[j] != golden[j] {
					return nil, fmt.Errorf("fault: recovery produced wrong output at word %d", j)
				}
			}
			if res.Trap.Kind == vm.TrapCheck {
				rep.Recovered++
			} else {
				rep.Failures++
			}
			continue
		}
		out, err := mach.ReadGlobal(t.Output)
		if err != nil {
			return nil, err
		}
		same := true
		for j := range golden {
			if out[j] != golden[j] {
				same = false
				break
			}
		}
		if !same && !t.Acceptable(t.Measure(golden, out)) {
			rep.StillUSDC++
		}
	}
	rep.MeanCycles = float64(totalCycles) / float64(cfg.Trials)
	return rep, nil
}
