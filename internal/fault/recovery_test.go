package fault_test

import (
	"context"
	"testing"

	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/workloads"
)

func TestRestartRecoveryAlwaysProducesGoldenOutput(t *testing.T) {
	w := workloads.ByName("g721dec")
	mod, err := w.Compile()
	if err != nil {
		t.Fatal(err)
	}
	prot := mod.Clone()
	if _, err := core.Protect(prot, core.SchemeDup, nil, core.DefaultParams()); err != nil {
		t.Fatal(err)
	}
	cfg := fault.DefaultConfig()
	cfg.Trials = 200
	rep, err := fault.RunWithRecovery(context.Background(), w.Target(workloads.Test), prot, "DupOnly", cfg)
	if err != nil {
		t.Fatal(err) // RunWithRecovery errors if any recovery output is wrong
	}
	if rep.Recovered == 0 {
		t.Fatal("no trial recovered — duplication checks never fired")
	}
	// Recovery costs more than the fault-free run on average (re-execution
	// after every detection) but the slowdown is bounded by roughly one
	// extra run's worth per detection.
	ov := rep.RecoveryOverhead()
	if ov <= 0 {
		t.Errorf("recovery overhead %.3f should be positive", ov)
	}
	maxOv := 2.0 * float64(rep.Recovered) / float64(rep.Trials) // safety margin
	if ov > maxOv+0.25 {
		t.Errorf("recovery overhead %.3f implausibly high (recovered %d/%d)", ov, rep.Recovered, rep.Trials)
	}
	t.Logf("recovered=%d stillUSDC=%d failures=%d overhead=%.2f%%",
		rep.Recovered, rep.StillUSDC, rep.Failures, 100*ov)
}

func TestRecoveryReducesUSDCVsDetectionOnly(t *testing.T) {
	w := workloads.ByName("segm")
	mod, err := w.Compile()
	if err != nil {
		t.Fatal(err)
	}
	prot := mod.Clone()
	if _, err := core.Protect(prot, core.SchemeDup, nil, core.DefaultParams()); err != nil {
		t.Fatal(err)
	}
	cfg := fault.DefaultConfig()
	cfg.Trials = 150
	rep, err := fault.RunWithRecovery(context.Background(), w.Target(workloads.Test), prot, "DupOnly", cfg)
	if err != nil {
		t.Fatal(err)
	}
	plain, err := fault.Run(context.Background(), w.Target(workloads.Test), prot, "DupOnly", cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Detection-only counts SWDetects; under recovery those become correct
	// completions, so residual USDCs must match the detection-only USDCs.
	if rep.StillUSDC != plain.Tally.Count[fault.USDC] {
		t.Errorf("residual USDCs %d != detection-only USDCs %d", rep.StillUSDC, plain.Tally.Count[fault.USDC])
	}
	if rep.Recovered != plain.Tally.Count[fault.SWDetect] {
		t.Errorf("recovered %d != SWDetects %d", rep.Recovered, plain.Tally.Count[fault.SWDetect])
	}
}
