package fault

// Campaign resilience: the supervision layer between the campaign entry
// point (Run) and the raw trial execution (runTrial). A campaign here is a
// long-lived service operation, not a benchmark script, so the failure of
// any one trial must never forfeit the rest:
//
//   - every trial attempt runs under recover(); a panic — in the vm, in a
//     user-supplied Measure/Acceptable callback, in the OnTrial hook — is
//     quarantined as an Anomaly carrying the panic stack and the exact
//     per-trial reproducer seed, and the worker rebuilds its machine and
//     moves on;
//   - a wall-clock deadline (Config.TrialTimeout, layered over the
//     dyn-count watchdog via vm.RunOptions.Deadline) reaps trials the
//     watchdog cannot bound; a timed-out trial gets one bounded retry —
//     transient host stalls are common under contention — before it too is
//     quarantined;
//   - context cancellation stops workers between trials and the campaign
//     returns a valid partial Report (Partial: true) instead of an error,
//     so every completed Outcome survives a Ctrl-C;
//   - with Config.TargetCI set, the campaign stops early once the Wilson
//     intervals for coverage and USDC rate are tight enough, recording how
//     many trials the stop saved.
//
// All shared state lives in the campaign struct; per-trial slots
// (rep.Trials[i], state[i]) are written only by the worker that owns trial
// i and read only after the worker pool joins, so the only locked state is
// the anomaly map and the early-stop tallies.

import (
	"context"
	"fmt"
	"math/rand"
	"runtime/debug"
	"sort"
	"sync"
	"time"

	"repro/internal/ir"
	"repro/internal/vm"
)

// Anomaly reasons.
const (
	AnomalyPanic   = "panic"
	AnomalyTimeout = "timeout"
)

// Anomaly records a quarantined trial: one that panicked or exceeded the
// trial deadline (after a retry) and was excluded from the tally instead of
// killing the campaign. Seed is the per-trial rng seed — feeding it to a
// single-trial campaign replays the exact fault plan that misbehaved.
type Anomaly struct {
	Trial  int
	Seed   int64
	Reason string // AnomalyPanic or AnomalyTimeout
	Stack  string // panic stack trace (AnomalyPanic only)
}

// Per-trial dispositions in campaign.state.
const (
	trialPending uint8 = iota
	trialDone
	trialQuarantined
)

// campaign is the shared state of one in-flight fault-injection campaign,
// used by both the from-scratch and the checkpointed worker pools.
type campaign struct {
	cfg       Config
	target    Target
	mod       *ir.Module
	golden    []uint64
	goldenDyn int64
	disabled  map[int]bool
	maxDyn    int64
	rep       *Report
	state     []uint8 // trialPending/trialDone/trialQuarantined, one per trial

	jw *journalWriter // nil when the campaign is not journaled

	mu        sync.Mutex
	anomalies map[int]Anomaly
	nDone     int // completed trials (early-stop tallies, incl. replayed)
	nCovered  int // Masked + HWDetect + SWDetect among them
	nUSDC     int

	stopEarly chan struct{}
	stopOnce  sync.Once
}

func newCampaign(t Target, mod *ir.Module, cfg Config, golden []uint64, goldenDyn int64, disabled map[int]bool, maxDyn int64, rep *Report) *campaign {
	return &campaign{
		cfg:       cfg,
		target:    t,
		mod:       mod,
		golden:    golden,
		goldenDyn: goldenDyn,
		disabled:  disabled,
		maxDyn:    maxDyn,
		rep:       rep,
		state:     make([]uint8, cfg.Trials),
		anomalies: make(map[int]Anomaly),
		stopEarly: make(chan struct{}),
	}
}

// seedFor is the campaign's per-trial rng seed scheme — the single source
// of truth shared by runTrial, drawTriggers and anomaly reproducers.
func seedFor(cfg Config, trial int) int64 { return cfg.Seed + int64(trial)*7919 }

// stopRequested reports whether the early-stop criterion has fired.
func (c *campaign) stopRequested() bool {
	select {
	case <-c.stopEarly:
		return true
	default:
		return false
	}
}

// noteDone folds one completed trial into the early-stop tallies and fires
// the stop signal once both Wilson intervals are tight enough.
func (c *campaign) noteDone(tr Trial) {
	c.mu.Lock()
	c.nDone++
	switch tr.Outcome {
	case Masked, HWDetect, SWDetect:
		c.nCovered++
	case USDC:
		c.nUSDC++
	}
	stop := c.cfg.TargetCI > 0 &&
		ciTight(c.nCovered, c.nDone, c.cfg.TargetCI) &&
		ciTight(c.nUSDC, c.nDone, c.cfg.TargetCI)
	c.mu.Unlock()
	if stop {
		c.stopOnce.Do(func() { close(c.stopEarly) })
	}
}

// recordTrial publishes trial i's outcome: the per-trial slot, the journal,
// and the early-stop tallies.
func (c *campaign) recordTrial(i int, tr Trial) error {
	c.rep.Trials[i] = tr
	c.state[i] = trialDone
	if c.jw != nil {
		if err := c.jw.append(&journalRecord{T: encodeTrial(i, tr)}); err != nil {
			return err
		}
	}
	c.noteDone(tr)
	return nil
}

// quarantine retires trial i as an anomaly instead of an outcome.
func (c *campaign) quarantine(i int, reason, stack string) error {
	a := Anomaly{Trial: i, Seed: seedFor(c.cfg, i), Reason: reason, Stack: stack}
	c.state[i] = trialQuarantined
	c.mu.Lock()
	c.anomalies[i] = a
	c.mu.Unlock()
	if c.jw != nil {
		return c.jw.append(&journalRecord{A: &journalAnomaly{
			Index: i, Seed: a.Seed, Reason: a.Reason, Stack: a.Stack,
		}})
	}
	return nil
}

// restoreFromJournal splices a replayed journal state into the campaign so
// already-decided trials are never re-run.
func (c *campaign) restoreFromJournal(st *journalState) {
	for i, tr := range st.trials {
		c.rep.Trials[i] = tr
		c.state[i] = trialDone
		c.noteDone(tr)
	}
	for i, a := range st.anomalies {
		c.state[i] = trialQuarantined
		c.anomalies[i] = a
	}
	c.rep.Replayed = len(st.trials) + len(st.anomalies)
}

// pendingTrials lists the trial indices still without a disposition.
func (c *campaign) pendingTrials() []int {
	pending := make([]int, 0, len(c.state))
	for i, s := range c.state {
		if s == trialPending {
			pending = append(pending, i)
		}
	}
	return pending
}

// closeJournal flushes and closes the journal once; safe on every exit path.
func (c *campaign) closeJournal() error {
	if c.jw == nil {
		return nil
	}
	jw := c.jw
	c.jw = nil
	return jw.close()
}

// finalize computes the Tally over completed trials and the partial /
// early-stop / anomaly bookkeeping. ctxErr is the campaign context's error,
// nil when it was never cancelled.
func (c *campaign) finalize(ctxErr error) {
	rep := c.rep
	pendingLeft := 0
	for i, s := range c.state {
		switch s {
		case trialPending:
			pendingLeft++
		case trialDone:
			tr := rep.Trials[i]
			ta := &rep.Tally
			ta.N++
			ta.Count[tr.Outcome]++
			if tr.Outcome == SWDetect {
				switch tr.CheckKind {
				case ir.CheckDup:
					ta.SWDetectDup++
				case ir.CheckCFC:
					ta.SWDetectCFC++
				default:
					ta.SWDetectValue++
				}
			}
			if tr.SDC {
				ta.SDC++
				if tr.Acceptable {
					ta.ASDC++
				} else if tr.RelChange >= c.cfg.LargeChange {
					ta.USDCLarge++
				} else {
					ta.USDCSmall++
				}
			}
		}
	}
	if len(c.anomalies) > 0 {
		rep.Anomalies = make([]Anomaly, 0, len(c.anomalies))
		for _, a := range c.anomalies {
			rep.Anomalies = append(rep.Anomalies, a)
		}
		sort.Slice(rep.Anomalies, func(i, j int) bool { return rep.Anomalies[i].Trial < rep.Anomalies[j].Trial })
	}
	if pendingLeft > 0 {
		if c.stopRequested() && ctxErr == nil {
			rep.EarlyStopped = true
			rep.TrialsSaved = pendingLeft
		} else {
			rep.Partial = true
		}
	}
}

// workerState is one campaign worker's private execution context. The rng
// pair is re-seeded per trial, so workers are interchangeable; the machine
// is rebuilt lazily after a panic left it in an unknown state.
type workerState struct {
	c    *campaign
	mach *vm.Machine
	src  rand.Source
	rng  *rand.Rand
}

func (c *campaign) newWorker() *workerState {
	src := rand.NewSource(0)
	return &workerState{c: c, src: src, rng: rand.New(src)}
}

func (ws *workerState) ensureMachine() error {
	if ws.mach != nil {
		return nil
	}
	mach, err := newMachine(ws.c.target, ws.c.mod, ws.c.maxDyn, ws.c.cfg.Engine)
	if err != nil {
		return err
	}
	ws.mach = mach
	return nil
}

// runOne drives trial i to a terminal disposition — a recorded outcome or a
// quarantined anomaly. Only infrastructure failures (machine construction,
// journal I/O) surface as errors and abort the campaign.
func (c *campaign) runOne(ws *workerState, i int, snap *vm.Snapshot) error {
	for attempt := 0; ; attempt++ {
		tr, timedOut, panicked, stack, err := c.attempt(ws, i, snap)
		if err != nil {
			return err
		}
		if panicked {
			return c.quarantine(i, AnomalyPanic, stack)
		}
		if timedOut {
			// One bounded retry: a deadline miss can be a transient host
			// stall (GC pause, noisy neighbor) rather than a stuck trial.
			if attempt == 0 {
				continue
			}
			return c.quarantine(i, AnomalyTimeout, "")
		}
		return c.recordTrial(i, tr)
	}
}

// attempt executes one guarded trial attempt. A recovered panic discards
// the worker's machine — its state is unknown mid-unwind — and reports the
// stack for the quarantine record.
func (c *campaign) attempt(ws *workerState, i int, snap *vm.Snapshot) (tr Trial, timedOut, panicked bool, stack string, err error) {
	defer func() {
		if r := recover(); r != nil {
			panicked = true
			stack = fmt.Sprintf("panic: %v\n\n%s", r, debug.Stack())
			ws.mach = nil
		}
	}()
	if c.cfg.OnTrial != nil {
		c.cfg.OnTrial(i)
	}
	if err = ws.ensureMachine(); err != nil {
		return
	}
	var deadline time.Time
	if c.cfg.TrialTimeout > 0 {
		deadline = time.Now().Add(c.cfg.TrialTimeout)
	}
	tr, timedOut, err = runTrial(ws.mach, snap, c.target, c.cfg, c.golden, c.goldenDyn, c.disabled, i, ws.src, ws.rng, deadline)
	return
}

// runScratch is the classic campaign body: workers pull pending trial
// indices from a shared channel and run each from dyn 0.
func (c *campaign) runScratch(ctx context.Context, pending []int, workers int) error {
	var wg sync.WaitGroup
	// Buffered so the feeding loop never blocks even if every worker exits
	// early (cancellation, early stop, setup error).
	trialCh := make(chan int, len(pending))
	errCh := make(chan error, workers)

	for wk := 0; wk < workers; wk++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			ws := c.newWorker()
			for i := range trialCh {
				if ctx.Err() != nil || c.stopRequested() {
					return
				}
				if err := c.runOne(ws, i, nil); err != nil {
					errCh <- err
					return
				}
			}
		}()
	}
	for _, i := range pending {
		trialCh <- i
	}
	close(trialCh)
	wg.Wait()
	select {
	case err := <-errCh:
		return err
	default:
	}
	return nil
}

// runCheckpointed is the checkpoint-aware campaign body: pending trials are
// binned by the snapshot nearest below their effective trigger (bin 0 = no
// usable snapshot, run from scratch) and workers claim whole bins so each
// worker touches few snapshots and the expensive scratch bin starts first.
func (c *campaign) runCheckpointed(ctx context.Context, pending []int, workers int, snapAt []int64) error {
	if ctx.Err() != nil {
		return nil // finalize marks the report partial
	}
	triggers := drawTriggers(c.cfg, c.goldenDyn)
	snaps, err := takeSnapshots(c.target, c.mod, c.cfg, c.disabled, c.maxDyn, snapAt)
	if err != nil {
		return err
	}

	// bins[0] holds trials whose effective trigger precedes the first
	// snapshot; bins[b] for b >= 1 restores snaps[b-1].
	bins := make([][]int, len(snapAt)+1)
	for _, i := range pending {
		eff := effectiveTrigger(c.cfg.Kind, triggers[i])
		b := sort.Search(len(snapAt), func(k int) bool { return snapAt[k] > eff })
		bins[b] = append(bins[b], i)
	}

	var wg sync.WaitGroup
	binCh := make(chan int, len(bins))
	errCh := make(chan error, workers)
	for wk := 0; wk < workers; wk++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			ws := c.newWorker()
			for b := range binCh {
				var snap *vm.Snapshot
				if b > 0 {
					snap = snaps[b-1]
				}
				for _, i := range bins[b] {
					if ctx.Err() != nil || c.stopRequested() {
						return
					}
					if err := c.runOne(ws, i, snap); err != nil {
						errCh <- err
						return
					}
				}
			}
		}()
	}
	// Ascending bin order puts the scratch bin (longest per-trial runtime)
	// at the front of the queue.
	for b := range bins {
		binCh <- b
	}
	close(binCh)
	wg.Wait()
	select {
	case err := <-errCh:
		return err
	default:
	}
	return nil
}
