package fault

// Campaign resilience: the supervision layer between the campaign entry
// point (Run) and the raw trial execution (runTrial). A campaign here is a
// long-lived service operation, not a benchmark script, so the failure of
// any one trial must never forfeit the rest:
//
//   - every trial attempt runs under recover(); a panic — in the vm, in a
//     user-supplied Measure/Acceptable callback, in the OnTrial hook — is
//     quarantined as an Anomaly carrying the panic stack and the exact
//     per-trial reproducer seed, and the worker rebuilds its machine and
//     moves on;
//   - a wall-clock deadline (Config.TrialTimeout, layered over the
//     dyn-count watchdog via vm.RunOptions.Deadline) reaps trials the
//     watchdog cannot bound; a timed-out trial gets one bounded retry —
//     transient host stalls are common under contention — before it too is
//     quarantined;
//   - context cancellation stops workers between trials and the campaign
//     returns a valid partial Report (Partial: true) instead of an error,
//     so every completed Outcome survives a Ctrl-C;
//   - with Config.TargetCI set, the campaign stops early once the Wilson
//     intervals for coverage and USDC rate are tight enough, recording how
//     many trials the stop saved.
//
// All shared state lives in the campaign struct; per-trial slots
// (rep.Trials[i], state[i]) are written only by the worker that owns trial
// i and read only after the worker pool joins, so the only locked state is
// the anomaly map and the early-stop tallies.

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"runtime/debug"
	"sort"
	"sync"
	"time"

	"repro/internal/ir"
	"repro/internal/vm"
)

// Anomaly reasons.
const (
	AnomalyPanic   = "panic"
	AnomalyTimeout = "timeout"
)

// Anomaly records a quarantined trial: one that panicked or exceeded the
// trial deadline (after a retry) and was excluded from the tally instead of
// killing the campaign. Seed is the per-trial rng seed — feeding it to a
// single-trial campaign replays the exact fault plan that misbehaved.
type Anomaly struct {
	Trial  int
	Seed   int64
	Reason string // AnomalyPanic or AnomalyTimeout
	Stack  string // panic stack trace (AnomalyPanic only)
}

// Per-trial dispositions in campaign.state.
const (
	trialPending uint8 = iota
	trialDone
	trialQuarantined
	// trialExcluded marks trials outside the campaign's shard range: they
	// belong to another shard's run, are never executed here, and count
	// neither as pending (a fully-decided shard is not Partial) nor in the
	// Tally.
	trialExcluded
)

// campaign is the shared state of one in-flight fault-injection campaign,
// used by both the from-scratch and the checkpointed worker pools.
type campaign struct {
	cfg       Config
	model     Model
	target    Target
	mod       *ir.Module
	golden    []uint64
	goldenDyn int64
	disabled  map[int]bool
	maxDyn    int64
	rep       *Report
	state     []uint8 // trialPending/trialDone/trialQuarantined, one per trial

	jw *journalWriter // nil when the campaign is not journaled

	mu        sync.Mutex
	anomalies map[int]Anomaly
	nDone     int // completed trials (early-stop tallies, incl. replayed)
	nCovered  int // Masked + HWDetect + SWDetect among them
	nUSDC     int

	stopEarly chan struct{}
	stopOnce  sync.Once
}

func newCampaign(t Target, mod *ir.Module, cfg Config, model Model, golden []uint64, goldenDyn int64, disabled map[int]bool, maxDyn int64, rep *Report) *campaign {
	return &campaign{
		cfg:       cfg,
		model:     model,
		target:    t,
		mod:       mod,
		golden:    golden,
		goldenDyn: goldenDyn,
		disabled:  disabled,
		maxDyn:    maxDyn,
		rep:       rep,
		state:     make([]uint8, cfg.Trials),
		anomalies: make(map[int]Anomaly),
		stopEarly: make(chan struct{}),
	}
}

// seedFor is the campaign's per-trial rng seed scheme — the single source
// of truth shared by runTrial, drawTriggers and anomaly reproducers.
func seedFor(cfg Config, trial int) int64 { return cfg.Seed + int64(trial)*7919 }

// excludeOutsideShard marks every trial outside [lo, hi) as another shard's
// responsibility before any disposition is taken.
func (c *campaign) excludeOutsideShard(lo, hi int) {
	for i := range c.state {
		if i < lo || i >= hi {
			c.state[i] = trialExcluded
		}
	}
}

// stopRequested reports whether the early-stop criterion has fired.
func (c *campaign) stopRequested() bool {
	select {
	case <-c.stopEarly:
		return true
	default:
		return false
	}
}

// noteDone folds one completed trial into the early-stop tallies, reports
// progress to the OnProgress hook, and fires the stop signal once both
// Wilson intervals are tight enough.
func (c *campaign) noteDone(tr Trial) {
	c.mu.Lock()
	c.nDone++
	switch tr.Outcome {
	case Masked, HWDetect, SWDetect:
		c.nCovered++
	case USDC:
		c.nUSDC++
	}
	done, covered, usdc := c.nDone, c.nCovered, c.nUSDC
	stop := c.cfg.TargetCI > 0 &&
		ciTight(c.nCovered, c.nDone, c.cfg.TargetCI) &&
		ciTight(c.nUSDC, c.nDone, c.cfg.TargetCI)
	c.mu.Unlock()
	if c.cfg.OnProgress != nil {
		c.cfg.OnProgress(done, covered, usdc)
	}
	if stop {
		c.stopOnce.Do(func() { close(c.stopEarly) })
	}
}

// recordTrial publishes trial i's outcome: the per-trial slot, the journal,
// and the early-stop tallies.
func (c *campaign) recordTrial(i int, tr Trial) error {
	c.rep.Trials[i] = tr
	c.state[i] = trialDone
	if c.jw != nil {
		if err := c.jw.append(&journalRecord{T: encodeTrial(i, tr)}); err != nil {
			return err
		}
	}
	c.noteDone(tr)
	return nil
}

// quarantine retires trial i as an anomaly instead of an outcome.
func (c *campaign) quarantine(i int, reason, stack string) error {
	a := Anomaly{Trial: i, Seed: seedFor(c.cfg, i), Reason: reason, Stack: stack}
	c.state[i] = trialQuarantined
	c.mu.Lock()
	c.anomalies[i] = a
	c.mu.Unlock()
	if c.jw != nil {
		return c.jw.append(&journalRecord{A: &journalAnomaly{
			Index: i, Seed: a.Seed, Reason: a.Reason, Stack: a.Stack,
		}})
	}
	return nil
}

// restoreFromJournal splices a replayed journal state into the campaign so
// already-decided trials are never re-run. Records outside the campaign's
// shard range are skipped defensively (the header identity check already
// rejects a journal from a different shard).
func (c *campaign) restoreFromJournal(st *journalState) {
	for i, tr := range st.trials {
		if c.state[i] == trialExcluded {
			continue
		}
		c.rep.Trials[i] = tr
		c.state[i] = trialDone
		c.noteDone(tr)
		c.rep.Replayed++
	}
	for i, a := range st.anomalies {
		if c.state[i] == trialExcluded {
			continue
		}
		c.state[i] = trialQuarantined
		c.anomalies[i] = a
		c.rep.Replayed++
	}
}

// pendingTrials lists the trial indices still without a disposition.
func (c *campaign) pendingTrials() []int {
	pending := make([]int, 0, len(c.state))
	for i, s := range c.state {
		if s == trialPending {
			pending = append(pending, i)
		}
	}
	return pending
}

// closeJournal flushes and closes the journal once; safe on every exit path.
func (c *campaign) closeJournal() error {
	if c.jw == nil {
		return nil
	}
	jw := c.jw
	c.jw = nil
	return jw.close()
}

// finalize computes the Tally over completed trials and the partial /
// early-stop / anomaly bookkeeping. ctxErr is the campaign context's error,
// nil when it was never cancelled.
func (c *campaign) finalize(ctxErr error) {
	rep := c.rep
	pendingLeft := 0
	for i, s := range c.state {
		switch s {
		case trialPending:
			pendingLeft++
		case trialDone:
			tr := rep.Trials[i]
			ta := &rep.Tally
			ta.N++
			ta.Count[tr.Outcome]++
			if tr.Outcome == SWDetect {
				switch tr.CheckKind {
				case ir.CheckDup:
					ta.SWDetectDup++
				case ir.CheckCFC:
					ta.SWDetectCFC++
				case ir.CheckABFT:
					ta.SWDetectABFT++
				default:
					ta.SWDetectValue++
				}
			}
			if tr.SDC {
				ta.SDC++
				if tr.Acceptable {
					ta.ASDC++
				} else if tr.RelChange >= c.cfg.LargeChange {
					ta.USDCLarge++
				} else {
					ta.USDCSmall++
				}
			}
		}
	}
	if len(c.anomalies) > 0 {
		rep.Anomalies = make([]Anomaly, 0, len(c.anomalies))
		for _, a := range c.anomalies {
			rep.Anomalies = append(rep.Anomalies, a)
		}
		sort.Slice(rep.Anomalies, func(i, j int) bool { return rep.Anomalies[i].Trial < rep.Anomalies[j].Trial })
	}
	if pendingLeft > 0 {
		if c.stopRequested() && ctxErr == nil {
			rep.EarlyStopped = true
			rep.TrialsSaved = pendingLeft
		} else {
			rep.Partial = true
		}
	}
}

// workerState is one campaign worker's private execution context. The rng
// pair is re-seeded per trial, so workers are interchangeable; the machine
// (and the lockstep batch's carrier) is rebuilt lazily after a panic left
// it in an unknown state.
type workerState struct {
	c     *campaign
	mach  *vm.Machine
	batch *vm.BatchMachine // lockstep carrier, built on first use
	stop  <-chan struct{}  // campaign context's Done, wired into the carrier
	src   rand.Source
	rng   *rand.Rand
}

func (c *campaign) newWorker() *workerState {
	src := rand.NewSource(0)
	return &workerState{c: c, src: src, rng: rand.New(src)}
}

func (ws *workerState) ensureMachine() error {
	if ws.mach != nil {
		return nil
	}
	mach, err := newMachine(ws.c.target, ws.c.mod, ws.c.maxDyn, ws.c.cfg.Engine)
	if err != nil {
		return err
	}
	ws.mach = mach
	return nil
}

// ensureBatch builds the worker's lockstep batch on first use. The carrier
// is a full campaign machine of its own (inputs bound, watchdog sized), so
// a panic that poisons it is handled like a poisoned trial machine: drop it
// and rebuild here on the next bin.
func (ws *workerState) ensureBatch() (*vm.BatchMachine, error) {
	if ws.batch != nil {
		return ws.batch, nil
	}
	carrier, err := newMachine(ws.c.target, ws.c.mod, ws.c.maxDyn, ws.c.cfg.Engine)
	if err != nil {
		return nil, err
	}
	b, err := vm.NewBatch(carrier, vm.BatchOptions{DisabledChecks: ws.c.disabled, Stop: ws.stop, Fuse: fuseMode(ws.c.cfg)})
	if err != nil {
		return nil, err
	}
	ws.batch = b
	return b, nil
}

// runOne drives trial i to a terminal disposition — a recorded outcome or a
// quarantined anomaly. A non-empty snaps ladder enables convergence
// fast-forwarding for the trial's suffix (see runTrial). Only infrastructure
// failures (machine construction, journal I/O) surface as errors and abort
// the campaign.
func (c *campaign) runOne(ws *workerState, i int, snap *vm.Snapshot, snaps []*vm.Snapshot) error {
	for attempt := 0; ; attempt++ {
		tr, timedOut, panicked, stack, err := c.attempt(ws, i, snap, snaps)
		if err != nil {
			return err
		}
		if panicked {
			return c.quarantine(i, AnomalyPanic, stack)
		}
		if timedOut {
			// One bounded retry: a deadline miss can be a transient host
			// stall (GC pause, noisy neighbor) rather than a stuck trial.
			if attempt == 0 {
				continue
			}
			return c.quarantine(i, AnomalyTimeout, "")
		}
		return c.recordTrial(i, tr)
	}
}

// attempt executes one guarded trial attempt. A recovered panic discards
// the worker's machine — its state is unknown mid-unwind — and reports the
// stack for the quarantine record.
func (c *campaign) attempt(ws *workerState, i int, snap *vm.Snapshot, snaps []*vm.Snapshot) (tr Trial, timedOut, panicked bool, stack string, err error) {
	defer func() {
		if r := recover(); r != nil {
			panicked = true
			stack = fmt.Sprintf("panic: %v\n\n%s", r, debug.Stack())
			ws.mach = nil
		}
	}()
	if c.cfg.OnTrial != nil {
		c.cfg.OnTrial(i)
	}
	if err = ws.ensureMachine(); err != nil {
		return
	}
	var deadline time.Time
	if c.cfg.TrialTimeout > 0 {
		deadline = time.Now().Add(c.cfg.TrialTimeout)
	}
	tr, timedOut, err = runTrial(ws.mach, snap, snaps, c.model, c.target, c.cfg, c.golden, c.goldenDyn, c.disabled, i, ws.src, ws.rng, deadline)
	return
}

// runScratch is the classic campaign body: workers pull pending trial
// indices from a shared channel and run each from dyn 0.
func (c *campaign) runScratch(ctx context.Context, pending []int, workers int) error {
	var wg sync.WaitGroup
	// Buffered so the feeding loop never blocks even if every worker exits
	// early (cancellation, early stop, setup error).
	trialCh := make(chan int, len(pending))
	errCh := make(chan error, workers)

	for wk := 0; wk < workers; wk++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			ws := c.newWorker()
			for i := range trialCh {
				if ctx.Err() != nil || c.stopRequested() {
					return
				}
				if err := c.runOne(ws, i, nil, nil); err != nil {
					errCh <- err
					return
				}
			}
		}()
	}
	for _, i := range pending {
		trialCh <- i
	}
	close(trialCh)
	wg.Wait()
	select {
	case err := <-errCh:
		return err
	default:
	}
	return nil
}

// runCheckpointed is the checkpoint-aware campaign body: pending trials are
// binned by the snapshot nearest below their effective trigger (bin 0 = no
// usable snapshot, run from scratch) and workers claim whole bins so each
// worker touches few snapshots and the expensive scratch bin starts first.
// Bins at or above the lockstep threshold run through a shared carrier
// (runBinLockstep); smaller bins degrade to the solo restore-per-trial path.
func (c *campaign) runCheckpointed(ctx context.Context, pending []int, workers int, snapAt []int64) error {
	if ctx.Err() != nil {
		return nil // finalize marks the report partial
	}
	triggers := drawTriggers(c.cfg, c.goldenDyn)
	var snaps []*vm.Snapshot
	if len(snapAt) > 0 {
		var err error
		snaps, err = takeSnapshots(c.target, c.mod, c.cfg, c.disabled, c.maxDyn, snapAt)
		if err != nil {
			return err
		}
	}

	// The convergence ladder passed to every trial suffix; bin restores
	// still use snaps directly, so disabling convergence never disables
	// checkpointing.
	convSnaps := snaps
	if c.cfg.Converge < 0 {
		convSnaps = nil
	}

	// bins[0] holds trials whose effective trigger precedes the first
	// snapshot (the whole campaign, when there is no schedule); bins[b] for
	// b >= 1 restores snaps[b-1].
	bins := make([][]int, len(snapAt)+1)
	for _, i := range pending {
		eff := c.model.EffectiveTrigger(triggers[i])
		b := sort.Search(len(snapAt), func(k int) bool { return snapAt[k] > eff })
		bins[b] = append(bins[b], i)
	}
	minLanes := lockstepMinLanes(c.cfg)

	// Work units are (trials, snapshot) pairs. When lockstep will batch the
	// scratch bin, it is split into per-worker chunks — each chunk gets its
	// own carrier, so one bin holding most of the campaign (always, without
	// a schedule) cannot serialize the pool. Chunking is outcome-neutral:
	// trials are independent and every chunk is a valid scratch bin.
	type binWork struct {
		trials []int
		snap   *vm.Snapshot
	}
	work := make([]binWork, 0, len(bins)+workers)
	scratch := bins[0]
	chunks := 1
	if minLanes > 0 && workers > 1 && len(scratch) >= 2*minLanes {
		chunks = workers
		if m := len(scratch) / minLanes; chunks > m {
			chunks = m
		}
	}
	for k := 0; k < chunks; k++ {
		if lo, hi := len(scratch)*k/chunks, len(scratch)*(k+1)/chunks; lo < hi {
			work = append(work, binWork{scratch[lo:hi], nil})
		}
	}
	for b := 1; b < len(bins); b++ {
		work = append(work, binWork{bins[b], snaps[b-1]})
	}

	var wg sync.WaitGroup
	binCh := make(chan int, len(work))
	errCh := make(chan error, workers)
	for wk := 0; wk < workers; wk++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			ws := c.newWorker()
			ws.stop = ctx.Done()
			for b := range binCh {
				bw := work[b]
				if minLanes > 0 && len(bw.trials) >= minLanes {
					if err := c.runBinLockstep(ctx, ws, bw.trials, bw.snap, triggers, convSnaps); err != nil {
						errCh <- err
						return
					}
					continue
				}
				for _, i := range bw.trials {
					if ctx.Err() != nil || c.stopRequested() {
						return
					}
					// Solo path with the golden ladder: checkpointed trials
					// fast-forward masked suffixes exactly like lockstep ones.
					if err := c.runOne(ws, i, bw.snap, convSnaps); err != nil {
						errCh <- err
						return
					}
				}
			}
		}()
	}
	// Ascending order puts the scratch chunks (longest per-trial runtime)
	// at the front of the queue.
	for b := range work {
		binCh <- b
	}
	close(binCh)
	wg.Wait()
	select {
	case err := <-errCh:
		return err
	default:
	}
	return nil
}

// runBinLockstep drives one checkpoint bin through a lockstep carrier:
// trials peel off in ascending effective-trigger order (ties broken by
// trial index, so the carrier advances monotonically) and each runs its
// divergent suffix through the same supervised disposition path as the solo
// pool — recordTrial, timeout retry, panic quarantine, early stop. A panic
// anywhere in a trial discards the carrier (its state is unknown
// mid-unwind); the batch is re-armed for the remaining lanes, which costs
// one re-advance from the bin snapshot and nothing in outcomes, since
// peeling never consumes carrier state. snaps is the campaign's full golden
// snapshot ladder — every bin gets it, because a trial's suffix can converge
// at any snapshot above its own trigger, not just its bin's base.
func (c *campaign) runBinLockstep(ctx context.Context, ws *workerState, bin []int, base *vm.Snapshot, triggers []int64, snaps []*vm.Snapshot) error {
	order := append([]int(nil), bin...)
	sort.SliceStable(order, func(a, b int) bool {
		return c.model.EffectiveTrigger(triggers[order[a]]) < c.model.EffectiveTrigger(triggers[order[b]])
	})
	lanes := make([]int, len(order))
	arm := func(from int) error {
		b, err := ws.ensureBatch()
		if err != nil {
			return err
		}
		b.Reset(base)
		for k := from; k < len(order); k++ {
			d := c.model.EffectiveTrigger(triggers[order[k]])
			// Binning compares against the *requested* snapshot indices, but
			// the snapshot itself parks at the first fault-eligible
			// instruction at or after its index — possibly past a trigger
			// binned here. Fact 1 (checkpoint.go) guarantees nothing eligible
			// lies in between, so the snapshot state IS such a lane's
			// divergence state: clamp rather than advance-to-the-past.
			if base != nil && d < base.Dyn() {
				d = base.Dyn()
			}
			lanes[k] = b.AddLane(d)
		}
		return nil
	}
	if err := arm(0); err != nil {
		return err
	}
	for k, i := range order {
		if ctx.Err() != nil || c.stopRequested() {
			return nil
		}
		err := c.runOneLockstep(ws, i, lanes[k], snaps)
		if ws.batch == nil && k+1 < len(order) {
			// A panic poisoned the carrier; rebuild it for the rest of the
			// bin before deciding what the error means.
			if err2 := arm(k + 1); err2 != nil {
				return err2
			}
		}
		if err != nil {
			if errors.Is(err, vm.ErrBatchStopped) {
				return nil // cancellation landed mid-advance; finalize marks partial
			}
			return err
		}
	}
	return nil
}

// runOneLockstep is runOne's lockstep twin: it drives trial i — occupying
// the given carrier lane — to a terminal disposition. The timeout retry
// re-peels the same lane: the carrier still holds the divergence point, so
// the retry costs one state clone, not a prefix re-run.
func (c *campaign) runOneLockstep(ws *workerState, i, lane int, snaps []*vm.Snapshot) error {
	for attempt := 0; ; attempt++ {
		tr, timedOut, panicked, stack, err := c.attemptLockstep(ws, i, lane, snaps)
		if err != nil {
			return err
		}
		if panicked {
			return c.quarantine(i, AnomalyPanic, stack)
		}
		if timedOut {
			if attempt == 0 {
				continue
			}
			return c.quarantine(i, AnomalyTimeout, "")
		}
		return c.recordTrial(i, tr)
	}
}

// attemptLockstep executes one guarded lockstep trial attempt: draw the
// plan, peel the lane into the worker's solo machine, run the suffix. The
// draw precedes the peel so the rng stream matches runTrial draw for draw;
// the peeled machine is positioned exactly where a solo Restore+run-to-
// trigger would put it, so the suffix classifies identical Results. The
// suffix runs through finishTrialConverging: crossings of the golden
// snapshot ladder let a re-converged trial short-circuit to its (provably
// golden) outcome. A recovered panic discards both the solo machine and the
// carrier.
func (c *campaign) attemptLockstep(ws *workerState, i, lane int, snaps []*vm.Snapshot) (tr Trial, timedOut, panicked bool, stack string, err error) {
	defer func() {
		if r := recover(); r != nil {
			panicked = true
			stack = fmt.Sprintf("panic: %v\n\n%s", r, debug.Stack())
			ws.mach = nil
			ws.batch = nil
		}
	}()
	if c.cfg.OnTrial != nil {
		c.cfg.OnTrial(i)
	}
	if err = ws.ensureMachine(); err != nil {
		return
	}
	plan := drawPlan(c.model, c.cfg, c.goldenDyn, i, ws.src, ws.rng)
	if err = ws.batch.Peel(lane, ws.mach); err != nil {
		return
	}
	var deadline time.Time
	if c.cfg.TrialTimeout > 0 {
		deadline = time.Now().Add(c.cfg.TrialTimeout)
	}
	tr, timedOut = finishTrial(ws.mach, plan, c.target, c.cfg, c.golden, c.disabled, deadline, snaps)
	return
}
