package fault_test

// Supervision-layer tests: panic isolation, hung-trial reaping, graceful
// degradation under cancellation, statistical early stopping, and the
// checkpoint scheduler's edge cases.

import (
	"context"
	"math/rand"
	"runtime"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/workloads"
)

func TestPanicQuarantinesOneTrial(t *testing.T) {
	const poisoned = 3
	w := workloads.ByName("kmeans")
	prot := protectedFor(t, w, core.SchemeOriginal)

	cfg := fault.DefaultConfig()
	cfg.Trials = 10
	clean, err := fault.Run(context.Background(), w.Target(workloads.Test), prot, "Original", cfg)
	if err != nil {
		t.Fatal(err)
	}

	cfg.OnTrial = func(trial int) {
		if trial == poisoned {
			panic("injected test panic")
		}
	}
	rep, err := fault.Run(context.Background(), w.Target(workloads.Test), prot, "Original", cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Anomalies) != 1 {
		t.Fatalf("anomalies = %+v, want exactly one", rep.Anomalies)
	}
	a := rep.Anomalies[0]
	if a.Trial != poisoned || a.Reason != fault.AnomalyPanic {
		t.Fatalf("anomaly %+v, want trial %d panic", a, poisoned)
	}
	if a.Seed != cfg.Seed+poisoned*7919 {
		t.Fatalf("reproducer seed %d, want %d", a.Seed, cfg.Seed+poisoned*7919)
	}
	if !strings.Contains(a.Stack, "injected test panic") {
		t.Fatalf("stack does not carry the panic value:\n%s", a.Stack)
	}
	if rep.Partial {
		t.Fatal("quarantine must not mark the campaign partial")
	}
	if rep.Tally.N != cfg.Trials-1 {
		t.Fatalf("Tally.N = %d, want %d", rep.Tally.N, cfg.Trials-1)
	}
	// The poisoned worker's machine is rebuilt; every other trial must be
	// bit-identical to the clean campaign.
	for i := range rep.Trials {
		if i == poisoned {
			continue
		}
		if rep.Trials[i] != clean.Trials[i] {
			t.Fatalf("trial %d perturbed by quarantine: %+v != %+v", i, rep.Trials[i], clean.Trials[i])
		}
	}
}

func TestAllTrialsQuarantinedYieldsEmptyTally(t *testing.T) {
	w := workloads.ByName("tiff2bw")
	prot := protectedFor(t, w, core.SchemeOriginal)
	cfg := fault.DefaultConfig()
	cfg.Trials = 5
	cfg.OnTrial = func(int) { panic("every trial") }
	rep, err := fault.Run(context.Background(), w.Target(workloads.Test), prot, "Original", cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Tally.N != 0 || len(rep.Anomalies) != cfg.Trials {
		t.Fatalf("N=%d anomalies=%d, want 0 and %d", rep.Tally.N, len(rep.Anomalies), cfg.Trials)
	}
	if rep.Partial {
		t.Fatal("all-quarantined campaign is complete, not partial")
	}
	if cov := rep.Tally.Coverage(); cov != 0 {
		t.Fatalf("coverage over zero trials = %v", cov)
	}
}

func TestTrialTimeoutQuarantinesWithRetry(t *testing.T) {
	w := workloads.ByName("kmeans")
	prot := protectedFor(t, w, core.SchemeOriginal)
	cfg := fault.DefaultConfig()
	cfg.Trials = 6
	cfg.Workers = 1
	cfg.Checkpoints = -1
	cfg.TrialTimeout = time.Nanosecond // every wall-clock poll has expired
	var attempts atomic.Int64
	cfg.OnTrial = func(int) { attempts.Add(1) }
	rep, err := fault.Run(context.Background(), w.Target(workloads.Test), prot, "Original", cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.GoldenDyn < 1<<14 {
		t.Skipf("golden run too short (%d dyn) for the deadline poll cadence", rep.GoldenDyn)
	}
	timeouts := 0
	for _, a := range rep.Anomalies {
		if a.Reason != fault.AnomalyTimeout {
			t.Fatalf("unexpected anomaly reason: %+v", a)
		}
		if a.Stack != "" {
			t.Fatalf("timeout anomaly carries a stack: %+v", a)
		}
		timeouts++
	}
	if timeouts == 0 {
		t.Fatal("no trial hit the 1ns deadline")
	}
	if rep.Tally.N+timeouts != cfg.Trials {
		t.Fatalf("N=%d + timeouts=%d != Trials=%d", rep.Tally.N, timeouts, cfg.Trials)
	}
	// A timed-out trial is attempted exactly twice (one bounded retry);
	// completed trials once.
	want := int64(rep.Tally.N + 2*timeouts)
	if got := attempts.Load(); got != want {
		t.Fatalf("attempts = %d, want %d (%d done, %d timeouts)", got, want, rep.Tally.N, timeouts)
	}
}

// TestCancellationMidCampaign cancels from inside the campaign and checks
// graceful degradation: a valid, internally consistent partial report and
// no leaked worker goroutines.
func TestCancellationMidCampaign(t *testing.T) {
	w := workloads.ByName("kmeans")
	prot := protectedFor(t, w, core.SchemeOriginal)
	before := runtime.NumGoroutine()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	cfg := fault.DefaultConfig()
	cfg.Trials = 200
	cfg.Workers = 4
	var started atomic.Int64
	cfg.OnTrial = func(int) {
		if started.Add(1) == 10 {
			cancel()
		}
	}
	rep, err := fault.Run(ctx, w.Target(workloads.Test), prot, "Original", cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Partial {
		t.Fatal("cancelled campaign not marked Partial")
	}
	if rep.EarlyStopped {
		t.Fatal("cancellation misreported as early stop")
	}
	if rep.Tally.N == 0 || rep.Tally.N >= cfg.Trials {
		t.Fatalf("partial Tally.N = %d, want in (0, %d)", rep.Tally.N, cfg.Trials)
	}
	sum := 0
	for _, c := range rep.Tally.Count {
		sum += c
	}
	if sum != rep.Tally.N {
		t.Fatalf("partial outcome counts sum to %d != N=%d", sum, rep.Tally.N)
	}
	// Workers must have exited: Run joins the pool before returning, so any
	// sustained goroutine growth is a leak. Allow unrelated runtime noise.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if runtime.NumGoroutine() <= before+2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines: %d before campaign, %d after", before, runtime.NumGoroutine())
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestEarlyStoppingSavesTrials(t *testing.T) {
	w := workloads.ByName("kmeans")
	prot := protectedFor(t, w, core.SchemeOriginal)
	cfg := fault.DefaultConfig()
	cfg.Trials = 400
	cfg.TargetCI = 0.8 // loose on purpose: a handful of trials satisfies it
	rep, err := fault.Run(context.Background(), w.Target(workloads.Test), prot, "Original", cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.EarlyStopped {
		t.Fatalf("campaign did not stop early: N=%d", rep.Tally.N)
	}
	if rep.Partial {
		t.Fatal("early stop misreported as partial")
	}
	if rep.TrialsSaved <= 0 || rep.Tally.N+rep.TrialsSaved+len(rep.Anomalies) != cfg.Trials {
		t.Fatalf("N=%d saved=%d anomalies=%d, want them to sum to %d",
			rep.Tally.N, rep.TrialsSaved, len(rep.Anomalies), cfg.Trials)
	}
	// The stop criterion held at the moment it fired; in-flight trials that
	// land afterwards only grow N, so the intervals stay well-formed.
	if lo, hi := rep.Tally.CoverageInterval(); lo < 0 || hi > 1 || lo > hi {
		t.Fatalf("malformed coverage CI [%v,%v]", lo, hi)
	}
}

// TestCheckpointMoreSnapshotsThanTrials pins the scheduler's behavior when
// the snapshot request outnumbers the trials: still bit-identical to
// scratch (the schedule depends on the golden run, not the trial count).
func TestCheckpointMoreSnapshotsThanTrials(t *testing.T) {
	w := workloads.ByName("kmeans")
	prot := protectedFor(t, w, core.SchemeDup)
	run := func(ckpt int) *fault.Report {
		cfg := fault.DefaultConfig()
		cfg.Trials = 3
		cfg.Checkpoints = ckpt
		rep, err := fault.Run(context.Background(), w.Target(workloads.Test), prot, "DupOnly", cfg)
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	diffReports(t, "snapshots>trials", run(8), run(-1))
}

// TestCheckpointAllTriggersBeforeFirstSnapshot hunts a seed whose every
// trigger lands before the first snapshot — the whole campaign then runs in
// the scratch bin and no snapshot is ever restored — and checks it still
// matches the plain scratch path.
func TestCheckpointAllTriggersBeforeFirstSnapshot(t *testing.T) {
	const trials = 4
	w := workloads.ByName("kmeans")
	prot := protectedFor(t, w, core.SchemeOriginal)

	probe := fault.DefaultConfig()
	probe.Trials = 1
	rep, err := fault.Run(context.Background(), w.Target(workloads.Test), prot, "Original", probe)
	if err != nil {
		t.Fatal(err)
	}
	goldenDyn := rep.GoldenDyn
	// With Checkpoints=2 the first snapshot sits at goldenDyn/3 (the
	// scheduler spaces n snapshots at goldenDyn*(k+1)/(n+1)).
	firstSnap := goldenDyn / 3

	// Reproduce the campaign's trigger draw (first Int63n after per-trial
	// seeding) to find a seed that puts every trigger in the scratch bin.
	seed := int64(-1)
	for s := int64(1); s < 100_000; s++ {
		all := true
		for i := int64(0); i < trials; i++ {
			if rand.New(rand.NewSource(s+i*7919)).Int63n(goldenDyn) >= firstSnap {
				all = false
				break
			}
		}
		if all {
			seed = s
			break
		}
	}
	if seed < 0 {
		t.Fatal("no all-early-trigger seed found in 100k candidates")
	}

	run := func(ckpt int) *fault.Report {
		cfg := fault.DefaultConfig()
		cfg.Trials = trials
		cfg.Seed = seed
		cfg.Checkpoints = ckpt
		rep, err := fault.Run(context.Background(), w.Target(workloads.Test), prot, "Original", cfg)
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	diffReports(t, "all-before-first-snapshot", run(2), run(-1))
}
