package fault_test

// Resume-equivalence suite: a journaled campaign interrupted at an
// arbitrary byte offset and resumed must produce a Report bit-identical to
// an uninterrupted run — across every workload and protection mode. The
// truncation point is derived deterministically per cell so the matrix
// collectively covers header cuts (resume restarts from scratch), mid- and
// between-record cuts (resume replays a prefix), and no cut at all (resume
// replays everything). This is the acceptance gate for the journal.

import (
	"context"
	"hash/fnv"
	"os"
	"path/filepath"
	"sync/atomic"
	"testing"

	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/workloads"
)

func TestCampaignResumeEquivalence(t *testing.T) {
	modes := core.SchemeNames()
	names := make([]string, 0, 13)
	for _, w := range workloads.All() {
		names = append(names, w.Name)
	}
	if raceEnabled {
		names = []string{"tiff2bw", "g721dec", "svm", "kmeans"}
		modes = []string{core.SchemeOriginal, core.SchemeDupVal}
	}
	for _, name := range names {
		for _, mode := range modes {
			name, mode := name, mode
			t.Run(name+"/"+mode, func(t *testing.T) {
				t.Parallel()
				w := workloads.ByName(name)
				prot := protectedFor(t, w, mode)
				path := filepath.Join(t.TempDir(), "campaign.journal")

				run := func(resume bool) *fault.Report {
					cfg := fault.DefaultConfig()
					cfg.Trials = 12
					cfg.JournalPath = path
					cfg.Resume = resume
					rep, err := fault.Run(context.Background(), w.Target(workloads.Test), prot, mode, cfg)
					if err != nil {
						t.Fatal(err)
					}
					return rep
				}

				full := run(false)

				// Deterministic per-cell cut in [0, size]: the matrix as a
				// whole exercises header cuts, record cuts, and the no-cut
				// (journal already complete) resume.
				info, err := os.Stat(path)
				if err != nil {
					t.Fatal(err)
				}
				h := fnv.New64a()
				h.Write([]byte(name + "/" + mode))
				cut := int64(h.Sum64() % uint64(info.Size()+1))
				if err := os.Truncate(path, cut); err != nil {
					t.Fatal(err)
				}
				t.Logf("journal %d bytes, resuming from %d", info.Size(), cut)

				resumed := run(true)
				diffReports(t, "resumed-vs-full", resumed, full)
				if resumed.Partial || full.Partial {
					t.Fatal("complete campaigns marked partial")
				}
				if len(resumed.Anomalies)+len(full.Anomalies) != 0 {
					t.Fatalf("unexpected anomalies: %+v / %+v", resumed.Anomalies, full.Anomalies)
				}
			})
		}
	}
}

// TestResumeCompletedCampaignRunsNothing resumes an intact journal of a
// finished campaign: every trial must replay from the journal and zero
// trials may execute.
func TestResumeCompletedCampaignRunsNothing(t *testing.T) {
	w := workloads.ByName("kmeans")
	prot := protectedFor(t, w, core.SchemeOriginal)
	path := filepath.Join(t.TempDir(), "campaign.journal")

	cfg := fault.DefaultConfig()
	cfg.Trials = 10
	cfg.JournalPath = path
	full, err := fault.Run(context.Background(), w.Target(workloads.Test), prot, "Original", cfg)
	if err != nil {
		t.Fatal(err)
	}

	var executed atomic.Int64
	cfg.Resume = true
	cfg.OnTrial = func(int) { executed.Add(1) }
	resumed, err := fault.Run(context.Background(), w.Target(workloads.Test), prot, "Original", cfg)
	if err != nil {
		t.Fatal(err)
	}
	if n := executed.Load(); n != 0 {
		t.Fatalf("resume of a complete journal executed %d trials", n)
	}
	if resumed.Replayed != cfg.Trials {
		t.Fatalf("Replayed = %d, want %d", resumed.Replayed, cfg.Trials)
	}
	diffReports(t, "replayed-vs-full", resumed, full)
}

// TestResumeReplaysQuarantinedTrials checks anomalies are durable: a
// journaled panic quarantine survives resume without re-running the
// poisoned trial.
func TestResumeReplaysQuarantinedTrials(t *testing.T) {
	const poisoned = 2
	w := workloads.ByName("tiff2bw")
	prot := protectedFor(t, w, core.SchemeOriginal)
	path := filepath.Join(t.TempDir(), "campaign.journal")

	cfg := fault.DefaultConfig()
	cfg.Trials = 6
	cfg.JournalPath = path
	cfg.OnTrial = func(trial int) {
		if trial == poisoned {
			panic("poisoned trial")
		}
	}
	first, err := fault.Run(context.Background(), w.Target(workloads.Test), prot, "Original", cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(first.Anomalies) != 1 {
		t.Fatalf("anomalies = %+v", first.Anomalies)
	}

	cfg.Resume = true
	cfg.OnTrial = func(trial int) {
		if trial == poisoned {
			t.Errorf("quarantined trial %d re-executed on resume", trial)
		}
	}
	resumed, err := fault.Run(context.Background(), w.Target(workloads.Test), prot, "Original", cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(resumed.Anomalies) != 1 {
		t.Fatalf("anomaly lost on resume: %+v", resumed.Anomalies)
	}
	a, b := first.Anomalies[0], resumed.Anomalies[0]
	if a.Trial != b.Trial || a.Seed != b.Seed || a.Reason != b.Reason || a.Stack != b.Stack {
		t.Fatalf("anomaly not durable:\nfirst=%+v\nresumed=%+v", a, b)
	}
	if resumed.Tally != first.Tally {
		t.Fatalf("tallies differ: %+v != %+v", resumed.Tally, first.Tally)
	}
}

// TestResumeRejectsForeignJournal: resuming under a different
// result-affecting configuration must fail loudly, not silently blend two
// campaigns.
func TestResumeRejectsForeignJournal(t *testing.T) {
	w := workloads.ByName("kmeans")
	prot := protectedFor(t, w, core.SchemeOriginal)
	path := filepath.Join(t.TempDir(), "campaign.journal")

	cfg := fault.DefaultConfig()
	cfg.Trials = 4
	cfg.JournalPath = path
	if _, err := fault.Run(context.Background(), w.Target(workloads.Test), prot, "Original", cfg); err != nil {
		t.Fatal(err)
	}

	cfg.Resume = true
	cfg.Seed++
	if _, err := fault.Run(context.Background(), w.Target(workloads.Test), prot, "Original", cfg); err == nil {
		t.Fatal("foreign journal (different seed) accepted on resume")
	}
}

// TestResumeMissingJournalStartsFresh: -resume against a journal that does
// not exist yet is a fresh start, not an error (first run of a durable
// campaign script).
func TestResumeMissingJournalStartsFresh(t *testing.T) {
	w := workloads.ByName("tiff2bw")
	prot := protectedFor(t, w, core.SchemeOriginal)
	path := filepath.Join(t.TempDir(), "campaign.journal")

	cfg := fault.DefaultConfig()
	cfg.Trials = 5
	cfg.JournalPath = path
	cfg.Resume = true
	rep, err := fault.Run(context.Background(), w.Target(workloads.Test), prot, "Original", cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Replayed != 0 || rep.Tally.N != cfg.Trials {
		t.Fatalf("fresh resume: Replayed=%d N=%d", rep.Replayed, rep.Tally.N)
	}
	if _, err := os.Stat(path); err != nil {
		t.Fatalf("journal not created: %v", err)
	}
}
