package fault

// Shard-journal merging. A sharded campaign splits its trial range across
// worker processes; each shard run writes an ordinary crc32 journal whose
// header records the subrange it covers (Config.ShardStart/ShardEnd). Trial
// indices are absolute and every trial draws from its own seed, so the
// per-shard journals of one campaign are disjoint views of the same
// deterministic trial sequence. Merging is therefore a pure fold: validate
// that the headers agree on every identity field except the shard range,
// union the records, and rebuild the Report through the exact finalize path
// a single-process campaign uses — the merged Report (Tally, per-trial
// records, Anomalies ordering) is bit-identical to an uninterrupted
// single-process run.
//
// Consolidation is the coordinator's fencing primitive: when a shard lease
// expires and the shard is reassigned, the dead worker's journal(s) are
// folded into a fresh journal at a new path, and the new attempt resumes
// from that. The dead worker — which may still be alive and writing — keeps
// appending to its own superseded file, which nothing reads again, so two
// attempts never share a journal file.

import (
	"fmt"
	"math"
	"os"
)

// sameTrial compares two trial records with float fields compared bitwise,
// so NaN fidelity values (legal: Measure is a user callback) compare equal
// to themselves.
func sameTrial(a, b Trial) bool {
	return a.Outcome == b.Outcome &&
		a.CheckKind == b.CheckKind &&
		a.SDC == b.SDC &&
		a.Acceptable == b.Acceptable &&
		math.Float64bits(a.Fidelity) == math.Float64bits(b.Fidelity) &&
		math.Float64bits(a.RelChange) == math.Float64bits(b.RelChange) &&
		a.TrapKind == b.TrapKind
}

// replayShardFiles replays each existing journal, checks the headers agree
// modulo shard range, and returns the states alongside the reference
// header. Headerless journals (a crash before the first batch) contribute
// nothing; missing files are an error unless allowMissing.
func replayShardFiles(paths []string, allowMissing bool) ([]*journalState, *journalHeader, error) {
	var (
		states []*journalState
		hdr    *journalHeader
	)
	for _, p := range paths {
		f, err := os.Open(p)
		if err != nil {
			if allowMissing && os.IsNotExist(err) {
				continue
			}
			return nil, nil, err
		}
		st := replayJournal(f)
		f.Close()
		if st.header == nil {
			continue
		}
		if hdr == nil {
			hdr = st.header
		} else if d := st.header.mergeMismatch(hdr); d != "" {
			return nil, nil, fmt.Errorf("fault: shard journal %s belongs to a different campaign: %s", p, d)
		}
		states = append(states, st)
	}
	return states, hdr, nil
}

// foldShardStates unions the replayed states into per-trial dispositions.
// Two journals deciding the same trial must agree — trials are
// deterministic, so a disagreement means corruption or mixed campaigns —
// except that anomaly stacks are allowed to differ (panic stacks are
// path-specific; the first journal's record wins, deterministically in path
// order).
func foldShardStates(states []*journalState, trials []Trial, state []uint8, anomalies map[int]Anomaly) error {
	for _, st := range states {
		for i, tr := range st.trials {
			switch state[i] {
			case trialDone:
				if !sameTrial(trials[i], tr) {
					return fmt.Errorf("fault: shard journals disagree on trial %d: %+v vs %+v", i, trials[i], tr)
				}
			case trialQuarantined:
				return fmt.Errorf("fault: trial %d is quarantined in one shard journal and decided in another", i)
			default:
				trials[i] = tr
				state[i] = trialDone
			}
		}
		for i, a := range st.anomalies {
			switch state[i] {
			case trialDone:
				return fmt.Errorf("fault: trial %d is quarantined in one shard journal and decided in another", i)
			case trialQuarantined:
				prev := anomalies[i]
				if prev.Seed != a.Seed || prev.Reason != a.Reason {
					return fmt.Errorf("fault: shard journals disagree on anomaly %d: %+v vs %+v", i, prev, a)
				}
			default:
				state[i] = trialQuarantined
				anomalies[i] = a
			}
		}
	}
	return nil
}

// MergeShardJournals folds one campaign's per-shard journals into a single
// Report, bit-identical (Tally, per-trial records, Anomalies ordering) to
// the Report a single-process run of the whole campaign produces. Paths to
// journals that never got a header are tolerated (they contribute nothing);
// the journals must otherwise share one campaign identity. Trials no
// journal decided leave the merged Report Partial — a complete merge of a
// full shard set is never Partial.
func MergeShardJournals(paths []string) (*Report, error) {
	if len(paths) == 0 {
		return nil, fmt.Errorf("fault: no shard journals to merge")
	}
	states, hdr, err := replayShardFiles(paths, false)
	if err != nil {
		return nil, err
	}
	if hdr == nil {
		return nil, fmt.Errorf("fault: no intact journal header among %d shard journals", len(paths))
	}

	rep := &Report{
		Workload:       hdr.Workload,
		Technique:      hdr.Technique,
		FaultModel:     hdr.Model,
		GoldenDyn:      hdr.GoldenDyn,
		GoldenCycles:   hdr.GoldenCycles,
		DisabledChecks: hdr.Disabled,
		Trials:         make([]Trial, hdr.Trials),
	}
	c := &campaign{
		cfg: Config{
			Trials:      hdr.Trials,
			Seed:        hdr.Seed,
			LargeChange: math.Float64frombits(hdr.LargeChangeBits),
		},
		rep:       rep,
		state:     make([]uint8, hdr.Trials),
		anomalies: make(map[int]Anomaly),
	}
	if err := foldShardStates(states, rep.Trials, c.state, c.anomalies); err != nil {
		return nil, err
	}
	c.finalize(nil)
	return rep, nil
}

// ConsolidateShardJournals folds the journals of one shard's previous
// attempts into a fresh journal at dst, ready for the next attempt to
// resume from. All sources must carry the identical header (same campaign
// AND same shard range). Records are written in ascending trial order, so
// consolidation output is deterministic given its inputs. The returned
// count is the number of decided trials dst holds; when no source has an
// intact header there is nothing to consolidate — dst is removed if present
// and the count is 0 (a resume from the missing dst starts the shard
// fresh, which is the correct recovery for a crash before the first
// batch).
func ConsolidateShardJournals(dst string, srcs []string) (decided int, err error) {
	states, hdr, err := replayShardFiles(srcs, true)
	if err != nil {
		return 0, err
	}
	if hdr == nil {
		if err := os.Remove(dst); err != nil && !os.IsNotExist(err) {
			return 0, err
		}
		return 0, nil
	}
	// Within one shard the range must match exactly, not just modulo range.
	for _, st := range states {
		if d := st.header.mismatch(hdr); d != "" {
			return 0, fmt.Errorf("fault: consolidating journals of different shards: %s", d)
		}
	}

	trials := make([]Trial, hdr.Trials)
	state := make([]uint8, hdr.Trials)
	anomalies := make(map[int]Anomaly)
	if err := foldShardStates(states, trials, state, anomalies); err != nil {
		return 0, err
	}

	f, err := os.Create(dst)
	if err != nil {
		return 0, err
	}
	w := newJournalWriter(f)
	if err := w.append(&journalRecord{H: hdr}); err != nil {
		w.close()
		return 0, err
	}
	for i, s := range state {
		switch s {
		case trialDone:
			if err := w.append(&journalRecord{T: encodeTrial(i, trials[i])}); err != nil {
				w.close()
				return 0, err
			}
		case trialQuarantined:
			a := anomalies[i]
			if err := w.append(&journalRecord{A: &journalAnomaly{
				Index: i, Seed: a.Seed, Reason: a.Reason, Stack: a.Stack,
			}}); err != nil {
				w.close()
				return 0, err
			}
		default:
			continue
		}
		decided++
	}
	if err := w.close(); err != nil {
		return 0, err
	}
	return decided, nil
}
