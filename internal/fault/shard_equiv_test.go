package fault_test

// Shard-merge equivalence: a campaign split across shard subranges, each
// run as its own journaled fault.Run, must merge (MergeShardJournals) into
// a Report bit-identical to an uninterrupted single-process run — the
// soundness claim the distributed campaign service is built on. Also
// covers the crash/reassign shape: a shard killed mid-run is consolidated
// and resumed by a "new attempt", and the merge still matches.

import (
	"context"
	"fmt"
	"path/filepath"
	"sync/atomic"
	"testing"

	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/ir"
	"repro/internal/workloads"
)

// shardRanges splits [0,trials) into n contiguous subranges, remainder
// spread over the leading shards — the same split the coordinator uses.
func shardRanges(trials, n int) [][2]int {
	per, rem := trials/n, trials%n
	ranges := make([][2]int, 0, n)
	lo := 0
	for s := 0; s < n; s++ {
		hi := lo + per
		if s < rem {
			hi++
		}
		ranges = append(ranges, [2]int{lo, hi})
		lo = hi
	}
	return ranges
}

// runSharded executes cfg as n journaled shard runs and returns the
// journal paths ready for merging.
func runSharded(t *testing.T, w *workloads.Workload, mod *ir.Module, technique string, cfg fault.Config, n int) []string {
	t.Helper()
	dir := t.TempDir()
	var paths []string
	for s, r := range shardRanges(cfg.Trials, n) {
		c := cfg
		c.ShardStart, c.ShardEnd = r[0], r[1]
		c.JournalPath = filepath.Join(dir, fmt.Sprintf("shard%02d.journal", s))
		rep, err := fault.Run(context.Background(), w.Target(workloads.Test), mod.Clone(), technique, c)
		if err != nil {
			t.Fatalf("shard [%d,%d): %v", r[0], r[1], err)
		}
		if rep.Partial {
			t.Fatalf("shard [%d,%d): completed shard marked Partial", r[0], r[1])
		}
		if got := rep.Tally.N + len(rep.Anomalies); got != r[1]-r[0] {
			t.Fatalf("shard [%d,%d): decided %d trials, want %d", r[0], r[1], got, r[1]-r[0])
		}
		paths = append(paths, c.JournalPath)
	}
	return paths
}

func TestShardMergeEquivalence(t *testing.T) {
	cells := []struct {
		workload  string
		mode      string
		technique string
		model     string
	}{
		{"tiff2bw", core.SchemeOriginal, "Original", fault.ModelRegFlip},
		{"g721dec", core.SchemeDup, "DupOnly", fault.ModelRegFlip},
		{"svm", core.SchemeDupVal, "DupVal", fault.ModelMemFlip},
		{"kmeans", core.SchemeABFT, "ABFT", fault.ModelBranchTarget},
		{"jpegdec", core.SchemeFullDup, "FullDup", fault.ModelStuckAt},
	}
	if raceEnabled {
		cells = cells[:2]
	}
	for _, c := range cells {
		c := c
		t.Run(c.workload+"/"+c.mode, func(t *testing.T) {
			t.Parallel()
			w := workloads.ByName(c.workload)
			prot := protectedFor(t, w, c.mode)
			cfg := fault.DefaultConfig()
			cfg.Trials = 24
			cfg.Checkpoints = 4
			cfg.Model = c.model

			solo, err := fault.Run(context.Background(), w.Target(workloads.Test), prot.Clone(), c.technique, cfg)
			if err != nil {
				t.Fatal(err)
			}
			paths := runSharded(t, w, prot, c.technique, cfg, 3)
			merged, err := fault.MergeShardJournals(paths)
			if err != nil {
				t.Fatal(err)
			}
			diffReports(t, c.workload, merged, solo)
			if merged.Workload != solo.Workload || merged.Technique != solo.Technique || merged.FaultModel != solo.FaultModel {
				t.Fatalf("identity fields differ: merged=(%q,%q,%q) solo=(%q,%q,%q)",
					merged.Workload, merged.Technique, merged.FaultModel,
					solo.Workload, solo.Technique, solo.FaultModel)
			}
		})
	}
}

// TestShardMergeWithAnomalies pins the merged Anomalies ordering against
// the single-process run when quarantined trials land in different shards.
func TestShardMergeWithAnomalies(t *testing.T) {
	w := workloads.ByName("g721dec")
	prot := protectedFor(t, w, core.SchemeOriginal)
	cfg := fault.DefaultConfig()
	cfg.Trials = 12
	// Poison two trials in different shards of the 3-way split [0,4)[4,8)[8,12).
	cfg.OnTrial = func(trial int) {
		if trial == 2 || trial == 9 {
			panic("injected shard test panic")
		}
	}

	solo, err := fault.Run(context.Background(), w.Target(workloads.Test), prot.Clone(), "Original", cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(solo.Anomalies) != 2 {
		t.Fatalf("solo run quarantined %d trials, want 2", len(solo.Anomalies))
	}

	dir := t.TempDir()
	var paths []string
	for s, r := range shardRanges(cfg.Trials, 3) {
		c := cfg
		c.ShardStart, c.ShardEnd = r[0], r[1]
		c.JournalPath = filepath.Join(dir, fmt.Sprintf("shard%02d.journal", s))
		if _, err := fault.Run(context.Background(), w.Target(workloads.Test), prot.Clone(), "Original", c); err != nil {
			t.Fatal(err)
		}
		paths = append(paths, c.JournalPath)
	}
	merged, err := fault.MergeShardJournals(paths)
	if err != nil {
		t.Fatal(err)
	}
	diffReports(t, "anomalies", merged, solo)
}

// TestShardCrashConsolidateResume replays the coordinator's reassignment
// protocol at the library level: attempt 1 of a shard is cancelled mid-run
// (a crashed worker whose lease expired), its journal is consolidated into
// a fresh attempt-2 path, attempt 2 resumes from it and finishes, and the
// final merge across shards is still bit-identical to the solo run.
func TestShardCrashConsolidateResume(t *testing.T) {
	w := workloads.ByName("tiff2bw")
	prot := protectedFor(t, w, core.SchemeDup)
	cfg := fault.DefaultConfig()
	cfg.Trials = 16
	cfg.Workers = 1 // deterministic progress before the cancel

	solo, err := fault.Run(context.Background(), w.Target(workloads.Test), prot.Clone(), "DupOnly", cfg)
	if err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	// Shard [0,10): attempt 1 dies after ~4 trials.
	a1 := filepath.Join(dir, "shard00-a1.journal")
	ctx, cancel := context.WithCancel(context.Background())
	var started atomic.Int64
	c1 := cfg
	c1.ShardStart, c1.ShardEnd = 0, 10
	c1.JournalPath = a1
	c1.OnTrial = func(int) {
		if started.Add(1) == 5 {
			cancel()
		}
	}
	rep1, err := fault.Run(ctx, w.Target(workloads.Test), prot.Clone(), "DupOnly", c1)
	if err != nil {
		t.Fatal(err)
	}
	if !rep1.Partial {
		t.Fatal("cancelled shard attempt not Partial")
	}

	// Lease expiry: consolidate attempt 1 into the attempt-2 journal.
	a2 := filepath.Join(dir, "shard00-a2.journal")
	decided, err := fault.ConsolidateShardJournals(a2, []string{a1})
	if err != nil {
		t.Fatal(err)
	}
	if decided >= 10 {
		t.Fatalf("consolidated %d decided trials out of a cancelled 10-trial shard", decided)
	}

	// Attempt 2 resumes from the consolidation and completes the shard.
	c2 := cfg
	c2.ShardStart, c2.ShardEnd = 0, 10
	c2.JournalPath = a2
	c2.Resume = true
	rep2, err := fault.Run(context.Background(), w.Target(workloads.Test), prot.Clone(), "DupOnly", c2)
	if err != nil {
		t.Fatal(err)
	}
	if rep2.Partial {
		t.Fatal("resumed shard attempt still Partial")
	}
	if rep2.Replayed != decided {
		t.Fatalf("attempt 2 replayed %d trials, consolidation held %d", rep2.Replayed, decided)
	}

	// Shard [10,16) runs uneventfully.
	b := filepath.Join(dir, "shard01-a1.journal")
	c3 := cfg
	c3.ShardStart, c3.ShardEnd = 10, 16
	c3.JournalPath = b
	if _, err := fault.Run(context.Background(), w.Target(workloads.Test), prot.Clone(), "DupOnly", c3); err != nil {
		t.Fatal(err)
	}

	// The merge reads only the latest attempt per shard, never a1.
	merged, err := fault.MergeShardJournals([]string{a2, b})
	if err != nil {
		t.Fatal(err)
	}
	diffReports(t, "crash-resume", merged, solo)
}

// TestShardRangeValidation pins the Config.ShardStart/ShardEnd contract.
func TestShardRangeValidation(t *testing.T) {
	w := workloads.ByName("tiff2bw")
	prot := protectedFor(t, w, core.SchemeOriginal)
	for _, r := range [][2]int{{-1, 4}, {0, 11}, {4, 4}, {6, 2}} {
		cfg := fault.DefaultConfig()
		cfg.Trials = 10
		cfg.ShardStart, cfg.ShardEnd = r[0], r[1]
		if _, err := fault.Run(context.Background(), w.Target(workloads.Test), prot.Clone(), "Original", cfg); err == nil {
			t.Errorf("shard range [%d,%d) over 10 trials accepted", r[0], r[1])
		}
	}
}
