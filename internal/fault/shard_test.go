package fault

// White-box shard-merge tests: header compatibility, record folding,
// conflict detection, and consolidation — the pieces the distributed
// coordinator's correctness rests on. The end-to-end equivalence of a
// sharded campaign against the single-process path lives in
// shard_equiv_test.go.

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// shardHeader derives a shard-range variant of testHeader().
func shardHeader(lo, hi int) *journalHeader {
	h := testHeader()
	h.ShardStart, h.ShardEnd = lo, hi
	return h
}

// writeJournal materializes records to a file.
func writeJournal(t *testing.T, path string, recs ...*journalRecord) {
	t.Helper()
	if err := os.WriteFile(path, journalBytes(t, recs...), 0o644); err != nil {
		t.Fatal(err)
	}
}

func TestMergeShardJournalsFoldsDisjointShards(t *testing.T) {
	dir := t.TempDir()
	a := filepath.Join(dir, "a.journal")
	b := filepath.Join(dir, "b.journal")
	writeJournal(t, a,
		&journalRecord{H: shardHeader(0, 4)},
		&journalRecord{T: encodeTrial(0, Trial{Outcome: Masked})},
		&journalRecord{T: encodeTrial(1, Trial{Outcome: USDC, SDC: true})},
		&journalRecord{T: encodeTrial(3, Trial{Outcome: Failure})},
		&journalRecord{A: &journalAnomaly{Index: 2, Seed: 77, Reason: AnomalyTimeout}},
	)
	writeJournal(t, b,
		&journalRecord{H: shardHeader(4, 8)},
		&journalRecord{T: encodeTrial(4, Trial{Outcome: Masked})},
		&journalRecord{T: encodeTrial(5, Trial{Outcome: SWDetect})},
		&journalRecord{T: encodeTrial(6, Trial{Outcome: Masked})},
		&journalRecord{T: encodeTrial(7, Trial{Outcome: HWDetect})},
	)
	rep, err := MergeShardJournals([]string{a, b})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Partial {
		t.Fatal("fully-decided merge marked Partial")
	}
	if rep.Tally.N != 7 {
		t.Fatalf("Tally.N = %d, want 7 (8 trials, 1 quarantined)", rep.Tally.N)
	}
	if got := rep.Tally.Count[Masked]; got != 3 {
		t.Fatalf("Masked = %d, want 3", got)
	}
	if len(rep.Anomalies) != 1 || rep.Anomalies[0].Trial != 2 || rep.Anomalies[0].Seed != 77 {
		t.Fatalf("anomalies = %+v", rep.Anomalies)
	}
	if rep.Workload != "w" || rep.GoldenDyn != 12345 || rep.GoldenCycles != 23456 {
		t.Fatalf("header fields lost: %+v", rep)
	}
}

func TestMergeShardJournalsMissingTrialsArePartial(t *testing.T) {
	dir := t.TempDir()
	a := filepath.Join(dir, "a.journal")
	writeJournal(t, a,
		&journalRecord{H: shardHeader(0, 4)},
		&journalRecord{T: encodeTrial(0, Trial{Outcome: Masked})},
		&journalRecord{T: encodeTrial(1, Trial{Outcome: Masked})},
	)
	rep, err := MergeShardJournals([]string{a})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Partial {
		t.Fatal("merge missing 6 of 8 trials not marked Partial")
	}
	if rep.Tally.N != 2 {
		t.Fatalf("Tally.N = %d, want 2", rep.Tally.N)
	}
}

func TestMergeShardJournalsDetectsConflicts(t *testing.T) {
	dir := t.TempDir()
	a := filepath.Join(dir, "a.journal")
	b := filepath.Join(dir, "b.journal")

	// Same trial, different outcome: determinism violation.
	writeJournal(t, a,
		&journalRecord{H: shardHeader(0, 4)},
		&journalRecord{T: encodeTrial(1, Trial{Outcome: Masked})},
	)
	writeJournal(t, b,
		&journalRecord{H: shardHeader(0, 4)},
		&journalRecord{T: encodeTrial(1, Trial{Outcome: USDC, SDC: true})},
	)
	if _, err := MergeShardJournals([]string{a, b}); err == nil || !strings.Contains(err.Error(), "disagree on trial 1") {
		t.Fatalf("conflicting trial accepted: %v", err)
	}

	// Decided in one journal, quarantined in the other.
	writeJournal(t, b,
		&journalRecord{H: shardHeader(0, 4)},
		&journalRecord{A: &journalAnomaly{Index: 1, Seed: 9, Reason: AnomalyPanic}},
	)
	if _, err := MergeShardJournals([]string{a, b}); err == nil || !strings.Contains(err.Error(), "quarantined in one") {
		t.Fatalf("decided/quarantined conflict accepted: %v", err)
	}

	// Identical decisions in overlapping journals merge fine (an attempt
	// journal and its consolidation overlap by construction).
	writeJournal(t, b,
		&journalRecord{H: shardHeader(0, 4)},
		&journalRecord{T: encodeTrial(1, Trial{Outcome: Masked})},
		&journalRecord{T: encodeTrial(2, Trial{Outcome: Failure})},
	)
	rep, err := MergeShardJournals([]string{a, b})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Tally.N != 2 {
		t.Fatalf("Tally.N = %d, want 2", rep.Tally.N)
	}
}

func TestMergeShardJournalsRejectsMixedCampaigns(t *testing.T) {
	dir := t.TempDir()
	a := filepath.Join(dir, "a.journal")
	b := filepath.Join(dir, "b.journal")
	writeJournal(t, a, &journalRecord{H: shardHeader(0, 4)})
	other := shardHeader(4, 8)
	other.Seed = 999
	writeJournal(t, b, &journalRecord{H: other})
	if _, err := MergeShardJournals([]string{a, b}); err == nil || !strings.Contains(err.Error(), "different campaign") {
		t.Fatalf("mixed-campaign merge accepted: %v", err)
	}
}

func TestMergeShardJournalsHeaderless(t *testing.T) {
	dir := t.TempDir()
	a := filepath.Join(dir, "a.journal")
	// A crash before the first batch leaves an empty (or garbage) file: it
	// contributes nothing, and a merge of only such files has no identity.
	if err := os.WriteFile(a, []byte("garbage\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := MergeShardJournals([]string{a}); err == nil || !strings.Contains(err.Error(), "no intact journal header") {
		t.Fatalf("headerless merge: %v", err)
	}
	b := filepath.Join(dir, "b.journal")
	writeJournal(t, b,
		&journalRecord{H: shardHeader(0, 8)},
		&journalRecord{T: encodeTrial(0, Trial{Outcome: Masked})},
	)
	rep, err := MergeShardJournals([]string{a, b})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Tally.N != 1 {
		t.Fatalf("Tally.N = %d, want 1", rep.Tally.N)
	}
}

func TestConsolidateShardJournals(t *testing.T) {
	dir := t.TempDir()
	a1 := filepath.Join(dir, "a1.journal")
	a2 := filepath.Join(dir, "a2.journal")
	dst := filepath.Join(dir, "a3.journal")

	// Attempt 1 decided trials 0 and 1 before dying; its tail is torn.
	buf := journalBytes(t,
		&journalRecord{H: shardHeader(0, 4)},
		&journalRecord{T: encodeTrial(0, Trial{Outcome: Masked})},
		&journalRecord{T: encodeTrial(1, Trial{Outcome: Failure})},
	)
	buf = append(buf, "torn half-rec"...)
	if err := os.WriteFile(a1, buf, 0o644); err != nil {
		t.Fatal(err)
	}
	// Attempt 2 (resumed from a consolidation of attempt 1) re-holds trial 1
	// and added trial 2.
	writeJournal(t, a2,
		&journalRecord{H: shardHeader(0, 4)},
		&journalRecord{T: encodeTrial(1, Trial{Outcome: Failure})},
		&journalRecord{T: encodeTrial(2, Trial{Outcome: Masked})},
	)

	decided, err := ConsolidateShardJournals(dst, []string{a1, a2})
	if err != nil {
		t.Fatal(err)
	}
	if decided != 3 {
		t.Fatalf("decided = %d, want 3", decided)
	}
	f, err := os.Open(dst)
	if err != nil {
		t.Fatal(err)
	}
	st := replayJournal(f)
	f.Close()
	if st.header == nil || len(st.trials) != 3 {
		t.Fatalf("consolidated journal replays %d trials, want 3", len(st.trials))
	}
	if d := st.header.mismatch(shardHeader(0, 4)); d != "" {
		t.Fatalf("consolidated header drifted: %s", d)
	}

	// Different shard ranges must not consolidate.
	b := filepath.Join(dir, "b.journal")
	writeJournal(t, b, &journalRecord{H: shardHeader(4, 8)})
	if _, err := ConsolidateShardJournals(dst, []string{a1, b}); err == nil || !strings.Contains(err.Error(), "different shards") {
		t.Fatalf("cross-shard consolidation accepted: %v", err)
	}
}

func TestConsolidateShardJournalsNothingToDo(t *testing.T) {
	dir := t.TempDir()
	dst := filepath.Join(dir, "next.journal")
	// A stale dst from a crashed previous consolidation must be cleared so
	// the next attempt starts the shard fresh.
	writeJournal(t, dst, &journalRecord{H: shardHeader(0, 4)})
	missing := filepath.Join(dir, "never-written.journal")
	empty := filepath.Join(dir, "empty.journal")
	if err := os.WriteFile(empty, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	decided, err := ConsolidateShardJournals(dst, []string{missing, empty})
	if err != nil {
		t.Fatal(err)
	}
	if decided != 0 {
		t.Fatalf("decided = %d, want 0", decided)
	}
	if _, err := os.Stat(dst); !os.IsNotExist(err) {
		t.Fatalf("stale consolidation target not removed: %v", err)
	}
}
