package fault

// Statistical early stopping. A campaign estimates proportions (coverage,
// USDC rate) from Bernoulli trials; the Wilson score interval gives a
// confidence range that behaves sanely at the extremes (p near 0 or 1,
// small n) where the normal approximation the paper quotes (Leveugle et
// al.) collapses. When Config.TargetCI is set, the campaign stops drawing
// trials once both intervals are at least that tight — the remaining
// trials cannot change the conclusion at the requested precision, so
// running them is wasted compute.

import "math"

// z95 is the two-sided 95% normal quantile used throughout the paper's
// error analysis.
const z95 = 1.96

// Wilson returns the Wilson score confidence interval [lo, hi] for a
// proportion estimated from successes out of n Bernoulli trials at normal
// quantile z (1.96 for 95%). n == 0 yields the vacuous interval [0, 1].
func Wilson(successes, n int, z float64) (lo, hi float64) {
	if n <= 0 {
		return 0, 1
	}
	p := float64(successes) / float64(n)
	nn := float64(n)
	z2 := z * z
	denom := 1 + z2/nn
	center := (p + z2/(2*nn)) / denom
	half := z / denom * math.Sqrt(p*(1-p)/nn+z2/(4*nn*nn))
	lo, hi = center-half, center+half
	if lo < 0 {
		lo = 0
	}
	if hi > 1 {
		hi = 1
	}
	return lo, hi
}

// CoverageInterval is the 95% Wilson interval for the paper's
// fault-coverage proportion (Masked + SWDetect + HWDetect over trials).
func (t *Tally) CoverageInterval() (lo, hi float64) {
	return Wilson(t.Count[Masked]+t.Count[HWDetect]+t.Count[SWDetect], t.N, z95)
}

// USDCInterval is the 95% Wilson interval for the unacceptable-SDC rate.
func (t *Tally) USDCInterval() (lo, hi float64) {
	return Wilson(t.Count[USDC], t.N, z95)
}

// ciTight reports whether the Wilson interval for successes/n is no wider
// than target.
func ciTight(successes, n int, target float64) bool {
	lo, hi := Wilson(successes, n, z95)
	return hi-lo <= target
}
