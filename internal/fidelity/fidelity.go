// Package fidelity implements the application-level output quality metrics
// of the paper's Table I: PSNR for images/video/waveforms, segmental SNR
// for audio, classification error for machine-learning outputs, and matrix
// mismatch for computer-vision outputs. Each workload pairs one metric with
// an acceptability threshold; outputs below threshold are Unacceptable
// Silent Data Corruptions (USDCs).
package fidelity

import (
	"fmt"
	"math"
)

// Metric identifies a quality measure.
type Metric uint8

// Metrics used by the benchmark suite.
const (
	MetricPSNR     Metric = iota // peak signal-to-noise ratio, dB
	MetricSegSNR                 // segmental SNR, dB
	MetricClassErr               // % label mismatch
	MetricMismatch               // % matrix element mismatch
)

func (m Metric) String() string {
	switch m {
	case MetricPSNR:
		return "PSNR"
	case MetricSegSNR:
		return "Segmental SNR"
	case MetricClassErr:
		return "Classification error"
	case MetricMismatch:
		return "Matrix mismatch"
	}
	return fmt.Sprintf("metric(%d)", uint8(m))
}

// Unit returns the metric's display unit.
func (m Metric) Unit() string {
	if m == MetricPSNR || m == MetricSegSNR {
		return "dB"
	}
	return "%"
}

// PSNR computes the peak signal-to-noise ratio between a reference and a
// test signal, in dB, with the given peak value (255 for 8-bit images).
// Identical signals yield +Inf.
func PSNR(ref, test []float64, peak float64) float64 {
	n := len(ref)
	if len(test) < n {
		n = len(test)
	}
	if n == 0 {
		return math.Inf(-1)
	}
	var mse float64
	for i := 0; i < n; i++ {
		d := ref[i] - test[i]
		if math.IsNaN(d) || math.IsInf(d, 0) {
			return math.Inf(-1) // corrupted beyond measure
		}
		mse += d * d
	}
	mse /= float64(n)
	if mse == 0 {
		return math.Inf(1)
	}
	return 10 * math.Log10(peak*peak/mse)
}

// PSNRInts is PSNR over integer samples.
func PSNRInts(ref, test []int64, peak float64) float64 {
	return PSNR(intsToFloats(ref), intsToFloats(test), peak)
}

// SegmentalSNR computes the mean per-frame SNR in dB over frames of the
// given length, clamping each frame's SNR into [-10, 80] dB as is standard
// for segmental SNR, so silence and perfection do not dominate the mean.
func SegmentalSNR(ref, test []float64, frame int) float64 {
	n := len(ref)
	if len(test) < n {
		n = len(test)
	}
	if frame <= 0 || n < frame {
		return -10
	}
	const loClamp, hiClamp = -10.0, 80.0
	var sum float64
	frames := 0
	for off := 0; off+frame <= n; off += frame {
		var sig, noise float64
		for i := off; i < off+frame; i++ {
			sig += ref[i] * ref[i]
			d := ref[i] - test[i]
			if math.IsNaN(d) || math.IsInf(d, 0) {
				return loClamp
			}
			noise += d * d
		}
		var snr float64
		switch {
		case noise == 0:
			snr = hiClamp
		case sig == 0:
			snr = loClamp
		default:
			snr = 10 * math.Log10(sig/noise)
		}
		snr = math.Max(loClamp, math.Min(hiClamp, snr))
		sum += snr
		frames++
	}
	return sum / float64(frames)
}

// SegmentalSNRInts is SegmentalSNR over integer samples.
func SegmentalSNRInts(ref, test []int64, frame int) float64 {
	return SegmentalSNR(intsToFloats(ref), intsToFloats(test), frame)
}

// ClassificationError returns the percentage of labels that differ between
// reference and test (0..100). Length mismatch counts missing entries as
// errors.
func ClassificationError(ref, test []int64) float64 {
	if len(ref) == 0 {
		return 0
	}
	bad := 0
	for i, r := range ref {
		if i >= len(test) || test[i] != r {
			bad++
		}
	}
	return 100 * float64(bad) / float64(len(ref))
}

// MatrixMismatch returns the percentage of elements differing by more than
// tol (0..100).
func MatrixMismatch(ref, test []int64, tol int64) float64 {
	if len(ref) == 0 {
		return 0
	}
	bad := 0
	for i, r := range ref {
		var tv int64
		if i < len(test) {
			tv = test[i]
		}
		d := r - tv
		if d < 0 {
			d = -d
		}
		if d > tol {
			bad++
		}
	}
	return 100 * float64(bad) / float64(len(ref))
}

func intsToFloats(xs []int64) []float64 {
	out := make([]float64, len(xs))
	for i, x := range xs {
		out[i] = float64(x)
	}
	return out
}

// Judgment couples a metric with a threshold and direction.
type Judgment struct {
	Metric    Metric
	Threshold float64
	// HigherIsBetter: PSNR/SegSNR pass when value >= Threshold;
	// error/mismatch metrics pass when value <= Threshold.
	HigherIsBetter bool
}

// Acceptable reports whether a measured value passes the judgment.
func (j Judgment) Acceptable(value float64) bool {
	if math.IsNaN(value) {
		return false
	}
	if j.HigherIsBetter {
		return value >= j.Threshold
	}
	return value <= j.Threshold
}

// Describe renders the acceptance rule, e.g. "PSNR (>= 30 dB)".
func (j Judgment) Describe() string {
	op := "<="
	if j.HigherIsBetter {
		op = ">="
	}
	return fmt.Sprintf("%s (%s %g %s)", j.Metric, op, j.Threshold, j.Metric.Unit())
}
