package fidelity

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestPSNRIdenticalIsInfinite(t *testing.T) {
	a := []float64{1, 2, 3, 4}
	if !math.IsInf(PSNR(a, a, 255), 1) {
		t.Fatal("identical signals should give +Inf PSNR")
	}
}

func TestPSNRKnownValue(t *testing.T) {
	// MSE = 1, peak 255 -> 10*log10(255^2) = 48.1308 dB.
	ref := []float64{10, 20, 30, 40}
	test := []float64{11, 19, 31, 39}
	got := PSNR(ref, test, 255)
	want := 10 * math.Log10(255*255)
	if math.Abs(got-want) > 1e-9 {
		t.Fatalf("PSNR = %v, want %v", got, want)
	}
}

func TestPSNRDecreasesWithNoise(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	ref := make([]float64, 256)
	for i := range ref {
		ref[i] = float64(rng.Intn(256))
	}
	addNoise := func(scale float64) []float64 {
		out := make([]float64, len(ref))
		for i := range out {
			out[i] = ref[i] + rng.NormFloat64()*scale
		}
		return out
	}
	small := PSNR(ref, addNoise(1), 255)
	big := PSNR(ref, addNoise(30), 255)
	if small <= big {
		t.Fatalf("PSNR should drop with noise: small=%v big=%v", small, big)
	}
}

func TestPSNRHandlesNaN(t *testing.T) {
	ref := []float64{1, 2}
	test := []float64{math.NaN(), 2}
	if !math.IsInf(PSNR(ref, test, 255), -1) {
		t.Fatal("NaN test signal should give -Inf PSNR")
	}
}

func TestSegmentalSNRClamps(t *testing.T) {
	ref := make([]float64, 64)
	for i := range ref {
		ref[i] = math.Sin(float64(i) / 3)
	}
	if got := SegmentalSNR(ref, ref, 16); got != 80 {
		t.Fatalf("perfect signal SegSNR = %v, want 80 (clamped)", got)
	}
	garbage := make([]float64, 64)
	for i := range garbage {
		garbage[i] = 1e9
	}
	if got := SegmentalSNR(ref, garbage, 16); got != -10 {
		t.Fatalf("garbage SegSNR = %v, want -10 (clamped)", got)
	}
}

func TestClassificationError(t *testing.T) {
	ref := []int64{0, 1, 1, 0, 2}
	test := []int64{0, 1, 0, 0, 2}
	if got := ClassificationError(ref, test); got != 20 {
		t.Fatalf("err = %v, want 20", got)
	}
	if got := ClassificationError(ref, ref); got != 0 {
		t.Fatalf("self err = %v", got)
	}
	if got := ClassificationError(ref, test[:2]); got != 60 {
		t.Fatalf("short test err = %v, want 60", got)
	}
}

func TestMatrixMismatch(t *testing.T) {
	ref := []int64{10, 20, 30, 40}
	test := []int64{10, 25, 30, 100}
	if got := MatrixMismatch(ref, test, 0); got != 50 {
		t.Fatalf("mismatch = %v, want 50", got)
	}
	if got := MatrixMismatch(ref, test, 5); got != 25 {
		t.Fatalf("mismatch tol=5 = %v, want 25", got)
	}
}

func TestJudgmentDirections(t *testing.T) {
	psnr := Judgment{Metric: MetricPSNR, Threshold: 30, HigherIsBetter: true}
	if !psnr.Acceptable(35) || psnr.Acceptable(25) || psnr.Acceptable(math.NaN()) {
		t.Fatal("PSNR judgment wrong")
	}
	classify := Judgment{Metric: MetricClassErr, Threshold: 10}
	if !classify.Acceptable(5) || classify.Acceptable(15) {
		t.Fatal("classification judgment wrong")
	}
	if !psnr.Acceptable(math.Inf(1)) {
		t.Fatal("perfect output must be acceptable")
	}
}

// Property: PSNR is symmetric in which signal carries the noise sign, and
// scaling noise down never lowers PSNR.
func TestPSNRMonotonicityProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 32 + rng.Intn(64)
		ref := make([]float64, n)
		noise := make([]float64, n)
		for i := range ref {
			ref[i] = float64(rng.Intn(256))
			noise[i] = rng.NormFloat64() * 10
		}
		mk := func(scale float64) []float64 {
			out := make([]float64, n)
			for i := range out {
				out[i] = ref[i] + noise[i]*scale
			}
			return out
		}
		full := PSNR(ref, mk(1), 255)
		half := PSNR(ref, mk(0.5), 255)
		return half >= full
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
