package ir

import "fmt"

// Builder provides a cursor-style API for constructing IR. It appends
// instructions to a current block and hands out fresh UIDs from the module.
type Builder struct {
	Fn  *Func
	Cur *Block
}

// NewBuilder returns a builder positioned at a new entry block of f.
func NewBuilder(f *Func) *Builder {
	b := &Builder{Fn: f}
	if len(f.Blocks) == 0 {
		b.Cur = f.NewBlock("entry")
	} else {
		b.Cur = f.Blocks[0]
	}
	return b
}

// Block creates (but does not enter) a new block.
func (b *Builder) Block(name string) *Block { return b.Fn.NewBlock(name) }

// SetBlock moves the cursor to blk.
func (b *Builder) SetBlock(blk *Block) { b.Cur = blk }

// Emit appends a raw instruction to the current block and assigns its UID.
func (b *Builder) Emit(in *Instr) *Instr {
	in.UID = b.Fn.Module.NewUID()
	b.Cur.Append(in)
	return in
}

func (b *Builder) emit(op Op, ty Type, args ...Value) *Instr {
	return b.Emit(&Instr{Op: op, Ty: ty, Args: args})
}

// resultType gives arithmetic result types; comparisons produce I64.
func resultType(op Op, lhs Value) Type {
	if op.IsCompare() {
		return I64
	}
	return lhs.Type()
}

// Bin emits a binary arithmetic/bitwise/compare operation.
func (b *Builder) Bin(op Op, lhs, rhs Value) *Instr {
	return b.emit(op, resultType(op, lhs), lhs, rhs)
}

// Neg emits unary negation.
func (b *Builder) Neg(v Value) *Instr { return b.emit(OpNeg, v.Type(), v) }

// IToF emits an int-to-float conversion.
func (b *Builder) IToF(v Value) *Instr { return b.emit(OpIToF, F64, v) }

// FToI emits a float-to-int (truncating) conversion.
func (b *Builder) FToI(v Value) *Instr { return b.emit(OpFToI, I64, v) }

// Alloca reserves size stack words.
func (b *Builder) Alloca(size int) *Instr {
	return b.emit(OpAlloca, Ptr, ConstInt(int64(size)))
}

// Load emits a typed load from ptr.
func (b *Builder) Load(ty Type, ptr Value) *Instr { return b.emit(OpLoad, ty, ptr) }

// Store emits a store of v to ptr.
func (b *Builder) Store(ptr, v Value) *Instr { return b.emit(OpStore, Void, ptr, v) }

// PtrAdd emits pointer arithmetic: ptr + idx words.
func (b *Builder) PtrAdd(ptr, idx Value) *Instr { return b.emit(OpPtrAdd, Ptr, ptr, idx) }

// Phi emits an empty phi of the given type; edges are added with AddIncoming.
func (b *Builder) Phi(ty Type) *Instr { return b.emit(OpPhi, ty) }

// AddIncoming appends an edge to a phi instruction.
func AddIncoming(phi *Instr, v Value, pred *Block) {
	if phi.Op != OpPhi {
		panic(fmt.Sprintf("ir: AddIncoming on %s", phi.Op))
	}
	phi.Args = append(phi.Args, v)
	phi.Preds = append(phi.Preds, pred)
}

// Jmp terminates the current block with an unconditional branch.
func (b *Builder) Jmp(to *Block) *Instr {
	in := b.emit(OpJmp, Void)
	in.Then = to
	return in
}

// Br terminates the current block with a conditional branch.
func (b *Builder) Br(cond Value, then, els *Block) *Instr {
	in := b.emit(OpBr, Void, cond)
	in.Then = then
	in.Else = els
	return in
}

// Ret terminates the current block with a return; v may be nil.
func (b *Builder) Ret(v Value) *Instr {
	if v == nil {
		return b.emit(OpRet, Void)
	}
	return b.emit(OpRet, Void, v)
}

// Call emits a direct call.
func (b *Builder) Call(callee *Func, args ...Value) *Instr {
	in := b.emit(OpCall, callee.RetTy, args...)
	in.Callee = callee
	return in
}

// Intrin emits a math intrinsic of the given result type.
func (b *Builder) Intrin(k Intrinsic, ty Type, args ...Value) *Instr {
	in := b.emit(OpIntrinsic, ty, args...)
	in.Intrinsic = k
	return in
}
