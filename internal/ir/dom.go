package ir

// DomTree holds immediate-dominator information for a function, computed
// with the Cooper–Harvey–Kennedy iterative algorithm.
type DomTree struct {
	Fn *Func
	// Idom[b.Index] is the immediate dominator block, nil for entry and
	// unreachable blocks.
	Idom []*Block
	// Children[b.Index] lists blocks immediately dominated by b.
	Children [][]*Block
	// rpoNum[b.Index] is the reverse-postorder number (entry = 0);
	// unreachable blocks get -1.
	rpoNum []int
	// RPO is the blocks in reverse postorder (reachable only).
	RPO []*Block
}

// BuildDomTree computes the dominator tree; ComputeCFG must be current.
func BuildDomTree(f *Func) *DomTree {
	n := len(f.Blocks)
	dt := &DomTree{
		Fn:       f,
		Idom:     make([]*Block, n),
		Children: make([][]*Block, n),
		rpoNum:   make([]int, n),
	}
	for i := range dt.rpoNum {
		dt.rpoNum[i] = -1
	}

	// Postorder DFS from entry.
	var post []*Block
	visited := make([]bool, n)
	var dfs func(b *Block)
	dfs = func(b *Block) {
		visited[b.Index] = true
		for _, s := range b.Succs {
			if !visited[s.Index] {
				dfs(s)
			}
		}
		post = append(post, b)
	}
	dfs(f.Entry())

	// Reverse postorder.
	for i := len(post) - 1; i >= 0; i-- {
		dt.RPO = append(dt.RPO, post[i])
	}
	for i, b := range dt.RPO {
		dt.rpoNum[b.Index] = i
	}

	idom := make([]*Block, n)
	entry := f.Entry()
	idom[entry.Index] = entry

	intersect := func(a, b *Block) *Block {
		for a != b {
			for dt.rpoNum[a.Index] > dt.rpoNum[b.Index] {
				a = idom[a.Index]
			}
			for dt.rpoNum[b.Index] > dt.rpoNum[a.Index] {
				b = idom[b.Index]
			}
		}
		return a
	}

	for changed := true; changed; {
		changed = false
		for _, b := range dt.RPO {
			if b == entry {
				continue
			}
			var newIdom *Block
			for _, p := range b.Preds {
				if idom[p.Index] == nil {
					continue // predecessor not yet processed / unreachable
				}
				if newIdom == nil {
					newIdom = p
				} else {
					newIdom = intersect(p, newIdom)
				}
			}
			if newIdom != nil && idom[b.Index] != newIdom {
				idom[b.Index] = newIdom
				changed = true
			}
		}
	}

	for _, b := range dt.RPO {
		if b == entry {
			continue
		}
		d := idom[b.Index]
		dt.Idom[b.Index] = d
		dt.Children[d.Index] = append(dt.Children[d.Index], b)
	}
	return dt
}

// Dominates reports whether a dominates b (reflexively).
func (dt *DomTree) Dominates(a, b *Block) bool {
	if dt.rpoNum[a.Index] < 0 || dt.rpoNum[b.Index] < 0 {
		return false
	}
	for b != nil {
		if a == b {
			return true
		}
		if b == dt.Fn.Entry() {
			return false
		}
		b = dt.Idom[b.Index]
	}
	return false
}

// Reachable reports whether b is reachable from entry.
func (dt *DomTree) Reachable(b *Block) bool { return dt.rpoNum[b.Index] >= 0 }

// Frontiers computes the dominance frontier of every block
// (Cytron et al.), indexed by block Index.
func (dt *DomTree) Frontiers() [][]*Block {
	n := len(dt.Fn.Blocks)
	df := make([][]*Block, n)
	seen := make([]map[*Block]bool, n)
	add := func(b, w *Block) {
		if seen[b.Index] == nil {
			seen[b.Index] = make(map[*Block]bool)
		}
		if !seen[b.Index][w] {
			seen[b.Index][w] = true
			df[b.Index] = append(df[b.Index], w)
		}
	}
	for _, b := range dt.RPO {
		if len(b.Preds) < 2 {
			continue
		}
		for _, p := range b.Preds {
			if !dt.Reachable(p) {
				continue
			}
			runner := p
			for runner != nil && runner != dt.Idom[b.Index] {
				add(runner, b)
				if runner == dt.Fn.Entry() {
					break
				}
				runner = dt.Idom[runner.Index]
			}
		}
	}
	return df
}
