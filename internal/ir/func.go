package ir

import "fmt"

// Block is a basic block: a straight-line instruction sequence ending in a
// terminator. Phi instructions, when present, are a prefix of Instrs.
type Block struct {
	Name   string
	Index  int // position in Func.Blocks, maintained by Renumber
	Instrs []*Instr
	Preds  []*Block // computed by Func.ComputeCFG
	Succs  []*Block
	Fn     *Func
}

// Terminator returns the block's final instruction, or nil if the block is
// still under construction.
func (b *Block) Terminator() *Instr {
	if len(b.Instrs) == 0 {
		return nil
	}
	last := b.Instrs[len(b.Instrs)-1]
	if !last.Op.IsTerminator() {
		return nil
	}
	return last
}

// Phis returns the block's phi prefix.
func (b *Block) Phis() []*Instr {
	n := 0
	for n < len(b.Instrs) && b.Instrs[n].Op == OpPhi {
		n++
	}
	return b.Instrs[:n]
}

// Append adds an instruction at the end of the block (before nothing; caller
// is responsible for terminator discipline during construction).
func (b *Block) Append(in *Instr) {
	in.Blk = b
	b.Instrs = append(b.Instrs, in)
}

// InsertBefore inserts in directly before the instruction at index i.
func (b *Block) InsertBefore(in *Instr, i int) {
	in.Blk = b
	b.Instrs = append(b.Instrs, nil)
	copy(b.Instrs[i+1:], b.Instrs[i:])
	b.Instrs[i] = in
}

// IndexOf returns the position of in within the block, or -1.
func (b *Block) IndexOf(in *Instr) int {
	for i, x := range b.Instrs {
		if x == in {
			return i
		}
	}
	return -1
}

// InsertAfterInstr inserts in directly after ref, which must be in b.
func (b *Block) InsertAfterInstr(in, ref *Instr) {
	i := b.IndexOf(ref)
	if i < 0 {
		panic(fmt.Sprintf("ir: %s not in block %s", ref.LongString(), b.Name))
	}
	b.InsertBefore(in, i+1)
}

// InsertBeforeTerminator inserts in just before the block's terminator.
func (b *Block) InsertBeforeTerminator(in *Instr) {
	if t := b.Terminator(); t != nil {
		b.InsertBefore(in, len(b.Instrs)-1)
		return
	}
	b.Append(in)
}

// Func is a function: an ordered list of basic blocks, the first being the
// entry. NumValues frame slots cover parameters and instruction results.
type Func struct {
	Name      string
	Params    []*Param
	RetTy     Type
	Blocks    []*Block
	Module    *Module
	numValues int
}

// Entry returns the function's entry block.
func (f *Func) Entry() *Block { return f.Blocks[0] }

// NumValues returns the number of frame slots (params + instruction
// results) after the last Renumber.
func (f *Func) NumValues() int { return f.numValues }

// NewBlock appends a fresh empty block with the given name.
func (f *Func) NewBlock(name string) *Block {
	b := &Block{Name: name, Index: len(f.Blocks), Fn: f}
	f.Blocks = append(f.Blocks, b)
	return b
}

// ComputeCFG recomputes Preds and Succs for every block from terminators.
func (f *Func) ComputeCFG() {
	for _, b := range f.Blocks {
		b.Preds = b.Preds[:0]
		b.Succs = b.Succs[:0]
	}
	for _, b := range f.Blocks {
		t := b.Terminator()
		if t == nil {
			continue
		}
		switch t.Op {
		case OpJmp:
			b.Succs = append(b.Succs, t.Then)
		case OpBr:
			b.Succs = append(b.Succs, t.Then, t.Else)
		}
		for _, s := range b.Succs {
			s.Preds = append(s.Preds, b)
		}
	}
}

// Renumber reassigns dense frame-slot IDs to parameters and instructions
// and refreshes block indices. Must be called after structural changes and
// before interpretation.
func (f *Func) Renumber() {
	id := 0
	for _, p := range f.Params {
		p.ID = id
		id++
	}
	for bi, b := range f.Blocks {
		b.Index = bi
		for _, in := range b.Instrs {
			in.ID = id
			id++
		}
	}
	f.numValues = id
	if f.Module != nil {
		f.Module.gen.Add(1) // invalidate any cached lowering (Module.ExecCache)
	}
}

// Instrs calls fn for every instruction in block order; returning false
// stops the walk.
func (f *Func) Instrs(fn func(*Instr) bool) {
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			if !fn(in) {
				return
			}
		}
	}
}

// NumInstrs returns the static instruction count (excluding params).
func (f *Func) NumInstrs() int {
	n := 0
	for _, b := range f.Blocks {
		n += len(b.Instrs)
	}
	return n
}
