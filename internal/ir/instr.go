package ir

import (
	"fmt"
	"strings"
)

// Instr is a single SSA instruction. An instruction with a non-Void type is
// itself the SSA value it defines.
type Instr struct {
	// ID is the dense per-function value number (frame slot). Reassigned by
	// Func.Renumber after transformations insert or remove instructions.
	ID int
	// UID is a module-unique, transformation-stable identifier used to key
	// value profiles across module clones. Assigned once when the
	// instruction is created and preserved by Module.Clone.
	UID int

	Op   Op
	Ty   Type
	Args []Value

	// Phi instructions: Preds[i] is the predecessor block that contributes
	// Args[i]. len(Preds) == len(Args).
	Preds []*Block

	// Branch targets (OpJmp: Then; OpBr: Then/Else).
	Then, Else *Block

	Callee    *Func     // OpCall
	Intrinsic Intrinsic // OpIntrinsic

	// Check metadata (OpCmpCheck / OpRangeCheck / OpValCheck).
	Check   CheckKind
	CheckID int // stable check identifier for recovery bookkeeping

	Blk *Block // containing block
}

// Type returns the type of the value this instruction defines.
func (in *Instr) Type() Type { return in.Ty }

// IsPhi reports whether the instruction is a phi node.
func (in *Instr) IsPhi() bool { return in.Op == OpPhi }

func (in *Instr) String() string { return fmt.Sprintf("%%%d", in.ID) }

// LongString renders the instruction in full for dumps and tests.
func (in *Instr) LongString() string {
	var b strings.Builder
	if in.Ty != Void {
		fmt.Fprintf(&b, "%%%d = ", in.ID)
	}
	b.WriteString(in.Op.String())
	if in.Op == OpIntrinsic {
		b.WriteString("." + in.Intrinsic.String())
	}
	if in.Ty != Void {
		b.WriteString(" " + in.Ty.String())
	}
	switch in.Op {
	case OpPhi:
		for i, a := range in.Args {
			fmt.Fprintf(&b, " [%s, %s]", a, in.Preds[i].Name)
		}
	case OpJmp:
		fmt.Fprintf(&b, " %s", in.Then.Name)
	case OpBr:
		fmt.Fprintf(&b, " %s, %s, %s", in.Args[0], in.Then.Name, in.Else.Name)
	case OpCall:
		fmt.Fprintf(&b, " @%s(", in.Callee.Name)
		for i, a := range in.Args {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString(a.String())
		}
		b.WriteString(")")
	default:
		for i, a := range in.Args {
			if i > 0 {
				b.WriteString(",")
			}
			b.WriteString(" " + a.String())
		}
	}
	if in.Op.IsCheck() {
		fmt.Fprintf(&b, " ; check#%d %s", in.CheckID, in.Check)
	}
	return b.String()
}

// ReplaceArg substitutes new for every occurrence of old among the operands.
func (in *Instr) ReplaceArg(old, new Value) {
	for i, a := range in.Args {
		if a == old {
			in.Args[i] = new
		}
	}
}

// PhiIncoming returns the value the phi takes when control arrives from
// pred, or nil if pred is not among its incoming edges.
func (in *Instr) PhiIncoming(pred *Block) Value {
	for i, p := range in.Preds {
		if p == pred {
			return in.Args[i]
		}
	}
	return nil
}
