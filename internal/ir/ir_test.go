package ir

import (
	"math/rand"
	"strings"
	"testing"
)

// buildLoopFunc constructs:
//
//	func sum(n i64) i64 {
//	  s := 0
//	  for i := 0; i < n; i++ { s += i }
//	  return s
//	}
//
// directly in SSA with phis, the canonical state-variable shape.
func buildLoopFunc(t testing.TB) (*Module, *Func) {
	t.Helper()
	m := NewModule("test")
	n := &Param{Name: "n", Ty: I64}
	f := m.NewFunc("sum", I64, n)
	b := NewBuilder(f)

	entry := b.Cur
	header := b.Block("header")
	body := b.Block("body")
	exit := b.Block("exit")

	b.Jmp(header)

	b.SetBlock(header)
	i := b.Phi(I64)
	s := b.Phi(I64)
	cond := b.Bin(OpLt, i, n)
	b.Br(cond, body, exit)

	b.SetBlock(body)
	s2 := b.Bin(OpAdd, s, i)
	i2 := b.Bin(OpAdd, i, ConstInt(1))
	b.Jmp(header)

	AddIncoming(i, ConstInt(0), entry)
	AddIncoming(i, i2, body)
	AddIncoming(s, ConstInt(0), entry)
	AddIncoming(s, s2, body)

	b.SetBlock(exit)
	b.Ret(s)

	m.Renumber()
	if err := m.Verify(); err != nil {
		t.Fatalf("verify: %v", err)
	}
	return m, f
}

func TestBuilderProducesValidSSA(t *testing.T) {
	m, f := buildLoopFunc(t)
	if got := len(f.Blocks); got != 4 {
		t.Fatalf("blocks = %d, want 4", got)
	}
	dump := m.String()
	for _, want := range []string{"func @sum", "phi", "br", "ret"} {
		if !strings.Contains(dump, want) {
			t.Errorf("dump missing %q:\n%s", want, dump)
		}
	}
}

func TestVerifyRejectsMissingTerminator(t *testing.T) {
	m := NewModule("bad")
	f := m.NewFunc("f", Void)
	b := NewBuilder(f)
	b.Bin(OpAdd, ConstInt(1), ConstInt(2))
	m.Renumber()
	if err := m.Verify(); err == nil {
		t.Fatal("verify accepted block without terminator")
	}
}

func TestVerifyRejectsTypeMismatch(t *testing.T) {
	m := NewModule("bad")
	f := m.NewFunc("f", Void)
	b := NewBuilder(f)
	in := &Instr{Op: OpAdd, Ty: I64, Args: []Value{ConstInt(1), ConstFloat(2)}}
	b.Emit(in)
	b.Ret(nil)
	m.Renumber()
	if err := m.Verify(); err == nil {
		t.Fatal("verify accepted i64 add with f64 operand")
	}
}

func TestVerifyRejectsUseBeforeDef(t *testing.T) {
	m := NewModule("bad")
	f := m.NewFunc("f", I64)
	b := NewBuilder(f)
	x := &Instr{Op: OpAdd, Ty: I64}
	y := b.Bin(OpMul, x, ConstInt(2)) // uses x before it exists
	x.Args = []Value{y, ConstInt(1)}
	b.Emit(x)
	b.Ret(x)
	m.Renumber()
	if err := m.Verify(); err == nil {
		t.Fatal("verify accepted use before definition")
	}
}

func TestVerifyRejectsPhiEdgeMismatch(t *testing.T) {
	m, f := buildLoopFunc(t)
	// Drop one edge from the first phi: edge count no longer matches preds.
	header := f.Blocks[1]
	phi := header.Phis()[0]
	phi.Args = phi.Args[:1]
	phi.Preds = phi.Preds[:1]
	if err := m.Verify(); err == nil {
		t.Fatal("verify accepted phi with missing edge")
	}
}

func TestDominatorsOnLoop(t *testing.T) {
	_, f := buildLoopFunc(t)
	dt := BuildDomTree(f)
	entry, header, body, exit := f.Blocks[0], f.Blocks[1], f.Blocks[2], f.Blocks[3]

	cases := []struct {
		a, b *Block
		want bool
	}{
		{entry, header, true},
		{entry, exit, true},
		{header, body, true},
		{header, exit, true},
		{body, exit, false},
		{body, header, false},
		{exit, body, false},
		{header, header, true},
	}
	for _, c := range cases {
		if got := dt.Dominates(c.a, c.b); got != c.want {
			t.Errorf("Dominates(%s, %s) = %v, want %v", c.a.Name, c.b.Name, got, c.want)
		}
	}
}

func TestLoopDetection(t *testing.T) {
	_, f := buildLoopFunc(t)
	dt := BuildDomTree(f)
	loops := FindLoops(f, dt)
	if len(loops) != 1 {
		t.Fatalf("loops = %d, want 1", len(loops))
	}
	l := loops[0]
	if l.Header.Name != "header" {
		t.Errorf("header = %s", l.Header.Name)
	}
	if len(l.Latches) != 1 || l.Latches[0].Name != "body" {
		t.Errorf("latches = %v", l.Latches)
	}
	if !l.Contains(f.Blocks[1]) || !l.Contains(f.Blocks[2]) {
		t.Error("loop body missing header or body block")
	}
	if l.Contains(f.Blocks[0]) || l.Contains(f.Blocks[3]) {
		t.Error("loop body includes entry or exit")
	}
	if l.Depth != 1 {
		t.Errorf("depth = %d, want 1", l.Depth)
	}
}

// buildNestedLoops creates entry -> h1 -> h2 -> b2 -> h2 ... -> l1 -> h1 -> exit.
func buildNestedLoops(t testing.TB) *Func {
	t.Helper()
	m := NewModule("nest")
	f := m.NewFunc("f", Void)
	b := NewBuilder(f)
	entry := b.Cur
	h1 := b.Block("h1")
	h2 := b.Block("h2")
	b2 := b.Block("b2")
	l1 := b.Block("l1")
	exit := b.Block("exit")

	b.Jmp(h1)

	b.SetBlock(h1)
	c1 := b.Phi(I64)
	cond1 := b.Bin(OpLt, c1, ConstInt(10))
	b.Br(cond1, h2, exit)

	b.SetBlock(h2)
	c2 := b.Phi(I64)
	cond2 := b.Bin(OpLt, c2, ConstInt(5))
	b.Br(cond2, b2, l1)

	b.SetBlock(b2)
	c2n := b.Bin(OpAdd, c2, ConstInt(1))
	b.Jmp(h2)

	b.SetBlock(l1)
	c1n := b.Bin(OpAdd, c1, ConstInt(1))
	b.Jmp(h1)

	AddIncoming(c1, ConstInt(0), entry)
	AddIncoming(c1, c1n, l1)
	AddIncoming(c2, ConstInt(0), h1)
	AddIncoming(c2, c2n, b2)

	b.SetBlock(exit)
	b.Ret(nil)

	m.Renumber()
	if err := m.Verify(); err != nil {
		t.Fatalf("verify: %v", err)
	}
	return f
}

func TestNestedLoops(t *testing.T) {
	f := buildNestedLoops(t)
	dt := BuildDomTree(f)
	loops := FindLoops(f, dt)
	if len(loops) != 2 {
		t.Fatalf("loops = %d, want 2", len(loops))
	}
	outer, inner := loops[0], loops[1]
	if len(outer.Body) < len(inner.Body) {
		outer, inner = inner, outer
	}
	if outer.Header.Name != "h1" || inner.Header.Name != "h2" {
		t.Errorf("headers = %s, %s", outer.Header.Name, inner.Header.Name)
	}
	if inner.Parent != outer {
		t.Error("inner loop's parent is not the outer loop")
	}
	if outer.Depth != 1 || inner.Depth != 2 {
		t.Errorf("depths = %d, %d", outer.Depth, inner.Depth)
	}
	depth := LoopDepth(f, loops)
	if depth[inner.Header.Index] != 2 {
		t.Errorf("LoopDepth(h2) = %d, want 2", depth[inner.Header.Index])
	}
	if depth[f.Entry().Index] != 0 {
		t.Errorf("LoopDepth(entry) = %d, want 0", depth[f.Entry().Index])
	}
}

func TestCloneIsDeepAndPreservesUIDs(t *testing.T) {
	m, f := buildLoopFunc(t)
	c := m.Clone()
	if err := c.Verify(); err != nil {
		t.Fatalf("clone verify: %v", err)
	}
	if got, want := c.String(), m.String(); got != want {
		t.Fatalf("clone dump differs:\n%s\nvs\n%s", got, want)
	}
	// UID preservation.
	orig := m.InstrByUID()
	clone := c.InstrByUID()
	if len(orig) != len(clone) {
		t.Fatalf("uid count %d != %d", len(orig), len(clone))
	}
	for uid, in := range orig {
		cin, ok := clone[uid]
		if !ok {
			t.Fatalf("uid %d missing in clone", uid)
		}
		if cin == in {
			t.Fatalf("uid %d shares instruction pointer", uid)
		}
		if cin.Op != in.Op || cin.Ty != in.Ty {
			t.Fatalf("uid %d differs: %s vs %s", uid, cin.LongString(), in.LongString())
		}
	}
	// Mutating the clone must not touch the original.
	cf := c.Func("sum")
	cf.Blocks[2].Instrs[0].Op = OpMul
	if f.Blocks[2].Instrs[0].Op != OpAdd {
		t.Fatal("mutating clone changed original")
	}
}

// bruteDominates: a dominates b iff removing a makes b unreachable.
func bruteDominates(f *Func, a, b *Block) bool {
	if a == b {
		return true
	}
	seen := map[*Block]bool{a: true} // treat a as removed
	stack := []*Block{f.Entry()}
	if f.Entry() == a {
		return true // entry dominates everything reachable
	}
	for len(stack) > 0 {
		x := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if seen[x] {
			continue
		}
		seen[x] = true
		if x == b {
			return false
		}
		for _, s := range x.Succs {
			stack = append(stack, s)
		}
	}
	return true
}

func reachable(f *Func, b *Block) bool {
	seen := map[*Block]bool{}
	stack := []*Block{f.Entry()}
	for len(stack) > 0 {
		x := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if seen[x] {
			continue
		}
		seen[x] = true
		if x == b {
			return true
		}
		for _, s := range x.Succs {
			stack = append(stack, s)
		}
	}
	return false
}

// TestDominatorsMatchBruteForceOnRandomCFGs cross-checks the CHK algorithm
// against the definitional brute force on 200 random CFGs.
func TestDominatorsMatchBruteForceOnRandomCFGs(t *testing.T) {
	rng := rand.New(rand.NewSource(12345))
	for trial := 0; trial < 200; trial++ {
		m := NewModule("rnd")
		f := m.NewFunc("f", Void)
		nBlocks := 2 + rng.Intn(10)
		blocks := make([]*Block, nBlocks)
		for i := 0; i < nBlocks; i++ {
			blocks[i] = f.NewBlock("b")
		}
		for i, blk := range blocks {
			in := &Instr{}
			switch rng.Intn(3) {
			case 0:
				in.Op = OpRet
			case 1:
				in.Op = OpJmp
				in.Then = blocks[rng.Intn(nBlocks)]
			default:
				in.Op = OpBr
				in.Args = []Value{ConstInt(int64(rng.Intn(2)))}
				in.Then = blocks[rng.Intn(nBlocks)]
				in.Else = blocks[rng.Intn(nBlocks)]
			}
			in.Blk = blk
			blk.Instrs = append(blk.Instrs, in)
			blk.Index = i
		}
		f.ComputeCFG()
		dt := BuildDomTree(f)
		for _, a := range blocks {
			for _, b := range blocks {
				if !reachable(f, b) || !reachable(f, a) {
					continue
				}
				want := bruteDominates(f, a, b)
				if got := dt.Dominates(a, b); got != want {
					t.Fatalf("trial %d: Dominates(b%d, b%d) = %v, want %v", trial, a.Index, b.Index, got, want)
				}
			}
		}
	}
}

func TestProducersWalk(t *testing.T) {
	_, f := buildLoopFunc(t)
	// Producer chain of s2 (= s + i) stopping at phis: visits s2 only,
	// since both operands are phis (visited but not descended).
	body := f.Blocks[2]
	s2 := body.Instrs[0]
	var visited []*Instr
	Producers(s2, func(in *Instr) bool { return in.Op == OpPhi }, func(in *Instr) {
		visited = append(visited, in)
	})
	if len(visited) != 3 { // s2 + two phis
		t.Fatalf("visited %d instrs, want 3", len(visited))
	}
	if visited[0] != s2 {
		t.Error("walk did not start at root")
	}
}

func TestUses(t *testing.T) {
	_, f := buildLoopFunc(t)
	u := BuildUses(f)
	header := f.Blocks[1]
	iPhi := header.Phis()[0]
	// i is used by: cond (lt), s2 (add), i2 (add).
	if got := len(u[iPhi]); got != 3 {
		t.Fatalf("uses of i = %d, want 3", got)
	}
}

func TestBlockInsertHelpers(t *testing.T) {
	_, f := buildLoopFunc(t)
	body := f.Blocks[2]
	n0 := len(body.Instrs)
	in := &Instr{Op: OpNeg, Ty: I64, Args: []Value{ConstInt(1)}}
	body.InsertBeforeTerminator(in)
	if len(body.Instrs) != n0+1 {
		t.Fatal("insert did not grow block")
	}
	if body.Instrs[len(body.Instrs)-2] != in {
		t.Fatal("InsertBeforeTerminator misplaced instruction")
	}
	if body.Terminator() == nil {
		t.Fatal("terminator lost")
	}
	in2 := &Instr{Op: OpNeg, Ty: I64, Args: []Value{ConstInt(2)}}
	body.InsertAfterInstr(in2, body.Instrs[0])
	if body.Instrs[1] != in2 {
		t.Fatal("InsertAfterInstr misplaced instruction")
	}
}
