package ir

import "sort"

// Loop is a natural loop: Header dominates every block in Body, and at
// least one Body block (a latch) branches back to Header.
type Loop struct {
	Header  *Block
	Latches []*Block // blocks with a back edge to Header
	Body    []*Block // includes Header
	Parent  *Loop    // innermost enclosing loop, if any
	Depth   int      // 1 for outermost
	inBody  map[*Block]bool
}

// Contains reports whether b is inside the loop.
func (l *Loop) Contains(b *Block) bool { return l.inBody[b] }

// FindLoops discovers all natural loops of f via back edges in the dominator
// tree, merging loops that share a header. Returned loops are sorted
// outermost first (by body size, descending).
func FindLoops(f *Func, dt *DomTree) []*Loop {
	byHeader := make(map[*Block]*Loop)

	for _, b := range dt.RPO {
		for _, s := range b.Succs {
			if !dt.Dominates(s, b) {
				continue // not a back edge
			}
			l := byHeader[s]
			if l == nil {
				l = &Loop{Header: s, inBody: map[*Block]bool{s: true}, Body: []*Block{s}}
				byHeader[s] = l
			}
			l.Latches = append(l.Latches, b)
			// Collect the loop body: all blocks that reach the latch
			// without passing through the header (reverse flood fill).
			stack := []*Block{b}
			for len(stack) > 0 {
				x := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				if l.inBody[x] {
					continue
				}
				l.inBody[x] = true
				l.Body = append(l.Body, x)
				for _, p := range x.Preds {
					if dt.Reachable(p) {
						stack = append(stack, p)
					}
				}
			}
		}
	}

	loops := make([]*Loop, 0, len(byHeader))
	for _, l := range byHeader {
		loops = append(loops, l)
	}
	sort.Slice(loops, func(i, j int) bool {
		if len(loops[i].Body) != len(loops[j].Body) {
			return len(loops[i].Body) > len(loops[j].Body)
		}
		return loops[i].Header.Index < loops[j].Header.Index
	})

	// Nesting: the innermost enclosing loop of l is the containing loop
	// with the smallest body.
	for _, l := range loops {
		var best *Loop
		for _, o := range loops {
			if o == l || !o.inBody[l.Header] {
				continue
			}
			if best == nil || len(o.Body) < len(best.Body) {
				best = o
			}
		}
		l.Parent = best
	}
	for _, l := range loops {
		d := 1
		for p := l.Parent; p != nil; p = p.Parent {
			d++
		}
		l.Depth = d
	}
	return loops
}

// LoopDepth returns per-block loop nesting depth (0 = not in any loop),
// indexed by block Index. Used by the value profiler and check-placement
// heuristics to weight hot code.
func LoopDepth(f *Func, loops []*Loop) []int {
	depth := make([]int, len(f.Blocks))
	for _, l := range loops {
		for _, b := range l.Body {
			if l.Depth > depth[b.Index] {
				depth[b.Index] = l.Depth
			}
		}
	}
	return depth
}
