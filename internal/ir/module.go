package ir

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// Module is a compiled program: globals plus functions, with "main" as the
// execution entry point.
type Module struct {
	Name    string
	Globals []*Global
	Funcs   []*Func
	nextUID int

	// gen counts structural revisions (Renumber, AddGlobal, NewFunc); the
	// execution-artifact cache below is valid for exactly one revision.
	gen     atomic.Uint64
	execMu  sync.Mutex
	exec    any
	execGen uint64
}

// NewModule returns an empty module.
func NewModule(name string) *Module { return &Module{Name: name} }

// NewUID hands out the next module-unique instruction identifier.
func (m *Module) NewUID() int {
	m.nextUID++
	return m.nextUID
}

// Func returns the function with the given name, or nil.
func (m *Module) Func(name string) *Func {
	for _, f := range m.Funcs {
		if f.Name == name {
			return f
		}
	}
	return nil
}

// Global returns the global with the given name, or nil.
func (m *Module) Global(name string) *Global {
	for _, g := range m.Globals {
		if g.Name == name {
			return g
		}
	}
	return nil
}

// AddGlobal declares a global array of size words.
func (m *Module) AddGlobal(name string, size int) *Global {
	g := &Global{Name: name, Size: size}
	m.Globals = append(m.Globals, g)
	m.gen.Add(1)
	return g
}

// NewFunc declares a function with the given signature.
func (m *Module) NewFunc(name string, ret Type, params ...*Param) *Func {
	f := &Func{Name: name, RetTy: ret, Params: params, Module: m}
	for _, p := range params {
		p.Fn = f
	}
	m.Funcs = append(m.Funcs, f)
	m.gen.Add(1)
	return f
}

// Renumber renumbers every function.
func (m *Module) Renumber() {
	for _, f := range m.Funcs {
		f.Renumber()
		f.ComputeCFG()
	}
}

// ExecCache returns the module's cached execution artifact (package vm's
// precompiled program), building it with build on first use. The cache is
// keyed to the module's structural generation — Renumber, AddGlobal and
// NewFunc invalidate it — so the thousands of machines a fault campaign
// creates share one lowering while transform pipelines that mutate the
// module never observe a stale one. Safe for concurrent use.
func (m *Module) ExecCache(build func() any) any {
	gen := m.gen.Load()
	m.execMu.Lock()
	defer m.execMu.Unlock()
	if m.exec == nil || m.execGen != gen {
		m.exec = build()
		m.execGen = gen
	}
	return m.exec
}

// NumInstrs returns the static instruction count across all functions.
func (m *Module) NumInstrs() int {
	n := 0
	for _, f := range m.Funcs {
		n += f.NumInstrs()
	}
	return n
}

// InstrByUID builds a lookup from stable UID to instruction. Used to apply
// value profiles collected on one clone to another.
func (m *Module) InstrByUID() map[int]*Instr {
	out := make(map[int]*Instr)
	for _, f := range m.Funcs {
		f.Instrs(func(in *Instr) bool {
			out[in.UID] = in
			return true
		})
	}
	return out
}

// Clone deep-copies the module. Instruction UIDs are preserved so value
// profiles keyed by UID transfer across clones; frame IDs are renumbered.
func (m *Module) Clone() *Module {
	nm := &Module{Name: m.Name, nextUID: m.nextUID}

	gmap := make(map[*Global]*Global, len(m.Globals))
	for _, g := range m.Globals {
		ng := &Global{Name: g.Name, Size: g.Size}
		if g.Init != nil {
			ng.Init = append([]uint64(nil), g.Init...)
		}
		nm.Globals = append(nm.Globals, ng)
		gmap[g] = ng
	}

	fmap := make(map[*Func]*Func, len(m.Funcs))
	pmap := make(map[*Param]*Param)
	bmap := make(map[*Block]*Block)
	imap := make(map[*Instr]*Instr)

	for _, f := range m.Funcs {
		nf := &Func{Name: f.Name, RetTy: f.RetTy, Module: nm}
		for _, p := range f.Params {
			np := &Param{Name: p.Name, Ty: p.Ty, ID: p.ID, Fn: nf}
			nf.Params = append(nf.Params, np)
			pmap[p] = np
		}
		for _, b := range f.Blocks {
			nb := &Block{Name: b.Name, Index: b.Index, Fn: nf}
			nf.Blocks = append(nf.Blocks, nb)
			bmap[b] = nb
		}
		nm.Funcs = append(nm.Funcs, nf)
		fmap[f] = nf
	}

	cloneVal := func(v Value) Value {
		switch x := v.(type) {
		case *Const:
			return &Const{Ty: x.Ty, Bits: x.Bits}
		case *Param:
			return pmap[x]
		case *Global:
			return gmap[x]
		case *Instr:
			ni, ok := imap[x]
			if !ok {
				panic(fmt.Sprintf("ir: clone saw forward instr reference %%%d before definition pass", x.ID))
			}
			return ni
		}
		panic(fmt.Sprintf("ir: clone of unknown value %T", v))
	}

	// First pass: create instruction shells so cross references (incl.
	// phi back-edges) resolve; second pass fills operands.
	for _, f := range m.Funcs {
		for _, b := range f.Blocks {
			nb := bmap[b]
			for _, in := range b.Instrs {
				ni := &Instr{
					ID: in.ID, UID: in.UID, Op: in.Op, Ty: in.Ty,
					Intrinsic: in.Intrinsic, Check: in.Check, CheckID: in.CheckID,
					Blk: nb,
				}
				imap[in] = ni
				nb.Instrs = append(nb.Instrs, ni)
			}
		}
	}
	for _, f := range m.Funcs {
		for _, b := range f.Blocks {
			for _, in := range b.Instrs {
				ni := imap[in]
				for _, a := range in.Args {
					ni.Args = append(ni.Args, cloneVal(a))
				}
				for _, p := range in.Preds {
					ni.Preds = append(ni.Preds, bmap[p])
				}
				if in.Then != nil {
					ni.Then = bmap[in.Then]
				}
				if in.Else != nil {
					ni.Else = bmap[in.Else]
				}
				if in.Callee != nil {
					ni.Callee = fmap[in.Callee]
				}
			}
		}
	}
	nm.Renumber()
	return nm
}
