package ir

import (
	"fmt"
	"strings"
)

// String renders the whole module as text, stable across runs.
func (m *Module) String() string {
	var b strings.Builder
	for _, g := range m.Globals {
		fmt.Fprintf(&b, "global @%s [%d]\n", g.Name, g.Size)
	}
	for _, f := range m.Funcs {
		b.WriteString(f.Dump())
	}
	return b.String()
}

// Dump renders a function as text.
func (f *Func) Dump() string {
	var b strings.Builder
	fmt.Fprintf(&b, "func @%s(", f.Name)
	for i, p := range f.Params {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%s %%%s", p.Ty, p.Name)
	}
	fmt.Fprintf(&b, ") %s {\n", f.RetTy)
	for _, blk := range f.Blocks {
		fmt.Fprintf(&b, "%s:", blk.Name)
		if len(blk.Preds) > 0 {
			names := make([]string, len(blk.Preds))
			for i, p := range blk.Preds {
				names[i] = p.Name
			}
			fmt.Fprintf(&b, "  ; preds: %s", strings.Join(names, " "))
		}
		b.WriteString("\n")
		for _, in := range blk.Instrs {
			b.WriteString("  " + in.LongString() + "\n")
		}
	}
	b.WriteString("}\n")
	return b.String()
}
