// Package ir defines a compact typed SSA intermediate representation that
// stands in for LLVM IR in this reproduction. Programs are modules of
// functions; functions are CFGs of basic blocks holding instructions in SSA
// form (loop-carried values appear as phi nodes in loop headers, which is the
// property the paper's state-variable analysis relies on).
//
// Memory is word addressed: a pointer is an index into a flat array of 64-bit
// cells managed by the interpreter (package vm). This keeps the fault model
// (single bit flips in 64-bit registers) and the bounds-checking symptom
// model simple and uniform.
package ir

import "fmt"

// Type is the type of an SSA value. The IR is deliberately minimal: 64-bit
// integers, 64-bit floats, and word pointers cover every workload kernel.
type Type uint8

// Value types.
const (
	Void Type = iota // instruction produces no value (store, br, checks)
	I64              // 64-bit signed integer
	F64              // IEEE-754 double
	Ptr              // word address into the flat memory
)

func (t Type) String() string {
	switch t {
	case Void:
		return "void"
	case I64:
		return "i64"
	case F64:
		return "f64"
	case Ptr:
		return "ptr"
	}
	return fmt.Sprintf("type(%d)", uint8(t))
}

// Op enumerates instruction opcodes.
type Op uint8

// Opcodes. Arithmetic ops are polymorphic over I64/F64 (the instruction's
// type selects the semantics); shifts and bitwise ops are integer only.
const (
	OpInvalid Op = iota

	// Arithmetic / bitwise.
	OpAdd
	OpSub
	OpMul
	OpDiv
	OpRem
	OpAnd
	OpOr
	OpXor
	OpShl // shift left
	OpShr // arithmetic shift right
	OpNeg // unary minus

	// Comparisons; produce I64 0 or 1.
	OpEq
	OpNe
	OpLt
	OpLe
	OpGt
	OpGe

	// Conversions.
	OpIToF // I64 -> F64
	OpFToI // F64 -> I64, truncating toward zero

	// Memory.
	OpAlloca // reserve N stack words; produces Ptr. Arg: size (const I64)
	OpLoad   // load word at Ptr arg; type of result = instruction type
	OpStore  // store args[1] to Ptr args[0]
	OpPtrAdd // Ptr + I64 index -> Ptr

	// SSA merge point. Only legal at the start of a block.
	OpPhi

	// Control flow (always the last instruction of a block).
	OpJmp // unconditional branch to Then
	OpBr  // conditional: args[0] != 0 -> Then else Else
	OpRet // optional args[0]

	// Calls.
	OpCall      // direct call; Callee set; args are actual params
	OpIntrinsic // math builtin; Intrinsic set

	// Fault-detection checks inserted by package core. All are Void.
	OpCmpCheck   // args: original, duplicate. Fires when they differ.
	OpRangeCheck // args: v, lo, hi (consts). Fires when v outside [lo, hi].
	OpValCheck   // args: v, e1 [, e2]. Fires when v matches none of e1, e2.

	opEnd // sentinel
)

// NumOps is the number of opcodes; useful for per-op counter arrays.
const NumOps = int(opEnd)

var opNames = [...]string{
	OpInvalid:    "invalid",
	OpAdd:        "add",
	OpSub:        "sub",
	OpMul:        "mul",
	OpDiv:        "div",
	OpRem:        "rem",
	OpAnd:        "and",
	OpOr:         "or",
	OpXor:        "xor",
	OpShl:        "shl",
	OpShr:        "shr",
	OpNeg:        "neg",
	OpEq:         "eq",
	OpNe:         "ne",
	OpLt:         "lt",
	OpLe:         "le",
	OpGt:         "gt",
	OpGe:         "ge",
	OpIToF:       "itof",
	OpFToI:       "ftoi",
	OpAlloca:     "alloca",
	OpLoad:       "load",
	OpStore:      "store",
	OpPtrAdd:     "ptradd",
	OpPhi:        "phi",
	OpJmp:        "jmp",
	OpBr:         "br",
	OpRet:        "ret",
	OpCall:       "call",
	OpIntrinsic:  "intrinsic",
	OpCmpCheck:   "cmpcheck",
	OpRangeCheck: "rangecheck",
	OpValCheck:   "valcheck",
}

func (op Op) String() string {
	if int(op) < len(opNames) && opNames[op] != "" {
		return opNames[op]
	}
	return fmt.Sprintf("op(%d)", uint8(op))
}

// IsTerminator reports whether op must end a basic block.
func (op Op) IsTerminator() bool {
	return op == OpJmp || op == OpBr || op == OpRet
}

// IsCheck reports whether op is one of the software fault-detection checks.
func (op Op) IsCheck() bool {
	return op == OpCmpCheck || op == OpRangeCheck || op == OpValCheck
}

// IsArith reports whether op is a pure value computation (arithmetic,
// bitwise, comparison, or conversion). These are the ops eligible for
// duplication and value checks.
func (op Op) IsArith() bool {
	switch op {
	case OpAdd, OpSub, OpMul, OpDiv, OpRem, OpAnd, OpOr, OpXor, OpShl, OpShr,
		OpNeg, OpEq, OpNe, OpLt, OpLe, OpGt, OpGe, OpIToF, OpFToI, OpPtrAdd,
		OpIntrinsic:
		return true
	}
	return false
}

// IsCompare reports whether op is a comparison producing 0/1.
func (op Op) IsCompare() bool {
	switch op {
	case OpEq, OpNe, OpLt, OpLe, OpGt, OpGe:
		return true
	}
	return false
}

// Intrinsic identifies a math builtin dispatched by the interpreter.
type Intrinsic uint8

// Intrinsics available to front-end programs.
const (
	IntrinsicNone Intrinsic = iota
	IntrSqrt                // f64 -> f64
	IntrFAbs                // f64 -> f64
	IntrIAbs                // i64 -> i64
	IntrFMin                // f64 x f64 -> f64
	IntrFMax                // f64 x f64 -> f64
	IntrIMin                // i64 x i64 -> i64
	IntrIMax                // i64 x i64 -> i64
	IntrExp                 // f64 -> f64
	IntrLog                 // f64 -> f64
	IntrFloor               // f64 -> f64
	IntrPow                 // f64 x f64 -> f64
	IntrClampI              // i64 x i64 x i64 -> i64 (v, lo, hi)
)

var intrNames = [...]string{
	IntrinsicNone: "none",
	IntrSqrt:      "sqrt",
	IntrFAbs:      "fabs",
	IntrIAbs:      "iabs",
	IntrFMin:      "fmin",
	IntrFMax:      "fmax",
	IntrIMin:      "imin",
	IntrIMax:      "imax",
	IntrExp:       "exp",
	IntrLog:       "log",
	IntrFloor:     "floor",
	IntrPow:       "pow",
	IntrClampI:    "clampi",
}

func (in Intrinsic) String() string {
	if int(in) < len(intrNames) {
		return intrNames[in]
	}
	return fmt.Sprintf("intrinsic(%d)", uint8(in))
}

// CheckKind distinguishes why a check instruction was inserted; the fault
// campaign and false-positive analysis report them separately.
type CheckKind uint8

// Check kinds.
const (
	CheckNone  CheckKind = iota
	CheckDup             // duplicate-vs-original comparison (hard check)
	CheckValue           // expected-value / range check (soft check)
	CheckCFC             // control-flow signature check (CFCSS-style)
	CheckABFT            // per-kernel checksum comparison (hard check)
)

func (k CheckKind) String() string {
	switch k {
	case CheckDup:
		return "dup"
	case CheckValue:
		return "value"
	case CheckCFC:
		return "cfc"
	case CheckABFT:
		return "abft"
	}
	return "none"
}
