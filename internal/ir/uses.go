package ir

// Uses maps each instruction to the instructions that consume its value.
// It is a snapshot: recompute after transformations.
type Uses map[*Instr][]*Instr

// BuildUses computes the use lists of every instruction in f.
func BuildUses(f *Func) Uses {
	u := make(Uses)
	f.Instrs(func(in *Instr) bool {
		for _, a := range in.Args {
			if d, ok := a.(*Instr); ok {
				u[d] = append(u[d], in)
			}
		}
		return true
	})
	return u
}

// Producers walks the use-def producer chain of v (the recursive operands
// that compute it), calling visit on every instruction encountered,
// including v itself when it is an instruction. The walk stops descending at
// any instruction where stop returns true (that instruction is still
// visited); loads, phis, calls and allocas are natural chain terminators for
// the paper's duplication, expressed via stop. Each instruction is visited
// at most once.
func Producers(v Value, stop func(*Instr) bool, visit func(*Instr)) {
	seen := make(map[*Instr]bool)
	var walk func(Value)
	walk = func(x Value) {
		in, ok := x.(*Instr)
		if !ok || seen[in] {
			return
		}
		seen[in] = true
		visit(in)
		if stop(in) {
			return
		}
		for _, a := range in.Args {
			walk(a)
		}
	}
	walk(v)
}
