package ir

import (
	"fmt"
	"math"
)

// Value is anything usable as an instruction operand: constants, function
// parameters, globals (whose value is their base address) and instructions.
type Value interface {
	Type() Type
	// String returns a short operand-position rendering (e.g. "%5", "42").
	String() string
}

// Const is a compile-time constant. Bits holds the raw 64-bit pattern; for
// F64 it is the IEEE-754 encoding.
type Const struct {
	Ty   Type
	Bits uint64
}

// ConstInt returns an I64 constant.
func ConstInt(v int64) *Const { return &Const{Ty: I64, Bits: uint64(v)} }

// ConstFloat returns an F64 constant.
func ConstFloat(v float64) *Const { return &Const{Ty: F64, Bits: math.Float64bits(v)} }

// Type returns the constant's type.
func (c *Const) Type() Type { return c.Ty }

// Int returns the constant interpreted as a signed integer.
func (c *Const) Int() int64 { return int64(c.Bits) }

// Float returns the constant interpreted as a float.
func (c *Const) Float() float64 { return math.Float64frombits(c.Bits) }

func (c *Const) String() string {
	if c.Ty == F64 {
		return fmt.Sprintf("%g", c.Float())
	}
	return fmt.Sprintf("%d", c.Int())
}

// Param is a function parameter. Parameters occupy the first frame slots of
// an activation; ID is assigned by Func.Renumber.
type Param struct {
	Name string
	Ty   Type
	ID   int // frame slot
	Fn   *Func
}

// Type returns the parameter's type.
func (p *Param) Type() Type { return p.Ty }

func (p *Param) String() string { return "%" + p.Name }

// Global is a module-level array of words. Used as an operand it evaluates
// to its base address (type Ptr); the interpreter assigns addresses at load
// time in declaration order.
type Global struct {
	Name string
	Size int      // number of 64-bit words
	Init []uint64 // optional initial contents (len <= Size)
}

// Type returns Ptr: a global used as an operand is its base address.
func (g *Global) Type() Type { return Ptr }

func (g *Global) String() string { return "@" + g.Name }
