package ir

import (
	"errors"
	"fmt"
)

// Verify checks module well-formedness: every block ends in exactly one
// terminator, phis agree with predecessors, operand types match opcode
// contracts, and every SSA use is dominated by its definition. Transform
// passes run it in tests after every rewrite.
func (m *Module) Verify() error {
	var errs []error
	for _, f := range m.Funcs {
		if err := verifyFunc(f); err != nil {
			errs = append(errs, fmt.Errorf("func %s: %w", f.Name, err))
		}
	}
	return errors.Join(errs...)
}

func verifyFunc(f *Func) error {
	if len(f.Blocks) == 0 {
		return errors.New("no blocks")
	}
	f.ComputeCFG()
	dt := BuildDomTree(f)

	// Map every instruction to its defining block and in-block position.
	defBlock := make(map[*Instr]*Block)
	defPos := make(map[*Instr]int)
	for _, b := range f.Blocks {
		for i, in := range b.Instrs {
			if in.Blk != b {
				return fmt.Errorf("block %s: instr %s has Blk=%v", b.Name, in.LongString(), in.Blk)
			}
			defBlock[in] = b
			defPos[in] = i
		}
	}

	for _, b := range f.Blocks {
		if len(b.Instrs) == 0 {
			return fmt.Errorf("block %s: empty", b.Name)
		}
		for i, in := range b.Instrs {
			isLast := i == len(b.Instrs)-1
			if in.Op.IsTerminator() != isLast {
				return fmt.Errorf("block %s: terminator discipline violated at %s", b.Name, in.LongString())
			}
			if in.Op == OpPhi && (i > 0 && b.Instrs[i-1].Op != OpPhi) {
				return fmt.Errorf("block %s: phi %s not in phi prefix", b.Name, in.LongString())
			}
			if err := verifyInstr(f, b, in); err != nil {
				return fmt.Errorf("block %s: %s: %w", b.Name, in.LongString(), err)
			}
			// Dominance of uses.
			if !dt.Reachable(b) {
				continue
			}
			for ai, a := range in.Args {
				d, ok := a.(*Instr)
				if !ok {
					continue
				}
				db := defBlock[d]
				if db == nil {
					return fmt.Errorf("block %s: %s uses foreign instr", b.Name, in.LongString())
				}
				if in.Op == OpPhi {
					// Value must dominate the end of the incoming pred.
					pred := in.Preds[ai]
					if !dt.Reachable(pred) {
						continue
					}
					if !dt.Dominates(db, pred) {
						return fmt.Errorf("phi %s: incoming %%%d does not dominate pred %s", in.LongString(), d.ID, pred.Name)
					}
					continue
				}
				if db == b {
					if defPos[d] >= i {
						return fmt.Errorf("%s uses %%%d before definition", in.LongString(), d.ID)
					}
				} else if !dt.Dominates(db, b) {
					return fmt.Errorf("%s: def of %%%d (block %s) does not dominate use (block %s)", in.LongString(), d.ID, db.Name, b.Name)
				}
			}
		}
	}

	// Phi predecessor sets must equal block predecessor sets.
	for _, b := range f.Blocks {
		for _, phi := range b.Phis() {
			if len(phi.Preds) != len(b.Preds) {
				return fmt.Errorf("block %s: phi %s has %d edges, block has %d preds", b.Name, phi.LongString(), len(phi.Preds), len(b.Preds))
			}
			for _, p := range phi.Preds {
				found := false
				for _, bp := range b.Preds {
					if bp == p {
						found = true
						break
					}
				}
				if !found {
					return fmt.Errorf("block %s: phi %s edge from non-predecessor %s", b.Name, phi.LongString(), p.Name)
				}
			}
		}
	}
	return nil
}

func wantArgs(in *Instr, n int) error {
	if len(in.Args) != n {
		return fmt.Errorf("want %d args, have %d", n, len(in.Args))
	}
	return nil
}

func verifyInstr(f *Func, b *Block, in *Instr) error {
	switch in.Op {
	case OpAdd, OpSub, OpMul, OpDiv, OpRem:
		if err := wantArgs(in, 2); err != nil {
			return err
		}
		if in.Ty != I64 && in.Ty != F64 {
			return fmt.Errorf("arith type %s", in.Ty)
		}
		for _, a := range in.Args {
			if a.Type() != in.Ty {
				return fmt.Errorf("operand type %s != %s", a.Type(), in.Ty)
			}
		}
	case OpAnd, OpOr, OpXor, OpShl, OpShr:
		if err := wantArgs(in, 2); err != nil {
			return err
		}
		if in.Ty != I64 {
			return fmt.Errorf("bitwise type %s", in.Ty)
		}
	case OpNeg:
		return wantArgs(in, 1)
	case OpEq, OpNe, OpLt, OpLe, OpGt, OpGe:
		if err := wantArgs(in, 2); err != nil {
			return err
		}
		if in.Ty != I64 {
			return fmt.Errorf("compare result type %s", in.Ty)
		}
		if in.Args[0].Type() != in.Args[1].Type() {
			return fmt.Errorf("compare operand mismatch %s vs %s", in.Args[0].Type(), in.Args[1].Type())
		}
	case OpIToF:
		if err := wantArgs(in, 1); err != nil {
			return err
		}
		if in.Ty != F64 || in.Args[0].Type() != I64 {
			return errors.New("itof signature")
		}
	case OpFToI:
		if err := wantArgs(in, 1); err != nil {
			return err
		}
		if in.Ty != I64 || in.Args[0].Type() != F64 {
			return errors.New("ftoi signature")
		}
	case OpAlloca:
		if err := wantArgs(in, 1); err != nil {
			return err
		}
		if _, ok := in.Args[0].(*Const); !ok {
			return errors.New("alloca size must be constant")
		}
		if b != f.Entry() {
			return errors.New("alloca outside entry block")
		}
	case OpLoad:
		if err := wantArgs(in, 1); err != nil {
			return err
		}
		if in.Args[0].Type() != Ptr {
			return errors.New("load from non-pointer")
		}
		if in.Ty == Void {
			return errors.New("void load")
		}
	case OpStore:
		if err := wantArgs(in, 2); err != nil {
			return err
		}
		if in.Args[0].Type() != Ptr {
			return errors.New("store to non-pointer")
		}
	case OpPtrAdd:
		if err := wantArgs(in, 2); err != nil {
			return err
		}
		if in.Args[0].Type() != Ptr || in.Args[1].Type() != I64 || in.Ty != Ptr {
			return errors.New("ptradd signature")
		}
	case OpPhi:
		if len(in.Args) == 0 {
			return errors.New("empty phi")
		}
		for _, a := range in.Args {
			if a.Type() != in.Ty {
				return fmt.Errorf("phi edge type %s != %s", a.Type(), in.Ty)
			}
		}
	case OpJmp:
		if in.Then == nil {
			return errors.New("jmp without target")
		}
	case OpBr:
		if err := wantArgs(in, 1); err != nil {
			return err
		}
		if in.Then == nil || in.Else == nil {
			return errors.New("br without targets")
		}
		if in.Args[0].Type() != I64 {
			return errors.New("br condition must be i64")
		}
	case OpRet:
		if f.RetTy == Void {
			if len(in.Args) != 0 {
				return errors.New("ret with value in void func")
			}
		} else {
			if err := wantArgs(in, 1); err != nil {
				return err
			}
			if in.Args[0].Type() != f.RetTy {
				return fmt.Errorf("ret type %s != %s", in.Args[0].Type(), f.RetTy)
			}
		}
	case OpCall:
		if in.Callee == nil {
			return errors.New("call without callee")
		}
		if len(in.Args) != len(in.Callee.Params) {
			return fmt.Errorf("call arity %d != %d", len(in.Args), len(in.Callee.Params))
		}
		for i, a := range in.Args {
			if a.Type() != in.Callee.Params[i].Ty {
				return fmt.Errorf("call arg %d type %s != %s", i, a.Type(), in.Callee.Params[i].Ty)
			}
		}
		if in.Ty != in.Callee.RetTy {
			return fmt.Errorf("call result type %s != %s", in.Ty, in.Callee.RetTy)
		}
	case OpIntrinsic:
		if in.Intrinsic == IntrinsicNone {
			return errors.New("intrinsic kind missing")
		}
	case OpCmpCheck:
		if err := wantArgs(in, 2); err != nil {
			return err
		}
		if in.Args[0].Type() != in.Args[1].Type() {
			return errors.New("cmpcheck operand type mismatch")
		}
	case OpRangeCheck:
		if err := wantArgs(in, 3); err != nil {
			return err
		}
	case OpValCheck:
		if len(in.Args) != 2 && len(in.Args) != 3 {
			return fmt.Errorf("valcheck wants 2 or 3 args, have %d", len(in.Args))
		}
	default:
		return fmt.Errorf("unknown op %s", in.Op)
	}
	return nil
}
