package lang

// TypeName is a surface type: int or float (void for function returns).
type TypeName uint8

// Surface types.
const (
	TypeVoid TypeName = iota
	TypeInt
	TypeFloat
)

func (t TypeName) String() string {
	switch t {
	case TypeInt:
		return "int"
	case TypeFloat:
		return "float"
	}
	return "void"
}

// Program is a parsed source file.
type Program struct {
	Globals []*GlobalDecl
	Funcs   []*FuncDecl
}

// GlobalDecl declares a module-level scalar or array.
type GlobalDecl struct {
	Pos     Pos
	Name    string
	Elem    TypeName
	Size    int // 1 for scalars
	IsArray bool
}

// FuncDecl declares a function.
type FuncDecl struct {
	Pos    Pos
	Name   string
	Ret    TypeName
	Params []ParamDecl
	Body   *BlockStmt
}

// ParamDecl is one function parameter.
type ParamDecl struct {
	Pos  Pos
	Name string
	Type TypeName
}

// Stmt is a statement node.
type Stmt interface{ stmtNode() }

// BlockStmt is { stmts }.
type BlockStmt struct {
	Pos   Pos
	Stmts []Stmt
}

// VarDecl declares a local scalar (optionally initialized) or array.
type VarDecl struct {
	Pos     Pos
	Name    string
	Type    TypeName
	Size    int // >1 or ==1 with IsArray for arrays
	IsArray bool
	Init    Expr // nil for arrays / uninitialized
}

// AssignStmt is lvalue op= expr. Op is tokAssign for plain assignment.
type AssignStmt struct {
	Pos    Pos
	Target *LValue
	Op     tokKind
	Value  Expr
}

// ExprStmt evaluates an expression for effect (calls).
type ExprStmt struct {
	Pos Pos
	X   Expr
}

// IfStmt is if/else.
type IfStmt struct {
	Pos  Pos
	Cond Expr
	Then Stmt
	Else Stmt // may be nil
}

// WhileStmt loops while Cond is non-zero.
type WhileStmt struct {
	Pos  Pos
	Cond Expr
	Body Stmt
}

// ForStmt is a C-style for loop. Init/Post may be nil; Cond may be nil
// (infinite loop).
type ForStmt struct {
	Pos  Pos
	Init Stmt // VarDecl or AssignStmt
	Cond Expr
	Post Stmt // AssignStmt
	Body Stmt
}

// ReturnStmt returns from the enclosing function.
type ReturnStmt struct {
	Pos   Pos
	Value Expr // nil for void
}

// BreakStmt exits the innermost loop.
type BreakStmt struct{ Pos Pos }

// ContinueStmt jumps to the innermost loop's post/condition.
type ContinueStmt struct{ Pos Pos }

func (*BlockStmt) stmtNode()    {}
func (*VarDecl) stmtNode()      {}
func (*AssignStmt) stmtNode()   {}
func (*ExprStmt) stmtNode()     {}
func (*IfStmt) stmtNode()       {}
func (*WhileStmt) stmtNode()    {}
func (*ForStmt) stmtNode()      {}
func (*ReturnStmt) stmtNode()   {}
func (*BreakStmt) stmtNode()    {}
func (*ContinueStmt) stmtNode() {}

// Expr is an expression node.
type Expr interface{ exprNode() }

// IntLit is an integer literal.
type IntLit struct {
	Pos Pos
	V   int64
}

// FloatLit is a float literal.
type FloatLit struct {
	Pos Pos
	V   float64
}

// Ident references a scalar variable (local, param, or global scalar).
type Ident struct {
	Pos  Pos
	Name string
}

// IndexExpr is name[idx] on a global or local array.
type IndexExpr struct {
	Pos   Pos
	Name  string
	Index Expr
}

// CallExpr calls a function or builtin.
type CallExpr struct {
	Pos  Pos
	Name string
	Args []Expr
}

// UnaryExpr is -x, !x or ~x.
type UnaryExpr struct {
	Pos Pos
	Op  tokKind
	X   Expr
}

// BinaryExpr is x op y, including && and || (short-circuit).
type BinaryExpr struct {
	Pos  Pos
	Op   tokKind
	X, Y Expr
}

// LValue is an assignable location.
type LValue struct {
	Pos   Pos
	Name  string
	Index Expr // nil for scalars
}

func (*IntLit) exprNode()     {}
func (*FloatLit) exprNode()   {}
func (*Ident) exprNode()      {}
func (*IndexExpr) exprNode()  {}
func (*CallExpr) exprNode()   {}
func (*UnaryExpr) exprNode()  {}
func (*BinaryExpr) exprNode() {}
