package lang

import (
	"fmt"

	"repro/internal/ir"
)

// builtin describes one math builtin.
type builtin struct {
	intr ir.Intrinsic
	args []TypeName
	ret  TypeName
	// conv marks i2f/f2i, which lower to conversion ops.
	conv ir.Op
}

var builtins = map[string]builtin{
	"sqrt":   {intr: ir.IntrSqrt, args: []TypeName{TypeFloat}, ret: TypeFloat},
	"fabs":   {intr: ir.IntrFAbs, args: []TypeName{TypeFloat}, ret: TypeFloat},
	"iabs":   {intr: ir.IntrIAbs, args: []TypeName{TypeInt}, ret: TypeInt},
	"fmin":   {intr: ir.IntrFMin, args: []TypeName{TypeFloat, TypeFloat}, ret: TypeFloat},
	"fmax":   {intr: ir.IntrFMax, args: []TypeName{TypeFloat, TypeFloat}, ret: TypeFloat},
	"imin":   {intr: ir.IntrIMin, args: []TypeName{TypeInt, TypeInt}, ret: TypeInt},
	"imax":   {intr: ir.IntrIMax, args: []TypeName{TypeInt, TypeInt}, ret: TypeInt},
	"exp":    {intr: ir.IntrExp, args: []TypeName{TypeFloat}, ret: TypeFloat},
	"log":    {intr: ir.IntrLog, args: []TypeName{TypeFloat}, ret: TypeFloat},
	"floor":  {intr: ir.IntrFloor, args: []TypeName{TypeFloat}, ret: TypeFloat},
	"pow":    {intr: ir.IntrPow, args: []TypeName{TypeFloat, TypeFloat}, ret: TypeFloat},
	"clampi": {intr: ir.IntrClampI, args: []TypeName{TypeInt, TypeInt, TypeInt}, ret: TypeInt},
	"i2f":    {conv: ir.OpIToF, args: []TypeName{TypeInt}, ret: TypeFloat},
	"f2i":    {conv: ir.OpFToI, args: []TypeName{TypeFloat}, ret: TypeInt},
}

func irType(t TypeName) ir.Type {
	switch t {
	case TypeInt:
		return ir.I64
	case TypeFloat:
		return ir.F64
	}
	return ir.Void
}

// globalSym is a declared global.
type globalSym struct {
	g       *ir.Global
	elem    TypeName
	isArray bool
	size    int
}

// localSym is a declared local or parameter (always an alloca slot).
type localSym struct {
	slot    *ir.Instr // the alloca
	ty      TypeName
	isArray bool
	size    int
}

// codegen lowers a Program to an ir.Module.
type codegen struct {
	mod     *ir.Module
	globals map[string]*globalSym
	funcs   map[string]*FuncDecl
	irFuncs map[string]*ir.Func
}

// Codegen lowers the AST to alloca-form IR. Run passes.Mem2Reg afterwards to
// obtain the SSA form the paper's analyses operate on; Compile does both.
func Codegen(name string, prog *Program) (*ir.Module, error) {
	cg := &codegen{
		mod:     ir.NewModule(name),
		globals: make(map[string]*globalSym),
		funcs:   make(map[string]*FuncDecl),
		irFuncs: make(map[string]*ir.Func),
	}
	for _, g := range prog.Globals {
		if _, dup := cg.globals[g.Name]; dup {
			return nil, errf(g.Pos, "global %s redeclared", g.Name)
		}
		irg := cg.mod.AddGlobal(g.Name, g.Size)
		cg.globals[g.Name] = &globalSym{g: irg, elem: g.Elem, isArray: g.IsArray, size: g.Size}
	}
	// Declare all functions first so calls resolve in any order.
	for _, f := range prog.Funcs {
		if _, dup := cg.funcs[f.Name]; dup {
			return nil, errf(f.Pos, "function %s redeclared", f.Name)
		}
		if _, isB := builtins[f.Name]; isB {
			return nil, errf(f.Pos, "function %s shadows a builtin", f.Name)
		}
		params := make([]*ir.Param, len(f.Params))
		for i, pd := range f.Params {
			params[i] = &ir.Param{Name: pd.Name, Ty: irType(pd.Type)}
		}
		cg.funcs[f.Name] = f
		cg.irFuncs[f.Name] = cg.mod.NewFunc(f.Name, irType(f.Ret), params...)
	}
	for _, f := range prog.Funcs {
		if err := cg.genFunc(f); err != nil {
			return nil, err
		}
	}
	cg.mod.Renumber()
	if err := cg.mod.Verify(); err != nil {
		return nil, fmt.Errorf("lang: internal error: generated invalid IR: %w", err)
	}
	return cg.mod, nil
}

// loopCtx holds break/continue targets.
type loopCtx struct {
	brk, cont *ir.Block
}

// fnGen generates one function body.
type fnGen struct {
	cg         *codegen
	fd         *FuncDecl
	fn         *ir.Func
	b          *ir.Builder
	entry      *ir.Block
	scopes     []map[string]*localSym
	loops      []loopCtx
	terminated bool
	deadN      int
}

func (cg *codegen) genFunc(fd *FuncDecl) error {
	fg := &fnGen{cg: cg, fd: fd, fn: cg.irFuncs[fd.Name]}
	fg.b = ir.NewBuilder(fg.fn)
	fg.entry = fg.b.Cur
	fg.pushScope()

	// Spill parameters into allocas so they are ordinary mutable locals;
	// mem2reg promotes them back.
	for i, pd := range fd.Params {
		a := fg.newAlloca(1)
		fg.b.Store(a, fg.fn.Params[i])
		fg.declare(pd.Name, &localSym{slot: a, ty: pd.Type, size: 1})
	}

	if err := fg.genBlock(fd.Body); err != nil {
		return err
	}
	fg.popScope()

	// Terminate any open block with a default return.
	for _, blk := range fg.fn.Blocks {
		if blk.Terminator() == nil {
			old := fg.b.Cur
			fg.b.SetBlock(blk)
			switch fd.Ret {
			case TypeVoid:
				fg.b.Ret(nil)
			case TypeFloat:
				fg.b.Ret(ir.ConstFloat(0))
			default:
				fg.b.Ret(ir.ConstInt(0))
			}
			fg.b.SetBlock(old)
		}
	}
	return nil
}

func (fg *fnGen) pushScope() { fg.scopes = append(fg.scopes, map[string]*localSym{}) }
func (fg *fnGen) popScope()  { fg.scopes = fg.scopes[:len(fg.scopes)-1] }

func (fg *fnGen) declare(name string, s *localSym) {
	fg.scopes[len(fg.scopes)-1][name] = s
}

func (fg *fnGen) lookupLocal(name string) *localSym {
	for i := len(fg.scopes) - 1; i >= 0; i-- {
		if s, ok := fg.scopes[i][name]; ok {
			return s
		}
	}
	return nil
}

// newAlloca inserts an alloca at the top of the entry block.
func (fg *fnGen) newAlloca(size int) *ir.Instr {
	a := &ir.Instr{Op: ir.OpAlloca, Ty: ir.Ptr, Args: []ir.Value{ir.ConstInt(int64(size))}}
	a.UID = fg.cg.mod.NewUID()
	fg.entry.InsertBefore(a, 0)
	return a
}

// ensureOpen makes sure the builder points at an unterminated block,
// creating an unreachable continuation block when code follows a return.
func (fg *fnGen) ensureOpen() {
	if fg.terminated {
		fg.deadN++
		fg.b.SetBlock(fg.b.Block(fmt.Sprintf("dead%d", fg.deadN)))
		fg.terminated = false
	}
}

// jmpIfOpen emits a jump unless the current block is already terminated.
func (fg *fnGen) jmpIfOpen(to *ir.Block) {
	if !fg.terminated {
		fg.b.Jmp(to)
	}
	fg.terminated = false
}

func (fg *fnGen) genBlock(blk *BlockStmt) error {
	fg.pushScope()
	defer fg.popScope()
	for _, s := range blk.Stmts {
		if err := fg.genStmt(s); err != nil {
			return err
		}
	}
	return nil
}

func (fg *fnGen) genStmt(s Stmt) error {
	switch st := s.(type) {
	case *BlockStmt:
		return fg.genBlock(st)

	case *VarDecl:
		fg.ensureOpen()
		if _, dup := fg.scopes[len(fg.scopes)-1][st.Name]; dup {
			return errf(st.Pos, "variable %s redeclared in this scope", st.Name)
		}
		a := fg.newAlloca(st.Size)
		fg.declare(st.Name, &localSym{slot: a, ty: st.Type, isArray: st.IsArray, size: st.Size})
		if st.Init != nil {
			v, ty, err := fg.genExpr(st.Init)
			if err != nil {
				return err
			}
			v, err = fg.convert(v, ty, st.Type, st.Pos)
			if err != nil {
				return err
			}
			fg.b.Store(a, v)
		} else if !st.IsArray {
			// Deterministic zero initialization.
			if st.Type == TypeFloat {
				fg.b.Store(a, ir.ConstFloat(0))
			} else {
				fg.b.Store(a, ir.ConstInt(0))
			}
		}
		return nil

	case *AssignStmt:
		fg.ensureOpen()
		return fg.genAssign(st)

	case *ExprStmt:
		fg.ensureOpen()
		_, _, err := fg.genExpr(st.X)
		return err

	case *IfStmt:
		fg.ensureOpen()
		cond, ty, err := fg.genExpr(st.Cond)
		if err != nil {
			return err
		}
		if ty != TypeInt {
			return errf(st.Pos, "if condition must be int, got %s", ty)
		}
		thenB := fg.b.Block("if.then")
		joinB := fg.b.Block("if.join")
		elseB := joinB
		if st.Else != nil {
			elseB = fg.b.Block("if.else")
		}
		fg.b.Br(cond, thenB, elseB)

		fg.b.SetBlock(thenB)
		fg.terminated = false
		if err := fg.genStmt(st.Then); err != nil {
			return err
		}
		fg.jmpIfOpen(joinB)

		if st.Else != nil {
			fg.b.SetBlock(elseB)
			fg.terminated = false
			if err := fg.genStmt(st.Else); err != nil {
				return err
			}
			fg.jmpIfOpen(joinB)
		}
		fg.b.SetBlock(joinB)
		fg.terminated = false
		return nil

	case *WhileStmt:
		fg.ensureOpen()
		header := fg.b.Block("while.header")
		body := fg.b.Block("while.body")
		exit := fg.b.Block("while.exit")
		fg.b.Jmp(header)

		fg.b.SetBlock(header)
		fg.terminated = false
		cond, ty, err := fg.genExpr(st.Cond)
		if err != nil {
			return err
		}
		if ty != TypeInt {
			return errf(st.Pos, "while condition must be int, got %s", ty)
		}
		fg.b.Br(cond, body, exit)

		fg.b.SetBlock(body)
		fg.terminated = false
		fg.loops = append(fg.loops, loopCtx{brk: exit, cont: header})
		if err := fg.genStmt(st.Body); err != nil {
			return err
		}
		fg.loops = fg.loops[:len(fg.loops)-1]
		fg.jmpIfOpen(header)

		fg.b.SetBlock(exit)
		fg.terminated = false
		return nil

	case *ForStmt:
		fg.ensureOpen()
		fg.pushScope() // init declarations are scoped to the loop
		defer fg.popScope()
		if st.Init != nil {
			if err := fg.genStmt(st.Init); err != nil {
				return err
			}
		}
		header := fg.b.Block("for.header")
		body := fg.b.Block("for.body")
		post := fg.b.Block("for.post")
		exit := fg.b.Block("for.exit")
		fg.b.Jmp(header)

		fg.b.SetBlock(header)
		fg.terminated = false
		if st.Cond != nil {
			cond, ty, err := fg.genExpr(st.Cond)
			if err != nil {
				return err
			}
			if ty != TypeInt {
				return errf(st.Pos, "for condition must be int, got %s", ty)
			}
			fg.b.Br(cond, body, exit)
		} else {
			fg.b.Jmp(body)
		}

		fg.b.SetBlock(body)
		fg.terminated = false
		fg.loops = append(fg.loops, loopCtx{brk: exit, cont: post})
		if err := fg.genStmt(st.Body); err != nil {
			return err
		}
		fg.loops = fg.loops[:len(fg.loops)-1]
		fg.jmpIfOpen(post)

		fg.b.SetBlock(post)
		fg.terminated = false
		if st.Post != nil {
			if err := fg.genStmt(st.Post); err != nil {
				return err
			}
		}
		fg.jmpIfOpen(header)

		fg.b.SetBlock(exit)
		fg.terminated = false
		return nil

	case *ReturnStmt:
		fg.ensureOpen()
		if st.Value == nil {
			if fg.fd.Ret != TypeVoid {
				return errf(st.Pos, "missing return value in %s function", fg.fd.Ret)
			}
			fg.b.Ret(nil)
			fg.terminated = true
			return nil
		}
		if fg.fd.Ret == TypeVoid {
			return errf(st.Pos, "return with value in void function")
		}
		v, ty, err := fg.genExpr(st.Value)
		if err != nil {
			return err
		}
		v, err = fg.convert(v, ty, fg.fd.Ret, st.Pos)
		if err != nil {
			return err
		}
		fg.b.Ret(v)
		fg.terminated = true
		return nil

	case *BreakStmt:
		fg.ensureOpen()
		if len(fg.loops) == 0 {
			return errf(st.Pos, "break outside loop")
		}
		fg.b.Jmp(fg.loops[len(fg.loops)-1].brk)
		fg.terminated = true
		return nil

	case *ContinueStmt:
		fg.ensureOpen()
		if len(fg.loops) == 0 {
			return errf(st.Pos, "continue outside loop")
		}
		fg.b.Jmp(fg.loops[len(fg.loops)-1].cont)
		fg.terminated = true
		return nil
	}
	return fmt.Errorf("lang: unknown statement %T", s)
}

// addr resolves an lvalue to (address, element type).
func (fg *fnGen) addr(name string, index Expr, pos Pos) (ir.Value, TypeName, error) {
	if l := fg.lookupLocal(name); l != nil {
		if index == nil {
			if l.isArray {
				return nil, 0, errf(pos, "%s is an array; index it", name)
			}
			return l.slot, l.ty, nil
		}
		if !l.isArray {
			return nil, 0, errf(pos, "%s is not an array", name)
		}
		iv, ity, err := fg.genExpr(index)
		if err != nil {
			return nil, 0, err
		}
		if ity != TypeInt {
			return nil, 0, errf(pos, "array index must be int, got %s", ity)
		}
		return fg.b.PtrAdd(l.slot, iv), l.ty, nil
	}
	if g, ok := fg.cg.globals[name]; ok {
		if index == nil {
			if g.isArray {
				return nil, 0, errf(pos, "%s is an array; index it", name)
			}
			return g.g, g.elem, nil
		}
		if !g.isArray {
			return nil, 0, errf(pos, "%s is not an array", name)
		}
		iv, ity, err := fg.genExpr(index)
		if err != nil {
			return nil, 0, err
		}
		if ity != TypeInt {
			return nil, 0, errf(pos, "array index must be int, got %s", ity)
		}
		return fg.b.PtrAdd(g.g, iv), g.elem, nil
	}
	return nil, 0, errf(pos, "undeclared variable %s", name)
}

var assignBase = map[tokKind]tokKind{
	tokPlusAssign: tokPlus, tokMinusAssign: tokMinus, tokStarAssign: tokStar,
	tokSlashAssign: tokSlash, tokPercentAssign: tokPercent,
	tokAmpAssign: tokAmp, tokPipeAssign: tokPipe, tokCaretAssign: tokCaret,
	tokShlAssign: tokShl, tokShrAssign: tokShr,
}

func (fg *fnGen) genAssign(st *AssignStmt) error {
	a, elem, err := fg.addr(st.Target.Name, st.Target.Index, st.Pos)
	if err != nil {
		return err
	}
	v, vty, err := fg.genExpr(st.Value)
	if err != nil {
		return err
	}
	if st.Op != tokAssign {
		cur := fg.b.Load(irType(elem), a)
		res, err := fg.binOp(assignBase[st.Op], cur, elem, v, vty, st.Pos)
		if err != nil {
			return err
		}
		v, vty = res, binResultType(assignBase[st.Op], elem, vty)
	}
	v, err = fg.convert(v, vty, elem, st.Pos)
	if err != nil {
		return err
	}
	fg.b.Store(a, v)
	return nil
}

func isCompare(k tokKind) bool {
	switch k {
	case tokEq, tokNe, tokLt, tokLe, tokGt, tokGe:
		return true
	}
	return false
}

// binResultType gives the surface type of x op y after promotion.
func binResultType(op tokKind, x, y TypeName) TypeName {
	if isCompare(op) || op == tokAndAnd || op == tokOrOr {
		return TypeInt
	}
	if x == TypeFloat || y == TypeFloat {
		return TypeFloat
	}
	return TypeInt
}

// convert coerces v from one surface type to another (int widens to float;
// narrowing requires explicit f2i).
func (fg *fnGen) convert(v ir.Value, from, to TypeName, pos Pos) (ir.Value, error) {
	if from == to {
		return v, nil
	}
	if from == TypeInt && to == TypeFloat {
		return fg.b.IToF(v), nil
	}
	return nil, errf(pos, "cannot convert %s to %s implicitly; use f2i()", from, to)
}

var binOps = map[tokKind]ir.Op{
	tokPlus: ir.OpAdd, tokMinus: ir.OpSub, tokStar: ir.OpMul,
	tokSlash: ir.OpDiv, tokPercent: ir.OpRem, tokAmp: ir.OpAnd,
	tokPipe: ir.OpOr, tokCaret: ir.OpXor, tokShl: ir.OpShl, tokShr: ir.OpShr,
	tokEq: ir.OpEq, tokNe: ir.OpNe, tokLt: ir.OpLt, tokLe: ir.OpLe,
	tokGt: ir.OpGt, tokGe: ir.OpGe,
}

var intOnly = map[tokKind]bool{
	tokPercent: true, tokAmp: true, tokPipe: true, tokCaret: true,
	tokShl: true, tokShr: true,
}

// binOp emits x op y with promotion; returns the result value.
func (fg *fnGen) binOp(op tokKind, x ir.Value, xt TypeName, y ir.Value, yt TypeName, pos Pos) (ir.Value, error) {
	if intOnly[op] && (xt != TypeInt || yt != TypeInt) {
		return nil, errf(pos, "operator %s requires int operands", op)
	}
	common := TypeInt
	if xt == TypeFloat || yt == TypeFloat {
		common = TypeFloat
	}
	var err error
	if x, err = fg.convert(x, xt, common, pos); err != nil {
		return nil, err
	}
	if y, err = fg.convert(y, yt, common, pos); err != nil {
		return nil, err
	}
	return fg.b.Bin(binOps[op], x, y), nil
}

// genExpr emits code for e and returns (value, surface type).
func (fg *fnGen) genExpr(e Expr) (ir.Value, TypeName, error) {
	switch ex := e.(type) {
	case *IntLit:
		return ir.ConstInt(ex.V), TypeInt, nil
	case *FloatLit:
		return ir.ConstFloat(ex.V), TypeFloat, nil

	case *Ident:
		a, ty, err := fg.addr(ex.Name, nil, ex.Pos)
		if err != nil {
			return nil, 0, err
		}
		return fg.b.Load(irType(ty), a), ty, nil

	case *IndexExpr:
		a, ty, err := fg.addr(ex.Name, ex.Index, ex.Pos)
		if err != nil {
			return nil, 0, err
		}
		return fg.b.Load(irType(ty), a), ty, nil

	case *UnaryExpr:
		v, ty, err := fg.genExpr(ex.X)
		if err != nil {
			return nil, 0, err
		}
		switch ex.Op {
		case tokMinus:
			return fg.b.Neg(v), ty, nil
		case tokBang:
			if ty != TypeInt {
				return nil, 0, errf(ex.Pos, "! requires int operand, got %s", ty)
			}
			return fg.b.Bin(ir.OpEq, v, ir.ConstInt(0)), TypeInt, nil
		case tokTilde:
			if ty != TypeInt {
				return nil, 0, errf(ex.Pos, "~ requires int operand, got %s", ty)
			}
			return fg.b.Bin(ir.OpXor, v, ir.ConstInt(-1)), TypeInt, nil
		}
		return nil, 0, errf(ex.Pos, "unknown unary operator")

	case *BinaryExpr:
		if ex.Op == tokAndAnd || ex.Op == tokOrOr {
			return fg.genShortCircuit(ex)
		}
		x, xt, err := fg.genExpr(ex.X)
		if err != nil {
			return nil, 0, err
		}
		y, yt, err := fg.genExpr(ex.Y)
		if err != nil {
			return nil, 0, err
		}
		v, err := fg.binOp(ex.Op, x, xt, y, yt, ex.Pos)
		if err != nil {
			return nil, 0, err
		}
		return v, binResultType(ex.Op, xt, yt), nil

	case *CallExpr:
		return fg.genCall(ex)
	}
	return nil, 0, fmt.Errorf("lang: unknown expression %T", e)
}

// genShortCircuit lowers && and || with control flow through a temporary.
func (fg *fnGen) genShortCircuit(ex *BinaryExpr) (ir.Value, TypeName, error) {
	tmp := fg.newAlloca(1)
	x, xt, err := fg.genExpr(ex.X)
	if err != nil {
		return nil, 0, err
	}
	if xt != TypeInt {
		return nil, 0, errf(ex.Pos, "%s requires int operands, got %s", ex.Op, xt)
	}
	rhsB := fg.b.Block("sc.rhs")
	joinB := fg.b.Block("sc.join")

	if ex.Op == tokAndAnd {
		fg.b.Store(tmp, ir.ConstInt(0))
		fg.b.Br(x, rhsB, joinB)
	} else {
		fg.b.Store(tmp, ir.ConstInt(1))
		fg.b.Br(x, joinB, rhsB)
	}

	fg.b.SetBlock(rhsB)
	y, yt, err := fg.genExpr(ex.Y)
	if err != nil {
		return nil, 0, err
	}
	if yt != TypeInt {
		return nil, 0, errf(ex.Pos, "%s requires int operands, got %s", ex.Op, yt)
	}
	norm := fg.b.Bin(ir.OpNe, y, ir.ConstInt(0))
	fg.b.Store(tmp, norm)
	fg.b.Jmp(joinB)

	fg.b.SetBlock(joinB)
	return fg.b.Load(ir.I64, tmp), TypeInt, nil
}

func (fg *fnGen) genCall(ex *CallExpr) (ir.Value, TypeName, error) {
	if bi, ok := builtins[ex.Name]; ok {
		if len(ex.Args) != len(bi.args) {
			return nil, 0, errf(ex.Pos, "%s expects %d args, got %d", ex.Name, len(bi.args), len(ex.Args))
		}
		vals := make([]ir.Value, len(ex.Args))
		for i, a := range ex.Args {
			v, ty, err := fg.genExpr(a)
			if err != nil {
				return nil, 0, err
			}
			if v, err = fg.convert(v, ty, bi.args[i], ex.Pos); err != nil {
				return nil, 0, err
			}
			vals[i] = v
		}
		if bi.conv != 0 {
			in := &ir.Instr{Op: bi.conv, Ty: irType(bi.ret), Args: vals}
			fg.b.Emit(in)
			return in, bi.ret, nil
		}
		return fg.b.Intrin(bi.intr, irType(bi.ret), vals...), bi.ret, nil
	}

	fd, ok := fg.cg.funcs[ex.Name]
	if !ok {
		return nil, 0, errf(ex.Pos, "call to undeclared function %s", ex.Name)
	}
	if len(ex.Args) != len(fd.Params) {
		return nil, 0, errf(ex.Pos, "%s expects %d args, got %d", ex.Name, len(fd.Params), len(ex.Args))
	}
	vals := make([]ir.Value, len(ex.Args))
	for i, a := range ex.Args {
		v, ty, err := fg.genExpr(a)
		if err != nil {
			return nil, 0, err
		}
		if v, err = fg.convert(v, ty, fd.Params[i].Type, ex.Pos); err != nil {
			return nil, 0, err
		}
		vals[i] = v
	}
	call := fg.b.Call(fg.cg.irFuncs[ex.Name], vals...)
	return call, fd.Ret, nil
}
