package lang

import (
	"repro/internal/ir"
	"repro/internal/passes"
)

// Compile parses, type-checks, lowers and normalizes a source file into an
// SSA-form module ready for analysis, protection and execution.
func Compile(name, src string) (*ir.Module, error) {
	prog, err := Parse(src)
	if err != nil {
		return nil, err
	}
	mod, err := Codegen(name, prog)
	if err != nil {
		return nil, err
	}
	if err := passes.Normalize(mod); err != nil {
		return nil, err
	}
	return mod, nil
}
