package lang

import (
	"testing"
)

// FuzzLexer feeds arbitrary bytes to the lexer. The lexer must either
// return a clean token stream terminated by EOF or report an error — never
// panic, never loop without consuming input.
func FuzzLexer(f *testing.F) {
	f.Add("void main() { out[0] = 1; }")
	f.Add("int f(int a) { return (a * 0x7f) >> 3; }")
	f.Add("float g() { return 1.5e-3; }")
	f.Add("// comment\nglobal int in[64];")
	f.Add("\"unterminated")
	f.Add("0x")
	f.Add("1.e")
	f.Fuzz(func(t *testing.T, src string) {
		l := newLexer(src)
		for i := 0; ; i++ {
			tok, err := l.next()
			if err != nil {
				return // rejecting input is fine; hanging or panicking is not
			}
			if tok.kind == tokEOF {
				return
			}
			if i > len(src)+1 {
				t.Fatalf("lexer produced more tokens than input bytes: %q", src)
			}
		}
	})
}

// FuzzParser feeds arbitrary bytes to the full parser. Any input must
// either parse or produce an error; a panic is a bug.
func FuzzParser(f *testing.F) {
	f.Add("void main() { out[0] = 1; }")
	f.Add("global int in[8];\nint h(int a) { return a + 1; }\nvoid main() { out[0] = h(in[0]); }")
	f.Add("void main() { for (int i = 0; i < 4; i += 1) { out[i & 7] = i; } }")
	f.Add("void main() { if (in[0] > 0) { out[0] = 1; } else { out[0] = 2; } }")
	f.Add("void main() { while (0) { } }")
	f.Add("void main() { int x = ((((1))))")
	f.Add("int f( {")
	f.Fuzz(func(t *testing.T, src string) {
		prog, err := Parse(src)
		if err != nil {
			return
		}
		// A program that parses must also survive codegen without panicking
		// (codegen errors for semantic problems are fine).
		_, _ = Codegen("fuzz", prog)
	})
}
