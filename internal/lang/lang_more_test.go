package lang

import (
	"math"
	"testing"

	"repro/internal/ir"
	"repro/internal/vm"
)

func newTestMachine(t *testing.T, mod *ir.Module) *vm.Machine {
	t.Helper()
	mach, err := vm.New(mod, vm.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	return mach
}

func testRunOpts() vm.RunOptions { return vm.RunOptions{} }

func TestFloatComparisons(t *testing.T) {
	src := `
global float in[2];
global int out[6];
void main() {
	float a = in[0];
	float b = in[1];
	out[0] = a < b;
	out[1] = a <= b;
	out[2] = a > b;
	out[3] = a >= b;
	out[4] = a == b;
	out[5] = a != b;
}`
	check := func(a, b float64, want []int64) {
		t.Helper()
		mod, err := Compile("t", src)
		if err != nil {
			t.Fatal(err)
		}
		mach := newTestMachine(t, mod)
		mach.BindInputFloats("in", []float64{a, b})
		mach.Reset()
		if res := mach.Run(testRunOpts()); res.Trap != nil {
			t.Fatalf("trap: %v", res.Trap)
		}
		out, _ := mach.ReadGlobalInts("out")
		for i, w := range want {
			if out[i] != w {
				t.Errorf("a=%v b=%v out[%d]=%d want %d", a, b, i, out[i], w)
			}
		}
	}
	check(1.5, 2.5, []int64{1, 1, 0, 0, 0, 1})
	check(2.5, 2.5, []int64{0, 1, 0, 1, 1, 0})
	check(3.5, 2.5, []int64{0, 0, 1, 1, 0, 1})
}

func TestGlobalFloatScalar(t *testing.T) {
	src := `
global float gain;
global float out[1];
void main() {
	gain = 2.5;
	gain = gain * 2.0;
	out[0] = gain;
}`
	out := runFloats(t, src, nil, "out")
	if out[0] != 5.0 {
		t.Fatalf("gain = %v", out[0])
	}
}

func TestNestedCallsAndMixedTypes(t *testing.T) {
	src := `
global float out[1];
float scale(float x, int k) { return x * i2f(k); }
float inner(float x) { return sqrt(fabs(x)); }
void main() {
	out[0] = scale(inner(-16.0), 3);
}`
	out := runFloats(t, src, nil, "out")
	if math.Abs(out[0]-12) > 1e-12 {
		t.Fatalf("got %v, want 12", out[0])
	}
}

func TestUnaryMinusOnFloatAndInt(t *testing.T) {
	src := `
global float fout[1];
global int iout[1];
void main() {
	float a = 2.5;
	fout[0] = -a * -2.0;
	int b = 7;
	iout[0] = -b + -(-3);
}`
	fo := runFloats(t, src, nil, "fout")
	if fo[0] != 5.0 {
		t.Errorf("fout = %v", fo[0])
	}
	io := run(t, src, nil, "iout")
	if io[0] != -4 {
		t.Errorf("iout = %d", io[0])
	}
}

func TestForWithoutInitOrPost(t *testing.T) {
	src := `
global int out[1];
void main() {
	int i = 0;
	int s = 0;
	for (; i < 5;) {
		s += i;
		i += 1;
	}
	out[0] = s;
}`
	out := run(t, src, nil, "out")
	if out[0] != 10 {
		t.Fatalf("got %d", out[0])
	}
}

func TestCompoundAssignOperators(t *testing.T) {
	src := `
global int out[10];
void main() {
	int x = 100;
	x += 5;  out[0] = x;   // 105
	x -= 10; out[1] = x;   // 95
	x *= 2;  out[2] = x;   // 190
	x /= 3;  out[3] = x;   // 63
	x %= 10; out[4] = x;   // 3
	x <<= 4; out[5] = x;   // 48
	x >>= 2; out[6] = x;   // 12
	x &= 10; out[7] = x;   // 8
	x |= 5;  out[8] = x;   // 13
	x ^= 6;  out[9] = x;   // 11
}`
	want := []int64{105, 95, 190, 63, 3, 48, 12, 8, 13, 11}
	out := run(t, src, nil, "out")
	for i, w := range want {
		if out[i] != w {
			t.Errorf("out[%d] = %d, want %d", i, out[i], w)
		}
	}
}

func TestDeadCodeAfterReturnCompiles(t *testing.T) {
	src := `
global int out[1];
int f(int x) {
	if (x > 0) {
		return x;
	}
	return -x;
	out[0] = 999; // unreachable; must not break compilation
}
void main() { out[0] = f(-5); }`
	out := run(t, src, nil, "out")
	if out[0] != 5 {
		t.Fatalf("got %d", out[0])
	}
}

func TestEmptyFunctionAndImplicitReturn(t *testing.T) {
	src := `
global int out[1];
void nothing() {}
int five() { if (0) { return 1; } }
void main() {
	nothing();
	out[0] = five(); // falls off the end: implicit return 0
}`
	out := run(t, src, nil, "out")
	if out[0] != 0 {
		t.Fatalf("implicit return = %d, want 0", out[0])
	}
}

func TestSemanticErrors(t *testing.T) {
	cases := []struct{ name, src string }{
		{"float condition", `void main() { if (1.5) {} }`},
		{"shift float", `global float out[1]; void main() { out[0] = 1.5 << 2; }`},
		{"mod float", `global float out[1]; void main() { out[0] = 1.5 % 2.0; }`},
		{"not on float", `void main() { int x = !1.5; }`},
		{"index scalar", `global int g; void main() { g[0] = 1; }`},
		{"unindexed array", `global int g[4]; void main() { g = 1; }`},
		{"float array index", `global int g[4]; void main() { g[1.5] = 1; }`},
		{"arg type", `void f(int a) {} void main() { f(1.5); }`},
		{"return type", `int f() { return 1.5; } void main() {}`},
		{"void return value", `void f() { return 1; } void main() {}`},
		{"missing return value", `int f() { return; } void main() {}`},
		{"continue outside loop", `void main() { continue; }`},
		{"builtin shadow", `void sqrt() {} void main() {}`},
		{"global redeclared", `global int a; global int a; void main() {}`},
		{"and on float", `void main() { int x = 1.0 && 1; }`},
	}
	for _, c := range cases {
		if _, err := Compile(c.name, c.src); err == nil {
			t.Errorf("%s: accepted\n%s", c.name, c.src)
		}
	}
}

func TestCommentsEverywhere(t *testing.T) {
	src := `
// leading comment
global int out[1]; // trailing
/* block
   spanning lines */
void main() {
	/* inline */ out[0] = /* mid-expression */ 42; // done
}`
	out := run(t, src, nil, "out")
	if out[0] != 42 {
		t.Fatalf("got %d", out[0])
	}
}

func TestDeepExpressionNesting(t *testing.T) {
	src := `
global int out[1];
void main() {
	out[0] = ((((((1 + 2) * 3) - 4) << 2) | 1) ^ 5) & 0xff;
}`
	want := int64((((((1 + 2) * 3) - 4) << 2) | 1) ^ 5&0xff)
	// careful: Go precedence differs for ^ and &; compute stepwise.
	v := int64(1+2) * 3
	v = v - 4
	v = v << 2
	v = v | 1
	v = v ^ 5
	v = v & 0xff
	want = v
	out := run(t, src, nil, "out")
	if out[0] != want {
		t.Fatalf("got %d, want %d", out[0], want)
	}
}
