package lang

import (
	"fmt"
	"math"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/ir"
	"repro/internal/vm"
)

// run compiles src, binds int inputs into globals, runs main, and returns
// the named output global as ints.
func run(t *testing.T, src string, inputs map[string][]int64, output string) []int64 {
	t.Helper()
	mod, err := Compile("test", src)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	mach, err := vm.New(mod, vm.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	for name, data := range inputs {
		if err := mach.BindInputInts(name, data); err != nil {
			t.Fatal(err)
		}
	}
	mach.Reset()
	res := mach.Run(vm.RunOptions{})
	if res.Trap != nil {
		t.Fatalf("trap: %v\n%s", res.Trap, mod.String())
	}
	out, err := mach.ReadGlobalInts(output)
	if err != nil {
		t.Fatal(err)
	}
	return out
}

func runFloats(t *testing.T, src string, inputs map[string][]float64, output string) []float64 {
	t.Helper()
	mod, err := Compile("test", src)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	mach, err := vm.New(mod, vm.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	for name, data := range inputs {
		if err := mach.BindInputFloats(name, data); err != nil {
			t.Fatal(err)
		}
	}
	mach.Reset()
	res := mach.Run(vm.RunOptions{})
	if res.Trap != nil {
		t.Fatalf("trap: %v", res.Trap)
	}
	out, err := mach.ReadGlobalFloats(output)
	if err != nil {
		t.Fatal(err)
	}
	return out
}

func TestArithmeticAndPrecedence(t *testing.T) {
	src := `
global int out[4];
void main() {
	out[0] = 2 + 3 * 4;          // 14
	out[1] = (2 + 3) * 4;        // 20
	out[2] = 7 % 3 + 10 / 2;     // 6
	out[3] = 1 << 4 | 3;         // 19
}`
	out := run(t, src, nil, "out")
	want := []int64{14, 20, 6, 19}
	for i, w := range want {
		if out[i] != w {
			t.Errorf("out[%d] = %d, want %d", i, out[i], w)
		}
	}
}

func TestForLoopSum(t *testing.T) {
	src := `
global int in[100];
global int out[1];
void main() {
	int s = 0;
	for (int i = 0; i < 100; i += 1) {
		s += in[i];
	}
	out[0] = s;
}`
	in := make([]int64, 100)
	want := int64(0)
	for i := range in {
		in[i] = int64(i * i)
		want += in[i]
	}
	out := run(t, src, map[string][]int64{"in": in}, "out")
	if out[0] != want {
		t.Fatalf("sum = %d, want %d", out[0], want)
	}
}

func TestWhileBreakContinue(t *testing.T) {
	src := `
global int out[1];
void main() {
	int i = 0;
	int s = 0;
	while (1) {
		i += 1;
		if (i > 100) { break; }
		if (i % 2 == 0) { continue; }
		s += i;    // sum of odd numbers 1..99 = 2500
	}
	out[0] = s;
}`
	out := run(t, src, nil, "out")
	if out[0] != 2500 {
		t.Fatalf("got %d, want 2500", out[0])
	}
}

func TestIfElseChains(t *testing.T) {
	src := `
global int in[1];
global int out[1];
void main() {
	int x = in[0];
	if (x < 10) { out[0] = 1; }
	else if (x < 100) { out[0] = 2; }
	else { out[0] = 3; }
}`
	for _, c := range []struct{ in, want int64 }{{5, 1}, {50, 2}, {500, 3}} {
		out := run(t, src, map[string][]int64{"in": {c.in}}, "out")
		if out[0] != c.want {
			t.Errorf("in=%d: got %d, want %d", c.in, out[0], c.want)
		}
	}
}

func TestShortCircuitDoesNotEvaluateRHS(t *testing.T) {
	// RHS would divide by zero if evaluated.
	src := `
global int in[1];
global int out[2];
void main() {
	int x = in[0];
	out[0] = (x != 0) && (100 / x > 5);
	out[1] = (x == 0) || (100 / (x + (x == 0)) > 5);
}`
	out := run(t, src, map[string][]int64{"in": {0}}, "out")
	if out[0] != 0 || out[1] != 1 {
		t.Fatalf("got %v, want [0 1]", out[:2])
	}
	out = run(t, src, map[string][]int64{"in": {10}}, "out")
	if out[0] != 1 || out[1] != 1 {
		t.Fatalf("got %v, want [1 1]", out[:2])
	}
}

func TestFunctionsAndRecursion(t *testing.T) {
	src := `
global int out[2];
int fact(int n) {
	if (n <= 1) { return 1; }
	return n * fact(n - 1);
}
int gcd(int a, int b) {
	while (b != 0) {
		int t = b;
		b = a % b;
		a = t;
	}
	return a;
}
void main() {
	out[0] = fact(10);
	out[1] = gcd(462, 1071);
}`
	out := run(t, src, nil, "out")
	if out[0] != 3628800 {
		t.Errorf("fact(10) = %d", out[0])
	}
	if out[1] != 21 {
		t.Errorf("gcd = %d", out[1])
	}
}

func TestLocalArrays(t *testing.T) {
	src := `
global int out[8];
void main() {
	int buf[8];
	for (int i = 0; i < 8; i += 1) { buf[i] = i * i; }
	// reverse into out
	for (int i = 0; i < 8; i += 1) { out[i] = buf[7 - i]; }
}`
	out := run(t, src, nil, "out")
	for i := 0; i < 8; i++ {
		want := int64((7 - i) * (7 - i))
		if out[i] != want {
			t.Errorf("out[%d] = %d, want %d", i, out[i], want)
		}
	}
}

func TestFloatsAndPromotion(t *testing.T) {
	src := `
global float in[2];
global float out[4];
void main() {
	float a = in[0];
	float b = in[1];
	out[0] = a * b + 1;         // int 1 promotes
	out[1] = sqrt(a);
	out[2] = fmax(a, b);
	out[3] = i2f(f2i(a * 10.0)); // truncation round-trip
}`
	out := runFloats(t, src, map[string][]float64{"in": {6.25, 2.5}}, "out")
	want := []float64{6.25*2.5 + 1, 2.5, 6.25, 62}
	for i, w := range want {
		if math.Abs(out[i]-w) > 1e-12 {
			t.Errorf("out[%d] = %v, want %v", i, out[i], w)
		}
	}
}

func TestFloatToIntRequiresExplicitConversion(t *testing.T) {
	src := `
global int out[1];
void main() { out[0] = 1.5; }`
	if _, err := Compile("bad", src); err == nil {
		t.Fatal("implicit float->int conversion accepted")
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		`void main() { int x = ; }`,
		`void main() { if x { } }`,
		`void main() { return 1 }`,
		`global int a[0];`,
		`void main() { x = 1; }`,                          // undeclared
		`void main() { int x = 1; y(); }`,                 // unknown function
		`int f(int a) { return a; } void main() { f(); }`, // arity
		`void main() { break; }`,                          // break outside loop
		`void main() { int x = 1; int x = 2; }`,           // redeclared
		`void f() {} void f() {}`,                         // function redeclared
		`void main() { /* unterminated`,
	}
	for _, src := range cases {
		if _, err := Compile("bad", src); err == nil {
			t.Errorf("accepted invalid program: %s", src)
		}
	}
}

func TestMem2RegPromotesEverything(t *testing.T) {
	src := `
global int in[10];
global int out[1];
void main() {
	int s = 0;
	for (int i = 0; i < 10; i += 1) { s += in[i]; }
	out[0] = s;
}`
	mod, err := Compile("t", src)
	if err != nil {
		t.Fatal(err)
	}
	mod.Func("main").Instrs(func(in *ir.Instr) bool {
		if in.Op == ir.OpAlloca {
			t.Errorf("unpromoted alloca remains: %s", in.LongString())
		}
		return true
	})
}

func TestMem2RegCreatesLoopHeaderPhis(t *testing.T) {
	src := `
global int out[1];
void main() {
	int s = 0;
	for (int i = 0; i < 10; i += 1) { s += i; }
	out[0] = s;
}`
	mod, err := Compile("t", src)
	if err != nil {
		t.Fatal(err)
	}
	f := mod.Func("main")
	dt := ir.BuildDomTree(f)
	loops := ir.FindLoops(f, dt)
	if len(loops) != 1 {
		t.Fatalf("loops = %d, want 1", len(loops))
	}
	phis := loops[0].Header.Phis()
	if len(phis) != 2 { // i and s
		t.Fatalf("loop header phis = %d, want 2 (i, s)\n%s", len(phis), f.Dump())
	}
}

func TestLocalArrayNotPromoted(t *testing.T) {
	src := `
global int out[1];
void main() {
	int buf[4];
	buf[0] = 42;
	out[0] = buf[0];
}`
	mod, err := Compile("t", src)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	mod.Func("main").Instrs(func(in *ir.Instr) bool {
		if in.Op == ir.OpAlloca {
			found = true
		}
		return true
	})
	if !found {
		t.Fatal("array alloca should not be promoted")
	}
	out := run(t, src, nil, "out")
	if out[0] != 42 {
		t.Fatalf("got %d", out[0])
	}
}

func TestGlobalScalars(t *testing.T) {
	src := `
global int counter;
global int out[1];
void bump() { counter += 1; }
void main() {
	counter = 0;
	for (int i = 0; i < 5; i += 1) { bump(); }
	out[0] = counter;
}`
	out := run(t, src, nil, "out")
	if out[0] != 5 {
		t.Fatalf("counter = %d, want 5", out[0])
	}
}

func TestNestedLoopsMatrixMultiply(t *testing.T) {
	src := `
global int a[16];
global int b[16];
global int c[16];
void main() {
	for (int i = 0; i < 4; i += 1) {
		for (int j = 0; j < 4; j += 1) {
			int s = 0;
			for (int k = 0; k < 4; k += 1) {
				s += a[i * 4 + k] * b[k * 4 + j];
			}
			c[i * 4 + j] = s;
		}
	}
}`
	a := make([]int64, 16)
	b := make([]int64, 16)
	rng := rand.New(rand.NewSource(3))
	for i := range a {
		a[i] = int64(rng.Intn(20) - 10)
		b[i] = int64(rng.Intn(20) - 10)
	}
	out := run(t, src, map[string][]int64{"a": a, "b": b}, "c")
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			var want int64
			for k := 0; k < 4; k++ {
				want += a[i*4+k] * b[k*4+j]
			}
			if out[i*4+j] != want {
				t.Errorf("c[%d][%d] = %d, want %d", i, j, out[i*4+j], want)
			}
		}
	}
}

// randExpr generates a random int expression over variables x, y, z along
// with its Go evaluation.
func randExpr(rng *rand.Rand, depth int, x, y, z int64) (string, int64) {
	if depth == 0 || rng.Intn(4) == 0 {
		switch rng.Intn(4) {
		case 0:
			return "x", x
		case 1:
			return "y", y
		case 2:
			return "z", z
		default:
			v := int64(rng.Intn(41) - 20)
			if v < 0 {
				return fmt.Sprintf("(0 - %d)", -v), v
			}
			return fmt.Sprintf("%d", v), v
		}
	}
	a, av := randExpr(rng, depth-1, x, y, z)
	b, bv := randExpr(rng, depth-1, x, y, z)
	switch rng.Intn(7) {
	case 0:
		return fmt.Sprintf("(%s + %s)", a, b), av + bv
	case 1:
		return fmt.Sprintf("(%s - %s)", a, b), av - bv
	case 2:
		return fmt.Sprintf("(%s * %s)", a, b), av * bv
	case 3:
		return fmt.Sprintf("(%s & %s)", a, b), av & bv
	case 4:
		return fmt.Sprintf("(%s | %s)", a, b), av | bv
	case 5:
		return fmt.Sprintf("(%s ^ %s)", a, b), av ^ bv
	default:
		sh := int64(rng.Intn(4))
		return fmt.Sprintf("(%s << %d)", a, sh), av << uint(sh)
	}
}

// TestRandomExpressionsMatchGo is the frontend's end-to-end property test:
// 150 random expression programs must produce exactly what Go computes.
func TestRandomExpressionsMatchGo(t *testing.T) {
	rng := rand.New(rand.NewSource(2024))
	for trial := 0; trial < 150; trial++ {
		x := int64(rng.Intn(2001) - 1000)
		y := int64(rng.Intn(2001) - 1000)
		z := int64(rng.Intn(2001) - 1000)
		expr, want := randExpr(rng, 4, x, y, z)
		src := fmt.Sprintf(`
global int in[3];
global int out[1];
void main() {
	int x = in[0];
	int y = in[1];
	int z = in[2];
	out[0] = %s;
}`, expr)
		out := run(t, src, map[string][]int64{"in": {x, y, z}}, "out")
		if out[0] != want {
			t.Fatalf("trial %d: %s with x=%d y=%d z=%d = %d, want %d",
				trial, expr, x, y, z, out[0], want)
		}
	}
}

func TestCompiledModuleVerifies(t *testing.T) {
	src := `
global int out[1];
int helper(int a, int b) {
	if (a > b) { return a - b; }
	return b - a;
}
void main() {
	int acc = 0;
	for (int i = 0; i < 20; i += 1) {
		acc += helper(i, 10);
	}
	out[0] = acc;
}`
	mod, err := Compile("t", src)
	if err != nil {
		t.Fatal(err)
	}
	if err := mod.Verify(); err != nil {
		t.Fatalf("verify: %v", err)
	}
	dump := mod.String()
	if !strings.Contains(dump, "@helper") {
		t.Error("dump missing helper")
	}
}

func TestHexLiteralsAndBitOps(t *testing.T) {
	src := `
global int out[2];
void main() {
	out[0] = 0xff & 0x0f0f;
	out[1] = ~0 ^ 0xffff;
}`
	out := run(t, src, nil, "out")
	if out[0] != 0x0f {
		t.Errorf("out[0] = %x", out[0])
	}
	if out[1] != ^int64(0)^0xffff {
		t.Errorf("out[1] = %x", out[1])
	}
}

func TestCrossValidationOfCompileDeterminism(t *testing.T) {
	src := `
global int out[1];
void main() { out[0] = 7; }`
	m1, err := Compile("a", src)
	if err != nil {
		t.Fatal(err)
	}
	m2, err := Compile("a", src)
	if err != nil {
		t.Fatal(err)
	}
	if m1.String() != m2.String() {
		t.Fatal("compilation is not deterministic")
	}
}
