package lang

import (
	"strconv"
	"strings"
)

// lexer turns source text into tokens.
type lexer struct {
	src  string
	off  int
	line int
	col  int
}

func newLexer(src string) *lexer { return &lexer{src: src, line: 1, col: 1} }

func (l *lexer) pos() Pos { return Pos{Line: l.line, Col: l.col} }

func (l *lexer) peekByte() byte {
	if l.off >= len(l.src) {
		return 0
	}
	return l.src[l.off]
}

func (l *lexer) peekByte2() byte {
	if l.off+1 >= len(l.src) {
		return 0
	}
	return l.src[l.off+1]
}

func (l *lexer) advance() byte {
	c := l.src[l.off]
	l.off++
	if c == '\n' {
		l.line++
		l.col = 1
	} else {
		l.col++
	}
	return c
}

func isDigit(c byte) bool { return c >= '0' && c <= '9' }
func isAlpha(c byte) bool {
	return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}

// next returns the next token.
func (l *lexer) next() (token, error) {
	for l.off < len(l.src) {
		c := l.peekByte()
		switch {
		case c == ' ' || c == '\t' || c == '\r' || c == '\n':
			l.advance()
		case c == '/' && l.peekByte2() == '/':
			for l.off < len(l.src) && l.peekByte() != '\n' {
				l.advance()
			}
		case c == '/' && l.peekByte2() == '*':
			start := l.pos()
			l.advance()
			l.advance()
			closed := false
			for l.off < len(l.src) {
				if l.peekByte() == '*' && l.peekByte2() == '/' {
					l.advance()
					l.advance()
					closed = true
					break
				}
				l.advance()
			}
			if !closed {
				return token{}, errf(start, "unterminated block comment")
			}
		default:
			goto scan
		}
	}
scan:
	if l.off >= len(l.src) {
		return token{kind: tokEOF, pos: l.pos()}, nil
	}

	pos := l.pos()
	c := l.peekByte()

	if isDigit(c) || (c == '.' && isDigit(l.peekByte2())) {
		return l.number(pos)
	}
	if isAlpha(c) {
		start := l.off
		for l.off < len(l.src) && (isAlpha(l.peekByte()) || isDigit(l.peekByte())) {
			l.advance()
		}
		word := l.src[start:l.off]
		if k, ok := keywords[word]; ok {
			return token{kind: k, pos: pos, text: word}, nil
		}
		return token{kind: tokIdent, pos: pos, text: word}, nil
	}

	l.advance()
	two := func(next byte, withNext, without tokKind) token {
		if l.peekByte() == next {
			l.advance()
			return token{kind: withNext, pos: pos}
		}
		return token{kind: without, pos: pos}
	}

	switch c {
	case '(':
		return token{kind: tokLParen, pos: pos}, nil
	case ')':
		return token{kind: tokRParen, pos: pos}, nil
	case '{':
		return token{kind: tokLBrace, pos: pos}, nil
	case '}':
		return token{kind: tokRBrace, pos: pos}, nil
	case '[':
		return token{kind: tokLBracket, pos: pos}, nil
	case ']':
		return token{kind: tokRBracket, pos: pos}, nil
	case ',':
		return token{kind: tokComma, pos: pos}, nil
	case ';':
		return token{kind: tokSemi, pos: pos}, nil
	case '~':
		return token{kind: tokTilde, pos: pos}, nil
	case '+':
		return two('=', tokPlusAssign, tokPlus), nil
	case '-':
		return two('=', tokMinusAssign, tokMinus), nil
	case '*':
		return two('=', tokStarAssign, tokStar), nil
	case '/':
		return two('=', tokSlashAssign, tokSlash), nil
	case '%':
		return two('=', tokPercentAssign, tokPercent), nil
	case '^':
		return two('=', tokCaretAssign, tokCaret), nil
	case '=':
		return two('=', tokEq, tokAssign), nil
	case '!':
		return two('=', tokNe, tokBang), nil
	case '&':
		if l.peekByte() == '&' {
			l.advance()
			return token{kind: tokAndAnd, pos: pos}, nil
		}
		return two('=', tokAmpAssign, tokAmp), nil
	case '|':
		if l.peekByte() == '|' {
			l.advance()
			return token{kind: tokOrOr, pos: pos}, nil
		}
		return two('=', tokPipeAssign, tokPipe), nil
	case '<':
		if l.peekByte() == '<' {
			l.advance()
			return two('=', tokShlAssign, tokShl), nil
		}
		return two('=', tokLe, tokLt), nil
	case '>':
		if l.peekByte() == '>' {
			l.advance()
			return two('=', tokShrAssign, tokShr), nil
		}
		return two('=', tokGe, tokGt), nil
	}
	return token{}, errf(pos, "unexpected character %q", string(c))
}

// number scans an integer or float literal.
func (l *lexer) number(pos Pos) (token, error) {
	start := l.off
	isFloat := false
	if l.peekByte() == '0' && (l.peekByte2() == 'x' || l.peekByte2() == 'X') {
		l.advance()
		l.advance()
		for l.off < len(l.src) && isHex(l.peekByte()) {
			l.advance()
		}
		v, err := strconv.ParseUint(l.src[start+2:l.off], 16, 64)
		if err != nil {
			return token{}, errf(pos, "bad hex literal: %v", err)
		}
		return token{kind: tokInt, pos: pos, ival: int64(v)}, nil
	}
	for l.off < len(l.src) && isDigit(l.peekByte()) {
		l.advance()
	}
	if l.peekByte() == '.' {
		isFloat = true
		l.advance()
		for l.off < len(l.src) && isDigit(l.peekByte()) {
			l.advance()
		}
	}
	if c := l.peekByte(); c == 'e' || c == 'E' {
		isFloat = true
		l.advance()
		if c := l.peekByte(); c == '+' || c == '-' {
			l.advance()
		}
		for l.off < len(l.src) && isDigit(l.peekByte()) {
			l.advance()
		}
	}
	text := l.src[start:l.off]
	if isFloat {
		v, err := strconv.ParseFloat(text, 64)
		if err != nil {
			return token{}, errf(pos, "bad float literal %q: %v", text, err)
		}
		return token{kind: tokFloat, pos: pos, fval: v}, nil
	}
	v, err := strconv.ParseInt(text, 10, 64)
	if err != nil {
		return token{}, errf(pos, "bad int literal %q: %v", text, err)
	}
	return token{kind: tokInt, pos: pos, ival: v}, nil
}

func isHex(c byte) bool {
	return isDigit(c) || (c >= 'a' && c <= 'f') || (c >= 'A' && c <= 'F')
}

// lexAll tokenizes the whole input (used by the parser).
func lexAll(src string) ([]token, error) {
	l := newLexer(src)
	var toks []token
	for {
		t, err := l.next()
		if err != nil {
			return nil, err
		}
		toks = append(toks, t)
		if t.kind == tokEOF {
			return toks, nil
		}
	}
}

// stripBOM removes a UTF-8 byte order mark if present.
func stripBOM(src string) string {
	return strings.TrimPrefix(src, "\xef\xbb\xbf")
}
