package lang

import "testing"

func TestLexerTokenKinds(t *testing.T) {
	src := `int x = 0x1f + 2.5e3; // comment
while (x <= 10) { x <<= 1; }`
	toks, err := lexAll(src)
	if err != nil {
		t.Fatal(err)
	}
	var kinds []tokKind
	for _, tk := range toks {
		kinds = append(kinds, tk.kind)
	}
	want := []tokKind{
		tokKwInt, tokIdent, tokAssign, tokInt, tokPlus, tokFloat, tokSemi,
		tokKwWhile, tokLParen, tokIdent, tokLe, tokInt, tokRParen,
		tokLBrace, tokIdent, tokShlAssign, tokInt, tokSemi, tokRBrace, tokEOF,
	}
	if len(kinds) != len(want) {
		t.Fatalf("token count %d != %d: %v", len(kinds), len(want), kinds)
	}
	for i, k := range want {
		if kinds[i] != k {
			t.Errorf("token %d = %s, want %s", i, kinds[i], k)
		}
	}
	// Literal values.
	if toks[3].ival != 0x1f {
		t.Errorf("hex literal = %d", toks[3].ival)
	}
	if toks[5].fval != 2500 {
		t.Errorf("float literal = %v", toks[5].fval)
	}
}

func TestLexerPositions(t *testing.T) {
	src := "int a;\n  float b;"
	toks, err := lexAll(src)
	if err != nil {
		t.Fatal(err)
	}
	// "float" starts at line 2, col 3.
	if toks[3].kind != tokKwFloat {
		t.Fatalf("token 3 = %s", toks[3].kind)
	}
	if toks[3].pos.Line != 2 || toks[3].pos.Col != 3 {
		t.Errorf("float pos = %s, want 2:3", toks[3].pos)
	}
}

func TestLexerErrorsCarryPositions(t *testing.T) {
	_, err := lexAll("int a = $;")
	if err == nil {
		t.Fatal("accepted '$'")
	}
	le, ok := err.(*Error)
	if !ok {
		t.Fatalf("error type %T", err)
	}
	if le.Pos.Line != 1 || le.Pos.Col != 9 {
		t.Errorf("error pos = %s, want 1:9", le.Pos)
	}
}

func TestLexerOperatorMaximalMunch(t *testing.T) {
	cases := map[string]tokKind{
		"<<=": tokShlAssign, ">>=": tokShrAssign, "<<": tokShl, ">>": tokShr,
		"<=": tokLe, ">=": tokGe, "==": tokEq, "!=": tokNe, "&&": tokAndAnd,
		"||": tokOrOr, "+=": tokPlusAssign, "^=": tokCaretAssign,
	}
	for src, want := range cases {
		toks, err := lexAll(src)
		if err != nil {
			t.Fatalf("%q: %v", src, err)
		}
		if toks[0].kind != want {
			t.Errorf("%q lexed as %s, want %s", src, toks[0].kind, want)
		}
		if len(toks) != 2 { // op + EOF
			t.Errorf("%q split into %d tokens", src, len(toks)-1)
		}
	}
}

func TestBOMStripped(t *testing.T) {
	src := "\xef\xbb\xbfglobal int out[1];\nvoid main() { out[0] = 1; }"
	if _, err := Compile("bom", src); err != nil {
		t.Fatalf("BOM-prefixed source rejected: %v", err)
	}
}
