package lang

import "fmt"

// parser is a recursive-descent parser with precedence climbing for
// expressions.
type parser struct {
	toks []token
	pos  int
}

// Parse parses a source file into an AST.
func Parse(src string) (*Program, error) {
	toks, err := lexAll(stripBOM(src))
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	return p.program()
}

func (p *parser) cur() token  { return p.toks[p.pos] }
func (p *parser) peek() token { return p.toks[min(p.pos+1, len(p.toks)-1)] }

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func (p *parser) advance() token {
	t := p.toks[p.pos]
	if p.pos < len(p.toks)-1 {
		p.pos++
	}
	return t
}

func (p *parser) accept(k tokKind) bool {
	if p.cur().kind == k {
		p.advance()
		return true
	}
	return false
}

func (p *parser) expect(k tokKind) (token, error) {
	if p.cur().kind != k {
		return token{}, errf(p.cur().pos, "expected %s, found %s", k, p.cur().kind)
	}
	return p.advance(), nil
}

func (p *parser) program() (*Program, error) {
	prog := &Program{}
	for p.cur().kind != tokEOF {
		switch p.cur().kind {
		case tokKwGlobal:
			g, err := p.globalDecl()
			if err != nil {
				return nil, err
			}
			prog.Globals = append(prog.Globals, g)
		case tokKwInt, tokKwFloat, tokKwVoid:
			f, err := p.funcDecl()
			if err != nil {
				return nil, err
			}
			prog.Funcs = append(prog.Funcs, f)
		default:
			return nil, errf(p.cur().pos, "expected 'global' or a function declaration, found %s", p.cur().kind)
		}
	}
	return prog, nil
}

func (p *parser) typeName() (TypeName, error) {
	switch p.cur().kind {
	case tokKwInt:
		p.advance()
		return TypeInt, nil
	case tokKwFloat:
		p.advance()
		return TypeFloat, nil
	}
	return TypeVoid, errf(p.cur().pos, "expected type, found %s", p.cur().kind)
}

// globalDecl := "global" type IDENT ("[" INT "]")? ";"
func (p *parser) globalDecl() (*GlobalDecl, error) {
	kw := p.advance() // global
	ty, err := p.typeName()
	if err != nil {
		return nil, err
	}
	name, err := p.expect(tokIdent)
	if err != nil {
		return nil, err
	}
	g := &GlobalDecl{Pos: kw.pos, Name: name.text, Elem: ty, Size: 1}
	if p.accept(tokLBracket) {
		sz, err := p.expect(tokInt)
		if err != nil {
			return nil, err
		}
		if sz.ival <= 0 {
			return nil, errf(sz.pos, "global array size must be positive, got %d", sz.ival)
		}
		g.Size = int(sz.ival)
		g.IsArray = true
		if _, err := p.expect(tokRBracket); err != nil {
			return nil, err
		}
	}
	if _, err := p.expect(tokSemi); err != nil {
		return nil, err
	}
	return g, nil
}

// funcDecl := type IDENT "(" params ")" block
func (p *parser) funcDecl() (*FuncDecl, error) {
	start := p.cur().pos
	var ret TypeName
	if p.accept(tokKwVoid) {
		ret = TypeVoid
	} else {
		t, err := p.typeName()
		if err != nil {
			return nil, err
		}
		ret = t
	}
	name, err := p.expect(tokIdent)
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokLParen); err != nil {
		return nil, err
	}
	f := &FuncDecl{Pos: start, Name: name.text, Ret: ret}
	if p.cur().kind != tokRParen {
		for {
			pt, err := p.typeName()
			if err != nil {
				return nil, err
			}
			pn, err := p.expect(tokIdent)
			if err != nil {
				return nil, err
			}
			f.Params = append(f.Params, ParamDecl{Pos: pn.pos, Name: pn.text, Type: pt})
			if !p.accept(tokComma) {
				break
			}
		}
	}
	if _, err := p.expect(tokRParen); err != nil {
		return nil, err
	}
	body, err := p.block()
	if err != nil {
		return nil, err
	}
	f.Body = body
	return f, nil
}

func (p *parser) block() (*BlockStmt, error) {
	lb, err := p.expect(tokLBrace)
	if err != nil {
		return nil, err
	}
	blk := &BlockStmt{Pos: lb.pos}
	for p.cur().kind != tokRBrace {
		if p.cur().kind == tokEOF {
			return nil, errf(lb.pos, "unterminated block")
		}
		s, err := p.stmt()
		if err != nil {
			return nil, err
		}
		blk.Stmts = append(blk.Stmts, s)
	}
	p.advance() // }
	return blk, nil
}

func (p *parser) stmt() (Stmt, error) {
	switch p.cur().kind {
	case tokLBrace:
		return p.block()
	case tokKwInt, tokKwFloat:
		s, err := p.varDecl()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokSemi); err != nil {
			return nil, err
		}
		return s, nil
	case tokKwIf:
		return p.ifStmt()
	case tokKwWhile:
		return p.whileStmt()
	case tokKwFor:
		return p.forStmt()
	case tokKwReturn:
		t := p.advance()
		r := &ReturnStmt{Pos: t.pos}
		if p.cur().kind != tokSemi {
			e, err := p.expr()
			if err != nil {
				return nil, err
			}
			r.Value = e
		}
		if _, err := p.expect(tokSemi); err != nil {
			return nil, err
		}
		return r, nil
	case tokKwBreak:
		t := p.advance()
		if _, err := p.expect(tokSemi); err != nil {
			return nil, err
		}
		return &BreakStmt{Pos: t.pos}, nil
	case tokKwContinue:
		t := p.advance()
		if _, err := p.expect(tokSemi); err != nil {
			return nil, err
		}
		return &ContinueStmt{Pos: t.pos}, nil
	default:
		s, err := p.simpleStmt()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokSemi); err != nil {
			return nil, err
		}
		return s, nil
	}
}

// varDecl := type IDENT ("[" INT "]" | "=" expr)?   (no trailing ';')
func (p *parser) varDecl() (Stmt, error) {
	ty, err := p.typeName()
	if err != nil {
		return nil, err
	}
	name, err := p.expect(tokIdent)
	if err != nil {
		return nil, err
	}
	d := &VarDecl{Pos: name.pos, Name: name.text, Type: ty, Size: 1}
	if p.accept(tokLBracket) {
		sz, err := p.expect(tokInt)
		if err != nil {
			return nil, err
		}
		if sz.ival <= 0 {
			return nil, errf(sz.pos, "array size must be positive, got %d", sz.ival)
		}
		d.Size = int(sz.ival)
		d.IsArray = true
		if _, err := p.expect(tokRBracket); err != nil {
			return nil, err
		}
		return d, nil
	}
	if p.accept(tokAssign) {
		e, err := p.expr()
		if err != nil {
			return nil, err
		}
		d.Init = e
	}
	return d, nil
}

func isAssignOp(k tokKind) bool {
	switch k {
	case tokAssign, tokPlusAssign, tokMinusAssign, tokStarAssign,
		tokSlashAssign, tokPercentAssign, tokAmpAssign, tokPipeAssign,
		tokCaretAssign, tokShlAssign, tokShrAssign:
		return true
	}
	return false
}

// simpleStmt := assignment | exprStmt   (no trailing ';')
func (p *parser) simpleStmt() (Stmt, error) {
	if p.cur().kind == tokIdent && (isAssignOp(p.peek().kind) || p.peek().kind == tokLBracket) {
		// Could be assignment to scalar/array element, or an indexed read in
		// an expression statement; disambiguate by scanning for the
		// matching ']' followed by an assignment operator.
		if p.peek().kind != tokLBracket || p.indexedAssignAhead() {
			return p.assignStmt()
		}
	}
	start := p.cur().pos
	e, err := p.expr()
	if err != nil {
		return nil, err
	}
	return &ExprStmt{Pos: start, X: e}, nil
}

// indexedAssignAhead reports whether the upcoming tokens look like
// ident [ ... ] op= — distinguishing `a[i] = x` from the expression `a[i]`.
func (p *parser) indexedAssignAhead() bool {
	i := p.pos + 1 // at '['
	depth := 0
	for ; i < len(p.toks); i++ {
		switch p.toks[i].kind {
		case tokLBracket:
			depth++
		case tokRBracket:
			depth--
			if depth == 0 {
				return i+1 < len(p.toks) && isAssignOp(p.toks[i+1].kind)
			}
		case tokSemi, tokEOF:
			return false
		}
	}
	return false
}

func (p *parser) assignStmt() (Stmt, error) {
	name, err := p.expect(tokIdent)
	if err != nil {
		return nil, err
	}
	lv := &LValue{Pos: name.pos, Name: name.text}
	if p.accept(tokLBracket) {
		idx, err := p.expr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokRBracket); err != nil {
			return nil, err
		}
		lv.Index = idx
	}
	op := p.cur()
	if !isAssignOp(op.kind) {
		return nil, errf(op.pos, "expected assignment operator, found %s", op.kind)
	}
	p.advance()
	val, err := p.expr()
	if err != nil {
		return nil, err
	}
	return &AssignStmt{Pos: name.pos, Target: lv, Op: op.kind, Value: val}, nil
}

func (p *parser) ifStmt() (Stmt, error) {
	t := p.advance() // if
	if _, err := p.expect(tokLParen); err != nil {
		return nil, err
	}
	cond, err := p.expr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokRParen); err != nil {
		return nil, err
	}
	then, err := p.stmt()
	if err != nil {
		return nil, err
	}
	s := &IfStmt{Pos: t.pos, Cond: cond, Then: then}
	if p.accept(tokKwElse) {
		els, err := p.stmt()
		if err != nil {
			return nil, err
		}
		s.Else = els
	}
	return s, nil
}

func (p *parser) whileStmt() (Stmt, error) {
	t := p.advance() // while
	if _, err := p.expect(tokLParen); err != nil {
		return nil, err
	}
	cond, err := p.expr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokRParen); err != nil {
		return nil, err
	}
	body, err := p.stmt()
	if err != nil {
		return nil, err
	}
	return &WhileStmt{Pos: t.pos, Cond: cond, Body: body}, nil
}

func (p *parser) forStmt() (Stmt, error) {
	t := p.advance() // for
	if _, err := p.expect(tokLParen); err != nil {
		return nil, err
	}
	s := &ForStmt{Pos: t.pos}
	if p.cur().kind != tokSemi {
		var err error
		if p.cur().kind == tokKwInt || p.cur().kind == tokKwFloat {
			s.Init, err = p.varDecl()
		} else {
			s.Init, err = p.simpleStmt()
		}
		if err != nil {
			return nil, err
		}
	}
	if _, err := p.expect(tokSemi); err != nil {
		return nil, err
	}
	if p.cur().kind != tokSemi {
		cond, err := p.expr()
		if err != nil {
			return nil, err
		}
		s.Cond = cond
	}
	if _, err := p.expect(tokSemi); err != nil {
		return nil, err
	}
	if p.cur().kind != tokRParen {
		post, err := p.simpleStmt()
		if err != nil {
			return nil, err
		}
		s.Post = post
	}
	if _, err := p.expect(tokRParen); err != nil {
		return nil, err
	}
	body, err := p.stmt()
	if err != nil {
		return nil, err
	}
	s.Body = body
	return s, nil
}

// Expression precedence (low to high), C-like.
var precedence = map[tokKind]int{
	tokOrOr:   1,
	tokAndAnd: 2,
	tokPipe:   3,
	tokCaret:  4,
	tokAmp:    5,
	tokEq:     6, tokNe: 6,
	tokLt: 7, tokLe: 7, tokGt: 7, tokGe: 7,
	tokShl: 8, tokShr: 8,
	tokPlus: 9, tokMinus: 9,
	tokStar: 10, tokSlash: 10, tokPercent: 10,
}

func (p *parser) expr() (Expr, error) { return p.binExpr(1) }

func (p *parser) binExpr(minPrec int) (Expr, error) {
	lhs, err := p.unary()
	if err != nil {
		return nil, err
	}
	for {
		op := p.cur()
		prec, ok := precedence[op.kind]
		if !ok || prec < minPrec {
			return lhs, nil
		}
		p.advance()
		rhs, err := p.binExpr(prec + 1)
		if err != nil {
			return nil, err
		}
		lhs = &BinaryExpr{Pos: op.pos, Op: op.kind, X: lhs, Y: rhs}
	}
}

func (p *parser) unary() (Expr, error) {
	switch p.cur().kind {
	case tokMinus, tokBang, tokTilde:
		op := p.advance()
		x, err := p.unary()
		if err != nil {
			return nil, err
		}
		return &UnaryExpr{Pos: op.pos, Op: op.kind, X: x}, nil
	}
	return p.primary()
}

func (p *parser) primary() (Expr, error) {
	t := p.cur()
	switch t.kind {
	case tokInt:
		p.advance()
		return &IntLit{Pos: t.pos, V: t.ival}, nil
	case tokFloat:
		p.advance()
		return &FloatLit{Pos: t.pos, V: t.fval}, nil
	case tokLParen:
		p.advance()
		e, err := p.expr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokRParen); err != nil {
			return nil, err
		}
		return e, nil
	case tokIdent:
		p.advance()
		switch p.cur().kind {
		case tokLParen:
			p.advance()
			c := &CallExpr{Pos: t.pos, Name: t.text}
			if p.cur().kind != tokRParen {
				for {
					a, err := p.expr()
					if err != nil {
						return nil, err
					}
					c.Args = append(c.Args, a)
					if !p.accept(tokComma) {
						break
					}
				}
			}
			if _, err := p.expect(tokRParen); err != nil {
				return nil, err
			}
			return c, nil
		case tokLBracket:
			p.advance()
			idx, err := p.expr()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(tokRBracket); err != nil {
				return nil, err
			}
			return &IndexExpr{Pos: t.pos, Name: t.text, Index: idx}, nil
		}
		return &Ident{Pos: t.pos, Name: t.text}, nil
	}
	return nil, errf(t.pos, fmt.Sprintf("unexpected %s in expression", t.kind))
}
