// Package lang implements the small C-like language the workload benchmarks
// are written in, standing in for the paper's C sources + clang frontend.
// It compiles to the SSA IR in package ir via a classic alloca-based code
// generator; package passes then promotes locals to SSA registers (mem2reg),
// which is what makes loop-carried state variables visible as phi nodes in
// loop headers — the anchor of the paper's analysis.
//
// The language has int (i64) and float (f64) scalars, global and local
// arrays, C expression syntax with short-circuit && and ||, if/while/for,
// functions, and a set of math builtins. Ints promote to floats implicitly;
// narrowing requires f2i().
package lang

import "fmt"

// tokKind enumerates token kinds.
type tokKind uint8

const (
	tokEOF tokKind = iota
	tokIdent
	tokInt
	tokFloat

	// Keywords.
	tokKwInt
	tokKwFloat
	tokKwVoid
	tokKwIf
	tokKwElse
	tokKwWhile
	tokKwFor
	tokKwReturn
	tokKwBreak
	tokKwContinue
	tokKwGlobal

	// Punctuation and operators.
	tokLParen
	tokRParen
	tokLBrace
	tokRBrace
	tokLBracket
	tokRBracket
	tokComma
	tokSemi

	tokAssign // =
	tokPlus
	tokMinus
	tokStar
	tokSlash
	tokPercent
	tokAmp
	tokPipe
	tokCaret
	tokShl
	tokShr
	tokBang
	tokTilde

	tokPlusAssign
	tokMinusAssign
	tokStarAssign
	tokSlashAssign
	tokPercentAssign
	tokAmpAssign
	tokPipeAssign
	tokCaretAssign
	tokShlAssign
	tokShrAssign

	tokEq // ==
	tokNe
	tokLt
	tokLe
	tokGt
	tokGe
	tokAndAnd
	tokOrOr
)

var tokNames = map[tokKind]string{
	tokEOF: "EOF", tokIdent: "identifier", tokInt: "int literal",
	tokFloat: "float literal", tokKwInt: "'int'", tokKwFloat: "'float'",
	tokKwVoid: "'void'", tokKwIf: "'if'", tokKwElse: "'else'",
	tokKwWhile: "'while'", tokKwFor: "'for'", tokKwReturn: "'return'",
	tokKwBreak: "'break'", tokKwContinue: "'continue'", tokKwGlobal: "'global'",
	tokLParen: "'('", tokRParen: "')'", tokLBrace: "'{'", tokRBrace: "'}'",
	tokLBracket: "'['", tokRBracket: "']'", tokComma: "','", tokSemi: "';'",
	tokAssign: "'='", tokPlus: "'+'", tokMinus: "'-'", tokStar: "'*'",
	tokSlash: "'/'", tokPercent: "'%'", tokAmp: "'&'", tokPipe: "'|'",
	tokCaret: "'^'", tokShl: "'<<'", tokShr: "'>>'", tokBang: "'!'",
	tokTilde: "'~'", tokEq: "'=='", tokNe: "'!='", tokLt: "'<'",
	tokLe: "'<='", tokGt: "'>'", tokGe: "'>='", tokAndAnd: "'&&'",
	tokOrOr: "'||'", tokPlusAssign: "'+='", tokMinusAssign: "'-='",
	tokStarAssign: "'*='", tokSlashAssign: "'/='", tokPercentAssign: "'%='",
	tokAmpAssign: "'&='", tokPipeAssign: "'|='", tokCaretAssign: "'^='",
	tokShlAssign: "'<<='", tokShrAssign: "'>>='",
}

func (k tokKind) String() string {
	if s, ok := tokNames[k]; ok {
		return s
	}
	return fmt.Sprintf("token(%d)", uint8(k))
}

var keywords = map[string]tokKind{
	"int": tokKwInt, "float": tokKwFloat, "void": tokKwVoid, "if": tokKwIf,
	"else": tokKwElse, "while": tokKwWhile, "for": tokKwFor,
	"return": tokKwReturn, "break": tokKwBreak, "continue": tokKwContinue,
	"global": tokKwGlobal,
}

// Pos is a source position.
type Pos struct {
	Line, Col int
}

func (p Pos) String() string { return fmt.Sprintf("%d:%d", p.Line, p.Col) }

// token is one lexeme.
type token struct {
	kind tokKind
	pos  Pos
	text string  // identifiers
	ival int64   // tokInt
	fval float64 // tokFloat
}

// Error is a compile error with a source position.
type Error struct {
	Pos Pos
	Msg string
}

func (e *Error) Error() string { return fmt.Sprintf("%s: %s", e.Pos, e.Msg) }

func errf(pos Pos, format string, args ...interface{}) error {
	return &Error{Pos: pos, Msg: fmt.Sprintf(format, args...)}
}
