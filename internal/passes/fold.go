package passes

import (
	"math"

	"repro/internal/ir"
)

// Fold performs constant folding and algebraic simplification, mirroring
// the cleanup a production compiler applies before instrumentation (the
// paper's LLVM pipeline). It folds operations whose operands are constants
// and applies safe identities (x+0, x*1, x*0, x&0, x|0, x^0, x<<0, phi with
// identical inputs, branches on constant conditions). Run before Mem2Reg or
// after; it only requires SSA uses to be rewritable.
func Fold(f *ir.Func) {
	changed := true
	for changed {
		changed = false
		replace := make(map[*ir.Instr]ir.Value)

		f.Instrs(func(in *ir.Instr) bool {
			if v := foldInstr(in); v != nil {
				replace[in] = v
				changed = true
			}
			return true
		})
		if len(replace) > 0 {
			// Rewrite uses (chase chains so a->b->c resolves fully).
			resolve := func(v ir.Value) ir.Value {
				for {
					in, ok := v.(*ir.Instr)
					if !ok {
						return v
					}
					r, ok := replace[in]
					if !ok {
						return v
					}
					v = r
				}
			}
			f.Instrs(func(in *ir.Instr) bool {
				for i, a := range in.Args {
					in.Args[i] = resolve(a)
				}
				return true
			})
			// Drop the folded instructions.
			for _, b := range f.Blocks {
				kept := b.Instrs[:0]
				for _, in := range b.Instrs {
					if _, dead := replace[in]; !dead {
						kept = append(kept, in)
					}
				}
				b.Instrs = kept
			}
		}
		if simplifyBranches(f) {
			changed = true
		}
	}
	f.Renumber()
	f.ComputeCFG()
}

// foldInstr returns a replacement value for in, or nil.
func foldInstr(in *ir.Instr) ir.Value {
	if in.Op == ir.OpPhi {
		// Phi with all-identical inputs collapses to that input.
		if len(in.Args) == 0 {
			return nil
		}
		first := in.Args[0]
		for _, a := range in.Args[1:] {
			if !sameValue(a, first) {
				return nil
			}
		}
		if first == in {
			return nil
		}
		return first
	}
	if !in.Op.IsArith() || in.Op == ir.OpIntrinsic {
		return nil
	}

	c0, ok0 := constOf(in.Args[0])
	var c1 *ir.Const
	ok1 := false
	if len(in.Args) > 1 {
		c1, ok1 = constOf(in.Args[1])
	}

	// Full constant folding.
	if ok0 && (len(in.Args) == 1 || ok1) {
		return foldConst(in, c0, c1)
	}

	// Algebraic identities with one constant operand.
	if in.Ty != ir.I64 {
		return nil // float identities are unsafe (-0, NaN)
	}
	x := in.Args[0]
	switch in.Op {
	case ir.OpAdd, ir.OpOr, ir.OpXor:
		if ok1 && c1.Int() == 0 {
			return x
		}
		if ok0 && c0.Int() == 0 {
			return in.Args[1]
		}
	case ir.OpSub, ir.OpShl, ir.OpShr:
		if ok1 && c1.Int() == 0 {
			return x
		}
	case ir.OpMul:
		if ok1 {
			switch c1.Int() {
			case 0:
				return ir.ConstInt(0)
			case 1:
				return x
			}
		}
		if ok0 {
			switch c0.Int() {
			case 0:
				return ir.ConstInt(0)
			case 1:
				return in.Args[1]
			}
		}
	case ir.OpAnd:
		if (ok1 && c1.Int() == 0) || (ok0 && c0.Int() == 0) {
			return ir.ConstInt(0)
		}
		if ok1 && c1.Int() == -1 {
			return x
		}
		if ok0 && c0.Int() == -1 {
			return in.Args[1]
		}
	case ir.OpDiv:
		if ok1 && c1.Int() == 1 {
			return x
		}
	}
	return nil
}

func constOf(v ir.Value) (*ir.Const, bool) {
	c, ok := v.(*ir.Const)
	return c, ok
}

func sameValue(a, b ir.Value) bool {
	if a == b {
		return true
	}
	ca, oka := a.(*ir.Const)
	cb, okb := b.(*ir.Const)
	return oka && okb && ca.Ty == cb.Ty && ca.Bits == cb.Bits
}

// foldConst evaluates an all-constant operation. Division by zero and other
// trapping cases return nil (the trap must still happen at runtime).
func foldConst(in *ir.Instr, c0, c1 *ir.Const) ir.Value {
	if in.Ty == ir.F64 && in.Op != ir.OpFToI {
		a := c0.Float()
		var b float64
		if c1 != nil {
			b = c1.Float()
		}
		switch in.Op {
		case ir.OpAdd:
			return ir.ConstFloat(a + b)
		case ir.OpSub:
			return ir.ConstFloat(a - b)
		case ir.OpMul:
			return ir.ConstFloat(a * b)
		case ir.OpDiv:
			return ir.ConstFloat(a / b)
		case ir.OpNeg:
			return ir.ConstFloat(-a)
		case ir.OpIToF:
			return ir.ConstFloat(float64(c0.Int()))
		}
		return nil
	}

	x := c0.Int()
	var y int64
	if c1 != nil {
		y = c1.Int()
	}
	switch in.Op {
	case ir.OpAdd:
		return ir.ConstInt(x + y)
	case ir.OpSub:
		return ir.ConstInt(x - y)
	case ir.OpMul:
		return ir.ConstInt(x * y)
	case ir.OpDiv:
		if y == 0 || (x == math.MinInt64 && y == -1) {
			return nil
		}
		return ir.ConstInt(x / y)
	case ir.OpRem:
		if y == 0 || (x == math.MinInt64 && y == -1) {
			return nil
		}
		return ir.ConstInt(x % y)
	case ir.OpAnd:
		return ir.ConstInt(x & y)
	case ir.OpOr:
		return ir.ConstInt(x | y)
	case ir.OpXor:
		return ir.ConstInt(x ^ y)
	case ir.OpShl:
		return ir.ConstInt(x << uint(y&63))
	case ir.OpShr:
		return ir.ConstInt(x >> uint(y&63))
	case ir.OpNeg:
		return ir.ConstInt(-x)
	case ir.OpFToI:
		f := c0.Float()
		if math.IsNaN(f) || f >= math.MaxInt64 || f <= math.MinInt64 {
			return nil // keep runtime saturation semantics out of the folder
		}
		return ir.ConstInt(int64(f))
	case ir.OpEq, ir.OpNe, ir.OpLt, ir.OpLe, ir.OpGt, ir.OpGe:
		var cond bool
		if c0.Ty == ir.F64 {
			a, b := c0.Float(), c1.Float()
			switch in.Op {
			case ir.OpEq:
				cond = a == b
			case ir.OpNe:
				cond = a != b
			case ir.OpLt:
				cond = a < b
			case ir.OpLe:
				cond = a <= b
			case ir.OpGt:
				cond = a > b
			case ir.OpGe:
				cond = a >= b
			}
		} else {
			switch in.Op {
			case ir.OpEq:
				cond = x == y
			case ir.OpNe:
				cond = x != y
			case ir.OpLt:
				cond = x < y
			case ir.OpLe:
				cond = x <= y
			case ir.OpGt:
				cond = x > y
			case ir.OpGe:
				cond = x >= y
			}
		}
		if cond {
			return ir.ConstInt(1)
		}
		return ir.ConstInt(0)
	}
	return nil
}

// simplifyBranches converts conditional branches on constants into jumps
// and prunes the dead edge's phi entries, then removes newly unreachable
// blocks.
func simplifyBranches(f *ir.Func) bool {
	changed := false
	for _, b := range f.Blocks {
		t := b.Terminator()
		if t == nil || t.Op != ir.OpBr {
			continue
		}
		c, ok := t.Args[0].(*ir.Const)
		if !ok {
			continue
		}
		taken, dead := t.Then, t.Else
		if c.Int() == 0 {
			taken, dead = t.Else, t.Then
		}
		// Rewrite to an unconditional jump.
		t.Op = ir.OpJmp
		t.Args = nil
		t.Then = taken
		t.Else = nil
		changed = true
		if dead != taken {
			// Prune this predecessor's phi edges in the dead target.
			for _, phi := range dead.Phis() {
				for i := len(phi.Preds) - 1; i >= 0; i-- {
					if phi.Preds[i] == b {
						phi.Args = append(phi.Args[:i], phi.Args[i+1:]...)
						phi.Preds = append(phi.Preds[:i], phi.Preds[i+1:]...)
					}
				}
			}
		} else {
			// br c, X, X carried two phi edges from b; the jump carries one.
			for _, phi := range taken.Phis() {
				for i := len(phi.Preds) - 1; i >= 0; i-- {
					if phi.Preds[i] == b {
						phi.Args = append(phi.Args[:i], phi.Args[i+1:]...)
						phi.Preds = append(phi.Preds[:i], phi.Preds[i+1:]...)
						break // remove exactly one duplicate edge
					}
				}
			}
		}
	}
	if changed {
		f.ComputeCFG()
		RemoveUnreachable(f)
	}
	return changed
}
