package passes

import (
	"testing"

	"repro/internal/ir"
)

// foldFunc builds main(){ out[0] = expr } with expr constructed by build,
// folds, and returns the function.
func foldFunc(t *testing.T, build func(b *ir.Builder) ir.Value) *ir.Func {
	t.Helper()
	m := ir.NewModule("fold")
	out := m.AddGlobal("out", 1)
	f := m.NewFunc("main", ir.Void)
	b := ir.NewBuilder(f)
	v := build(b)
	b.Store(out, v)
	b.Ret(nil)
	m.Renumber()
	if err := m.Verify(); err != nil {
		t.Fatal(err)
	}
	Fold(f)
	DCE(f)
	m.Renumber()
	if err := m.Verify(); err != nil {
		t.Fatalf("post-fold verify: %v", err)
	}
	return f
}

func countArith(f *ir.Func) int {
	n := 0
	f.Instrs(func(in *ir.Instr) bool {
		if in.Op.IsArith() {
			n++
		}
		return true
	})
	return n
}

func storedConst(t *testing.T, f *ir.Func) *ir.Const {
	t.Helper()
	var c *ir.Const
	f.Instrs(func(in *ir.Instr) bool {
		if in.Op == ir.OpStore {
			c, _ = in.Args[1].(*ir.Const)
			return false
		}
		return true
	})
	if c == nil {
		t.Fatalf("store operand is not a constant:\n%s", f.Dump())
	}
	return c
}

func TestFoldConstantExpression(t *testing.T) {
	f := foldFunc(t, func(b *ir.Builder) ir.Value {
		x := b.Bin(ir.OpAdd, ir.ConstInt(2), ir.ConstInt(3))
		y := b.Bin(ir.OpMul, x, ir.ConstInt(4))
		return b.Bin(ir.OpSub, y, ir.ConstInt(1)) // (2+3)*4-1 = 19
	})
	if got := storedConst(t, f).Int(); got != 19 {
		t.Fatalf("folded to %d, want 19", got)
	}
	if n := countArith(f); n != 0 {
		t.Fatalf("%d arith instructions survived", n)
	}
}

func TestFoldIdentities(t *testing.T) {
	m := ir.NewModule("ids")
	in := m.AddGlobal("in", 1)
	out := m.AddGlobal("out", 1)
	f := m.NewFunc("main", ir.Void)
	b := ir.NewBuilder(f)
	x := b.Load(ir.I64, in)
	v := b.Bin(ir.OpAdd, x, ir.ConstInt(0)) // x
	v = b.Bin(ir.OpMul, v, ir.ConstInt(1))  // x
	v = b.Bin(ir.OpXor, v, ir.ConstInt(0))  // x
	v = b.Bin(ir.OpShl, v, ir.ConstInt(0))  // x
	b.Store(out, v)
	b.Ret(nil)
	m.Renumber()
	Fold(f)
	DCE(f)
	m.Renumber()
	if err := m.Verify(); err != nil {
		t.Fatal(err)
	}
	if n := countArith(f); n != 0 {
		t.Fatalf("identities not folded, %d arith remain:\n%s", n, f.Dump())
	}
	// The store must now use the load directly.
	f.Instrs(func(in2 *ir.Instr) bool {
		if in2.Op == ir.OpStore {
			if ld, ok := in2.Args[1].(*ir.Instr); !ok || ld.Op != ir.OpLoad {
				t.Fatalf("store operand is not the load: %s", in2.LongString())
			}
		}
		return true
	})
}

func TestFoldMulByZero(t *testing.T) {
	m := ir.NewModule("z")
	in := m.AddGlobal("in", 1)
	out := m.AddGlobal("out", 1)
	f := m.NewFunc("main", ir.Void)
	b := ir.NewBuilder(f)
	x := b.Load(ir.I64, in)
	v := b.Bin(ir.OpMul, x, ir.ConstInt(0))
	b.Store(out, v)
	b.Ret(nil)
	m.Renumber()
	Fold(f)
	DCE(f)
	m.Renumber()
	if c := storedConst(t, f); c.Int() != 0 {
		t.Fatalf("x*0 folded to %d", c.Int())
	}
}

func TestFoldDoesNotFoldDivByZero(t *testing.T) {
	f := foldFunc(t, func(b *ir.Builder) ir.Value {
		return b.Bin(ir.OpDiv, ir.ConstInt(5), ir.ConstInt(0))
	})
	div := 0
	f.Instrs(func(in *ir.Instr) bool {
		if in.Op == ir.OpDiv {
			div++
		}
		return true
	})
	if div != 1 {
		t.Fatal("trapping division was folded away")
	}
}

func TestFoldConstantBranch(t *testing.T) {
	m := ir.NewModule("cb")
	out := m.AddGlobal("out", 1)
	f := m.NewFunc("main", ir.Void)
	b := ir.NewBuilder(f)
	thenB := b.Block("then")
	elseB := b.Block("else")
	join := b.Block("join")
	b.Br(ir.ConstInt(1), thenB, elseB)

	b.SetBlock(thenB)
	b.Jmp(join)
	b.SetBlock(elseB)
	b.Jmp(join)

	b.SetBlock(join)
	phi := b.Phi(ir.I64)
	ir.AddIncoming(phi, ir.ConstInt(10), thenB)
	ir.AddIncoming(phi, ir.ConstInt(20), elseB)
	b.Store(out, phi)
	b.Ret(nil)
	m.Renumber()
	if err := m.Verify(); err != nil {
		t.Fatal(err)
	}

	Fold(f)
	DCE(f)
	m.Renumber()
	if err := m.Verify(); err != nil {
		t.Fatalf("post-fold verify: %v\n%s", err, f.Dump())
	}
	// else block is unreachable and removed; the phi collapses to 10.
	if len(f.Blocks) != 3 { // entry, then, join
		t.Fatalf("blocks = %d:\n%s", len(f.Blocks), f.Dump())
	}
	if got := storedConst(t, f).Int(); got != 10 {
		t.Fatalf("folded branch stored %d, want 10", got)
	}
}

func TestFoldFloatConstants(t *testing.T) {
	f := foldFunc(t, func(b *ir.Builder) ir.Value {
		x := b.Bin(ir.OpMul, ir.ConstFloat(2.5), ir.ConstFloat(4))
		return b.Bin(ir.OpAdd, x, ir.ConstFloat(0.5)) // 10.5
	})
	if got := storedConst(t, f).Float(); got != 10.5 {
		t.Fatalf("folded to %v", got)
	}
}

func TestFoldPreservesFloatIdentityHazards(t *testing.T) {
	// x + 0.0 must NOT fold (x = -0.0 gives +0.0).
	m := ir.NewModule("fh")
	in := m.AddGlobal("in", 1)
	out := m.AddGlobal("out", 1)
	f := m.NewFunc("main", ir.Void)
	b := ir.NewBuilder(f)
	x := b.Load(ir.F64, in)
	v := b.Bin(ir.OpAdd, x, ir.ConstFloat(0))
	b.Store(out, v)
	b.Ret(nil)
	m.Renumber()
	Fold(f)
	m.Renumber()
	adds := 0
	f.Instrs(func(in2 *ir.Instr) bool {
		if in2.Op == ir.OpAdd {
			adds++
		}
		return true
	})
	if adds != 1 {
		t.Fatal("float x+0.0 was folded (unsound for -0.0)")
	}
}
