package passes

import "repro/internal/ir"

// allocaInfo tracks one promotable stack slot.
type allocaInfo struct {
	ty        ir.Type // access type (from loads/stores)
	defBlocks []*ir.Block
	phis      map[*ir.Instr]bool // phis created for this slot
	stack     []ir.Value         // renaming stack
}

// Mem2Reg promotes single-word allocas whose address never escapes (every
// use is a direct load or the address operand of a store) into SSA values,
// inserting phi nodes at iterated dominance frontiers (Cytron et al.). This
// is the step that makes loop-carried state variables visible as phi nodes
// in loop headers, which the paper's state-variable identification keys on.
func Mem2Reg(f *ir.Func) {
	f.ComputeCFG()
	dt := ir.BuildDomTree(f)

	// 1. Find promotable allocas. order keeps them in program order: phi
	// insertion below must not depend on map iteration, or the header phi
	// order (and with it value numbering, fault-injection live lists, and
	// every downstream artifact) varies from process to process.
	promotable := make(map[*ir.Instr]*allocaInfo)
	var order []*ir.Instr
	f.Instrs(func(in *ir.Instr) bool {
		if in.Op == ir.OpAlloca {
			if c, ok := in.Args[0].(*ir.Const); ok && c.Int() == 1 {
				promotable[in] = &allocaInfo{ty: ir.Void}
				order = append(order, in)
			}
		}
		return true
	})
	f.Instrs(func(in *ir.Instr) bool {
		for i, a := range in.Args {
			al, ok := a.(*ir.Instr)
			if !ok || al.Op != ir.OpAlloca {
				continue
			}
			info := promotable[al]
			if info == nil {
				continue
			}
			switch {
			case in.Op == ir.OpLoad && i == 0:
				if info.ty == ir.Void {
					info.ty = in.Ty
				} else if info.ty != in.Ty {
					delete(promotable, al) // mixed-type access: leave in memory
				}
			case in.Op == ir.OpStore && i == 0:
				vt := in.Args[1].Type()
				if info.ty == ir.Void {
					info.ty = vt
				} else if info.ty != vt {
					delete(promotable, al)
				}
				info.defBlocks = append(info.defBlocks, in.Blk)
			default:
				delete(promotable, al) // address escapes (ptradd, stored value, ...)
			}
		}
		return true
	})
	// Slots never accessed stay Void; just drop them from promotion (DCE
	// will delete the allocas).
	for al, info := range promotable {
		if info.ty == ir.Void {
			delete(promotable, al)
		}
		info.phis = make(map[*ir.Instr]bool)
	}
	if len(promotable) == 0 {
		return
	}

	// 2. Phi insertion at iterated dominance frontiers, in program order of
	// the allocas (each phi lands at slot 0, so later allocas end up earlier
	// in the header; what matters is that the order is deterministic).
	df := dt.Frontiers()
	phiFor := make(map[*ir.Block]map[*ir.Instr]*ir.Instr) // block -> alloca -> phi
	for _, al := range order {
		info := promotable[al]
		if info == nil {
			continue
		}
		inserted := make(map[*ir.Block]bool)
		work := append([]*ir.Block(nil), info.defBlocks...)
		for len(work) > 0 {
			b := work[len(work)-1]
			work = work[:len(work)-1]
			if !dt.Reachable(b) {
				continue
			}
			for _, w := range df[b.Index] {
				if inserted[w] {
					continue
				}
				inserted[w] = true
				phi := &ir.Instr{Op: ir.OpPhi, Ty: info.ty, UID: f.Module.NewUID()}
				w.InsertBefore(phi, 0)
				if phiFor[w] == nil {
					phiFor[w] = make(map[*ir.Instr]*ir.Instr)
				}
				phiFor[w][al] = phi
				info.phis[phi] = true
				work = append(work, w)
			}
		}
	}

	// 3. Renaming walk over the dominator tree.
	replaced := make(map[*ir.Instr]ir.Value) // dead load -> value
	dead := make(map[*ir.Instr]bool)

	zero := func(ty ir.Type) ir.Value {
		if ty == ir.F64 {
			return ir.ConstFloat(0)
		}
		return ir.ConstInt(0)
	}
	top := func(info *allocaInfo) ir.Value {
		if n := len(info.stack); n > 0 {
			return info.stack[n-1]
		}
		return zero(info.ty)
	}
	// resolve chases load replacements (values pushed on stacks are always
	// already resolved, so one hop suffices; keep the loop for safety).
	resolve := func(v ir.Value) ir.Value {
		for {
			in, ok := v.(*ir.Instr)
			if !ok {
				return v
			}
			r, ok := replaced[in]
			if !ok {
				return v
			}
			v = r
		}
	}

	var rename func(b *ir.Block)
	rename = func(b *ir.Block) {
		pushed := make(map[*allocaInfo]int)

		for _, in := range b.Instrs {
			// Phis we created define new versions.
			if in.Op == ir.OpPhi {
				for al, phi := range phiFor[b] {
					if phi == in {
						info := promotable[al]
						info.stack = append(info.stack, phi)
						pushed[info]++
					}
				}
				continue
			}
			// Rewrite operands through the replacement map first.
			for i, a := range in.Args {
				in.Args[i] = resolve(a)
			}
			switch in.Op {
			case ir.OpLoad:
				if al, ok := in.Args[0].(*ir.Instr); ok {
					if info := promotable[al]; info != nil {
						replaced[in] = top(info)
						dead[in] = true
					}
				}
			case ir.OpStore:
				if al, ok := in.Args[0].(*ir.Instr); ok {
					if info := promotable[al]; info != nil {
						info.stack = append(info.stack, in.Args[1])
						pushed[info]++
						dead[in] = true
					}
				}
			case ir.OpAlloca:
				if promotable[in] != nil {
					dead[in] = true
				}
			}
		}

		// Fill phi operands of successors.
		for _, s := range b.Succs {
			for al, phi := range phiFor[s] {
				info := promotable[al]
				phi.Args = append(phi.Args, top(info))
				phi.Preds = append(phi.Preds, b)
			}
		}

		for _, c := range dt.Children[b.Index] {
			rename(c)
		}
		for info, n := range pushed {
			info.stack = info.stack[:len(info.stack)-n]
		}
	}
	rename(f.Entry())

	// 4. Delete promoted loads/stores/allocas.
	for _, b := range f.Blocks {
		kept := b.Instrs[:0]
		for _, in := range b.Instrs {
			if dead[in] {
				continue
			}
			kept = append(kept, in)
		}
		b.Instrs = kept
	}
	f.Renumber()
	f.ComputeCFG()
}
