// Package passes contains IR-to-IR transformations shared by the frontend
// and the protection planner: unreachable-block removal, SSA construction
// (mem2reg, the step that surfaces loop-carried state variables as phi
// nodes), and dead-code elimination.
package passes

import "repro/internal/ir"

// Normalize runs the standard post-frontend pipeline on a module: remove
// unreachable blocks, promote allocas to SSA, fold constants, eliminate
// dead code — the cleanup a production compiler applies before the
// protection passes see the code.
func Normalize(m *ir.Module) error {
	for _, f := range m.Funcs {
		RemoveUnreachable(f)
		Mem2Reg(f)
		Fold(f)
		DCE(f)
	}
	m.Renumber()
	return m.Verify()
}

// RemoveUnreachable deletes blocks not reachable from the entry and prunes
// phi edges arriving from deleted blocks.
func RemoveUnreachable(f *ir.Func) {
	f.ComputeCFG()
	reachable := make(map[*ir.Block]bool)
	stack := []*ir.Block{f.Entry()}
	for len(stack) > 0 {
		b := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if reachable[b] {
			continue
		}
		reachable[b] = true
		for _, s := range b.Succs {
			stack = append(stack, s)
		}
	}
	if len(reachable) == len(f.Blocks) {
		return
	}
	var kept []*ir.Block
	for _, b := range f.Blocks {
		if reachable[b] {
			kept = append(kept, b)
		}
	}
	f.Blocks = kept
	for _, b := range f.Blocks {
		for _, phi := range b.Phis() {
			args := phi.Args[:0]
			preds := phi.Preds[:0]
			for i, p := range phi.Preds {
				if reachable[p] {
					args = append(args, phi.Args[i])
					preds = append(preds, p)
				}
			}
			phi.Args = args
			phi.Preds = preds
		}
	}
	f.Renumber()
	f.ComputeCFG()
}

// DCE removes instructions whose results are unused and which have no side
// effects, iterating until a fixed point. Cyclic dead chains (a loop-carried
// value only feeding its own update) die too because liveness is seeded only
// from effectful roots.
func DCE(f *ir.Func) {
	live := make(map[*ir.Instr]bool)
	var worklist []*ir.Instr

	isRoot := func(in *ir.Instr) bool {
		switch in.Op {
		case ir.OpStore, ir.OpRet, ir.OpJmp, ir.OpBr, ir.OpCall,
			ir.OpCmpCheck, ir.OpRangeCheck, ir.OpValCheck:
			return true
		}
		return false
	}
	f.Instrs(func(in *ir.Instr) bool {
		if isRoot(in) {
			live[in] = true
			worklist = append(worklist, in)
		}
		return true
	})
	for len(worklist) > 0 {
		in := worklist[len(worklist)-1]
		worklist = worklist[:len(worklist)-1]
		for _, a := range in.Args {
			if d, ok := a.(*ir.Instr); ok && !live[d] {
				live[d] = true
				worklist = append(worklist, d)
			}
		}
	}
	for _, b := range f.Blocks {
		kept := b.Instrs[:0]
		for _, in := range b.Instrs {
			if live[in] {
				kept = append(kept, in)
			}
		}
		b.Instrs = kept
	}
	f.Renumber()
}
