package passes

import (
	"math/rand"
	"testing"

	"repro/internal/ir"
)

// buildWithAllocas constructs the alloca-form equivalent of
//
//	s := 0; for i := 0; i < n; i++ { s += a[i] }; out = s
//
// exactly as the frontend would emit it, so Mem2Reg can be tested in
// isolation from the parser.
func buildWithAllocas(t testing.TB, n int64) *ir.Module {
	t.Helper()
	m := ir.NewModule("m2r")
	arr := m.AddGlobal("a", int(n))
	out := m.AddGlobal("out", 1)
	f := m.NewFunc("main", ir.Void)
	b := ir.NewBuilder(f)

	sSlot := b.Alloca(1)
	iSlot := b.Alloca(1)
	b.Store(sSlot, ir.ConstInt(0))
	b.Store(iSlot, ir.ConstInt(0))

	header := b.Block("header")
	body := b.Block("body")
	exit := b.Block("exit")
	b.Jmp(header)

	b.SetBlock(header)
	iv := b.Load(ir.I64, iSlot)
	cond := b.Bin(ir.OpLt, iv, ir.ConstInt(n))
	b.Br(cond, body, exit)

	b.SetBlock(body)
	iv2 := b.Load(ir.I64, iSlot)
	p := b.PtrAdd(arr, iv2)
	v := b.Load(ir.I64, p)
	sv := b.Load(ir.I64, sSlot)
	sum := b.Bin(ir.OpAdd, sv, v)
	b.Store(sSlot, sum)
	inc := b.Bin(ir.OpAdd, iv2, ir.ConstInt(1))
	b.Store(iSlot, inc)
	b.Jmp(header)

	b.SetBlock(exit)
	sOut := b.Load(ir.I64, sSlot)
	b.Store(out, sOut)
	b.Ret(nil)

	m.Renumber()
	if err := m.Verify(); err != nil {
		t.Fatalf("pre-mem2reg verify: %v", err)
	}
	return m
}

func TestMem2RegPromotesAndInsertsPhis(t *testing.T) {
	m := buildWithAllocas(t, 8)
	f := m.Func("main")
	if err := Normalize(m); err != nil {
		t.Fatalf("normalize: %v", err)
	}
	// No scalar allocas or their loads/stores to them survive.
	f.Instrs(func(in *ir.Instr) bool {
		if in.Op == ir.OpAlloca {
			t.Errorf("alloca survived: %s", in.LongString())
		}
		return true
	})
	// Loop header got phis for i and s.
	dt := ir.BuildDomTree(f)
	loops := ir.FindLoops(f, dt)
	if len(loops) != 1 {
		t.Fatalf("loops = %d", len(loops))
	}
	if got := len(loops[0].Header.Phis()); got != 2 {
		t.Fatalf("header phis = %d, want 2\n%s", got, f.Dump())
	}
}

func TestDCERemovesDeadCycles(t *testing.T) {
	m := ir.NewModule("dce")
	f := m.NewFunc("main", ir.Void)
	b := ir.NewBuilder(f)
	entry := b.Cur
	header := b.Block("header")
	body := b.Block("body")
	exit := b.Block("exit")
	b.Jmp(header)

	b.SetBlock(header)
	i := b.Phi(ir.I64)
	dead := b.Phi(ir.I64) // self-sustaining dead chain
	cond := b.Bin(ir.OpLt, i, ir.ConstInt(10))
	b.Br(cond, body, exit)

	b.SetBlock(body)
	i2 := b.Bin(ir.OpAdd, i, ir.ConstInt(1))
	dead2 := b.Bin(ir.OpMul, dead, ir.ConstInt(3)) // only feeds the dead phi
	b.Jmp(header)

	ir.AddIncoming(i, ir.ConstInt(0), entry)
	ir.AddIncoming(i, i2, body)
	ir.AddIncoming(dead, ir.ConstInt(1), entry)
	ir.AddIncoming(dead, dead2, body)

	b.SetBlock(exit)
	b.Ret(nil)
	m.Renumber()
	if err := m.Verify(); err != nil {
		t.Fatal(err)
	}

	before := f.NumInstrs()
	DCE(f)
	m.Renumber()
	if err := m.Verify(); err != nil {
		t.Fatalf("post-DCE verify: %v", err)
	}
	after := f.NumInstrs()
	if after >= before {
		t.Fatalf("DCE removed nothing: %d -> %d", before, after)
	}
	f.Instrs(func(in *ir.Instr) bool {
		if in.Op == ir.OpMul {
			t.Error("dead multiply survived")
		}
		return true
	})
	// The live loop must survive.
	if len(f.Blocks[1].Phis()) != 1 {
		t.Fatalf("live phi count = %d, want 1", len(f.Blocks[1].Phis()))
	}
}

func TestRemoveUnreachableDropsDeadBlocksAndPhiEdges(t *testing.T) {
	m := ir.NewModule("unreach")
	f := m.NewFunc("main", ir.I64)
	b := ir.NewBuilder(f)
	entry := b.Cur
	deadB := b.Block("dead")
	join := b.Block("join")
	b.Jmp(join)

	b.SetBlock(deadB) // never branched to
	b.Jmp(join)

	b.SetBlock(join)
	phi := b.Phi(ir.I64)
	ir.AddIncoming(phi, ir.ConstInt(1), entry)
	ir.AddIncoming(phi, ir.ConstInt(2), deadB)
	b.Ret(phi)
	m.Renumber()

	RemoveUnreachable(f)
	if len(f.Blocks) != 2 {
		t.Fatalf("blocks = %d, want 2", len(f.Blocks))
	}
	if len(phi.Preds) != 1 || len(phi.Args) != 1 {
		t.Fatalf("phi edges not pruned: %s", phi.LongString())
	}
	if err := m.Verify(); err != nil {
		t.Fatalf("verify: %v", err)
	}
}

// TestMem2RegDataflowShape checks the promoted dataflow structurally (the
// semantic end-to-end equivalence check lives in lang's tests, which can
// execute modules): the exit store must be fed by the sum phi, whose back
// edge is the add chain.
func TestMem2RegDataflowShape(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	n := int64(4 + rng.Intn(8))
	m := buildWithAllocas(t, n)
	if err := Normalize(m); err != nil {
		t.Fatal(err)
	}
	f := m.Func("main")
	// Find the store to @out; its value operand must be the s-phi.
	var store *ir.Instr
	f.Instrs(func(in *ir.Instr) bool {
		if in.Op == ir.OpStore {
			if g, ok := in.Args[0].(*ir.Global); ok && g.Name == "out" {
				store = in
				return false
			}
		}
		return true
	})
	if store == nil {
		t.Fatal("no store to out")
	}
	phi, ok := store.Args[1].(*ir.Instr)
	if !ok || phi.Op != ir.OpPhi {
		t.Fatalf("out is not fed by a phi: %v", store.LongString())
	}
	// The phi's back edge must come from an add using a load of @a.
	foundAdd := false
	for _, arg := range phi.Args {
		if in, ok := arg.(*ir.Instr); ok && in.Op == ir.OpAdd {
			foundAdd = true
		}
	}
	if !foundAdd {
		t.Fatalf("sum phi lost its add chain: %s", phi.LongString())
	}
}
