package profile

import (
	"math"

	"repro/internal/ir"
)

// Data is the result of a profiling run: one histogram per value-generating
// instruction, keyed by the instruction's stable UID.
type Data struct {
	Bins  int
	ByUID map[int]*Histogram
}

// Hist returns the histogram for an instruction UID, or nil.
func (d *Data) Hist(uid int) *Histogram { return d.ByUID[uid] }

// Collector gathers value profiles during interpretation; it implements
// vm.Profiler. One collector per profiling run; merge multiple runs (e.g.
// several training inputs) with Merge.
type Collector struct {
	bins int
	data *Data
}

// NewCollector returns a collector building histograms with the given bin
// bound (the paper uses 5).
func NewCollector(bins int) *Collector {
	return &Collector{bins: bins, data: &Data{Bins: bins, ByUID: make(map[int]*Histogram)}}
}

// Record implements the profiler hook: it feeds one observed value into the
// producing instruction's histogram. Values with no exact float64
// representation — NaN, infinities, and integers beyond 2^53 that would be
// rounded — are recorded as uncheckable: they count toward the observation
// total (deflating check coverage) but enter no bin, so no expected-value
// check is ever planned around a constant that differs from the value the
// program actually computes.
func (c *Collector) Record(in *ir.Instr, bits uint64) {
	var v float64
	ok := true
	if in.Ty == ir.F64 {
		v = math.Float64frombits(bits)
		if math.IsNaN(v) || math.IsInf(v, 0) {
			ok = false
		}
	} else {
		i := int64(bits)
		v = float64(i)
		// Exact round-trip check: v may round up to 2^63, which does not
		// fit back into an int64, so guard the conversion range first.
		if v < minInt64F || v >= maxInt64F || int64(v) != i {
			ok = false
		}
	}
	h := c.data.ByUID[in.UID]
	if h == nil {
		h = NewHistogram(c.bins)
		c.data.ByUID[in.UID] = h
	}
	if ok {
		h.Add(v)
	} else {
		h.AddUncheckable()
	}
}

// int64 range bounds as float64s. maxInt64F is 2^63 exactly; any float
// >= 2^63 or < -2^63 cannot have come from an exactly-represented int64.
const (
	maxInt64F = 9223372036854775808.0
	minInt64F = -9223372036854775808.0
)

// Data returns the collected profiles.
func (c *Collector) Data() *Data { return c.data }

// Merge folds other into d by re-adding bin midpoints weighted by count.
// This is an approximation (the underlying streams are gone), matching the
// paper's suggestion of combining profiles from multiple inputs.
func (d *Data) Merge(other *Data) {
	for uid, oh := range other.ByUID {
		h := d.ByUID[uid]
		if h == nil {
			h = NewHistogram(d.Bins)
			d.ByUID[uid] = h
		}
		var binned uint64
		for _, b := range oh.Bins {
			binned += b.Count
		}
		// Carry over uncheckable observations (counted but unbinned).
		if oh.Total > binned {
			h.Total += oh.Total - binned
		}
		for _, b := range oh.Bins {
			mid := (b.Lo + b.Hi) / 2
			for i := uint64(0); i < b.Count; i++ {
				if b.Lo == b.Hi {
					h.Add(b.Lo)
				} else {
					h.Add(mid)
				}
				// Cap replay cost: counts beyond 1e4 per bin add no
				// information to a 5-bin histogram.
				if i > 10_000 {
					break
				}
			}
		}
	}
}
