package profile

import (
	"math"

	"repro/internal/ir"
)

// Data is the result of a profiling run: one histogram per value-generating
// instruction, keyed by the instruction's stable UID.
type Data struct {
	Bins  int
	ByUID map[int]*Histogram
}

// Hist returns the histogram for an instruction UID, or nil.
func (d *Data) Hist(uid int) *Histogram { return d.ByUID[uid] }

// Collector gathers value profiles during interpretation; it implements
// vm.Profiler. One collector per profiling run; merge multiple runs (e.g.
// several training inputs) with Merge.
type Collector struct {
	bins int
	data *Data
}

// NewCollector returns a collector building histograms with the given bin
// bound (the paper uses 5).
func NewCollector(bins int) *Collector {
	return &Collector{bins: bins, data: &Data{Bins: bins, ByUID: make(map[int]*Histogram)}}
}

// Record implements the profiler hook: it feeds one observed value into the
// producing instruction's histogram. Non-finite floats are skipped (they
// cannot be range-checked meaningfully).
func (c *Collector) Record(in *ir.Instr, bits uint64) {
	var v float64
	if in.Ty == ir.F64 {
		v = math.Float64frombits(bits)
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return
		}
	} else {
		v = float64(int64(bits))
	}
	h := c.data.ByUID[in.UID]
	if h == nil {
		h = NewHistogram(c.bins)
		c.data.ByUID[in.UID] = h
	}
	h.Add(v)
}

// Data returns the collected profiles.
func (c *Collector) Data() *Data { return c.data }

// Merge folds other into d by re-adding bin midpoints weighted by count.
// This is an approximation (the underlying streams are gone), matching the
// paper's suggestion of combining profiles from multiple inputs.
func (d *Data) Merge(other *Data) {
	for uid, oh := range other.ByUID {
		h := d.ByUID[uid]
		if h == nil {
			h = NewHistogram(d.Bins)
			d.ByUID[uid] = h
		}
		for _, b := range oh.Bins {
			mid := (b.Lo + b.Hi) / 2
			for i := uint64(0); i < b.Count; i++ {
				if b.Lo == b.Hi {
					h.Add(b.Lo)
				} else {
					h.Add(mid)
				}
				// Cap replay cost: counts beyond 1e4 per bin add no
				// information to a 5-bin histogram.
				if i > 10_000 {
					break
				}
			}
		}
	}
}
