package profile

import (
	"bytes"
	"math"
	"reflect"
	"testing"

	"repro/internal/ir"
)

// FuzzProfileRoundTrip feeds arbitrary bytes to the profile loader. Inputs
// the loader rejects are fine; inputs it accepts must satisfy every
// histogram invariant and must round-trip: Load → Save → Load yields
// deeply-equal data (the serialized form is canonical, nothing is lost).
func FuzzProfileRoundTrip(f *testing.F) {
	// Seed with a real profile produced by the collector.
	col := NewCollector(DefaultBins)
	iInt := &ir.Instr{UID: 7, Ty: ir.I64}
	iFlt := &ir.Instr{UID: 9, Ty: ir.F64}
	for i := 0; i < 100; i++ {
		col.Record(iInt, uint64(i%5))
		col.Record(iFlt, math.Float64bits(float64(i)*0.25))
	}
	var buf bytes.Buffer
	if err := col.Data().Save(&buf, "seed"); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	f.Add([]byte(`{"version":1,"bins":5,"module":"m","hists":{}}`))
	f.Add([]byte(`{"version":1,"bins":5,"hists":{"3":{"total":2,"bins":[{"lo":1,"hi":1,"count":2}]}}}`))
	f.Add([]byte(`{"version":2}`))
	f.Add([]byte(`{`))

	f.Fuzz(func(t *testing.T, raw []byte) {
		d1, mod, err := Load(bytes.NewReader(raw))
		if err != nil {
			return
		}
		for uid, h := range d1.ByUID {
			if err := h.Invariant(); err != nil {
				t.Fatalf("loader accepted corrupt histogram for uid %d: %v", uid, err)
			}
		}
		var out bytes.Buffer
		if err := d1.Save(&out, mod); err != nil {
			t.Fatalf("save of loaded profile failed: %v", err)
		}
		d2, mod2, err := Load(bytes.NewReader(out.Bytes()))
		if err != nil {
			t.Fatalf("reload of saved profile failed: %v\n%s", err, out.String())
		}
		if mod2 != mod {
			t.Fatalf("module name did not round-trip: %q != %q", mod2, mod)
		}
		if !reflect.DeepEqual(normalize(d1), normalize(d2)) {
			t.Fatalf("profile did not round-trip:\nin:  %+v\nout: %+v", d1, d2)
		}
	})
}

// normalize clears fields Save does not persist (per-histogram bin bound is
// stored once at the top level) so DeepEqual compares only durable state.
func normalize(d *Data) *Data {
	for _, h := range d.ByUID {
		h.B = d.Bins
		if h.Bins == nil {
			h.Bins = []Bin{}
		}
	}
	return d
}
