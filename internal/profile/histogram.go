// Package profile implements the paper's value profiling: a bounded online
// histogram per value-generating instruction (Algorithm 1) and a greedy
// compact-range extraction (Algorithm 2). Profiles are keyed by stable
// instruction UIDs so they can be collected on one module clone and applied
// to another.
package profile

import (
	"fmt"
	"sort"
	"strings"
)

// DefaultBins is the histogram size used in the paper's experiments (B = 5).
const DefaultBins = 5

// Bin is one histogram bucket: the closed interval [Lo, Hi] with Count
// observed values.
type Bin struct {
	Lo, Hi float64
	Count  uint64
}

// Histogram is the paper's Algorithm 1: an online histogram with at most B
// bins. Inserting a value either increments a covering bin or adds a point
// bin and merges the two closest bins to restore the bound. Values are
// tracked as float64; integer instruction outputs are profiled via exact
// integer-valued floats (exact up to 2^53, far beyond the workloads' value
// ranges).
type Histogram struct {
	B    int
	Bins []Bin // sorted by Lo, non-overlapping
	// Total counts every added value, including ones merged away.
	Total uint64
}

// NewHistogram returns an empty histogram with the given bin bound.
func NewHistogram(b int) *Histogram {
	if b < 1 {
		b = 1
	}
	return &Histogram{B: b}
}

// AddUncheckable records an observation whose value cannot be represented
// exactly as a float64 (an int64 beyond 2^53, a NaN or an infinity). It
// counts toward Total but enters no bin, so the coverage of any planned
// check correctly reflects that this value would escape it. Without this
// accounting, a check planned from the representable observations fires on
// the unrepresentable ones — on the very input it was profiled on.
func (h *Histogram) AddUncheckable() {
	h.Total++
}

// Add inserts a value (Algorithm 1).
func (h *Histogram) Add(v float64) {
	h.Total++
	// Line 1-3: if v falls into an existing bin, bump it.
	i := sort.Search(len(h.Bins), func(i int) bool { return h.Bins[i].Hi >= v })
	if i < len(h.Bins) && h.Bins[i].Lo <= v && v <= h.Bins[i].Hi {
		h.Bins[i].Count++
		return
	}
	// Line 5-6: insert a point bin, keeping bins sorted.
	h.Bins = append(h.Bins, Bin{})
	copy(h.Bins[i+1:], h.Bins[i:])
	h.Bins[i] = Bin{Lo: v, Hi: v, Count: 1}
	if len(h.Bins) <= h.B {
		return
	}
	// Line 7-8: merge the pair with the smallest gap.
	best := 0
	bestGap := h.Bins[1].Lo - h.Bins[0].Hi
	for j := 1; j < len(h.Bins)-1; j++ {
		gap := h.Bins[j+1].Lo - h.Bins[j].Hi
		if gap < bestGap {
			bestGap = gap
			best = j
		}
	}
	h.Bins[best] = Bin{
		Lo:    h.Bins[best].Lo,
		Hi:    h.Bins[best+1].Hi,
		Count: h.Bins[best].Count + h.Bins[best+1].Count,
	}
	h.Bins = append(h.Bins[:best+1], h.Bins[best+2:]...)
}

// Range is a compact value range with its observed population.
type Range struct {
	Lo, Hi float64
	Count  uint64
}

// CompactRange is the paper's Algorithm 2: pick the highest-frequency bin
// and greedily absorb the more popular neighbor while the range width stays
// within rthr (or until bins run out). Returns the resulting range and the
// fraction of all observed values it covers.
func (h *Histogram) CompactRange(rthr float64) (Range, float64) {
	if len(h.Bins) == 0 {
		return Range{}, 0
	}
	// Line 1: seed with the max-frequency bin.
	best := 0
	for i, b := range h.Bins {
		if b.Count > h.Bins[best].Count {
			best = i
		}
	}
	lo, hi := best, best
	ret := h.Bins[best]
	// Line 5-14: extend toward the heavier neighbor while within threshold.
	for ret.Hi-ret.Lo <= rthr && (lo > 0 || hi < len(h.Bins)-1) {
		var leftCount, rightCount uint64
		hasLeft, hasRight := lo > 0, hi < len(h.Bins)-1
		if hasLeft {
			leftCount = h.Bins[lo-1].Count
		}
		if hasRight {
			rightCount = h.Bins[hi+1].Count
		}
		var cand Range
		var takeLeft bool
		if hasLeft && (!hasRight || leftCount >= rightCount) {
			cand = Range{Lo: h.Bins[lo-1].Lo, Hi: ret.Hi, Count: ret.Count + leftCount}
			takeLeft = true
		} else {
			cand = Range{Lo: ret.Lo, Hi: h.Bins[hi+1].Hi, Count: ret.Count + rightCount}
		}
		if cand.Hi-cand.Lo > rthr {
			break // absorbing would blow the width budget
		}
		ret = Bin{Lo: cand.Lo, Hi: cand.Hi, Count: cand.Count}
		if takeLeft {
			lo--
		} else {
			hi++
		}
	}
	cov := 0.0
	if h.Total > 0 {
		cov = float64(ret.Count) / float64(h.Total)
	}
	return Range{Lo: ret.Lo, Hi: ret.Hi, Count: ret.Count}, cov
}

// TopValues returns up to n single values (point bins) ordered by
// decreasing frequency, with their combined coverage of all observations.
// Used for the paper's single-value and two-value checks (Figure 6 a/b).
func (h *Histogram) TopValues(n int) ([]float64, float64) {
	type pv struct {
		v float64
		c uint64
	}
	var points []pv
	for _, b := range h.Bins {
		if b.Lo == b.Hi {
			points = append(points, pv{b.Lo, b.Count})
		}
	}
	sort.Slice(points, func(i, j int) bool {
		if points[i].c != points[j].c {
			return points[i].c > points[j].c
		}
		return points[i].v < points[j].v
	})
	if len(points) > n {
		points = points[:n]
	}
	var vals []float64
	var covered uint64
	for _, p := range points {
		vals = append(vals, p.v)
		covered += p.c
	}
	cov := 0.0
	if h.Total > 0 {
		cov = float64(covered) / float64(h.Total)
	}
	return vals, cov
}

func (h *Histogram) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "hist(total=%d)", h.Total)
	for _, bin := range h.Bins {
		fmt.Fprintf(&b, " [%g,%g]:%d", bin.Lo, bin.Hi, bin.Count)
	}
	return b.String()
}

// Invariant checks internal consistency (tests call this after random
// insertion sequences).
func (h *Histogram) Invariant() error {
	if len(h.Bins) > h.B {
		return fmt.Errorf("bin count %d exceeds bound %d", len(h.Bins), h.B)
	}
	var sum uint64
	for i, b := range h.Bins {
		if b.Lo > b.Hi {
			return fmt.Errorf("bin %d inverted: [%g,%g]", i, b.Lo, b.Hi)
		}
		if i > 0 && h.Bins[i-1].Hi >= b.Lo {
			return fmt.Errorf("bins %d,%d overlap or touch out of order", i-1, i)
		}
		if b.Count == 0 {
			return fmt.Errorf("bin %d empty", i)
		}
		sum += b.Count
	}
	// Total may exceed the bin sum: uncheckable observations (see
	// AddUncheckable) are counted but never binned.
	if sum > h.Total {
		return fmt.Errorf("bin counts %d exceed total %d", sum, h.Total)
	}
	return nil
}
