package profile

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/ir"
)

func TestHistogramSingleValue(t *testing.T) {
	h := NewHistogram(5)
	for i := 0; i < 100; i++ {
		h.Add(42)
	}
	if len(h.Bins) != 1 {
		t.Fatalf("bins = %d, want 1", len(h.Bins))
	}
	if h.Bins[0].Lo != 42 || h.Bins[0].Hi != 42 || h.Bins[0].Count != 100 {
		t.Fatalf("bin = %+v", h.Bins[0])
	}
	vals, cov := h.TopValues(1)
	if len(vals) != 1 || vals[0] != 42 || cov != 1.0 {
		t.Fatalf("top values = %v cov %v", vals, cov)
	}
}

func TestHistogramTwoValues(t *testing.T) {
	h := NewHistogram(5)
	for i := 0; i < 70; i++ {
		h.Add(0)
	}
	for i := 0; i < 30; i++ {
		h.Add(1000)
	}
	vals, cov := h.TopValues(2)
	if len(vals) != 2 || cov != 1.0 {
		t.Fatalf("top2 = %v cov %v", vals, cov)
	}
	if vals[0] != 0 || vals[1] != 1000 {
		t.Fatalf("top2 order = %v (want most frequent first)", vals)
	}
}

func TestHistogramMergesClosestBins(t *testing.T) {
	h := NewHistogram(2)
	h.Add(0)
	h.Add(100)
	h.Add(101) // closest to 100: merge -> [100,101]
	if len(h.Bins) != 2 {
		t.Fatalf("bins = %d, want 2: %s", len(h.Bins), h)
	}
	if h.Bins[1].Lo != 100 || h.Bins[1].Hi != 101 || h.Bins[1].Count != 2 {
		t.Fatalf("merged bin = %+v", h.Bins[1])
	}
	if err := h.Invariant(); err != nil {
		t.Fatal(err)
	}
}

// TestHistogramInvariantUnderRandomStreams is the Algorithm 1 property
// test: any insertion stream preserves bin bound, ordering, and counts.
func TestHistogramInvariantUnderRandomStreams(t *testing.T) {
	cfg := &quick.Config{MaxCount: 200}
	f := func(seed int64, nRaw uint8, bRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		b := int(bRaw%8) + 1
		h := NewHistogram(b)
		n := int(nRaw) + 1
		for i := 0; i < n; i++ {
			switch rng.Intn(3) {
			case 0:
				h.Add(float64(rng.Intn(10))) // heavy collisions
			case 1:
				h.Add(float64(rng.Intn(10000)))
			default:
				h.Add(rng.NormFloat64() * 1e6)
			}
			if err := h.Invariant(); err != nil {
				t.Logf("seed=%d n=%d b=%d: %v", seed, n, b, err)
				return false
			}
		}
		return h.Total == uint64(n)
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestCompactRangeSeedsAtMaxBin(t *testing.T) {
	h := NewHistogram(5)
	for i := 0; i < 5; i++ {
		h.Add(1)
	}
	for i := 0; i < 90; i++ {
		h.Add(500)
	}
	for i := 0; i < 5; i++ {
		h.Add(1e9)
	}
	r, cov := h.CompactRange(0) // zero width: only the seed bin
	if r.Lo != 500 || r.Hi != 500 {
		t.Fatalf("range = %+v, want the 500 point bin", r)
	}
	if math.Abs(cov-0.9) > 1e-9 {
		t.Fatalf("coverage = %v, want 0.9", cov)
	}
}

func TestCompactRangeExtendsTowardHeavierNeighbor(t *testing.T) {
	h := NewHistogram(5)
	for i := 0; i < 50; i++ {
		h.Add(100)
	}
	for i := 0; i < 30; i++ {
		h.Add(90) // heavier neighbor
	}
	for i := 0; i < 10; i++ {
		h.Add(110)
	}
	r, cov := h.CompactRange(15) // room to absorb one neighbor only
	if r.Lo != 90 || r.Hi != 100 {
		t.Fatalf("range = %+v, want [90,100]", r)
	}
	if math.Abs(cov-0.8/0.9) > 1e-9 {
		t.Fatalf("coverage = %v", cov)
	}
}

func TestCompactRangeWidthRespectsThreshold(t *testing.T) {
	f := func(seed int64, thrRaw uint16) bool {
		rng := rand.New(rand.NewSource(seed))
		h := NewHistogram(5)
		for i := 0; i < 200; i++ {
			h.Add(float64(rng.Intn(1000)))
		}
		thr := float64(thrRaw % 500)
		r, cov := h.CompactRange(thr)
		// The returned range is either a single bin (whose width may
		// exceed thr because bins are merged, not split) or must respect
		// the threshold after extension steps.
		if cov < 0 || cov > 1 {
			return false
		}
		seedOnly, _ := h.CompactRange(0)
		if r.Hi-r.Lo > thr && (r.Lo != seedOnly.Lo || r.Hi != seedOnly.Hi) {
			// wider than thr is only legal for the unextended seed bin
			return false
		}
		return r.Lo <= r.Hi
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestCollectorRoutesByUIDAndType(t *testing.T) {
	c := NewCollector(5)
	i1 := &ir.Instr{UID: 1, Ty: ir.I64}
	i2 := &ir.Instr{UID: 2, Ty: ir.F64}
	neg7 := int64(-7)
	c.Record(i1, uint64(neg7))
	c.Record(i1, uint64(neg7))
	c.Record(i2, math.Float64bits(2.5))
	c.Record(i2, math.Float64bits(math.NaN())) // counted but not binned

	d := c.Data()
	h1 := d.Hist(1)
	if h1 == nil || h1.Total != 2 || h1.Bins[0].Lo != -7 {
		t.Fatalf("int profile wrong: %v", h1)
	}
	h2 := d.Hist(2)
	if h2 == nil || h2.Total != 2 || len(h2.Bins) != 1 || h2.Bins[0].Lo != 2.5 || h2.Bins[0].Count != 1 {
		t.Fatalf("float profile wrong: %v", h2)
	}
	if _, cov := h2.TopValues(1); cov != 0.5 {
		t.Fatalf("NaN observation must deflate coverage: got %v, want 0.5", cov)
	}
}

func TestMergeCombinesProfiles(t *testing.T) {
	a := NewCollector(5)
	b := NewCollector(5)
	in := &ir.Instr{UID: 9, Ty: ir.I64}
	for i := 0; i < 10; i++ {
		a.Record(in, 5)
		b.Record(in, 8)
	}
	d := a.Data()
	d.Merge(b.Data())
	h := d.Hist(9)
	if h.Total != 20 {
		t.Fatalf("merged total = %d, want 20", h.Total)
	}
	r, cov := h.CompactRange(10)
	if r.Lo != 5 || r.Hi != 8 || cov != 1 {
		t.Fatalf("merged range = %+v cov %v", r, cov)
	}
}
