package profile

import (
	"encoding/json"
	"fmt"
	"io"
)

// fileFormat is the on-disk JSON shape. Profiles are keyed by stable
// instruction UIDs, so a saved profile applies to any clone of the module
// it was collected on (and becomes useless if the source is recompiled
// with different UIDs — Save records the module name as a weak guard).
type fileFormat struct {
	Version int                  `json:"version"`
	Module  string               `json:"module"`
	Bins    int                  `json:"bins"`
	Hists   map[int]histSnapshot `json:"hists"`
}

type histSnapshot struct {
	Total uint64    `json:"total"`
	Bins  []binSnap `json:"bins"`
}

type binSnap struct {
	Lo    float64 `json:"lo"`
	Hi    float64 `json:"hi"`
	Count uint64  `json:"count"`
}

const formatVersion = 1

// Save writes the profile data as JSON.
func (d *Data) Save(w io.Writer, module string) error {
	ff := fileFormat{Version: formatVersion, Module: module, Bins: d.Bins, Hists: map[int]histSnapshot{}}
	for uid, h := range d.ByUID {
		hs := histSnapshot{Total: h.Total}
		for _, b := range h.Bins {
			hs.Bins = append(hs.Bins, binSnap{Lo: b.Lo, Hi: b.Hi, Count: b.Count})
		}
		ff.Hists[uid] = hs
	}
	enc := json.NewEncoder(w)
	return enc.Encode(ff)
}

// Load reads a profile saved with Save. The returned module name lets the
// caller verify the profile matches the program it is applied to.
func Load(r io.Reader) (*Data, string, error) {
	var ff fileFormat
	if err := json.NewDecoder(r).Decode(&ff); err != nil {
		return nil, "", fmt.Errorf("profile: decode: %w", err)
	}
	if ff.Version != formatVersion {
		return nil, "", fmt.Errorf("profile: unsupported version %d", ff.Version)
	}
	if ff.Bins <= 0 {
		return nil, "", fmt.Errorf("profile: invalid bin bound %d", ff.Bins)
	}
	d := &Data{Bins: ff.Bins, ByUID: map[int]*Histogram{}}
	for uid, hs := range ff.Hists {
		h := &Histogram{B: ff.Bins, Total: hs.Total}
		for _, b := range hs.Bins {
			h.Bins = append(h.Bins, Bin{Lo: b.Lo, Hi: b.Hi, Count: b.Count})
		}
		if err := h.Invariant(); err != nil {
			return nil, "", fmt.Errorf("profile: uid %d: corrupt histogram: %w", uid, err)
		}
		d.ByUID[uid] = h
	}
	return d, ff.Module, nil
}
