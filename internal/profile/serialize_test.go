package profile

import (
	"bytes"
	"math"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/ir"
)

func TestSaveLoadRoundTrip(t *testing.T) {
	c := NewCollector(5)
	rng := rand.New(rand.NewSource(3))
	instrs := []*ir.Instr{
		{UID: 1, Ty: ir.I64},
		{UID: 2, Ty: ir.I64},
		{UID: 3, Ty: ir.F64},
	}
	for i := 0; i < 5000; i++ {
		in := instrs[rng.Intn(len(instrs))]
		if in.Ty == ir.F64 {
			c.Record(in, math.Float64bits(rng.NormFloat64()*100))
		} else {
			c.Record(in, uint64(rng.Int63n(1000)))
		}
	}
	d := c.Data()

	var buf bytes.Buffer
	if err := d.Save(&buf, "testmod"); err != nil {
		t.Fatal(err)
	}
	got, module, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if module != "testmod" {
		t.Errorf("module = %q", module)
	}
	if got.Bins != d.Bins || len(got.ByUID) != len(d.ByUID) {
		t.Fatalf("shape differs: %d/%d hists", len(got.ByUID), len(d.ByUID))
	}
	for uid, h := range d.ByUID {
		g := got.ByUID[uid]
		if g == nil {
			t.Fatalf("uid %d missing", uid)
		}
		if g.Total != h.Total || len(g.Bins) != len(h.Bins) {
			t.Fatalf("uid %d differs: %s vs %s", uid, g, h)
		}
		for i := range h.Bins {
			if g.Bins[i] != h.Bins[i] {
				t.Fatalf("uid %d bin %d differs", uid, i)
			}
		}
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	cases := []string{
		"not json",
		`{"version": 99, "bins": 5, "hists": {}}`,
		`{"version": 1, "bins": 0, "hists": {}}`,
		`{"version": 1, "bins": 2, "hists": {"1": {"total": 5, "bins": [{"lo":0,"hi":1,"count":1},{"lo":2,"hi":3,"count":1},{"lo":4,"hi":5,"count":3}]}}}`, // 3 bins > bound 2
		`{"version": 1, "bins": 5, "hists": {"1": {"total": 1, "bins": [{"lo":5,"hi":1,"count":1}]}}}`,                                                     // inverted bin
	}
	for _, c := range cases {
		if _, _, err := Load(strings.NewReader(c)); err == nil {
			t.Errorf("accepted corrupt profile: %s", c)
		}
	}
}
