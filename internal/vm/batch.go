package vm

// Lockstep batched trial execution. A fault campaign's checkpoint bin is a
// set of trials that all restore the same snapshot and are bit-identical to
// the golden instruction stream until their own fault triggers. Executing
// them one at a time re-decodes and re-executes that shared prefix once per
// trial; a literal SIMT batch (N register files advanced under one decode)
// would compute N copies of the *same* values, because the only divergence
// events before a trial's trigger are the triggers themselves. The optimal
// lockstep schedule therefore degenerates — profitably — to a single
// *carrier* machine:
//
//   - the carrier restores the bin snapshot (or resets, for the scratch
//     bin) and advances under one issue cursor, one linst decode;
//   - each trial occupies a lane slot holding only its divergence point
//     (the first dyn index at which its state can differ from golden);
//   - lanes are peeled in ascending divergence order: the carrier suspends
//     at the lane's peel point (the engine's unified event threshold makes
//     this free when idle) and its suspended state is cloned into the
//     trial's solo machine with Machine.RestoreFrom — one memory copy, the
//     same cost the solo path pays for its per-trial snapshot Restore;
//   - the peeled machine runs the divergent suffix on the unmodified solo
//     engine, so every Result field is produced by exactly the code path
//     the equivalence suites already pin down.
//
// Bit-identity argument: the suspend point uses the same eligibility
// condition as register-fault injection (first non-phi instruction whose
// pre-increment dyn reaches the requested index — see snapshot.go), a
// pending fault has zero architectural effect before its trigger, and
// RestoreFrom writes exactly the field set Snapshot/Restore round-trips.
// A peeled trial is therefore in the bit-identical machine state the solo
// path reaches by Restore(binSnapshot) + run-to-trigger, and its suffix is
// executed by the identical engine. Lanes that share a divergence point
// share one carrier suspension; a lane may be re-peeled (the campaign's
// timeout retry) because peeling never consumes carrier state.

import (
	"errors"
	"fmt"
)

// ErrBatchStopped reports that the carrier's Stop channel was closed while
// advancing the shared prefix (context cancellation mid-batch). The batch
// holds no usable state afterwards; Reset re-arms it.
var ErrBatchStopped = errors.New("vm: lockstep carrier stopped")

// BatchOptions configures the carrier run. The carrier executes golden
// prefix only, so it takes the campaign's DisabledChecks (exactly what the
// instrumented snapshot run uses) and a Stop channel for cancellation; it
// needs no fault plan, tracer, or deadline — its advance is bounded by the
// machine's dynamic-instruction watchdog.
type BatchOptions struct {
	// DisabledChecks must match the set every trial in the bin runs with;
	// disabled checks leave no trace in any counter, so the carrier state
	// stays bit-identical to a solo trial's prefix.
	DisabledChecks map[int]bool
	// Stop, when non-nil, aborts a carrier advance once closed; Peel then
	// returns ErrBatchStopped.
	Stop <-chan struct{}
	// Fuse selects the carrier's superinstruction dispatch mode (fuse.go).
	// Fused and unfused advances are bit-identical, so this is a pure
	// throughput knob; it should match the trials' mode for symmetry only.
	Fuse FuseMode
}

// BatchMachine executes one checkpoint bin of fault-campaign trials in
// lockstep: a carrier machine advances the shared golden prefix once, and
// each trial lane peels off into a solo machine at its divergence point.
// Not safe for concurrent use; the campaign gives each worker its own.
type BatchMachine struct {
	carrier *Machine
	opts    BatchOptions

	base *Snapshot // bin snapshot; nil for the scratch bin (prefix from dyn 0)

	// Lane state, struct-of-arrays: slot i belongs to the i-th AddLane call.
	peelDyn []int64 // divergence point per lane (first dyn the lane's state may differ)
	peeled  []bool  // lane has been cloned out at least once

	at   int64 // carrier position: the last requested suspend index
	live bool  // carrier holds state for this bin (restored or reset)
}

// NewBatch wraps carrier — a machine bound to the campaign target, owned
// exclusively by the batch from here on — as a lockstep carrier. Snapshots
// and suspension are fast-engine features, so batching is too.
func NewBatch(carrier *Machine, opts BatchOptions) (*BatchMachine, error) {
	if carrier.eng == nil {
		return nil, fmt.Errorf("vm: lockstep batching requires the fast engine")
	}
	return &BatchMachine{carrier: carrier, opts: opts}, nil
}

// Reset rebinds the batch to one checkpoint bin: every lane restores from
// base (nil for the scratch bin, which replays the prefix from dyn 0).
// Existing lanes are discarded; the carrier is re-armed lazily on the first
// Peel, so resetting an exhausted batch costs nothing.
func (b *BatchMachine) Reset(base *Snapshot) {
	b.base = base
	b.peelDyn = b.peelDyn[:0]
	b.peeled = b.peeled[:0]
	b.at = 0
	b.live = false
}

// Base returns the bin snapshot the batch was Reset to (nil for scratch).
func (b *BatchMachine) Base() *Snapshot { return b.base }

// Lanes returns the number of registered lanes.
func (b *BatchMachine) Lanes() int { return len(b.peelDyn) }

// Remaining counts lanes not yet peeled.
func (b *BatchMachine) Remaining() int {
	n := 0
	for _, p := range b.peeled {
		if !p {
			n++
		}
	}
	return n
}

// AddLane registers one trial lane diverging at peelDyn and returns its
// lane index. Lanes may be registered in any order; Peel consumes them in
// nondecreasing peelDyn order.
func (b *BatchMachine) AddLane(peelDyn int64) int {
	b.peelDyn = append(b.peelDyn, peelDyn)
	b.peeled = append(b.peeled, false)
	return len(b.peelDyn) - 1
}

// Peel advances the carrier to the lane's divergence point and clones the
// suspended state into `into`, which is left suspended there: its next Run
// executes the lane's divergent suffix on the solo engine. Peels must come
// in nondecreasing peelDyn order (the carrier only moves forward); lanes
// sharing a peelDyn share one carrier suspension, and re-peeling the lane
// at the carrier's current position is allowed — peeling copies, it never
// consumes.
//
// A lane of the scratch bin with peelDyn <= 0 diverges at or before the
// first instruction: it peels "at origin" via into.Reset(), the exact state
// a from-scratch solo trial starts in, without touching the carrier.
func (b *BatchMachine) Peel(lane int, into *Machine) error {
	if lane < 0 || lane >= len(b.peelDyn) {
		return fmt.Errorf("vm: batch has no lane %d", lane)
	}
	if into == b.carrier {
		return fmt.Errorf("vm: cannot peel a lane into the carrier")
	}
	d := b.peelDyn[lane]
	if b.base == nil && d <= 0 {
		into.Reset()
		b.peeled[lane] = true
		return nil
	}
	if b.base != nil && d < b.base.Dyn() {
		return fmt.Errorf("vm: lane %d diverges at dyn %d, before its bin snapshot at dyn %d",
			lane, d, b.base.Dyn())
	}
	if b.live && d < b.at {
		return fmt.Errorf("vm: lockstep peel order violated: lane %d at dyn %d behind carrier at dyn %d",
			lane, d, b.at)
	}
	if !b.live {
		if b.base != nil {
			if err := b.carrier.Restore(b.base); err != nil {
				return err
			}
			b.at = b.base.Dyn()
		} else {
			b.carrier.Reset()
			b.at = 0
		}
		b.live = true
	}
	// Advance only when the lane's divergence point lies ahead of the
	// carrier's suspension. A restored carrier is already suspended at the
	// snapshot index; a reset one holds no suspension and must run even for
	// d == 0 (impossible here: scratch lanes with d <= 0 peeled at origin
	// above, so d >= 1 > b.at when the chain is empty).
	if d > b.at || len(b.carrier.susp) == 0 {
		res := b.carrier.Run(RunOptions{
			DisabledChecks: b.opts.DisabledChecks,
			Stop:           b.opts.Stop,
			SuspendAtDyn:   d,
			Fuse:           b.opts.Fuse,
		})
		switch {
		case res.Trap != nil && res.Trap.Kind == TrapSuspended:
			// The carrier parked at the first fault-eligible instruction
			// with dyn >= d — the exact point the lane's fault would fire.
		case res.Trap != nil && res.Trap.Kind == TrapCancelled:
			b.live = false
			return ErrBatchStopped
		default:
			// The golden prefix cannot legitimately trap or complete before
			// a divergence point inside it; anything else is an
			// infrastructure fault, not a trial outcome.
			b.live = false
			return fmt.Errorf("vm: lockstep carrier diverged advancing to dyn %d: %v", d, res.Trap)
		}
		b.at = d
	}
	if err := into.RestoreFrom(b.carrier); err != nil {
		return err
	}
	b.peeled[lane] = true
	return nil
}

// RestoreFrom re-arms m with the suspended execution state of src — the
// machine-to-machine analogue of src.Snapshot() followed by m.Restore,
// without materializing the intermediate immutable copy (one memory copy
// instead of two, no per-peel allocations). src must be suspended on the
// fast engine over the same module revision and geometry; it is not mutated
// and stays suspended, so one carrier can seed any number of peels. m is
// left suspended at src's suspend point: its next Run continues from there,
// bit-identically to a run resumed on src itself.
func (m *Machine) RestoreFrom(src *Machine) error {
	if m == src {
		return fmt.Errorf("vm: RestoreFrom onto the source machine")
	}
	if m.eng == nil || src.eng == nil {
		return fmt.Errorf("vm: RestoreFrom requires the fast engine")
	}
	if src.eng != m.eng {
		return fmt.Errorf("vm: source machine belongs to a different module revision")
	}
	if len(src.susp) == 0 {
		return fmt.Errorf("vm: source machine is not suspended (Run must return a %v trap first)", TrapSuspended)
	}
	if len(src.mem) != len(m.mem) ||
		len(src.timing.cacheTags) != len(m.timing.cacheTags) ||
		len(src.timing.predictor) != len(m.timing.predictor) {
		return fmt.Errorf("vm: source machine geometry differs")
	}
	// Mirror Restore field for field (snapshot.go documents the set); the
	// equivalence of that set to an uninterrupted run is established by the
	// snapshot suite, so this clone inherits it.
	for _, l := range m.susp {
		m.putFrame(l.ef, l.fr)
	}
	m.susp = m.susp[:0]
	m.resuming = nil
	m.resumePos = -1

	copy(m.mem, src.mem)
	m.sp = src.sp
	m.dyn = src.dyn
	m.laxPhis = src.laxPhis
	m.checkFails = src.checkFails
	m.perCheckFails = nil
	if src.perCheckFails != nil {
		m.perCheckFails = make(map[int]int64, len(src.perCheckFails))
		for id, n := range src.perCheckFails {
			m.perCheckFails[id] = n
		}
	}
	m.opCounts = src.opCounts
	for i, rc := range src.regionCounts {
		copy(m.regionCounts[i], rc)
	}
	tm, st := m.timing, src.timing
	tm.cursor, tm.slotUsed, tm.maxDone = st.cursor, st.slotUsed, st.maxDone
	copy(tm.cacheTags, st.cacheTags)
	copy(tm.predictor, st.predictor)

	for _, l := range src.susp {
		fr := m.getFrame(l.ef)
		fr.entrySP = l.fr.entrySP
		for _, slot := range l.fr.live {
			fr.regs[slot] = l.fr.regs[slot]
			fr.defined[slot] = true
		}
		fr.live = append(fr.live[:0], l.fr.live...)
		m.susp = append(m.susp, suspLevel{ef: l.ef, fr: fr, pc: l.pc})
	}
	return nil
}
