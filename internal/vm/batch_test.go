package vm_test

// Lockstep batch executor tests: a lane peeled from a carrier at dyn D must
// be bit-identical — on every observable the solo engine publishes — to a
// machine that reached D on its own (from scratch or from a snapshot). The
// suite pins the peel protocol's edges: origin peel (divergence at or
// before dyn 0), divergence on the last instruction, equal-dyn lane
// sharing, re-peel (the campaign's timeout retry), monotonicity errors, and
// cancellation mid-advance.

import (
	"math/rand"
	"sort"
	"testing"

	"repro/internal/vm"
	"repro/internal/workloads"
)

// diffPeeled fails the test unless two completed runs agree on every Result
// field and the workload output.
func diffPeeled(t *testing.T, label string, a, b *vm.Result, aout, bout []uint64) {
	t.Helper()
	if (a.Trap == nil) != (b.Trap == nil) {
		t.Fatalf("%s: trap mismatch: %v vs %v", label, a.Trap, b.Trap)
	}
	if a.Trap != nil && *a.Trap != *b.Trap {
		t.Fatalf("%s: traps differ: %+v vs %+v", label, *a.Trap, *b.Trap)
	}
	if a.Ret != b.Ret || a.Dyn != b.Dyn || a.Cycles != b.Cycles || a.CheckFails != b.CheckFails {
		t.Fatalf("%s: results differ:\n%+v\n%+v", label, a, b)
	}
	if a.OpCounts != b.OpCounts {
		t.Fatalf("%s: OpCounts differ", label)
	}
	for i := range aout {
		if aout[i] != bout[i] {
			t.Fatalf("%s: out[%d]: %#x vs %#x", label, i, aout[i], bout[i])
		}
	}
}

// TestBatchPeelEquivalence peels fault-free lanes at edge divergence points
// — origin, first instruction, midpoint, a shared duplicate, and the last
// instruction — and requires each peeled run to finish bit-identically to
// the uninterrupted baseline.
func TestBatchPeelEquivalence(t *testing.T) {
	w := workloads.ByName("tiff2bw")
	mod, err := w.Compile()
	if err != nil {
		t.Fatal(err)
	}
	base := runEngine(t, w, mod, vm.EngineFast, workloads.Test, vm.RunOptions{})
	if base.res.Trap != nil {
		t.Fatalf("baseline trapped: %v", base.res.Trap)
	}
	dyn := base.res.Dyn

	carrier, err := vm.New(mod, vm.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Bind(carrier, workloads.Test); err != nil {
		t.Fatal(err)
	}
	batch, err := vm.NewBatch(carrier, vm.BatchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	batch.Reset(nil)

	mach, err := vm.New(mod, vm.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Bind(mach, workloads.Test); err != nil {
		t.Fatal(err)
	}

	// Ascending peel points; dyn/2 appears twice to exercise lane sharing.
	peels := []int64{-1, 0, 1, dyn / 2, dyn / 2, dyn - 1}
	lanes := make([]int, len(peels))
	for i, d := range peels {
		lanes[i] = batch.AddLane(d)
	}
	if batch.Lanes() != len(peels) || batch.Remaining() != len(peels) {
		t.Fatalf("lane accounting: Lanes=%d Remaining=%d", batch.Lanes(), batch.Remaining())
	}
	for i, lane := range lanes {
		if err := batch.Peel(lane, mach); err != nil {
			t.Fatalf("peel lane %d (dyn %d): %v", lane, peels[i], err)
		}
		res := mach.Run(vm.RunOptions{})
		out, err := mach.ReadGlobal(w.Output)
		if err != nil {
			t.Fatal(err)
		}
		diffPeeled(t, w.Name+"/peel", res, base.res, out, base.out)
	}
	if batch.Remaining() != 0 {
		t.Fatalf("Remaining after all peels: %d", batch.Remaining())
	}
}

// TestBatchFaultTrialEquivalence mirrors the campaign's lockstep bin shape:
// trials with randomized triggers are sorted by effective divergence point,
// peeled in order from one carrier — scratch bin and snapshot bin both —
// and each faulted suffix must match the same trial run solo, for register
// and branch-target fault models alike. This is the vm-level half of the
// TestCampaignLockstepEquivalence acceptance gate.
func TestBatchFaultTrialEquivalence(t *testing.T) {
	w := workloads.ByName("tiff2bw")
	mod, err := w.Compile()
	if err != nil {
		t.Fatal(err)
	}
	golden := runEngine(t, w, mod, vm.EngineFast, workloads.Test, vm.RunOptions{})
	goldenDyn := golden.res.Dyn

	// One mid-run snapshot for the snapshot-bin variant.
	producer, err := vm.New(mod, vm.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Bind(producer, workloads.Test); err != nil {
		t.Fatal(err)
	}
	producer.Reset()
	snapDyn := goldenDyn / 3
	if res := producer.Run(vm.RunOptions{SuspendAtDyn: snapDyn}); res.Trap == nil || res.Trap.Kind != vm.TrapSuspended {
		t.Fatalf("expected suspension, got %v", res.Trap)
	}
	snap, err := producer.Snapshot()
	if err != nil {
		t.Fatal(err)
	}

	carrier, err := vm.New(mod, vm.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Bind(carrier, workloads.Test); err != nil {
		t.Fatal(err)
	}
	batch, err := vm.NewBatch(carrier, vm.BatchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	mach, err := vm.New(mod, vm.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Bind(mach, workloads.Test); err != nil {
		t.Fatal(err)
	}

	seeds := int64(30)
	if raceEnabled {
		seeds = 8
	}
	for _, kind := range []vm.FaultKind{vm.FaultRegister, vm.FaultBranchTarget} {
		for _, useSnap := range []bool{false, true} {
			type lane struct {
				seed    int64
				trigger int64
				eff     int64
				id      int
			}
			var lns []lane
			for seed := int64(0); seed < seeds; seed++ {
				rng := rand.New(rand.NewSource(seed))
				trigger := rng.Int63n(goldenDyn)
				eff := trigger
				if kind == vm.FaultBranchTarget {
					eff--
				}
				if useSnap && eff < snapDyn {
					continue // the campaign bins these elsewhere
				}
				lns = append(lns, lane{seed: seed, trigger: trigger, eff: eff})
			}
			sort.SliceStable(lns, func(i, j int) bool { return lns[i].eff < lns[j].eff })

			var base *vm.Snapshot
			if useSnap {
				base = snap
			}
			batch.Reset(base)
			for i := range lns {
				lns[i].id = batch.AddLane(lns[i].eff)
			}
			for _, ln := range lns {
				plan := func(r *rand.Rand) *vm.FaultPlan {
					return &vm.FaultPlan{
						Kind:       kind,
						TriggerDyn: ln.trigger,
						PickSlot:   func(n int) int { return r.Intn(n) },
						PickBit:    func() int { return r.Intn(64) },
					}
				}
				rng := rand.New(rand.NewSource(ln.seed))
				rng.Int63n(goldenDyn) // consume the trigger draw
				solo := runEngine(t, w, mod, vm.EngineFast, workloads.Test, vm.RunOptions{Fault: plan(rng)})

				if err := batch.Peel(ln.id, mach); err != nil {
					t.Fatalf("peel seed %d (eff %d): %v", ln.seed, ln.eff, err)
				}
				rng2 := rand.New(rand.NewSource(ln.seed))
				rng2.Int63n(goldenDyn)
				res := mach.Run(vm.RunOptions{Fault: plan(rng2)})
				out, err := mach.ReadGlobal(w.Output)
				if err != nil {
					t.Fatal(err)
				}
				diffPeeled(t, w.Name+"/lockstep-trial", res, solo.res, out, solo.out)
			}
		}
	}
}

// TestBatchMisuseAndCancel covers the protocol's error surface and
// cancellation: out-of-order peels, lanes below the bin snapshot, unknown
// lanes, peeling into the carrier, tree-engine carriers, RestoreFrom
// misuse, a Stop channel closing mid-advance, and Reset re-arming an
// aborted batch.
func TestBatchMisuseAndCancel(t *testing.T) {
	w := workloads.ByName("tiff2bw")
	mod, err := w.Compile()
	if err != nil {
		t.Fatal(err)
	}
	newMach := func(engine vm.EngineKind) *vm.Machine {
		cfg := vm.DefaultConfig()
		cfg.Engine = engine
		m, err := vm.New(mod, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if err := w.Bind(m, workloads.Test); err != nil {
			t.Fatal(err)
		}
		m.Reset()
		return m
	}
	base := newMach(vm.EngineFast)
	res := base.Run(vm.RunOptions{})
	if res.Trap != nil {
		t.Fatalf("baseline trapped: %v", res.Trap)
	}
	dyn := res.Dyn

	if _, err := vm.NewBatch(newMach(vm.EngineTree), vm.BatchOptions{}); err == nil {
		t.Fatal("NewBatch on the tree engine must error")
	}

	carrier := newMach(vm.EngineFast)
	batch, err := vm.NewBatch(carrier, vm.BatchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	batch.Reset(nil)
	mach := newMach(vm.EngineFast)

	if err := batch.Peel(0, mach); err == nil {
		t.Fatal("peeling an unregistered lane must error")
	}
	late := batch.AddLane(dyn / 2)
	early := batch.AddLane(dyn / 4)
	if err := batch.Peel(late, mach); err != nil {
		t.Fatal(err)
	}
	if err := batch.Peel(early, mach); err == nil {
		t.Fatal("peeling behind the carrier must error")
	}
	// Re-peel at the carrier's position stays legal (timeout retry).
	if err := batch.Peel(late, mach); err != nil {
		t.Fatalf("re-peel at carrier position: %v", err)
	}
	if err := batch.Peel(late, carrier); err == nil {
		t.Fatal("peeling into the carrier must error")
	}

	// RestoreFrom misuse: unsuspended source, self-restore, foreign module.
	if err := mach.RestoreFrom(mach); err == nil {
		t.Fatal("RestoreFrom self must error")
	}
	idle := newMach(vm.EngineFast)
	if err := mach.RestoreFrom(idle); err == nil {
		t.Fatal("RestoreFrom an unsuspended machine must error")
	}
	foreign, err := vm.New(mod.Clone(), vm.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Bind(foreign, workloads.Test); err != nil {
		t.Fatal(err)
	}
	foreign.Reset()
	if err := foreign.RestoreFrom(carrier); err == nil {
		t.Fatal("RestoreFrom across module revisions must error")
	}
	if err := newMach(vm.EngineTree).RestoreFrom(carrier); err == nil {
		t.Fatal("RestoreFrom on the tree engine must error")
	}

	// A lane diverging before the bin snapshot is a scheduling bug.
	producer := newMach(vm.EngineFast)
	if res := producer.Run(vm.RunOptions{SuspendAtDyn: dyn / 2}); res.Trap == nil || res.Trap.Kind != vm.TrapSuspended {
		t.Fatalf("expected suspension, got %v", res.Trap)
	}
	snap, err := producer.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	batch.Reset(snap)
	if err := batch.Peel(batch.AddLane(dyn/4), mach); err == nil {
		t.Fatal("lane below the bin snapshot must error")
	}

	// Cancellation mid-advance surfaces as ErrBatchStopped; Reset re-arms.
	stop := make(chan struct{})
	close(stop)
	cbatch, err := vm.NewBatch(newMach(vm.EngineFast), vm.BatchOptions{Stop: stop})
	if err != nil {
		t.Fatal(err)
	}
	cbatch.Reset(nil)
	if err := cbatch.Peel(cbatch.AddLane(dyn/2), mach); err != vm.ErrBatchStopped {
		t.Fatalf("expected ErrBatchStopped, got %v", err)
	}
	cbatch.Reset(nil)
	// The Stop channel is still closed, but an origin peel never runs the
	// carrier, so it must still succeed.
	if err := cbatch.Peel(cbatch.AddLane(0), mach); err != nil {
		t.Fatalf("origin peel after cancel: %v", err)
	}
	fin := mach.Run(vm.RunOptions{})
	if fin.Trap != nil || fin.Dyn != dyn {
		t.Fatalf("origin-peeled run diverged: %+v", fin)
	}
}
