package vm

// Precompiled execution engine, part 2: dispatch.
//
// execLoop runs a lowered function (see lower.go) over the same frame, memory,
// timing, trap, check, tracer, profiler and fault-injection machinery as the
// reference tree-walking interpreter in exec.go. Each step of the reference
// blockLoop has a counterpart here, in the same order, so the two engines are
// observationally identical: same Result fields bit-for-bit, same trace
// stream, same fault attribution. Per-operand work that the interpreter pays
// on every dynamic instruction — the ir.Value interface type-switch, the
// predecessor scan for phis, the latency classification — was paid once at
// lowering time; frames are pooled per function so campaigns of thousands of
// trials stop allocating.

import (
	"math"
	"time"

	"repro/internal/ir"
)

// stopCheckMask throttles cancellation polls: the Stop channel is consulted
// once every 8192 dynamic instructions, in both engines at the same points,
// so an unconsumed Stop never perturbs execution.
const stopCheckMask = 1<<13 - 1

// get resolves a pre-lowered operand slot; constants and global addresses
// live in pre-filled extension slots, so no immediate branch is needed.
func (fr *frame) get(o int32) uint64 {
	return fr.regs[o].bits
}

// readyAt returns the cycle a pre-lowered operand is available; extension
// slots keep a ready time of 0 forever (constants and global addresses are
// always ready, as in Machine.readyOf).
func (fr *frame) readyAt(o int32) int64 {
	return fr.regs[o].ready
}

// getFrame returns a zeroed activation record for ef, reusing a pooled one
// when available. Only slots on the live list can hold stale state (define
// appends every written slot to live, and the fault injector mutates live
// slots only), so clearing those restores the all-zero state a fresh
// allocation would have — garbage control flow after a branch fault reads
// undefined slots as 0 in both engines.
func (m *Machine) getFrame(ef *engFunc) *frame {
	pool := m.pools[ef.idx]
	var fr *frame
	if n := len(pool); n > 0 {
		fr = pool[n-1]
		m.pools[ef.idx] = pool[:n-1]
		for _, s := range fr.live {
			fr.regs[s] = reg{}
			fr.defined[s] = false
		}
		fr.live = fr.live[:0]
	} else {
		n := ef.fn.NumValues()
		total := n + len(ef.consts)
		fr = &frame{
			fn:      ef.fn,
			regs:    make([]reg, total),
			live:    make([]int32, 0, n),
			defined: make([]bool, total),
		}
		// Extension slots: constants are defined nowhere, so they are never
		// on the live list and survive pooled reuse untouched.
		for i, c := range ef.consts {
			fr.regs[n+i].bits = c
		}
	}
	fr.entrySP = m.sp
	return fr
}

func (m *Machine) putFrame(ef *engFunc, fr *frame) {
	m.pools[ef.idx] = append(m.pools[ef.idx], fr)
}

// execCall is the engine counterpart of Machine.call.
func (m *Machine) execCall(ef *engFunc, args []uint64, depth int) (uint64, *Trap) {
	if depth > m.cfg.MaxDepth {
		return 0, &Trap{Kind: TrapStackOverflow, Dyn: m.dyn, Fn: ef.fn.Name}
	}
	fr := m.getFrame(ef)
	now := m.timing.cursor
	for i := range args {
		fr.define(i, args[i], now)
	}
	ret, trap := m.execLoop(ef, fr, depth)
	if trap != nil && trap.Kind == TrapSuspended {
		// The frame stays live in m.susp and sp keeps the suspended stack
		// extent; both are released by the resumed run (or Reset/Restore).
		return 0, trap
	}
	m.sp = fr.entrySP
	m.putFrame(ef, fr)
	return ret, trap
}

// execLoop interprets ef's lowered code against fr from its entry.
func (m *Machine) execLoop(ef *engFunc, fr *frame, depth int) (uint64, *Trap) {
	// Credit the entry region here rather than in execLoopFrom: a resumed
	// run re-enters mid-region, and its entry was credited before the
	// suspension (see uncountTail for the trap-path counterpart).
	m.regionCounts[ef.idx][ef.regionOf[ef.entry]]++
	return m.execLoopFrom(ef, fr, depth, int(ef.entry))
}

// execLoopFrom interprets ef's lowered code against fr starting at pc.
//
// Dispatch is two-level: every define-tail computation (op >= lopIntrinsic)
// runs through one straight-line path — preamble, inline arithmetic switch,
// shared issue/define/profile/trace tail — while control flow, memory and
// checks take the second switch. The preamble is duplicated across the two
// paths so the hot arithmetic path never branches back.
func (m *Machine) execLoopFrom(ef *engFunc, fr *frame, depth, pc int) (uint64, *Trap) {
	code := ef.code
	fn := ef.fn

	// Loop-invariant state. None of these change during a run: the fault
	// plan pointer is fixed (only its fields mutate), the tracer, profiler
	// and stop channel are per-run options, and the latency table is baked
	// at machine construction.
	fault := m.opts.Fault
	// Pending-fault flags, cleared once the plan fires so completed-fault
	// trials run at golden speed. A register fault can retry (inject is a
	// no-op on a frame with no live registers), so the flag follows
	// fault.Injected rather than the first attempt.
	pendingReg := fault != nil && fault.Kind == FaultRegister && !fault.Injected
	pendingBr := fault != nil && fault.Kind == FaultBranchTarget && !fault.Injected
	tracer := m.opts.Tracer
	profiler := m.opts.Profiler
	stop := m.stop
	// The wall-clock deadline shares the Stop poll cadence and, like Stop,
	// costs nothing when unset; polled is the "any periodic poll armed" flag
	// folded into the event threshold.
	deadline := m.opts.Deadline
	hasDeadline := !deadline.IsZero()
	polled := stop != nil || hasDeadline
	maxDyn := m.cfg.MaxDyn
	tm := m.timing
	lats := &m.lats
	mem := m.mem
	insTab := ef.ins

	// Opcode accounting is region-batched: entering a block body or phi-edge
	// segment credits one per-region counter (folded against the static
	// histogram in foldRegionCounts), replacing a read-modify-write per
	// dynamic instruction. Trap paths retract the pre-credited tail that
	// never executed via uncountTail, so Result.OpCounts stays bit-identical
	// to the interpreter's per-instruction counting.
	rc := m.regionCounts[ef.idx]
	regionOf := ef.regionOf

	// The issue cursor stays in registers too — timing.issue is the one
	// call every dynamic instruction makes — flushed alongside dyn at every
	// escape point and reloaded after nested calls (see issueAt).
	cur, slot, maxDone := tm.cursor, tm.slotUsed, tm.maxDone
	width := tm.width
	bpen := tm.cfg.BranchPenalty
	pred := tm.predictor
	predMask := tm.predMask

	// The dynamic instruction counter stays in a local for the duration of
	// the loop — it is the single hottest value in the machine — and is
	// written back to m.dyn at every escape point: nested calls, check
	// failures, fault redirection, and every return.
	dyn := m.dyn

	// The three per-instruction events — fault trigger, watchdog, stop poll —
	// are folded into one compare against the earliest pending fire point
	// (in pre-increment dyn terms). The slow path re-checks the exact
	// original conditions, so a stale-low nextEvent costs one extra pass and
	// nothing else; no event can move earlier without going through the slow
	// path, which recomputes it. nextEvent = 0 forces recomputation.
	nextEvent := int64(0)

	// Fused dispatch gate (fuse.go). A fused span of k event-checked
	// constituents may only run when every constituent's pre-increment dyn
	// stays below the event threshold — dyn + k <= fuseEvent — so no
	// suspend, injection, watchdog or poll can land inside it; otherwise the
	// span falls back to per-instruction dispatch and the event fires at
	// exactly the constituent it would unfused. fuseEvent mirrors nextEvent
	// and is armed only at the slow-path recomputes (and at the
	// pendingBr-clearing transitions), so it is never stale-high: events
	// only move later or vanish within a run. It stays 0 — no fused entry —
	// under FuseOff, under a tracer or profiler (their per-instruction event
	// streams take the unfused path), and while a branch-target fault is
	// pending (the fused branch handlers omit the redirect hook).
	fuseOn := m.opts.Fuse == FuseAuto && m.opts.Tracer == nil && m.opts.Profiler == nil
	fuseEvent := int64(0)
	fusedCnt := int64(0) // diagnostic tally, flushed to m.fusedSteps at escapes

	// The suspend point joins the same threshold; MaxInt64 when unset, so
	// the common non-suspending run pays one dead compare per slow pass.
	suspendAt := m.opts.SuspendAtDyn
	if suspendAt <= 0 {
		suspendAt = math.MaxInt64
	}

	// Re-entry after a suspension: every level above the innermost one is
	// parked on the lopCall it was executing when the run suspended. The
	// call preamble — dyn increment, argument marshalling, issue slot — ran
	// before the snapshot was taken, so re-enter the callee directly and
	// rejoin at the normal post-call tail. resumePos is -1 outside the
	// drill-down, so ordinary calls never take this branch.
	if m.resumePos >= 0 {
		li := &code[pc]
		ret, trap := m.execResumeNext(depth + 1)
		if trap != nil {
			if trap.Kind == TrapSuspended {
				m.susp = append(m.susp, suspLevel{ef: ef, fr: fr, pc: pc})
				return 0, trap
			}
			m.uncountTail(ef, pc, pc+1)
			return 0, trap
		}
		dyn, cur, slot, maxDone = m.dyn, tm.cursor, tm.slotUsed, tm.maxDone
		if pendingReg || pendingBr {
			pendingReg = pendingReg && !fault.Injected
			pendingBr = pendingBr && !fault.Injected
		}
		var tbits uint64
		if li.dst >= 0 {
			fr.define(int(li.dst), ret, cur)
			tbits = ret
		}
		if tracer != nil {
			tracer.Trace(dyn, fn.Name, insTab[pc], tbits)
		}
		pc++
	}

	for {
		li := &code[pc]
		op := li.op

		// Fused dispatch (fuse.go): when this pc heads a fused pair and the
		// whole span sits strictly below the event threshold, both
		// constituents run in one straight-line handler. Each handler
		// replicates the unfused per-constituent semantics exactly — operand
		// reads, issue/latency calls, define order, trap protocol — minus the
		// event preamble (provably dead inside the span: every constituent's
		// pre-increment dyn is below nextEvent) and the tracer/profiler hooks
		// (both nil whenever fuseEvent is armed). Trap-capable constituents
		// advance dyn individually so trap Dyn values stay exact; pure pairs
		// advance it in one add.
		if li.fop != fNone && dyn+int64(li.fspan) <= fuseEvent {
			l2 := &code[pc+1]
			var done int64
			switch li.fop {
			case fAddAdd:
				fusedCnt++
				dyn += 2
				a0, a1 := fr.get(li.a0), fr.get(li.a1)
				opsReady := maxi(fr.readyAt(li.a0), fr.readyAt(li.a1))
				cur, slot, done = issueAt(cur, slot, width, opsReady, lats[li.latk])
				if done > maxDone {
					maxDone = done
				}
				fr.define(int(li.dst), a0+a1, done)
				b0, b1 := fr.get(l2.a0), fr.get(l2.a1)
				opsReady = maxi(fr.readyAt(l2.a0), fr.readyAt(l2.a1))
				cur, slot, done = issueAt(cur, slot, width, opsReady, lats[l2.latk])
				if done > maxDone {
					maxDone = done
				}
				fr.define(int(l2.dst), b0+b1, done)
				pc += 2
				continue

			case fAddSub:
				fusedCnt++
				dyn += 2
				a0, a1 := fr.get(li.a0), fr.get(li.a1)
				opsReady := maxi(fr.readyAt(li.a0), fr.readyAt(li.a1))
				cur, slot, done = issueAt(cur, slot, width, opsReady, lats[li.latk])
				if done > maxDone {
					maxDone = done
				}
				fr.define(int(li.dst), a0+a1, done)
				b0, b1 := fr.get(l2.a0), fr.get(l2.a1)
				opsReady = maxi(fr.readyAt(l2.a0), fr.readyAt(l2.a1))
				cur, slot, done = issueAt(cur, slot, width, opsReady, lats[l2.latk])
				if done > maxDone {
					maxDone = done
				}
				fr.define(int(l2.dst), b0-b1, done)
				pc += 2
				continue

			case fAddLt:
				fusedCnt++
				dyn += 2
				a0, a1 := fr.get(li.a0), fr.get(li.a1)
				opsReady := maxi(fr.readyAt(li.a0), fr.readyAt(li.a1))
				cur, slot, done = issueAt(cur, slot, width, opsReady, lats[li.latk])
				if done > maxDone {
					maxDone = done
				}
				fr.define(int(li.dst), a0+a1, done)
				b0, b1 := fr.get(l2.a0), fr.get(l2.a1)
				opsReady = maxi(fr.readyAt(l2.a0), fr.readyAt(l2.a1))
				cur, slot, done = issueAt(cur, slot, width, opsReady, lats[l2.latk])
				if done > maxDone {
					maxDone = done
				}
				fr.define(int(l2.dst), cbits(int64(b0) < int64(b1)), done)
				pc += 2
				continue

			case fMulAdd:
				fusedCnt++
				dyn += 2
				a0, a1 := fr.get(li.a0), fr.get(li.a1)
				opsReady := maxi(fr.readyAt(li.a0), fr.readyAt(li.a1))
				cur, slot, done = issueAt(cur, slot, width, opsReady, lats[li.latk])
				if done > maxDone {
					maxDone = done
				}
				fr.define(int(li.dst), a0*a1, done)
				b0, b1 := fr.get(l2.a0), fr.get(l2.a1)
				opsReady = maxi(fr.readyAt(l2.a0), fr.readyAt(l2.a1))
				cur, slot, done = issueAt(cur, slot, width, opsReady, lats[l2.latk])
				if done > maxDone {
					maxDone = done
				}
				fr.define(int(l2.dst), b0+b1, done)
				pc += 2
				continue

			case fMulSub:
				fusedCnt++
				dyn += 2
				a0, a1 := fr.get(li.a0), fr.get(li.a1)
				opsReady := maxi(fr.readyAt(li.a0), fr.readyAt(li.a1))
				cur, slot, done = issueAt(cur, slot, width, opsReady, lats[li.latk])
				if done > maxDone {
					maxDone = done
				}
				fr.define(int(li.dst), a0*a1, done)
				b0, b1 := fr.get(l2.a0), fr.get(l2.a1)
				opsReady = maxi(fr.readyAt(l2.a0), fr.readyAt(l2.a1))
				cur, slot, done = issueAt(cur, slot, width, opsReady, lats[l2.latk])
				if done > maxDone {
					maxDone = done
				}
				fr.define(int(l2.dst), b0-b1, done)
				pc += 2
				continue

			case fMulMul:
				fusedCnt++
				dyn += 2
				a0, a1 := fr.get(li.a0), fr.get(li.a1)
				opsReady := maxi(fr.readyAt(li.a0), fr.readyAt(li.a1))
				cur, slot, done = issueAt(cur, slot, width, opsReady, lats[li.latk])
				if done > maxDone {
					maxDone = done
				}
				fr.define(int(li.dst), a0*a1, done)
				b0, b1 := fr.get(l2.a0), fr.get(l2.a1)
				opsReady = maxi(fr.readyAt(l2.a0), fr.readyAt(l2.a1))
				cur, slot, done = issueAt(cur, slot, width, opsReady, lats[l2.latk])
				if done > maxDone {
					maxDone = done
				}
				fr.define(int(l2.dst), b0*b1, done)
				pc += 2
				continue

			case fSubAdd:
				fusedCnt++
				dyn += 2
				a0, a1 := fr.get(li.a0), fr.get(li.a1)
				opsReady := maxi(fr.readyAt(li.a0), fr.readyAt(li.a1))
				cur, slot, done = issueAt(cur, slot, width, opsReady, lats[li.latk])
				if done > maxDone {
					maxDone = done
				}
				fr.define(int(li.dst), a0-a1, done)
				b0, b1 := fr.get(l2.a0), fr.get(l2.a1)
				opsReady = maxi(fr.readyAt(l2.a0), fr.readyAt(l2.a1))
				cur, slot, done = issueAt(cur, slot, width, opsReady, lats[l2.latk])
				if done > maxDone {
					maxDone = done
				}
				fr.define(int(l2.dst), b0+b1, done)
				pc += 2
				continue

			case fSubMul:
				fusedCnt++
				dyn += 2
				a0, a1 := fr.get(li.a0), fr.get(li.a1)
				opsReady := maxi(fr.readyAt(li.a0), fr.readyAt(li.a1))
				cur, slot, done = issueAt(cur, slot, width, opsReady, lats[li.latk])
				if done > maxDone {
					maxDone = done
				}
				fr.define(int(li.dst), a0-a1, done)
				b0, b1 := fr.get(l2.a0), fr.get(l2.a1)
				opsReady = maxi(fr.readyAt(l2.a0), fr.readyAt(l2.a1))
				cur, slot, done = issueAt(cur, slot, width, opsReady, lats[l2.latk])
				if done > maxDone {
					maxDone = done
				}
				fr.define(int(l2.dst), b0*b1, done)
				pc += 2
				continue

			case fAddAddF:
				fusedCnt++
				dyn += 2
				a0, a1 := fr.get(li.a0), fr.get(li.a1)
				opsReady := maxi(fr.readyAt(li.a0), fr.readyAt(li.a1))
				cur, slot, done = issueAt(cur, slot, width, opsReady, lats[li.latk])
				if done > maxDone {
					maxDone = done
				}
				fr.define(int(li.dst), f2b(b2f(a0)+b2f(a1)), done)
				b0, b1 := fr.get(l2.a0), fr.get(l2.a1)
				opsReady = maxi(fr.readyAt(l2.a0), fr.readyAt(l2.a1))
				cur, slot, done = issueAt(cur, slot, width, opsReady, lats[l2.latk])
				if done > maxDone {
					maxDone = done
				}
				fr.define(int(l2.dst), f2b(b2f(b0)+b2f(b1)), done)
				pc += 2
				continue

			case fMulAddF:
				fusedCnt++
				dyn += 2
				a0, a1 := fr.get(li.a0), fr.get(li.a1)
				opsReady := maxi(fr.readyAt(li.a0), fr.readyAt(li.a1))
				cur, slot, done = issueAt(cur, slot, width, opsReady, lats[li.latk])
				if done > maxDone {
					maxDone = done
				}
				fr.define(int(li.dst), f2b(b2f(a0)*b2f(a1)), done)
				b0, b1 := fr.get(l2.a0), fr.get(l2.a1)
				opsReady = maxi(fr.readyAt(l2.a0), fr.readyAt(l2.a1))
				cur, slot, done = issueAt(cur, slot, width, opsReady, lats[l2.latk])
				if done > maxDone {
					maxDone = done
				}
				fr.define(int(l2.dst), f2b(b2f(b0)+b2f(b1)), done)
				pc += 2
				continue

			case fMulMulF:
				fusedCnt++
				dyn += 2
				a0, a1 := fr.get(li.a0), fr.get(li.a1)
				opsReady := maxi(fr.readyAt(li.a0), fr.readyAt(li.a1))
				cur, slot, done = issueAt(cur, slot, width, opsReady, lats[li.latk])
				if done > maxDone {
					maxDone = done
				}
				fr.define(int(li.dst), f2b(b2f(a0)*b2f(a1)), done)
				b0, b1 := fr.get(l2.a0), fr.get(l2.a1)
				opsReady = maxi(fr.readyAt(l2.a0), fr.readyAt(l2.a1))
				cur, slot, done = issueAt(cur, slot, width, opsReady, lats[l2.latk])
				if done > maxDone {
					maxDone = done
				}
				fr.define(int(l2.dst), f2b(b2f(b0)*b2f(b1)), done)
				pc += 2
				continue

			case fSubMulF:
				fusedCnt++
				dyn += 2
				a0, a1 := fr.get(li.a0), fr.get(li.a1)
				opsReady := maxi(fr.readyAt(li.a0), fr.readyAt(li.a1))
				cur, slot, done = issueAt(cur, slot, width, opsReady, lats[li.latk])
				if done > maxDone {
					maxDone = done
				}
				fr.define(int(li.dst), f2b(b2f(a0)-b2f(a1)), done)
				b0, b1 := fr.get(l2.a0), fr.get(l2.a1)
				opsReady = maxi(fr.readyAt(l2.a0), fr.readyAt(l2.a1))
				cur, slot, done = issueAt(cur, slot, width, opsReady, lats[l2.latk])
				if done > maxDone {
					maxDone = done
				}
				fr.define(int(l2.dst), f2b(b2f(b0)*b2f(b1)), done)
				pc += 2
				continue

			case fAddLoad:
				fusedCnt++
				dyn++
				a0, a1 := fr.get(li.a0), fr.get(li.a1)
				opsReady := maxi(fr.readyAt(li.a0), fr.readyAt(li.a1))
				cur, slot, done = issueAt(cur, slot, width, opsReady, lats[li.latk])
				if done > maxDone {
					maxDone = done
				}
				fr.define(int(li.dst), a0+a1, done)
				dyn++
				addr := fr.get(l2.a0)
				if addr == 0 || addr >= uint64(len(mem)) {
					m.dyn, tm.cursor, tm.slotUsed, tm.maxDone = dyn, cur, slot, maxDone
					m.fusedSteps += fusedCnt
					m.uncountTail(ef, pc+1, pc+2)
					return 0, &Trap{Kind: TrapOOB, Dyn: dyn, Fn: fn.Name}
				}
				lat := tm.access(addr)
				cur, slot, done = issueAt(cur, slot, width, fr.readyAt(l2.a0), lat)
				if done > maxDone {
					maxDone = done
				}
				fr.define(int(l2.dst), mem[addr], done)
				pc += 2
				continue

			case fLoadAdd:
				fusedCnt++
				dyn++
				addr := fr.get(li.a0)
				if addr == 0 || addr >= uint64(len(mem)) {
					m.dyn, tm.cursor, tm.slotUsed, tm.maxDone = dyn, cur, slot, maxDone
					m.fusedSteps += fusedCnt
					m.uncountTail(ef, pc, pc+1)
					return 0, &Trap{Kind: TrapOOB, Dyn: dyn, Fn: fn.Name}
				}
				lat := tm.access(addr)
				cur, slot, done = issueAt(cur, slot, width, fr.readyAt(li.a0), lat)
				if done > maxDone {
					maxDone = done
				}
				fr.define(int(li.dst), mem[addr], done)
				dyn++
				b0, b1 := fr.get(l2.a0), fr.get(l2.a1)
				opsReady := maxi(fr.readyAt(l2.a0), fr.readyAt(l2.a1))
				cur, slot, done = issueAt(cur, slot, width, opsReady, lats[l2.latk])
				if done > maxDone {
					maxDone = done
				}
				fr.define(int(l2.dst), b0+b1, done)
				pc += 2
				continue

			case fLoadSub:
				fusedCnt++
				dyn++
				addr := fr.get(li.a0)
				if addr == 0 || addr >= uint64(len(mem)) {
					m.dyn, tm.cursor, tm.slotUsed, tm.maxDone = dyn, cur, slot, maxDone
					m.fusedSteps += fusedCnt
					m.uncountTail(ef, pc, pc+1)
					return 0, &Trap{Kind: TrapOOB, Dyn: dyn, Fn: fn.Name}
				}
				lat := tm.access(addr)
				cur, slot, done = issueAt(cur, slot, width, fr.readyAt(li.a0), lat)
				if done > maxDone {
					maxDone = done
				}
				fr.define(int(li.dst), mem[addr], done)
				dyn++
				b0, b1 := fr.get(l2.a0), fr.get(l2.a1)
				opsReady := maxi(fr.readyAt(l2.a0), fr.readyAt(l2.a1))
				cur, slot, done = issueAt(cur, slot, width, opsReady, lats[l2.latk])
				if done > maxDone {
					maxDone = done
				}
				fr.define(int(l2.dst), b0-b1, done)
				pc += 2
				continue

			case fLoadMul:
				fusedCnt++
				dyn++
				addr := fr.get(li.a0)
				if addr == 0 || addr >= uint64(len(mem)) {
					m.dyn, tm.cursor, tm.slotUsed, tm.maxDone = dyn, cur, slot, maxDone
					m.fusedSteps += fusedCnt
					m.uncountTail(ef, pc, pc+1)
					return 0, &Trap{Kind: TrapOOB, Dyn: dyn, Fn: fn.Name}
				}
				lat := tm.access(addr)
				cur, slot, done = issueAt(cur, slot, width, fr.readyAt(li.a0), lat)
				if done > maxDone {
					maxDone = done
				}
				fr.define(int(li.dst), mem[addr], done)
				dyn++
				b0, b1 := fr.get(l2.a0), fr.get(l2.a1)
				opsReady := maxi(fr.readyAt(l2.a0), fr.readyAt(l2.a1))
				cur, slot, done = issueAt(cur, slot, width, opsReady, lats[l2.latk])
				if done > maxDone {
					maxDone = done
				}
				fr.define(int(l2.dst), b0*b1, done)
				pc += 2
				continue

			case fAddStore:
				fusedCnt++
				dyn++
				a0, a1 := fr.get(li.a0), fr.get(li.a1)
				opsReady := maxi(fr.readyAt(li.a0), fr.readyAt(li.a1))
				cur, slot, done = issueAt(cur, slot, width, opsReady, lats[li.latk])
				if done > maxDone {
					maxDone = done
				}
				fr.define(int(li.dst), a0+a1, done)
				dyn++
				addr := fr.get(l2.a0)
				if addr == 0 || addr >= uint64(len(mem)) {
					m.dyn, tm.cursor, tm.slotUsed, tm.maxDone = dyn, cur, slot, maxDone
					m.fusedSteps += fusedCnt
					m.uncountTail(ef, pc+1, pc+2)
					return 0, &Trap{Kind: TrapOOB, Dyn: dyn, Fn: fn.Name}
				}
				val := fr.get(l2.a1)
				opsReady = maxi(fr.readyAt(l2.a0), fr.readyAt(l2.a1))
				tm.access(addr)
				cur, slot, done = issueAt(cur, slot, width, opsReady, lats[latStore])
				if done > maxDone {
					maxDone = done
				}
				mem[addr] = val
				pc += 2
				continue

			case fCmpBrI:
				fusedCnt++
				dyn += 2
				a0, a1 := fr.get(li.a0), fr.get(li.a1)
				opsReady := maxi(fr.readyAt(li.a0), fr.readyAt(li.a1))
				cur, slot, done = issueAt(cur, slot, width, opsReady, lats[li.latk])
				if done > maxDone {
					maxDone = done
				}
				var bits uint64
				switch li.op {
				case lopEqI:
					bits = cbits(a0 == a1)
				case lopNeI:
					bits = cbits(a0 != a1)
				case lopLtI:
					bits = cbits(int64(a0) < int64(a1))
				case lopLeI:
					bits = cbits(int64(a0) <= int64(a1))
				case lopGtI:
					bits = cbits(int64(a0) > int64(a1))
				default: // lopGeI
					bits = cbits(int64(a0) >= int64(a1))
				}
				fr.define(int(li.dst), bits, done)
				// Like the unfused lopBr, the condition is read from the
				// branch's own operand slot — the fused pair does not assume
				// the compare feeds the branch.
				cond := fr.get(l2.a0)
				cur, slot, done = issueAt(cur, slot, width, fr.readyAt(l2.a0), 0)
				if done > maxDone {
					maxDone = done
				}
				cur, slot = branchAt(cur, slot, pred, predMask, int(l2.aux), cond != 0, bpen)
				if cond != 0 {
					pc = int(l2.then)
					rc[l2.dst]++
				} else {
					pc = int(l2.els)
					rc[l2.a1]++
				}
				continue

			case fAddJmp:
				fusedCnt++
				dyn += 2
				a0, a1 := fr.get(li.a0), fr.get(li.a1)
				opsReady := maxi(fr.readyAt(li.a0), fr.readyAt(li.a1))
				cur, slot, done = issueAt(cur, slot, width, opsReady, lats[li.latk])
				if done > maxDone {
					maxDone = done
				}
				fr.define(int(li.dst), a0+a1, done)
				cur, slot, done = issueAt(cur, slot, width, 0, 0)
				if done > maxDone {
					maxDone = done
				}
				pc = int(l2.then)
				rc[l2.els]++
				continue

			case fAddFJmp:
				fusedCnt++
				dyn += 2
				a0, a1 := fr.get(li.a0), fr.get(li.a1)
				opsReady := maxi(fr.readyAt(li.a0), fr.readyAt(li.a1))
				cur, slot, done = issueAt(cur, slot, width, opsReady, lats[li.latk])
				if done > maxDone {
					maxDone = done
				}
				fr.define(int(li.dst), f2b(b2f(a0)+b2f(a1)), done)
				cur, slot, done = issueAt(cur, slot, width, 0, 0)
				if done > maxDone {
					maxDone = done
				}
				pc = int(l2.then)
				rc[l2.els]++
				continue

			case fJmpPhi:
				// The phi copy is a pseudo-op: it advances dyn but never
				// passes the event preamble (matching blockLoop), which is
				// why this span's fspan is 1.
				fusedCnt++
				dyn += 2
				cur, slot, done = issueAt(cur, slot, width, 0, 0)
				if done > maxDone {
					maxDone = done
				}
				rc[li.els]++
				pe := &code[li.then]
				v := fr.get(pe.a0)
				cur, slot, done = issueAt(cur, slot, width, 0, lats[latInt])
				if done > maxDone {
					maxDone = done
				}
				fr.define(int(pe.dst), v, done)
				pc = int(pe.then)
				rc[pe.a1]++
				continue

			case fAddCmpCheck:
				fusedCnt++
				dyn++
				a0, a1 := fr.get(li.a0), fr.get(li.a1)
				opsReady := maxi(fr.readyAt(li.a0), fr.readyAt(li.a1))
				cur, slot, done = issueAt(cur, slot, width, opsReady, lats[li.latk])
				if done > maxDone {
					maxDone = done
				}
				fr.define(int(li.dst), a0+a1, done)
				dyn++
				a := fr.get(l2.a0)
				b := fr.get(l2.a1)
				opsReady = maxi(fr.readyAt(l2.a0), fr.readyAt(l2.a1))
				cur, slot, done = issueAt(cur, slot, width, opsReady, lats[latCheck])
				if done > maxDone {
					maxDone = done
				}
				if a != b {
					m.dyn, tm.cursor, tm.slotUsed, tm.maxDone = dyn, cur, slot, maxDone
					if t := m.checkFailed(insTab[pc+1]); t != nil {
						m.fusedSteps += fusedCnt
						m.uncountTail(ef, pc+1, pc+2)
						return 0, t
					}
				}
				pc += 2
				continue

			case fCmpCheckJmp:
				fusedCnt++
				dyn++
				a := fr.get(li.a0)
				b := fr.get(li.a1)
				opsReady := maxi(fr.readyAt(li.a0), fr.readyAt(li.a1))
				cur, slot, done = issueAt(cur, slot, width, opsReady, lats[latCheck])
				if done > maxDone {
					maxDone = done
				}
				if a != b {
					m.dyn, tm.cursor, tm.slotUsed, tm.maxDone = dyn, cur, slot, maxDone
					if t := m.checkFailed(insTab[pc]); t != nil {
						m.fusedSteps += fusedCnt
						m.uncountTail(ef, pc, pc+1)
						return 0, t
					}
				}
				dyn++
				cur, slot, done = issueAt(cur, slot, width, 0, 0)
				if done > maxDone {
					maxDone = done
				}
				pc = int(l2.then)
				rc[l2.els]++
				continue
			}
		}

		if op >= lopIntrinsic {
			// Fast path: pure computations sharing the define tail.
			if dyn >= nextEvent {
				if dyn >= suspendAt {
					m.dyn, tm.cursor, tm.slotUsed, tm.maxDone = dyn, cur, slot, maxDone
					m.fusedSteps += fusedCnt
					m.susp = append(m.susp, suspLevel{ef: ef, fr: fr, pc: pc})
					return 0, &Trap{Kind: TrapSuspended, Dyn: dyn, Fn: fn.Name}
				}
				if pendingReg && dyn >= fault.TriggerDyn {
					m.inject(fr)
					pendingReg = !fault.Injected
				}
				dyn++
				if dyn > maxDyn {
					m.dyn, tm.cursor, tm.slotUsed, tm.maxDone = dyn, cur, slot, maxDone
					m.uncountTail(ef, pc, pc) // trap before the instruction counts
					return 0, &Trap{Kind: TrapWatchdog, Dyn: dyn, Fn: fn.Name}
				}
				if polled && dyn&stopCheckMask == 0 {
					if stop != nil {
						select {
						case <-stop:
							m.dyn, tm.cursor, tm.slotUsed, tm.maxDone = dyn, cur, slot, maxDone
							m.uncountTail(ef, pc, pc)
							return 0, &Trap{Kind: TrapCancelled, Dyn: dyn, Fn: fn.Name}
						default:
						}
					}
					if hasDeadline && time.Now().After(deadline) {
						m.dyn, tm.cursor, tm.slotUsed, tm.maxDone = dyn, cur, slot, maxDone
						m.uncountTail(ef, pc, pc)
						return 0, &Trap{Kind: TrapDeadline, Dyn: dyn, Fn: fn.Name}
					}
				}
				nextEvent = maxDyn
				if suspendAt < nextEvent {
					nextEvent = suspendAt
				}
				if polled && dyn|stopCheckMask < nextEvent {
					nextEvent = dyn | stopCheckMask
				}
				if pendingReg && fault.TriggerDyn < nextEvent {
					nextEvent = fault.TriggerDyn
				}
				fuseEvent = 0
				if fuseOn && !pendingBr {
					fuseEvent = nextEvent
				}
				m.fusedSteps += fusedCnt
				fusedCnt = 0
			} else {
				dyn++
			}

			var a0, a1 uint64
			var opsReady int64
			if op >= lopFirstBinary {
				a0 = fr.get(li.a0)
				opsReady = fr.readyAt(li.a0)
				a1 = fr.get(li.a1)
				if r := fr.readyAt(li.a1); r > opsReady {
					opsReady = r
				}
			} else if op >= lopFirstUnary {
				a0 = fr.get(li.a0)
				opsReady = fr.readyAt(li.a0)
			} else if li.nargs > 0 {
				// Generic-arity zone: lopIntrinsic and lopZero.
				a0 = fr.get(li.a0)
				opsReady = fr.readyAt(li.a0)
				if li.nargs > 1 {
					a1 = fr.get(li.a1)
					if r := fr.readyAt(li.a1); r > opsReady {
						opsReady = r
					}
					if li.nargs > 2 {
						if r := fr.readyAt(li.aux); r > opsReady {
							opsReady = r
						}
					}
				}
			}

			var bits uint64
			switch op {
			case lopAddI, lopPtrAdd:
				bits = a0 + a1
			case lopSubI:
				bits = a0 - a1
			case lopMulI:
				bits = a0 * a1
			case lopDivI:
				x, y := int64(a0), int64(a1)
				switch {
				case y == 0:
					m.dyn, tm.cursor, tm.slotUsed, tm.maxDone = dyn, cur, slot, maxDone
					m.uncountTail(ef, pc, pc+1)
					return 0, &Trap{Kind: TrapDivZero, Dyn: dyn, Fn: fn.Name}
				case x == math.MinInt64 && y == -1:
					bits = a0 // hardware-style overflow wrap
				default:
					bits = uint64(x / y)
				}
			case lopRemI:
				x, y := int64(a0), int64(a1)
				switch {
				case y == 0:
					m.dyn, tm.cursor, tm.slotUsed, tm.maxDone = dyn, cur, slot, maxDone
					m.uncountTail(ef, pc, pc+1)
					return 0, &Trap{Kind: TrapDivZero, Dyn: dyn, Fn: fn.Name}
				case x == math.MinInt64 && y == -1:
					bits = 0
				default:
					bits = uint64(x % y)
				}
			case lopAnd:
				bits = a0 & a1
			case lopOr:
				bits = a0 | a1
			case lopXor:
				bits = a0 ^ a1
			case lopShl:
				bits = uint64(int64(a0) << uint(a1&63))
			case lopShr:
				bits = uint64(int64(a0) >> uint(a1&63))
			case lopNegI:
				bits = uint64(-int64(a0))
			case lopFToI:
				f := b2f(a0)
				switch {
				case math.IsNaN(f):
					bits = 0
				case f >= math.MaxInt64:
					bits = uint64(int64(math.MaxInt64))
				case f <= math.MinInt64:
					v := int64(math.MinInt64)
					bits = uint64(v)
				default:
					bits = uint64(int64(f))
				}

			case lopAddF:
				bits = f2b(b2f(a0) + b2f(a1))
			case lopSubF:
				bits = f2b(b2f(a0) - b2f(a1))
			case lopMulF:
				bits = f2b(b2f(a0) * b2f(a1))
			case lopDivF:
				bits = f2b(b2f(a0) / b2f(a1))
			case lopRemF:
				bits = f2b(math.Mod(b2f(a0), b2f(a1)))
			case lopNegF:
				bits = f2b(-b2f(a0))
			case lopIToF:
				bits = f2b(float64(int64(a0)))

			case lopEqI:
				bits = cbits(a0 == a1)
			case lopNeI:
				bits = cbits(a0 != a1)
			case lopLtI:
				bits = cbits(int64(a0) < int64(a1))
			case lopLeI:
				bits = cbits(int64(a0) <= int64(a1))
			case lopGtI:
				bits = cbits(int64(a0) > int64(a1))
			case lopGeI:
				bits = cbits(int64(a0) >= int64(a1))
			case lopEqF:
				bits = cbits(b2f(a0) == b2f(a1))
			case lopNeF:
				bits = cbits(b2f(a0) != b2f(a1))
			case lopLtF:
				bits = cbits(b2f(a0) < b2f(a1))
			case lopLeF:
				bits = cbits(b2f(a0) <= b2f(a1))
			case lopGtF:
				bits = cbits(b2f(a0) > b2f(a1))
			case lopGeF:
				bits = cbits(b2f(a0) >= b2f(a1))

			case lopClampI:
				v, lo, hi := int64(a0), int64(a1), int64(fr.get(li.aux))
				if r := fr.readyAt(li.aux); r > opsReady {
					opsReady = r
				}
				if v < lo {
					v = lo
				}
				if v > hi {
					v = hi
				}
				bits = uint64(v)

			case lopIntrinsic1, lopIntrinsic2:
				var ok bool
				bits, ok = execIntrinsic(ir.Intrinsic(li.aux), a0, a1)
				if !ok {
					m.dyn, tm.cursor, tm.slotUsed, tm.maxDone = dyn, cur, slot, maxDone
					m.uncountTail(ef, pc, pc+1)
					return 0, &Trap{Kind: TrapBadCall, Dyn: dyn, Fn: fn.Name}
				}
			case lopIntrinsic:
				var ok bool
				bits, ok = execIntrinsic(insTab[pc].Intrinsic, a0, a1)
				if !ok {
					m.dyn, tm.cursor, tm.slotUsed, tm.maxDone = dyn, cur, slot, maxDone
					m.uncountTail(ef, pc, pc+1)
					return 0, &Trap{Kind: TrapBadCall, Dyn: dyn, Fn: fn.Name}
				}
				// lopZero: op/type combination outside the interpreter's
				// defined set; the reference engine defines 0.
			}

			var done int64
			cur, slot, done = issueAt(cur, slot, width, opsReady, lats[li.latk])
			if done > maxDone {
				maxDone = done
			}
			fr.define(int(li.dst), bits, done)
			if li.prof && profiler != nil {
				profiler.Record(insTab[pc], bits)
			}
			if tracer != nil {
				tracer.Trace(dyn, fn.Name, insTab[pc], bits)
			}
			pc++
			continue
		}

		// Pseudo-ops replicate blockLoop control outside the per-instruction
		// path: neither phi resolution nor the two block-integrity traps pass
		// through the fault-check/dyn/watchdog preamble in the interpreter.
		switch op {
		case lopPhiOne:
			v := fr.get(li.a0)
			dyn++
			var done int64
			cur, slot, done = issueAt(cur, slot, width, 0, lats[latInt])
			if done > maxDone {
				maxDone = done
			}
			fr.define(int(li.dst), v, done)
			if tracer != nil {
				tracer.Trace(dyn, fn.Name, insTab[pc], v)
			}
			pc = int(li.then)
			rc[li.a1]++
			continue
		case lopPhiSeq:
			moves := ef.phiMoves[li.aux : li.aux+li.els]
			for i := range moves {
				v := fr.get(moves[i].src)
				dyn++
				var done int64
				cur, slot, done = issueAt(cur, slot, width, 0, lats[latInt])
				if done > maxDone {
					maxDone = done
				}
				fr.define(int(moves[i].dst), v, done)
				if tracer != nil {
					tracer.Trace(dyn, fn.Name, moves[i].in, v)
				}
			}
			pc = int(li.then)
			rc[li.a1]++
			continue
		case lopPhiBatch:
			moves := ef.phiMoves[li.aux : li.aux+li.els]
			scratch := m.phiScratch[:0]
			for i := range moves {
				scratch = append(scratch, fr.get(moves[i].src))
			}
			for i := range moves {
				dyn++
				var done int64
				cur, slot, done = issueAt(cur, slot, width, 0, lats[latInt])
				if done > maxDone {
					maxDone = done
				}
				fr.define(int(moves[i].dst), scratch[i], done)
				if tracer != nil {
					tracer.Trace(dyn, fn.Name, moves[i].in, scratch[i])
				}
			}
			m.phiScratch = scratch[:0]
			pc = int(li.then)
			rc[li.a1]++
			continue
		case lopBadEdge:
			m.dyn, tm.cursor, tm.slotUsed, tm.maxDone = dyn, cur, slot, maxDone
			return 0, &Trap{Kind: TrapBadCall, Dyn: dyn, Fn: fn.Name}
		case lopFellOff:
			// A verified function never falls off a block.
			m.dyn, tm.cursor, tm.slotUsed, tm.maxDone = dyn, cur, slot, maxDone
			return 0, &Trap{Kind: TrapBadCall, Dyn: dyn, Fn: fn.Name}
		}

		if dyn >= nextEvent {
			if dyn >= suspendAt {
				m.dyn, tm.cursor, tm.slotUsed, tm.maxDone = dyn, cur, slot, maxDone
				m.susp = append(m.susp, suspLevel{ef: ef, fr: fr, pc: pc})
				return 0, &Trap{Kind: TrapSuspended, Dyn: dyn, Fn: fn.Name}
			}
			if pendingReg && dyn >= fault.TriggerDyn {
				m.inject(fr)
				pendingReg = !fault.Injected
			}
			dyn++
			if dyn > maxDyn {
				m.dyn, tm.cursor, tm.slotUsed, tm.maxDone = dyn, cur, slot, maxDone
				return 0, &Trap{Kind: TrapWatchdog, Dyn: dyn, Fn: fn.Name}
			}
			if polled && dyn&stopCheckMask == 0 {
				if stop != nil {
					select {
					case <-stop:
						m.dyn, tm.cursor, tm.slotUsed, tm.maxDone = dyn, cur, slot, maxDone
						return 0, &Trap{Kind: TrapCancelled, Dyn: dyn, Fn: fn.Name}
					default:
					}
				}
				if hasDeadline && time.Now().After(deadline) {
					m.dyn, tm.cursor, tm.slotUsed, tm.maxDone = dyn, cur, slot, maxDone
					return 0, &Trap{Kind: TrapDeadline, Dyn: dyn, Fn: fn.Name}
				}
			}
			nextEvent = maxDyn
			if suspendAt < nextEvent {
				nextEvent = suspendAt
			}
			if polled && dyn|stopCheckMask < nextEvent {
				nextEvent = dyn | stopCheckMask
			}
			if pendingReg && fault.TriggerDyn < nextEvent {
				nextEvent = fault.TriggerDyn
			}
			fuseEvent = 0
			if fuseOn && !pendingBr {
				fuseEvent = nextEvent
			}
			m.fusedSteps += fusedCnt
			fusedCnt = 0
		} else {
			dyn++
		}

		var tbits uint64
		switch op {
		case lopJmp:
			var done int64
			cur, slot, done = issueAt(cur, slot, width, 0, 0)
			if done > maxDone {
				maxDone = done
			}
			if tracer != nil {
				tracer.Trace(dyn, fn.Name, insTab[pc], 0)
			}
			if pendingBr {
				from := insTab[pc].Blk
				pc = int(li.then)
				m.dyn, tm.cursor, tm.slotUsed, tm.maxDone = dyn, cur, slot, maxDone
				if t := m.engineBranchFault(ef, fr, from, &pc); t != nil {
					return 0, t
				}
				dyn, cur, slot, maxDone = m.dyn, tm.cursor, tm.slotUsed, tm.maxDone
				pendingBr = !fault.Injected
				// The branch fault has fired; re-arm fused dispatch (the
				// current nextEvent is valid — never stale-high — so the
				// worst case is one extra unfused pass).
				if fuseOn && !pendingBr {
					fuseEvent = nextEvent
				}
				rc[regionOf[pc]]++
			} else {
				pc = int(li.then)
				rc[li.els]++
			}
			continue

		case lopBr:
			cond := fr.get(li.a0)
			var done int64
			cur, slot, done = issueAt(cur, slot, width, fr.readyAt(li.a0), 0)
			if done > maxDone {
				maxDone = done
			}
			cur, slot = branchAt(cur, slot, pred, predMask, int(li.aux), cond != 0, bpen)
			if tracer != nil {
				tracer.Trace(dyn, fn.Name, insTab[pc], 0)
			}
			npc := int(li.els)
			nr := li.a1
			if cond != 0 {
				npc = int(li.then)
				nr = li.dst
			}
			if pendingBr {
				from := insTab[pc].Blk
				pc = npc
				m.dyn, tm.cursor, tm.slotUsed, tm.maxDone = dyn, cur, slot, maxDone
				if t := m.engineBranchFault(ef, fr, from, &pc); t != nil {
					return 0, t
				}
				dyn, cur, slot, maxDone = m.dyn, tm.cursor, tm.slotUsed, tm.maxDone
				pendingBr = !fault.Injected
				// The branch fault has fired; re-arm fused dispatch (the
				// current nextEvent is valid — never stale-high — so the
				// worst case is one extra unfused pass).
				if fuseOn && !pendingBr {
					fuseEvent = nextEvent
				}
				rc[regionOf[pc]]++
			} else {
				pc = npc
				rc[nr]++
			}
			continue

		case lopRet:
			var ret uint64
			if li.nargs > 0 {
				ret = fr.get(li.a0)
			}
			var done int64
			cur, slot, done = issueAt(cur, slot, width, 0, 0)
			if done > maxDone {
				maxDone = done
			}
			if tracer != nil {
				tracer.Trace(dyn, fn.Name, insTab[pc], 0)
			}
			m.dyn, tm.cursor, tm.slotUsed, tm.maxDone = dyn, cur, slot, maxDone
			m.fusedSteps += fusedCnt
			return ret, nil

		case lopCall:
			cs := &ef.calls[li.aux]
			n := len(cs.args)
			if cap(m.callScratch) < n {
				m.callScratch = make([]uint64, n)
			}
			// The scratch is consumed into the callee frame before the
			// callee body runs, so nested calls can safely reuse it.
			cargs := m.callScratch[:n]
			var opsReady int64
			for i, o := range cs.args {
				cargs[i] = fr.get(o)
				if r := fr.readyAt(o); r > opsReady {
					opsReady = r
				}
			}
			var done int64
			cur, slot, done = issueAt(cur, slot, width, opsReady, m.cfg.Timing.CallOverhead)
			if done > maxDone {
				maxDone = done
			}
			m.dyn, tm.cursor, tm.slotUsed, tm.maxDone = dyn, cur, slot, maxDone
			ret, trap := m.execCall(cs.callee, cargs, depth+1)
			if trap != nil {
				if trap.Kind == TrapSuspended {
					// The region tail stays credited — it executes after the
					// resume — and this level parks on the in-flight call.
					m.fusedSteps += fusedCnt
					m.susp = append(m.susp, suspLevel{ef: ef, fr: fr, pc: pc})
					return 0, trap
				}
				m.uncountTail(ef, pc, pc+1)
				return 0, trap
			}
			dyn, cur, slot, maxDone = m.dyn, tm.cursor, tm.slotUsed, tm.maxDone
			// The callee may have fired the pending fault.
			if pendingReg || pendingBr {
				pendingReg = pendingReg && !fault.Injected
				pendingBr = pendingBr && !fault.Injected
				if fuseOn && !pendingBr {
					fuseEvent = nextEvent
				}
			}
			if li.dst >= 0 {
				fr.define(int(li.dst), ret, cur)
				tbits = ret
			}

		case lopStore:
			addr := fr.get(li.a0)
			if addr == 0 || addr >= uint64(len(mem)) {
				m.dyn, tm.cursor, tm.slotUsed, tm.maxDone = dyn, cur, slot, maxDone
				m.uncountTail(ef, pc, pc+1)
				return 0, &Trap{Kind: TrapOOB, Dyn: dyn, Fn: fn.Name}
			}
			val := fr.get(li.a1)
			opsReady := maxi(fr.readyAt(li.a0), fr.readyAt(li.a1))
			tm.access(addr)
			var done int64
			cur, slot, done = issueAt(cur, slot, width, opsReady, lats[latStore])
			if done > maxDone {
				maxDone = done
			}
			mem[addr] = val

		case lopLoad:
			addr := fr.get(li.a0)
			if addr == 0 || addr >= uint64(len(mem)) {
				m.dyn, tm.cursor, tm.slotUsed, tm.maxDone = dyn, cur, slot, maxDone
				m.uncountTail(ef, pc, pc+1)
				return 0, &Trap{Kind: TrapOOB, Dyn: dyn, Fn: fn.Name}
			}
			lat := tm.access(addr)
			var done int64
			cur, slot, done = issueAt(cur, slot, width, fr.readyAt(li.a0), lat)
			if done > maxDone {
				maxDone = done
			}
			bits := mem[addr]
			fr.define(int(li.dst), bits, done)
			tbits = bits
			if profiler != nil {
				profiler.Record(insTab[pc], bits)
			}

		case lopAlloca:
			size := fr.get(li.aux)
			if m.sp+size > m.memWords {
				m.dyn, tm.cursor, tm.slotUsed, tm.maxDone = dyn, cur, slot, maxDone
				m.uncountTail(ef, pc, pc+1)
				return 0, &Trap{Kind: TrapStackOverflow, Dyn: dyn, Fn: fn.Name}
			}
			addr := m.sp
			m.sp += size
			var done int64
			cur, slot, done = issueAt(cur, slot, width, 0, lats[latInt])
			if done > maxDone {
				maxDone = done
			}
			fr.define(int(li.dst), addr, done)
			tbits = addr

		case lopCmpCheck:
			a := fr.get(li.a0)
			b := fr.get(li.a1)
			opsReady := maxi(fr.readyAt(li.a0), fr.readyAt(li.a1))
			var done int64
			cur, slot, done = issueAt(cur, slot, width, opsReady, lats[latCheck])
			if done > maxDone {
				maxDone = done
			}
			if a != b {
				m.dyn, tm.cursor, tm.slotUsed, tm.maxDone = dyn, cur, slot, maxDone
				if t := m.checkFailed(insTab[pc]); t != nil {
					m.uncountTail(ef, pc, pc+1)
					return 0, t
				}
			}

		case lopRangeCheckI:
			v := int64(fr.get(li.a0))
			lo := int64(fr.get(li.a1))
			hi := int64(fr.get(li.aux))
			var done int64
			cur, slot, done = issueAt(cur, slot, width, fr.readyAt(li.a0), lats[latCheck])
			if done > maxDone {
				maxDone = done
			}
			if v < lo || v > hi {
				m.dyn, tm.cursor, tm.slotUsed, tm.maxDone = dyn, cur, slot, maxDone
				if t := m.checkFailed(insTab[pc]); t != nil {
					m.uncountTail(ef, pc, pc+1)
					return 0, t
				}
			}

		case lopRangeCheckF:
			v := b2f(fr.get(li.a0))
			lo := b2f(fr.get(li.a1))
			hi := b2f(fr.get(li.aux))
			var done int64
			cur, slot, done = issueAt(cur, slot, width, fr.readyAt(li.a0), lats[latCheck])
			if done > maxDone {
				maxDone = done
			}
			if !(v >= lo && v <= hi) {
				m.dyn, tm.cursor, tm.slotUsed, tm.maxDone = dyn, cur, slot, maxDone
				if t := m.checkFailed(insTab[pc]); t != nil {
					m.uncountTail(ef, pc, pc+1)
					return 0, t
				}
			}

		case lopValCheckI:
			v := fr.get(li.a0)
			ok := v == fr.get(li.a1)
			if !ok && li.nargs == 3 {
				ok = v == fr.get(li.aux)
			}
			var done int64
			cur, slot, done = issueAt(cur, slot, width, fr.readyAt(li.a0), lats[latCheck])
			if done > maxDone {
				maxDone = done
			}
			if !ok {
				m.dyn, tm.cursor, tm.slotUsed, tm.maxDone = dyn, cur, slot, maxDone
				if t := m.checkFailed(insTab[pc]); t != nil {
					m.uncountTail(ef, pc, pc+1)
					return 0, t
				}
			}

		case lopValCheckF:
			// Numeric, not bitwise, to match the value profiler (see the
			// OpValCheck commentary in exec.go: -0.0 must equal 0).
			v := b2f(fr.get(li.a0))
			ok := v == b2f(fr.get(li.a1))
			if !ok && li.nargs == 3 {
				ok = v == b2f(fr.get(li.aux))
			}
			var done int64
			cur, slot, done = issueAt(cur, slot, width, fr.readyAt(li.a0), lats[latCheck])
			if done > maxDone {
				maxDone = done
			}
			if !ok {
				m.dyn, tm.cursor, tm.slotUsed, tm.maxDone = dyn, cur, slot, maxDone
				if t := m.checkFailed(insTab[pc]); t != nil {
					m.uncountTail(ef, pc, pc+1)
					return 0, t
				}
			}
		}
		if tracer != nil {
			tracer.Trace(dyn, fn.Name, insTab[pc], tbits)
		}
		pc++
	}
}

// issueAt is timing.issue over register-resident cursor state: execLoop keeps
// the issue cycle, slot count and completion horizon in locals — the one call
// every dynamic instruction makes must not go through memory — and flushes
// them back to the timing struct at every escape point.
func issueAt(cur int64, slot, width int, opsReady, lat int64) (int64, int, int64) {
	at := cur
	if opsReady > at {
		at = opsReady
		cur = opsReady
		slot = 0
	}
	slot++
	if slot >= width {
		cur++
		slot = 0
	}
	return cur, slot, at + lat
}

// branchAt is timing.branch over the same register-resident state.
func branchAt(cur int64, slot int, pred []uint8, predMask, uid int, taken bool, bpen int64) (int64, int) {
	var s int
	if predMask >= 0 {
		s = uid & predMask
	} else {
		s = uid % len(pred)
	}
	p := pred[s]
	if (p >= 2) != taken {
		cur += bpen
		slot = 0
	}
	if taken && p < 3 {
		pred[s] = p + 1
	} else if !taken && p > 0 {
		pred[s] = p - 1
	}
	return cur, slot
}

// uncountTail retracts the part of the current accounting region that a trap
// at pc kept from executing: region entry pre-credited the whole static
// histogram, so the instructions in [from, regionEnd) are subtracted back out
// of opCounts. from is pc for traps the interpreter raises before counting
// the instruction (watchdog, cancellation) and pc+1 for traps it raises
// after (division, intrinsics, memory, checks, nested calls).
func (m *Machine) uncountTail(ef *engFunc, pc, from int) {
	end := int(ef.regionEnd[ef.regionOf[pc]])
	for p := from; p < end; p++ {
		m.opCounts[ef.code[p].origOp]--
	}
}

// foldRegionCounts folds the per-region entry counters into opCounts at the
// end of a run: each entry credits the region's static opcode histogram
// (trap paths already retracted any unexecuted tail). Counters are consumed,
// so back-to-back Runs accumulate exactly like the interpreter.
func (m *Machine) foldRegionCounts() {
	for fi, rc := range m.regionCounts {
		hists := m.eng.funcs[fi].regHist
		for r, c := range rc {
			if c == 0 {
				continue
			}
			rc[r] = 0
			for _, h := range hists[r] {
				m.opCounts[h.op] += c * h.n
			}
		}
	}
}

// engineBranchFault is the engine counterpart of maybeBranchFault: when a
// pending branch-target fault is due, redirect the branch just taken to a
// random block of the executing function and resolve the landing edge
// dynamically (the lowered code only has edge batches for real CFG edges).
func (m *Machine) engineBranchFault(ef *engFunc, fr *frame, from *ir.Block, pc *int) *Trap {
	f := m.opts.Fault
	if f == nil || f.Injected || f.Kind != FaultBranchTarget || m.dyn < f.TriggerDyn {
		return nil
	}
	f.Injected = true
	f.TargetUID = -1
	target := ef.fn.Blocks[f.PickSlot(len(ef.fn.Blocks))]
	m.laxPhis = true
	npc, trap := m.dynEdge(ef, fr, from, target)
	if trap != nil {
		return trap
	}
	*pc = npc
	return nil
}

// dynEdge resolves the phi prefix of to for an edge arriving from from —
// the interpreter's blockLoop prologue — and returns the pc of to's body.
// Only reached on the branch-fault slow path; real edges were precompiled.
func (m *Machine) dynEdge(ef *engFunc, fr *frame, from, to *ir.Block) (int, *Trap) {
	phis := to.Phis()
	if len(phis) == 0 {
		return int(ef.bodyPC[to.Index]), nil
	}
	scratch := m.phiScratch[:0]
	for _, phi := range phis {
		v := phi.PhiIncoming(from)
		if v == nil {
			return 0, &Trap{Kind: TrapBadCall, Dyn: m.dyn, Fn: ef.fn.Name}
		}
		scratch = append(scratch, m.eval(fr, v))
	}
	for i, phi := range phis {
		m.dyn++
		m.opCounts[phi.Op]++
		done := m.timing.issue(0, m.lats[latInt])
		fr.define(phi.ID, scratch[i], done)
		m.trace(ef.fn, phi, scratch[i])
	}
	m.phiScratch = scratch[:0]
	return int(ef.bodyPC[to.Index]), nil
}

// execIntrinsic executes a lowered intrinsic call (clamp has its own opcode).
// Each case corresponds to one resolved path through evalIntrinsic in exec.go;
// ok is false for an unknown kind, which the dispatch loop turns into the
// interpreter's bad-call trap.
func execIntrinsic(kind ir.Intrinsic, a0, a1 uint64) (uint64, bool) {
	switch kind {
	case ir.IntrSqrt:
		return f2b(math.Sqrt(b2f(a0))), true
	case ir.IntrFAbs:
		return f2b(math.Abs(b2f(a0))), true
	case ir.IntrIAbs:
		v := int64(a0)
		if v < 0 {
			v = -v
		}
		return uint64(v), true
	case ir.IntrFMin:
		return f2b(math.Min(b2f(a0), b2f(a1))), true
	case ir.IntrFMax:
		return f2b(math.Max(b2f(a0), b2f(a1))), true
	case ir.IntrIMin:
		if int64(a0) < int64(a1) {
			return a0, true
		}
		return a1, true
	case ir.IntrIMax:
		if int64(a0) > int64(a1) {
			return a0, true
		}
		return a1, true
	case ir.IntrExp:
		return f2b(math.Exp(b2f(a0))), true
	case ir.IntrLog:
		return f2b(math.Log(b2f(a0))), true
	case ir.IntrFloor:
		return f2b(math.Floor(b2f(a0))), true
	case ir.IntrPow:
		return f2b(math.Pow(b2f(a0), b2f(a1))), true
	}
	return 0, false
}

func cbits(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}
