package vm_test

// Engine equivalence suite: the precompiled engine (EngineFast) promises
// bit-for-bit observational equivalence with the reference tree-walking
// interpreter (EngineTree). These tests check the promise on every built-in
// benchmark — outputs, dynamic counts, timing cycles, opcode counts, check
// behavior, full trace streams — and across register and branch-target fault
// sweeps including the injection-attribution metadata the campaign relies
// on. The difftest oracle's engine-diff invariant covers the same promise
// over randomly generated programs.

import (
	"math/rand"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/ir"
	"repro/internal/profile"
	"repro/internal/vm"
	"repro/internal/workloads"
)

// hashTracer folds every trace event into an FNV-1a accumulator so complete
// trace streams can be compared without storing them.
type hashTracer struct {
	n uint64
	h uint64
}

func newHashTracer() *hashTracer { return &hashTracer{h: 14695981039346656037} }

func (t *hashTracer) mix(v uint64) {
	for i := 0; i < 8; i++ {
		t.h ^= v & 0xff
		t.h *= 1099511628211
		v >>= 8
	}
}

func (t *hashTracer) Trace(dyn int64, fn string, in *ir.Instr, bits uint64) {
	t.n++
	t.mix(uint64(dyn))
	for i := 0; i < len(fn); i++ {
		t.h ^= uint64(fn[i])
		t.h *= 1099511628211
	}
	t.mix(uint64(in.UID))
	t.mix(bits)
}

// engineRun is everything observable about one run.
type engineRun struct {
	res    *vm.Result
	out    []uint64
	plan   *vm.FaultPlan
	traceN uint64
	traceH uint64
}

// runEngine executes mod on the given engine with the workload's inputs
// bound, tracing every instruction.
func runEngine(t *testing.T, w *workloads.Workload, mod *ir.Module, engine vm.EngineKind, kind workloads.InputKind, opts vm.RunOptions) *engineRun {
	t.Helper()
	cfg := vm.DefaultConfig()
	cfg.Engine = engine
	mach, err := vm.New(mod, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Bind(mach, kind); err != nil {
		t.Fatal(err)
	}
	mach.Reset()
	tr := newHashTracer()
	opts.Tracer = tr
	res := mach.Run(opts)
	out, err := mach.ReadGlobal(w.Output)
	if err != nil {
		t.Fatal(err)
	}
	return &engineRun{res: res, out: out, plan: opts.Fault, traceN: tr.n, traceH: tr.h}
}

// diffRuns fails the test if any observable differs between the fast- and
// tree-engine runs.
func diffRuns(t *testing.T, label string, fast, tree *engineRun) {
	t.Helper()
	f, r := fast.res, tree.res
	if (f.Trap == nil) != (r.Trap == nil) {
		t.Fatalf("%s: trap mismatch: fast=%v tree=%v", label, f.Trap, r.Trap)
	}
	if f.Trap != nil && *f.Trap != *r.Trap {
		t.Fatalf("%s: traps differ: fast=%+v tree=%+v", label, *f.Trap, *r.Trap)
	}
	if f.Ret != r.Ret {
		t.Fatalf("%s: Ret: fast=%#x tree=%#x", label, f.Ret, r.Ret)
	}
	if f.Dyn != r.Dyn {
		t.Fatalf("%s: Dyn: fast=%d tree=%d", label, f.Dyn, r.Dyn)
	}
	if f.Cycles != r.Cycles {
		t.Fatalf("%s: Cycles: fast=%d tree=%d", label, f.Cycles, r.Cycles)
	}
	if f.CheckFails != r.CheckFails {
		t.Fatalf("%s: CheckFails: fast=%d tree=%d", label, f.CheckFails, r.CheckFails)
	}
	if len(f.PerCheckFails) != len(r.PerCheckFails) {
		t.Fatalf("%s: PerCheckFails size: fast=%d tree=%d", label, len(f.PerCheckFails), len(r.PerCheckFails))
	}
	for id, n := range f.PerCheckFails {
		if r.PerCheckFails[id] != n {
			t.Fatalf("%s: PerCheckFails[%d]: fast=%d tree=%d", label, id, n, r.PerCheckFails[id])
		}
	}
	if f.OpCounts != r.OpCounts {
		t.Fatalf("%s: OpCounts differ:\nfast=%v\ntree=%v", label, f.OpCounts, r.OpCounts)
	}
	if len(fast.out) != len(tree.out) {
		t.Fatalf("%s: output length: fast=%d tree=%d", label, len(fast.out), len(tree.out))
	}
	for i := range fast.out {
		if fast.out[i] != tree.out[i] {
			t.Fatalf("%s: out[%d]: fast=%#x tree=%#x", label, i, fast.out[i], tree.out[i])
		}
	}
	if fast.traceN != tree.traceN || fast.traceH != tree.traceH {
		t.Fatalf("%s: trace streams differ: fast=(%d,%#x) tree=(%d,%#x)",
			label, fast.traceN, fast.traceH, tree.traceN, tree.traceH)
	}
	if fast.plan != nil {
		fp, rp := fast.plan, tree.plan
		if fp.Injected != rp.Injected || fp.TargetUID != rp.TargetUID || fp.TargetTy != rp.TargetTy ||
			fp.OldBits != rp.OldBits || fp.NewBits != rp.NewBits || fp.Bit != rp.Bit || fp.RelChange != rp.RelChange {
			t.Fatalf("%s: fault attribution differs:\nfast=%+v\ntree=%+v", label, *fp, *rp)
		}
	}
}

// TestEngineEquivalenceWorkloads runs every built-in benchmark fault-free on
// both engines and requires identical observables including the complete
// trace stream.
func TestEngineEquivalenceWorkloads(t *testing.T) {
	for _, w := range workloads.All() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			t.Parallel()
			mod, err := w.Compile()
			if err != nil {
				t.Fatal(err)
			}
			fast := runEngine(t, w, mod, vm.EngineFast, workloads.Test, vm.RunOptions{})
			tree := runEngine(t, w, mod, vm.EngineTree, workloads.Test, vm.RunOptions{})
			if fast.res.Trap != nil {
				t.Fatalf("fault-free run trapped: %v", fast.res.Trap)
			}
			diffRuns(t, w.Name, fast, tree)
		})
	}
}

// protectedModule profiles w on the training input and applies mode.
func protectedModule(t *testing.T, w *workloads.Workload, mode string) *ir.Module {
	t.Helper()
	mod, err := w.Compile()
	if err != nil {
		t.Fatal(err)
	}
	var prof *profile.Data
	if mode == core.SchemeDupVal {
		mach, err := vm.New(mod.Clone(), vm.DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		if err := w.Bind(mach, workloads.Train); err != nil {
			t.Fatal(err)
		}
		mach.Reset()
		col := profile.NewCollector(profile.DefaultBins)
		if res := mach.Run(vm.RunOptions{Profiler: col}); res.Trap != nil {
			t.Fatalf("profiling trapped: %v", res.Trap)
		}
		prof = col.Data()
	}
	prot := mod.Clone()
	if _, err := core.Protect(prot, mode, prof, core.DefaultParams()); err != nil {
		t.Fatal(err)
	}
	return prot
}

// TestEngineEquivalenceProtected checks the engines agree on protected
// binaries, where duplication comparisons and expected-value checks execute
// and (in CountChecks mode) check-failure counters accumulate.
func TestEngineEquivalenceProtected(t *testing.T) {
	for _, tc := range []struct {
		workload string
		mode     string
	}{
		{"kmeans", core.SchemeDup},
		{"jpegdec", core.SchemeDupVal},
		{"g721dec", core.SchemeFullDup},
	} {
		tc := tc
		t.Run(tc.workload+"/"+tc.mode, func(t *testing.T) {
			t.Parallel()
			w := workloads.ByName(tc.workload)
			prot := protectedModule(t, w, tc.mode)
			opts := vm.RunOptions{CountChecks: true}
			fast := runEngine(t, w, prot, vm.EngineFast, workloads.Test, opts)
			tree := runEngine(t, w, prot, vm.EngineTree, workloads.Test, opts)
			diffRuns(t, tc.workload, fast, tree)
		})
	}
}

// faultSweep injects one fault per seed on both engines and requires
// identical outcomes, including the plan's attribution metadata.
func faultSweep(t *testing.T, w *workloads.Workload, mod *ir.Module, kind vm.FaultKind, seeds int) {
	t.Helper()
	golden := runEngine(t, w, mod, vm.EngineFast, workloads.Test, vm.RunOptions{})
	if golden.res.Trap != nil {
		t.Fatalf("golden run trapped: %v", golden.res.Trap)
	}
	plan := func(seed int64) *vm.FaultPlan {
		rng := rand.New(rand.NewSource(seed))
		return &vm.FaultPlan{
			Kind:       kind,
			TriggerDyn: rng.Int63n(golden.res.Dyn),
			PickSlot:   func(n int) int { return rng.Intn(n) },
			PickBit:    func() int { return rng.Intn(64) },
		}
	}
	for seed := int64(0); seed < int64(seeds); seed++ {
		fast := runEngine(t, w, mod, vm.EngineFast, workloads.Test, vm.RunOptions{Fault: plan(seed)})
		tree := runEngine(t, w, mod, vm.EngineTree, workloads.Test, vm.RunOptions{Fault: plan(seed)})
		diffRuns(t, w.Name, fast, tree)
	}
}

func TestEngineEquivalenceRegisterFaults(t *testing.T) {
	w := workloads.ByName("kmeans")
	prot := protectedModule(t, w, core.SchemeDup)
	faultSweep(t, w, prot, vm.FaultRegister, 40)
}

func TestEngineEquivalenceBranchFaults(t *testing.T) {
	w := workloads.ByName("kmeans")
	mod, err := w.Compile()
	if err != nil {
		t.Fatal(err)
	}
	faultSweep(t, w, mod, vm.FaultBranchTarget, 25)
}

// TestEngineCancellation checks both engines honor the Stop channel and
// report the cancellation trap rather than a partial result.
func TestEngineCancellation(t *testing.T) {
	w := workloads.ByName("jpegdec")
	mod, err := w.Compile()
	if err != nil {
		t.Fatal(err)
	}
	stop := make(chan struct{})
	close(stop)
	for _, engine := range []vm.EngineKind{vm.EngineFast, vm.EngineTree} {
		cfg := vm.DefaultConfig()
		cfg.Engine = engine
		mach, err := vm.New(mod, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if err := w.Bind(mach, workloads.Test); err != nil {
			t.Fatal(err)
		}
		mach.Reset()
		res := mach.Run(vm.RunOptions{Stop: stop})
		if res.Trap == nil || res.Trap.Kind != vm.TrapCancelled {
			t.Fatalf("engine %d: expected cancellation trap, got %v", engine, res.Trap)
		}
		if res.Trap.IsSymptom() {
			t.Fatal("cancellation must not classify as a hardware symptom")
		}
	}
}

// TestEngineDeadline checks both engines honor an already-expired wall-clock
// deadline (the trial-reaping hook layered over the watchdog) and that an
// unreachable deadline never perturbs a run.
func TestEngineDeadline(t *testing.T) {
	w := workloads.ByName("jpegdec")
	mod, err := w.Compile()
	if err != nil {
		t.Fatal(err)
	}
	for _, engine := range []vm.EngineKind{vm.EngineFast, vm.EngineTree} {
		cfg := vm.DefaultConfig()
		cfg.Engine = engine
		mach, err := vm.New(mod, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if err := w.Bind(mach, workloads.Test); err != nil {
			t.Fatal(err)
		}
		mach.Reset()
		ref := mach.Run(vm.RunOptions{})
		if ref.Trap != nil {
			t.Fatalf("engine %d: reference run trapped: %v", engine, ref.Trap)
		}

		mach.Reset()
		res := mach.Run(vm.RunOptions{Deadline: time.Now().Add(-time.Second)})
		if res.Trap == nil || res.Trap.Kind != vm.TrapDeadline {
			t.Fatalf("engine %d: expected deadline trap, got %v", engine, res.Trap)
		}
		if res.Trap.IsSymptom() {
			t.Fatal("deadline must not classify as a hardware symptom")
		}

		// A generous deadline must leave the run bit-identical to one with
		// no deadline at all: the poll shares the Stop cadence and touches
		// no machine state.
		mach.Reset()
		far := mach.Run(vm.RunOptions{Deadline: time.Now().Add(time.Hour)})
		if far.Trap != nil {
			t.Fatalf("engine %d: far-deadline run trapped: %v", engine, far.Trap)
		}
		if far.Ret != ref.Ret || far.Dyn != ref.Dyn || far.Cycles != ref.Cycles {
			t.Fatalf("engine %d: far-deadline run differs: (%d,%d,%d) != (%d,%d,%d)",
				engine, far.Ret, far.Dyn, far.Cycles, ref.Ret, ref.Dyn, ref.Cycles)
		}
	}
}

// BenchmarkEngine compares raw single-run throughput of the two engines on
// the heaviest kernel; instrs/s is reported so benchstat shows the ratio.
func BenchmarkEngine(b *testing.B) {
	w := workloads.ByName("jpegdec")
	mod, err := w.Compile()
	if err != nil {
		b.Fatal(err)
	}
	for _, bc := range []struct {
		name   string
		engine vm.EngineKind
	}{{"fast", vm.EngineFast}, {"tree", vm.EngineTree}} {
		b.Run(bc.name, func(b *testing.B) {
			cfg := vm.DefaultConfig()
			cfg.Engine = bc.engine
			mach, err := vm.New(mod.Clone(), cfg)
			if err != nil {
				b.Fatal(err)
			}
			if err := w.Bind(mach, workloads.Test); err != nil {
				b.Fatal(err)
			}
			var dyn int64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				mach.Reset()
				res := mach.Run(vm.RunOptions{})
				if res.Trap != nil {
					b.Fatal(res.Trap)
				}
				dyn += res.Dyn
			}
			b.ReportMetric(float64(dyn)/b.Elapsed().Seconds(), "instrs/s")
		})
	}
}
