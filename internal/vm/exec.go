package vm

import (
	"math"
	"time"

	"repro/internal/ir"
)

// reg is one frame slot: the value and the cycle it becomes available.
// Keeping them adjacent means every operand read and every define touches
// one cache line instead of two parallel arrays.
type reg struct {
	bits  uint64
	ready int64
}

// frame is one activation record.
type frame struct {
	fn   *ir.Func
	regs []reg
	// live lists slots that have been written, in definition order; the
	// fault injector picks uniformly from it (register-file analog).
	live    []int32
	defined []bool
	entrySP uint64
}

func (m *Machine) newFrame(fn *ir.Func) *frame {
	n := fn.NumValues()
	return &frame{
		fn:      fn,
		regs:    make([]reg, n),
		live:    make([]int32, 0, n),
		defined: make([]bool, n),
		entrySP: m.sp,
	}
}

func (fr *frame) define(slot int, bits uint64, ready int64) {
	fr.regs[slot] = reg{bits: bits, ready: ready}
	if !fr.defined[slot] {
		fr.defined[slot] = true
		fr.live = append(fr.live, int32(slot))
	}
}

// eval resolves an operand to its bit pattern.
func (m *Machine) eval(fr *frame, v ir.Value) uint64 {
	switch x := v.(type) {
	case *ir.Const:
		return x.Bits
	case *ir.Param:
		return fr.regs[x.ID].bits
	case *ir.Instr:
		return fr.regs[x.ID].bits
	case *ir.Global:
		return m.globalBase[x.Name]
	}
	panic("vm: unknown value kind")
}

// readyOf returns the cycle an operand is available.
func (m *Machine) readyOf(fr *frame, v ir.Value) int64 {
	switch x := v.(type) {
	case *ir.Param:
		return fr.regs[x.ID].ready
	case *ir.Instr:
		return fr.regs[x.ID].ready
	}
	return 0
}

// trace forwards one executed instruction to the optional tracer.
func (m *Machine) trace(fn *ir.Func, in *ir.Instr, bits uint64) {
	if m.opts.Tracer != nil {
		m.opts.Tracer.Trace(m.dyn, fn.Name, in, bits)
	}
}

// maybeBranchFault redirects the branch just taken to a random block when a
// pending branch-target fault is due. It sets laxPhis so garbage control
// flow propagates instead of tripping interpreter integrity checks.
func (m *Machine) maybeBranchFault(fn *ir.Func, blk **ir.Block) *Trap {
	f := m.opts.Fault
	if f == nil || f.Injected || f.Kind != FaultBranchTarget || m.dyn < f.TriggerDyn {
		return nil
	}
	f.Injected = true
	f.TargetUID = -1
	target := fn.Blocks[f.PickSlot(len(fn.Blocks))]
	*blk = target
	m.laxPhis = true
	return nil
}

// inject flips one bit of a random live register in fr per the fault plan.
func (m *Machine) inject(fr *frame) {
	plan := m.opts.Fault
	if len(fr.live) == 0 {
		return // nothing architecturally live; fault lands in dead space
	}
	slot := int(fr.live[plan.PickSlot(len(fr.live))])
	bit := plan.PickBit() & 63
	old := fr.regs[slot].bits
	newBits := old ^ (1 << uint(bit))
	fr.regs[slot].bits = newBits

	plan.Injected = true
	plan.Bit = bit
	plan.OldBits = old
	plan.NewBits = newBits
	ty := m.info[fr.fn].slotTypes[slot]
	plan.TargetTy = ty
	plan.TargetUID = -1
	// Recover the defining instruction's UID for attribution.
	for _, in := range instrsBySlot(fr.fn, slot) {
		plan.TargetUID = in.UID
		break
	}
	switch ty {
	case ir.F64:
		o, n := math.Float64frombits(old), math.Float64frombits(newBits)
		d := math.Abs(n - o)
		den := math.Max(math.Abs(o), 1)
		plan.RelChange = d / den
		if math.IsNaN(plan.RelChange) || math.IsInf(plan.RelChange, 0) {
			plan.RelChange = math.Inf(1)
		}
	default:
		o, n := int64(old), int64(newBits)
		d := math.Abs(float64(n) - float64(o))
		den := math.Max(math.Abs(float64(o)), 1)
		plan.RelChange = d / den
	}
}

// instrsBySlot finds instructions occupying a frame slot (zero or one).
func instrsBySlot(fn *ir.Func, slot int) []*ir.Instr {
	var out []*ir.Instr
	fn.Instrs(func(in *ir.Instr) bool {
		if in.ID == slot {
			out = append(out, in)
			return false
		}
		return true
	})
	return out
}

// call interprets fn with the given argument bits.
func (m *Machine) call(fn *ir.Func, args []uint64, depth int) (uint64, *Trap) {
	if depth > m.cfg.MaxDepth {
		return 0, &Trap{Kind: TrapStackOverflow, Dyn: m.dyn, Fn: fn.Name}
	}
	fr := m.newFrame(fn)
	now := m.timing.cursor
	for i := range args {
		fr.define(i, args[i], now)
	}
	defer func() { m.sp = fr.entrySP }()

	trapAt := func(k TrapKind) *Trap { return &Trap{Kind: k, Dyn: m.dyn, Fn: fn.Name} }

	blk := fn.Entry()
	var prev *ir.Block
	// Scratch for parallel phi copies.
	var phiBits []uint64

blockLoop:
	for {
		// Resolve the phi prefix as a parallel copy from prev.
		phis := blk.Phis()
		if len(phis) > 0 {
			phiBits = phiBits[:0]
			for _, phi := range phis {
				v := phi.PhiIncoming(prev)
				if v == nil {
					return 0, trapAt(TrapBadCall)
				}
				phiBits = append(phiBits, m.eval(fr, v))
			}
			for i, phi := range phis {
				m.dyn++
				m.opCounts[phi.Op]++
				done := m.timing.issue(0, m.timing.latency(phi))
				fr.define(phi.ID, phiBits[i], done)
				m.trace(fn, phi, phiBits[i])
			}
		}

		for idx := len(phis); idx < len(blk.Instrs); idx++ {
			in := blk.Instrs[idx]

			if f := m.opts.Fault; f != nil && !f.Injected && f.Kind == FaultRegister && m.dyn >= f.TriggerDyn {
				m.inject(fr)
			}
			m.dyn++
			if m.dyn > m.cfg.MaxDyn {
				return 0, trapAt(TrapWatchdog)
			}
			if m.dyn&stopCheckMask == 0 {
				if m.stop != nil {
					select {
					case <-m.stop:
						return 0, trapAt(TrapCancelled)
					default:
					}
				}
				if d := m.opts.Deadline; !d.IsZero() && time.Now().After(d) {
					return 0, trapAt(TrapDeadline)
				}
			}
			m.opCounts[in.Op]++

			// tbits is the value the instruction produces, reported to the
			// tracer after execution (the Tracer contract). Control-flow
			// ops trace before they leave the loop; everything else traces
			// at the bottom of the iteration.
			var tbits uint64
			switch in.Op {
			case ir.OpJmp:
				m.timing.issue(0, 0)
				m.trace(fn, in, 0)
				prev, blk = blk, in.Then
				if t := m.maybeBranchFault(fn, &blk); t != nil {
					return 0, t
				}
				continue blockLoop

			case ir.OpBr:
				cond := m.eval(fr, in.Args[0])
				m.timing.issue(m.readyOf(fr, in.Args[0]), 0)
				m.timing.branch(in.UID, cond != 0)
				m.trace(fn, in, 0)
				prev = blk
				if cond != 0 {
					blk = in.Then
				} else {
					blk = in.Else
				}
				if t := m.maybeBranchFault(fn, &blk); t != nil {
					return 0, t
				}
				continue blockLoop

			case ir.OpRet:
				var ret uint64
				if len(in.Args) > 0 {
					ret = m.eval(fr, in.Args[0])
				}
				m.timing.issue(0, 0)
				m.trace(fn, in, 0)
				return ret, nil

			case ir.OpCall:
				cargs := make([]uint64, len(in.Args))
				var opsReady int64
				for i, a := range in.Args {
					cargs[i] = m.eval(fr, a)
					if r := m.readyOf(fr, a); r > opsReady {
						opsReady = r
					}
				}
				m.timing.issue(opsReady, m.cfg.Timing.CallOverhead)
				ret, trap := m.call(in.Callee, cargs, depth+1)
				if trap != nil {
					return 0, trap
				}
				if in.Ty != ir.Void {
					fr.define(in.ID, ret, m.timing.cursor)
					tbits = ret
				}

			case ir.OpStore:
				addr := m.eval(fr, in.Args[0])
				if addr == 0 || addr >= m.memWords {
					return 0, trapAt(TrapOOB)
				}
				val := m.eval(fr, in.Args[1])
				opsReady := maxi(m.readyOf(fr, in.Args[0]), m.readyOf(fr, in.Args[1]))
				m.timing.access(addr)
				m.timing.issue(opsReady, m.cfg.Timing.LatStore)
				m.mem[addr] = val

			case ir.OpLoad:
				addr := m.eval(fr, in.Args[0])
				if addr == 0 || addr >= m.memWords {
					return 0, trapAt(TrapOOB)
				}
				lat := m.timing.access(addr)
				done := m.timing.issue(m.readyOf(fr, in.Args[0]), lat)
				bits := m.mem[addr]
				fr.define(in.ID, bits, done)
				tbits = bits
				if m.opts.Profiler != nil {
					m.opts.Profiler.Record(in, bits)
				}

			case ir.OpAlloca:
				size := uint64(in.Args[0].(*ir.Const).Int())
				if m.sp+size > m.memWords {
					return 0, trapAt(TrapStackOverflow)
				}
				addr := m.sp
				m.sp += size
				done := m.timing.issue(0, m.cfg.Timing.LatInt)
				fr.define(in.ID, addr, done)
				tbits = addr

			case ir.OpCmpCheck:
				a := m.eval(fr, in.Args[0])
				b := m.eval(fr, in.Args[1])
				opsReady := maxi(m.readyOf(fr, in.Args[0]), m.readyOf(fr, in.Args[1]))
				m.timing.issue(opsReady, m.cfg.Timing.CheckLatency)
				if a != b {
					if t := m.checkFailed(in); t != nil {
						return 0, t
					}
				}

			case ir.OpRangeCheck:
				v := m.eval(fr, in.Args[0])
				lo := m.eval(fr, in.Args[1])
				hi := m.eval(fr, in.Args[2])
				m.timing.issue(m.readyOf(fr, in.Args[0]), m.cfg.Timing.CheckLatency)
				out := false
				if in.Args[0].Type() == ir.F64 {
					fv := math.Float64frombits(v)
					out = !(fv >= math.Float64frombits(lo) && fv <= math.Float64frombits(hi))
				} else {
					iv := int64(v)
					out = iv < int64(lo) || iv > int64(hi)
				}
				if out {
					if t := m.checkFailed(in); t != nil {
						return 0, t
					}
				}

			case ir.OpValCheck:
				v := m.eval(fr, in.Args[0])
				// Expected-value constants come from the value profiler,
				// which compares numerically — so must we: -0.0 profiles
				// as 0 and must satisfy a v==0 check (bitwise comparison
				// would fire on the profiled input itself). Float range
				// checks below already compare numerically for the same
				// reason.
				isF := in.Args[0].Type() == ir.F64
				eq := func(a, b uint64) bool {
					if isF {
						return math.Float64frombits(a) == math.Float64frombits(b)
					}
					return a == b
				}
				ok := eq(v, m.eval(fr, in.Args[1]))
				if !ok && len(in.Args) == 3 {
					ok = eq(v, m.eval(fr, in.Args[2]))
				}
				m.timing.issue(m.readyOf(fr, in.Args[0]), m.cfg.Timing.CheckLatency)
				if !ok {
					if t := m.checkFailed(in); t != nil {
						return 0, t
					}
				}

			default:
				bits, trap := m.evalArith(fr, in)
				if trap != nil {
					return 0, trap
				}
				var opsReady int64
				for _, a := range in.Args {
					if r := m.readyOf(fr, a); r > opsReady {
						opsReady = r
					}
				}
				done := m.timing.issue(opsReady, m.timing.latency(in))
				fr.define(in.ID, bits, done)
				tbits = bits
				if m.opts.Profiler != nil && (in.Ty == ir.I64 || in.Ty == ir.F64) {
					m.opts.Profiler.Record(in, bits)
				}
			}
			m.trace(fn, in, tbits)
		}
		// A verified function never falls off a block.
		return 0, trapAt(TrapBadCall)
	}
}

// checkFailed handles a failing software check: count or trap.
func (m *Machine) checkFailed(in *ir.Instr) *Trap {
	if m.opts.DisabledChecks != nil && m.opts.DisabledChecks[in.CheckID] {
		return nil
	}
	m.checkFails++
	if m.opts.CountChecks {
		m.perCheckFails[in.CheckID]++
		return nil
	}
	return &Trap{Kind: TrapCheck, Dyn: m.dyn, CheckID: in.CheckID, CheckKind: in.Check, Fn: in.Blk.Fn.Name}
}

// evalArith executes pure computations.
func (m *Machine) evalArith(fr *frame, in *ir.Instr) (uint64, *Trap) {
	a0 := m.eval(fr, in.Args[0])
	var a1 uint64
	if len(in.Args) > 1 {
		a1 = m.eval(fr, in.Args[1])
	}

	if in.Ty == ir.F64 && in.Op != ir.OpFToI {
		switch in.Op {
		case ir.OpAdd:
			return f2b(b2f(a0) + b2f(a1)), nil
		case ir.OpSub:
			return f2b(b2f(a0) - b2f(a1)), nil
		case ir.OpMul:
			return f2b(b2f(a0) * b2f(a1)), nil
		case ir.OpDiv:
			return f2b(b2f(a0) / b2f(a1)), nil
		case ir.OpRem:
			return f2b(math.Mod(b2f(a0), b2f(a1))), nil
		case ir.OpNeg:
			return f2b(-b2f(a0)), nil
		case ir.OpIToF:
			return f2b(float64(int64(a0))), nil
		case ir.OpIntrinsic:
			return m.evalIntrinsic(in, a0, a1, fr)
		}
	}

	x, y := int64(a0), int64(a1)
	switch in.Op {
	case ir.OpAdd:
		return uint64(x + y), nil
	case ir.OpSub:
		return uint64(x - y), nil
	case ir.OpMul:
		return uint64(x * y), nil
	case ir.OpDiv:
		if y == 0 {
			return 0, &Trap{Kind: TrapDivZero, Dyn: m.dyn, Fn: fr.fn.Name}
		}
		if x == math.MinInt64 && y == -1 {
			return uint64(x), nil // hardware-style overflow wrap
		}
		return uint64(x / y), nil
	case ir.OpRem:
		if y == 0 {
			return 0, &Trap{Kind: TrapDivZero, Dyn: m.dyn, Fn: fr.fn.Name}
		}
		if x == math.MinInt64 && y == -1 {
			return 0, nil
		}
		return uint64(x % y), nil
	case ir.OpAnd:
		return a0 & a1, nil
	case ir.OpOr:
		return a0 | a1, nil
	case ir.OpXor:
		return a0 ^ a1, nil
	case ir.OpShl:
		return uint64(x << uint(y&63)), nil
	case ir.OpShr:
		return uint64(x >> uint(y&63)), nil
	case ir.OpNeg:
		return uint64(-x), nil
	case ir.OpFToI:
		f := b2f(a0)
		switch {
		case math.IsNaN(f):
			return 0, nil
		case f >= math.MaxInt64:
			v := int64(math.MaxInt64)
			return uint64(v), nil
		case f <= math.MinInt64:
			v := int64(math.MinInt64)
			return uint64(v), nil
		}
		return uint64(int64(f)), nil
	case ir.OpPtrAdd:
		return a0 + a1, nil
	case ir.OpIntrinsic:
		return m.evalIntrinsic(in, a0, a1, fr)
	}

	// Comparisons: typed by operand.
	var cond bool
	if in.Args[0].Type() == ir.F64 {
		f0, f1 := b2f(a0), b2f(a1)
		switch in.Op {
		case ir.OpEq:
			cond = f0 == f1
		case ir.OpNe:
			cond = f0 != f1
		case ir.OpLt:
			cond = f0 < f1
		case ir.OpLe:
			cond = f0 <= f1
		case ir.OpGt:
			cond = f0 > f1
		case ir.OpGe:
			cond = f0 >= f1
		}
	} else {
		switch in.Op {
		case ir.OpEq:
			cond = a0 == a1
		case ir.OpNe:
			cond = a0 != a1
		case ir.OpLt:
			cond = x < y
		case ir.OpLe:
			cond = x <= y
		case ir.OpGt:
			cond = x > y
		case ir.OpGe:
			cond = x >= y
		}
	}
	if cond {
		return 1, nil
	}
	return 0, nil
}

func (m *Machine) evalIntrinsic(in *ir.Instr, a0, a1 uint64, fr *frame) (uint64, *Trap) {
	switch in.Intrinsic {
	case ir.IntrSqrt:
		return f2b(math.Sqrt(b2f(a0))), nil
	case ir.IntrFAbs:
		return f2b(math.Abs(b2f(a0))), nil
	case ir.IntrIAbs:
		v := int64(a0)
		if v < 0 {
			v = -v
		}
		return uint64(v), nil
	case ir.IntrFMin:
		return f2b(math.Min(b2f(a0), b2f(a1))), nil
	case ir.IntrFMax:
		return f2b(math.Max(b2f(a0), b2f(a1))), nil
	case ir.IntrIMin:
		if int64(a0) < int64(a1) {
			return a0, nil
		}
		return a1, nil
	case ir.IntrIMax:
		if int64(a0) > int64(a1) {
			return a0, nil
		}
		return a1, nil
	case ir.IntrExp:
		return f2b(math.Exp(b2f(a0))), nil
	case ir.IntrLog:
		return f2b(math.Log(b2f(a0))), nil
	case ir.IntrFloor:
		return f2b(math.Floor(b2f(a0))), nil
	case ir.IntrPow:
		return f2b(math.Pow(b2f(a0), b2f(a1))), nil
	case ir.IntrClampI:
		v, lo, hi := int64(a0), int64(a1), int64(m.eval(fr, in.Args[2]))
		if v < lo {
			v = lo
		}
		if v > hi {
			v = hi
		}
		return uint64(v), nil
	}
	return 0, &Trap{Kind: TrapBadCall, Dyn: m.dyn, Fn: fr.fn.Name}
}

func b2f(b uint64) float64 { return math.Float64frombits(b) }
func f2b(f float64) uint64 { return math.Float64bits(f) }

func maxi(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
