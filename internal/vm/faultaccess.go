package vm

// External fault-injection surface. The fault package's suspend-injected
// models (memory flips, multi-bit bursts, stuck-at and intermittent faults)
// park a machine at their injection point via RunOptions.SuspendAtDyn and
// corrupt its state through these accessors, then resume. They mutate
// architectural state only — register bits and memory words — never timing
// or bookkeeping, mirroring exactly what the in-engine register injector
// touches: the suspend/resume chain is bit-identical to an uninterrupted
// run, so the only observable difference such a trial carries is the
// corruption itself.

import "repro/internal/ir"

// Suspended reports whether the machine holds a suspended in-flight run
// (its last Run returned TrapSuspended, or it was Restored/peeled, and no
// Run, Reset or Restore has consumed that state since).
func (m *Machine) Suspended() bool { return len(m.susp) > 0 }

// LiveRegCount is the number of architecturally live register slots in the
// innermost suspended activation — the same population the in-engine
// register injector samples from. 0 when the machine is not suspended.
func (m *Machine) LiveRegCount() int {
	if len(m.susp) == 0 {
		return 0
	}
	return len(m.susp[0].fr.live)
}

// LiveReg returns the bits and static type of live register i (in
// definition order) of the innermost suspended activation.
func (m *Machine) LiveReg(i int) (bits uint64, ty ir.Type) {
	fr := m.susp[0].fr
	slot := int(fr.live[i])
	return fr.regs[slot].bits, m.info[fr.fn].slotTypes[slot]
}

// SetLiveReg overwrites the bits of live register i of the innermost
// suspended activation, leaving the slot's readiness (timing) untouched —
// the same mutation the in-engine injector performs.
func (m *Machine) SetLiveReg(i int, bits uint64) {
	fr := m.susp[0].fr
	fr.regs[int(fr.live[i])].bits = bits
}

// MemUsed is the extent of the architecturally visible memory image: word
// addresses [1, MemUsed()) hold the globals and the live stack. Address 0
// is the null guard and never part of the image.
func (m *Machine) MemUsed() uint64 { return m.sp }

// MemWord reads one memory word.
func (m *Machine) MemWord(addr uint64) uint64 { return m.mem[addr] }

// SetMemWord overwrites one memory word.
func (m *Machine) SetMemWord(addr, bits uint64) { m.mem[addr] = bits }
