package vm

// Superinstruction fusion for the precompiled engine.
//
// After lowerFunc finalizes a function's flat linst stream, fuseFunc walks it
// once and annotates each instruction that heads a hot adjacent pair with a
// fuseOp pattern id. The stream itself is NOT rewritten: constituents stay in
// place with their own opcodes, origOps, regions and operand slots, and the
// annotation lives in two otherwise-padding bytes of the 32-byte linst. The
// dispatch loop (engine.go) consults the annotation at the top of each
// iteration and, when the whole span provably fits below the unified event
// threshold, executes a dedicated straight-line handler for the pair —
// skipping one dispatch, one event compare, and the tracer/profiler nil
// tests per fused constituent.
//
// This side-band design is what keeps the engine's bit-identical-observability
// invariant cheap:
//
//   - Mid-span entry is free. A branch target, resume point, snapshot pc or
//     trap-retry landing on the second constituent simply dispatches it
//     through the normal unfused path — the fused annotation on the previous
//     pc is never consulted.
//   - Threshold fallback is automatic. The fused handler only runs when
//     dyn + fspan <= fuseEvent, where fspan counts the span's event-checked
//     dynamic increments and fuseEvent mirrors the engine's nextEvent
//     threshold. If a suspend point, fault trigger, watchdog bound or
//     cancellation poll lands anywhere inside the span, the condition fails
//     and the constituents execute unfused, hitting the event at exactly the
//     instruction the unfused engine would.
//   - Accounting needs no new machinery. Region-batched OpCounts fold the
//     static histograms of the unchanged stream; trap paths inside fused
//     handlers call uncountTail with the trapping constituent's pc, exactly
//     like their unfused counterparts, so regHist and regionEnd stay
//     consistent by construction.
//
// Pattern selection is empirical: dynamic adjacent-pair frequencies were
// measured over the 13 benchmark workloads under the original, dup, dupval
// and abft protection schemes (regionCounts x static in-region adjacency).
// The table below covers ~90% of measured in-region pair weight; the
// dominant patterns are the array-indexing chain (mul+add, add+load via
// ptradd, load+arith), compare+branch loop latches, loop-counter
// add+jmp(+phi) back edges, and FullDup's duplicated-producer signatures
// (add+add shadow pairs, add+cmpcheck, cmpcheck+jmp). Division, remainder,
// generic intrinsics, alloca, calls and non-CmpCheck checks never fuse:
// their trap/arity paths are cold and not worth replicating.

// fuseOp identifies the fused-pair pattern a linst heads; fNone on every
// instruction that does not begin a fused span. Patterns are keyed by
// computation, not opcode: lopAddI and lopPtrAdd share compute and latency
// class, so one "Add" pattern covers both (the handler reads latk and
// operands from the constituent linsts).
type fuseOp uint8

const (
	fNone fuseOp = iota

	// Integer arithmetic pairs ("Add" spans lopAddI and lopPtrAdd).
	fAddAdd
	fAddSub
	fAddLt
	fMulAdd
	fMulSub
	fMulMul
	fSubAdd
	fSubMul

	// Float arithmetic pairs.
	fAddAddF
	fMulAddF
	fMulMulF
	fSubMulF

	// Memory pairs (address-generation chains).
	fAddLoad
	fLoadAdd
	fLoadSub
	fLoadMul
	fAddStore

	// Control pairs.
	fCmpBrI
	fAddJmp
	fAddFJmp
	fJmpPhi

	// Duplicated-producer patterns (FullDup / ABFT shadow computation).
	fAddCmpCheck
	fCmpCheckJmp
)

// fuseOf matches an adjacent in-region pair (a, b) against the pattern
// table, returning the pattern and the span's event-checked dyn increments.
func fuseOf(a, b *linst) (fuseOp, uint8) {
	switch a.op {
	case lopAddI, lopPtrAdd:
		switch b.op {
		case lopAddI, lopPtrAdd:
			return fAddAdd, 2
		case lopSubI:
			return fAddSub, 2
		case lopLtI:
			return fAddLt, 2
		case lopLoad:
			return fAddLoad, 2
		case lopStore:
			return fAddStore, 2
		case lopJmp:
			return fAddJmp, 2
		case lopCmpCheck:
			return fAddCmpCheck, 2
		}
	case lopMulI:
		switch b.op {
		case lopAddI, lopPtrAdd:
			return fMulAdd, 2
		case lopSubI:
			return fMulSub, 2
		case lopMulI:
			return fMulMul, 2
		}
	case lopSubI:
		switch b.op {
		case lopAddI, lopPtrAdd:
			return fSubAdd, 2
		case lopMulI:
			return fSubMul, 2
		}
	case lopLoad:
		switch b.op {
		case lopAddI, lopPtrAdd:
			return fLoadAdd, 2
		case lopSubI:
			return fLoadSub, 2
		case lopMulI:
			return fLoadMul, 2
		}
	case lopAddF:
		switch b.op {
		case lopAddF:
			return fAddAddF, 2
		case lopJmp:
			return fAddFJmp, 2
		}
	case lopMulF:
		switch b.op {
		case lopAddF:
			return fMulAddF, 2
		case lopMulF:
			return fMulMulF, 2
		}
	case lopSubF:
		if b.op == lopMulF {
			return fSubMulF, 2
		}
	case lopEqI, lopNeI, lopLtI, lopLeI, lopGtI, lopGeI:
		// The branch handler reads its condition from l2.a0 like the unfused
		// lopBr, so the compare result need not feed the branch for the pair
		// to be exact (it almost always does).
		if b.op == lopBr {
			return fCmpBrI, 2
		}
	case lopCmpCheck:
		if b.op == lopJmp {
			return fCmpCheckJmp, 2
		}
	}
	return fNone, 0
}

// fuseFunc annotates ef's stream with fused-pair heads. Pair candidates must
// be adjacent within one accounting region — a block body; phi-edge segments
// have no recorded regionEnd and never pair — which excludes any span
// crossing control flow, and the fuseOf table excludes calls, checks (except
// the FullDup CmpCheck patterns) and trap-heavy arithmetic. A jump whose
// target is a single-phi edge segment additionally heads a jmp+phi pair; its
// fspan is 1 because phi copies never pass the event check (in either
// engine), though the handler still advances dyn by 2.
//
// Annotated heads may overlap (pc and pc+1 can both head pairs): execution
// entering at pc consumes both constituents and lands at pc+2, so pc+1's
// annotation only fires for control entering there directly. Overlap costs
// nothing and maximizes coverage without a scheduling pass.
func fuseFunc(ef *engFunc) {
	code := ef.code
	for pc := range code {
		li := &code[pc]
		if end := int(ef.regionEnd[ef.regionOf[pc]]); pc+1 < end {
			if f, span := fuseOf(li, &code[pc+1]); f != fNone {
				li.fop, li.fspan = f, span
				continue
			}
		}
		if li.op == lopJmp && code[li.then].op == lopPhiOne {
			li.fop, li.fspan = fJmpPhi, 1
		}
	}
}

// FuseMode controls superinstruction dispatch for one run.
type FuseMode uint8

const (
	// FuseAuto (the zero value) enables fused dispatch whenever the run has
	// no tracer and no profiler attached; traced or profiled runs always
	// take the per-instruction path, so per-instruction event streams never
	// need fused-op awareness.
	FuseAuto FuseMode = iota
	// FuseOff forces the per-instruction path unconditionally.
	FuseOff
)

// FusedSites reports how many instructions of the machine's lowered module
// head a fused span — a static property of the (module-cached) lowering.
// Zero under the tree engine.
func (m *Machine) FusedSites() int {
	if m.eng == nil {
		return 0
	}
	n := 0
	for _, ef := range m.eng.funcs {
		for pc := range ef.code {
			if ef.code[pc].fop != fNone {
				n++
			}
		}
	}
	return n
}

// FusedSteps reports how many fused-pair handlers this machine has executed
// since its last Reset. The counter is diagnostic — it is kept in a dispatch
// local and flushed on returns, suspensions and event-threshold passes, so a
// run that ends in a mid-region trap may undercount by the instructions
// since the last flush. It is not part of Result, Snapshot or the
// equivalence surface: fused and unfused runs differ in it by design.
func (m *Machine) FusedSteps() int64 { return m.fusedSteps }
