package vm

// White-box fusion tests: the side-band annotation layout, the invariants
// fuseFunc promises (annotated pairs round-trip the pattern table and never
// cross a region boundary), consistency of the static region histograms with
// the lowered stream the fused handlers account against, and bit-identical
// fallback when suspensions or fault triggers land inside a fused span.

import (
	"math/rand"
	"testing"
	"unsafe"

	"repro/internal/ir"
)

// TestLinstSize pins the instruction word at 32 bytes: the fop/fspan
// annotation must live in what used to be padding, not grow the stream.
func TestLinstSize(t *testing.T) {
	if s := unsafe.Sizeof(linst{}); s != 32 {
		t.Fatalf("linst size = %d bytes, want 32 (fop/fspan must fit the padding)", s)
	}
}

// fuseTestModules lowers a few representative modules covering arithmetic,
// memory, control and check patterns.
func fuseTestModules(t *testing.T) map[string]*Machine {
	t.Helper()
	mods := map[string]*ir.Module{
		"loop":  loopModule(t, 16),
		"binop": binOpModule(t, ir.OpAdd, ir.I64),
		"chk":   checkModule(t),
	}
	machines := make(map[string]*Machine, len(mods))
	for name, mod := range mods {
		mach, err := New(mod, DefaultConfig())
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		machines[name] = mach
	}
	return machines
}

// TestFuseAnnotations recomputes the expected annotation for every pc of the
// lowered stream and requires fuseFunc's output to match exactly: every
// in-region adjacent pair the table matches is annotated, every annotation
// round-trips fuseOf (or is a jmp→lopPhiOne pair with fspan 1), and nothing
// else carries a mark.
func TestFuseAnnotations(t *testing.T) {
	for name, mach := range fuseTestModules(t) {
		sites := 0
		for _, ef := range mach.eng.funcs {
			code := ef.code
			for pc := range code {
				li := &code[pc]
				wantOp, wantSpan := fNone, uint8(0)
				if end := int(ef.regionEnd[ef.regionOf[pc]]); pc+1 < end {
					wantOp, wantSpan = fuseOf(li, &code[pc+1])
				}
				if wantOp == fNone && li.op == lopJmp && code[li.then].op == lopPhiOne {
					wantOp, wantSpan = fJmpPhi, 1
				}
				if li.fop != wantOp || li.fspan != wantSpan {
					t.Errorf("%s/%s pc %d: annotation %d/%d, want %d/%d",
						name, ef.fn.Name, pc, li.fop, li.fspan, wantOp, wantSpan)
				}
				if li.fop != fNone {
					sites++
				}
			}
		}
		// checkModule is all range checks — nothing there pairs, by design.
		if sites == 0 && name != "chk" {
			t.Errorf("%s: no fused sites in the lowered module", name)
		}
		if got := mach.FusedSites(); got != sites {
			t.Errorf("%s: FusedSites() = %d, recount = %d", name, got, sites)
		}
	}
}

// TestRegHistMatchesStream recounts every accounting region's opcode
// histogram from the lowered stream and requires it to equal the static
// regHist the region-batched counters fold — body regions tally origOp up to
// regionEnd (the trailing lopFellOff sits past it), phi-edge segments carry
// exactly their move count under ir.OpPhi, and synthetic regions stay empty.
// Fused dispatch leaves the stream in place, so this must hold with the
// annotations applied.
func TestRegHistMatchesStream(t *testing.T) {
	for name, mach := range fuseTestModules(t) {
		for _, ef := range mach.eng.funcs {
			for r := range ef.regHist {
				var want [ir.NumOps]int64
				for pc := range ef.code {
					if int(ef.regionOf[pc]) != r {
						continue
					}
					li := &ef.code[pc]
					switch end := ef.regionEnd[r]; {
					case end > 0:
						if pc < int(end) {
							want[li.origOp]++
						}
					case li.op == lopPhiOne:
						want[ir.OpPhi]++
					case li.op == lopPhiSeq || li.op == lopPhiBatch:
						want[ir.OpPhi] += int64(li.els)
					}
				}
				var got [ir.NumOps]int64
				for _, h := range ef.regHist[r] {
					if h.n <= 0 {
						t.Errorf("%s/%s region %d: histogram entry %s with n=%d",
							name, ef.fn.Name, r, h.op, h.n)
					}
					got[h.op] += h.n
				}
				if want != got {
					t.Errorf("%s/%s region %d: regHist disagrees with stream\n got %v\nwant %v",
						name, ef.fn.Name, r, got, want)
				}
			}
		}
	}
}

// fusedVsUnfused runs the same bound machine twice from Reset and compares
// every architectural observable.
func fusedVsUnfused(t *testing.T, label string, mach *Machine, outName string) {
	t.Helper()
	run := func(mode FuseMode) (*Result, []uint64, int64) {
		mach.Reset()
		res := mach.Run(RunOptions{Fuse: mode})
		var out []uint64
		if outName != "" {
			var err error
			out, err = mach.ReadGlobal(outName)
			if err != nil {
				t.Fatalf("%s: %v", label, err)
			}
		}
		return res, out, mach.FusedSteps()
	}
	fr, fout, fsteps := run(FuseAuto)
	ur, uout, usteps := run(FuseOff)
	if fsteps == 0 {
		t.Errorf("%s: fused run executed no fused handlers", label)
	}
	if usteps != 0 {
		t.Errorf("%s: FuseOff run executed %d fused handlers", label, usteps)
	}
	if fr.Dyn != ur.Dyn || fr.Cycles != ur.Cycles {
		t.Errorf("%s: fused dyn/cycles %d/%d, unfused %d/%d", label, fr.Dyn, fr.Cycles, ur.Dyn, ur.Cycles)
	}
	if fr.OpCounts != ur.OpCounts {
		t.Errorf("%s: OpCounts diverge\nfused   %v\nunfused %v", label, fr.OpCounts, ur.OpCounts)
	}
	if (fr.Trap == nil) != (ur.Trap == nil) {
		t.Fatalf("%s: trap mismatch: fused %v, unfused %v", label, fr.Trap, ur.Trap)
	}
	if fr.Trap != nil && (fr.Trap.Kind != ur.Trap.Kind || fr.Trap.Dyn != ur.Trap.Dyn) {
		t.Errorf("%s: traps differ: fused %v, unfused %v", label, fr.Trap, ur.Trap)
	}
	for i := range fout {
		if fout[i] != uout[i] {
			t.Fatalf("%s: output[%d] = %#x fused, %#x unfused", label, i, fout[i], uout[i])
		}
	}
}

func TestFusedDispatchBitIdentical(t *testing.T) {
	m := loopModule(t, 64)
	mach, err := New(m, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	data := make([]int64, 64)
	for i := range data {
		data[i] = int64(i*7 - 100)
	}
	if err := mach.BindInputInts("in", data); err != nil {
		t.Fatal(err)
	}
	fusedVsUnfused(t, "loop", mach, "out")
}

// TestFusionSuspendEverywhere suspends at every dynamic index of a small
// run, on a fused and an unfused machine, and requires the two paused states
// to be interchangeable: same suspension point, snapshots that match the
// other machine's state, and identical completions. Every dyn value is
// covered, so in particular every suspension that lands inside a fused span
// exercises the threshold fallback.
func TestFusionSuspendEverywhere(t *testing.T) {
	m := loopModule(t, 12)
	data := make([]int64, 12)
	for i := range data {
		data[i] = int64(i + 1)
	}
	newMach := func() *Machine {
		mach, err := New(m, DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		if err := mach.BindInputInts("in", data); err != nil {
			t.Fatal(err)
		}
		mach.Reset()
		return mach
	}
	base := newMach()
	baseRes := base.Run(RunOptions{})
	if baseRes.Trap != nil {
		t.Fatalf("baseline trap: %v", baseRes.Trap)
	}
	if base.FusedSteps() == 0 {
		t.Fatal("baseline run fused nothing; sweep would be vacuous")
	}
	out, _ := base.ReadGlobalInts("out")

	for d := int64(1); d < baseRes.Dyn; d++ {
		fm, um := newMach(), newMach()
		fres := fm.Run(RunOptions{SuspendAtDyn: d})
		ures := um.Run(RunOptions{SuspendAtDyn: d, Fuse: FuseOff})
		if fres.Trap == nil || fres.Trap.Kind != TrapSuspended ||
			ures.Trap == nil || ures.Trap.Kind != TrapSuspended {
			t.Fatalf("dyn %d: expected suspensions, got fused %v unfused %v", d, fres.Trap, ures.Trap)
		}
		if fres.Trap.Dyn != ures.Trap.Dyn {
			t.Fatalf("dyn %d: fused suspended at %d, unfused at %d", d, fres.Trap.Dyn, ures.Trap.Dyn)
		}
		usnap, err := um.Snapshot()
		if err != nil {
			t.Fatalf("dyn %d: snapshot: %v", d, err)
		}
		if !fm.MatchesSnapshot(usnap) {
			t.Fatalf("dyn %d: fused machine does not match the unfused snapshot", d)
		}
		fdone := fm.Run(RunOptions{})
		udone := um.Run(RunOptions{Fuse: FuseOff})
		if fdone.Trap != nil || udone.Trap != nil {
			t.Fatalf("dyn %d: resume traps %v / %v", d, fdone.Trap, udone.Trap)
		}
		fout, _ := fm.ReadGlobalInts("out")
		uout, _ := um.ReadGlobalInts("out")
		if fm.Dyn() != base.Dyn() || um.Dyn() != base.Dyn() || fout[0] != out[0] || uout[0] != out[0] {
			t.Fatalf("dyn %d: stitched runs diverge: dyn %d/%d/%d out %d/%d/%d",
				d, fm.Dyn(), um.Dyn(), base.Dyn(), fout[0], uout[0], out[0])
		}
	}
}

// TestFusionFaultTriggerSweep fires a deterministic fault at every dynamic
// index — register flips and branch-target redirects — and requires the
// fused and unfused engines to pick the same victim and land in the same
// final state, even when the trigger falls mid-span.
func TestFusionFaultTriggerSweep(t *testing.T) {
	m := loopModule(t, 12)
	data := make([]int64, 12)
	for i := range data {
		data[i] = int64(i * 11)
	}
	base, err := New(m, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := base.BindInputInts("in", data); err != nil {
		t.Fatal(err)
	}
	base.Reset()
	baseRes := base.Run(RunOptions{})
	if baseRes.Trap != nil {
		t.Fatalf("baseline trap: %v", baseRes.Trap)
	}

	type outcome struct {
		trapKind  TrapKind
		dyn       int64
		cycles    int64
		out       int64
		injected  bool
		targetUID int
		oldBits   uint64
		newBits   uint64
	}
	run := func(kind FaultKind, trigger int64, mode FuseMode) outcome {
		mach, err := New(m, DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		if err := mach.BindInputInts("in", data); err != nil {
			t.Fatal(err)
		}
		mach.Reset()
		rng := rand.New(rand.NewSource(trigger*64 + int64(kind)))
		plan := &FaultPlan{
			Kind:       kind,
			TriggerDyn: trigger,
			PickSlot:   func(n int) int { return rng.Intn(n) },
			PickBit:    func() int { return rng.Intn(64) },
		}
		res := mach.Run(RunOptions{Fault: plan, Fuse: mode})
		o := outcome{
			dyn: res.Dyn, cycles: res.Cycles,
			injected: plan.Injected, targetUID: plan.TargetUID,
			oldBits: plan.OldBits, newBits: plan.NewBits,
		}
		if res.Trap != nil {
			o.trapKind = res.Trap.Kind
		} else if out, err := mach.ReadGlobalInts("out"); err == nil {
			o.out = out[0]
		}
		return o
	}
	for _, kind := range []FaultKind{FaultRegister, FaultBranchTarget} {
		for d := int64(1); d < baseRes.Dyn; d++ {
			if f, u := run(kind, d, FuseAuto), run(kind, d, FuseOff); f != u {
				t.Fatalf("kind %d trigger %d: fused %+v, unfused %+v", kind, d, f, u)
			}
		}
	}
}
