package vm_test

// Fusion equivalence grid: every built-in workload under every registered
// protection scheme must produce bit-identical observables with fused
// dispatch on and off — Result fields, opcode accounting, check counters and
// output memory. Traced runs take the per-instruction path by construction
// (FuseAuto disables fusion under a tracer), so the grid also pins the
// traced run's results to the fused run's: the trace surface cannot drift
// from what fused execution computes.

import (
	"testing"

	"repro/internal/core"
	"repro/internal/ir"
	"repro/internal/vm"
	"repro/internal/workloads"
)

// fusionRun executes mod on the fast engine without a tracer and reports
// the machine's fusion counters next to the usual observables.
func fusionRun(t *testing.T, w *workloads.Workload, mod *ir.Module, opts vm.RunOptions) (*engineRun, int, int64) {
	t.Helper()
	mach, err := vm.New(mod, vm.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Bind(mach, workloads.Test); err != nil {
		t.Fatal(err)
	}
	mach.Reset()
	res := mach.Run(opts)
	out, err := mach.ReadGlobal(w.Output)
	if err != nil {
		t.Fatal(err)
	}
	return &engineRun{res: res, out: out, plan: opts.Fault}, mach.FusedSites(), mach.FusedSteps()
}

// TestFusionEquivalence is the acceptance grid: all workloads × all
// registered schemes, fused vs unfused, in CountChecks mode so protected
// binaries exercise their check counters. Under the race detector the
// matrix trims to representative cells, mirroring the campaign suites.
func TestFusionEquivalence(t *testing.T) {
	modes := core.SchemeNames()
	names := make([]string, 0, 13)
	for _, w := range workloads.All() {
		names = append(names, w.Name)
	}
	if raceEnabled {
		names = []string{"tiff2bw", "g721dec", "svm", "kmeans"}
		modes = []string{core.SchemeOriginal, core.SchemeFullDup}
	}
	for _, name := range names {
		for _, mode := range modes {
			name, mode := name, mode
			t.Run(name+"/"+mode, func(t *testing.T) {
				t.Parallel()
				w := workloads.ByName(name)
				prot := protectedModule(t, w, mode)
				opts := vm.RunOptions{CountChecks: true}

				fused, sites, fsteps := fusionRun(t, w, prot, opts)
				unfused, _, usteps := fusionRun(t, w, prot, vm.RunOptions{CountChecks: true, Fuse: vm.FuseOff})
				diffRuns(t, name+"/"+mode, fused, unfused)
				if sites == 0 {
					t.Error("no fused sites: the grid cell is vacuous")
				}
				if fsteps == 0 {
					t.Error("fused run executed no fused handlers")
				}
				if usteps != 0 {
					t.Errorf("FuseOff run executed %d fused handlers", usteps)
				}

				// The traced run unfuses automatically; its results must
				// still match the fused run exactly (the trace fields are
				// its own surface, compared against the tree engine in the
				// engine equivalence suite).
				traced := runEngine(t, w, prot, vm.EngineFast, workloads.Test, opts)
				traced.traceN, traced.traceH = 0, 0
				diffRuns(t, name+"/"+mode+"/traced", fused, traced)
			})
		}
	}
}

// TestFusionEquivalenceProfiled pins the profiled path the same way: a
// profiler forces per-instruction dispatch, and the collected profile must
// match a FuseOff run's bit for bit (dupval's expected-value thresholds are
// derived from it).
func TestFusionEquivalenceProfiled(t *testing.T) {
	w := workloads.ByName("jpegdec")
	mod, err := w.Compile()
	if err != nil {
		t.Fatal(err)
	}
	fused, _, steps := fusionRun(t, w, mod, vm.RunOptions{})
	unfused, _, _ := fusionRun(t, w, mod, vm.RunOptions{Fuse: vm.FuseOff})
	diffRuns(t, "jpegdec", fused, unfused)
	if steps == 0 {
		t.Fatal("fused run executed no fused handlers")
	}
	prof := protectedModule(t, w, core.SchemeDupVal) // profiles on Train internally
	fusedP, _, _ := fusionRun(t, w, prof, vm.RunOptions{CountChecks: true})
	unfusedP, _, _ := fusionRun(t, w, prof, vm.RunOptions{CountChecks: true, Fuse: vm.FuseOff})
	diffRuns(t, "jpegdec/dupval", fusedP, unfusedP)
}
