package vm

// Precompiled execution engine, part 1: lowering.
//
// Each ir.Func is lowered once per module revision into a dense, flat
// instruction stream with pre-resolved operand slots, constants and global
// base addresses inlined, latencies classified, and branch targets resolved
// to instruction-stream offsets. Phi shuffles are compiled into per-CFG-edge
// parallel-copy batches so the hot loop never consults predecessor blocks.
//
// The lowering is cached on the ir.Module (Module.ExecCache) and shared by
// every Machine a fault campaign creates; engine.go holds the dispatch loop.
// Equivalence with the reference tree-walking interpreter (exec.go) is
// machine-checked — by the difftest oracle's engine cross-check invariant and
// by the engine equivalence tests — not asserted: both engines must produce
// bit-identical outputs, dynamic counts, cycle counts, check behavior, trace
// streams and fault attributions.

import (
	"repro/internal/ir"
)

// lop is a specialized lowered opcode: ir.Op × operand type resolved at
// lowering time so the dispatch loop needs no per-instruction type tests.
type lop uint8

// Lowered opcodes. The first four are pseudo-ops handled before the
// per-instruction preamble (they do not count as dynamic instructions).
const (
	lopBadEdge  lop = iota // phi with no incoming value for the arriving edge
	lopFellOff             // control fell off the end of a block
	lopPhiBatch            // per-edge parallel copy of the successor's phis
	lopPhiSeq              // hazard-free batch: single pass, no read scratch
	lopPhiOne              // single-phi edge: the batch machinery is overkill

	lopJmp
	lopBr
	lopRet
	lopCall
	lopLoad
	lopStore
	lopAlloca
	lopCmpCheck
	lopRangeCheckI
	lopRangeCheckF
	lopValCheckI
	lopValCheckF

	// Everything from lopIntrinsic on is a define-tail computation: the
	// dispatch loop tests op >= lopIntrinsic to enter the straight-line
	// path that shares one issue/define/profile/trace tail. Within the
	// zone, opcodes are ordered by arity — generic (nargs-driven), then
	// unary, then binary — so the dispatch loop resolves operand count
	// with compares on the opcode instead of loading nargs.

	// Generic-arity zone: operand fetch driven by nargs.
	lopIntrinsic // intrinsic of unusual arity (unknown kinds included)
	// lopZero is an op/type combination outside the interpreter's defined
	// set: it evaluates operands for readiness and defines 0 (the
	// reference interpreter's fall-through behavior on unverified IR).
	lopZero

	// Unary zone: op >= lopFirstUnary reads a0 only.
	lopNegI
	lopFToI
	lopNegF
	lopIToF
	lopIntrinsic1 // one-operand intrinsic; kind in aux

	// Binary zone: op >= lopFirstBinary reads a0 and a1.
	lopAddI
	lopSubI
	lopMulI
	lopDivI
	lopRemI
	lopAnd
	lopOr
	lopXor
	lopShl
	lopShr
	lopPtrAdd
	lopAddF
	lopSubF
	lopMulF
	lopDivF
	lopRemF
	lopEqI
	lopNeI
	lopLtI
	lopLeI
	lopGtI
	lopGeI
	lopEqF
	lopNeF
	lopLtF
	lopLeF
	lopGtF
	lopGeF
	lopIntrinsic2 // two-operand intrinsic; kind in aux
	lopClampI     // clamp(v, lo, hi): the one three-operand intrinsic; hi in aux
)

// Arity-zone boundaries (see the lop commentary above).
const (
	lopFirstUnary  = lopNegI
	lopFirstBinary = lopAddI
)

// latKind indexes the per-machine latency table; resolved at lowering time
// from the same decision tree as timing.latency.
type latKind uint8

const (
	latInt latKind = iota
	latMul
	latDiv
	latFAdd
	latFMul
	latFDiv
	latIntrin
	latStore
	latCheck
	latCount
)

// latTableFrom bakes a TimingConfig into a dense latency table.
func latTableFrom(c TimingConfig) [latCount]int64 {
	var t [latCount]int64
	t[latInt] = c.LatInt
	t[latMul] = c.LatMul
	t[latDiv] = c.LatDiv
	t[latFAdd] = c.LatFAdd
	t[latFMul] = c.LatFMul
	t[latFDiv] = c.LatFDiv
	t[latIntrin] = c.LatIntrin
	t[latStore] = c.LatStore
	t[latCheck] = c.CheckLatency
	return t
}

// latKindOf mirrors timing.latency, resolving the latency class statically.
func latKindOf(in *ir.Instr) latKind {
	switch in.Op {
	case ir.OpAdd, ir.OpSub:
		if in.Ty == ir.F64 {
			return latFAdd
		}
		return latInt
	case ir.OpMul:
		if in.Ty == ir.F64 {
			return latFMul
		}
		return latMul
	case ir.OpDiv, ir.OpRem:
		if in.Ty == ir.F64 {
			return latFDiv
		}
		return latDiv
	case ir.OpIToF, ir.OpFToI:
		return latFAdd
	case ir.OpIntrinsic:
		switch in.Intrinsic {
		case ir.IntrIAbs, ir.IntrIMin, ir.IntrIMax, ir.IntrClampI, ir.IntrFMin, ir.IntrFMax, ir.IntrFAbs:
			return latInt
		}
		return latIntrin
	case ir.OpStore:
		return latStore
	case ir.OpCmpCheck, ir.OpRangeCheck, ir.OpValCheck:
		return latCheck
	}
	return latInt
}

// Operands are pre-resolved int32 frame slots. Slots below NumValues hold
// params and instruction results; slots at NumValues and above are read-only
// extension slots holding the function's deduplicated constants and global
// base addresses, pre-filled when a frame is allocated (engine.go getFrame).
// The dispatch loop therefore reads any operand with one unconditional
// indexed load — no immediate-vs-register branch.

// phiMove is one element of a per-edge parallel copy.
type phiMove struct {
	dst int32
	src int32
	in  *ir.Instr // the phi, for tracing
}

// callSite is the out-of-line payload of a lopCall (arbitrary arity).
type callSite struct {
	callee *engFunc
	args   []int32
}

// linst is one lowered instruction. The layout is deliberately compact —
// 32 bytes, two per cache line — because instruction-fetch bandwidth
// dominates the dispatch loop. The aux field is shared by uses that never
// coincide: the branch predictor id (lopBr), the intrinsic kind
// (lopIntrinsic*), the third operand slot (three-operand checks, lopClampI,
// lopAlloca's frame-size constant), and the side-table index for
// variable-length payloads (lopCall argument lists, phi parallel copies).
// The original instruction pointer lives in the cold engFunc.ins side array,
// touched only by tracer/profiler/check/attribution paths.
type linst struct {
	op     lop
	latk   latKind
	prof   bool   // eligible for the value profiler (loads, I64/F64 results)
	nargs  uint8  // operand count (consulted only in the generic-arity zone)
	origOp ir.Op  // opcode counted in Result.OpCounts
	fop    fuseOp // fused-pair pattern this instruction heads (fuse.go), fNone otherwise
	fspan  uint8  // event-checked dyn increments in the fused span
	dst    int32  // destination frame slot, -1 for void
	then   int32  // branch target pc / phi continuation pc
	els    int32  // lopBr false-target pc; lopPhiBatch/lopPhiSeq batch length
	a0     int32
	a1     int32
	aux    int32 // see above
}

// histEntry is one line of a region's static opcode histogram.
type histEntry struct {
	op ir.Op
	n  int64
}

// engFunc is one lowered function.
type engFunc struct {
	fn       *ir.Func
	idx      int // index into engModule.funcs / Machine.pools
	code     []linst
	ins      []*ir.Instr // pc -> original instruction (nil for pseudo-ops)
	entry    int32
	bodyPC   []int32  // block index -> pc of the block's first non-phi instruction
	consts   []uint64 // extension-slot images, framed at NumValues upward
	calls    []callSite
	phiMoves []phiMove // flat parallel-copy pool; batches are [aux, aux+els) slices

	// Region-batched opcode accounting. A region is a block body or one
	// phi-edge segment; the dispatch loop bumps one per-region counter at
	// each region entry instead of a per-instruction opCounts update, and
	// Run folds counter x histogram back into Result.OpCounts. Trap paths
	// subtract the unexecuted tail of the current region (engine.go
	// uncountTail), keeping the totals bit-identical to the reference
	// interpreter's per-instruction counting.
	regionOf  []int32       // pc -> region id
	regionEnd []int32       // region id -> pc just past its last real instruction
	regHist   [][]histEntry // region id -> static opcode histogram
}

// engModule is a lowered module, shared by every Machine built from the
// same ir.Module revision. Immutable after lowerModule returns.
type engModule struct {
	funcs []*engFunc
	byFn  map[*ir.Func]*engFunc
}

// lowerModule lowers every function of mod. Global base addresses are
// assigned exactly as Machine.New lays them out (address 1 upward in
// declaration order), so they can be inlined as immediates.
func lowerModule(mod *ir.Module) *engModule {
	em := &engModule{byFn: make(map[*ir.Func]*engFunc, len(mod.Funcs))}
	base := make(map[string]uint64, len(mod.Globals))
	addr := uint64(1)
	for _, g := range mod.Globals {
		base[g.Name] = addr
		addr += uint64(g.Size)
	}
	for i, f := range mod.Funcs {
		ef := &engFunc{fn: f, idx: i}
		em.funcs = append(em.funcs, ef)
		em.byFn[f] = ef
	}
	for _, ef := range em.funcs {
		em.lowerFunc(ef, base)
	}
	return em
}

// fixup records a branch whose target pc depends on a not-yet-emitted edge.
type fixup struct {
	pc   int
	from *ir.Block
	to   *ir.Block
	els  bool
}

func (em *engModule) lowerFunc(ef *engFunc, base map[string]uint64) {
	fn := ef.fn
	ef.bodyPC = make([]int32, len(fn.Blocks))
	var code []linst
	var ins []*ir.Instr // kept in lockstep with code
	var regionOf []int32
	var fixups []fixup

	// newRegion opens accounting region id covering code emitted from here
	// until the caller stops assigning it; end is patched by endRegion.
	newRegion := func(hist []histEntry) int32 {
		id := int32(len(ef.regionEnd))
		ef.regionEnd = append(ef.regionEnd, 0)
		ef.regHist = append(ef.regHist, hist)
		return id
	}

	// konst interns a constant into the per-function pool and returns its
	// extension slot (NumValues upward).
	pool := make(map[uint64]int32)
	nvals := int32(fn.NumValues())
	konst := func(bits uint64) int32 {
		if s, ok := pool[bits]; ok {
			return s
		}
		s := nvals + int32(len(ef.consts))
		ef.consts = append(ef.consts, bits)
		pool[bits] = s
		return s
	}

	for _, b := range fn.Blocks {
		ef.bodyPC[b.Index] = int32(len(code))
		phis := b.Phis()
		var tally [ir.NumOps]int64
		var hist []histEntry
		for _, in := range b.Instrs[len(phis):] {
			if tally[in.Op] == 0 {
				hist = append(hist, histEntry{op: in.Op})
			}
			tally[in.Op]++
		}
		for i := range hist {
			hist[i].n = tally[hist[i].op]
		}
		region := newRegion(hist)
		for _, in := range b.Instrs[len(phis):] {
			switch in.Op {
			case ir.OpJmp:
				fixups = append(fixups, fixup{pc: len(code), from: b, to: in.Then})
			case ir.OpBr:
				fixups = append(fixups, fixup{pc: len(code), from: b, to: in.Then})
				fixups = append(fixups, fixup{pc: len(code), from: b, to: in.Else, els: true})
			}
			code = append(code, em.lowerInstr(ef, in, base, konst))
			ins = append(ins, in)
			regionOf = append(regionOf, region)
		}
		ef.regionEnd[region] = int32(len(code))
		// The interpreter traps when a block runs out of instructions
		// without transferring control; unreachable after a terminator.
		code = append(code, linst{op: lopFellOff})
		ins = append(ins, nil)
		regionOf = append(regionOf, region)
	}

	// Edge segments: one parallel-copy batch per (pred, succ) edge whose
	// successor opens with phis; phi-free targets are entered directly.
	type edgeKey struct{ from, to int }
	edgePC := make(map[edgeKey]int32)
	edge := func(from, to *ir.Block) int32 {
		phis := to.Phis()
		if len(phis) == 0 {
			return ef.bodyPC[to.Index]
		}
		k := edgeKey{from.Index, to.Index}
		if pc, ok := edgePC[k]; ok {
			return pc
		}
		pc := int32(len(code))
		moves := make([]phiMove, 0, len(phis))
		ok := true
		for _, phi := range phis {
			v := phi.PhiIncoming(from)
			if v == nil {
				ok = false
				break
			}
			moves = append(moves, phiMove{dst: int32(phi.ID), src: lowerOperand(v, base, konst), in: phi})
		}
		switch {
		case ok && len(moves) == 1:
			// Most edges carry exactly one phi (loop counters); skip the
			// batch machinery entirely.
			mv := moves[0]
			code = append(code, linst{op: lopPhiOne, dst: mv.dst, a0: mv.src, then: ef.bodyPC[to.Index]})
			ins = append(ins, mv.in)
			regionOf = append(regionOf, newRegion([]histEntry{{op: ir.OpPhi, n: 1}}))
		case ok:
			// The interpreter reads every incoming value before defining any
			// phi (a parallel copy). When no destination feeds a later move's
			// source, a single forward pass reads the same values, so the
			// cheaper sequential form is exact.
			op := lopPhiSeq
		hazard:
			for j := range moves {
				for k := j + 1; k < len(moves); k++ {
					if moves[j].dst == moves[k].src {
						op = lopPhiBatch
						break hazard
					}
				}
			}
			code = append(code, linst{op: op, aux: int32(len(ef.phiMoves)), els: int32(len(moves)), then: ef.bodyPC[to.Index]})
			ins = append(ins, nil)
			regionOf = append(regionOf, newRegion([]histEntry{{op: ir.OpPhi, n: int64(len(moves))}}))
			ef.phiMoves = append(ef.phiMoves, moves...)
		default:
			code = append(code, linst{op: lopBadEdge})
			ins = append(ins, nil)
			regionOf = append(regionOf, newRegion(nil))
		}
		edgePC[k] = pc
		return pc
	}
	for _, fx := range fixups {
		pc := edge(fx.from, fx.to)
		if fx.els {
			code[fx.pc].els = pc
		} else {
			code[fx.pc].then = pc
		}
	}

	switch {
	case len(fn.Blocks) == 0:
		ef.entry = int32(len(code))
		code = append(code, linst{op: lopFellOff})
		ins = append(ins, nil)
		regionOf = append(regionOf, newRegion(nil))
	case len(fn.Entry().Phis()) > 0:
		// A phi at function entry has no incoming edge; the reference
		// interpreter traps before executing anything.
		ef.entry = int32(len(code))
		code = append(code, linst{op: lopBadEdge})
		ins = append(ins, nil)
		regionOf = append(regionOf, newRegion(nil))
	default:
		ef.entry = ef.bodyPC[0]
	}
	ef.code = code
	ef.ins = ins
	ef.regionOf = regionOf

	// Pre-resolve the accounting region each control transfer lands in, so
	// the dispatch loop bumps one counter instead of chasing regionOf[pc]
	// on the critical path. The fields are free on these ops: els on jmp,
	// dst/a1 on br (no result, one operand), a1 on the phi pseudo-ops.
	// Branch-fault redirections still resolve through regionOf at runtime.
	for pc := range code {
		li := &code[pc]
		switch li.op {
		case lopJmp:
			li.els = regionOf[li.then]
		case lopBr:
			li.dst = regionOf[li.then]
			li.a1 = regionOf[li.els]
		case lopPhiOne, lopPhiSeq, lopPhiBatch:
			li.a1 = regionOf[li.then]
		}
	}

	// Superinstruction annotation runs last, over the finalized stream: it
	// reads resolved branch targets and region bounds and writes only the
	// side-band fop/fspan bytes (fuse.go). Baked into the module-cached
	// lowering unconditionally; whether fused dispatch actually runs is a
	// per-run decision (RunOptions.Fuse and the engine's fuseEvent gate).
	fuseFunc(ef)
}

func (em *engModule) lowerInstr(ef *engFunc, in *ir.Instr, base map[string]uint64, konst func(uint64) int32) linst {
	li := linst{origOp: in.Op, latk: latKindOf(in), dst: -1}
	lowerArgs := func() {
		li.nargs = uint8(len(in.Args))
		switch {
		case len(in.Args) > 3:
			panic("vm: non-call instruction with more than three operands")
		case len(in.Args) > 2:
			li.aux = lowerOperand(in.Args[2], base, konst)
			fallthrough
		case len(in.Args) > 1:
			li.a1 = lowerOperand(in.Args[1], base, konst)
			fallthrough
		case len(in.Args) > 0:
			li.a0 = lowerOperand(in.Args[0], base, konst)
		}
	}
	switch in.Op {
	case ir.OpJmp:
		li.op = lopJmp
	case ir.OpBr:
		li.op = lopBr
		lowerArgs()
		li.aux = int32(in.UID) // after lowerArgs: a two-operand op, aux is free
	case ir.OpRet:
		li.op = lopRet
		lowerArgs()
	case ir.OpCall:
		li.op = lopCall
		li.aux = int32(len(ef.calls))
		if in.Ty != ir.Void {
			li.dst = int32(in.ID)
		}
		cs := callSite{callee: em.byFn[in.Callee], args: make([]int32, len(in.Args))}
		for i, a := range in.Args {
			cs.args[i] = lowerOperand(a, base, konst)
		}
		ef.calls = append(ef.calls, cs)
	case ir.OpLoad:
		li.op = lopLoad
		li.dst = int32(in.ID)
		li.prof = true
		lowerArgs()
	case ir.OpStore:
		li.op = lopStore
		lowerArgs()
	case ir.OpAlloca:
		li.op = lopAlloca
		li.dst = int32(in.ID)
		li.aux = konst(uint64(in.Args[0].(*ir.Const).Int()))
	case ir.OpCmpCheck:
		li.op = lopCmpCheck
		lowerArgs()
	case ir.OpRangeCheck:
		li.op = lopRangeCheckI
		if in.Args[0].Type() == ir.F64 {
			li.op = lopRangeCheckF
		}
		lowerArgs()
	case ir.OpValCheck:
		li.op = lopValCheckI
		if in.Args[0].Type() == ir.F64 {
			li.op = lopValCheckF
		}
		lowerArgs()
	case ir.OpIntrinsic:
		li.dst = int32(in.ID)
		li.prof = in.Ty == ir.I64 || in.Ty == ir.F64
		lowerArgs()
		// Arity-zoned forms carry the kind in aux; clamp — the one
		// three-operand intrinsic — gets its own opcode so aux can hold
		// the third operand instead (lowerArgs already put it there).
		switch {
		case in.Intrinsic == ir.IntrClampI && len(in.Args) == 3:
			li.op = lopClampI
		case len(in.Args) == 1:
			li.op = lopIntrinsic1
			li.aux = int32(in.Intrinsic)
		case len(in.Args) == 2:
			li.op = lopIntrinsic2
			li.aux = int32(in.Intrinsic)
		default:
			// Unusual arity: aux keeps whatever lowerArgs put there (the
			// third operand for readiness); the kind is read from the ins
			// side table on this cold path.
			li.op = lopIntrinsic
		}
	default:
		li.op = lowerArith(in)
		li.dst = int32(in.ID)
		li.prof = in.Ty == ir.I64 || in.Ty == ir.F64
		lowerArgs()
	}
	return li
}

// lowerArith resolves a pure computation to a typed opcode, replicating
// evalArith's decision tree: the float forms apply only to F64-typed
// results (FToI excepted), comparisons are typed by their first operand,
// and anything else falls through to the interpreter's implicit zero.
func lowerArith(in *ir.Instr) lop {
	if in.Ty == ir.F64 && in.Op != ir.OpFToI {
		switch in.Op {
		case ir.OpAdd:
			return lopAddF
		case ir.OpSub:
			return lopSubF
		case ir.OpMul:
			return lopMulF
		case ir.OpDiv:
			return lopDivF
		case ir.OpRem:
			return lopRemF
		case ir.OpNeg:
			return lopNegF
		case ir.OpIToF:
			return lopIToF
		}
	}
	switch in.Op {
	case ir.OpAdd:
		return lopAddI
	case ir.OpSub:
		return lopSubI
	case ir.OpMul:
		return lopMulI
	case ir.OpDiv:
		return lopDivI
	case ir.OpRem:
		return lopRemI
	case ir.OpAnd:
		return lopAnd
	case ir.OpOr:
		return lopOr
	case ir.OpXor:
		return lopXor
	case ir.OpShl:
		return lopShl
	case ir.OpShr:
		return lopShr
	case ir.OpNeg:
		return lopNegI
	case ir.OpFToI:
		return lopFToI
	case ir.OpPtrAdd:
		return lopPtrAdd
	}
	if in.Op.IsCompare() {
		if len(in.Args) > 0 && in.Args[0].Type() == ir.F64 {
			switch in.Op {
			case ir.OpEq:
				return lopEqF
			case ir.OpNe:
				return lopNeF
			case ir.OpLt:
				return lopLtF
			case ir.OpLe:
				return lopLeF
			case ir.OpGt:
				return lopGtF
			case ir.OpGe:
				return lopGeF
			}
		}
		switch in.Op {
		case ir.OpEq:
			return lopEqI
		case ir.OpNe:
			return lopNeI
		case ir.OpLt:
			return lopLtI
		case ir.OpLe:
			return lopLeI
		case ir.OpGt:
			return lopGtI
		case ir.OpGe:
			return lopGeI
		}
	}
	return lopZero
}

func lowerOperand(v ir.Value, base map[string]uint64, konst func(uint64) int32) int32 {
	switch x := v.(type) {
	case *ir.Const:
		return konst(x.Bits)
	case *ir.Param:
		return int32(x.ID)
	case *ir.Instr:
		return int32(x.ID)
	case *ir.Global:
		return konst(base[x.Name])
	}
	panic("vm: unknown value kind")
}
