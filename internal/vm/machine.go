package vm

import (
	"fmt"
	"math"
	"sync"
	"time"

	"repro/internal/ir"
)

// EngineKind selects the execution engine.
type EngineKind uint8

// Engines. Both implement the same observable semantics — outputs, traps,
// Dyn, Cycles, check behavior, trace stream and fault attribution are
// bit-identical; the difftest oracle cross-checks them on every run.
const (
	// EngineFast (the default) precompiles each function into a flat
	// instruction stream with pre-resolved operands (lower.go/engine.go).
	// The lowering is cached on the module and shared across machines.
	EngineFast EngineKind = iota
	// EngineTree is the original tree-walking interpreter (exec.go), kept
	// as the reference for differential testing.
	EngineTree
)

// Config sizes the simulated machine.
type Config struct {
	StackWords int   // words reserved for alloca frames
	MaxDyn     int64 // watchdog: dynamic instruction budget
	MaxDepth   int   // call depth limit
	Timing     TimingConfig
	Engine     EngineKind
}

// DefaultConfig returns the configuration used by all experiments.
func DefaultConfig() Config {
	return Config{
		StackWords: 1 << 16,
		MaxDyn:     400_000_000,
		MaxDepth:   512,
		Timing:     DefaultTiming(),
	}
}

// Profiler receives every profiled value produced during a run. Implemented
// by the value profiler (package profile).
type Profiler interface {
	Record(in *ir.Instr, bits uint64)
}

// FaultKind selects what the injected fault corrupts.
type FaultKind uint8

// Fault kinds.
const (
	// FaultRegister flips one bit of a live register (the paper's model).
	FaultRegister FaultKind = iota
	// FaultBranchTarget redirects the next taken branch to a random block
	// of the executing function — the class of faults the paper defers to
	// signature-based control-flow checking (§IV-C).
	FaultBranchTarget
)

// FaultPlan describes a single transient fault: at dynamic instruction
// TriggerDyn, flip bit PickBit() of a live register chosen by PickSlot
// (FaultRegister), or redirect the next branch to a PickSlot-chosen block
// (FaultBranchTarget). The plan records what was hit so the campaign can
// attribute outcome classes to value-change magnitudes (Figure 2).
type FaultPlan struct {
	Kind       FaultKind
	TriggerDyn int64
	PickSlot   func(nLive int) int // index into the live-register list
	PickBit    func() int          // 0..63

	// Results, filled in by the machine.
	Injected  bool
	TargetUID int     // UID of the defining instruction, or -1 for a param
	TargetTy  ir.Type // static type of the corrupted register
	OldBits   uint64
	NewBits   uint64
	Bit       int
	RelChange float64 // |new-old| / max(|old|, 1) in the register's type
}

// RunOptions controls a single run.
type RunOptions struct {
	Profiler Profiler
	Fault    *FaultPlan
	// Tracer, when set, receives one event per executed instruction.
	Tracer Tracer
	// CountChecks makes check failures increment counters instead of
	// trapping; used for the false-positive experiment.
	CountChecks bool
	// DisabledChecks suppresses specific CheckIDs. The fault campaign
	// disables checks that fire on the fault-free golden run, modeling the
	// paper's policy of recovering once per check and ignoring a check
	// that fails again (persistent false positive).
	DisabledChecks map[int]bool
	// Stop, when non-nil, is polled every few thousand dynamic
	// instructions; once it is closed the run terminates with a
	// TrapCancelled. Program.RunContext wires a context's Done channel
	// here so long runs are interruptible.
	Stop <-chan struct{}
	// SuspendAtDyn, when positive, pauses the run at the first
	// fault-eligible (non-phi) instruction whose dynamic index reaches the
	// value: Run returns a TrapSuspended result, the machine keeps the
	// in-flight call chain, and the next Run continues where it left off.
	// A suspended machine can be captured with Snapshot and re-armed on any
	// machine over the same module with Restore. The suspend point is folded
	// into the engine's unified event threshold, so the dispatch loop pays
	// nothing when it is unset. Fast engine only; the tree interpreter
	// ignores it.
	SuspendAtDyn int64
	// Deadline, when nonzero, bounds the run in wall clock: it is polled at
	// the same cadence as Stop and the run terminates with a TrapDeadline
	// once the clock passes it. Layered over MaxDyn, it reaps runs the
	// dynamic-instruction watchdog cannot bound — a stuck host, a
	// pathologically slow trial — at the price of wall-clock nondeterminism,
	// so campaign code must treat TrapDeadline as "unknown", never as an
	// outcome. Zero (the default) disables the poll entirely.
	Deadline time.Time
	// Fuse controls superinstruction dispatch (fast engine only): FuseAuto
	// (the default) executes annotated hot instruction pairs through fused
	// straight-line handlers whenever the span fits below the unified event
	// threshold; FuseOff forces the per-instruction path. The two settings
	// are bit-identical in every observable — Result, OpCounts, traces,
	// timing, snapshots, fault attribution — which the fusion equivalence
	// suite and the difftest fuse-diff invariant enforce; FuseOff exists as
	// an escape hatch and as the oracle's reference leg.
	Fuse FuseMode
}

// Result summarizes a completed (or trapped) run.
type Result struct {
	Ret        uint64
	Dyn        int64 // dynamic instructions executed
	Cycles     int64 // timing-model cycles
	Trap       *Trap // nil when the program ran to completion
	CheckFails int64 // only populated with RunOptions.CountChecks
	// PerCheckFails maps CheckID -> fail count (CountChecks mode only).
	PerCheckFails map[int]int64
	OpCounts      [ir.NumOps]int64
}

// funcInfo caches static per-function interpreter metadata.
type funcInfo struct {
	slotTypes []ir.Type // frame slot -> static type
}

// vmShared is the module-wide execution artifact held in Module.ExecCache:
// interpreter metadata plus, when the fast engine is in use, the lowering.
// Each part is built at most once per module revision; every machine over
// the same revision shares both. All fields are immutable once built.
type vmShared struct {
	infoOnce sync.Once
	info     map[*ir.Func]*funcInfo
	engOnce  sync.Once
	eng      *engModule
}

// Machine interprets one module instance. Not safe for concurrent use; the
// fault campaign gives each worker its own Machine.
type Machine struct {
	mod *ir.Module
	cfg Config

	mem        []uint64
	globalBase map[string]uint64
	stackBase  uint64
	memWords   uint64
	sp         uint64

	inputs map[string][]uint64 // host-bound globals, re-applied on Reset

	timing *timing
	info   map[*ir.Func]*funcInfo
	main   *ir.Func

	// Precompiled-engine state (nil/zero under EngineTree). The lowering is
	// shared module-wide; frame pools and scratch buffers are per machine.
	eng          *engModule
	engMain      *engFunc
	lats         [latCount]int64
	pools        [][]*frame
	phiScratch   []uint64
	callScratch  []uint64
	regionCounts [][]int64 // per engFunc: region-entry counters (see foldRegionCounts)

	// Per-run state.
	dyn           int64
	opts          RunOptions
	stop          <-chan struct{}
	laxPhis       bool
	checkFails    int64
	perCheckFails map[int]int64
	opCounts      [ir.NumOps]int64
	fusedSteps    int64 // diagnostic: fused-pair handlers executed (fuse.go)

	// Suspension state (fast engine only). susp holds the in-flight call
	// chain, innermost-first, after a Run returns TrapSuspended or after
	// Restore; the next Run consumes it. resuming/resumePos drive the
	// re-entry drill-down (see execResumeNext): resumePos is -1 except
	// while the resumed chain is being rebuilt on the Go stack.
	susp      []suspLevel
	resuming  []suspLevel
	resumePos int
}

// New builds a machine for mod: lays out globals from address 1 (address 0
// is a null guard) and pre-computes per-function metadata.
func New(mod *ir.Module, cfg Config) (*Machine, error) {
	main := mod.Func("main")
	if main == nil {
		return nil, fmt.Errorf("vm: module %s has no main", mod.Name)
	}
	if len(main.Params) != 0 {
		return nil, fmt.Errorf("vm: main must take no parameters")
	}
	m := &Machine{
		mod:        mod,
		cfg:        cfg,
		globalBase: make(map[string]uint64),
		inputs:     make(map[string][]uint64),
		timing:     newTiming(cfg.Timing),
		info:       make(map[*ir.Func]*funcInfo),
		main:       main,
	}
	addr := uint64(1)
	for _, g := range mod.Globals {
		m.globalBase[g.Name] = addr
		addr += uint64(g.Size)
	}
	m.stackBase = addr
	m.memWords = addr + uint64(cfg.StackWords)
	m.mem = make([]uint64, m.memWords)

	// Static per-function metadata and the fast-engine lowering are both
	// derived from the module alone, so the thousands of machines a fault
	// campaign creates share one copy via the module's revision-keyed cache.
	sh := mod.ExecCache(func() any { return new(vmShared) }).(*vmShared)
	sh.infoOnce.Do(func() {
		info := make(map[*ir.Func]*funcInfo, len(mod.Funcs))
		for _, f := range mod.Funcs {
			fi := &funcInfo{slotTypes: make([]ir.Type, f.NumValues())}
			for _, p := range f.Params {
				fi.slotTypes[p.ID] = p.Ty
			}
			f.Instrs(func(in *ir.Instr) bool {
				if in.ID < len(fi.slotTypes) {
					fi.slotTypes[in.ID] = in.Ty
				}
				return true
			})
			info[f] = fi
		}
		sh.info = info
	})
	m.info = sh.info
	if cfg.Engine == EngineFast {
		sh.engOnce.Do(func() { sh.eng = lowerModule(mod) })
		m.eng = sh.eng
		m.engMain = m.eng.byFn[main]
		m.lats = latTableFrom(cfg.Timing)
		m.pools = make([][]*frame, len(m.eng.funcs))
		m.regionCounts = make([][]int64, len(m.eng.funcs))
		for i, ef := range m.eng.funcs {
			m.regionCounts[i] = make([]int64, len(ef.regionEnd))
		}
	}
	m.Reset()
	return m, nil
}

// Module returns the module this machine executes.
func (m *Machine) Module() *ir.Module { return m.mod }

// BindInput stores data to be copied into the named global on every Reset.
func (m *Machine) BindInput(name string, data []uint64) error {
	g := m.mod.Global(name)
	if g == nil {
		return fmt.Errorf("vm: no global %q", name)
	}
	if len(data) > g.Size {
		return fmt.Errorf("vm: input %q: %d words exceeds global size %d", name, len(data), g.Size)
	}
	m.inputs[name] = data
	return nil
}

// BindInputInts is BindInput for signed integers.
func (m *Machine) BindInputInts(name string, data []int64) error {
	w := make([]uint64, len(data))
	for i, v := range data {
		w[i] = uint64(v)
	}
	return m.BindInput(name, w)
}

// BindInputFloats is BindInput for floats.
func (m *Machine) BindInputFloats(name string, data []float64) error {
	w := make([]uint64, len(data))
	for i, v := range data {
		w[i] = math.Float64bits(v)
	}
	return m.BindInput(name, w)
}

// Reset restores memory to its initial state (global initializers plus bound
// inputs) and rewinds all run counters. Call before every Run.
func (m *Machine) Reset() {
	// Drop any suspended execution state: the frames return to their pools
	// and the next Run starts from main's entry.
	for _, l := range m.susp {
		m.putFrame(l.ef, l.fr)
	}
	m.susp = m.susp[:0]
	m.resuming = nil
	m.resumePos = -1
	for i := range m.mem {
		m.mem[i] = 0
	}
	for _, g := range m.mod.Globals {
		base := m.globalBase[g.Name]
		copy(m.mem[base:base+uint64(g.Size)], g.Init)
	}
	for name, data := range m.inputs {
		base := m.globalBase[name]
		copy(m.mem[base:], data)
	}
	m.sp = m.stackBase
	m.dyn = 0
	m.fusedSteps = 0
	m.laxPhis = false
	m.checkFails = 0
	m.perCheckFails = nil
	for i := range m.opCounts {
		m.opCounts[i] = 0
	}
	for _, rc := range m.regionCounts {
		for i := range rc {
			rc[i] = 0
		}
	}
	m.timing.reset()
}

// Dyn returns the machine's dynamic-instruction counter — on a suspended
// machine, the index of the next instruction to execute.
func (m *Machine) Dyn() int64 { return m.dyn }

// ReadGlobal copies the current contents of the named global out of memory.
func (m *Machine) ReadGlobal(name string) ([]uint64, error) {
	g := m.mod.Global(name)
	if g == nil {
		return nil, fmt.Errorf("vm: no global %q", name)
	}
	base := m.globalBase[name]
	out := make([]uint64, g.Size)
	copy(out, m.mem[base:base+uint64(g.Size)])
	return out, nil
}

// ReadGlobalInts reads a global as signed integers.
func (m *Machine) ReadGlobalInts(name string) ([]int64, error) {
	w, err := m.ReadGlobal(name)
	if err != nil {
		return nil, err
	}
	out := make([]int64, len(w))
	for i, v := range w {
		out[i] = int64(v)
	}
	return out, nil
}

// ReadGlobalFloats reads a global as floats.
func (m *Machine) ReadGlobalFloats(name string) ([]float64, error) {
	w, err := m.ReadGlobal(name)
	if err != nil {
		return nil, err
	}
	out := make([]float64, len(w))
	for i, v := range w {
		out[i] = math.Float64frombits(v)
	}
	return out, nil
}

// Run executes main under opts. The machine must be Reset first (Run does
// not Reset so callers can pre-poke memory in tests). On a suspended or
// restored machine, Run instead continues the captured execution from its
// suspend point; counters accumulate across the suspension, so the final
// Result of a suspend/resume chain is bit-identical to one uninterrupted
// run. A suspended Result's OpCounts are interim (the current accounting
// region is pre-credited in full); every other field is exact.
func (m *Machine) Run(opts RunOptions) *Result {
	m.opts = opts
	m.stop = opts.Stop
	if opts.CountChecks && m.perCheckFails == nil {
		m.perCheckFails = make(map[int]int64)
	}
	var ret uint64
	var trap *Trap
	if m.eng != nil {
		if len(m.susp) > 0 {
			ret, trap = m.resumeExec()
		} else {
			ret, trap = m.execCall(m.engMain, nil, 0)
		}
		m.foldRegionCounts()
	} else {
		ret, trap = m.call(m.main, nil, 0)
	}
	res := &Result{
		Ret:           ret,
		Dyn:           m.dyn,
		Cycles:        m.timing.cycles(),
		Trap:          trap,
		CheckFails:    m.checkFails,
		PerCheckFails: m.perCheckFails,
		OpCounts:      m.opCounts,
	}
	return res
}
