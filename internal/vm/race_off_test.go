//go:build !race

package vm_test

// raceEnabled trims the heaviest equivalence loops when the race detector
// (≈10x slowdown) is active; see race_on_test.go. Same convention as
// internal/fault's pair.
const raceEnabled = false
