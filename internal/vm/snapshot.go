package vm

// Machine snapshotting for the fast engine. A run paused mid-flight via
// RunOptions.SuspendAtDyn can be captured as an immutable Snapshot and later
// re-armed — on the same machine or on any other machine built over the same
// module revision and configuration — with Restore; the next Run then
// continues from the suspend point. The fault campaign uses this to execute
// each injection trial as restore-nearest-golden-snapshot + run-forward
// instead of re-executing the golden prefix from dyn 0.
//
// The suspend point is the same program point at which a register fault
// would be injected: the first non-phi instruction whose pre-increment
// dynamic index reaches SuspendAtDyn. Because no fault-eligible instruction
// lies between the requested index and the actual suspension, a snapshot
// requested at S serves every trial whose effective trigger index is >= S
// bit-identically (see internal/fault's checkpoint scheduler).
//
// What is captured: the full memory image (garbage words above sp are
// semantically visible — alloca does not zero its frame), the stack pointer,
// the dynamic instruction counter, the complete timing-model state (issue
// cursor, slot, completion horizon, cache tags, branch predictor), opcode
// accounting (opCounts plus the per-region entry counters), check state
// (checkFails, perCheckFails, laxPhis), and the suspended call chain with a
// register-file image per activation. Scratch buffers (phiScratch,
// callScratch) are dead at every suspend point and are not captured.

import (
	"fmt"

	"repro/internal/ir"
)

// suspLevel is one activation of a suspended call chain. While a
// TrapSuspended unwinds the Go stack through execLoop/execCall, each level
// appends itself, so the chain ends up innermost-first. The frames stay
// owned by the machine (not its pools) until the run is resumed or Reset.
type suspLevel struct {
	ef *engFunc
	fr *frame
	pc int
}

// snapFrame is the immutable image of one suspended activation record. Only
// defined slots are stored: every other register slot of a live frame is
// zero (getFrame's pooling invariant), and constant extension slots are
// rebuilt from the lowering.
type snapFrame struct {
	ef      *engFunc
	pc      int
	entrySP uint64
	live    []int32 // slots defined at suspension, in definition order
	regs    []reg   // regs[i] is the image of slot live[i]
}

// Snapshot is an immutable copy of a suspended machine's complete execution
// state. It can be shared across goroutines and restored any number of
// times; Restore only copies out of it.
type Snapshot struct {
	eng *engModule // identity guard: restoring requires the same lowering

	dyn     int64
	sp      uint64
	laxPhis bool
	mem     []uint64

	cursor    int64
	slotUsed  int
	maxDone   int64
	cacheTags []uint64
	predictor []uint8

	opCounts      [ir.NumOps]int64
	regionCounts  [][]int64
	checkFails    int64
	perCheckFails map[int]int64

	levels []snapFrame // suspended call chain, innermost-first
}

// Dyn returns the dynamic-instruction index at which the snapshot was taken
// (the index of the next instruction to execute on resume).
func (s *Snapshot) Dyn() int64 { return s.dyn }

// Snapshot captures the machine's suspended execution state. The machine
// must be suspended: its last Run must have returned a TrapSuspended result
// that has not been consumed by another Run, Reset, or Restore.
func (m *Machine) Snapshot() (*Snapshot, error) {
	if m.eng == nil {
		return nil, fmt.Errorf("vm: snapshots require the fast engine")
	}
	if len(m.susp) == 0 {
		return nil, fmt.Errorf("vm: machine is not suspended (Run must return a %v trap first)", TrapSuspended)
	}
	s := &Snapshot{
		eng:        m.eng,
		dyn:        m.dyn,
		sp:         m.sp,
		laxPhis:    m.laxPhis,
		mem:        append([]uint64(nil), m.mem...),
		cursor:     m.timing.cursor,
		slotUsed:   m.timing.slotUsed,
		maxDone:    m.timing.maxDone,
		cacheTags:  append([]uint64(nil), m.timing.cacheTags...),
		predictor:  append([]uint8(nil), m.timing.predictor...),
		opCounts:   m.opCounts,
		checkFails: m.checkFails,
		levels:     make([]snapFrame, len(m.susp)),
	}
	s.regionCounts = make([][]int64, len(m.regionCounts))
	for i, rc := range m.regionCounts {
		s.regionCounts[i] = append([]int64(nil), rc...)
	}
	if m.perCheckFails != nil {
		s.perCheckFails = make(map[int]int64, len(m.perCheckFails))
		for id, n := range m.perCheckFails {
			s.perCheckFails[id] = n
		}
	}
	for i, l := range m.susp {
		sf := snapFrame{
			ef:      l.ef,
			pc:      l.pc,
			entrySP: l.fr.entrySP,
			live:    append([]int32(nil), l.fr.live...),
			regs:    make([]reg, len(l.fr.live)),
		}
		for j, slot := range l.fr.live {
			sf.regs[j] = l.fr.regs[slot]
		}
		s.levels[i] = sf
	}
	return s, nil
}

// Restore replaces the machine's execution state with the snapshot's,
// leaving it suspended at the snapshot's suspend point: the next Run
// continues from there. The machine must run the fast engine over the same
// module revision and with the same memory/timing geometry as the machine
// that produced the snapshot. The snapshot itself is never mutated.
func (m *Machine) Restore(s *Snapshot) error {
	if m.eng == nil {
		return fmt.Errorf("vm: snapshots require the fast engine")
	}
	if s.eng != m.eng {
		return fmt.Errorf("vm: snapshot belongs to a different module revision")
	}
	if len(s.mem) != len(m.mem) ||
		len(s.cacheTags) != len(m.timing.cacheTags) ||
		len(s.predictor) != len(m.timing.predictor) {
		return fmt.Errorf("vm: snapshot machine geometry differs")
	}
	// Drop any previous suspended state before overwriting it; the frames
	// about to be rebuilt reuse the pool slots these release.
	for _, l := range m.susp {
		m.putFrame(l.ef, l.fr)
	}
	m.susp = m.susp[:0]
	m.resuming = nil
	m.resumePos = -1

	copy(m.mem, s.mem)
	m.sp = s.sp
	m.dyn = s.dyn
	m.laxPhis = s.laxPhis
	m.checkFails = s.checkFails
	m.perCheckFails = nil
	if s.perCheckFails != nil {
		m.perCheckFails = make(map[int]int64, len(s.perCheckFails))
		for id, n := range s.perCheckFails {
			m.perCheckFails[id] = n
		}
	}
	m.opCounts = s.opCounts
	for i, rc := range s.regionCounts {
		copy(m.regionCounts[i], rc)
	}
	tm := m.timing
	tm.cursor, tm.slotUsed, tm.maxDone = s.cursor, s.slotUsed, s.maxDone
	copy(tm.cacheTags, s.cacheTags)
	copy(tm.predictor, s.predictor)

	for _, sf := range s.levels {
		fr := m.getFrame(sf.ef)
		fr.entrySP = sf.entrySP
		for j, slot := range sf.live {
			fr.regs[slot] = sf.regs[j]
			fr.defined[slot] = true
		}
		fr.live = append(fr.live[:0], sf.live...)
		m.susp = append(m.susp, suspLevel{ef: sf.ef, fr: fr, pc: sf.pc})
	}
	return nil
}

// MatchesSnapshot reports whether the machine's suspended execution state is
// bit-identical to the snapshot's, over the exact field set Snapshot
// captures — memory, stack pointer, dynamic counter, suspended call chain
// with register images, timing-model state, and every accounting counter.
// When it returns true for a machine whose fault plan has already fired
// (FaultPlan.Injected), the machine's future execution is deterministically
// identical to that of the run the snapshot was taken from; the fault
// campaign uses this to short-circuit trials that have re-converged to the
// golden state. The comparison is conservative: a live set listed in a
// different definition order reports false even when the register files
// agree, because a false negative only costs the caller the shortcut, never
// correctness.
func (m *Machine) MatchesSnapshot(s *Snapshot) bool {
	if m.eng == nil || s.eng != m.eng || len(m.susp) == 0 {
		return false
	}
	if m.dyn != s.dyn || m.sp != s.sp || m.laxPhis != s.laxPhis ||
		m.checkFails != s.checkFails || m.opCounts != s.opCounts {
		return false
	}
	tm := m.timing
	if tm.cursor != s.cursor || tm.slotUsed != s.slotUsed || tm.maxDone != s.maxDone {
		return false
	}
	if len(m.susp) != len(s.levels) {
		return false
	}
	for i, sf := range s.levels {
		l := m.susp[i]
		if l.ef != sf.ef || l.pc != sf.pc || l.fr.entrySP != sf.entrySP ||
			len(l.fr.live) != len(sf.live) {
			return false
		}
		for j, slot := range sf.live {
			if l.fr.live[j] != slot || l.fr.regs[slot] != sf.regs[j] {
				return false
			}
		}
	}
	if len(m.perCheckFails) != len(s.perCheckFails) {
		return false
	}
	for id, n := range s.perCheckFails {
		if m.perCheckFails[id] != n {
			return false
		}
	}
	for i, rc := range s.regionCounts {
		for j, n := range rc {
			if m.regionCounts[i][j] != n {
				return false
			}
		}
	}
	// Geometry always matches when the engines match; the cheap length
	// guards keep the loops in-bounds regardless.
	if len(s.cacheTags) != len(tm.cacheTags) || len(s.predictor) != len(tm.predictor) ||
		len(s.mem) != len(m.mem) {
		return false
	}
	for i, tag := range s.cacheTags {
		if tm.cacheTags[i] != tag {
			return false
		}
	}
	for i, p := range s.predictor {
		if tm.predictor[i] != p {
			return false
		}
	}
	for i, w := range s.mem {
		if m.mem[i] != w {
			return false
		}
	}
	return true
}

// resumeExec continues a suspended (or freshly restored) run: the captured
// call chain is rebuilt on the Go stack, outermost level first, and
// execution rejoins the dispatch loop at the suspend point. Called by Run
// when the machine holds suspended state.
func (m *Machine) resumeExec() (uint64, *Trap) {
	m.resuming = m.susp
	m.susp = nil
	m.resumePos = len(m.resuming) - 1
	ret, trap := m.execResumeNext(0)
	m.resuming = nil
	m.resumePos = -1
	return ret, trap
}

// execResumeNext re-enters the next pending level of the suspended chain:
// the counterpart of execCall whose activation record and starting pc come
// from the captured state instead of a fresh frame. On a new suspension the
// frame ownership returns to m.susp (via execLoopFrom) rather than the pool.
func (m *Machine) execResumeNext(depth int) (uint64, *Trap) {
	lvl := m.resuming[m.resumePos]
	m.resumePos--
	ret, trap := m.execLoopFrom(lvl.ef, lvl.fr, depth, lvl.pc)
	if trap != nil && trap.Kind == TrapSuspended {
		return 0, trap
	}
	m.sp = lvl.fr.entrySP
	m.putFrame(lvl.ef, lvl.fr)
	return ret, trap
}
