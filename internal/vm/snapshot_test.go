package vm_test

// Suspend/snapshot/restore tests: a run paused via RunOptions.SuspendAtDyn
// and continued — on the same machine, or through a Snapshot restored into
// another machine — must be observationally identical to an uninterrupted
// run, including the complete trace stream, cycle counts, and opcode
// accounting. These are the properties the fault campaign's checkpoint
// scheduler builds on.

import (
	"math/rand"
	"testing"

	"repro/internal/vm"
	"repro/internal/workloads"
)

// TestSuspendResumeSameMachine pauses one run several times mid-flight and
// requires the stitched-together execution to match an uninterrupted run on
// every observable, including the full trace stream across the seams.
func TestSuspendResumeSameMachine(t *testing.T) {
	for _, name := range []string{"tiff2bw", "segm"} {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			w := workloads.ByName(name)
			mod, err := w.Compile()
			if err != nil {
				t.Fatal(err)
			}
			base := runEngine(t, w, mod, vm.EngineFast, workloads.Test, vm.RunOptions{})
			if base.res.Trap != nil {
				t.Fatalf("baseline trapped: %v", base.res.Trap)
			}

			cfg := vm.DefaultConfig()
			mach, err := vm.New(mod, cfg)
			if err != nil {
				t.Fatal(err)
			}
			if err := w.Bind(mach, workloads.Test); err != nil {
				t.Fatal(err)
			}
			mach.Reset()
			tr := newHashTracer()
			cuts := []int64{base.res.Dyn / 7, base.res.Dyn / 3, base.res.Dyn / 2, base.res.Dyn * 9 / 10}
			for _, c := range cuts {
				res := mach.Run(vm.RunOptions{Tracer: tr, SuspendAtDyn: c})
				if res.Trap == nil || res.Trap.Kind != vm.TrapSuspended {
					t.Fatalf("expected suspension at dyn %d, got %v", c, res.Trap)
				}
				if res.Trap.Dyn < c {
					t.Fatalf("suspended at dyn %d, before the requested %d", res.Trap.Dyn, c)
				}
				if _, err := mach.Snapshot(); err != nil {
					t.Fatalf("snapshot at dyn %d: %v", c, err)
				}
			}
			res := mach.Run(vm.RunOptions{Tracer: tr})
			out, err := mach.ReadGlobal(w.Output)
			if err != nil {
				t.Fatal(err)
			}
			resumed := &engineRun{res: res, out: out, traceN: tr.n, traceH: tr.h}
			diffRuns(t, name+"/resumed", base, resumed)
		})
	}
}

// TestSnapshotRestoreSecondMachine captures a mid-run snapshot on one
// machine and finishes the run on another. Seeding the second tracer with
// the producer's fold state makes the combined trace comparable to the
// uninterrupted stream.
func TestSnapshotRestoreSecondMachine(t *testing.T) {
	w := workloads.ByName("tiff2bw")
	mod, err := w.Compile()
	if err != nil {
		t.Fatal(err)
	}
	base := runEngine(t, w, mod, vm.EngineFast, workloads.Test, vm.RunOptions{})

	producer, err := vm.New(mod, vm.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Bind(producer, workloads.Test); err != nil {
		t.Fatal(err)
	}
	producer.Reset()
	tr1 := newHashTracer()
	if res := producer.Run(vm.RunOptions{Tracer: tr1, SuspendAtDyn: base.res.Dyn / 2}); res.Trap == nil || res.Trap.Kind != vm.TrapSuspended {
		t.Fatalf("expected suspension, got %v", res.Trap)
	}
	snap, err := producer.Snapshot()
	if err != nil {
		t.Fatal(err)
	}

	second, err := vm.New(mod, vm.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Bind(second, workloads.Test); err != nil {
		t.Fatal(err)
	}
	second.Reset()
	if err := second.Restore(snap); err != nil {
		t.Fatal(err)
	}
	tr2 := &hashTracer{n: tr1.n, h: tr1.h}
	res := second.Run(vm.RunOptions{Tracer: tr2})
	out, err := second.ReadGlobal(w.Output)
	if err != nil {
		t.Fatal(err)
	}
	resumed := &engineRun{res: res, out: out, traceN: tr2.n, traceH: tr2.h}
	diffRuns(t, "second-machine", base, resumed)

	// The snapshot is reusable: a second restore of the same snapshot on the
	// same machine must replay the suffix identically.
	if err := second.Restore(snap); err != nil {
		t.Fatal(err)
	}
	tr3 := &hashTracer{n: tr1.n, h: tr1.h}
	res = second.Run(vm.RunOptions{Tracer: tr3})
	out, err = second.ReadGlobal(w.Output)
	if err != nil {
		t.Fatal(err)
	}
	diffRuns(t, "second-restore", base, &engineRun{res: res, out: out, traceN: tr3.n, traceH: tr3.h})
}

// TestSnapshotFaultTrialEquivalence mirrors the campaign's checkpointed
// trial shape: snapshots are dropped at fixed cuts of the golden run, each
// faulted trial restores the nearest snapshot below its effective trigger,
// and the outcome must be bit-identical to the same trial run from scratch
// — for register and branch-target faults alike.
func TestSnapshotFaultTrialEquivalence(t *testing.T) {
	w := workloads.ByName("tiff2bw")
	mod, err := w.Compile()
	if err != nil {
		t.Fatal(err)
	}
	golden := runEngine(t, w, mod, vm.EngineFast, workloads.Test, vm.RunOptions{})
	goldenDyn := golden.res.Dyn

	producer, err := vm.New(mod, vm.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Bind(producer, workloads.Test); err != nil {
		t.Fatal(err)
	}
	producer.Reset()
	cuts := []int64{goldenDyn / 5, 2 * goldenDyn / 5, 3 * goldenDyn / 5, 4 * goldenDyn / 5}
	snaps := make([]*vm.Snapshot, len(cuts))
	for i, c := range cuts {
		if res := producer.Run(vm.RunOptions{SuspendAtDyn: c}); res.Trap == nil || res.Trap.Kind != vm.TrapSuspended {
			t.Fatalf("expected suspension at %d, got %v", c, res.Trap)
		}
		if snaps[i], err = producer.Snapshot(); err != nil {
			t.Fatal(err)
		}
	}

	mach, err := vm.New(mod, vm.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Bind(mach, workloads.Test); err != nil {
		t.Fatal(err)
	}

	for _, kind := range []vm.FaultKind{vm.FaultRegister, vm.FaultBranchTarget} {
		for seed := int64(0); seed < 30; seed++ {
			rng := rand.New(rand.NewSource(seed))
			trigger := rng.Int63n(goldenDyn)
			plan := func(r *rand.Rand) *vm.FaultPlan {
				return &vm.FaultPlan{
					Kind:       kind,
					TriggerDyn: trigger,
					PickSlot:   func(n int) int { return r.Intn(n) },
					PickBit:    func() int { return r.Intn(64) },
				}
			}
			scratch := runEngine(t, w, mod, vm.EngineFast, workloads.Test, vm.RunOptions{Fault: plan(rng)})

			eff := trigger
			if kind == vm.FaultBranchTarget {
				eff--
			}
			snap := (*vm.Snapshot)(nil)
			for i := len(cuts) - 1; i >= 0; i-- {
				if cuts[i] <= eff {
					snap = snaps[i]
					break
				}
			}
			if snap != nil {
				if err := mach.Restore(snap); err != nil {
					t.Fatal(err)
				}
			} else {
				mach.Reset()
			}
			rng2 := rand.New(rand.NewSource(seed))
			rng2.Int63n(goldenDyn) // consume the trigger draw
			p2 := plan(rng2)
			res := mach.Run(vm.RunOptions{Fault: p2})
			out, rerr := mach.ReadGlobal(w.Output)
			if rerr != nil {
				t.Fatal(rerr)
			}
			ck := &engineRun{res: res, out: out, plan: p2, traceN: scratch.traceN, traceH: scratch.traceH}
			diffRuns(t, w.Name+"/ckpt", scratch, ck)
		}
	}
}

// TestMatchesSnapshot pins the state-equality predicate the campaign's
// convergence fast-forward stands on: two machines suspended at the same
// point of the same computation match, a snapshot restore round-trips to a
// match, and any observable difference — dyn index, input data, or not being
// suspended at all — reports false.
func TestMatchesSnapshot(t *testing.T) {
	w := workloads.ByName("tiff2bw")
	mod, err := w.Compile()
	if err != nil {
		t.Fatal(err)
	}
	base := runEngine(t, w, mod, vm.EngineFast, workloads.Test, vm.RunOptions{})
	cut := base.res.Dyn / 2

	susp := func(kind workloads.InputKind, at int64) *vm.Machine {
		t.Helper()
		m, err := vm.New(mod, vm.DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		if err := w.Bind(m, kind); err != nil {
			t.Fatal(err)
		}
		m.Reset()
		if res := m.Run(vm.RunOptions{SuspendAtDyn: at}); res.Trap == nil || res.Trap.Kind != vm.TrapSuspended {
			t.Fatalf("expected suspension at %d, got %v", at, res.Trap)
		}
		return m
	}

	a := susp(workloads.Test, cut)
	snap, err := a.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if !a.MatchesSnapshot(snap) {
		t.Fatal("the machine a snapshot was just taken from must match it")
	}
	if b := susp(workloads.Test, cut); !b.MatchesSnapshot(snap) {
		t.Fatal("an independent machine suspended at the same point must match")
	}

	c, err := vm.New(mod, vm.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Bind(c, workloads.Test); err != nil {
		t.Fatal(err)
	}
	c.Reset()
	if err := c.Restore(snap); err != nil {
		t.Fatal(err)
	}
	if !c.MatchesSnapshot(snap) {
		t.Fatal("a restore must round-trip to a match")
	}

	if d := susp(workloads.Test, cut+64); d.MatchesSnapshot(snap) {
		t.Fatal("a different suspend point must not match")
	}
	if e := susp(workloads.Train, cut); e.MatchesSnapshot(snap) {
		t.Fatal("a different input set must not match")
	}
	if res := c.Run(vm.RunOptions{}); res.Trap != nil {
		t.Fatalf("resumed run trapped: %v", res.Trap)
	}
	if c.MatchesSnapshot(snap) {
		t.Fatal("a completed (non-suspended) machine must not match")
	}
}

// TestSnapshotErrors covers the misuse surface: snapshots require a
// suspended fast-engine machine, restores require the same module revision,
// the tree engine ignores the suspend point, and Reset discards suspended
// state cleanly.
func TestSnapshotErrors(t *testing.T) {
	w := workloads.ByName("tiff2bw")
	mod, err := w.Compile()
	if err != nil {
		t.Fatal(err)
	}
	mach, err := vm.New(mod, vm.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Bind(mach, workloads.Test); err != nil {
		t.Fatal(err)
	}
	mach.Reset()
	if _, err := mach.Snapshot(); err == nil {
		t.Fatal("Snapshot on a non-suspended machine must error")
	}

	base := mach.Run(vm.RunOptions{})
	if base.Trap != nil {
		t.Fatalf("baseline trapped: %v", base.Trap)
	}

	// Suspend, snapshot, then Reset: the suspended state must be discarded
	// and a fresh run must match the baseline.
	mach.Reset()
	if res := mach.Run(vm.RunOptions{SuspendAtDyn: base.Dyn / 2}); res.Trap == nil || res.Trap.Kind != vm.TrapSuspended {
		t.Fatalf("expected suspension, got %v", res.Trap)
	}
	snap, err := mach.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	mach.Reset()
	if res := mach.Run(vm.RunOptions{}); res.Trap != nil || res.Dyn != base.Dyn || res.Cycles != base.Cycles {
		t.Fatalf("post-Reset run diverged: %+v vs %+v", res, base)
	}

	// A machine over a clone of the module is a different module revision
	// (its own lowering): restore must refuse.
	other, err := vm.New(mod.Clone(), vm.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Bind(other, workloads.Test); err != nil {
		t.Fatal(err)
	}
	other.Reset()
	if err := other.Restore(snap); err == nil {
		t.Fatal("Restore across module revisions must error")
	}

	// The tree engine has no snapshot support: SuspendAtDyn is ignored and
	// the run completes; Snapshot reports the engine mismatch.
	cfg := vm.DefaultConfig()
	cfg.Engine = vm.EngineTree
	tree, err := vm.New(mod, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Bind(tree, workloads.Test); err != nil {
		t.Fatal(err)
	}
	tree.Reset()
	if res := tree.Run(vm.RunOptions{SuspendAtDyn: base.Dyn / 2}); res.Trap != nil {
		t.Fatalf("tree engine must ignore SuspendAtDyn, got %v", res.Trap)
	}
	if _, err := tree.Snapshot(); err == nil {
		t.Fatal("Snapshot on the tree engine must error")
	}
	if err := tree.Restore(snap); err == nil {
		t.Fatal("Restore on the tree engine must error")
	}
}
