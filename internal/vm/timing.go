package vm

import "repro/internal/ir"

// TimingConfig parameterizes the performance model: a dependence-aware,
// width-limited issue model with a direct-mapped data cache and a 2-bit
// branch predictor. It is the stand-in for the paper's gem5 out-of-order ARM
// configuration (Table II); only relative runtimes are meaningful.
type TimingConfig struct {
	IssueWidth int // instructions per cycle (Table II: 2)

	// Latencies in cycles.
	LatInt    int64 // add/sub/bitwise/compare
	LatMul    int64
	LatDiv    int64
	LatFAdd   int64
	LatFMul   int64
	LatFDiv   int64
	LatIntrin int64 // sqrt/exp/log/pow
	LatLoad   int64 // L1 hit
	LatStore  int64

	MissPenalty    int64 // D-cache miss
	BranchPenalty  int64 // misprediction
	CacheLines     int   // direct-mapped line count
	CacheLineWords int   // words per line
	PredictorSlots int   // branch predictor table size
	CallOverhead   int64 // fixed cycles per call
	CheckLatency   int64 // latency of check instructions (compare + branch)
}

// DefaultTiming mirrors Table II at word granularity: 2-wide issue, 32KB
// D-cache (512 lines x 8 words x 8 bytes), modest ALU latencies.
func DefaultTiming() TimingConfig {
	return TimingConfig{
		IssueWidth:     2,
		LatInt:         1,
		LatMul:         3,
		LatDiv:         12,
		LatFAdd:        3,
		LatFMul:        4,
		LatFDiv:        15,
		LatIntrin:      20,
		LatLoad:        2,
		LatStore:       1,
		MissPenalty:    30,
		BranchPenalty:  10,
		CacheLines:     512,
		CacheLineWords: 8,
		PredictorSlots: 1024,
		CallOverhead:   2,
		CheckLatency:   1,
	}
}

// timing tracks cycle accounting for one run.
type timing struct {
	cfg TimingConfig

	cursor   int64 // current issue cycle
	slotUsed int   // instructions issued at cursor
	maxDone  int64 // latest completion time seen

	cacheTags []uint64 // direct-mapped tag store; 0 = invalid, tag+1 stored
	predictor []uint8  // 2-bit saturating counters
	width     int      // cfg.IssueWidth, hoisted out of the embedded struct

	// Strength-reduced index math for the common power-of-two geometry.
	// The default config (8-word lines, 512 lines, 1024 predictor slots)
	// would otherwise pay two hardware divides on every memory access.
	lineShift uint   // log2(CacheLineWords); valid when pow2 is set
	slotMask  uint64 // len(cacheTags)-1; valid when pow2 is set
	pow2      bool   // CacheLineWords and CacheLines are powers of two
	predMask  int    // len(predictor)-1 when a power of two, else -1
}

func newTiming(cfg TimingConfig) *timing {
	t := &timing{
		cfg:       cfg,
		cacheTags: make([]uint64, cfg.CacheLines),
		predictor: make([]uint8, cfg.PredictorSlots),
		predMask:  -1,
		width:     cfg.IssueWidth,
	}
	if isPow2(cfg.CacheLineWords) && isPow2(cfg.CacheLines) {
		t.pow2 = true
		t.lineShift = log2(cfg.CacheLineWords)
		t.slotMask = uint64(cfg.CacheLines - 1)
	}
	if isPow2(cfg.PredictorSlots) {
		t.predMask = cfg.PredictorSlots - 1
	}
	return t
}

func isPow2(n int) bool { return n > 0 && n&(n-1) == 0 }

func log2(n int) uint {
	var s uint
	for n > 1 {
		n >>= 1
		s++
	}
	return s
}

func (t *timing) reset() {
	t.cursor, t.slotUsed, t.maxDone = 0, 0, 0
	for i := range t.cacheTags {
		t.cacheTags[i] = 0
	}
	for i := range t.predictor {
		t.predictor[i] = 1 // weakly not-taken
	}
}

// cycles returns the total cycle count so far.
func (t *timing) cycles() int64 {
	if t.maxDone > t.cursor {
		return t.maxDone
	}
	return t.cursor
}

// issue models issuing one instruction whose operands become ready at
// opsReady and which takes lat cycles; it returns the completion time.
func (t *timing) issue(opsReady int64, lat int64) int64 {
	at := t.cursor
	if opsReady > at {
		at = opsReady
		t.cursor = opsReady
		t.slotUsed = 0
	}
	t.slotUsed++
	if t.slotUsed >= t.width {
		t.cursor++
		t.slotUsed = 0
	}
	done := at + lat
	if done > t.maxDone {
		t.maxDone = done
	}
	return done
}

// access models a data-cache access at word address addr, returning the
// access latency (hit or miss).
func (t *timing) access(addr uint64) int64 {
	var line, slot uint64
	if t.pow2 {
		line = addr >> t.lineShift
		slot = line & t.slotMask
	} else {
		line = addr / uint64(t.cfg.CacheLineWords)
		slot = line % uint64(len(t.cacheTags))
	}
	if t.cacheTags[slot] == line+1 {
		return t.cfg.LatLoad
	}
	t.cacheTags[slot] = line + 1
	return t.cfg.LatLoad + t.cfg.MissPenalty
}

// branch models a branch with the 2-bit predictor; uid identifies the
// static branch, taken is the outcome. A misprediction stalls the front end.
func (t *timing) branch(uid int, taken bool) {
	var slot int
	if t.predMask >= 0 {
		slot = uid & t.predMask
	} else {
		slot = uid % len(t.predictor)
	}
	p := t.predictor[slot]
	predictTaken := p >= 2
	if predictTaken != taken {
		t.cursor += t.cfg.BranchPenalty
		t.slotUsed = 0
	}
	if taken && p < 3 {
		t.predictor[slot] = p + 1
	} else if !taken && p > 0 {
		t.predictor[slot] = p - 1
	}
}

// latency returns the base latency for op.
func (t *timing) latency(in *ir.Instr) int64 {
	c := &t.cfg
	switch in.Op {
	case ir.OpAdd, ir.OpSub:
		if in.Ty == ir.F64 {
			return c.LatFAdd
		}
		return c.LatInt
	case ir.OpMul:
		if in.Ty == ir.F64 {
			return c.LatFMul
		}
		return c.LatMul
	case ir.OpDiv, ir.OpRem:
		if in.Ty == ir.F64 {
			return c.LatFDiv
		}
		return c.LatDiv
	case ir.OpAnd, ir.OpOr, ir.OpXor, ir.OpShl, ir.OpShr, ir.OpNeg,
		ir.OpEq, ir.OpNe, ir.OpLt, ir.OpLe, ir.OpGt, ir.OpGe,
		ir.OpPtrAdd, ir.OpPhi, ir.OpAlloca:
		return c.LatInt
	case ir.OpIToF, ir.OpFToI:
		return c.LatFAdd
	case ir.OpIntrinsic:
		switch in.Intrinsic {
		case ir.IntrIAbs, ir.IntrIMin, ir.IntrIMax, ir.IntrClampI, ir.IntrFMin, ir.IntrFMax, ir.IntrFAbs:
			return c.LatInt
		}
		return c.LatIntrin
	case ir.OpStore:
		return c.LatStore
	case ir.OpCmpCheck, ir.OpRangeCheck, ir.OpValCheck:
		return c.CheckLatency
	}
	return c.LatInt
}
