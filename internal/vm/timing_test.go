package vm

import (
	"math"
	"testing"

	"repro/internal/ir"
)

func TestTimingIssueWidthLimitsThroughput(t *testing.T) {
	cfg := DefaultTiming()
	cfg.IssueWidth = 2
	tm := newTiming(cfg)
	tm.reset()
	// 10 independent 1-cycle instructions on a 2-wide machine: >= 5 cycles.
	for i := 0; i < 10; i++ {
		tm.issue(0, 1)
	}
	if c := tm.cycles(); c < 5 {
		t.Fatalf("cycles = %d, want >= 5", c)
	}

	wide := newTiming(TimingConfig{IssueWidth: 8, CacheLines: 4, CacheLineWords: 8, PredictorSlots: 4, LatInt: 1})
	wide.reset()
	for i := 0; i < 10; i++ {
		wide.issue(0, 1)
	}
	if wide.cycles() >= tm.cycles() {
		t.Fatalf("wider issue not faster: %d vs %d", wide.cycles(), tm.cycles())
	}
}

func TestTimingDependenceChainsSerialize(t *testing.T) {
	cfg := DefaultTiming()
	tm := newTiming(cfg)
	tm.reset()
	// A chain of 10 dependent 3-cycle ops must take >= 30 cycles.
	ready := int64(0)
	for i := 0; i < 10; i++ {
		ready = tm.issue(ready, 3)
	}
	if tm.cycles() < 30 {
		t.Fatalf("dependent chain finished in %d cycles", tm.cycles())
	}
}

func TestCacheHitAfterMiss(t *testing.T) {
	tm := newTiming(DefaultTiming())
	tm.reset()
	missLat := tm.access(100)
	hitLat := tm.access(100)
	if missLat <= hitLat {
		t.Fatalf("first access (%d) should cost more than second (%d)", missLat, hitLat)
	}
	// Same line, different word: still a hit.
	if l := tm.access(101); l != hitLat {
		t.Fatalf("same-line access missed: %d", l)
	}
	// Conflicting line (same slot, different tag): miss again.
	conflict := uint64(100 + tm.cfg.CacheLineWords*tm.cfg.CacheLines)
	if l := tm.access(conflict); l != missLat {
		t.Fatalf("conflicting line hit: %d", l)
	}
}

func TestBranchPredictorLearns(t *testing.T) {
	cfg := DefaultTiming()
	tm := newTiming(cfg)
	tm.reset()
	// Always-taken branch: after warmup, no penalties.
	warm := tm.cycles()
	for i := 0; i < 4; i++ {
		tm.branch(7, true)
	}
	afterWarmup := tm.cycles()
	for i := 0; i < 100; i++ {
		tm.branch(7, true)
	}
	if tm.cycles() != afterWarmup {
		t.Fatalf("predictor kept mispredicting a monotone branch: %d -> %d", afterWarmup, tm.cycles())
	}
	_ = warm
	// Alternating branch on a fresh table: frequent penalties.
	tm2 := newTiming(cfg)
	tm2.reset()
	for i := 0; i < 100; i++ {
		tm2.branch(7, i%2 == 0)
	}
	if tm2.cycles() == 0 {
		t.Fatal("alternating branch incurred no penalty")
	}
}

func negBits(v int64) uint64 { return uint64(v) }

func TestIntrinsicSemantics(t *testing.T) {
	// main(){ out[i] = intrinsic(load in[...]) } for each intrinsic.
	cases := []struct {
		intr ir.Intrinsic
		ty   ir.Type
		args []uint64
		want uint64
	}{
		{ir.IntrSqrt, ir.F64, []uint64{f2b(9)}, f2b(3)},
		{ir.IntrFAbs, ir.F64, []uint64{f2b(-2.5)}, f2b(2.5)},
		{ir.IntrIAbs, ir.I64, []uint64{negBits(-7)}, 7},
		{ir.IntrFMin, ir.F64, []uint64{f2b(1), f2b(2)}, f2b(1)},
		{ir.IntrFMax, ir.F64, []uint64{f2b(1), f2b(2)}, f2b(2)},
		{ir.IntrIMin, ir.I64, []uint64{negBits(-5), 3}, negBits(-5)},
		{ir.IntrIMax, ir.I64, []uint64{negBits(-5), 3}, 3},
		{ir.IntrExp, ir.F64, []uint64{f2b(0)}, f2b(1)},
		{ir.IntrLog, ir.F64, []uint64{f2b(math.E)}, f2b(1)},
		{ir.IntrFloor, ir.F64, []uint64{f2b(2.9)}, f2b(2)},
		{ir.IntrPow, ir.F64, []uint64{f2b(2), f2b(10)}, f2b(1024)},
		{ir.IntrClampI, ir.I64, []uint64{100, 0, 50}, 50},
	}
	for _, c := range cases {
		m := ir.NewModule("intr")
		in := m.AddGlobal("in", 3)
		out := m.AddGlobal("out", 1)
		f := m.NewFunc("main", ir.Void)
		b := ir.NewBuilder(f)
		var args []ir.Value
		for i := range c.args {
			p := b.PtrAdd(in, ir.ConstInt(int64(i)))
			args = append(args, b.Load(c.ty, p))
		}
		r := b.Intrin(c.intr, c.ty, args...)
		b.Store(out, r)
		b.Ret(nil)
		m.Renumber()
		if err := m.Verify(); err != nil {
			t.Fatalf("%s: %v", c.intr, err)
		}
		mach, err := New(m, DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		mach.BindInput("in", c.args)
		mach.Reset()
		res := mach.Run(RunOptions{})
		if res.Trap != nil {
			t.Fatalf("%s: trap %v", c.intr, res.Trap)
		}
		got, _ := mach.ReadGlobal("out")
		if got[0] != c.want {
			t.Errorf("%s(%v) = %x, want %x", c.intr, c.args, got[0], c.want)
		}
	}
}

func TestValCheckSingleAndTwoValues(t *testing.T) {
	build := func(expected ...int64) *ir.Module {
		m := ir.NewModule("vc")
		in := m.AddGlobal("in", 1)
		f := m.NewFunc("main", ir.Void)
		b := ir.NewBuilder(f)
		v := b.Load(ir.I64, in)
		args := []ir.Value{v}
		for _, e := range expected {
			args = append(args, ir.ConstInt(e))
		}
		b.Emit(&ir.Instr{Op: ir.OpValCheck, Args: args, Check: ir.CheckValue, CheckID: 1})
		b.Ret(nil)
		m.Renumber()
		return m
	}
	run := func(m *ir.Module, input int64) *Trap {
		mach, _ := New(m, DefaultConfig())
		mach.BindInputInts("in", []int64{input})
		mach.Reset()
		return mach.Run(RunOptions{}).Trap
	}

	single := build(42)
	if tr := run(single, 42); tr != nil {
		t.Fatalf("single-value check fired on expected value: %v", tr)
	}
	if tr := run(single, 43); tr == nil || tr.Kind != TrapCheck {
		t.Fatalf("single-value check missed: %v", tr)
	}

	two := build(10, 20)
	for _, ok := range []int64{10, 20} {
		if tr := run(two, ok); tr != nil {
			t.Fatalf("two-value check fired on %d: %v", ok, tr)
		}
	}
	if tr := run(two, 15); tr == nil {
		t.Fatal("two-value check missed 15")
	}
}

func TestFloatRangeCheck(t *testing.T) {
	m := ir.NewModule("frc")
	in := m.AddGlobal("in", 1)
	f := m.NewFunc("main", ir.Void)
	b := ir.NewBuilder(f)
	v := b.Load(ir.F64, in)
	b.Emit(&ir.Instr{
		Op:    ir.OpRangeCheck,
		Args:  []ir.Value{v, ir.ConstFloat(-1.5), ir.ConstFloat(2.5)},
		Check: ir.CheckValue, CheckID: 9,
	})
	b.Ret(nil)
	m.Renumber()
	run := func(x float64) *Trap {
		mach, _ := New(m, DefaultConfig())
		mach.BindInputFloats("in", []float64{x})
		mach.Reset()
		return mach.Run(RunOptions{}).Trap
	}
	for _, ok := range []float64{-1.5, 0, 2.5} {
		if tr := run(ok); tr != nil {
			t.Errorf("range check fired on %v", ok)
		}
	}
	for _, bad := range []float64{-2, 3, math.NaN()} {
		if tr := run(bad); tr == nil {
			t.Errorf("range check missed %v", bad)
		}
	}
}
