package vm

import (
	"fmt"
	"io"
	"math"

	"repro/internal/ir"
)

// Tracer receives one event per executed instruction. Used for debugging
// kernels and for inspecting fault propagation; tracing is off unless
// RunOptions.Tracer is set.
type Tracer interface {
	// Trace is called after the instruction executed. bits is the produced
	// value (0 for void instructions).
	Trace(dyn int64, fn string, in *ir.Instr, bits uint64)
}

// WriterTracer formats a compact text trace onto W, up to Limit events
// (0 = unlimited). It implements Tracer.
type WriterTracer struct {
	W     io.Writer
	Limit int64
	n     int64
}

// Trace implements the Tracer interface.
func (t *WriterTracer) Trace(dyn int64, fn string, in *ir.Instr, bits uint64) {
	if t.Limit > 0 && t.n >= t.Limit {
		return
	}
	t.n++
	switch {
	case in.Ty == ir.F64:
		fmt.Fprintf(t.W, "%8d %-12s %-40s = %g\n", dyn, fn, in.LongString(), math.Float64frombits(bits))
	case in.Ty == ir.Void:
		fmt.Fprintf(t.W, "%8d %-12s %s\n", dyn, fn, in.LongString())
	default:
		fmt.Fprintf(t.W, "%8d %-12s %-40s = %d\n", dyn, fn, in.LongString(), int64(bits))
	}
}

// Events returns how many events were emitted.
func (t *WriterTracer) Events() int64 { return t.n }
