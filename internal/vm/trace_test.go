package vm

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"repro/internal/ir"
)

// runTraced executes a two-input binop module under a WriterTracer and
// returns the trace text plus the tracer itself.
func runTraced(t *testing.T, op ir.Op, ty ir.Type, x, y uint64, limit int64) (string, *WriterTracer) {
	t.Helper()
	m := binOpModule(t, op, ty)
	mach, err := New(m, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := mach.BindInput("in", []uint64{x, y}); err != nil {
		t.Fatal(err)
	}
	mach.Reset()
	var buf bytes.Buffer
	tr := &WriterTracer{W: &buf, Limit: limit}
	if res := mach.Run(RunOptions{Tracer: tr}); res.Trap != nil {
		t.Fatal(res.Trap)
	}
	return buf.String(), tr
}

// TestTraceShape checks the one-line-per-instruction contract: every
// executed instruction appears once, in execution order, tagged with the
// function name and the produced value formatted per result type.
func TestTraceShape(t *testing.T) {
	out, tr := runTraced(t, ir.OpAdd, ir.I64, uint64(int64(19)), uint64(int64(23)), 0)
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if int64(len(lines)) != tr.Events() {
		t.Fatalf("%d trace lines but tracer reports %d events", len(lines), tr.Events())
	}
	// binOpModule executes: load, ptradd, load, add, store, ret.
	if len(lines) != 6 {
		t.Fatalf("expected 6 events, got %d:\n%s", len(lines), out)
	}
	for i, ln := range lines {
		if !strings.Contains(ln, "main") {
			t.Errorf("line %d missing function name: %q", i, ln)
		}
	}
	// Integer results are rendered in decimal after " = ".
	if !strings.Contains(out, "= 19") || !strings.Contains(out, "= 23") {
		t.Errorf("loads of the two inputs not visible in trace:\n%s", out)
	}
	if !strings.Contains(out, "= 42") {
		t.Errorf("add result not visible in trace:\n%s", out)
	}
	// Void instructions (store, ret) have no " = " suffix.
	voids := 0
	for _, ln := range lines {
		if !strings.Contains(ln, " = ") {
			voids++
		}
	}
	if voids != 2 {
		t.Errorf("expected 2 void trace lines (store, ret), got %d:\n%s", voids, out)
	}
}

// TestTraceFloatFormatting: F64 results are rendered as floats, not raw
// bit patterns.
func TestTraceFloatFormatting(t *testing.T) {
	out, _ := runTraced(t, ir.OpAdd, ir.F64,
		math.Float64bits(1.5), math.Float64bits(2.25), 0)
	if !strings.Contains(out, "= 3.75") {
		t.Errorf("float add result not formatted numerically:\n%s", out)
	}
	if strings.Contains(out, "= 46") { // bits of 3.75 start 0x400e... ≈ 4.6e18 decimal
		t.Errorf("float result leaked as raw bits:\n%s", out)
	}
}

// TestTraceLimit: Limit caps emitted events while execution continues, and
// Events reports the capped count.
func TestTraceLimit(t *testing.T) {
	out, tr := runTraced(t, ir.OpAdd, ir.I64, 1, 2, 3)
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 3 || tr.Events() != 3 {
		t.Fatalf("limit 3 produced %d lines, Events()=%d:\n%s", len(lines), tr.Events(), out)
	}
	// The dyn counter in column one still reflects true execution order.
	if !strings.HasPrefix(strings.TrimSpace(lines[0]), "1") {
		t.Errorf("first trace line should carry dyn=1: %q", lines[0])
	}
}
