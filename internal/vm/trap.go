// Package vm interprets ir modules on a simulated machine: a flat
// word-addressed memory with bounds checking, a trap model that surfaces the
// hardware symptoms the paper's HWDetect category relies on (out-of-bounds
// accesses, division faults, runaway loops), a dependence-aware dual-issue
// timing model standing in for the paper's gem5 out-of-order ARM config
// (Table II), and hooks for value profiling and register-file bit-flip fault
// injection.
package vm

import (
	"fmt"

	"repro/internal/ir"
)

// TrapKind classifies abnormal terminations.
type TrapKind uint8

// Trap kinds.
const (
	TrapNone          TrapKind = iota
	TrapOOB                    // load/store/alloca outside valid memory
	TrapDivZero                // integer division or remainder by zero
	TrapWatchdog               // dynamic instruction budget exhausted (infinite loop)
	TrapStackOverflow          // call depth or stack space exhausted
	TrapCheck                  // a software fault-detection check fired
	TrapBadCall                // call to an unresolved function
	TrapCancelled              // RunOptions.Stop closed (context cancellation)
	TrapSuspended              // RunOptions.SuspendAtDyn reached; resumable via Run
	TrapDeadline               // RunOptions.Deadline exceeded (wall-clock bound)
)

func (k TrapKind) String() string {
	switch k {
	case TrapNone:
		return "none"
	case TrapOOB:
		return "out-of-bounds"
	case TrapDivZero:
		return "div-by-zero"
	case TrapWatchdog:
		return "watchdog"
	case TrapStackOverflow:
		return "stack-overflow"
	case TrapCheck:
		return "check"
	case TrapBadCall:
		return "bad-call"
	case TrapCancelled:
		return "cancelled"
	case TrapSuspended:
		return "suspended"
	case TrapDeadline:
		return "deadline"
	}
	return fmt.Sprintf("trap(%d)", uint8(k))
}

// Trap describes an abnormal termination of a run.
type Trap struct {
	Kind TrapKind
	// Dyn is the dynamic instruction index at which the trap occurred.
	Dyn int64
	// Check metadata when Kind == TrapCheck.
	CheckID   int
	CheckKind ir.CheckKind
	// Fn is the function executing when the trap occurred.
	Fn string
}

func (t *Trap) Error() string {
	if t.Kind == TrapCheck {
		return fmt.Sprintf("trap %s (%s check #%d) at dyn %d in %s", t.Kind, t.CheckKind, t.CheckID, t.Dyn, t.Fn)
	}
	return fmt.Sprintf("trap %s at dyn %d in %s", t.Kind, t.Dyn, t.Fn)
}

// IsSymptom reports whether the trap is a hardware-visible symptom usable
// for low-cost detection (the paper's HWDetect class), as opposed to a
// software check firing.
func (t *Trap) IsSymptom() bool {
	return t.Kind == TrapOOB || t.Kind == TrapDivZero || t.Kind == TrapStackOverflow || t.Kind == TrapBadCall
}
