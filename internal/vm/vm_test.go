package vm

import (
	"bytes"
	"math"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/ir"
)

// binOpModule builds: main() { out[0] = load(in[0]) OP load(in[1]) }.
func binOpModule(t testing.TB, op ir.Op, ty ir.Type) *ir.Module {
	t.Helper()
	m := ir.NewModule("binop")
	in := m.AddGlobal("in", 2)
	out := m.AddGlobal("out", 1)
	f := m.NewFunc("main", ir.Void)
	b := ir.NewBuilder(f)
	a0 := b.Load(ty, in)
	p1 := b.PtrAdd(in, ir.ConstInt(1))
	a1 := b.Load(ty, p1)
	r := b.Bin(op, a0, a1)
	b.Store(out, r)
	b.Ret(nil)
	m.Renumber()
	if err := m.Verify(); err != nil {
		t.Fatalf("verify: %v", err)
	}
	return m
}

func runBinOp(t testing.TB, op ir.Op, ty ir.Type, x, y uint64) (*Result, uint64) {
	t.Helper()
	m := binOpModule(t, op, ty)
	mach, err := New(m, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := mach.BindInput("in", []uint64{x, y}); err != nil {
		t.Fatal(err)
	}
	mach.Reset()
	res := mach.Run(RunOptions{})
	var outBits uint64
	if res.Trap == nil {
		out, err := mach.ReadGlobal("out")
		if err != nil {
			t.Fatal(err)
		}
		outBits = out[0]
	}
	return res, outBits
}

// TestIntOpsMatchGoSemantics fuzzes integer ops against native Go.
func TestIntOpsMatchGoSemantics(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	ops := []ir.Op{ir.OpAdd, ir.OpSub, ir.OpMul, ir.OpDiv, ir.OpRem, ir.OpAnd,
		ir.OpOr, ir.OpXor, ir.OpShl, ir.OpShr, ir.OpEq, ir.OpNe, ir.OpLt,
		ir.OpLe, ir.OpGt, ir.OpGe}
	for trial := 0; trial < 300; trial++ {
		op := ops[rng.Intn(len(ops))]
		x := int64(rng.Uint64())
		y := int64(rng.Uint64())
		if rng.Intn(2) == 0 {
			y = int64(rng.Intn(200)) - 100 // exercise small operands too
		}
		var want int64
		switch op {
		case ir.OpAdd:
			want = x + y
		case ir.OpSub:
			want = x - y
		case ir.OpMul:
			want = x * y
		case ir.OpDiv:
			if y == 0 || (x == math.MinInt64 && y == -1) {
				continue
			}
			want = x / y
		case ir.OpRem:
			if y == 0 || (x == math.MinInt64 && y == -1) {
				continue
			}
			want = x % y
		case ir.OpAnd:
			want = x & y
		case ir.OpOr:
			want = x | y
		case ir.OpXor:
			want = x ^ y
		case ir.OpShl:
			want = x << uint(y&63)
		case ir.OpShr:
			want = x >> uint(y&63)
		case ir.OpEq:
			want = b2i(x == y)
		case ir.OpNe:
			want = b2i(x != y)
		case ir.OpLt:
			want = b2i(x < y)
		case ir.OpLe:
			want = b2i(x <= y)
		case ir.OpGt:
			want = b2i(x > y)
		case ir.OpGe:
			want = b2i(x >= y)
		}
		res, got := runBinOp(t, op, ir.I64, uint64(x), uint64(y))
		if res.Trap != nil {
			t.Fatalf("%s(%d, %d): unexpected trap %v", op, x, y, res.Trap)
		}
		if int64(got) != want {
			t.Fatalf("%s(%d, %d) = %d, want %d", op, x, y, int64(got), want)
		}
	}
}

func b2i(b bool) int64 {
	if b {
		return 1
	}
	return 0
}

// TestFloatOpsMatchGoSemantics fuzzes float arithmetic against native Go.
func TestFloatOpsMatchGoSemantics(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	ops := []ir.Op{ir.OpAdd, ir.OpSub, ir.OpMul, ir.OpDiv}
	for trial := 0; trial < 200; trial++ {
		op := ops[rng.Intn(len(ops))]
		x := rng.NormFloat64() * 1e6
		y := rng.NormFloat64() * 1e3
		var want float64
		switch op {
		case ir.OpAdd:
			want = x + y
		case ir.OpSub:
			want = x - y
		case ir.OpMul:
			want = x * y
		case ir.OpDiv:
			want = x / y
		}
		res, got := runBinOp(t, op, ir.F64, math.Float64bits(x), math.Float64bits(y))
		if res.Trap != nil {
			t.Fatalf("%s: unexpected trap %v", op, res.Trap)
		}
		if math.Float64frombits(got) != want {
			t.Fatalf("%s(%g, %g) = %g, want %g", op, x, y, math.Float64frombits(got), want)
		}
	}
}

func TestDivByZeroTraps(t *testing.T) {
	res, _ := runBinOp(t, ir.OpDiv, ir.I64, 5, 0)
	if res.Trap == nil || res.Trap.Kind != TrapDivZero {
		t.Fatalf("trap = %v, want div-by-zero", res.Trap)
	}
	if !res.Trap.IsSymptom() {
		t.Error("div-by-zero should be a hardware symptom")
	}
}

// loopModule: main() { s=0; for i in 0..n-1 { s += in[i] }; out[0]=s }.
func loopModule(t testing.TB, n int) *ir.Module {
	t.Helper()
	m := ir.NewModule("loop")
	in := m.AddGlobal("in", n)
	out := m.AddGlobal("out", 1)
	f := m.NewFunc("main", ir.Void)
	b := ir.NewBuilder(f)

	entry := b.Cur
	header := b.Block("header")
	body := b.Block("body")
	exit := b.Block("exit")
	b.Jmp(header)

	b.SetBlock(header)
	i := b.Phi(ir.I64)
	s := b.Phi(ir.I64)
	cond := b.Bin(ir.OpLt, i, ir.ConstInt(int64(n)))
	b.Br(cond, body, exit)

	b.SetBlock(body)
	p := b.PtrAdd(in, i)
	v := b.Load(ir.I64, p)
	s2 := b.Bin(ir.OpAdd, s, v)
	i2 := b.Bin(ir.OpAdd, i, ir.ConstInt(1))
	b.Jmp(header)

	ir.AddIncoming(i, ir.ConstInt(0), entry)
	ir.AddIncoming(i, i2, body)
	ir.AddIncoming(s, ir.ConstInt(0), entry)
	ir.AddIncoming(s, s2, body)

	b.SetBlock(exit)
	b.Store(out, s)
	b.Ret(nil)
	m.Renumber()
	if err := m.Verify(); err != nil {
		t.Fatalf("verify: %v", err)
	}
	return m
}

func TestLoopSumsGlobal(t *testing.T) {
	const n = 100
	m := loopModule(t, n)
	mach, err := New(m, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	data := make([]int64, n)
	want := int64(0)
	for i := range data {
		data[i] = int64(i * 3)
		want += data[i]
	}
	if err := mach.BindInputInts("in", data); err != nil {
		t.Fatal(err)
	}
	mach.Reset()
	res := mach.Run(RunOptions{})
	if res.Trap != nil {
		t.Fatalf("trap: %v", res.Trap)
	}
	out, _ := mach.ReadGlobalInts("out")
	if out[0] != want {
		t.Fatalf("sum = %d, want %d", out[0], want)
	}
	if res.Dyn < int64(n) {
		t.Errorf("dyn = %d, implausibly small", res.Dyn)
	}
	if res.Cycles <= 0 {
		t.Errorf("cycles = %d", res.Cycles)
	}
}

func TestResetRestoresState(t *testing.T) {
	m := loopModule(t, 10)
	mach, err := New(m, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	data := []int64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	if err := mach.BindInputInts("in", data); err != nil {
		t.Fatal(err)
	}
	mach.Reset()
	r1 := mach.Run(RunOptions{})
	out1, _ := mach.ReadGlobalInts("out")
	mach.Reset()
	r2 := mach.Run(RunOptions{})
	out2, _ := mach.ReadGlobalInts("out")
	if out1[0] != out2[0] || r1.Dyn != r2.Dyn || r1.Cycles != r2.Cycles {
		t.Fatalf("run not deterministic after Reset: %v/%v dyn %d/%d cyc %d/%d",
			out1[0], out2[0], r1.Dyn, r2.Dyn, r1.Cycles, r2.Cycles)
	}
}

func TestOOBStoreTraps(t *testing.T) {
	m := ir.NewModule("oob")
	m.AddGlobal("out", 1)
	f := m.NewFunc("main", ir.Void)
	b := ir.NewBuilder(f)
	p := b.PtrAdd(m.Global("out"), ir.ConstInt(1<<40))
	b.Store(p, ir.ConstInt(1))
	b.Ret(nil)
	m.Renumber()
	mach, err := New(m, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	res := mach.Run(RunOptions{})
	if res.Trap == nil || res.Trap.Kind != TrapOOB {
		t.Fatalf("trap = %v, want OOB", res.Trap)
	}
}

func TestNullAccessTraps(t *testing.T) {
	m := ir.NewModule("null")
	f := m.NewFunc("main", ir.Void)
	b := ir.NewBuilder(f)
	g := m.AddGlobal("g", 1)
	p := b.PtrAdd(g, ir.ConstInt(-1)) // address 0 is the null guard
	b.Load(ir.I64, p)
	b.Ret(nil)
	m.Renumber()
	mach, err := New(m, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	res := mach.Run(RunOptions{})
	if res.Trap == nil || res.Trap.Kind != TrapOOB {
		t.Fatalf("trap = %v, want OOB for address 0", res.Trap)
	}
}

func TestWatchdogCatchesInfiniteLoop(t *testing.T) {
	m := ir.NewModule("spin")
	f := m.NewFunc("main", ir.Void)
	b := ir.NewBuilder(f)
	loop := b.Block("loop")
	b.Jmp(loop)
	b.SetBlock(loop)
	b.Jmp(loop)
	m.Renumber()
	cfg := DefaultConfig()
	cfg.MaxDyn = 10_000
	mach, err := New(m, cfg)
	if err != nil {
		t.Fatal(err)
	}
	res := mach.Run(RunOptions{})
	if res.Trap == nil || res.Trap.Kind != TrapWatchdog {
		t.Fatalf("trap = %v, want watchdog", res.Trap)
	}
}

func TestCallAndRecursion(t *testing.T) {
	// fib(n) recursive; main stores fib(12) = 144.
	m := ir.NewModule("fib")
	out := m.AddGlobal("out", 1)
	n := &ir.Param{Name: "n", Ty: ir.I64}
	fib := m.NewFunc("fib", ir.I64, n)
	b := ir.NewBuilder(fib)
	base := b.Block("base")
	rec := b.Block("rec")
	cond := b.Bin(ir.OpLt, n, ir.ConstInt(2))
	b.Br(cond, base, rec)
	b.SetBlock(base)
	b.Ret(n)
	b.SetBlock(rec)
	n1 := b.Bin(ir.OpSub, n, ir.ConstInt(1))
	n2 := b.Bin(ir.OpSub, n, ir.ConstInt(2))
	f1 := b.Call(fib, n1)
	f2 := b.Call(fib, n2)
	sum := b.Bin(ir.OpAdd, f1, f2)
	b.Ret(sum)

	mainFn := m.NewFunc("main", ir.Void)
	mb := ir.NewBuilder(mainFn)
	r := mb.Call(fib, ir.ConstInt(12))
	mb.Store(out, r)
	mb.Ret(nil)
	m.Renumber()
	if err := m.Verify(); err != nil {
		t.Fatal(err)
	}
	mach, err := New(m, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	res := mach.Run(RunOptions{})
	if res.Trap != nil {
		t.Fatalf("trap: %v", res.Trap)
	}
	got, _ := mach.ReadGlobalInts("out")
	if got[0] != 144 {
		t.Fatalf("fib(12) = %d, want 144", got[0])
	}
}

func TestStackOverflowTraps(t *testing.T) {
	// f(n) = f(n+1): infinite recursion.
	m := ir.NewModule("deep")
	n := &ir.Param{Name: "n", Ty: ir.I64}
	f := m.NewFunc("f", ir.I64, n)
	b := ir.NewBuilder(f)
	n1 := b.Bin(ir.OpAdd, n, ir.ConstInt(1))
	r := b.Call(f, n1)
	b.Ret(r)
	mainFn := m.NewFunc("main", ir.Void)
	mb := ir.NewBuilder(mainFn)
	mb.Call(f, ir.ConstInt(0))
	mb.Ret(nil)
	m.Renumber()
	mach, err := New(m, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	res := mach.Run(RunOptions{})
	if res.Trap == nil || res.Trap.Kind != TrapStackOverflow {
		t.Fatalf("trap = %v, want stack overflow", res.Trap)
	}
}

// checkModule builds main(){ v = load in[0]; rangecheck v in [10,20]; out[0]=v }.
func checkModule(t testing.TB) *ir.Module {
	t.Helper()
	m := ir.NewModule("chk")
	in := m.AddGlobal("in", 1)
	out := m.AddGlobal("out", 1)
	f := m.NewFunc("main", ir.Void)
	b := ir.NewBuilder(f)
	v := b.Load(ir.I64, in)
	chk := b.Emit(&ir.Instr{
		Op: ir.OpRangeCheck, Ty: ir.Void,
		Args:  []ir.Value{v, ir.ConstInt(10), ir.ConstInt(20)},
		Check: ir.CheckValue, CheckID: 7,
	})
	_ = chk
	b.Store(out, v)
	b.Ret(nil)
	m.Renumber()
	if err := m.Verify(); err != nil {
		t.Fatal(err)
	}
	return m
}

func TestRangeCheckPassesInside(t *testing.T) {
	m := checkModule(t)
	mach, _ := New(m, DefaultConfig())
	mach.BindInputInts("in", []int64{15})
	mach.Reset()
	res := mach.Run(RunOptions{})
	if res.Trap != nil {
		t.Fatalf("in-range value trapped: %v", res.Trap)
	}
}

func TestRangeCheckTrapsOutside(t *testing.T) {
	m := checkModule(t)
	mach, _ := New(m, DefaultConfig())
	mach.BindInputInts("in", []int64{-5})
	mach.Reset()
	res := mach.Run(RunOptions{})
	if res.Trap == nil || res.Trap.Kind != TrapCheck {
		t.Fatalf("trap = %v, want check", res.Trap)
	}
	if res.Trap.CheckID != 7 || res.Trap.CheckKind != ir.CheckValue {
		t.Errorf("check metadata = %d/%s", res.Trap.CheckID, res.Trap.CheckKind)
	}
}

func TestCountChecksMode(t *testing.T) {
	m := checkModule(t)
	mach, _ := New(m, DefaultConfig())
	mach.BindInputInts("in", []int64{1000})
	mach.Reset()
	res := mach.Run(RunOptions{CountChecks: true})
	if res.Trap != nil {
		t.Fatalf("counting mode trapped: %v", res.Trap)
	}
	if res.CheckFails != 1 || res.PerCheckFails[7] != 1 {
		t.Fatalf("check fails = %d (%v), want 1", res.CheckFails, res.PerCheckFails)
	}
	out, _ := mach.ReadGlobalInts("out")
	if out[0] != 1000 {
		t.Fatal("counting mode did not continue execution")
	}
}

func TestCmpCheckSemantics(t *testing.T) {
	m := ir.NewModule("cmp")
	in := m.AddGlobal("in", 2)
	f := m.NewFunc("main", ir.Void)
	b := ir.NewBuilder(f)
	a := b.Load(ir.I64, in)
	p := b.PtrAdd(in, ir.ConstInt(1))
	c := b.Load(ir.I64, p)
	b.Emit(&ir.Instr{Op: ir.OpCmpCheck, Args: []ir.Value{a, c}, Check: ir.CheckDup, CheckID: 1})
	b.Ret(nil)
	m.Renumber()
	mach, _ := New(m, DefaultConfig())

	mach.BindInputInts("in", []int64{42, 42})
	mach.Reset()
	if res := mach.Run(RunOptions{}); res.Trap != nil {
		t.Fatalf("equal values trapped: %v", res.Trap)
	}
	mach.BindInputInts("in", []int64{42, 43})
	mach.Reset()
	res := mach.Run(RunOptions{})
	if res.Trap == nil || res.Trap.Kind != TrapCheck || res.Trap.CheckKind != ir.CheckDup {
		t.Fatalf("trap = %v, want dup check", res.Trap)
	}
}

func TestFaultInjectionIsDeterministic(t *testing.T) {
	m := loopModule(t, 50)
	data := make([]int64, 50)
	for i := range data {
		data[i] = int64(i)
	}
	run := func() (*Result, int64) {
		mach, _ := New(m, DefaultConfig())
		mach.BindInputInts("in", data)
		mach.Reset()
		rng := rand.New(rand.NewSource(99))
		plan := &FaultPlan{
			TriggerDyn: 120,
			PickSlot:   func(n int) int { return rng.Intn(n) },
			PickBit:    func() int { return rng.Intn(64) },
		}
		res := mach.Run(RunOptions{Fault: plan})
		out, _ := mach.ReadGlobalInts("out")
		if !plan.Injected {
			t.Fatal("fault not injected")
		}
		return res, out[0]
	}
	r1, o1 := run()
	r2, o2 := run()
	if o1 != o2 || r1.Dyn != r2.Dyn {
		t.Fatalf("injection not deterministic: out %d/%d dyn %d/%d", o1, o2, r1.Dyn, r2.Dyn)
	}
}

func TestFaultInjectionRecordsMetadata(t *testing.T) {
	m := loopModule(t, 50)
	data := make([]int64, 50)
	for i := range data {
		data[i] = 1000
	}
	mach, _ := New(m, DefaultConfig())
	mach.BindInputInts("in", data)
	mach.Reset()
	rng := rand.New(rand.NewSource(5))
	plan := &FaultPlan{
		TriggerDyn: 60,
		PickSlot:   func(n int) int { return rng.Intn(n) },
		PickBit:    func() int { return 3 },
	}
	mach.Run(RunOptions{Fault: plan})
	if !plan.Injected {
		t.Fatal("not injected")
	}
	if plan.Bit != 3 {
		t.Errorf("bit = %d", plan.Bit)
	}
	if plan.OldBits^plan.NewBits != 1<<3 {
		t.Errorf("flip mask = %x", plan.OldBits^plan.NewBits)
	}
	if plan.RelChange < 0 {
		t.Errorf("rel change = %v", plan.RelChange)
	}
}

func TestTimingChargesMoreForProtectedCode(t *testing.T) {
	// Same loop, one with a redundant add chain: must cost more cycles.
	base := loopModule(t, 200)
	prot := loopModule(t, 200)
	// Append a duplicate add + check into the protected body.
	f := prot.Func("main")
	body := f.Blocks[2]
	s2 := body.Instrs[2] // add s, v
	dup := &ir.Instr{Op: ir.OpAdd, Ty: ir.I64, Args: append([]ir.Value{}, s2.Args...), UID: prot.NewUID()}
	body.InsertAfterInstr(dup, s2)
	chk := &ir.Instr{Op: ir.OpCmpCheck, Args: []ir.Value{s2, dup}, Check: ir.CheckDup, UID: prot.NewUID()}
	body.InsertAfterInstr(chk, dup)
	prot.Renumber()
	if err := prot.Verify(); err != nil {
		t.Fatal(err)
	}

	data := make([]int64, 200)
	for i := range data {
		data[i] = int64(i)
	}
	cycles := func(m *ir.Module) int64 {
		mach, _ := New(m, DefaultConfig())
		mach.BindInputInts("in", data)
		mach.Reset()
		res := mach.Run(RunOptions{})
		if res.Trap != nil {
			t.Fatalf("trap: %v", res.Trap)
		}
		return res.Cycles
	}
	c0, c1 := cycles(base), cycles(prot)
	if c1 <= c0 {
		t.Fatalf("protected cycles %d <= baseline %d", c1, c0)
	}
	// Dual issue should absorb part of the redundancy: the relative
	// overhead must be below the sequential worst case of 2 extra
	// instructions per 5-instruction body.
	if float64(c1) > float64(c0)*1.9 {
		t.Errorf("overhead implausibly high: %d vs %d", c1, c0)
	}
}

type recordingProfiler struct {
	n     int
	byUID map[int]int
}

func (p *recordingProfiler) Record(in *ir.Instr, bits uint64) {
	p.n++
	if p.byUID == nil {
		p.byUID = map[int]int{}
	}
	p.byUID[in.UID]++
}

func TestProfilerHookSeesValues(t *testing.T) {
	m := loopModule(t, 30)
	mach, _ := New(m, DefaultConfig())
	data := make([]int64, 30)
	mach.BindInputInts("in", data)
	mach.Reset()
	p := &recordingProfiler{}
	mach.Run(RunOptions{Profiler: p})
	if p.n == 0 {
		t.Fatal("profiler saw nothing")
	}
	// The load executes 30 times; find a UID with exactly 30 records.
	found := false
	for _, c := range p.byUID {
		if c == 30 {
			found = true
		}
	}
	if !found {
		t.Fatalf("no instruction recorded 30 times: %v", p.byUID)
	}
}

func TestTracerReceivesEvents(t *testing.T) {
	m := loopModule(t, 5)
	mach, _ := New(m, DefaultConfig())
	mach.BindInputInts("in", []int64{1, 2, 3, 4, 5})
	mach.Reset()
	var buf bytes.Buffer
	tr := &WriterTracer{W: &buf, Limit: 50}
	res := mach.Run(RunOptions{Tracer: tr})
	if res.Trap != nil {
		t.Fatal(res.Trap)
	}
	if tr.Events() != 50 {
		t.Fatalf("events = %d, want 50 (limit)", tr.Events())
	}
	out := buf.String()
	for _, want := range []string{"main", "phi", "load", "add"} {
		if !strings.Contains(out, want) {
			t.Errorf("trace missing %q:\n%s", want, out[:200])
		}
	}
}
