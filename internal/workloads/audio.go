package workloads

import (
	"math"

	"repro/internal/fidelity"
	"repro/internal/vm"
)

// Audio workloads: g721enc/g721dec (mediabench, ADPCM with classic
// predictor/step-index state variables) and mp3enc/mp3dec (mibench-style
// subband codec; the decoder carries the paper's Figure 3 CRC loop).

const (
	audioTrainN = 8192
	audioTestN  = 2048
	mp3TrainN   = 4096
	mp3TestN    = 1024
	mp3Bands    = 8
	mp3Frame    = 32
)

func audioN(kind InputKind) int {
	if kind == Train {
		return audioTrainN
	}
	return audioTestN
}

func mp3N(kind InputKind) int {
	if kind == Train {
		return mp3TrainN
	}
	return mp3TestN
}

// IMA ADPCM tables (shared by kernels via globals and by the host mirror).
var imaStepTable = []int64{
	7, 8, 9, 10, 11, 12, 13, 14, 16, 17, 19, 21, 23, 25, 28, 31, 34, 37,
	41, 45, 50, 55, 60, 66, 73, 80, 88, 97, 107, 118, 130, 143, 157, 173,
	190, 209, 230, 253, 279, 307, 337, 371, 408, 449, 494, 544, 598, 658,
	724, 796, 876, 963, 1060, 1166, 1282, 1411, 1552, 1707, 1878, 2066,
	2272, 2499, 2749, 3024, 3327, 3660, 4026, 4428, 4871, 5358, 5894, 6484,
	7132, 7845, 8630, 9493, 10442, 11487, 12635, 13899, 15289, 16818,
	18500, 20350, 22385, 24623, 27086, 29794, 32767,
}

var imaIndexTable = []int64{-1, -1, -1, -1, 2, 4, 6, 8, -1, -1, -1, -1, 2, 4, 6, 8}

// imaEncode / imaDecode are the host mirrors of the kernels, used to
// generate decoder inputs and to score encoder outputs.
func imaEncode(samples []int64) []int64 {
	codes := make([]int64, len(samples))
	pred, index := int64(0), int64(0)
	for i, s := range samples {
		step := imaStepTable[index]
		diff := s - pred
		var code int64
		if diff < 0 {
			code = 8
			diff = -diff
		}
		if diff >= step {
			code |= 4
			diff -= step
		}
		if diff >= step>>1 {
			code |= 2
			diff -= step >> 1
		}
		if diff >= step>>2 {
			code |= 1
		}
		pred, index = imaStep(pred, index, code)
		codes[i] = code
	}
	return codes
}

func imaDecode(codes []int64) []int64 {
	out := make([]int64, len(codes))
	pred, index := int64(0), int64(0)
	for i, code := range codes {
		pred, index = imaStep(pred, index, code&15)
		out[i] = pred
	}
	return out
}

// imaStep applies one ADPCM state update for a 4-bit code.
func imaStep(pred, index, code int64) (int64, int64) {
	step := imaStepTable[index]
	diffq := step >> 3
	if code&4 != 0 {
		diffq += step
	}
	if code&2 != 0 {
		diffq += step >> 1
	}
	if code&1 != 0 {
		diffq += step >> 2
	}
	if code&8 != 0 {
		pred -= diffq
	} else {
		pred += diffq
	}
	if pred > 32767 {
		pred = 32767
	}
	if pred < -32768 {
		pred = -32768
	}
	index += imaIndexTable[code]
	if index < 0 {
		index = 0
	}
	if index > 88 {
		index = 88
	}
	return pred, index
}

const g721encSrc = `
// g721enc: ADPCM audio encoder. pred and index are textbook state
// variables: they carry quantizer state across every sample.
global int pcm[8192];
global int steptab[89];
global int idxtab[16];
global int params[1];
global int out[8192];

void main() {
	int n = params[0];
	int pred = 0;
	int index = 0;
	for (int i = 0; i < n; i += 1) {
		int step = steptab[index];
		int diff = pcm[i] - pred;
		int code = 0;
		if (diff < 0) { code = 8; diff = 0 - diff; }
		if (diff >= step) { code |= 4; diff -= step; }
		if (diff >= (step >> 1)) { code |= 2; diff -= step >> 1; }
		if (diff >= (step >> 2)) { code |= 1; }
		int diffq = step >> 3;
		if ((code & 4) != 0) { diffq += step; }
		if ((code & 2) != 0) { diffq += step >> 1; }
		if ((code & 1) != 0) { diffq += step >> 2; }
		if ((code & 8) != 0) { pred -= diffq; }
		else { pred += diffq; }
		pred = clampi(pred, -32768, 32767);
		index = clampi(index + idxtab[code], 0, 88);
		out[i] = code;
	}
}`

const g721decSrc = `
// g721dec: ADPCM audio decoder, mirror state machine of the encoder.
global int codes[8192];
global int steptab[89];
global int idxtab[16];
global int params[1];
global int out[8192];

void main() {
	int n = params[0];
	int pred = 0;
	int index = 0;
	for (int i = 0; i < n; i += 1) {
		int code = codes[i] & 15;
		int step = steptab[index];
		int diffq = step >> 3;
		if ((code & 4) != 0) { diffq += step; }
		if ((code & 2) != 0) { diffq += step >> 1; }
		if ((code & 1) != 0) { diffq += step >> 2; }
		if ((code & 8) != 0) { pred -= diffq; }
		else { pred += diffq; }
		pred = clampi(pred, -32768, 32767);
		index = clampi(index + idxtab[code], 0, 88);
		out[i] = pred;
	}
}`

func bindADPCMTables(m *vm.Machine) error {
	if err := bindInts(m, "steptab", imaStepTable); err != nil {
		return err
	}
	return bindInts(m, "idxtab", imaIndexTable)
}

var g721enc = register(&Workload{
	Name:      "g721enc",
	Suite:     "mediabench",
	Category:  "audio",
	Desc:      "ADPCM audio encoder (G.721-class predictor state machine)",
	Source:    g721encSrc,
	Output:    "out",
	InputDesc: "train 8192 samples, test 2048 samples",
	Judge:     fidelity.Judgment{Metric: fidelity.MetricSegSNR, Threshold: 80, HigherIsBetter: true},
	Bind: func(m *vm.Machine, kind InputKind) error {
		n := audioN(kind)
		if err := bindInts(m, "pcm", synthAudio(n, 51+uint64(kind))); err != nil {
			return err
		}
		if err := bindADPCMTables(m); err != nil {
			return err
		}
		return bindInts(m, "params", []int64{int64(n)})
	},
	Measure: func(golden, test []uint64, kind InputKind) float64 {
		n := audioN(kind)
		g := imaDecode(wordsToInts(golden[:n]))
		t := imaDecode(wordsToInts(test[:n]))
		return fidelity.SegmentalSNRInts(g, t, 256)
	},
})

var g721dec = register(&Workload{
	Name:      "g721dec",
	Suite:     "mediabench",
	Category:  "audio",
	Desc:      "ADPCM audio decoder",
	Source:    g721decSrc,
	Output:    "out",
	InputDesc: "train 8192 samples, test 2048 samples",
	Judge:     fidelity.Judgment{Metric: fidelity.MetricSegSNR, Threshold: 80, HigherIsBetter: true},
	Bind: func(m *vm.Machine, kind InputKind) error {
		n := audioN(kind)
		codes := imaEncode(synthAudio(n, 53+uint64(kind)))
		if err := bindInts(m, "codes", codes); err != nil {
			return err
		}
		if err := bindADPCMTables(m); err != nil {
			return err
		}
		return bindInts(m, "params", []int64{int64(n)})
	},
	Measure: func(golden, test []uint64, kind InputKind) float64 {
		n := audioN(kind)
		return fidelity.SegmentalSNRInts(wordsToInts(golden[:n]), wordsToInts(test[:n]), 256)
	},
})

// ---- mp3-style subband codec ---------------------------------------------

// mp3Analysis returns the 8x32 analysis cosine matrix.
func mp3Analysis() []float64 {
	t := make([]float64, mp3Bands*mp3Frame)
	for b := 0; b < mp3Bands; b++ {
		for n := 0; n < mp3Frame; n++ {
			t[b*mp3Frame+n] = math.Cos(float64(2*n+1) * float64(2*b+1) * math.Pi / 128)
		}
	}
	return t
}

// mp3Synthesis returns the 32x8 synthesis matrix (scaled transpose).
func mp3Synthesis() []float64 {
	a := mp3Analysis()
	t := make([]float64, mp3Frame*mp3Bands)
	for n := 0; n < mp3Frame; n++ {
		for b := 0; b < mp3Bands; b++ {
			t[n*mp3Bands+b] = a[b*mp3Frame+n] * (2.0 / float64(mp3Frame))
		}
	}
	return t
}

// mp3Steps is the per-band quantization step table.
var mp3Steps = []int64{192, 224, 256, 320, 384, 448, 512, 640}

// mp3HostSynthesize reconstructs a waveform from quantized subband values
// (host mirror of the decoder's synthesis, used to score the encoder).
func mp3HostSynthesize(q []int64, nSamples int) []int64 {
	stab := mp3Synthesis()
	out := make([]int64, nSamples)
	frames := nSamples / mp3Frame
	for f := 0; f < frames; f++ {
		for n := 0; n < mp3Frame; n++ {
			var s float64
			for b := 0; b < mp3Bands; b++ {
				s += float64(q[f*mp3Bands+b]*mp3Steps[b]) * stab[n*mp3Bands+b]
			}
			out[f*mp3Frame+n] = int64(math.Floor(s + 0.5))
		}
	}
	return out
}

const mp3encSrc = `
// mp3enc: subband analysis + per-band quantization (mibench mad-style
// filterbank kernel, simplified to one granule of 8 bands).
global int pcm[4096];
global float atab[256];
global int steps[8];
global int params[1];
global int out[1024];

void main() {
	int n = params[0];
	int frames = n / 32;
	for (int f = 0; f < frames; f += 1) {
		for (int b = 0; b < 8; b += 1) {
			float s = 0.0;
			for (int k = 0; k < 32; k += 1) {
				s += i2f(pcm[f * 32 + k]) * atab[b * 32 + k];
			}
			int st = steps[b];
			out[f * 8 + b] = f2i(floor(s / i2f(st) + 0.5));
		}
	}
}`

const mp3decSrc = `
// mp3dec: dequantization + synthesis, plus the paper Figure 3 CRC loop
// over the compressed stream (crc is the canonical state variable).
global int q[1024];
global float stab[256];
global int steps[8];
global int crctab[64];
global int params[1];
global int out[4096];
global int crcout[1];

void main() {
	int n = params[0];
	int frames = n / 32;
	int words = frames * 8;

	// CRC over the compressed stream, as mad does while parsing.
	int crc = 0xffff;
	for (int i = 0; i < words; i += 1) {
		int data = q[i];
		int tv = crctab[(data ^ crc) & 63];
		crc = ((crc << 8) ^ tv) & 0xffff;
	}
	crcout[0] = crc;

	for (int f = 0; f < frames; f += 1) {
		for (int k = 0; k < 32; k += 1) {
			float s = 0.0;
			for (int b = 0; b < 8; b += 1) {
				s += i2f(q[f * 8 + b] * steps[b]) * stab[k * 8 + b];
			}
			out[f * 32 + k] = f2i(floor(s + 0.5));
		}
	}
}`

// mp3CRCTable is bound into the decoder's crctab global.
func mp3CRCTable() []int64 {
	t := make([]int64, 64)
	r := newRand(97)
	for i := range t {
		t[i] = r.intn(1 << 16)
	}
	return t
}

// mp3EncodeHost quantizes a waveform host-side (mirror of mp3enc), used to
// build mp3dec inputs.
func mp3EncodeHost(pcm []int64) []int64 {
	atab := mp3Analysis()
	frames := len(pcm) / mp3Frame
	out := make([]int64, frames*mp3Bands)
	for f := 0; f < frames; f++ {
		for b := 0; b < mp3Bands; b++ {
			var s float64
			for k := 0; k < mp3Frame; k++ {
				s += float64(pcm[f*mp3Frame+k]) * atab[b*mp3Frame+k]
			}
			out[f*mp3Bands+b] = int64(math.Floor(s/float64(mp3Steps[b]) + 0.5))
		}
	}
	return out
}

var mp3enc = register(&Workload{
	Name:      "mp3enc",
	Suite:     "mibench",
	Category:  "audio",
	Desc:      "MP3-style subband audio encoder",
	Source:    mp3encSrc,
	Output:    "out",
	InputDesc: "train 4096 samples, test 1024 samples",
	Judge:     fidelity.Judgment{Metric: fidelity.MetricPSNR, Threshold: 30, HigherIsBetter: true},
	Bind: func(m *vm.Machine, kind InputKind) error {
		n := mp3N(kind)
		if err := bindInts(m, "pcm", synthAudio(n, 61+uint64(kind))); err != nil {
			return err
		}
		if err := m.BindInputFloats("atab", mp3Analysis()); err != nil {
			return err
		}
		if err := bindInts(m, "steps", mp3Steps); err != nil {
			return err
		}
		return bindInts(m, "params", []int64{int64(n)})
	},
	Measure: func(golden, test []uint64, kind InputKind) float64 {
		n := mp3N(kind)
		words := (n / mp3Frame) * mp3Bands
		g := mp3HostSynthesize(wordsToInts(golden[:words]), n)
		t := mp3HostSynthesize(wordsToInts(test[:words]), n)
		return fidelity.PSNRInts(g, t, 32768)
	},
})

var mp3dec = register(&Workload{
	Name:      "mp3dec",
	Suite:     "mibench",
	Category:  "audio",
	Desc:      "MP3-style subband audio decoder with stream CRC (Figure 3 kernel)",
	Source:    mp3decSrc,
	Output:    "out",
	InputDesc: "train 4096 samples, test 1024 samples",
	Judge:     fidelity.Judgment{Metric: fidelity.MetricPSNR, Threshold: 30, HigherIsBetter: true},
	Bind: func(m *vm.Machine, kind InputKind) error {
		n := mp3N(kind)
		q := mp3EncodeHost(synthAudio(n, 67+uint64(kind)))
		if err := bindInts(m, "q", q); err != nil {
			return err
		}
		if err := m.BindInputFloats("stab", mp3Synthesis()); err != nil {
			return err
		}
		if err := bindInts(m, "steps", mp3Steps); err != nil {
			return err
		}
		if err := bindInts(m, "crctab", mp3CRCTable()); err != nil {
			return err
		}
		return bindInts(m, "params", []int64{int64(n)})
	},
	Measure: func(golden, test []uint64, kind InputKind) float64 {
		n := mp3N(kind)
		return fidelity.PSNRInts(wordsToInts(golden[:n]), wordsToInts(test[:n]), 32768)
	},
})
