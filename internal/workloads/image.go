package workloads

import (
	"repro/internal/fidelity"
	"repro/internal/vm"
)

// Image workloads: jpegenc, jpegdec (mediabench) and tiff2bw (mibench).
// Train and test images differ in size and content (Table I uses a larger
// training image), mirroring the paper's profiling/test input split.

const (
	jpegTrainW, jpegTrainH = 48, 48
	jpegTestW, jpegTestH   = 32, 32
	bwTrainW, bwTrainH     = 96, 96
	bwTestW, bwTestH       = 64, 64
)

func jpegDims(kind InputKind) (w, h int) {
	if kind == Train {
		return jpegTrainW, jpegTrainH
	}
	return jpegTestW, jpegTestH
}

func bwDims(kind InputKind) (w, h int) {
	if kind == Train {
		return bwTrainW, bwTrainH
	}
	return bwTestW, bwTestH
}

const jpegdecSrc = `
// jpegdec: run-length entropy decode + dequantize + inverse DCT of 8x8
// blocks (mediabench jpeg decoder kernel). The stream position pos is the
// paper's Figure 1 villain: a fault while parsing the entropy-coded
// stream corrupts every subsequent block. pos, k and the block loop
// counters are loop-carried state variables; zigzag, quantization and
// cosine tables are the lookup tables value checks guard.
global int stream[4800];
global int qtab[64];
global int zig[64];
global float ctab[64];
global int params[2];
global int out[2304];

void main() {
	int bw = params[0];
	int bh = params[1];
	int W = bw * 8;
	int pos = 0;
	for (int by = 0; by < bh; by += 1) {
		for (int bx = 0; bx < bw; bx += 1) {
			float blk[64];
			for (int k0 = 0; k0 < 64; k0 += 1) { blk[k0] = 0.0; }
			// Entropy decode: (zero-run, value) pairs, (255, _) ends a block.
			int k = 0;
			while (1) {
				int runlen = stream[pos];
				pos += 1;
				int val = stream[pos];
				pos += 1;
				if (runlen == 255) { break; }
				k += runlen;
				int r = zig[k & 63];
				blk[r] = i2f(val * qtab[r]);
				k += 1;
			}
			float tmp[64];
			for (int v = 0; v < 8; v += 1) {
				for (int x = 0; x < 8; x += 1) {
					float s = 0.0;
					for (int u = 0; u < 8; u += 1) {
						s += blk[v * 8 + u] * ctab[u * 8 + x];
					}
					tmp[v * 8 + x] = s;
				}
			}
			for (int y = 0; y < 8; y += 1) {
				for (int x = 0; x < 8; x += 1) {
					float s = 0.0;
					for (int v = 0; v < 8; v += 1) {
						s += tmp[v * 8 + x] * ctab[v * 8 + y];
					}
					int pix = clampi(f2i(floor(s + 128.5)), 0, 255);
					out[(by * 8 + y) * W + bx * 8 + x] = pix;
				}
			}
		}
	}
}`

const jpegencSrc = `
// jpegenc: forward DCT + quantization + zigzag of 8x8 blocks (mediabench
// jpeg encoder kernel).
global int img[2304];
global int qtab[64];
global int zig[64];
global float ctab[64];
global int params[2];
global int out[2304];

void main() {
	int bw = params[0];
	int bh = params[1];
	int W = bw * 8;
	for (int by = 0; by < bh; by += 1) {
		for (int bx = 0; bx < bw; bx += 1) {
			float f[64];
			for (int y = 0; y < 8; y += 1) {
				for (int x = 0; x < 8; x += 1) {
					f[y * 8 + x] = i2f(img[(by * 8 + y) * W + bx * 8 + x] - 128);
				}
			}
			float t[64];
			for (int y = 0; y < 8; y += 1) {
				for (int u = 0; u < 8; u += 1) {
					float s = 0.0;
					for (int x = 0; x < 8; x += 1) {
						s += f[y * 8 + x] * ctab[u * 8 + x];
					}
					t[y * 8 + u] = s;
				}
			}
			int base = (by * bw + bx) * 64;
			float F[64];
			for (int u = 0; u < 8; u += 1) {
				for (int v = 0; v < 8; v += 1) {
					float s = 0.0;
					for (int y = 0; y < 8; y += 1) {
						s += t[y * 8 + u] * ctab[v * 8 + y];
					}
					F[v * 8 + u] = s;
				}
			}
			for (int k = 0; k < 64; k += 1) {
				int r = zig[k];
				out[base + k] = f2i(floor(F[r] / i2f(qtab[r]) + 0.5));
			}
		}
	}
}`

const tiff2bwSrc = `
// tiff2bw: RGB to grayscale conversion (mibench consumer kernel) using the
// ITU-R 601 integer weights, same fixed-point shifts as the original.
global int rp[9216];
global int gp[9216];
global int bp[9216];
global int params[1];
global int out[9216];

void main() {
	int n = params[0];
	for (int i = 0; i < n; i += 1) {
		int v = (rp[i] * 77 + gp[i] * 151 + bp[i] * 28) >> 8;
		out[i] = clampi(v, 0, 255);
	}
}`

func bindJPEGTables(m *vm.Machine) error {
	if err := bindInts(m, "qtab", jpegQuant); err != nil {
		return err
	}
	if err := bindInts(m, "zig", jpegZigzag); err != nil {
		return err
	}
	return m.BindInputFloats("ctab", dctTable())
}

var jpegdec = register(&Workload{
	Name:      "jpegdec",
	Suite:     "mediabench",
	Category:  "image",
	Desc:      "JPEG image decoder (dequantize + 8x8 IDCT)",
	Source:    jpegdecSrc,
	Output:    "out",
	InputDesc: "train 48x48 image, test 32x32 image",
	Judge:     fidelity.Judgment{Metric: fidelity.MetricPSNR, Threshold: 30, HigherIsBetter: true},
	Bind: func(m *vm.Machine, kind InputKind) error {
		w, h := jpegDims(kind)
		img := synthImage(w, h, 11+uint64(kind))
		stream := rleEncode(encodeImage(img, w, h))
		if err := bindInts(m, "stream", stream); err != nil {
			return err
		}
		if err := bindJPEGTables(m); err != nil {
			return err
		}
		return bindInts(m, "params", []int64{int64(w / 8), int64(h / 8)})
	},
	Measure: func(golden, test []uint64, kind InputKind) float64 {
		w, h := jpegDims(kind)
		n := w * h
		return fidelity.PSNRInts(wordsToInts(golden[:n]), wordsToInts(test[:n]), 255)
	},
})

var jpegenc = register(&Workload{
	Name:      "jpegenc",
	Suite:     "mediabench",
	Category:  "image",
	Desc:      "JPEG image encoder (8x8 DCT + quantize + zigzag)",
	Source:    jpegencSrc,
	Output:    "out",
	InputDesc: "train 48x48 image, test 32x32 image",
	Judge:     fidelity.Judgment{Metric: fidelity.MetricPSNR, Threshold: 30, HigherIsBetter: true},
	Bind: func(m *vm.Machine, kind InputKind) error {
		w, h := jpegDims(kind)
		img := synthImage(w, h, 23+uint64(kind))
		if err := bindInts(m, "img", img); err != nil {
			return err
		}
		if err := bindJPEGTables(m); err != nil {
			return err
		}
		return bindInts(m, "params", []int64{int64(w / 8), int64(h / 8)})
	},
	Measure: func(golden, test []uint64, kind InputKind) float64 {
		// Score the encoder by decoding both outputs host-side and
		// comparing the images, as a user would.
		w, h := jpegDims(kind)
		n := w * h
		g := decodeImage(wordsToInts(golden[:n]), w, h)
		t := decodeImage(wordsToInts(test[:n]), w, h)
		return fidelity.PSNRInts(g, t, 255)
	},
})

var tiff2bw = register(&Workload{
	Name:      "tiff2bw",
	Suite:     "mibench",
	Category:  "image",
	Desc:      "TIFF color to black-and-white converter",
	Source:    tiff2bwSrc,
	Output:    "out",
	InputDesc: "train 96x96 RGB, test 64x64 RGB",
	Judge:     fidelity.Judgment{Metric: fidelity.MetricPSNR, Threshold: 30, HigherIsBetter: true},
	Bind: func(m *vm.Machine, kind InputKind) error {
		w, h := bwDims(kind)
		r := synthImage(w, h, 31+uint64(kind))
		g := synthImage(w, h, 37+uint64(kind))
		b := synthImage(w, h, 41+uint64(kind))
		if err := bindInts(m, "rp", r); err != nil {
			return err
		}
		if err := bindInts(m, "gp", g); err != nil {
			return err
		}
		if err := bindInts(m, "bp", b); err != nil {
			return err
		}
		return bindInts(m, "params", []int64{int64(w * h)})
	},
	Measure: func(golden, test []uint64, kind InputKind) float64 {
		w, h := bwDims(kind)
		n := w * h
		return fidelity.PSNRInts(wordsToInts(golden[:n]), wordsToInts(test[:n]), 255)
	},
})
