package workloads

import "math"

// Host-side JPEG math shared by the jpegenc/jpegdec workloads: the same
// orthonormal 8x8 DCT the kernels use (via the ctab global), the standard
// luminance quantization table, and the zigzag scan order.

// dctTable returns C[u*8+x] = a(u) * cos((2x+1) u pi / 16), the orthonormal
// DCT-II basis; forward is F = C f, inverse is f = C^T F.
func dctTable() []float64 {
	t := make([]float64, 64)
	for u := 0; u < 8; u++ {
		a := math.Sqrt(2.0 / 8.0)
		if u == 0 {
			a = math.Sqrt(1.0 / 8.0)
		}
		for x := 0; x < 8; x++ {
			t[u*8+x] = a * math.Cos(float64(2*x+1)*float64(u)*math.Pi/16)
		}
	}
	return t
}

// jpegQuant is the standard JPEG luminance quantization table (quality ~50).
var jpegQuant = []int64{
	16, 11, 10, 16, 24, 40, 51, 61,
	12, 12, 14, 19, 26, 58, 60, 55,
	14, 13, 16, 24, 40, 57, 69, 56,
	14, 17, 22, 29, 51, 87, 80, 62,
	18, 22, 37, 56, 68, 109, 103, 77,
	24, 35, 55, 64, 81, 104, 113, 92,
	49, 64, 78, 87, 103, 121, 120, 101,
	72, 92, 95, 98, 112, 100, 103, 99,
}

// jpegZigzag maps scan position k to raster position within an 8x8 block.
var jpegZigzag = []int64{
	0, 1, 8, 16, 9, 2, 3, 10,
	17, 24, 32, 25, 18, 11, 4, 5,
	12, 19, 26, 33, 40, 48, 41, 34,
	27, 20, 13, 6, 7, 14, 21, 28,
	35, 42, 49, 56, 57, 50, 43, 36,
	29, 22, 15, 23, 30, 37, 44, 51,
	58, 59, 52, 45, 38, 31, 39, 46,
	53, 60, 61, 54, 47, 55, 62, 63,
}

// forwardBlock computes quantized zigzag coefficients of one 8x8 pixel
// block (host-side encoder, used to build jpegdec inputs).
func forwardBlock(pix []int64, stride int, ctab []float64) []int64 {
	var f [64]float64
	for y := 0; y < 8; y++ {
		for x := 0; x < 8; x++ {
			f[y*8+x] = float64(pix[y*stride+x]) - 128
		}
	}
	// rows: t[y][u] = sum_x f[y][x] * C[u][x]
	var t [64]float64
	for y := 0; y < 8; y++ {
		for u := 0; u < 8; u++ {
			var s float64
			for x := 0; x < 8; x++ {
				s += f[y*8+x] * ctab[u*8+x]
			}
			t[y*8+u] = s
		}
	}
	// cols: F[v][u] = sum_y t[y][u] * C[v][y]
	var F [64]float64
	for u := 0; u < 8; u++ {
		for v := 0; v < 8; v++ {
			var s float64
			for y := 0; y < 8; y++ {
				s += t[y*8+u] * ctab[v*8+y]
			}
			F[v*8+u] = s
		}
	}
	out := make([]int64, 64)
	for k := 0; k < 64; k++ {
		r := jpegZigzag[k]
		q := jpegQuant[r]
		out[k] = int64(math.Floor(F[r]/float64(q) + 0.5))
	}
	return out
}

// inverseBlock reconstructs 8x8 pixels from quantized zigzag coefficients
// (host-side decoder, used to score jpegenc outputs).
func inverseBlock(coef []int64, pix []int64, stride int, ctab []float64) {
	var F [64]float64
	for k := 0; k < 64; k++ {
		r := jpegZigzag[k]
		F[r] = float64(coef[k] * jpegQuant[r])
	}
	// rows: t[v][x] = sum_u F[v][u] * C[u][x]
	var t [64]float64
	for v := 0; v < 8; v++ {
		for x := 0; x < 8; x++ {
			var s float64
			for u := 0; u < 8; u++ {
				s += F[v*8+u] * ctab[u*8+x]
			}
			t[v*8+x] = s
		}
	}
	// cols: f[y][x] = sum_v t[v][x] * C[v][y]
	for y := 0; y < 8; y++ {
		for x := 0; x < 8; x++ {
			var s float64
			for v := 0; v < 8; v++ {
				s += t[v*8+x] * ctab[v*8+y]
			}
			pix[y*stride+x] = clamp255(int64(math.Floor(s + 128.5)))
		}
	}
}

// encodeImage converts a w x h image into per-block zigzag coefficients.
func encodeImage(img []int64, w, h int) []int64 {
	ctab := dctTable()
	bw, bh := w/8, h/8
	out := make([]int64, bw*bh*64)
	for by := 0; by < bh; by++ {
		for bx := 0; bx < bw; bx++ {
			blk := forwardBlock(img[(by*8*w+bx*8):], w, ctab)
			copy(out[(by*bw+bx)*64:], blk)
		}
	}
	return out
}

// decodeImage reconstructs pixels from per-block zigzag coefficients.
func decodeImage(coef []int64, w, h int) []int64 {
	ctab := dctTable()
	bw, bh := w/8, h/8
	img := make([]int64, w*h)
	for by := 0; by < bh; by++ {
		for bx := 0; bx < bw; bx++ {
			inverseBlock(coef[(by*bw+bx)*64:(by*bw+bx)*64+64], img[(by*8*w+bx*8):], w, ctab)
		}
	}
	return img
}

// rleEncode entropy-codes per-block zigzag coefficients as a stream of
// (zero-run, value) pairs with a (255, 0) end-of-block marker — the
// simplified stand-in for JPEG's Huffman-coded runs that gives the decoder
// the stream-parsing state the paper's Figure 1 discussion centers on.
func rleEncode(coef []int64) []int64 {
	var stream []int64
	for base := 0; base < len(coef); base += 64 {
		run := int64(0)
		for k := 0; k < 64; k++ {
			v := coef[base+k]
			if v == 0 {
				run++
				continue
			}
			stream = append(stream, run, v)
			run = 0
		}
		stream = append(stream, 255, 0)
	}
	return stream
}
