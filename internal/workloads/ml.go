package workloads

import (
	"repro/internal/fidelity"
	"repro/internal/vm"
)

// Machine-learning workloads: kmeans (in-house, as in the paper) and svm
// (after svmlight). Both emit classification labels; fidelity is the label
// mismatch rate against the fault-free run (threshold 10%, Table I).

const (
	kmTrainN, kmTestN = 128, 96
	kmDims            = 8
	kmK               = 4
	kmIters           = 10

	svmTrainExamples, svmTrainEval = 256, 128
	svmTestExamples, svmTestEval   = 128, 96
	svmDims                        = 8
	svmEpochs                      = 4
)

func kmN(kind InputKind) int {
	if kind == Train {
		return kmTrainN
	}
	return kmTestN
}

func svmSizes(kind InputKind) (train, eval int) {
	if kind == Train {
		return svmTrainExamples, svmTrainEval
	}
	return svmTestExamples, svmTestEval
}

const kmeansSrc = `
// kmeans: Lloyd's algorithm. Centroids (cent) persist across iterations in
// memory; the per-point best-distance search carries best/bestD state.
global int pts[1024];
global float cent[32];
global float sums[32];
global int counts[4];
global int params[2];
global int out[128];

void main() {
	int n = params[0];
	int d = params[1];
	// Initialize centroids from the first k points.
	for (int c = 0; c < 4; c += 1) {
		for (int j = 0; j < d; j += 1) {
			cent[c * d + j] = i2f(pts[c * d + j]);
		}
	}
	for (int iter = 0; iter < 10; iter += 1) {
		for (int c = 0; c < 4; c += 1) {
			counts[c] = 0;
			for (int j = 0; j < d; j += 1) { sums[c * d + j] = 0.0; }
		}
		for (int i = 0; i < n; i += 1) {
			int best = 0;
			float bestD = 1.0e300;
			for (int c = 0; c < 4; c += 1) {
				float dist = 0.0;
				for (int j = 0; j < d; j += 1) {
					float dv = i2f(pts[i * d + j]) - cent[c * d + j];
					dist += dv * dv;
				}
				if (dist < bestD) { bestD = dist; best = c; }
			}
			out[i] = best;
			counts[best] += 1;
			for (int j = 0; j < d; j += 1) {
				sums[best * d + j] += i2f(pts[i * d + j]);
			}
		}
		for (int c = 0; c < 4; c += 1) {
			if (counts[c] > 0) {
				for (int j = 0; j < d; j += 1) {
					cent[c * d + j] = sums[c * d + j] / i2f(counts[c]);
				}
			}
		}
	}
}`

const svmSrc = `
// svm: linear SVM trained with Pegasos-style SGD, then used to classify an
// evaluation set. The weight vector (in memory) plus the loop and scaling
// state are the critical computation.
global int trainx[2048];
global int trainy[256];
global int evalx[1024];
global float wvec[8];
global int params[3];
global int out[128];

void main() {
	int ntr = params[0];
	int nev = params[1];
	int d = params[2];
	for (int j = 0; j < d; j += 1) { wvec[j] = 0.0; }
	float scale = 1.0;
	int t = 1;
	for (int epoch = 0; epoch < 4; epoch += 1) {
		for (int i = 0; i < ntr; i += 1) {
			float eta = 1.0 / (0.0001 * i2f(t));
			float margin = 0.0;
			for (int j = 0; j < d; j += 1) {
				margin += wvec[j] * i2f(trainx[i * d + j]);
			}
			margin = margin * i2f(trainy[i]) * scale;
			// Regularization shrink folded into a running scale.
			scale = scale * (1.0 - 0.0001 * eta);
			if (scale < 1.0e-6) { scale = 1.0e-6; }
			if (margin < 1000000.0) {
				float step = eta * i2f(trainy[i]) / scale;
				for (int j = 0; j < d; j += 1) {
					wvec[j] += step * i2f(trainx[i * d + j]) * 0.001;
				}
			}
			t += 1;
		}
	}
	for (int i = 0; i < nev; i += 1) {
		float s = 0.0;
		for (int j = 0; j < d; j += 1) {
			s += wvec[j] * i2f(evalx[i * d + j]);
		}
		if (s >= 0.0) { out[i] = 1; }
		else { out[i] = -1; }
	}
}`

var kmeans = register(&Workload{
	Name:      "kmeans",
	Suite:     "in-house",
	Category:  "machine learning",
	Desc:      "K-means clustering (Lloyd's algorithm)",
	Source:    kmeansSrc,
	Output:    "out",
	InputDesc: "train 128x8 samples, test 96x8 samples",
	Judge:     fidelity.Judgment{Metric: fidelity.MetricClassErr, Threshold: 10},
	Bind: func(m *vm.Machine, kind InputKind) error {
		n := kmN(kind)
		pts, _ := synthClusters(n, kmDims, kmK, 91+uint64(kind))
		if err := bindInts(m, "pts", pts); err != nil {
			return err
		}
		return bindInts(m, "params", []int64{int64(n), kmDims})
	},
	Measure: func(golden, test []uint64, kind InputKind) float64 {
		n := kmN(kind)
		return fidelity.ClassificationError(wordsToInts(golden[:n]), wordsToInts(test[:n]))
	},
})

var svm = register(&Workload{
	Name:      "svm",
	Suite:     "svmlight",
	Category:  "machine learning",
	Desc:      "Linear SVM (SGD training + classification)",
	Source:    svmSrc,
	Output:    "out",
	InputDesc: "train 256/128 examples, test 128/96 examples",
	Judge:     fidelity.Judgment{Metric: fidelity.MetricClassErr, Threshold: 10},
	Bind: func(m *vm.Machine, kind InputKind) error {
		ntr, nev := svmSizes(kind)
		fx, fy := synthLinear(ntr, svmDims, 93+uint64(kind))
		ex, _ := synthLinear(nev, svmDims, 95+uint64(kind))
		if err := bindInts(m, "trainx", fx); err != nil {
			return err
		}
		if err := bindInts(m, "trainy", fy); err != nil {
			return err
		}
		if err := bindInts(m, "evalx", ex); err != nil {
			return err
		}
		return bindInts(m, "params", []int64{int64(ntr), int64(nev), svmDims})
	},
	Measure: func(golden, test []uint64, kind InputKind) float64 {
		_, nev := svmSizes(kind)
		return fidelity.ClassificationError(wordsToInts(golden[:nev]), wordsToInts(test[:nev]))
	},
})
