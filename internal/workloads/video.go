package workloads

import (
	"repro/internal/fidelity"
	"repro/internal/vm"
)

// Video workloads: h264enc/h264dec (mediabench II), reduced to the H.264
// intra path: DC prediction from reconstructed neighbors + the 4x4 integer
// core transform + quantization. Prediction from the running reconstruction
// makes each block depend on all earlier blocks, the video analog of
// loop-carried state.

const (
	h264TrainW, h264TrainH = 48, 48
	h264TestW, h264TestH   = 32, 32
	h264QP                 = 20
)

func h264Dims(kind InputKind) (w, h int) {
	if kind == Train {
		return h264TrainW, h264TrainH
	}
	return h264TestW, h264TestH
}

// h264T is the H.264 4x4 core transform matrix (row-major).
var h264T = []int64{
	1, 1, 1, 1,
	2, 1, -1, -2,
	1, -1, -1, 1,
	1, -2, 2, -1,
}

// h264D is diag(T T^t): the per-axis scale divided out after the inverse.
var h264D = []int64{4, 10, 4, 10}

const h264CommonSrc = `
int divround(int v, int d) {
	if (v >= 0) { return (v + d / 2) / d; }
	return 0 - ((d / 2 - v) / d);
}

// fwd4x4: y = T x T^t for one 4x4 block held in a flat buffer.
void fwd4x4(int off) {
	int t[16];
	for (int i = 0; i < 4; i += 1) {
		for (int j = 0; j < 4; j += 1) {
			int s = 0;
			for (int k = 0; k < 4; k += 1) {
				s += tmat[i * 4 + k] * blk[off + k * 4 + j];
			}
			t[i * 4 + j] = s;
		}
	}
	for (int i = 0; i < 4; i += 1) {
		for (int j = 0; j < 4; j += 1) {
			int s = 0;
			for (int k = 0; k < 4; k += 1) {
				s += t[i * 4 + k] * tmat[j * 4 + k];
			}
			blk[off + i * 4 + j] = s;
		}
	}
}

// inv4x4: x = round(T^t y T / (d_i d_j)).
void inv4x4(int off) {
	int t[16];
	for (int i = 0; i < 4; i += 1) {
		for (int j = 0; j < 4; j += 1) {
			int s = 0;
			for (int k = 0; k < 4; k += 1) {
				s += tmat[k * 4 + i] * blk[off + k * 4 + j];
			}
			t[i * 4 + j] = s;
		}
	}
	for (int i = 0; i < 4; i += 1) {
		for (int j = 0; j < 4; j += 1) {
			int s = 0;
			for (int k = 0; k < 4; k += 1) {
				s += t[i * 4 + k] * tmat[k * 4 + j];
			}
			blk[off + i * 4 + j] = divround(s, dtab[i] * dtab[j]);
		}
	}
}

// dcpred: DC intra prediction from reconstructed neighbors.
int dcpred(int bx, int by, int W) {
	int sum = 0;
	int cnt = 0;
	if (bx > 0) {
		for (int y = 0; y < 4; y += 1) {
			sum += recon[(by * 4 + y) * W + bx * 4 - 1];
			cnt += 1;
		}
	}
	if (by > 0) {
		for (int x = 0; x < 4; x += 1) {
			sum += recon[(by * 4 - 1) * W + bx * 4 + x];
			cnt += 1;
		}
	}
	if (cnt == 0) { return 128; }
	return (sum + cnt / 2) / cnt;
}
`

const h264encSrc = `
// h264enc: intra-only encoder (DC prediction + 4x4 integer transform +
// quantization), reconstructing as it goes so later predictions match the
// decoder.
global int img[2304];
global int tmat[16];
global int dtab[4];
global int params[3];
global int blk[16];
global int recon[2304];
global int out[2304];
` + h264CommonSrc + `
void main() {
	int bw = params[0];
	int bh = params[1];
	int qp = params[2];
	int W = bw * 4;
	for (int by = 0; by < bh; by += 1) {
		for (int bx = 0; bx < bw; bx += 1) {
			int pred = dcpred(bx, by, W);
			for (int y = 0; y < 4; y += 1) {
				for (int x = 0; x < 4; x += 1) {
					blk[y * 4 + x] = img[(by * 4 + y) * W + bx * 4 + x] - pred;
				}
			}
			fwd4x4(0);
			int base = (by * bw + bx) * 16;
			for (int k = 0; k < 16; k += 1) {
				int qv = divround(blk[k], qp);
				out[base + k] = qv;
				blk[k] = qv * qp;
			}
			inv4x4(0);
			for (int y = 0; y < 4; y += 1) {
				for (int x = 0; x < 4; x += 1) {
					recon[(by * 4 + y) * W + bx * 4 + x] =
						clampi(blk[y * 4 + x] + pred, 0, 255);
				}
			}
		}
	}
}`

const h264decSrc = `
// h264dec: intra-only decoder, mirror of the encoder's reconstruction.
global int coef[2304];
global int tmat[16];
global int dtab[4];
global int params[3];
global int blk[16];
global int recon[2304];
global int out[2304];
` + h264CommonSrc + `
void main() {
	int bw = params[0];
	int bh = params[1];
	int qp = params[2];
	int W = bw * 4;
	for (int by = 0; by < bh; by += 1) {
		for (int bx = 0; bx < bw; bx += 1) {
			int pred = dcpred(bx, by, W);
			int base = (by * bw + bx) * 16;
			for (int k = 0; k < 16; k += 1) {
				blk[k] = coef[base + k] * qp;
			}
			inv4x4(0);
			for (int y = 0; y < 4; y += 1) {
				for (int x = 0; x < 4; x += 1) {
					int pix = clampi(blk[y * 4 + x] + pred, 0, 255);
					recon[(by * 4 + y) * W + bx * 4 + x] = pix;
					out[(by * 4 + y) * W + bx * 4 + x] = pix;
				}
			}
		}
	}
}`

// h264HostEncode mirrors h264enc to generate decoder inputs.
func h264HostEncode(img []int64, w, h int) []int64 {
	bw, bh := w/4, h/4
	recon := make([]int64, w*h)
	out := make([]int64, w*h)
	for by := 0; by < bh; by++ {
		for bx := 0; bx < bw; bx++ {
			pred := h264HostDCPred(recon, bx, by, w)
			var blk [16]int64
			for y := 0; y < 4; y++ {
				for x := 0; x < 4; x++ {
					blk[y*4+x] = img[(by*4+y)*w+bx*4+x] - pred
				}
			}
			h264Fwd(&blk)
			base := (by*bw + bx) * 16
			for k := 0; k < 16; k++ {
				qv := divRound(blk[k], h264QP)
				out[base+k] = qv
				blk[k] = qv * h264QP
			}
			h264Inv(&blk)
			for y := 0; y < 4; y++ {
				for x := 0; x < 4; x++ {
					recon[(by*4+y)*w+bx*4+x] = clamp255(blk[y*4+x] + pred)
				}
			}
		}
	}
	return out
}

// h264HostDecode mirrors h264dec to score encoder outputs.
func h264HostDecode(coef []int64, w, h int) []int64 {
	bw, bh := w/4, h/4
	recon := make([]int64, w*h)
	for by := 0; by < bh; by++ {
		for bx := 0; bx < bw; bx++ {
			pred := h264HostDCPred(recon, bx, by, w)
			var blk [16]int64
			base := (by*bw + bx) * 16
			for k := 0; k < 16; k++ {
				blk[k] = coef[base+k] * h264QP
			}
			h264Inv(&blk)
			for y := 0; y < 4; y++ {
				for x := 0; x < 4; x++ {
					recon[(by*4+y)*w+bx*4+x] = clamp255(blk[y*4+x] + pred)
				}
			}
		}
	}
	return recon
}

func h264HostDCPred(recon []int64, bx, by, w int) int64 {
	var sum, cnt int64
	if bx > 0 {
		for y := 0; y < 4; y++ {
			sum += recon[(by*4+y)*w+bx*4-1]
			cnt++
		}
	}
	if by > 0 {
		for x := 0; x < 4; x++ {
			sum += recon[(by*4-1)*w+bx*4+x]
			cnt++
		}
	}
	if cnt == 0 {
		return 128
	}
	return (sum + cnt/2) / cnt
}

func h264Fwd(blk *[16]int64) {
	var t [16]int64
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			var s int64
			for k := 0; k < 4; k++ {
				s += h264T[i*4+k] * blk[k*4+j]
			}
			t[i*4+j] = s
		}
	}
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			var s int64
			for k := 0; k < 4; k++ {
				s += t[i*4+k] * h264T[j*4+k]
			}
			blk[i*4+j] = s
		}
	}
}

func h264Inv(blk *[16]int64) {
	var t [16]int64
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			var s int64
			for k := 0; k < 4; k++ {
				s += h264T[k*4+i] * blk[k*4+j]
			}
			t[i*4+j] = s
		}
	}
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			var s int64
			for k := 0; k < 4; k++ {
				s += t[i*4+k] * h264T[k*4+j]
			}
			blk[i*4+j] = divRound(s, h264D[i]*h264D[j])
		}
	}
}

func divRound(v, d int64) int64 {
	if v >= 0 {
		return (v + d/2) / d
	}
	return -((d/2 - v) / d)
}

func bindH264Tables(m *vm.Machine, kind InputKind) error {
	w, h := h264Dims(kind)
	if err := bindInts(m, "tmat", h264T); err != nil {
		return err
	}
	if err := bindInts(m, "dtab", h264D); err != nil {
		return err
	}
	return bindInts(m, "params", []int64{int64(w / 4), int64(h / 4), h264QP})
}

var h264enc = register(&Workload{
	Name:      "h264enc",
	Suite:     "mediabench II",
	Category:  "video",
	Desc:      "H.264 intra encoder (DC prediction + 4x4 integer transform)",
	Source:    h264encSrc,
	Output:    "out",
	InputDesc: "train 48x48 frame, test 32x32 frame",
	Judge:     fidelity.Judgment{Metric: fidelity.MetricPSNR, Threshold: 30, HigherIsBetter: true},
	Bind: func(m *vm.Machine, kind InputKind) error {
		w, h := h264Dims(kind)
		if err := bindInts(m, "img", synthImage(w, h, 71+uint64(kind))); err != nil {
			return err
		}
		return bindH264Tables(m, kind)
	},
	Measure: func(golden, test []uint64, kind InputKind) float64 {
		w, h := h264Dims(kind)
		n := w * h
		g := h264HostDecode(wordsToInts(golden[:n]), w, h)
		t := h264HostDecode(wordsToInts(test[:n]), w, h)
		return fidelity.PSNRInts(g, t, 255)
	},
})

var h264dec = register(&Workload{
	Name:      "h264dec",
	Suite:     "mediabench II",
	Category:  "video",
	Desc:      "H.264 intra decoder",
	Source:    h264decSrc,
	Output:    "out",
	InputDesc: "train 48x48 frame, test 32x32 frame",
	Judge:     fidelity.Judgment{Metric: fidelity.MetricPSNR, Threshold: 30, HigherIsBetter: true},
	Bind: func(m *vm.Machine, kind InputKind) error {
		w, h := h264Dims(kind)
		coef := h264HostEncode(synthImage(w, h, 73+uint64(kind)), w, h)
		if err := bindInts(m, "coef", coef); err != nil {
			return err
		}
		return bindH264Tables(m, kind)
	},
	Measure: func(golden, test []uint64, kind InputKind) float64 {
		w, h := h264Dims(kind)
		n := w * h
		return fidelity.PSNRInts(wordsToInts(golden[:n]), wordsToInts(test[:n]), 255)
	},
})
