package workloads

import (
	"repro/internal/fidelity"
	"repro/internal/vm"
)

// Computer-vision workloads: segm (image segmentation) and tex_synth
// (texture synthesis), after the SD-VBS kernels the paper uses.

const (
	segmTrainW, segmTrainH     = 64, 64
	segmTestW, segmTestH       = 44, 44
	texTrainSrcW, texTrainOutW = 20, 28
	texTestSrcW, texTestOutW   = 16, 24
)

func segmDims(kind InputKind) (w, h int) {
	if kind == Train {
		return segmTrainW, segmTrainH
	}
	return segmTestW, segmTestH
}

func texDims(kind InputKind) (src, out int) {
	if kind == Train {
		return texTrainSrcW, texTrainOutW
	}
	return texTestSrcW, texTestOutW
}

const segmSrc = `
// segm: two-class image segmentation by iterative threshold selection
// (Ridler-Calvard). The threshold estimate t is carried across iterations —
// a state variable whose corruption relabels large image regions.
global int img[4096];
global int hist[256];
global int params[1];
global int out[4096];

void main() {
	int n = params[0];
	for (int b = 0; b < 256; b += 1) { hist[b] = 0; }
	for (int i = 0; i < n; i += 1) {
		hist[img[i] & 255] += 1;
	}
	int t = 128;
	for (int iter = 0; iter < 16; iter += 1) {
		int sum0 = 0;
		int cnt0 = 0;
		int sum1 = 0;
		int cnt1 = 0;
		for (int b = 0; b < 256; b += 1) {
			int c = hist[b];
			if (b <= t) { sum0 += b * c; cnt0 += c; }
			else { sum1 += b * c; cnt1 += c; }
		}
		int m0 = 0;
		int m1 = 255;
		if (cnt0 > 0) { m0 = sum0 / cnt0; }
		if (cnt1 > 0) { m1 = sum1 / cnt1; }
		int tn = (m0 + m1) / 2;
		if (tn == t) { break; }
		t = tn;
	}
	for (int i = 0; i < n; i += 1) {
		if (img[i] > t) { out[i] = 1; }
		else { out[i] = 0; }
	}
}`

const texSynthSrc = `
// tex_synth: non-parametric texture synthesis. Each output pixel copies the
// source pixel whose causal neighborhood (3 left + 3 above) best matches
// the already-synthesized neighborhood (SSD search). best/bestCost are
// state variables of the inner search loop.
global int src[400];
global int params[2];
global int out[784];

void main() {
	int S = params[0];
	int W = params[1];
	// Seed the first rows/cols directly from the source (tiled).
	for (int y = 0; y < W; y += 1) {
		for (int x = 0; x < W; x += 1) {
			if (y < 1 || x < 1) {
				out[y * W + x] = src[(y % S) * S + (x % S)];
			}
		}
	}
	for (int y = 1; y < W; y += 1) {
		for (int x = 1; x < W; x += 1) {
			int best = 0;
			int bestCost = 0x7fffffff;
			for (int sy = 1; sy < S; sy += 1) {
				for (int sx = 1; sx < S; sx += 1) {
					int cost = 0;
					int d1 = out[y * W + x - 1] - src[sy * S + sx - 1];
					cost += d1 * d1;
					int d2 = out[(y - 1) * W + x] - src[(sy - 1) * S + sx];
					cost += d2 * d2;
					int d3 = out[(y - 1) * W + x - 1] - src[(sy - 1) * S + sx - 1];
					cost += d3 * d3;
					if (cost < bestCost) {
						bestCost = cost;
						best = src[sy * S + sx];
					}
				}
			}
			out[y * W + x] = best;
		}
	}
}`

var segm = register(&Workload{
	Name:      "segm",
	Suite:     "SD-VBS",
	Category:  "vision",
	Desc:      "Image segmentation (iterative threshold selection)",
	Source:    segmSrc,
	Output:    "out",
	InputDesc: "train 64x64 image, test 44x44 image",
	Judge:     fidelity.Judgment{Metric: fidelity.MetricMismatch, Threshold: 10},
	Bind: func(m *vm.Machine, kind InputKind) error {
		w, h := segmDims(kind)
		if err := bindInts(m, "img", synthImage(w, h, 81+uint64(kind))); err != nil {
			return err
		}
		return bindInts(m, "params", []int64{int64(w * h)})
	},
	Measure: func(golden, test []uint64, kind InputKind) float64 {
		w, h := segmDims(kind)
		n := w * h
		return fidelity.MatrixMismatch(wordsToInts(golden[:n]), wordsToInts(test[:n]), 0)
	},
})

var texSynth = register(&Workload{
	Name:      "tex_synth",
	Suite:     "SD-VBS",
	Category:  "vision",
	Desc:      "Texture synthesis (causal neighborhood matching)",
	Source:    texSynthSrc,
	Output:    "out",
	InputDesc: "train 20x20 -> 28x28, test 16x16 -> 24x24",
	Judge:     fidelity.Judgment{Metric: fidelity.MetricMismatch, Threshold: 10},
	Bind: func(m *vm.Machine, kind InputKind) error {
		s, o := texDims(kind)
		if err := bindInts(m, "src", synthImage(s, s, 83+uint64(kind))); err != nil {
			return err
		}
		return bindInts(m, "params", []int64{int64(s), int64(o)})
	},
	Measure: func(golden, test []uint64, kind InputKind) float64 {
		_, o := texDims(kind)
		n := o * o
		// Texture is stochastic in character: tolerate small pixel drift,
		// count structurally different pixels.
		return fidelity.MatrixMismatch(wordsToInts(golden[:n]), wordsToInts(test[:n]), 8)
	},
})
