// Package workloads defines the 13 soft-computing benchmarks of the paper's
// Table I, rewritten in the mini-C language on synthetic inputs (the
// original mediabench/mibench/SD-VBS/svmlight binaries and inputs are not
// redistributable; the kernels preserve the loop structure, loop-carried
// state and table lookups of the originals, which is what the protection
// analyses key on).
//
// Each workload supplies: source code, deterministic train/test input
// binding (different sizes, as in Table I), the output global, and a
// fidelity measure with its acceptance threshold.
package workloads

import (
	"fmt"
	"math"
	"sort"
	"sync"

	"repro/internal/fault"
	"repro/internal/fidelity"
	"repro/internal/ir"
	"repro/internal/lang"
	"repro/internal/vm"
)

// InputKind selects the profiling (train) or evaluation (test) input.
type InputKind uint8

// Input kinds. Profiling uses Train; fault injection uses Test (and the
// cross-validation experiment swaps them). Cross is a third, held-out
// input (test-sized, different content) used by the multi-input profiling
// extension to measure false positives on data no profile has seen.
const (
	Train InputKind = iota
	Test
	Cross
)

func (k InputKind) String() string {
	switch k {
	case Train:
		return "train"
	case Cross:
		return "cross"
	}
	return "test"
}

// Workload is one benchmark.
type Workload struct {
	Name     string
	Suite    string
	Category string
	Desc     string
	Source   string
	// Output is the name of the global holding the program's result.
	Output string
	// Judge is the fidelity acceptance rule from Table I.
	Judge fidelity.Judgment
	// InputDesc describes train/test inputs for the Table I rendering.
	InputDesc string

	// Bind installs the inputs of the given kind on a machine.
	Bind func(m *vm.Machine, kind InputKind) error
	// Measure computes the fidelity metric of a test output against the
	// fault-free golden output (both raw output-global words); kind selects
	// the active input's dimensions.
	Measure func(golden, test []uint64, kind InputKind) float64

	// Compile cache. Guarded by compileOnce: concurrent callers (e.g.
	// several in-process campaign workers building programs for the same
	// benchmark) must not race on the lazy init.
	compileOnce sync.Once
	mod         *ir.Module
	compileErr  error
}

// Compile returns the workload's SSA module (cached; callers Clone before
// mutating). Safe for concurrent use.
func (w *Workload) Compile() (*ir.Module, error) {
	w.compileOnce.Do(func() {
		m, err := lang.Compile(w.Name, w.Source)
		if err != nil {
			w.compileErr = fmt.Errorf("workload %s: %w", w.Name, err)
			return
		}
		w.mod = m
	})
	return w.mod, w.compileErr
}

// Acceptable reports whether a fidelity value passes this workload's
// threshold.
func (w *Workload) Acceptable(v float64) bool { return w.Judge.Acceptable(v) }

// Target adapts the workload, with inputs of the given kind, to a fault
// injection target.
func (w *Workload) Target(kind InputKind) fault.Target {
	return fault.Target{
		Name:       w.Name,
		Bind:       func(m *vm.Machine) error { return w.Bind(m, kind) },
		Output:     w.Output,
		Measure:    func(golden, test []uint64) float64 { return w.Measure(golden, test, kind) },
		Acceptable: w.Acceptable,
	}
}

var registry []*Workload

// tableIOrder is the paper's Table I presentation order. Registration
// order follows Go file initialization, so register sorts explicitly.
var tableIOrder = map[string]int{
	"jpegenc": 0, "jpegdec": 1, "tiff2bw": 2, "segm": 3, "tex_synth": 4,
	"g721enc": 5, "g721dec": 6, "mp3dec": 7, "mp3enc": 8,
	"h264enc": 9, "h264dec": 10, "kmeans": 11, "svm": 12,
}

func register(w *Workload) *Workload {
	registry = append(registry, w)
	sort.Slice(registry, func(i, j int) bool {
		return tableIOrder[registry[i].Name] < tableIOrder[registry[j].Name]
	})
	return w
}

// All returns every workload in Table I order.
func All() []*Workload { return registry }

// ByName returns the named workload or nil.
func ByName(name string) *Workload {
	for _, w := range registry {
		if w.Name == name {
			return w
		}
	}
	return nil
}

// Names lists all workload names in order.
func Names() []string {
	out := make([]string, len(registry))
	for i, w := range registry {
		out[i] = w.Name
	}
	return out
}

// ---- deterministic input synthesis --------------------------------------

// xorshift is a tiny deterministic PRNG so inputs never depend on package
// math/rand internals.
type xorshift uint64

func newRand(seed uint64) *xorshift {
	x := xorshift(seed*2685821657736338717 + 1)
	return &x
}

func (x *xorshift) next() uint64 {
	v := uint64(*x)
	v ^= v << 13
	v ^= v >> 7
	v ^= v << 17
	*x = xorshift(v)
	return v
}

// intn returns a value in [0, n).
func (x *xorshift) intn(n int) int64 { return int64(x.next() % uint64(n)) }

// float returns a value in [0, 1).
func (x *xorshift) float() float64 {
	return float64(x.next()>>11) / float64(1<<53)
}

// norm returns an approximately normal value (sum of uniforms).
func (x *xorshift) norm() float64 {
	s := 0.0
	for i := 0; i < 6; i++ {
		s += x.float()
	}
	return (s - 3) / math.Sqrt(0.5)
}

// synthImage produces a deterministic natural-looking 8-bit image: smooth
// gradients plus texture plus a few hard edges (so DCT/quantization and
// segmentation have realistic structure).
func synthImage(w, h int, seed uint64) []int64 {
	rng := newRand(seed)
	img := make([]int64, w*h)
	// Random blob centers for structure.
	type blob struct{ cx, cy, r, v float64 }
	blobs := make([]blob, 4)
	for i := range blobs {
		blobs[i] = blob{
			cx: float64(rng.intn(w)), cy: float64(rng.intn(h)),
			r: 4 + float64(rng.intn(w/2+1)), v: 40 + float64(rng.intn(160)),
		}
	}
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			v := 60 + 90*float64(x)/float64(w) + 40*math.Sin(float64(y)/5)
			for _, b := range blobs {
				dx, dy := float64(x)-b.cx, float64(y)-b.cy
				if dx*dx+dy*dy < b.r*b.r {
					v = b.v + 10*math.Sin(float64(x)/3)
				}
			}
			v += rng.norm() * 4
			img[y*w+x] = clamp255(int64(v))
		}
	}
	return img
}

// synthAudio produces a deterministic PCM16-ish waveform: a few sine
// partials with slow amplitude modulation plus noise.
func synthAudio(n int, seed uint64) []int64 {
	rng := newRand(seed)
	f1 := 0.01 + rng.float()*0.05
	f2 := 0.002 + rng.float()*0.01
	f3 := 0.07 + rng.float()*0.1
	out := make([]int64, n)
	for i := 0; i < n; i++ {
		t := float64(i)
		env := 0.6 + 0.4*math.Sin(t*f2)
		v := env * (6000*math.Sin(t*f1*2*math.Pi) + 2500*math.Sin(t*f3*2*math.Pi))
		v += rng.norm() * 60
		if v > 32767 {
			v = 32767
		}
		if v < -32768 {
			v = -32768
		}
		out[i] = int64(v)
	}
	return out
}

// synthClusters produces n points in d dimensions drawn around k centers,
// with the generating label of each point. Coordinates are scaled ints.
func synthClusters(n, d, k int, seed uint64) (points []int64, labels []int64) {
	rng := newRand(seed)
	centers := make([][]float64, k)
	for c := range centers {
		centers[c] = make([]float64, d)
		for j := 0; j < d; j++ {
			centers[c][j] = float64(rng.intn(2000)) - 1000
		}
	}
	points = make([]int64, n*d)
	labels = make([]int64, n)
	for i := 0; i < n; i++ {
		c := int(rng.intn(k))
		labels[i] = int64(c)
		for j := 0; j < d; j++ {
			points[i*d+j] = int64(centers[c][j] + rng.norm()*60)
		}
	}
	return points, labels
}

// synthLinear produces linearly separable (with margin noise) examples for
// the SVM workload: features in [-1000, 1000], labels ±1 from a random
// hyperplane.
func synthLinear(n, d int, seed uint64) (feats []int64, labels []int64) {
	rng := newRand(seed)
	wvec := make([]float64, d)
	for j := range wvec {
		wvec[j] = rng.norm()
	}
	feats = make([]int64, n*d)
	labels = make([]int64, n)
	for i := 0; i < n; i++ {
		var dot float64
		for j := 0; j < d; j++ {
			v := float64(rng.intn(2001)) - 1000
			feats[i*d+j] = int64(v)
			dot += wvec[j] * v
		}
		if dot+rng.norm()*50 >= 0 {
			labels[i] = 1
		} else {
			labels[i] = -1
		}
	}
	return feats, labels
}

func clamp255(v int64) int64 {
	if v < 0 {
		return 0
	}
	if v > 255 {
		return 255
	}
	return v
}

// wordsToInts reinterprets raw output words as signed integers.
func wordsToInts(ws []uint64) []int64 {
	out := make([]int64, len(ws))
	for i, w := range ws {
		out[i] = int64(w)
	}
	return out
}

// wordsToFloats reinterprets raw output words as floats.
func wordsToFloats(ws []uint64) []float64 {
	out := make([]float64, len(ws))
	for i, w := range ws {
		out[i] = math.Float64frombits(w)
	}
	return out
}

func bindInts(m *vm.Machine, name string, data []int64) error {
	return m.BindInputInts(name, data)
}
